//! Solution containers and the metrics the paper's figures report.

use std::time::Duration;

use crate::instance::AugmentationInstance;
use crate::reliability;

/// A secondary-instance placement: for each chain position, how many
/// secondaries were placed on which bins.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Augmentation {
    /// `placements[i]` lists `(bin index, count)` pairs for function `i`,
    /// at most one entry per bin.
    placements: Vec<Vec<(usize, usize)>>,
}

impl Augmentation {
    /// No secondaries for a chain of `n` functions.
    pub fn empty(n: usize) -> Self {
        Augmentation { placements: vec![Vec::new(); n] }
    }

    /// Record `count` more secondaries of function `func` on bin `bin`.
    pub fn add(&mut self, func: usize, bin: usize, count: usize) {
        if count == 0 {
            return;
        }
        let row = &mut self.placements[func];
        match row.iter_mut().find(|(b, _)| *b == bin) {
            Some((_, c)) => *c += count,
            None => row.push((bin, count)),
        }
    }

    pub fn chain_len(&self) -> usize {
        self.placements.len()
    }

    /// `(bin, count)` pairs for one function.
    pub fn placements_of(&self, func: usize) -> &[(usize, usize)] {
        &self.placements[func]
    }

    /// Secondary count `m_i` per function.
    pub fn counts(&self) -> Vec<usize> {
        self.placements.iter().map(|row| row.iter().map(|&(_, c)| c).sum()).collect()
    }

    pub fn total_secondaries(&self) -> usize {
        self.counts().iter().sum()
    }

    /// Achieved request reliability `u_j = Π_i R(f_i, existing_i + m_i)` —
    /// always computed from true counts, never from the linearized objective.
    pub fn reliability(&self, inst: &AugmentationInstance) -> f64 {
        let rels: Vec<f64> = inst.functions.iter().map(|f| f.reliability).collect();
        let totals: Vec<usize> = self
            .counts()
            .iter()
            .zip(&inst.functions)
            .map(|(&m, f)| m + f.existing_backups)
            .collect();
        reliability::chain_reliability(&rels, &totals)
    }

    /// Load in MHz placed on each bin.
    pub fn bin_loads(&self, inst: &AugmentationInstance) -> Vec<f64> {
        let mut loads = vec![0.0; inst.bins.len()];
        for (i, row) in self.placements.iter().enumerate() {
            let demand = inst.functions[i].demand;
            for &(b, c) in row {
                loads[b] += demand * c as f64;
            }
        }
        loads
    }

    /// Whether every bin's load fits its residual capacity (tolerance for
    /// floating-point demand sums).
    pub fn is_capacity_feasible(&self, inst: &AugmentationInstance) -> bool {
        self.bin_loads(inst).iter().zip(&inst.bins).all(|(&load, bin)| load <= bin.residual + 1e-6)
    }

    /// Whether every placement goes to a bin eligible for its function
    /// (the `l`-hop locality constraint).
    pub fn respects_locality(&self, inst: &AugmentationInstance) -> bool {
        self.placements
            .iter()
            .enumerate()
            .all(|(i, row)| row.iter().all(|&(b, _)| inst.functions[i].eligible_bins.contains(&b)))
    }

    /// Remove one secondary of `func` from `bin`; returns `false` if none is
    /// placed there.
    pub fn remove(&mut self, func: usize, bin: usize) -> bool {
        let row = &mut self.placements[func];
        if let Some(pos) = row.iter().position(|&(b, c)| b == bin && c > 0) {
            row[pos].1 -= 1;
            if row[pos].1 == 0 {
                row.swap_remove(pos);
            }
            true
        } else {
            false
        }
    }

    /// Trim surplus secondaries: while the reliability stays at or above the
    /// expectation, repeatedly drop the placed secondary with the smallest
    /// marginal log-gain (freeing the most-loaded eligible bin first). This
    /// realizes "augment *until* the expectation is reached": the result is
    /// the original solution when it never reached `ρ_j`, and a minimal-ish
    /// overshoot solution otherwise. Returns the number of removals.
    pub fn trim_to_expectation(&mut self, inst: &AugmentationInstance) -> usize {
        let mut removed = 0;
        loop {
            let counts = self.counts();
            let rel = self.reliability(inst);
            if rel < inst.expectation {
                break;
            }
            // Candidate: function whose last secondary has the smallest gain
            // and whose removal keeps the expectation satisfied.
            let mut best: Option<(f64, usize)> = None; // (gain, func)
            for (i, &m) in counts.iter().enumerate() {
                if m == 0 {
                    continue;
                }
                let r = inst.functions[i].reliability;
                let e = inst.functions[i].existing_backups;
                let gain = reliability::log_gain(r, e + m);
                let new_rel = rel / reliability::function_reliability(r, e + m)
                    * reliability::function_reliability(r, e + m - 1);
                if new_rel >= inst.expectation && best.is_none_or(|(g, _)| gain < g) {
                    best = Some((gain, i));
                }
            }
            let Some((_, func)) = best else { break };
            // Free the most-loaded bin hosting this function.
            let loads = self.bin_loads(inst);
            let bin = self.placements[func]
                .iter()
                .max_by(|&&(a, _), &&(b, _)| {
                    let ra = loads[a] / inst.bins[a].residual;
                    let rb = loads[b] / inst.bins[b].residual;
                    ra.total_cmp(&rb)
                })
                .map(|&(b, _)| b)
                .expect("function has placements");
            let ok = self.remove(func, bin);
            debug_assert!(ok);
            removed += 1;
        }
        removed
    }

    /// Total paper cost of the solution under the prefix interpretation
    /// (Lemma 6.1: the `m_i` placed items of function `i` are the `m_i`
    /// cheapest): `Σ_i Σ_{k=1..m_i} c(f_i, k, ·)`.
    pub fn paper_cost(&self, inst: &AugmentationInstance) -> f64 {
        self.counts()
            .iter()
            .enumerate()
            .map(|(i, &m)| {
                let r = inst.functions[i].reliability;
                let e = inst.functions[i].existing_backups;
                (1..=m).map(|k| reliability::paper_cost(r, e + k)).sum::<f64>()
            })
            .sum()
    }
}

/// Everything the paper's figures need from one algorithm run.
#[derive(Debug, Clone, serde::Serialize)]
pub struct Metrics {
    /// Achieved request reliability `u_j`.
    pub reliability: f64,
    /// `Π r_i` before augmentation.
    pub base_reliability: f64,
    /// Whether `u_j >= ρ_j`.
    pub met_expectation: bool,
    pub total_secondaries: usize,
    /// Per-bin usage ratio load / residual, over bins eligible for at least
    /// one function (may exceed 1.0 for the randomized algorithm).
    pub bin_usage: Vec<f64>,
    pub avg_usage: f64,
    pub min_usage: f64,
    pub max_usage: f64,
    /// Largest usage ratio over all bins; > 1 means a capacity violation.
    pub max_violation_ratio: f64,
    /// Total paper cost `c(S)`.
    pub paper_cost: f64,
}

impl Metrics {
    pub fn compute(aug: &Augmentation, inst: &AugmentationInstance) -> Metrics {
        let loads = aug.bin_loads(inst);
        let mut eligible = vec![false; inst.bins.len()];
        for f in &inst.functions {
            for &b in &f.eligible_bins {
                eligible[b] = true;
            }
        }
        let bin_usage: Vec<f64> = loads
            .iter()
            .zip(&inst.bins)
            .zip(&eligible)
            .filter(|(_, &e)| e)
            .map(|((&load, bin), _)| load / bin.residual)
            .collect();
        let (avg, min, max) = if bin_usage.is_empty() {
            (0.0, 0.0, 0.0)
        } else {
            let sum: f64 = bin_usage.iter().sum();
            (
                sum / bin_usage.len() as f64,
                bin_usage.iter().copied().fold(f64::INFINITY, f64::min),
                bin_usage.iter().copied().fold(0.0, f64::max),
            )
        };
        let reliability = aug.reliability(inst);
        Metrics {
            reliability,
            base_reliability: inst.base_reliability(),
            met_expectation: reliability >= inst.expectation,
            total_secondaries: aug.total_secondaries(),
            max_violation_ratio: max,
            bin_usage,
            avg_usage: avg,
            min_usage: min,
            max_usage: max,
            paper_cost: aug.paper_cost(inst),
        }
    }
}

/// Per-algorithm solver-effort summary, always populated (telemetry on or
/// off): the headline numbers `report::render` prints per algorithm.
#[derive(Debug, Clone, PartialEq, Eq, serde::Serialize)]
pub enum SolverInfo {
    Ilp {
        nodes: usize,
        lp_iterations: usize,
        incumbent_updates: usize,
        pruned_bound: usize,
        pruned_infeasible: usize,
    },
    Randomized {
        lp_iterations: usize,
        rounds: usize,
        /// Secondaries removed while repairing overshoot / trimming to the
        /// expectation after the best draw was selected.
        repairs: usize,
    },
    Heuristic {
        matching_rounds: usize,
    },
    Greedy {
        steps: usize,
    },
}

/// The result of running one augmentation algorithm on one instance.
#[derive(Debug, Clone)]
pub struct Outcome {
    pub augmentation: Augmentation,
    pub metrics: Metrics,
    pub runtime: Duration,
    pub solver: SolverInfo,
    /// Counter/timing summary from the telemetry recorder the solve ran
    /// under; empty (`Telemetry::default()`) for untraced entry points.
    pub telemetry: obs::Telemetry,
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{AugmentationInstance, Bin, FunctionSlot};
    use mecnet::graph::NodeId;
    use mecnet::vnf::VnfTypeId;

    /// Two functions, two bins, hand-built.
    fn tiny_instance() -> AugmentationInstance {
        AugmentationInstance {
            functions: vec![
                FunctionSlot {
                    vnf: VnfTypeId(0),
                    demand: 100.0,
                    reliability: 0.8,
                    primary: NodeId(0),
                    eligible_bins: vec![0, 1],
                    max_secondaries: 5,
                    existing_backups: 0,
                },
                FunctionSlot {
                    vnf: VnfTypeId(1),
                    demand: 200.0,
                    reliability: 0.9,
                    primary: NodeId(1),
                    eligible_bins: vec![1],
                    max_secondaries: 2,
                    existing_backups: 0,
                },
            ],
            bins: vec![
                Bin { node: NodeId(0), residual: 300.0 },
                Bin { node: NodeId(1), residual: 400.0 },
            ],
            l: 1,
            expectation: 0.99,
        }
    }

    #[test]
    fn add_merges_per_bin() {
        let mut aug = Augmentation::empty(2);
        aug.add(0, 0, 1);
        aug.add(0, 0, 2);
        aug.add(0, 1, 1);
        aug.add(1, 1, 0); // no-op
        assert_eq!(aug.placements_of(0), &[(0, 3), (1, 1)]);
        assert_eq!(aug.counts(), vec![4, 0]);
        assert_eq!(aug.total_secondaries(), 4);
    }

    #[test]
    fn reliability_from_counts() {
        let inst = tiny_instance();
        let mut aug = Augmentation::empty(2);
        assert!((aug.reliability(&inst) - 0.72).abs() < 1e-12);
        aug.add(0, 0, 1); // f0: R = 0.96
        aug.add(1, 1, 1); // f1: R = 0.99
        assert!((aug.reliability(&inst) - 0.96 * 0.99).abs() < 1e-12);
    }

    #[test]
    fn loads_and_feasibility() {
        let inst = tiny_instance();
        let mut aug = Augmentation::empty(2);
        aug.add(0, 0, 3); // 300 MHz on bin 0 — exactly fits
        aug.add(1, 1, 2); // 400 MHz on bin 1 — exactly fits
        assert_eq!(aug.bin_loads(&inst), vec![300.0, 400.0]);
        assert!(aug.is_capacity_feasible(&inst));
        aug.add(0, 1, 1); // 100 more on bin 1: 500 > 400
        assert!(!aug.is_capacity_feasible(&inst));
    }

    #[test]
    fn locality_check() {
        let inst = tiny_instance();
        let mut aug = Augmentation::empty(2);
        aug.add(1, 1, 1);
        assert!(aug.respects_locality(&inst));
        aug.add(1, 0, 1); // bin 0 is not eligible for f1
        assert!(!aug.respects_locality(&inst));
    }

    #[test]
    fn paper_cost_prefix_sum() {
        let inst = tiny_instance();
        let mut aug = Augmentation::empty(2);
        aug.add(0, 0, 2);
        let expect =
            crate::reliability::paper_cost(0.8, 1) + crate::reliability::paper_cost(0.8, 2);
        assert!((aug.paper_cost(&inst) - expect).abs() < 1e-12);
    }

    #[test]
    fn metrics_usage_ratios() {
        let inst = tiny_instance();
        let mut aug = Augmentation::empty(2);
        aug.add(0, 0, 3); // bin0: 300/300 = 1.0
        aug.add(1, 1, 1); // bin1: 200/400 = 0.5
        let m = Metrics::compute(&aug, &inst);
        assert!((m.avg_usage - 0.75).abs() < 1e-12);
        assert!((m.min_usage - 0.5).abs() < 1e-12);
        assert!((m.max_usage - 1.0).abs() < 1e-12);
        assert_eq!(m.total_secondaries, 4);
        // f0: R(0.8, 3) = 0.9984; f1: R(0.9, 1) = 0.99.
        assert!(!m.met_expectation); // 0.9984*0.99 = 0.98842 < 0.99
        assert!((m.reliability - 0.9984 * 0.99).abs() < 1e-12);
    }

    #[test]
    fn metrics_on_empty_instance() {
        let inst = AugmentationInstance {
            functions: Vec::new(),
            bins: Vec::new(),
            l: 1,
            expectation: 0.9,
        };
        let aug = Augmentation::empty(0);
        let m = Metrics::compute(&aug, &inst);
        assert_eq!(m.total_secondaries, 0);
        assert_eq!(m.avg_usage, 0.0);
        assert!((m.reliability - 1.0).abs() < 1e-12);
        assert!(m.met_expectation);
    }
}

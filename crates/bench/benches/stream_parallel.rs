//! Sequential-vs-parallel admission throughput benchmark.
//!
//! Pushes one fixed request stream through `relaug::parallel` at several
//! worker counts, prints the criterion timings, and records the measured
//! throughput into `BENCH_stream.json` at the workspace root (the CI
//! artifact). Worker counts beyond the machine's core count are still run —
//! the JSON records `cores` so a reader can judge which speedups were
//! physically attainable — and every parallel run is checked byte-identical
//! to the sequential baseline before its timing is trusted.

use std::time::{Duration, Instant};

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mecnet::request::SfcRequest;
use mecnet::workload::{generate_catalog, generate_network, WorkloadConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use relaug::parallel::{process_stream_parallel, ParallelConfig};
use relaug::stream::{Algorithm, StreamConfig, StreamOutcome};
use serde::Value;

const SEED: u64 = 42;
const REQUESTS: usize = 120;
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Hand-timed repetitions per worker count for the JSON record (criterion's
/// printed numbers come from its own sampling loop).
const RECORD_REPS: usize = 5;

struct Fixture {
    network: mecnet::MecNetwork,
    catalog: mecnet::vnf::VnfCatalog,
    requests: Vec<SfcRequest>,
}

fn fixture() -> Fixture {
    let wl = WorkloadConfig::default();
    let mut rng = StdRng::seed_from_u64(SEED);
    let network = generate_network(&wl, &mut rng);
    let catalog = generate_catalog(&wl, &mut rng);
    let requests = (0..REQUESTS)
        .map(|i| SfcRequest::random(i, &catalog, (3, 6), 0.99, wl.nodes, &mut rng))
        .collect();
    Fixture { network, catalog, requests }
}

fn run(fx: &Fixture, workers: usize) -> StreamOutcome {
    let pcfg = ParallelConfig {
        stream: StreamConfig {
            algorithm: Algorithm::Heuristic(Default::default()),
            ..Default::default()
        },
        workers,
        seed: SEED,
        max_inflight: 0,
    };
    process_stream_parallel(&fx.network, &fx.catalog, &fx.requests, &pcfg)
}

struct WorkerResult {
    workers: usize,
    mean_s: f64,
    min_s: f64,
    throughput_rps: f64,
    speedup_vs_sequential: f64,
    identical_to_sequential: bool,
}

impl WorkerResult {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("workers".into(), Value::U64(self.workers as u64)),
            ("mean_s".into(), Value::F64(self.mean_s)),
            ("min_s".into(), Value::F64(self.min_s)),
            ("throughput_rps".into(), Value::F64(self.throughput_rps)),
            ("speedup_vs_sequential".into(), Value::F64(self.speedup_vs_sequential)),
            ("identical_to_sequential".into(), Value::Bool(self.identical_to_sequential)),
        ])
    }
}

fn bench_stream_parallel(c: &mut Criterion) {
    let fx = fixture();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let baseline = run(&fx, 1);

    let mut group = c.benchmark_group("stream_admission");
    let mut results: Vec<WorkerResult> = Vec::new();
    for &workers in &WORKER_COUNTS {
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &w| {
            b.iter(|| black_box(run(&fx, w)))
        });

        let mut total = 0.0f64;
        let mut min_s = f64::INFINITY;
        let mut identical = true;
        for _ in 0..RECORD_REPS {
            let started = Instant::now();
            let out = black_box(run(&fx, workers));
            let elapsed = started.elapsed().as_secs_f64();
            total += elapsed;
            min_s = min_s.min(elapsed);
            identical &=
                out.records == baseline.records && out.final_residual == baseline.final_residual;
        }
        let mean_s = total / RECORD_REPS as f64;
        results.push(WorkerResult {
            workers,
            mean_s,
            min_s,
            throughput_rps: REQUESTS as f64 / mean_s,
            speedup_vs_sequential: f64::NAN, // filled once the baseline mean is known
            identical_to_sequential: identical,
        });
    }
    group.finish();

    let seq_mean = results[0].mean_s;
    for r in &mut results {
        r.speedup_vs_sequential = seq_mean / r.mean_s;
    }

    let json = render_json(cores, &results);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_stream.json");
    std::fs::write(path, &json).expect("write BENCH_stream.json");
    println!("wrote {path}");
}

fn render_json(cores: usize, results: &[WorkerResult]) -> String {
    let report = Value::Obj(vec![
        ("benchmark".into(), Value::Str("stream_parallel".into())),
        ("cores".into(), Value::U64(cores as u64)),
        ("requests".into(), Value::U64(REQUESTS as u64)),
        ("seed".into(), Value::U64(SEED)),
        ("algorithm".into(), Value::Str("heuristic".into())),
        ("record_reps".into(), Value::U64(RECORD_REPS as u64)),
        ("results".into(), Value::Arr(results.iter().map(WorkerResult::to_value).collect())),
    ]);
    let mut json = serde_json::to_string_pretty(&report).expect("report serializes");
    json.push('\n');
    json
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(4));
    targets = bench_stream_parallel
}
criterion_main!(benches);

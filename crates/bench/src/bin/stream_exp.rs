//! Multi-request stream experiment (extension beyond the paper's
//! single-request evaluation): push a stream of requests through one shared
//! network per algorithm and report admission rate, mean reliability,
//! expectation-met rate, and the early-vs-late reliability erosion.
//!
//! Usage: `cargo run -p bench-harness --release --bin stream_exp --
//! [--trials N] [--seed S] [--requests R] [--trace PATH] [--workers W]
//! [--batch B] [--metrics-interval N|Xs] [--flight DIR]` (trials =
//! independent network/stream pairs).
//!
//! `--metrics-interval` switches the observed (first) stream of each
//! algorithm to windowed telemetry: per-request events are suppressed and
//! one `stream.window` summary is emitted per `N` requests (or `X` wall
//! seconds), so a million-request trace stays bounded. `--flight DIR` arms
//! flight recorders: every engine thread keeps a ring of recent raw events,
//! dumped to `DIR/flight-*.jsonl` on panic or commit hard-error
//! (`RELAUG_INJECT_COMMIT_HARD_ERROR=K` injects one at request `K` for
//! smoke-testing the dump path). A per-worker contention table — solve time
//! vs job-wait vs commit-wait, plus stale-speculation counts — is printed at
//! the end of every run.
//!
//! `--workers W` (default 1) runs each stream through the speculative
//! parallel admission pipeline with `W` worker threads; `--workers auto`
//! resolves to the machine's effective parallelism. At `--workers 1` —
//! including `auto` on a single-core box, so `auto` never picks the slower
//! engine — the binary takes a sequential fast path: the seeded stream
//! driver directly, no channels or snapshots. `--batch B` sets the
//! requests-per-speculation-batch (default 0 = auto: the dispatch window
//! split evenly across workers). Results and telemetry are byte-identical across all engine
//! configurations by construction — the flags only change wall-clock time.
//! The header line `engine: …` records which path ran (stdout only; it never
//! appears in the JSONL trace).
//!
//! `--trace PATH` writes the full telemetry of each algorithm's first stream
//! as JSONL: exactly one `stream.request` event per request processed (with
//! admitted/rejected + reason, solver runtime and a residual snapshot), with
//! the per-request solver events interleaved in arrival order. A telemetry
//! summary table — including per-request solve-time p50/p95/p99 from the
//! recorder's in-memory samples — is printed at the end of every run,
//! traced or not.

use bench_harness::HarnessArgs;
use expkit::stats::Accumulator;
use expkit::Table;
use mecnet::request::SfcRequest;
use mecnet::workload::{generate_catalog, generate_network, WorkloadConfig};
use obs::{MetricsSnapshot, Recorder};
use rand::rngs::StdRng;
use rand::SeedableRng;
use relaug::parallel::{process_stream_batched, process_stream_metered, ParallelConfig};
use relaug::stream::{
    process_stream_seeded, process_stream_seeded_observed, Algorithm, FlightSpec, MetricsMode,
    StreamConfig, StreamObservation,
};

/// The observability config for the first stream of each algorithm:
/// `--metrics-interval` switches the pipeline to windowed aggregation,
/// `--flight` attaches flight rings, and the injection env var arms the
/// commit hard-error.
fn observed_config(
    mut cfg: StreamConfig,
    args: &HarnessArgs,
    inject_at: Option<usize>,
) -> StreamConfig {
    if let Some(interval) = args.metrics_interval {
        cfg.metrics = MetricsMode::Windowed(interval);
    }
    if let Some(dir) = &args.flight {
        cfg.flight = Some(FlightSpec::new(std::path::PathBuf::from(dir)));
    }
    cfg.inject_commit_hard_error_at = inject_at;
    cfg
}

/// Sum of a snapshot histogram's recorded nanoseconds, as seconds.
fn hist_s(snap: &MetricsSnapshot, name: &str) -> f64 {
    snap.hist(name).map(|h| h.sum() as f64 / 1e9).unwrap_or(0.0)
}

/// Per-worker contention attribution of one observed stream: where each
/// thread's time went (solving vs waiting) and which workers' speculations
/// went stale.
fn contention_table(observations: &[(&str, StreamObservation)]) -> Table {
    let mut table = Table::new(vec![
        "algorithm",
        "role",
        "solves",
        "solve time",
        "job wait",
        "commit wait",
        "coord wait",
        "conflicts",
    ]);
    let fmt = expkit::table::fmt_duration_s;
    for (name, ob) in observations {
        let p = &ob.pipeline;
        table.add_row(vec![
            name.to_string(),
            "coordinator".into(),
            format!("{} inline", p.counter("solves")),
            fmt(hist_s(p, "solve_ns")),
            "-".into(),
            "-".into(),
            fmt(hist_s(p, "coordinator_recv_wait_ns")),
            "-".into(),
        ]);
        for (w, shard) in ob.per_worker.iter().enumerate() {
            table.add_row(vec![
                name.to_string(),
                format!("worker {w}"),
                format!("{}", shard.counter("solves")),
                fmt(hist_s(shard, "solve_ns")),
                fmt(hist_s(shard, "job_wait_ns")),
                fmt(hist_s(shard, "commit_wait_ns")),
                "-".into(),
                format!("{}", shard.counter("speculation.conflicts")),
            ]);
        }
    }
    table
}

fn main() {
    let args = match HarnessArgs::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("stream_exp: {e}");
            std::process::exit(2);
        }
    };
    let trials = args.trials.min(200);
    let requests_per_stream = args.requests.unwrap_or(100);
    println!(
        "## Stream experiment — {requests_per_stream} requests per stream, {trials} streams\n"
    );
    // Record which engine path the run used. Stdout only — the JSONL trace
    // stays byte-identical across engine configurations.
    if args.workers == 1 {
        println!("engine: sequential\n");
    } else if args.batch == 0 {
        println!("engine: batched(batch=auto), workers={}\n", args.workers);
    } else {
        println!("engine: batched(batch={}), workers={}\n", args.batch, args.workers);
    }

    // Telemetry sink: the first stream of each algorithm runs traced — into
    // the JSONL file when `--trace` is given, into memory otherwise — so the
    // end-of-run summary table always has data. Remaining trials run with the
    // no-op recorder (zero overhead).
    let mut rec = match &args.trace {
        Some(path) => Recorder::jsonl_file(std::path::Path::new(path)).unwrap_or_else(|e| {
            eprintln!("stream_exp: cannot open trace file {path}: {e}");
            std::process::exit(2);
        }),
        None => Recorder::memory(),
    };

    // Fault injection for the flight-recorder smoke: panic (after dumping
    // the flight ring) at this request index of the first observed stream.
    let inject_at: Option<usize> = std::env::var("RELAUG_INJECT_COMMIT_HARD_ERROR").ok().map(|v| {
        v.parse().unwrap_or_else(|_| {
            eprintln!("stream_exp: RELAUG_INJECT_COMMIT_HARD_ERROR must be a request index");
            std::process::exit(2);
        })
    });

    // Per-shard metrics of each algorithm's first (observed) stream.
    let mut observations: Vec<(&str, StreamObservation)> = Vec::new();

    let algorithms: Vec<(&str, Algorithm)> = vec![
        ("ILP", Algorithm::Ilp(Default::default())),
        ("Randomized", Algorithm::Randomized(Default::default())),
        ("Heuristic", Algorithm::Heuristic(Default::default())),
        ("Greedy", Algorithm::Greedy(Default::default())),
    ];
    let mut table = Table::new(vec![
        "algorithm",
        "admitted",
        "mean rel.",
        "SLO met",
        "early rel.",
        "late rel.",
    ]);
    let mut effort = Table::new(vec![
        "algorithm",
        "events",
        "admitted",
        "rejected",
        "solve time",
        "p50",
        "p95",
        "p99",
    ]);
    for (name, algorithm) in algorithms {
        let mut admitted = Accumulator::new();
        let mut rel = Accumulator::new();
        let mut slo = Accumulator::new();
        let mut early = Accumulator::new();
        let mut late = Accumulator::new();
        let effort_base = rec.summary();
        let samples_base = rec.time_samples("stream.solve").len();
        for t in 0..trials {
            let seed = expkit::fan_out(args.seed, t as u64);
            let mut rng = StdRng::seed_from_u64(seed);
            let wl = WorkloadConfig::default();
            let network = generate_network(&wl, &mut rng);
            let catalog = generate_catalog(&wl, &mut rng);
            let requests: Vec<SfcRequest> = (0..requests_per_stream)
                .map(|i| SfcRequest::random(i, &catalog, (3, 6), 0.99, wl.nodes, &mut rng))
                .collect();
            let cfg = StreamConfig { algorithm: algorithm.clone(), ..Default::default() };
            // `--workers 1`: sequential fast path through the seeded stream
            // driver (no channels, no snapshots). Otherwise: the batched
            // speculative pipeline — byte-identical output, per-request
            // derived RNGs make it independent of worker count and batch
            // size. The first stream of each algorithm runs with the full
            // observability config (windowing, flight ring, fault injection)
            // and yields the sharded-metrics observation for the contention
            // table.
            let out = if args.workers == 1 {
                if t == 0 {
                    let cfg = observed_config(cfg, &args, inject_at);
                    let (out, ob) = process_stream_seeded_observed(
                        &network, &catalog, &requests, &cfg, seed, &mut rec,
                    );
                    observations.push((name, ob));
                    out
                } else {
                    process_stream_seeded(&network, &catalog, &requests, &cfg, seed)
                }
            } else if t == 0 {
                let pcfg = ParallelConfig {
                    stream: observed_config(cfg, &args, inject_at),
                    workers: args.workers,
                    seed,
                    max_inflight: 0,
                };
                let (out, ob) = process_stream_metered(
                    &network, &catalog, &requests, &pcfg, args.batch, &mut rec,
                );
                observations.push((name, ob));
                out
            } else {
                let pcfg =
                    ParallelConfig { stream: cfg, workers: args.workers, seed, max_inflight: 0 };
                process_stream_batched(&network, &catalog, &requests, &pcfg, args.batch)
            };
            admitted.push(out.admitted() as f64);
            if let Some(m) = out.mean_reliability() {
                rel.push(m);
            }
            if let Some(e) = out.expectation_rate() {
                slo.push(e);
            }
            let adm: Vec<f64> =
                out.records.iter().filter(|r| r.admitted).map(|r| r.achieved_reliability).collect();
            if adm.len() >= 4 {
                let third = adm.len() / 3;
                early.push(adm[..third].iter().sum::<f64>() / third as f64);
                late.push(adm[adm.len() - third..].iter().sum::<f64>() / third as f64);
            }
        }
        table.add_row(vec![
            name.to_string(),
            format!("{:.1}/{}", admitted.summary().mean, requests_per_stream),
            format!("{:.4}", rel.summary().mean),
            format!("{:.0}%", 100.0 * slo.summary().mean),
            format!("{:.4}", early.summary().mean),
            format!("{:.4}", late.summary().mean),
        ]);
        // Delta of the cumulative telemetry = this algorithm's traced stream.
        let now = rec.summary();
        let solve_samples = &rec.time_samples("stream.solve")[samples_base..];
        let pct = |p: f64| {
            if solve_samples.is_empty() {
                "-".to_string()
            } else {
                expkit::table::fmt_duration_s(expkit::percentile(solve_samples, p))
            }
        };
        effort.add_row(vec![
            name.to_string(),
            format!("{}", now.events_emitted - effort_base.events_emitted),
            format!("{}", now.counter("stream.admitted") - effort_base.counter("stream.admitted")),
            format!("{}", now.counter("stream.rejected") - effort_base.counter("stream.rejected")),
            expkit::table::fmt_duration_s(
                now.timing_s("stream.solve") - effort_base.timing_s("stream.solve"),
            ),
            pct(50.0),
            pct(95.0),
            pct(99.0),
        ]);
    }
    println!("{}", table.to_markdown());
    println!("\n### telemetry (first stream per algorithm)\n");
    println!("{}", effort.to_markdown());
    println!("\n### contention attribution (first stream per algorithm)\n");
    println!("{}", contention_table(&observations).to_markdown());
    if args.metrics_interval.is_some() {
        let windows: u64 = observations.iter().map(|(_, ob)| ob.windows).sum();
        println!("\nwindowed telemetry: {windows} stream.window summaries across observed streams");
    }
    rec.flush().expect("flush trace");
    if let Some(path) = &args.trace {
        println!("\nwrote {} telemetry events to {path}", rec.events_emitted());
    }
    println!(
        "\nEarly vs late: the reliability requests get degrades over the\n\
         stream as earlier arrivals consume the backup capacity around\n\
         their primaries — the system-level effect the paper's\n\
         single-request experiments hold fixed."
    );
}

use mecnet::workload::{generate_scenario, WorkloadConfig};
use rand::{rngs::StdRng, SeedableRng};
use relaug::instance::AugmentationInstance;
use std::time::Instant;

fn main() {
    for len in [10usize, 16, 20] {
        let cfg = WorkloadConfig { sfc_len_range: (len, len), ..Default::default() };
        let mut tot_ilp = 0.0;
        let mut tot_lp = 0.0;
        let mut tot_heu = 0.0;
        let mut nodes_tot = 0usize;
        let mut iters_tot = 0usize;
        let mut lp_iters = 0usize;
        for seed in 0..5u64 {
            let mut rng = StdRng::seed_from_u64(seed);
            let s = generate_scenario(&cfg, &mut rng);
            let inst = AugmentationInstance::from_scenario(&s, 1);
            let t = Instant::now();
            let out = relaug::ilp::solve(&inst, &Default::default()).unwrap();
            tot_ilp += t.elapsed().as_secs_f64();
            if let relaug::solution::SolverInfo::Ilp { nodes, lp_iterations, .. } = out.solver {
                nodes_tot += nodes;
                iters_tot += lp_iterations;
            }
            let t = Instant::now();
            let r = relaug::randomized::solve(&inst, &Default::default(), &mut rng).unwrap();
            tot_lp += t.elapsed().as_secs_f64();
            if let relaug::solution::SolverInfo::Randomized { lp_iterations, .. } = r.solver {
                lp_iters += lp_iterations;
            }
            let t = Instant::now();
            let _ = relaug::heuristic::solve(&inst, &Default::default());
            tot_heu += t.elapsed().as_secs_f64();
        }
        println!(
            "L={len}: ilp {:.3}s (nodes {}, iters {}), lp {:.3}s (iters {}), heu {:.4}s",
            tot_ilp / 5.0,
            nodes_tot / 5,
            iters_tot / 5,
            tot_lp / 5.0,
            lp_iters / 5,
            tot_heu / 5.0
        );
    }
}

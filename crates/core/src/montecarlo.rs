//! Failure-injection simulation.
//!
//! The paper's reliability formula `u_j = Π_i (1 - (1-r_i)^{m_i+1})` assumes
//! independent instance failures and perfect failover. This module closes the
//! loop empirically: it samples concrete failure scenarios — every deployed
//! instance is independently up with its function's reliability — and checks
//! whether the request survives (each chain position needs at least one live
//! instance). The Monte-Carlo survival rate must converge to the analytic
//! `u_j`, which the test suite asserts; the module also reports *which*
//! functions cause outages, something the closed form cannot show.

use rand::Rng;

use crate::instance::AugmentationInstance;
use crate::solution::Augmentation;

/// Result of a failure-injection campaign.
#[derive(Debug, Clone)]
pub struct FailureReport {
    /// Number of sampled failure scenarios.
    pub trials: usize,
    /// Fraction of scenarios in which the request survived.
    pub survival_rate: f64,
    /// Per chain position: fraction of scenarios in which that function had
    /// no live instance (its *outage* probability; the analytic value is
    /// `(1-r_i)^{existing+m_i+1}`).
    pub outage_rate: Vec<f64>,
    /// Scenarios in which two or more functions were simultaneously down.
    pub multi_fault_rate: f64,
}

impl FailureReport {
    /// Standard error of the survival estimate (binomial).
    pub fn survival_stderr(&self) -> f64 {
        let p = self.survival_rate;
        (p * (1.0 - p) / self.trials as f64).sqrt()
    }
}

/// Run `trials` failure injections against a placement.
///
/// Each deployed instance of function `i` — its primary, its
/// `existing_backups` shared instances, and the `m_i` secondaries in `aug` —
/// is up independently with probability `r_i`. A function is live if any of
/// its instances is up; the request survives if every function is live.
pub fn simulate_failures<R: Rng + ?Sized>(
    inst: &AugmentationInstance,
    aug: &Augmentation,
    trials: usize,
    rng: &mut R,
) -> FailureReport {
    assert!(trials > 0, "at least one trial");
    let counts = aug.counts();
    let instances: Vec<usize> =
        inst.functions.iter().zip(&counts).map(|(f, &m)| 1 + f.existing_backups + m).collect();
    let mut survived = 0usize;
    let mut outages = vec![0usize; inst.chain_len()];
    let mut multi = 0usize;
    for _ in 0..trials {
        let mut down = 0usize;
        for (i, f) in inst.functions.iter().enumerate() {
            let live = (0..instances[i]).any(|_| rng.gen::<f64>() < f.reliability);
            if !live {
                outages[i] += 1;
                down += 1;
            }
        }
        if down == 0 {
            survived += 1;
        }
        if down >= 2 {
            multi += 1;
        }
    }
    FailureReport {
        trials,
        survival_rate: survived as f64 / trials as f64,
        outage_rate: outages.iter().map(|&o| o as f64 / trials as f64).collect(),
        multi_fault_rate: multi as f64 / trials as f64,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{Bin, FunctionSlot};
    use mecnet::graph::NodeId;
    use mecnet::vnf::VnfTypeId;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn two_fn_instance() -> AugmentationInstance {
        let slot = |r: f64| FunctionSlot {
            vnf: VnfTypeId(0),
            demand: 100.0,
            reliability: r,
            primary: NodeId(0),
            eligible_bins: vec![0],
            max_secondaries: 5,
            existing_backups: 0,
        };
        AugmentationInstance {
            functions: vec![slot(0.8), slot(0.9)],
            bins: vec![Bin { node: NodeId(0), residual: 1000.0 }],
            l: 1,
            expectation: 0.99,
        }
    }

    #[test]
    fn monte_carlo_converges_to_analytic_reliability() {
        let inst = two_fn_instance();
        let mut aug = Augmentation::empty(2);
        aug.add(0, 0, 2); // f0: R(0.8, 2) = 0.992
        aug.add(1, 0, 1); // f1: R(0.9, 1) = 0.99
        let analytic = aug.reliability(&inst);
        let mut rng = StdRng::seed_from_u64(7);
        let report = simulate_failures(&inst, &aug, 60_000, &mut rng);
        let tol = 4.0 * report.survival_stderr().max(1e-4);
        assert!(
            (report.survival_rate - analytic).abs() < tol,
            "MC {} vs analytic {analytic} (tol {tol})",
            report.survival_rate
        );
    }

    #[test]
    fn outage_rates_match_per_function_formula() {
        let inst = two_fn_instance();
        let mut aug = Augmentation::empty(2);
        aug.add(0, 0, 1);
        let mut rng = StdRng::seed_from_u64(11);
        let report = simulate_failures(&inst, &aug, 80_000, &mut rng);
        // f0 with 1 secondary: outage (0.2)^2 = 0.04; f1 bare: 0.1.
        assert!((report.outage_rate[0] - 0.04).abs() < 0.005);
        assert!((report.outage_rate[1] - 0.10).abs() < 0.006);
        // Independence: multi-fault ≈ product.
        assert!((report.multi_fault_rate - 0.004).abs() < 0.002);
    }

    #[test]
    fn existing_backups_count_as_instances() {
        let mut inst = two_fn_instance();
        inst.functions[0].existing_backups = 2;
        let aug = Augmentation::empty(2);
        let mut rng = StdRng::seed_from_u64(13);
        let report = simulate_failures(&inst, &aug, 60_000, &mut rng);
        // f0 has 3 instances: outage 0.2^3 = 0.008.
        assert!((report.outage_rate[0] - 0.008).abs() < 0.003);
    }

    #[test]
    fn no_backups_means_base_survival() {
        let inst = two_fn_instance();
        let aug = Augmentation::empty(2);
        let mut rng = StdRng::seed_from_u64(17);
        let report = simulate_failures(&inst, &aug, 60_000, &mut rng);
        let base = inst.base_reliability(); // 0.72
        assert!((report.survival_rate - base).abs() < 0.01);
        assert!(report.survival_stderr() < 0.003);
    }

    #[test]
    fn perfect_reliability_never_fails() {
        let mut inst = two_fn_instance();
        inst.functions[0].reliability = 1.0;
        inst.functions[1].reliability = 1.0;
        let aug = Augmentation::empty(2);
        let mut rng = StdRng::seed_from_u64(19);
        let report = simulate_failures(&inst, &aug, 1_000, &mut rng);
        assert_eq!(report.survival_rate, 1.0);
        assert!(report.outage_rate.iter().all(|&o| o == 0.0));
        assert_eq!(report.multi_fault_rate, 0.0);
    }
}

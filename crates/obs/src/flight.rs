//! Flight recorder: a bounded ring of recent raw events, dumped only on
//! failure (panic, commit hard-error, SLO violation).
//!
//! Full tracing of a million-request run is too expensive to leave on, but
//! when something goes wrong the *recent* raw events are exactly what a
//! postmortem needs. Each worker keeps a [`FlightRecorder`] of the last `N`
//! events it produced; on a trigger the ring is dumped as JSONL — a
//! `flight.dump` header line describing the trigger followed by the buffered
//! events in arrival order.

use std::collections::VecDeque;
use std::io::{self, Write};
use std::path::Path;

use crate::event::Event;

/// Bounded ring buffer of recent [`Event`]s.
#[derive(Debug)]
pub struct FlightRecorder {
    cap: usize,
    ring: VecDeque<Event>,
    /// Total events ever pushed (monotone; `seq - len` have been evicted).
    seq: u64,
    /// Events evicted to make room.
    dropped: u64,
}

impl FlightRecorder {
    /// Create a recorder holding at most `capacity` events (min 1).
    pub fn new(capacity: usize) -> FlightRecorder {
        let cap = capacity.max(1);
        FlightRecorder { cap, ring: VecDeque::with_capacity(cap), seq: 0, dropped: 0 }
    }

    /// Append an event, evicting the oldest if the ring is full.
    pub fn push(&mut self, event: Event) {
        if self.ring.len() == self.cap {
            self.ring.pop_front();
            self.dropped += 1;
        }
        self.ring.push_back(event);
        self.seq += 1;
    }

    pub fn len(&self) -> usize {
        self.ring.len()
    }

    pub fn is_empty(&self) -> bool {
        self.ring.is_empty()
    }

    pub fn capacity(&self) -> usize {
        self.cap
    }

    /// Events evicted so far (total pushed minus currently buffered).
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The buffered events, oldest first.
    pub fn events(&self) -> impl Iterator<Item = &Event> {
        self.ring.iter()
    }

    /// Write the ring as JSONL: a `flight.dump` header line carrying the
    /// trigger `reason` and buffer accounting, then each buffered event on
    /// its own line, oldest first. The ring is left intact.
    pub fn dump<W: Write>(&self, reason: &str, mut w: W) -> io::Result<()> {
        let header = Event::new("flight.dump")
            .with("reason", reason)
            .with("buffered", self.ring.len() as u64)
            .with("dropped", self.dropped)
            .with("capacity", self.cap as u64);
        writeln!(w, "{}", header.to_json())?;
        for ev in &self.ring {
            writeln!(w, "{}", ev.to_json())?;
        }
        w.flush()
    }

    /// [`FlightRecorder::dump`] to a freshly created file at `path`.
    pub fn dump_to_path(&self, reason: &str, path: &Path) -> io::Result<()> {
        if let Some(parent) = path.parent() {
            if !parent.as_os_str().is_empty() {
                std::fs::create_dir_all(parent)?;
            }
        }
        self.dump(reason, io::BufWriter::new(std::fs::File::create(path)?))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut fl = FlightRecorder::new(3);
        for k in 0..5u64 {
            fl.push(Event::new("stream.request").with("id", k));
        }
        assert_eq!(fl.len(), 3);
        assert_eq!(fl.dropped(), 2);
        let ids: Vec<String> = fl.events().map(|e| e.to_json()).collect();
        assert!(ids[0].contains("\"id\":2"));
        assert!(ids[2].contains("\"id\":4"));
    }

    #[test]
    fn dump_writes_header_then_events() {
        let mut fl = FlightRecorder::new(8);
        fl.push(Event::new("stream.request").with("id", 0u64));
        fl.push(Event::new("stream.request").with("id", 1u64));
        let mut out = Vec::new();
        fl.dump("commit_hard_error", &mut out).unwrap();
        let text = String::from_utf8(out).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 3);
        assert!(lines[0].contains("\"event\":\"flight.dump\""));
        assert!(lines[0].contains("\"reason\":\"commit_hard_error\""));
        assert!(lines[0].contains("\"buffered\":2"));
        assert!(lines[0].contains("\"dropped\":0"));
        assert!(lines[1].contains("\"id\":0"));
        assert!(lines[2].contains("\"id\":1"));
        // Ring survives a dump.
        assert_eq!(fl.len(), 2);
    }

    #[test]
    fn zero_capacity_is_clamped_to_one() {
        let mut fl = FlightRecorder::new(0);
        fl.push(Event::new("a"));
        fl.push(Event::new("b"));
        assert_eq!(fl.len(), 1);
        assert_eq!(fl.capacity(), 1);
        assert_eq!(fl.dropped(), 1);
    }
}

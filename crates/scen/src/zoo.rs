//! The topology zoo: graph generators beyond `mecnet`'s flat Waxman and
//! transit-stub models.
//!
//! * [`sagin`] — hierarchical space-air-ground style layered networks: a
//!   small high-capacity/high-delay core tier, optional aggregation tiers,
//!   and a large low-delay edge tier, each an internally-connected Waxman
//!   subgraph with per-tier uplinks to the tier above. Per-tier cloudlet
//!   fractions and capacity classes model "few fat cloudlets up high, many
//!   thin ones at the edge".
//! * [`barabasi_albert`] — preferential-attachment MEC graphs whose
//!   heavy-tailed degree distribution matches measured metro aggregation
//!   networks better than Waxman's near-Poisson degrees.
//! * [`fat_tree`] — the standard k-ary data-center fabric (core, aggregation,
//!   edge switches, hosts); hosts are the cloudlet sites.
//!
//! All generators only build [`Graph`]s (plus role/tier annotations);
//! [`crate::spec::ScenarioSpec::build`] turns them into `MecNetwork`s by
//! assigning per-tier capacities.

use mecnet::graph::{Graph, NodeId};
use mecnet::topology::embed_waxman;
use rand::Rng;

/// One layer of a SAGIN-style hierarchy, top (core) first.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct TierSpec {
    /// Display name ("leo-core", "hap", "ground", ...).
    pub name: String,
    /// Node count of this tier.
    pub nodes: usize,
    /// Fraction of this tier's nodes that host a cloudlet, in `[0, 1]`.
    pub cloudlet_fraction: f64,
    /// Uniform cloudlet capacity range (MHz) — the tier's capacity class.
    pub capacity_range: (f64, f64),
    /// Intra-tier Waxman density `alpha`.
    pub alpha: f64,
    /// Intra-tier Waxman locality `beta`.
    pub beta: f64,
    /// Uplink edges from each node of this tier to uniformly random nodes of
    /// the tier above. Ignored for the top tier; must be >= 1 below it so the
    /// hierarchy is connected by construction.
    pub uplinks: usize,
    /// Relative endpoint-popularity weight of this tier's nodes when the
    /// request stream samples sources/destinations.
    pub popularity_weight: f64,
}

/// Generate a layered SAGIN-style graph from `tiers` (top tier first).
/// Returns the graph and each node's tier index. Connectivity holds by
/// construction: every tier is an internally-connected Waxman subgraph
/// (via [`embed_waxman`]'s repair pass) and every non-top node keeps at
/// least one uplink into the tier above.
pub fn sagin<R: Rng + ?Sized>(tiers: &[TierSpec], rng: &mut R) -> (Graph, Vec<usize>) {
    assert!(!tiers.is_empty(), "need at least one tier");
    let total: usize = tiers.iter().map(|t| t.nodes).sum();
    let mut g = Graph::new(total);
    let mut tier_of = Vec::with_capacity(total);
    let mut tier_ids: Vec<Vec<usize>> = Vec::with_capacity(tiers.len());
    let mut next = 0usize;
    for (t, tier) in tiers.iter().enumerate() {
        assert!(tier.nodes >= 1, "tier {} is empty", tier.name);
        if t > 0 {
            assert!(tier.uplinks >= 1, "tier {} needs uplinks >= 1", tier.name);
        }
        let ids: Vec<usize> = (0..tier.nodes)
            .map(|_| {
                let id = next;
                next += 1;
                tier_of.push(t);
                id
            })
            .collect();
        embed_waxman(&mut g, &ids, tier.alpha, tier.beta, rng);
        if t > 0 {
            let above = &tier_ids[t - 1];
            for &v in &ids {
                for _ in 0..tier.uplinks {
                    let u = above[rng.gen_range(0..above.len())];
                    g.add_edge(NodeId(u), NodeId(v));
                }
            }
        }
        tier_ids.push(ids);
    }
    debug_assert!(g.is_connected(), "sagin hierarchy must be connected by construction");
    (g, tier_of)
}

/// Generate a Barabási–Albert preferential-attachment graph: start from a
/// small connected seed clique, then attach each new node to `attach`
/// distinct existing nodes with probability proportional to their degree
/// (sampled via the classic repeated-endpoint list).
pub fn barabasi_albert<R: Rng + ?Sized>(nodes: usize, attach: usize, rng: &mut R) -> Graph {
    assert!(attach >= 1, "attach must be >= 1");
    assert!(nodes > attach, "need more nodes than attachment edges");
    let mut g = Graph::new(nodes);
    // Seed clique on `attach + 1` nodes so every early target has degree > 0.
    for u in 0..=attach {
        for v in (u + 1)..=attach {
            g.add_edge(NodeId(u), NodeId(v));
        }
    }
    // One entry per edge endpoint: sampling uniformly from this list is
    // degree-proportional sampling.
    let mut endpoints: Vec<usize> = Vec::with_capacity(4 * nodes * attach);
    for u in 0..=attach {
        for _ in 0..attach {
            endpoints.push(u);
        }
    }
    let mut targets: Vec<usize> = Vec::with_capacity(attach);
    for v in (attach + 1)..nodes {
        targets.clear();
        while targets.len() < attach {
            let t = endpoints[rng.gen_range(0..endpoints.len())];
            if !targets.contains(&t) {
                targets.push(t);
            }
        }
        for &t in &targets {
            g.add_edge(NodeId(t), NodeId(v));
            endpoints.push(t);
            endpoints.push(v);
        }
    }
    debug_assert!(g.is_connected());
    g
}

/// Role of a node in a [`fat_tree`] fabric, parallel to the node ids.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FatTreeRole {
    Core,
    Aggregation { pod: usize },
    Edge { pod: usize },
    Host { pod: usize },
}

/// Generate the standard k-ary fat-tree (`k` even, >= 2): `(k/2)^2` core
/// switches, `k` pods of `k/2` aggregation plus `k/2` edge switches, and
/// `k/2` hosts per edge switch (`k^3/4` hosts total — the cloudlet sites).
/// Deterministic: the fabric is fully determined by `k`.
pub fn fat_tree(k: usize) -> (Graph, Vec<FatTreeRole>) {
    assert!(k >= 2 && k.is_multiple_of(2), "fat-tree arity must be even and >= 2");
    let half = k / 2;
    let cores = half * half;
    let per_pod = half + half; // agg + edge
    let hosts_per_pod = half * half;
    let total = cores + k * per_pod + k * hosts_per_pod;
    let mut g = Graph::new(total);
    let mut roles = vec![FatTreeRole::Core; total];
    let core_id = |c: usize| c;
    let agg_id = |pod: usize, a: usize| cores + pod * per_pod + a;
    let edge_id = |pod: usize, e: usize| cores + pod * per_pod + half + e;
    let host_id =
        |pod: usize, e: usize, h: usize| cores + k * per_pod + pod * hosts_per_pod + e * half + h;
    for pod in 0..k {
        for a in 0..half {
            roles[agg_id(pod, a)] = FatTreeRole::Aggregation { pod };
            // Each aggregation switch uplinks to its column of core switches.
            for c in 0..half {
                g.add_edge(NodeId(agg_id(pod, a)), NodeId(core_id(a * half + c)));
            }
        }
        for e in 0..half {
            roles[edge_id(pod, e)] = FatTreeRole::Edge { pod };
            for a in 0..half {
                g.add_edge(NodeId(edge_id(pod, e)), NodeId(agg_id(pod, a)));
            }
            for h in 0..half {
                roles[host_id(pod, e, h)] = FatTreeRole::Host { pod };
                g.add_edge(NodeId(host_id(pod, e, h)), NodeId(edge_id(pod, e)));
            }
        }
    }
    debug_assert!(g.is_connected());
    (g, roles)
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn three_tiers() -> Vec<TierSpec> {
        vec![
            TierSpec {
                name: "core".into(),
                nodes: 8,
                cloudlet_fraction: 1.0,
                capacity_range: (20000.0, 40000.0),
                alpha: 0.8,
                beta: 0.6,
                uplinks: 0,
                popularity_weight: 0.5,
            },
            TierSpec {
                name: "agg".into(),
                nodes: 24,
                cloudlet_fraction: 0.5,
                capacity_range: (8000.0, 16000.0),
                alpha: 0.5,
                beta: 0.3,
                uplinks: 2,
                popularity_weight: 1.0,
            },
            TierSpec {
                name: "edge".into(),
                nodes: 80,
                cloudlet_fraction: 0.25,
                capacity_range: (2000.0, 6000.0),
                alpha: 0.4,
                beta: 0.15,
                uplinks: 1,
                popularity_weight: 4.0,
            },
        ]
    }

    #[test]
    fn sagin_connected_with_tier_sizes() {
        let tiers = three_tiers();
        for seed in 0..5 {
            let mut rng = StdRng::seed_from_u64(seed);
            let (g, tier_of) = sagin(&tiers, &mut rng);
            assert_eq!(g.num_nodes(), 8 + 24 + 80);
            assert!(g.is_connected());
            for (t, tier) in tiers.iter().enumerate() {
                assert_eq!(tier_of.iter().filter(|&&x| x == t).count(), tier.nodes);
            }
        }
    }

    #[test]
    fn sagin_edge_nodes_reach_core_via_uplinks() {
        let tiers = three_tiers();
        let mut rng = StdRng::seed_from_u64(1);
        let (g, tier_of) = sagin(&tiers, &mut rng);
        // Each edge node has at least one neighbor in the tier above.
        for v in g.nodes() {
            if tier_of[v.index()] == 2 {
                assert!(
                    g.neighbors(v).any(|u| tier_of[u.index()] <= 1),
                    "edge node {} has no uplink",
                    v.index()
                );
            }
        }
    }

    #[test]
    fn barabasi_albert_degree_tail_is_heavy() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = barabasi_albert(400, 2, &mut rng);
        assert!(g.is_connected());
        // Every non-seed node contributes exactly `attach` edges.
        assert_eq!(g.num_edges(), 3 + (400 - 3) * 2);
        let max_deg = g.nodes().map(|v| g.degree(v)).max().unwrap();
        let mean = g.average_degree();
        assert!(
            max_deg as f64 > 4.0 * mean,
            "preferential attachment should grow hubs: max {max_deg} vs mean {mean:.1}"
        );
    }

    #[test]
    fn fat_tree_shape() {
        let (g, roles) = fat_tree(4);
        // 4 core, 4 pods x (2 agg + 2 edge), 16 hosts.
        assert_eq!(g.num_nodes(), 4 + 16 + 16);
        assert!(g.is_connected());
        assert_eq!(roles.iter().filter(|r| matches!(r, FatTreeRole::Host { .. })).count(), 16);
        assert_eq!(roles.iter().filter(|r| matches!(r, FatTreeRole::Core)).count(), 4);
        // Hosts have degree 1, edge switches k, agg switches k.
        for (i, role) in roles.iter().enumerate() {
            let d = g.degree(NodeId(i));
            match role {
                FatTreeRole::Host { .. } => assert_eq!(d, 1),
                FatTreeRole::Edge { .. } | FatTreeRole::Aggregation { .. } => assert_eq!(d, 4),
                FatTreeRole::Core => assert_eq!(d, 4),
            }
        }
        assert_eq!(g.diameter(), Some(6));
    }
}

//! The MEC network: a graph of access points, a subset of which host
//! cloudlets with computing capacity.

use crate::graph::{Graph, NodeId};
use crate::neighborhood::NeighborhoodIndex;
use rand::seq::SliceRandom;
use rand::Rng;
use std::fmt;
use std::sync::{Arc, Mutex};

/// Lifecycle of a [`Reservation`]: capacity is debited at `try_reserve`
/// time, made permanent by `commit`, or returned by `abort`. Any transition
/// out of a terminal state is a hard error in every build profile — this is
/// what makes double-release/double-commit impossible to ship silently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ReservationState {
    Pending,
    Committed,
    Aborted,
}

/// A two-phase capacity reservation: the set of per-node debits
/// [`MecNetwork::try_reserve`] applied to a residual vector, awaiting
/// [`MecNetwork::commit`] or [`MecNetwork::abort`]. The parallel admission
/// pipeline reserves speculatively-solved secondary loads through this and
/// commits them strictly in request-sequence order.
#[derive(Debug)]
#[must_use = "a pending reservation holds capacity until committed or aborted"]
pub struct Reservation {
    /// `(node index, amount)` pairs actually debited, one entry per node.
    debits: Vec<(usize, f64)>,
    state: ReservationState,
}

impl Reservation {
    pub fn state(&self) -> ReservationState {
        self.state
    }

    /// Total MHz held by this reservation.
    pub fn total(&self) -> f64 {
        self.debits.iter().map(|&(_, a)| a).sum()
    }

    pub fn is_empty(&self) -> bool {
        self.debits.is_empty()
    }

    /// The merged `(node index, amount)` debits this reservation holds — one
    /// entry per node. The plan cache snapshots these to replay a validated
    /// plan's capacity footprint without re-running the solver.
    pub fn debits(&self) -> &[(usize, f64)] {
        &self.debits
    }
}

/// Per-node capacity *epochs*: a monotone counter bumped every time a node's
/// residual is permanently decreased (an admission or augmentation commit).
/// The plan cache stamps entries with the epochs of the nodes a plan touches;
/// a later hit whose stamps are unchanged knows the residuals at those nodes
/// are exactly what they were when the entry was last validated, so it can
/// skip the feasibility re-walk entirely. Counters are atomics so the sharded
/// capacity plane can bump them from concurrent committers.
#[derive(Debug)]
pub struct NodeEpochs {
    epochs: Vec<std::sync::atomic::AtomicU64>,
}

impl NodeEpochs {
    pub fn new(num_nodes: usize) -> Self {
        NodeEpochs {
            epochs: (0..num_nodes).map(|_| std::sync::atomic::AtomicU64::new(0)).collect(),
        }
    }

    pub fn len(&self) -> usize {
        self.epochs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.epochs.is_empty()
    }

    /// Current epoch of node `idx`.
    pub fn get(&self, idx: usize) -> u64 {
        self.epochs[idx].load(std::sync::atomic::Ordering::Acquire)
    }

    /// Record a permanent residual decrease at node `idx`.
    pub fn bump(&self, idx: usize) {
        self.epochs[idx].fetch_add(1, std::sync::atomic::Ordering::AcqRel);
    }
}

/// Why a reservation operation failed.
#[derive(Debug, Clone, PartialEq)]
pub enum ReserveError {
    /// A node lacks the residual capacity for its requested debit; nothing
    /// was debited.
    Insufficient { node: NodeId, requested: f64, available: f64 },
    /// `commit`/`abort` on a reservation that is not pending — a
    /// double-commit, double-abort, or use-after-abort.
    NotPending { state: ReservationState },
}

impl fmt::Display for ReserveError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            ReserveError::Insufficient { node, requested, available } => write!(
                f,
                "insufficient capacity at node {node}: requested {requested} MHz, \
                 available {available} MHz"
            ),
            ReserveError::NotPending { state } => {
                write!(f, "reservation is not pending (state: {state:?})")
            }
        }
    }
}

impl std::error::Error for ReserveError {}

/// A mobile edge-cloud network `G = (V, E)` with per-node cloudlet
/// capacities (`C_v > 0` where a cloudlet is co-located, `C_v = 0`
/// otherwise — exactly the paper's Section 3 model).
#[derive(Debug, Clone)]
pub struct MecNetwork {
    graph: Graph,
    /// Capacity in MHz per node; `0.0` for plain access points.
    capacity: Vec<f64>,
    /// Cloudlet node ids, ascending — precomputed because the admission and
    /// augmentation hot paths enumerate cloudlets per request.
    cloudlet_ids: Vec<NodeId>,
    /// Lazily-built [`NeighborhoodIndex`] per radius `l`. Shared across
    /// clones: the graph and capacities are immutable after construction
    /// (residuals live in caller-owned vectors), so a cached index can never
    /// go stale.
    nbhd_cache: Arc<Mutex<Vec<Arc<NeighborhoodIndex>>>>,
}

impl MecNetwork {
    /// Wrap a graph with explicit capacities (`capacity.len()` must equal the
    /// node count; entries must be non-negative).
    pub fn new(graph: Graph, capacity: Vec<f64>) -> Self {
        assert_eq!(capacity.len(), graph.num_nodes(), "capacity vector must cover all nodes");
        assert!(capacity.iter().all(|&c| c >= 0.0 && c.is_finite()), "capacities must be >= 0");
        let cloudlet_ids = (0..capacity.len()).filter(|&v| capacity[v] > 0.0).map(NodeId).collect();
        MecNetwork { graph, capacity, cloudlet_ids, nbhd_cache: Arc::new(Mutex::new(Vec::new())) }
    }

    /// Place `count` cloudlets on distinct random nodes with capacities drawn
    /// uniformly from `capacity_range` (paper: 10% of nodes, 4 000–8 000 MHz).
    pub fn with_random_cloudlets<R: Rng + ?Sized>(
        graph: Graph,
        count: usize,
        capacity_range: (f64, f64),
        rng: &mut R,
    ) -> Self {
        assert!(count <= graph.num_nodes(), "more cloudlets than nodes");
        assert!(capacity_range.0 > 0.0 && capacity_range.0 <= capacity_range.1);
        let mut ids: Vec<usize> = (0..graph.num_nodes()).collect();
        ids.shuffle(rng);
        let mut capacity = vec![0.0; graph.num_nodes()];
        for &v in ids.iter().take(count) {
            capacity[v] = rng.gen_range(capacity_range.0..=capacity_range.1);
        }
        MecNetwork::new(graph, capacity)
    }

    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// `C_v` of node `v`.
    pub fn capacity(&self, v: NodeId) -> f64 {
        self.capacity[v.index()]
    }

    pub fn is_cloudlet(&self, v: NodeId) -> bool {
        self.capacity[v.index()] > 0.0
    }

    /// All cloudlet nodes.
    pub fn cloudlets(&self) -> Vec<NodeId> {
        self.cloudlet_ids.clone()
    }

    /// All cloudlet nodes, ascending, without allocating.
    pub fn cloudlet_ids(&self) -> &[NodeId] {
        &self.cloudlet_ids
    }

    pub fn num_cloudlets(&self) -> usize {
        self.cloudlet_ids.len()
    }

    /// The cached [`NeighborhoodIndex`] for radius `l`, building it on first
    /// use. The returned `Arc` lets streaming callers resolve the index once
    /// and query it lock-free for every request.
    pub fn neighborhood_index(&self, l: u32) -> Arc<NeighborhoodIndex> {
        let mut cache = self.nbhd_cache.lock().expect("neighborhood cache poisoned");
        if let Some(idx) = cache.iter().find(|idx| idx.l() == l) {
            return Arc::clone(idx);
        }
        let idx = Arc::new(NeighborhoodIndex::build(&self.graph, &self.cloudlet_ids, l));
        cache.push(Arc::clone(&idx));
        idx
    }

    /// Total capacity across all cloudlets.
    pub fn total_capacity(&self) -> f64 {
        self.capacity.iter().sum()
    }

    /// The residual-capacity vector at a uniform residual fraction (the
    /// paper's experiments fix e.g. 25% of each cloudlet's capacity as
    /// available for secondaries).
    pub fn residual_capacities(&self, fraction: f64) -> Vec<f64> {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0, 1]");
        self.capacity.iter().map(|&c| c * fraction).collect()
    }

    /// Cloudlets within `l` hops of `v`, including `v` itself if it is a
    /// cloudlet: the candidate hosts `N_l^+(v)` restricted to nodes that can
    /// actually run VNFs.
    pub fn cloudlets_within(&self, v: NodeId, l: u32) -> Vec<NodeId> {
        self.graph
            .l_neighborhood_closed(v, l)
            .into_iter()
            .filter(|&u| self.is_cloudlet(u))
            .collect()
    }

    /// Largest cloudlet capacity (`C_max` in the paper's complexity bounds).
    pub fn max_capacity(&self) -> f64 {
        self.capacity.iter().copied().fold(0.0, f64::max)
    }

    /// Return `amount` MHz of previously-debited capacity to node `v`'s
    /// residual — the inverse of an admission/augmentation debit, used when a
    /// request departs or an instance is permanently lost. Only ever hand
    /// back what was actually taken: the release must not lift the residual
    /// above the node's full capacity `C_v`.
    pub fn release_capacity(&self, residual: &mut [f64], v: NodeId, amount: f64) {
        assert_eq!(residual.len(), self.capacity.len(), "residual must cover all nodes");
        assert!(amount >= 0.0 && amount.is_finite(), "release amount must be >= 0");
        let idx = v.index();
        let restored = residual[idx] + amount;
        assert!(
            restored <= self.capacity[idx] + 1e-6,
            "release of {amount} MHz would lift node {idx} above its capacity \
             ({restored} > {})",
            self.capacity[idx]
        );
        residual[idx] = restored.min(self.capacity[idx]);
    }

    /// Phase one of a two-phase capacity commit: debit every `(node,
    /// amount)` pair from `residual`, all-or-nothing. On success the debits
    /// are applied and a pending [`Reservation`] is returned; finish it with
    /// [`MecNetwork::commit`] (debits become permanent) or
    /// [`MecNetwork::abort`] (debits are returned). On failure `residual` is
    /// left exactly as it was.
    ///
    /// Multiple debits against the same node are allowed and accumulate. A
    /// `1e-9` slack absorbs floating-point drift in load sums; amounts must
    /// be non-negative and finite.
    pub fn try_reserve(
        &self,
        residual: &mut [f64],
        debits: &[(NodeId, f64)],
    ) -> Result<Reservation, ReserveError> {
        assert_eq!(residual.len(), self.capacity.len(), "residual must cover all nodes");
        // Merge per node first so the feasibility check sees the total
        // demand against each node, not just the last increment.
        let mut merged: Vec<(usize, f64)> = Vec::with_capacity(debits.len());
        for &(node, amount) in debits {
            assert!(amount >= 0.0 && amount.is_finite(), "reserve amount must be >= 0");
            if amount == 0.0 {
                continue;
            }
            let idx = node.index();
            match merged.iter_mut().find(|(n, _)| *n == idx) {
                Some((_, a)) => *a += amount,
                None => merged.push((idx, amount)),
            }
        }
        for &(idx, amount) in &merged {
            if residual[idx] + 1e-9 < amount {
                return Err(ReserveError::Insufficient {
                    node: NodeId(idx),
                    requested: amount,
                    available: residual[idx],
                });
            }
        }
        for &(idx, amount) in &merged {
            residual[idx] = (residual[idx] - amount).max(0.0);
        }
        Ok(Reservation { debits: merged, state: ReservationState::Pending })
    }

    /// Phase two, success path: make a pending reservation's debits
    /// permanent. Rejects (hard error, all build profiles) any reservation
    /// that was already committed or aborted.
    pub fn commit(&self, reservation: &mut Reservation) -> Result<(), ReserveError> {
        if reservation.state != ReservationState::Pending {
            return Err(ReserveError::NotPending { state: reservation.state });
        }
        reservation.state = ReservationState::Committed;
        Ok(())
    }

    /// Phase two, failure path: return a pending reservation's debits to
    /// `residual`. Rejects (hard error, all build profiles) any reservation
    /// that was already committed or aborted — aborting twice would
    /// double-release the capacity.
    pub fn abort(
        &self,
        residual: &mut [f64],
        reservation: &mut Reservation,
    ) -> Result<(), ReserveError> {
        if reservation.state != ReservationState::Pending {
            return Err(ReserveError::NotPending { state: reservation.state });
        }
        for &(idx, amount) in &reservation.debits {
            self.release_capacity(residual, NodeId(idx), amount);
        }
        reservation.state = ReservationState::Aborted;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_cloudlet_placement() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = topology::grid(5, 5);
        let net = MecNetwork::with_random_cloudlets(g, 6, (4000.0, 8000.0), &mut rng);
        assert_eq!(net.num_cloudlets(), 6);
        assert_eq!(net.cloudlets().len(), 6);
        for v in net.cloudlets() {
            assert!((4000.0..=8000.0).contains(&net.capacity(v)));
        }
        assert!(net.total_capacity() >= 6.0 * 4000.0);
        assert!(net.max_capacity() <= 8000.0);
    }

    #[test]
    fn residuals_scale_capacity() {
        let g = topology::ring(4);
        let net = MecNetwork::new(g, vec![1000.0, 0.0, 2000.0, 0.0]);
        let res = net.residual_capacities(0.25);
        assert_eq!(res, vec![250.0, 0.0, 500.0, 0.0]);
    }

    #[test]
    fn cloudlets_within_respects_hops_and_colocations() {
        // Path 0-1-2-3; cloudlets at 0 and 2.
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(2), NodeId(3));
        let net = MecNetwork::new(g, vec![5000.0, 0.0, 6000.0, 0.0]);
        assert_eq!(net.cloudlets_within(NodeId(0), 1), vec![NodeId(0)]);
        let two_hop = net.cloudlets_within(NodeId(0), 2);
        assert_eq!(two_hop, vec![NodeId(0), NodeId(2)]);
        // From a non-cloudlet node, itself is excluded.
        assert_eq!(net.cloudlets_within(NodeId(1), 1), vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    #[should_panic(expected = "capacity vector")]
    fn mismatched_capacity_length_panics() {
        MecNetwork::new(topology::ring(3), vec![1.0]);
    }

    #[test]
    fn neighborhood_index_matches_bfs_queries_and_is_cached() {
        let mut rng = StdRng::seed_from_u64(9);
        let g = topology::grid(5, 5);
        let net = MecNetwork::with_random_cloudlets(g, 7, (4000.0, 8000.0), &mut rng);
        for l in 0..4 {
            let idx = net.neighborhood_index(l);
            for v in net.graph().nodes() {
                assert_eq!(idx.cloudlets_within(v), net.cloudlets_within(v, l).as_slice());
            }
            let again = net.neighborhood_index(l);
            assert!(Arc::ptr_eq(&idx, &again), "second lookup must hit the cache");
            let via_clone = net.clone().neighborhood_index(l);
            assert!(Arc::ptr_eq(&idx, &via_clone), "clones share the cache");
        }
    }

    #[test]
    fn release_restores_debited_capacity_exactly() {
        let g = topology::ring(4);
        let net = MecNetwork::new(g, vec![1000.0, 0.0, 2000.0, 0.0]);
        let mut residual = net.residual_capacities(0.5);
        let before = residual.clone();
        residual[0] -= 300.0;
        residual[2] -= 450.0;
        net.release_capacity(&mut residual, NodeId(0), 300.0);
        net.release_capacity(&mut residual, NodeId(2), 450.0);
        assert_eq!(residual, before, "debit then release must round-trip exactly");
    }

    #[test]
    #[should_panic(expected = "above its capacity")]
    fn release_beyond_capacity_panics() {
        let g = topology::ring(3);
        let net = MecNetwork::new(g, vec![1000.0, 0.0, 0.0]);
        let mut residual = vec![900.0, 0.0, 0.0];
        net.release_capacity(&mut residual, NodeId(0), 200.0);
    }

    fn reserve_fixture() -> (MecNetwork, Vec<f64>) {
        let g = topology::ring(4);
        let net = MecNetwork::new(g, vec![1000.0, 0.0, 2000.0, 0.0]);
        let residual = net.residual_capacities(1.0);
        (net, residual)
    }

    #[test]
    fn reserve_commit_keeps_debits() {
        let (net, mut residual) = reserve_fixture();
        let mut r = net
            .try_reserve(&mut residual, &[(NodeId(0), 300.0), (NodeId(2), 500.0)])
            .expect("fits");
        assert_eq!(r.state(), ReservationState::Pending);
        assert!((r.total() - 800.0).abs() < 1e-12);
        assert_eq!(residual, vec![700.0, 0.0, 1500.0, 0.0]);
        net.commit(&mut r).expect("pending commits");
        assert_eq!(r.state(), ReservationState::Committed);
        assert_eq!(residual, vec![700.0, 0.0, 1500.0, 0.0], "commit keeps the debits");
    }

    #[test]
    fn reserve_abort_round_trips() {
        let (net, mut residual) = reserve_fixture();
        let before = residual.clone();
        let mut r = net
            .try_reserve(&mut residual, &[(NodeId(0), 300.0), (NodeId(0), 200.0)])
            .expect("fits");
        assert_eq!(residual[0], 500.0, "same-node debits accumulate");
        net.abort(&mut residual, &mut r).expect("pending aborts");
        assert_eq!(residual, before, "abort must return every debit exactly");
        assert_eq!(r.state(), ReservationState::Aborted);
    }

    #[test]
    fn reserve_abort_commit_sequence_is_rejected() {
        // Regression: a commit must not be able to resurrect an aborted
        // reservation (which would re-debit capacity the abort returned).
        let (net, mut residual) = reserve_fixture();
        let before = residual.clone();
        let mut r = net.try_reserve(&mut residual, &[(NodeId(2), 750.0)]).expect("fits");
        net.abort(&mut residual, &mut r).expect("first abort is fine");
        assert_eq!(
            net.commit(&mut r),
            Err(ReserveError::NotPending { state: ReservationState::Aborted }),
            "commit after abort must be rejected"
        );
        assert_eq!(
            net.abort(&mut residual, &mut r),
            Err(ReserveError::NotPending { state: ReservationState::Aborted }),
            "double abort must be rejected"
        );
        assert_eq!(r.state(), ReservationState::Aborted);
        assert_eq!(residual, before, "failed transitions must not touch capacity");
    }

    #[test]
    fn commit_then_abort_is_rejected() {
        let (net, mut residual) = reserve_fixture();
        let mut r = net.try_reserve(&mut residual, &[(NodeId(0), 100.0)]).expect("fits");
        net.commit(&mut r).unwrap();
        assert_eq!(
            net.abort(&mut residual, &mut r),
            Err(ReserveError::NotPending { state: ReservationState::Committed })
        );
        assert_eq!(
            net.commit(&mut r),
            Err(ReserveError::NotPending { state: ReservationState::Committed }),
            "double commit must be rejected"
        );
        assert_eq!(residual[0], 900.0, "committed debit stays");
    }

    #[test]
    fn insufficient_reserve_is_all_or_nothing() {
        let (net, mut residual) = reserve_fixture();
        let before = residual.clone();
        let err = net
            .try_reserve(&mut residual, &[(NodeId(0), 600.0), (NodeId(0), 600.0)])
            .expect_err("1200 > 1000 must fail even split across two debits");
        match err {
            ReserveError::Insufficient { node, requested, available } => {
                assert_eq!(node, NodeId(0));
                assert!((requested - 1200.0).abs() < 1e-12);
                assert!((available - 1000.0).abs() < 1e-12);
            }
            other => panic!("unexpected error {other:?}"),
        }
        assert_eq!(residual, before, "failed reserve must not debit anything");
    }

    #[test]
    fn zero_amount_debits_are_dropped() {
        let (net, mut residual) = reserve_fixture();
        let r = net.try_reserve(&mut residual, &[(NodeId(0), 0.0)]).expect("trivially fits");
        assert!(r.is_empty());
        assert_eq!(residual, vec![1000.0, 0.0, 2000.0, 0.0]);
    }
}

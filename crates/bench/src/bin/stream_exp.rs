//! Multi-request stream experiment (extension beyond the paper's
//! single-request evaluation): push a stream of requests through one shared
//! network per algorithm and report admission rate, mean reliability,
//! expectation-met rate, and the early-vs-late reliability erosion.
//!
//! Usage: `cargo run -p bench-harness --release --bin stream_exp --
//! [--trials N] [--seed S]` (trials = independent network/stream pairs).

use bench_harness::HarnessArgs;
use expkit::stats::Accumulator;
use expkit::Table;
use mecnet::request::SfcRequest;
use mecnet::workload::{generate_catalog, generate_network, WorkloadConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use relaug::stream::{process_stream, Algorithm, StreamConfig};

const REQUESTS_PER_STREAM: usize = 100;

fn main() {
    let args = match HarnessArgs::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("stream_exp: {e}");
            std::process::exit(2);
        }
    };
    let trials = args.trials.min(200);
    println!("## Stream experiment — {REQUESTS_PER_STREAM} requests per stream, {trials} streams\n");

    let algorithms: Vec<(&str, Algorithm)> = vec![
        ("ILP", Algorithm::Ilp(Default::default())),
        ("Randomized", Algorithm::Randomized(Default::default())),
        ("Heuristic", Algorithm::Heuristic(Default::default())),
        ("Greedy", Algorithm::Greedy(Default::default())),
    ];
    let mut table = Table::new(vec![
        "algorithm",
        "admitted",
        "mean rel.",
        "SLO met",
        "early rel.",
        "late rel.",
    ]);
    for (name, algorithm) in algorithms {
        let mut admitted = Accumulator::new();
        let mut rel = Accumulator::new();
        let mut slo = Accumulator::new();
        let mut early = Accumulator::new();
        let mut late = Accumulator::new();
        for t in 0..trials {
            let seed = expkit::fan_out(args.seed, t as u64);
            let mut rng = StdRng::seed_from_u64(seed);
            let wl = WorkloadConfig::default();
            let network = generate_network(&wl, &mut rng);
            let catalog = generate_catalog(&wl, &mut rng);
            let requests: Vec<SfcRequest> = (0..REQUESTS_PER_STREAM)
                .map(|i| SfcRequest::random(i, &catalog, (3, 6), 0.99, wl.nodes, &mut rng))
                .collect();
            let cfg = StreamConfig { algorithm: algorithm.clone(), ..Default::default() };
            let out = process_stream(&network, &catalog, &requests, &cfg, &mut rng);
            admitted.push(out.admitted() as f64);
            if let Some(m) = out.mean_reliability() {
                rel.push(m);
            }
            if let Some(e) = out.expectation_rate() {
                slo.push(e);
            }
            let adm: Vec<f64> = out
                .records
                .iter()
                .filter(|r| r.admitted)
                .map(|r| r.achieved_reliability)
                .collect();
            if adm.len() >= 4 {
                let third = adm.len() / 3;
                early.push(adm[..third].iter().sum::<f64>() / third as f64);
                late.push(
                    adm[adm.len() - third..].iter().sum::<f64>() / third as f64,
                );
            }
        }
        table.add_row(vec![
            name.to_string(),
            format!("{:.1}/{}", admitted.summary().mean, REQUESTS_PER_STREAM),
            format!("{:.4}", rel.summary().mean),
            format!("{:.0}%", 100.0 * slo.summary().mean),
            format!("{:.4}", early.summary().mean),
            format!("{:.4}", late.summary().mean),
        ]);
    }
    println!("{}", table.to_markdown());
    println!(
        "\nEarly vs late: the reliability requests get degrades over the\n\
         stream as earlier arrivals consume the backup capacity around\n\
         their primaries — the system-level effect the paper's\n\
         single-request experiments hold fixed."
    );
}

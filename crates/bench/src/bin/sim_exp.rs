//! Discrete-event failure/recovery experiment: simulate a stream of SFC
//! requests on one shared network under instance failure/repair dynamics and
//! compare repair policies by *measured* availability against the analytic
//! `u_j` the augmentation promises.
//!
//! Usage: `cargo run -p bench-harness --release --bin sim_exp --
//! [--policy none|reactive|audit] [--duration T] [--seed S]
//! [--audit-interval T] [--trace PATH] [--json PATH] [--workers W]
//! [--metrics-interval N|Xs] [--flight DIR]`
//!
//! `--metrics-interval` switches each run to windowed telemetry: per-event
//! `sim.*` emission is suppressed in favour of one `sim.window` summary per
//! `N` arrivals or `X` *simulated* seconds (still deterministic). `--flight
//! DIR` keeps a ring of recent raw events per run, dumped to
//! `DIR/flight-sim-<policy>.jsonl` on the first SLO violation observed at a
//! departure.
//!
//! Without `--policy`, all three policies run on the *same* seed (and thus
//! the same arrival stream — the workload RNG is fanned out separately from
//! the solver RNG), giving a paired comparison table. `--trace PATH` writes
//! the full `sim.*` event log as JSONL; runs are deterministic, so the same
//! seed reproduces the trace byte for byte. `--json PATH` dumps every run's
//! full SLO report.
//!
//! `--workers W` (default 1) runs the per-policy simulations on up to `W`
//! threads; `--workers auto` resolves to the machine's effective parallelism
//! (sequential on a single-core box, so `auto` never picks the slower
//! engine). Policy runs are fully independent (each gets its own policy
//! instance and telemetry recorder, merged back in policy order), so the
//! tables, the JSON dump and the trace are byte-identical to `--workers 1`.
//!
//! `--scenario NAME|PATH` replaces the toy substrate and Poisson workload
//! with a scenario-zoo build: the topology/catalog come from the spec and
//! the arrival process from the lazy [`scen::RequestStream`] (diurnal +
//! flash-crowd Poisson, popularity-skewed endpoints, spec-distributed TTLs
//! as holding times). Every policy replays the *same* deterministic stream,
//! pulled one arrival at a time — memory stays O(active requests), never
//! O(stream). `--requests N` caps the stream; the simulated `--duration`
//! bounds the run either way.

use bench_harness::HarnessArgs;
use expkit::Table;
use mecnet::request::SfcRequest;
use mecnet::vnf::VnfCatalog;
use mecnet::workload::{generate_catalog, generate_network, WorkloadConfig};
use obs::Recorder;
use rand::rngs::StdRng;
use rand::SeedableRng;
use scen::{BuiltScenario, RequestStream, ScenarioSpec, TimedRequest, TimedRequestStream};
use sim::{from_name, RequestSource, SimConfig, SloReport};

/// Adapter from the scenario generator's timed stream to the simulator's
/// [`RequestSource`]: arrival gaps come from consecutive stream timestamps
/// and the spec-distributed TTL becomes the holding time, so the engine's
/// workload RNG is never drawn — the stream alone (a pure function of the
/// spec seed) determines the workload, for any policy and worker count.
struct ScenarioSource {
    stream: TimedRequestStream,
    pending: Option<TimedRequest>,
}

impl ScenarioSource {
    fn new(built: &BuiltScenario, limit: u64) -> ScenarioSource {
        ScenarioSource { stream: RequestStream::new(built, limit).timed(), pending: None }
    }
}

impl RequestSource for ScenarioSource {
    fn first_gap(&mut self, _rng: &mut StdRng) -> f64 {
        self.pending = self.stream.next();
        self.pending.as_ref().map_or(f64::INFINITY, |t| t.arrival)
    }

    fn arrival(
        &mut self,
        id: usize,
        _catalog: &VnfCatalog,
        _num_nodes: usize,
        _rng: &mut StdRng,
    ) -> (SfcRequest, f64, f64) {
        let cur = self.pending.take().expect("arrival fired without a pending request");
        self.pending = self.stream.next();
        let gap = self.pending.as_ref().map_or(f64::INFINITY, |n| n.arrival - cur.arrival);
        let mut req = cur.request;
        req.id = id;
        (req, cur.ttl, gap)
    }
}

fn main() {
    let args = match HarnessArgs::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("sim_exp: {e}");
            std::process::exit(2);
        }
    };
    if args.plan_cache > 0 {
        println!(
            "note: --plan-cache {} ignored — the failure/recovery simulator \
             releases capacity on departures, which breaks the cache's \
             monotone-residual watermark and epoch invalidation; the plan \
             cache is a stream_exp (admission-only) feature\n",
            args.plan_cache
        );
    }
    let audit_interval = args.audit_interval.unwrap_or(5.0);
    let policy_names: Vec<String> = match &args.policy {
        Some(name) => vec![name.clone()],
        None => vec!["none".into(), "reactive".into(), "audit".into()],
    };
    let policies = match policy_names
        .iter()
        .map(|n| from_name(n, audit_interval))
        .collect::<Result<Vec<_>, _>>()
    {
        Ok(p) => p,
        Err(e) => {
            eprintln!("sim_exp: {e}");
            std::process::exit(2);
        }
    };

    // One shared substrate for every policy run: the scenario build when
    // `--scenario` is given, the toy workload-generator fixture otherwise.
    let scenario: Option<BuiltScenario> = args.scenario.as_deref().map(|s| {
        let spec = ScenarioSpec::load(s).unwrap_or_else(|e| {
            eprintln!("sim_exp: {e}");
            std::process::exit(2);
        });
        spec.build()
    });
    let stream_limit = args.requests.map(|r| r as u64).unwrap_or(u64::MAX);
    let wl = WorkloadConfig::default();
    let generated = if scenario.is_none() {
        let mut substrate_rng = StdRng::seed_from_u64(expkit::fan_out(args.seed, 0xBEEF));
        let network = generate_network(&wl, &mut substrate_rng);
        let catalog = generate_catalog(&wl, &mut substrate_rng);
        Some((network, catalog))
    } else {
        None
    };
    let (network, catalog) = match (&scenario, &generated) {
        (Some(built), _) => (&built.network, &built.catalog),
        (None, Some((network, catalog))) => (network, catalog),
        (None, None) => unreachable!(),
    };
    let cfg = SimConfig {
        duration: args.duration.unwrap_or(400.0),
        arrival_rate: 0.1,
        mean_holding: 120.0,
        mttr: 1.5,
        sfc_len_range: (3, 5),
        expectation: wl.expectation,
        seed: args.seed,
        metrics_interval: args.metrics_interval,
        flight_dir: args.flight.as_ref().map(std::path::PathBuf::from),
        ..Default::default()
    };
    match &scenario {
        Some(built) => println!(
            "## Failure/recovery simulation — scenario `{}`: {} nodes / {} cloudlets, \
             duration {}, arrival rate {}, MTTR {}\n",
            built.spec.name,
            built.network.num_nodes(),
            built.cloudlets(),
            cfg.duration,
            built.spec.stream.arrival_rate,
            cfg.mttr
        ),
        None => println!(
            "## Failure/recovery simulation — duration {}, arrival rate {}, MTTR {}\n",
            cfg.duration, cfg.arrival_rate, cfg.mttr
        ),
    }

    let mut rec = match &args.trace {
        Some(path) => Recorder::jsonl_file(std::path::Path::new(path)).unwrap_or_else(|e| {
            eprintln!("sim_exp: cannot open trace file {path}: {e}");
            std::process::exit(2);
        }),
        None => Recorder::noop(),
    };

    let reports: Vec<SloReport> = if args.workers > 1 && policy_names.len() > 1 {
        // Policy runs share nothing mutable: fan them out over a small thread
        // pool, buffering each run's telemetry in a memory recorder, then
        // merge the results back in policy order so output is byte-identical
        // to the sequential path.
        drop(policies);
        let slots: Vec<std::sync::Mutex<Option<(SloReport, Recorder)>>> =
            policy_names.iter().map(|_| std::sync::Mutex::new(None)).collect();
        let next = std::sync::atomic::AtomicUsize::new(0);
        let trace_enabled = rec.enabled();
        std::thread::scope(|scope| {
            for _ in 0..args.workers.min(policy_names.len()) {
                scope.spawn(|| loop {
                    let idx = next.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
                    let Some(name) = policy_names.get(idx) else { break };
                    let policy = from_name(name, audit_interval).expect("validated above");
                    let mut local =
                        if trace_enabled { Recorder::memory() } else { Recorder::noop() };
                    let report = match &scenario {
                        Some(built) => {
                            let mut source = ScenarioSource::new(built, stream_limit);
                            sim::run_with_source_traced(
                                network,
                                catalog,
                                &cfg,
                                policy.as_ref(),
                                &mut source,
                                &mut local,
                            )
                        }
                        None => {
                            sim::run_traced(network, catalog, &cfg, policy.as_ref(), &mut local)
                        }
                    };
                    *slots[idx].lock().unwrap() = Some((report, local));
                });
            }
        });
        slots
            .into_iter()
            .map(|slot| {
                let (report, local) = slot.into_inner().unwrap().expect("every slot filled");
                rec.absorb(local);
                report
            })
            .collect()
    } else {
        policies
            .iter()
            .map(|policy| match &scenario {
                Some(built) => {
                    let mut source = ScenarioSource::new(built, stream_limit);
                    sim::run_with_source_traced(
                        network,
                        catalog,
                        &cfg,
                        policy.as_ref(),
                        &mut source,
                        &mut rec,
                    )
                }
                None => sim::run_traced(network, catalog, &cfg, policy.as_ref(), &mut rec),
            })
            .collect()
    };

    let mut table = Table::new(vec![
        "policy",
        "admitted",
        "availability",
        "analytic u",
        "gap",
        "SLO met",
        "outages",
        "outage time",
        "repairs",
        "re-augment",
    ]);
    for rep in &reports {
        table.add_row(vec![
            rep.policy.clone(),
            format!("{}/{}", rep.admitted, rep.arrivals),
            format!("{:.4}", rep.mean_availability),
            format!("{:.4}", rep.mean_analytic),
            format!("{:+.4}", rep.mean_availability - rep.mean_analytic),
            format!("{:.0}%", 100.0 * rep.slo_attainment),
            format!("{}", rep.outage_count),
            format!("{:.1}", rep.total_outage_time),
            format!("{}", rep.instance_repairs),
            format!("{}", rep.reaugmentations),
        ]);
    }
    println!("{}", table.to_markdown());

    let mut dist = Table::new(vec![
        "policy",
        "outage p50",
        "outage p95",
        "repair mean",
        "repair p95",
        "secondaries",
    ]);
    for rep in &reports {
        dist.add_row(vec![
            rep.policy.clone(),
            format!("{:.2}", rep.outage_p50),
            format!("{:.2}", rep.outage_p95),
            format!("{:.2}", rep.repair_latency_mean),
            format!("{:.2}", rep.repair_latency_p95),
            format!("{}", rep.secondaries_placed),
        ]);
    }
    println!("\n### outage / repair distributions\n");
    println!("{}", dist.to_markdown());

    if let Some(path) = &args.json {
        let json = serde_json::to_string_pretty(&reports).expect("reports serialize");
        std::fs::write(path, json).unwrap_or_else(|e| {
            eprintln!("sim_exp: cannot write {path}: {e}");
            std::process::exit(2);
        });
        println!("\nwrote {} SLO report(s) to {path}", reports.len());
    }
    println!("\npeak RSS: {}", expkit::peak_rss_human());
    rec.flush().expect("flush trace");
    if let Some(path) = &args.trace {
        println!("\nwrote {} telemetry events to {path}", rec.events_emitted());
    }
    println!(
        "\nThe analytic u_j is a steady-state promise; with no repair policy\n\
         the measured availability converges to it, while reactive and\n\
         audit-driven re-augmentation push availability above the promise by\n\
         replacing redundancy the failures destroy."
    );
}

//! Reusable solver scratch: the buffers the per-request hot path needs.
//!
//! The streaming pipelines solve one augmentation instance per admitted
//! request; at ~µs solve times, per-request heap allocation is a first-order
//! cost. [`SolveScratch`] owns every working buffer the heuristic and greedy
//! solvers (and the matching layer underneath) touch, so a warm scratch makes
//! the solve loop allocation-free — `crates/bench/benches/solve_alloc.rs`
//! pins "0 heap allocations per request after warm-up" with a counting global
//! allocator.
//!
//! Ownership rules (also in DESIGN.md "Hot path & batching"):
//!
//! * One `SolveScratch` per stream, or per parallel worker — never shared.
//! * Buffers carry no information across solves: every solver clears or
//!   overwrites each buffer before reading it, so solver output is a pure
//!   function of `(instance, config, RNG state)` regardless of what ran on
//!   the scratch before. The parallel pipeline's byte-identity tests exercise
//!   exactly this (worker scratches see different request interleavings).
//! * Growth is high-water-mark only: a buffer grows to the largest instance
//!   seen and stays there.

use crate::instance::AugmentationInstance;
use crate::reliability;
use crate::solution::Augmentation;
use matching::{Matching, MatchingScratch};
use mecnet::graph::NodeId;

/// Chain reliability from per-function secondary counts, without building an
/// [`Augmentation`]. Bit-identical to [`Augmentation::reliability`]: same
/// per-function `function_reliability` terms multiplied in the same order.
pub fn rel_from_counts(inst: &AugmentationInstance, counts: &[usize]) -> f64 {
    debug_assert_eq!(counts.len(), inst.functions.len());
    inst.functions
        .iter()
        .zip(counts)
        .map(|(f, &m)| reliability::function_reliability(f.reliability, m + f.existing_backups))
        .product()
}

/// An [`Augmentation`] under construction, stored in reusable buffers.
///
/// `rows` mirrors `Augmentation::placements` exactly — same find-or-push
/// `add`, same decrement-and-`swap_remove` `remove` — so [`Self::materialize`]
/// produces the identical struct (entry order included) that the legacy
/// allocating path would have built.
#[derive(Debug, Clone, Default)]
pub struct SolutionScratch {
    /// Per-function `(bin, count)` rows; only `rows[..active]` are live.
    rows: Vec<Vec<(usize, usize)>>,
    active: usize,
    /// Per-function secondary counts, maintained incrementally (what
    /// `Augmentation::counts()` would recompute).
    counts: Vec<usize>,
    /// Per-bin load buffer for [`Self::trim_to_expectation`].
    loads: Vec<f64>,
}

impl SolutionScratch {
    /// Start a fresh solution for a chain of `chain_len` functions.
    pub fn begin(&mut self, chain_len: usize) {
        if self.rows.len() < chain_len {
            self.rows.resize_with(chain_len, Vec::new);
        }
        for row in &mut self.rows[..chain_len] {
            row.clear();
        }
        self.active = chain_len;
        self.counts.clear();
        self.counts.resize(chain_len, 0);
    }

    /// Record one more secondary of `func` on `bin` (mirror of
    /// [`Augmentation::add`] with count 1).
    pub fn add(&mut self, func: usize, bin: usize) {
        debug_assert!(func < self.active);
        let row = &mut self.rows[func];
        match row.iter_mut().find(|(b, _)| *b == bin) {
            Some((_, c)) => *c += 1,
            None => row.push((bin, 1)),
        }
        self.counts[func] += 1;
    }

    /// Remove one secondary of `func` from `bin` (mirror of
    /// [`Augmentation::remove`]).
    pub fn remove(&mut self, func: usize, bin: usize) -> bool {
        let row = &mut self.rows[func];
        if let Some(pos) = row.iter().position(|&(b, c)| b == bin && c > 0) {
            row[pos].1 -= 1;
            if row[pos].1 == 0 {
                row.swap_remove(pos);
            }
            self.counts[func] -= 1;
            true
        } else {
            false
        }
    }

    /// Per-function secondary counts of the solution under construction.
    pub fn counts(&self) -> &[usize] {
        &self.counts[..self.active]
    }

    /// Current chain reliability (bit-identical to what
    /// `Augmentation::reliability` would return for the materialized rows).
    pub fn reliability(&self, inst: &AugmentationInstance) -> f64 {
        rel_from_counts(inst, self.counts())
    }

    fn recompute_loads(&mut self, inst: &AugmentationInstance) {
        self.loads.clear();
        self.loads.resize(inst.bins.len(), 0.0);
        for (i, row) in self.rows[..self.active].iter().enumerate() {
            let demand = inst.functions[i].demand;
            for &(b, c) in row {
                self.loads[b] += demand * c as f64;
            }
        }
    }

    /// Mirror of [`Augmentation::trim_to_expectation`]: same removal order
    /// (smallest-gain function whose removal keeps the expectation, freeing
    /// its most-loaded bin), same floating-point expressions, no allocation.
    pub fn trim_to_expectation(&mut self, inst: &AugmentationInstance) -> usize {
        let mut removed = 0;
        loop {
            let rel = self.reliability(inst);
            if rel < inst.expectation {
                break;
            }
            let mut best: Option<(f64, usize)> = None; // (gain, func)
            for (i, &m) in self.counts().iter().enumerate() {
                if m == 0 {
                    continue;
                }
                let r = inst.functions[i].reliability;
                let e = inst.functions[i].existing_backups;
                let gain = reliability::log_gain(r, e + m);
                let new_rel = rel / reliability::function_reliability(r, e + m)
                    * reliability::function_reliability(r, e + m - 1);
                if new_rel >= inst.expectation && best.is_none_or(|(g, _)| gain < g) {
                    best = Some((gain, i));
                }
            }
            let Some((_, func)) = best else { break };
            self.recompute_loads(inst);
            let loads = &self.loads;
            let bin = self.rows[func]
                .iter()
                .max_by(|&&(a, _), &&(b, _)| {
                    let ra = loads[a] / inst.bins[a].residual;
                    let rb = loads[b] / inst.bins[b].residual;
                    ra.total_cmp(&rb)
                })
                .map(|&(b, _)| b)
                .expect("function has placements");
            let ok = self.remove(func, bin);
            debug_assert!(ok);
            removed += 1;
        }
        removed
    }

    /// Copy the rows out into an owned [`Augmentation`] — identical (entry
    /// order included) to the one the allocating path would have built.
    pub fn materialize(&self) -> Augmentation {
        let mut aug = Augmentation::empty(self.active);
        for (i, row) in self.rows[..self.active].iter().enumerate() {
            for &(b, c) in row {
                aug.add(i, b, c);
            }
        }
        aug
    }
}

/// Working buffers of the heuristic's matching loop (the greedy baseline
/// reuses `residual`).
#[derive(Debug, Clone, Default)]
pub struct HeuristicScratch {
    pub cap: Vec<usize>,
    pub next_k: Vec<usize>,
    pub residual: Vec<f64>,
    /// Bipartite edges `(bin, right item, cost)` of the current round — only
    /// filled when a round takes the rebuild/fallback/batch path; the
    /// incremental engine consumes the pruned CSR below instead.
    pub edges: Vec<(usize, usize, f64)>,
    /// Right item index -> `(func, k)`.
    pub item_of: Vec<(usize, usize)>,
    /// Matched pairs `(bin, right, position)` for the stable commit order.
    pub pairs: Vec<(usize, usize, usize)>,
    pub placed_per_func: Vec<usize>,
    /// Delta-maintained usable-bin lists: `fn_id` holds the still-active
    /// functions (ascending), `fn_bins[fn_bins_start[p]..fn_bins_start[p+1]]`
    /// the usable bins of `fn_id[p]` in eligible order. Built once per
    /// request, then filtered in place each round — residuals only shrink
    /// within a solve, so the filter is identical to recomputing from
    /// `eligible_bins`.
    pub fn_id: Vec<usize>,
    pub fn_bins: Vec<usize>,
    pub fn_bins_start: Vec<usize>,
    /// Per-item Eq. 3 cost, aligned with `item_of` (one ladder per function,
    /// strictly increasing in `k`).
    pub item_cost: Vec<f64>,
    /// Functions contributing items this round: `(active position, first
    /// item index)`; the segment ends where the next entry starts.
    pub round_funcs: Vec<(usize, usize)>,
    /// `batch_rounds` ablation buffers (per-bin smallest eligible demand and
    /// the derived multiplicity bound).
    pub batch_min_demand: Vec<f64>,
    pub batch_b_left: Vec<usize>,
}

/// Buffers for the stream commit/speculation protocol (demand lists, bin
/// loads, capacity debits, and a worker-local residual image for batched
/// speculation).
#[derive(Debug, Clone, Default)]
pub struct CommitScratch {
    pub demands: Vec<f64>,
    pub loads: Vec<f64>,
    pub debits: Vec<(NodeId, f64)>,
    pub residual: Vec<f64>,
}

/// All scratch state one stream (or one parallel worker) owns.
#[derive(Debug, Clone)]
pub struct SolveScratch {
    pub sol: SolutionScratch,
    pub heur: HeuristicScratch,
    pub matching: MatchingScratch,
    /// Output slot for [`matching::min_cost_max_matching_into`].
    pub matching_out: Matching,
    /// Ladder-aware incremental matching engine (dominance-pruned graphs,
    /// optional cross-round price carry). Holds no cross-request state the
    /// heuristic doesn't explicitly reset via `begin_request`.
    pub inc: matching::IncrementalMatcher,
    pub commit: CommitScratch,
    /// Revised-simplex workspace (factorization + eta-file buffers) reused by
    /// the exact ILP path so branch-and-bound node re-solves allocate nothing.
    /// [`milp::solve_milp_with_ws`] clears any carried basis at entry, so only
    /// capacity — never state — survives across solves.
    pub lp: milp::LpWorkspace,
}

impl Default for SolveScratch {
    fn default() -> Self {
        Self::new()
    }
}

impl SolveScratch {
    pub fn new() -> Self {
        SolveScratch {
            sol: SolutionScratch::default(),
            heur: HeuristicScratch::default(),
            matching: MatchingScratch::new(),
            matching_out: Matching { pairs: Vec::new(), cost: 0.0 },
            inc: matching::IncrementalMatcher::new(),
            commit: CommitScratch::default(),
            lp: milp::LpWorkspace::new(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{Bin, FunctionSlot};
    use mecnet::vnf::VnfTypeId;

    fn tiny_instance() -> AugmentationInstance {
        AugmentationInstance {
            functions: vec![
                FunctionSlot {
                    vnf: VnfTypeId(0),
                    demand: 100.0,
                    reliability: 0.8,
                    primary: NodeId(0),
                    eligible_bins: vec![0, 1],
                    max_secondaries: 5,
                    existing_backups: 0,
                },
                FunctionSlot {
                    vnf: VnfTypeId(1),
                    demand: 200.0,
                    reliability: 0.9,
                    primary: NodeId(1),
                    eligible_bins: vec![1],
                    max_secondaries: 2,
                    existing_backups: 0,
                },
            ],
            bins: vec![
                Bin { node: NodeId(0), residual: 300.0 },
                Bin { node: NodeId(1), residual: 400.0 },
            ],
            l: 1,
            expectation: 0.99,
        }
    }

    #[test]
    fn mirrors_augmentation_add_remove_and_reliability() {
        let inst = tiny_instance();
        let mut aug = Augmentation::empty(2);
        let mut sol = SolutionScratch::default();
        sol.begin(2);
        for (f, b) in [(0, 0), (0, 0), (0, 1), (1, 1)] {
            aug.add(f, b, 1);
            sol.add(f, b);
        }
        assert_eq!(sol.counts(), aug.counts().as_slice());
        assert_eq!(sol.reliability(&inst).to_bits(), aug.reliability(&inst).to_bits());
        assert_eq!(sol.materialize(), aug);
        assert_eq!(sol.remove(0, 0), aug.remove(0, 0));
        assert_eq!(sol.remove(1, 0), aug.remove(1, 0)); // nothing there: false
        assert_eq!(sol.materialize(), aug);
    }

    #[test]
    fn trim_mirror_matches_augmentation_trim() {
        let inst = tiny_instance();
        let mut aug = Augmentation::empty(2);
        let mut sol = SolutionScratch::default();
        sol.begin(2);
        // Overshoot the expectation, then trim both ways.
        for (f, b) in [(0, 0), (0, 0), (0, 1), (1, 1), (1, 1)] {
            aug.add(f, b, 1);
            sol.add(f, b);
        }
        let removed_aug = aug.trim_to_expectation(&inst);
        let removed_sol = sol.trim_to_expectation(&inst);
        assert_eq!(removed_sol, removed_aug);
        assert_eq!(sol.materialize(), aug);
    }

    #[test]
    fn begin_resets_previous_solution() {
        let inst = tiny_instance();
        let mut sol = SolutionScratch::default();
        sol.begin(2);
        sol.add(0, 0);
        sol.add(1, 1);
        sol.begin(1); // shrink: only function 0 remains live
        assert_eq!(sol.counts(), &[0]);
        let aug = sol.materialize();
        assert_eq!(aug.chain_len(), 1);
        assert_eq!(aug.total_secondaries(), 0);
        assert!((rel_from_counts(&inst, &[0, 0]) - 0.72).abs() < 1e-12);
    }
}

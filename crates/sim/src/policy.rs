//! Pluggable repair policies: what the operator does when instances fail.
//!
//! The intrinsic failure/repair clocks of [`crate::process`] model the
//! *platform* — an instance that crashes is rebooted after ~MTTR regardless
//! of policy, which is exactly what makes each instance's availability `r_i`.
//! A [`RepairPolicy`] is the *orchestration* layer on top: it may place
//! additional secondaries (by re-running any augmentation algorithm on the
//! current residual capacity) when a request degrades, lifting availability
//! beyond what the static placement provides.

/// A policy's read-only view of one degraded (or healthy) request.
#[derive(Debug, Clone, Copy)]
pub struct RequestView<'a> {
    pub id: usize,
    /// Reliability expectation `ρ_j`.
    pub expectation: f64,
    /// Per chain position: instance reliability `r_i`.
    pub reliabilities: &'a [f64],
    /// Per chain position: instances currently **up**.
    pub live: &'a [usize],
    /// Per chain position: instances provisioned and not permanently lost
    /// (up, or down and being repaired).
    pub alive: &'a [usize],
}

impl RequestView<'_> {
    /// Analytic chain reliability over a set of per-position instance
    /// counts: `Π_i (1 − (1 − r_i)^{n_i})`; zero if any position has none.
    fn chain_reliability(&self, counts: &[usize]) -> f64 {
        self.reliabilities
            .iter()
            .zip(counts)
            .map(|(&r, &n)| 1.0 - (1.0 - r).powi(n as i32))
            .product()
    }

    /// `u_j` counting only instances that are up right now — the quantity a
    /// failure dents and a repair restores.
    pub fn live_reliability(&self) -> f64 {
        self.chain_reliability(self.live)
    }

    /// Long-run `u_j` counting every provisioned instance (down-but-repairing
    /// instances contribute their steady-state `r_i`). Only permanent losses
    /// lower this.
    pub fn alive_reliability(&self) -> f64 {
        self.chain_reliability(self.alive)
    }

    /// Whether some chain position has no live instance (the request is in
    /// outage right now).
    pub fn has_dead_function(&self) -> bool {
        self.live.contains(&0)
    }
}

/// When and for which requests the simulator re-runs augmentation.
pub trait RepairPolicy: std::fmt::Debug {
    fn name(&self) -> &'static str;

    /// Audit period; `Some` schedules recurring `AuditTick` events.
    fn audit_interval(&self) -> Option<f64> {
        None
    }

    /// Called right after an instance failure hits `req`: return `true` to
    /// re-augment the request immediately.
    fn repair_on_failure(&self, req: &RequestView) -> bool {
        let _ = req;
        false
    }

    /// Called for every active request at each audit tick: return `true` to
    /// re-augment it.
    fn repair_on_audit(&self, req: &RequestView) -> bool {
        let _ = req;
        false
    }
}

/// Baseline: never re-augment. Availability is whatever the initial
/// placement plus the intrinsic failure/repair cycles deliver — the regime
/// whose long-run availability equals the analytic `u_j`.
#[derive(Debug, Clone, Copy, Default)]
pub struct NoRepair;

impl RepairPolicy for NoRepair {
    fn name(&self) -> &'static str {
        "none"
    }
}

/// On every failure, re-augment the affected request if the failure left a
/// chain position with no live instance or dropped the live analytic `u_j`
/// below the expectation `ρ_j`.
#[derive(Debug, Clone, Copy, Default)]
pub struct Reactive;

impl RepairPolicy for Reactive {
    fn name(&self) -> &'static str {
        "reactive"
    }

    fn repair_on_failure(&self, req: &RequestView) -> bool {
        req.has_dead_function() || req.live_reliability() < req.expectation
    }
}

/// Sweep all active requests every `interval` time units and re-augment the
/// degraded ones (live `u_j` below `ρ_j`). Cheaper than [`Reactive`] — no
/// solver call in the failure path — at the price of up to one interval of
/// exposure.
#[derive(Debug, Clone, Copy)]
pub struct PeriodicAudit {
    pub interval: f64,
}

impl PeriodicAudit {
    pub fn new(interval: f64) -> PeriodicAudit {
        assert!(interval > 0.0 && interval.is_finite(), "audit interval must be positive");
        PeriodicAudit { interval }
    }
}

impl RepairPolicy for PeriodicAudit {
    fn name(&self) -> &'static str {
        "audit"
    }

    fn audit_interval(&self) -> Option<f64> {
        Some(self.interval)
    }

    fn repair_on_audit(&self, req: &RequestView) -> bool {
        req.has_dead_function() || req.live_reliability() < req.expectation
    }
}

/// Build a policy from its CLI name (`none` | `reactive` | `audit`).
pub fn from_name(name: &str, audit_interval: f64) -> Result<Box<dyn RepairPolicy>, String> {
    match name {
        "none" | "norepair" => Ok(Box::new(NoRepair)),
        "reactive" => Ok(Box::new(Reactive)),
        "audit" | "periodic" => Ok(Box::new(PeriodicAudit::new(audit_interval))),
        other => Err(format!("unknown repair policy {other:?} (none|reactive|audit)")),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn view<'a>(live: &'a [usize], alive: &'a [usize], rel: &'a [f64]) -> RequestView<'a> {
        RequestView { id: 0, expectation: 0.99, reliabilities: rel, live, alive }
    }

    #[test]
    fn live_reliability_counts_up_instances() {
        let rel = [0.8, 0.9];
        let v = view(&[2, 1], &[3, 1], &rel);
        // f0: 1 - 0.2^2 = 0.96; f1: 0.9.
        assert!((v.live_reliability() - 0.96 * 0.9).abs() < 1e-12);
        // alive adds one more f0 instance: 1 - 0.2^3 = 0.992.
        assert!((v.alive_reliability() - 0.992 * 0.9).abs() < 1e-12);
        assert!(!v.has_dead_function());
    }

    #[test]
    fn dead_function_zeroes_reliability() {
        let rel = [0.8, 0.9];
        let v = view(&[0, 3], &[1, 3], &rel);
        assert!(v.has_dead_function());
        assert_eq!(v.live_reliability(), 0.0);
        assert!(v.alive_reliability() > 0.0);
    }

    #[test]
    fn reactive_triggers_below_expectation() {
        let rel = [0.8, 0.9];
        // Healthy: plenty of redundancy, no trigger.
        let healthy = view(&[4, 3], &[4, 3], &rel);
        assert!(healthy.live_reliability() >= 0.99);
        assert!(!Reactive.repair_on_failure(&healthy));
        // Degraded: a failure took f1 to one live instance.
        let degraded = view(&[4, 1], &[4, 2], &rel);
        assert!(Reactive.repair_on_failure(&degraded));
        // NoRepair never triggers.
        assert!(!NoRepair.repair_on_failure(&degraded));
        assert!(NoRepair.audit_interval().is_none());
    }

    #[test]
    fn audit_policy_has_interval_and_same_predicate() {
        let p = PeriodicAudit::new(5.0);
        assert_eq!(p.audit_interval(), Some(5.0));
        let rel = [0.8];
        let degraded = view(&[1], &[1], &rel);
        assert!(p.repair_on_audit(&degraded));
        assert!(!p.repair_on_failure(&degraded), "audit policy stays out of the failure path");
    }

    #[test]
    fn from_name_parses_all_policies() {
        assert_eq!(from_name("none", 1.0).unwrap().name(), "none");
        assert_eq!(from_name("reactive", 1.0).unwrap().name(), "reactive");
        assert_eq!(from_name("audit", 2.0).unwrap().name(), "audit");
        assert!(from_name("bogus", 1.0).is_err());
    }
}

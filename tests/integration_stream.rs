//! End-to-end stream-processing integration tests over the public facade:
//! admission, augmentation, capacity accounting, and the sharing extension
//! interacting across crates.

use mec_sfc_reliability::mecnet::request::SfcRequest;
use mec_sfc_reliability::mecnet::workload::{generate_catalog, generate_network, WorkloadConfig};
use mec_sfc_reliability::relaug::stream::{process_stream, Algorithm, StreamConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn setup(
    seed: u64,
) -> (
    mec_sfc_reliability::mecnet::MecNetwork,
    mec_sfc_reliability::mecnet::VnfCatalog,
    Vec<SfcRequest>,
) {
    let wl = WorkloadConfig { nodes: 60, ..Default::default() };
    let mut rng = StdRng::seed_from_u64(seed);
    let network = generate_network(&wl, &mut rng);
    let catalog = generate_catalog(&wl, &mut rng);
    let requests: Vec<SfcRequest> = (0..60)
        .map(|i| SfcRequest::random(i, &catalog, (3, 5), 0.99, wl.nodes, &mut rng))
        .collect();
    (network, catalog, requests)
}

#[test]
fn capacity_is_conserved_across_the_stream() {
    let (network, catalog, requests) = setup(1);
    let mut rng = StdRng::seed_from_u64(2);
    let out = process_stream(&network, &catalog, &requests, &StreamConfig::default(), &mut rng);
    // Total consumption = initial - final, must equal primaries + secondaries
    // placed (all demands are positive; heuristic never overcommits).
    let initial: f64 = network.total_capacity();
    let fin: f64 = out.final_residual.iter().sum();
    assert!(fin <= initial + 1e-6);
    assert!(fin >= 0.0);
    // Admitted + rejected partition the stream.
    assert_eq!(out.admitted() + out.rejected(), requests.len());
}

#[test]
fn admission_rate_grows_with_capacity() {
    let (network, catalog, requests) = setup(3);
    let run = |fraction: f64| {
        let mut rng = StdRng::seed_from_u64(4);
        let cfg = StreamConfig { initial_capacity_fraction: fraction, ..Default::default() };
        process_stream(&network, &catalog, &requests, &cfg, &mut rng).admitted()
    };
    let low = run(0.25);
    let high = run(1.0);
    assert!(high >= low, "more capacity cannot admit fewer: {high} vs {low}");
    assert!(high > 0);
}

#[test]
fn sharing_never_reduces_slo_rate_materially() {
    let (network, catalog, requests) = setup(5);
    let run = |share: bool| {
        let mut rng = StdRng::seed_from_u64(6);
        let cfg = StreamConfig { share_backups: share, ..Default::default() };
        process_stream(&network, &catalog, &requests, &cfg, &mut rng)
    };
    let plain = run(false);
    let shared = run(true);
    let rate = |o: &mec_sfc_reliability::relaug::stream::StreamOutcome| {
        o.expectation_rate().unwrap_or(0.0)
    };
    assert!(rate(&shared) >= rate(&plain) - 0.1, "sharing should not hurt SLO rate");
    let secs = |o: &mec_sfc_reliability::relaug::stream::StreamOutcome| -> usize {
        o.records.iter().map(|r| r.secondaries).sum()
    };
    // Sharing shifts which bins each solve sees, so individual requests may
    // round differently; allow the same kind of small slack as the SLO-rate
    // check above rather than demanding instance-count dominance per seed.
    assert!(
        secs(&shared) <= secs(&plain) + 1 + secs(&plain) / 20,
        "sharing should not deploy materially more instances: {} vs {}",
        secs(&shared),
        secs(&plain)
    );
}

#[test]
fn traced_stream_logs_every_request_with_reasons() {
    use mec_sfc_reliability::obs::Recorder;
    use mec_sfc_reliability::relaug::stream::process_stream_traced;

    let (network, catalog, requests) = setup(9);
    let mut rng = StdRng::seed_from_u64(10);
    // Shrink capacity so the stream produces both admissions and rejections.
    let cfg =
        StreamConfig { share_backups: true, initial_capacity_fraction: 0.3, ..Default::default() };
    let mut rec = Recorder::memory();
    let out = process_stream_traced(&network, &catalog, &requests, &cfg, &mut rng, &mut rec);

    // Exactly one stream.request event per request, in arrival order.
    let events: Vec<_> = rec.events().iter().filter(|e| e.kind == "stream.request").collect();
    assert_eq!(events.len(), requests.len());
    for (event, record) in events.iter().zip(&out.records) {
        assert_eq!(event.field("id").unwrap().as_u64(), Some(record.id as u64));
        assert_eq!(event.field("admitted").unwrap().as_bool(), Some(record.admitted));
        if record.admitted {
            assert!(event.field("solve_s").unwrap().as_f64().unwrap() >= 0.0);
            assert_eq!(
                event.field("secondaries").unwrap().as_u64(),
                Some(record.secondaries as u64)
            );
        } else {
            // Every rejection carries a machine-readable reason.
            assert_eq!(event.field("reason").unwrap().as_str(), Some("no_primary_placement"));
        }
        // Residual snapshots never go negative: commits are clamped, so the
        // stream can never exceed the network's residual capacity.
        assert!(event.field("residual_min").unwrap().as_f64().unwrap() >= 0.0);
        assert!(event.field("residual_total").unwrap().as_f64().unwrap() >= 0.0);
    }
    assert!(out.rejected() > 0, "capacity squeeze should reject something");
    assert!(out.admitted() > 0, "capacity squeeze should still admit something");
    assert_eq!(rec.summary().counter("stream.admitted"), out.admitted() as u64);
    assert_eq!(rec.summary().counter("stream.rejected"), out.rejected() as u64);
    assert!(out.final_residual.iter().all(|&r| r >= 0.0));
}

#[test]
fn all_algorithms_complete_a_stream() {
    let (network, catalog, requests) = setup(7);
    for algorithm in [
        Algorithm::Ilp(Default::default()),
        Algorithm::Randomized(Default::default()),
        Algorithm::Heuristic(Default::default()),
        Algorithm::Greedy(Default::default()),
    ] {
        let mut rng = StdRng::seed_from_u64(8);
        let cfg = StreamConfig { algorithm, ..Default::default() };
        let out = process_stream(&network, &catalog, &requests[..20], &cfg, &mut rng);
        assert_eq!(out.records.len(), 20);
        for r in out.records.iter().filter(|r| r.admitted) {
            assert!(r.achieved_reliability >= r.base_reliability - 1e-9);
            assert!(r.achieved_reliability <= 1.0 + 1e-12);
        }
    }
}

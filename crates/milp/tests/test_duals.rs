//! Dual-value (shadow-price) extraction tests: strong duality and
//! complementary slackness on hand-checked and random LPs.

use milp::{solve_lp, LpStatus, Model, Relation, Sense};
use proptest::prelude::*;

#[test]
fn textbook_duals() {
    // max 3x + 2y s.t. x + y <= 4, x + 3y <= 6.
    // Optimal x=4, y=0: row 1 binds (dual 3), row 2 slack (dual 0).
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_var(0.0, f64::INFINITY, 3.0);
    let y = m.add_var(0.0, f64::INFINITY, 2.0);
    let r1 = m.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
    let r2 = m.add_constraint(vec![(x, 1.0), (y, 3.0)], Relation::Le, 6.0);
    let sol = solve_lp(&m).unwrap();
    let y1 = sol.duals[r1.index()].unwrap();
    let y2 = sol.duals[r2.index()].unwrap();
    assert!((y1 - 3.0).abs() < 1e-6, "dual of binding row = 3, got {y1}");
    assert!(y2.abs() < 1e-6, "dual of slack row = 0, got {y2}");
    // Strong duality: y'b == objective.
    assert!((y1 * 4.0 + y2 * 6.0 - sol.objective).abs() < 1e-6);
}

#[test]
fn minimization_ge_duals() {
    // min 2x + 3y s.t. x + y >= 4 with x <= 3, y <= 3.
    // Optimum x=3, y=1 (obj 9); the covering row binds with dual 3 (cost of
    // the marginal unit comes from y).
    let mut m = Model::new(Sense::Minimize);
    let x = m.add_var(0.0, 3.0, 2.0);
    let y = m.add_var(0.0, 3.0, 3.0);
    let r = m.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Ge, 4.0);
    let sol = solve_lp(&m).unwrap();
    let d = sol.duals[r.index()].unwrap();
    assert!((d - 3.0).abs() < 1e-6, "marginal cost should be 3, got {d}");
}

#[test]
fn shadow_price_predicts_objective_change() {
    // Perturb a binding rhs by eps: objective must move by dual*eps.
    let build = |cap: f64| {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(0.0, f64::INFINITY, 5.0);
        let y = m.add_var(0.0, f64::INFINITY, 4.0);
        m.add_constraint(vec![(x, 2.0), (y, 1.0)], Relation::Le, cap);
        m.add_constraint(vec![(x, 1.0), (y, 3.0)], Relation::Le, 9.0);
        m
    };
    let base = solve_lp(&build(8.0)).unwrap();
    let dual = base.duals[0].unwrap();
    let eps = 0.05;
    let perturbed = solve_lp(&build(8.0 + eps)).unwrap();
    let predicted = base.objective + dual * eps;
    assert!(
        (perturbed.objective - predicted).abs() < 1e-6,
        "predicted {predicted}, got {}",
        perturbed.objective
    );
}

#[test]
fn equality_rows_report_none() {
    let mut m = Model::new(Sense::Minimize);
    let x = m.add_var(0.0, 10.0, 1.0);
    let e = m.add_constraint(vec![(x, 1.0)], Relation::Eq, 4.0);
    let sol = solve_lp(&m).unwrap();
    assert_eq!(sol.status, LpStatus::Optimal);
    assert!(sol.duals[e.index()].is_none());
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Strong duality + complementary slackness on random max/<= LPs
    /// (non-negative data keeps them feasible and bounded).
    #[test]
    fn duality_invariants_hold(
        n in 2usize..6,
        rows in 1usize..4,
        data in proptest::collection::vec(0.1f64..5.0, 40),
        rhs in proptest::collection::vec(1.0f64..20.0, 4),
    ) {
        let mut m = Model::new(Sense::Maximize);
        let xs: Vec<_> = (0..n).map(|i| m.add_var(0.0, f64::INFINITY, data[i])).collect();
        for r in 0..rows {
            let terms: Vec<_> =
                xs.iter().enumerate().map(|(i, &v)| (v, data[4 + r * n + i] + 0.05)).collect();
            m.add_constraint(terms, Relation::Le, rhs[r]);
        }
        let sol = solve_lp(&m).unwrap();
        prop_assert_eq!(sol.status, LpStatus::Optimal);
        // Strong duality.
        let dual_obj: f64 = (0..rows)
            .map(|r| sol.duals[r].unwrap() * rhs[r])
            .sum();
        prop_assert!((dual_obj - sol.objective).abs() < 1e-5 * (1.0 + sol.objective.abs()),
            "strong duality violated: primal {} dual {}", sol.objective, dual_obj);
        // Dual feasibility: y >= 0 for <= rows in a max problem.
        for r in 0..rows {
            prop_assert!(sol.duals[r].unwrap() >= -1e-7);
        }
        // Complementary slackness: y_i > 0 only on binding rows.
        for (r, con_dual) in sol.duals.iter().take(rows).enumerate() {
            let activity: f64 =
                xs.iter().enumerate().map(|(i, &v)| (data[4 + r * n + i] + 0.05) * sol.x[v.index()]).sum();
            let slack = rhs[r] - activity;
            prop_assert!(con_dual.unwrap().abs() * slack.abs() < 1e-5,
                "complementary slackness violated on row {r}: y={} slack={}",
                con_dual.unwrap(), slack);
        }
    }
}

//! Property tests: presolve must preserve optima exactly, and the LP-format
//! writer/reader must round-trip every model.

use milp::presolve::presolve;
use milp::{io, solve_lp, solve_milp, LpStatus, Model, Relation, Sense};
use proptest::prelude::*;

fn arb_model() -> impl Strategy<Value = Model> {
    let vars = proptest::collection::vec((0.0f64..5.0, 0.5f64..8.0, any::<bool>()), 1..=8);
    let rows = proptest::collection::vec(
        (
            proptest::collection::vec(-3.0f64..3.0, 8),
            prop_oneof![Just(0u8), Just(1u8)],
            0.5f64..15.0,
        ),
        0..=5,
    );
    (vars, rows, any::<bool>()).prop_map(|(vars, rows, maximize)| {
        let mut m = Model::new(if maximize { Sense::Maximize } else { Sense::Minimize });
        let ids: Vec<_> =
            vars.iter()
                .map(|&(obj, ub, int)| {
                    if int {
                        m.add_integer_var(0.0, ub.ceil(), obj)
                    } else {
                        m.add_var(0.0, ub, obj)
                    }
                })
                .collect();
        for (coeffs, rel, rhs) in rows {
            let terms: Vec<_> = ids
                .iter()
                .zip(&coeffs)
                .filter(|(_, &c)| c.abs() > 0.05)
                .map(|(&v, &c)| (v, c))
                .collect();
            // Only `<=`/`>=` rows with positive rhs keep x = lower-bounds
            // feasible often enough to be interesting.
            let relation = if rel == 0 { Relation::Le } else { Relation::Ge };
            m.add_constraint(terms, relation, rhs);
        }
        m
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn presolve_preserves_lp_optimum(model in arb_model()) {
        let relaxed = model.relax();
        let p = presolve(&relaxed);
        let orig = solve_lp(&relaxed).unwrap();
        if p.stats.proven_infeasible {
            prop_assert_eq!(orig.status, LpStatus::Infeasible);
        } else {
            let reduced = solve_lp(&p.model).unwrap();
            prop_assert_eq!(orig.status, reduced.status);
            if orig.status == LpStatus::Optimal {
                prop_assert!((orig.objective - reduced.objective).abs()
                    < 1e-6 * (1.0 + orig.objective.abs()),
                    "presolve changed optimum: {} vs {}", orig.objective, reduced.objective);
            }
        }
    }

    #[test]
    fn presolve_preserves_milp_optimum(model in arb_model()) {
        let p = presolve(&model);
        let orig = solve_milp(&model).unwrap();
        if p.stats.proven_infeasible {
            prop_assert_eq!(orig.status, LpStatus::Infeasible);
        } else {
            let reduced = solve_milp(&p.model).unwrap();
            prop_assert_eq!(orig.status, reduced.status);
            if orig.status == LpStatus::Optimal {
                prop_assert!((orig.objective - reduced.objective).abs()
                    < 1e-6 * (1.0 + orig.objective.abs()));
            }
        }
    }

    #[test]
    fn lp_format_round_trips(model in arb_model()) {
        let text = io::write_lp(&model);
        let back = io::read_lp(&text).expect("own output must parse");
        prop_assert_eq!(back.num_vars(), model.num_vars());
        prop_assert_eq!(back.num_constraints(), model.num_constraints());
        let a = solve_lp(&model.relax()).unwrap();
        let b = solve_lp(&back.relax()).unwrap();
        prop_assert_eq!(a.status, b.status);
        if a.status == LpStatus::Optimal {
            prop_assert!((a.objective - b.objective).abs() < 1e-6 * (1.0 + a.objective.abs()),
                "round-trip changed optimum: {} vs {}", a.objective, b.objective);
        }
    }
}

//! Solve a single generated scenario end-to-end and print a detailed
//! placement report — the "try the system in 10 seconds" entry point.
//!
//! Usage: `cargo run -p bench-harness --release --bin solve_one --
//! [--seed S] [--len L] [--residual F] [--l HOPS] [--algo ilp|rand|heur|greedy]
//! [--dot PATH]`

use mecnet::workload::{generate_scenario, WorkloadConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use relaug::instance::AugmentationInstance;
use relaug::{greedy, heuristic, ilp, randomized, report};

struct Args {
    seed: u64,
    len: usize,
    residual: f64,
    l: u32,
    algo: String,
    dot: Option<String>,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 2020,
        len: 6,
        residual: 0.25,
        l: 1,
        algo: "ilp".into(),
        dot: None,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--seed" => args.seed = val("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--len" => args.len = val("--len")?.parse().map_err(|e| format!("{e}"))?,
            "--residual" => {
                args.residual = val("--residual")?.parse().map_err(|e| format!("{e}"))?
            }
            "--l" => args.l = val("--l")?.parse().map_err(|e| format!("{e}"))?,
            "--algo" => args.algo = val("--algo")?,
            "--dot" => args.dot = Some(val("--dot")?),
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if !["ilp", "rand", "heur", "greedy"].contains(&args.algo.as_str()) {
        return Err(format!("unknown algorithm '{}'", args.algo));
    }
    Ok(args)
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("solve_one: {e}");
            std::process::exit(2);
        }
    };
    let config = WorkloadConfig {
        sfc_len_range: (args.len, args.len),
        residual_fraction: args.residual,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(args.seed);
    let scenario = generate_scenario(&config, &mut rng);
    let inst = AugmentationInstance::from_scenario(&scenario, args.l);
    println!(
        "scenario: {} APs, {} cloudlets, chain length {}, l = {}, N = {} items\n",
        scenario.network.num_nodes(),
        scenario.network.num_cloudlets(),
        inst.chain_len(),
        args.l,
        inst.total_items()
    );
    let outcome = match args.algo.as_str() {
        "ilp" => ilp::solve(&inst, &Default::default()).expect("ILP"),
        "rand" => randomized::solve(&inst, &Default::default(), &mut rng).expect("LP"),
        "heur" => heuristic::solve(&inst, &Default::default()),
        _ => greedy::solve(&inst, &Default::default()),
    };
    print!("{}", report::render(&inst, &outcome));
    if let Some(path) = args.dot {
        let dot = mecnet::dot::to_dot_with_highlights(
            &scenario.network,
            &scenario.placement.locations,
        );
        std::fs::write(&path, dot).expect("write DOT file");
        println!("\nwrote {path} (render with `dot -Tsvg`)");
    }
}

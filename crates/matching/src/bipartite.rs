//! Minimum-cost **maximum** bipartite matching on sparse edge lists.
//!
//! "Maximum" is lexicographically first: among all matchings of maximum
//! cardinality, one of minimum total cost is returned. This is exactly the
//! object Algorithm 2 of the paper extracts from each auxiliary graph `G_l`.

use crate::mcmf::{EdgeId, McmfGraph};

/// A matching between `left` nodes (cloudlets in the paper) and `right` nodes
/// (candidate secondary VNF instances).
#[derive(Debug, Clone, PartialEq)]
pub struct Matching {
    /// Matched pairs `(left, right)`, sorted by left index.
    pub pairs: Vec<(usize, usize)>,
    /// Total cost of the matched edges.
    pub cost: f64,
}

impl Matching {
    pub fn cardinality(&self) -> usize {
        self.pairs.len()
    }

    pub fn is_empty(&self) -> bool {
        self.pairs.is_empty()
    }

    /// The right partner of `left`, if matched.
    pub fn partner_of_left(&self, left: usize) -> Option<usize> {
        self.pairs.iter().find(|&&(l, _)| l == left).map(|&(_, r)| r)
    }

    /// The left partner of `right`, if matched.
    pub fn partner_of_right(&self, right: usize) -> Option<usize> {
        self.pairs.iter().find(|&&(_, r)| r == right).map(|&(l, _)| l)
    }
}

/// Compute a minimum-cost maximum matching.
///
/// * `n_left`, `n_right` — sizes of the two node sets.
/// * `edges` — `(left, right, cost)` triples; parallel edges are allowed (the
///   cheaper one wins), costs must be finite. Each left and each right node is
///   matched at most once.
///
/// Runs successive-shortest-path min-cost max-flow on the unit-capacity
/// network, `O(matching · E log V)`.
///
/// # Panics
/// On out-of-range endpoints or non-finite costs.
pub fn min_cost_max_matching(
    n_left: usize,
    n_right: usize,
    edges: &[(usize, usize, f64)],
) -> Matching {
    let mut scratch = MatchingScratch::new();
    let mut out = Matching { pairs: Vec::new(), cost: 0.0 };
    min_cost_max_matching_into(&mut scratch, n_left, n_right, edges, &mut out);
    out
}

/// Reusable workspace for [`min_cost_max_matching_into`]: the flow network
/// and edge-handle buffer survive across solves, so repeated matchings (one
/// per heuristic round per streamed request) allocate nothing after the
/// buffers reach their high-water mark.
#[derive(Debug, Clone)]
pub struct MatchingScratch {
    pub(crate) graph: McmfGraph,
    pub(crate) edge_ids: Vec<EdgeId>,
}

impl MatchingScratch {
    pub fn new() -> Self {
        MatchingScratch { graph: McmfGraph::new(0), edge_ids: Vec::new() }
    }
}

impl Default for MatchingScratch {
    fn default() -> Self {
        Self::new()
    }
}

/// [`min_cost_max_matching`] writing into a caller-owned [`Matching`] and
/// reusing `scratch`'s buffers. The result (pairs, order, cost) is exactly
/// what [`min_cost_max_matching`] returns — the network is rebuilt in the
/// same arc order every call, so the flow computation is bit-identical.
pub fn min_cost_max_matching_into(
    scratch: &mut MatchingScratch,
    n_left: usize,
    n_right: usize,
    edges: &[(usize, usize, f64)],
    out: &mut Matching,
) {
    let s = n_left + n_right;
    let t = s + 1;
    let g = &mut scratch.graph;
    g.reset(n_left + n_right + 2);
    scratch.edge_ids.clear();
    for &(l, r, c) in edges {
        assert!(l < n_left, "left endpoint {l} out of range (n_left = {n_left})");
        assert!(r < n_right, "right endpoint {r} out of range (n_right = {n_right})");
        assert!(c.is_finite(), "non-finite edge cost");
        scratch.edge_ids.push(g.add_edge(l, n_left + r, 1, c));
    }
    for l in 0..n_left {
        g.add_edge(s, l, 1, 0.0);
    }
    for r in 0..n_right {
        g.add_edge(n_left + r, t, 1, 0.0);
    }
    let result = g.min_cost_max_flow(s, t, None);

    out.pairs.clear();
    out.cost = 0.0;
    // Collect saturated matching arcs; with parallel edges only count a left
    // node once (flow conservation guarantees a single saturated arc per left
    // node anyway).
    for (i, &(l, r, c)) in edges.iter().enumerate() {
        if g.flow_on(scratch.edge_ids[i]) == 1 {
            out.pairs.push((l, r));
            out.cost += c;
        }
    }
    out.pairs.sort_unstable();
    debug_assert_eq!(out.pairs.len(), result.flow as usize);
    debug_assert!((out.cost - result.cost).abs() < 1e-6 * (1.0 + out.cost.abs()));
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_graph() {
        let m = min_cost_max_matching(3, 3, &[]);
        assert!(m.is_empty());
        assert_eq!(m.cost, 0.0);
    }

    #[test]
    fn perfect_matching_cheapest() {
        // 2x2 complete; assignment problem.
        let edges = [(0, 0, 1.0), (0, 1, 4.0), (1, 0, 2.0), (1, 1, 1.5)];
        let m = min_cost_max_matching(2, 2, &edges);
        assert_eq!(m.cardinality(), 2);
        assert!((m.cost - 2.5).abs() < 1e-9); // (0,0) + (1,1)
        assert_eq!(m.partner_of_left(0), Some(0));
        assert_eq!(m.partner_of_right(1), Some(1));
    }

    #[test]
    fn maximum_beats_cheap() {
        // Taking the cheap edge (0,0) alone blocks the only partner of left 1;
        // maximum matching must take (0,1) + (1,0) even though it costs more.
        let edges = [(0, 0, 0.1), (0, 1, 5.0), (1, 0, 5.0)];
        let m = min_cost_max_matching(2, 2, &edges);
        assert_eq!(m.cardinality(), 2);
        assert!((m.cost - 10.0).abs() < 1e-9);
    }

    #[test]
    fn unbalanced_sides() {
        let edges = [(0, 0, 3.0), (0, 1, 1.0), (0, 2, 2.0)];
        let m = min_cost_max_matching(1, 3, &edges);
        assert_eq!(m.cardinality(), 1);
        assert_eq!(m.pairs, vec![(0, 1)]);
    }

    #[test]
    fn parallel_edges_cheaper_wins() {
        let edges = [(0, 0, 9.0), (0, 0, 2.0)];
        let m = min_cost_max_matching(1, 1, &edges);
        assert_eq!(m.cardinality(), 1);
        assert!((m.cost - 2.0).abs() < 1e-9);
    }

    #[test]
    fn isolated_nodes_stay_unmatched() {
        let edges = [(0, 0, 1.0)];
        let m = min_cost_max_matching(5, 5, &edges);
        assert_eq!(m.cardinality(), 1);
        for l in 1..5 {
            assert_eq!(m.partner_of_left(l), None);
        }
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn rejects_bad_endpoint() {
        min_cost_max_matching(1, 1, &[(2, 0, 1.0)]);
    }

    #[test]
    fn reused_scratch_matches_fresh_solves() {
        // Shrinking and growing instances through one scratch must give the
        // same matchings as fresh solves — stale arcs or edge ids would show.
        type Case = (usize, usize, Vec<(usize, usize, f64)>);
        let cases: Vec<Case> = vec![
            (2, 2, vec![(0, 0, 1.0), (0, 1, 4.0), (1, 0, 2.0), (1, 1, 1.5)]),
            (1, 1, vec![(0, 0, 9.0), (0, 0, 2.0)]),
            (3, 3, vec![]),
            (2, 2, vec![(0, 0, 0.1), (0, 1, 5.0), (1, 0, 5.0)]),
            (1, 3, vec![(0, 0, 3.0), (0, 1, 1.0), (0, 2, 2.0)]),
        ];
        let mut scratch = MatchingScratch::new();
        let mut out = Matching { pairs: Vec::new(), cost: 0.0 };
        for (n_left, n_right, edges) in &cases {
            min_cost_max_matching_into(&mut scratch, *n_left, *n_right, edges, &mut out);
            let fresh = min_cost_max_matching(*n_left, *n_right, edges);
            assert_eq!(out, fresh);
        }
    }
}

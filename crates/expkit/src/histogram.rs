//! Fixed-bin histograms and exact percentiles for experiment reporting.

/// A histogram over `[lo, hi)` with equal-width bins (values outside the
/// range are clamped into the first/last bin).
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Create a histogram with `bins >= 1` equal-width bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(bins >= 1, "need at least one bin");
        assert!(lo < hi, "empty range");
        assert!(lo.is_finite() && hi.is_finite());
        Histogram { lo, hi, counts: vec![0; bins], total: 0 }
    }

    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "non-finite sample");
        let bins = self.counts.len();
        let idx = ((x - self.lo) / (self.hi - self.lo) * bins as f64).floor();
        let idx = (idx.max(0.0) as usize).min(bins - 1);
        self.counts[idx] += 1;
        self.total += 1;
    }

    pub fn count(&self) -> u64 {
        self.total
    }

    pub fn bin_counts(&self) -> &[u64] {
        &self.counts
    }

    /// `(lower edge, upper edge, count)` per bin.
    pub fn bins(&self) -> Vec<(f64, f64, u64)> {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + w * i as f64, self.lo + w * (i + 1) as f64, c))
            .collect()
    }

    /// Simple ASCII rendering (one row per bin).
    pub fn render(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        self.bins()
            .into_iter()
            .map(|(lo, hi, c)| {
                let bar = "#".repeat((c as usize * width).div_ceil(max as usize).min(width));
                format!("[{lo:>10.3}, {hi:>10.3}) |{bar:<width$}| {c}\n")
            })
            .collect()
    }
}

/// Number of buckets in a [`Log2Histogram`]: bucket 0 holds the value `0`,
/// bucket `i >= 1` holds `[2^(i-1), 2^i)`, so 65 buckets cover all of `u64`.
pub const LOG2_BUCKETS: usize = 65;

/// Fixed-size mergeable histogram over `u64` values with power-of-two bucket
/// edges — the shared distribution type behind `obs`'s per-worker metrics
/// shards and window summaries.
///
/// The bucket layout is a pure function of the value (no configuration), so
/// two histograms recorded independently — e.g. on different worker threads —
/// always [`merge`](Log2Histogram::merge) exactly. Quantile estimates return
/// the inclusive upper bound of the bucket containing the requested rank,
/// which is within one power-of-two bucket of the exact order statistic.
/// Values are typically durations in nanoseconds, where the ~2x relative
/// resolution is plenty for latency reporting.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Log2Histogram {
    counts: [u64; LOG2_BUCKETS],
    total: u64,
    sum: u64,
}

impl Default for Log2Histogram {
    fn default() -> Self {
        Log2Histogram::new()
    }
}

impl Log2Histogram {
    pub fn new() -> Log2Histogram {
        Log2Histogram { counts: [0; LOG2_BUCKETS], total: 0, sum: 0 }
    }

    /// Rebuild from raw bucket counts plus the value sum (the merge path out
    /// of an atomic shard snapshot).
    pub fn from_parts(counts: [u64; LOG2_BUCKETS], sum: u64) -> Log2Histogram {
        let total = counts.iter().sum();
        Log2Histogram { counts, total, sum }
    }

    /// The bucket index holding `v`.
    #[inline]
    pub fn bucket_of(v: u64) -> usize {
        if v == 0 {
            0
        } else {
            64 - v.leading_zeros() as usize
        }
    }

    /// Inclusive upper bound of bucket `idx` (`0` for bucket 0, `2^idx - 1`
    /// otherwise, saturating at `u64::MAX`).
    #[inline]
    pub fn bucket_bound(idx: usize) -> u64 {
        match idx {
            0 => 0,
            i if i >= 64 => u64::MAX,
            i => (1u64 << i) - 1,
        }
    }

    #[inline]
    pub fn record(&mut self, v: u64) {
        self.counts[Self::bucket_of(v)] += 1;
        self.total += 1;
        self.sum = self.sum.saturating_add(v);
    }

    /// Record a duration as nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&mut self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    pub fn count(&self) -> u64 {
        self.total
    }

    pub fn is_empty(&self) -> bool {
        self.total == 0
    }

    /// Sum of every recorded value (saturating).
    pub fn sum(&self) -> u64 {
        self.sum
    }

    pub fn mean(&self) -> f64 {
        if self.total == 0 {
            0.0
        } else {
            self.sum as f64 / self.total as f64
        }
    }

    pub fn bucket_counts(&self) -> &[u64; LOG2_BUCKETS] {
        &self.counts
    }

    /// Fold `other` into `self` bucket-wise. Exact: recording a stream into
    /// one histogram equals recording disjoint pieces separately and merging.
    pub fn merge(&mut self, other: &Log2Histogram) {
        for (a, b) in self.counts.iter_mut().zip(&other.counts) {
            *a += b;
        }
        self.total += other.total;
        self.sum = self.sum.saturating_add(other.sum);
    }

    /// Bucket-wise difference against an `earlier` snapshot of the same
    /// monotonically-growing histogram (window deltas). Panics in debug
    /// builds if `earlier` is not a prefix of `self`.
    pub fn diff(&self, earlier: &Log2Histogram) -> Log2Histogram {
        let mut counts = [0u64; LOG2_BUCKETS];
        for (i, c) in counts.iter_mut().enumerate() {
            debug_assert!(self.counts[i] >= earlier.counts[i], "diff against a non-prefix");
            *c = self.counts[i].saturating_sub(earlier.counts[i]);
        }
        Log2Histogram {
            counts,
            total: self.total.saturating_sub(earlier.total),
            sum: self.sum.saturating_sub(earlier.sum),
        }
    }

    /// Estimated `q`-quantile (`q` in `[0, 1]`): the inclusive upper bound of
    /// the bucket containing the nearest-rank order statistic. `None` when
    /// empty. Guaranteed within one bucket of the exact quantile, i.e. the
    /// exact value `x` satisfies `bucket_of(x) == bucket_of(estimate)`.
    pub fn quantile(&self, q: f64) -> Option<u64> {
        if self.total == 0 {
            return None;
        }
        let q = q.clamp(0.0, 1.0);
        let rank = ((q * self.total as f64).ceil() as u64).clamp(1, self.total);
        let mut seen = 0u64;
        for (i, &c) in self.counts.iter().enumerate() {
            seen += c;
            if seen >= rank {
                return Some(Self::bucket_bound(i));
            }
        }
        unreachable!("rank <= total implies some bucket reaches it")
    }

    /// Upper bound of the highest non-empty bucket (`None` when empty).
    pub fn max_bound(&self) -> Option<u64> {
        self.counts
            .iter()
            .enumerate()
            .rev()
            .find(|(_, &c)| c > 0)
            .map(|(i, _)| Self::bucket_bound(i))
    }
}

/// Exact percentile of a sample via the nearest-rank method (`p` in `[0,
/// 100]`). Panics on an empty slice.
pub fn percentile(sample: &[f64], p: f64) -> f64 {
    assert!(!sample.is_empty(), "empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    let mut sorted: Vec<f64> = sample.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    if p == 0.0 {
        return sorted[0];
    }
    let rank = (p / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_and_clamping() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.5, 1.5, 2.5, 9.9, -3.0, 42.0] {
            h.push(x);
        }
        assert_eq!(h.count(), 6);
        // -3.0 clamps into bin 0 (with 0.5 and 1.5); 42.0 into the last.
        assert_eq!(h.bin_counts(), &[3, 1, 0, 0, 2]);
        let bins = h.bins();
        assert_eq!(bins[0].0, 0.0);
        assert_eq!(bins[4].1, 10.0);
    }

    #[test]
    fn render_shows_bars() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.push(0.5);
        h.push(0.6);
        h.push(1.5);
        let s = h.render(10);
        assert!(s.contains("##"));
        assert!(s.lines().count() == 2);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let v = [15.0, 20.0, 35.0, 40.0, 50.0];
        assert_eq!(percentile(&v, 0.0), 15.0);
        assert_eq!(percentile(&v, 30.0), 20.0);
        assert_eq!(percentile(&v, 40.0), 20.0);
        assert_eq!(percentile(&v, 50.0), 35.0);
        assert_eq!(percentile(&v, 100.0), 50.0);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }

    #[test]
    fn log2_bucket_layout() {
        assert_eq!(Log2Histogram::bucket_of(0), 0);
        assert_eq!(Log2Histogram::bucket_of(1), 1);
        assert_eq!(Log2Histogram::bucket_of(2), 2);
        assert_eq!(Log2Histogram::bucket_of(3), 2);
        assert_eq!(Log2Histogram::bucket_of(4), 3);
        assert_eq!(Log2Histogram::bucket_of(u64::MAX), 64);
        assert_eq!(Log2Histogram::bucket_bound(0), 0);
        assert_eq!(Log2Histogram::bucket_bound(1), 1);
        assert_eq!(Log2Histogram::bucket_bound(2), 3);
        assert_eq!(Log2Histogram::bucket_bound(64), u64::MAX);
        // Every value lands in the bucket whose bound is the smallest bound
        // >= the value.
        for v in [0u64, 1, 2, 3, 4, 7, 8, 1023, 1024, u64::MAX] {
            let b = Log2Histogram::bucket_of(v);
            assert!(Log2Histogram::bucket_bound(b) >= v);
            if b > 0 {
                assert!(Log2Histogram::bucket_bound(b - 1) < v);
            }
        }
    }

    #[test]
    fn log2_record_merge_diff() {
        let mut a = Log2Histogram::new();
        let mut b = Log2Histogram::new();
        let mut all = Log2Histogram::new();
        for v in [0u64, 1, 5, 100, 1000] {
            a.record(v);
            all.record(v);
        }
        for v in [7u64, 7, 4096] {
            b.record(v);
            all.record(v);
        }
        let mut merged = a.clone();
        merged.merge(&b);
        assert_eq!(merged, all, "merge equals recording the union");
        assert_eq!(merged.count(), 8);
        assert_eq!(merged.sum(), 1 + 5 + 100 + 1000 + 7 + 7 + 4096);
        let d = merged.diff(&a);
        assert_eq!(d, b, "diff inverts merge");
    }

    #[test]
    fn log2_quantiles_within_one_bucket() {
        let mut h = Log2Histogram::new();
        let sample: Vec<u64> = (1..=1000u64).collect();
        for &v in &sample {
            h.record(v);
        }
        assert_eq!(h.quantile(0.0), Some(1));
        for q in [0.5, 0.9, 0.99, 1.0] {
            let est = h.quantile(q).unwrap();
            let exact = sample[(((q * 1000.0).ceil() as usize).clamp(1, 1000)) - 1];
            assert_eq!(
                Log2Histogram::bucket_of(est),
                Log2Histogram::bucket_of(exact),
                "q={q}: estimate {est} must share the exact value {exact}'s bucket"
            );
        }
        assert!(Log2Histogram::new().quantile(0.5).is_none());
        assert_eq!(h.max_bound(), Some(1023));
        assert!((h.mean() - 500.5).abs() < 1e-9);
    }

    #[test]
    fn log2_from_parts_round_trips() {
        let mut h = Log2Histogram::new();
        for v in [3u64, 9, 27, 81] {
            h.record(v);
        }
        let rebuilt = Log2Histogram::from_parts(*h.bucket_counts(), h.sum());
        assert_eq!(rebuilt, h);
    }
}

//! Wall-clock timing helper.

use std::time::{Duration, Instant};

/// Run `f`, returning its result and elapsed wall-clock time.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let start = Instant::now();
    let out = f();
    (out, start.elapsed())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let ((), d) = time_it(|| std::thread::sleep(Duration::from_millis(5)));
        assert!(d >= Duration::from_millis(4));
    }

    #[test]
    fn passes_value_through() {
        let (v, _) = time_it(|| 41 + 1);
        assert_eq!(v, 42);
    }
}

//! Domain scenario: a metro edge network running a live video-analytics
//! service chain (NAT → Firewall → IDS → Transcoder → DPI).
//!
//! The operator admitted the request on a 6×6 metro grid with eight
//! cloudlets; the chain's bare reliability is far below the 99.5% SLO, so the
//! operator provisions backup VNF instances — but only within one hop of each
//! primary, to keep state-synchronization latency down. This example shows
//! how the choice of the locality radius `l` changes what is achievable.
//!
//! Run with: `cargo run --release --example video_analytics`

use mec_sfc_reliability::mecnet::admission::dag_placement;
use mec_sfc_reliability::mecnet::graph::NodeId;
use mec_sfc_reliability::mecnet::request::SfcRequest;
use mec_sfc_reliability::mecnet::vnf::{realistic_catalog, VnfTypeId};
use mec_sfc_reliability::mecnet::{topology, MecNetwork};
use mec_sfc_reliability::relaug::instance::AugmentationInstance;
use mec_sfc_reliability::relaug::{heuristic, ilp};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(7);

    // A 6x6 metro grid; 8 cloudlets with 4-8 GHz of compute.
    let grid = topology::grid(6, 6);
    let network = MecNetwork::with_random_cloudlets(grid, 8, (4000.0, 8000.0), &mut rng);

    // The video-analytics chain from the realistic catalog:
    // NAT(0) -> Firewall(1) -> IDS(2) -> Transcoder(5) -> DPI(6).
    let catalog = realistic_catalog();
    let request = SfcRequest::new(
        42,
        vec![VnfTypeId(0), VnfTypeId(1), VnfTypeId(2), VnfTypeId(5), VnfTypeId(6)],
        0.995,
        NodeId(0),
        NodeId(35),
    );

    // Admit via the max-reliability DAG placement (link reliability 0.995/hop).
    let placement = dag_placement(&network, &request, 0.995).expect("admission succeeds");
    println!("primary placement (by chain position):");
    for (i, (&f, &loc)) in request.sfc.iter().zip(&placement.locations).enumerate() {
        println!("  {}: {:<12} -> {}", i, catalog.get(f).name, loc);
    }
    println!(
        "bare chain reliability: {:.4} (SLO {:.3})\n",
        request.base_reliability(&catalog),
        request.expectation
    );

    // 30% of each cloudlet's capacity is free for backups.
    let residual = network.residual_capacities(0.30);

    println!(
        "{:<6} {:>12} {:>12} {:>10} {:>10}",
        "l", "ILP rel.", "Heur rel.", "backups", "SLO met"
    );
    for l in [0u32, 1, 2, 3] {
        let inst = AugmentationInstance::new(
            &network,
            &catalog,
            &request,
            &placement.locations,
            &residual,
            l,
        );
        let exact = ilp::solve(&inst, &Default::default()).expect("ILP");
        let heur = heuristic::solve(&inst, &Default::default());
        println!(
            "{:<6} {:>12.5} {:>12.5} {:>10} {:>10}",
            l,
            exact.metrics.reliability,
            heur.metrics.reliability,
            exact.metrics.total_secondaries,
            if exact.metrics.met_expectation { "yes" } else { "no" }
        );
    }
    println!(
        "\nTakeaway: a larger locality radius exposes more cloudlets to host\n\
         backups — at the price of slower primary/backup state updates, which\n\
         is exactly the trade-off the paper's l parameter controls."
    );
}

//! Cached neighborhood index vs per-request BFS.
//!
//! The streaming hot path asks "which cloudlets are within `l` hops of this
//! node?" once per function per request. This bench compares the three ways
//! to answer it on the default workload topology:
//!
//! * `bfs_per_query` — the legacy [`mecnet::MecNetwork::cloudlets_within`]:
//!   a full BFS plus two allocations per query;
//! * `index_lookup` — [`mecnet::neighborhood::NeighborhoodIndex`] slice
//!   lookups (O(1), allocation-free) with the index already built;
//! * `index_build` — the one-time cost of building the index, to show after
//!   how many queries the cache pays for itself.
//!
//! Set `QUICK=1` for CI: shrinks criterion's sampling so the whole bench
//! finishes in a few seconds.

use std::time::Duration;

use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mecnet::neighborhood::NeighborhoodIndex;
use mecnet::workload::{generate_network, WorkloadConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;

const SEED: u64 = 42;

fn bench_neighborhood(c: &mut Criterion) {
    let wl = WorkloadConfig::default();
    let mut rng = StdRng::seed_from_u64(SEED);
    let network = generate_network(&wl, &mut rng);
    let nodes: Vec<_> = network.graph().nodes().collect();

    let mut group = c.benchmark_group("neighborhood");
    for l in [1u32, 2, 3] {
        group.bench_with_input(BenchmarkId::new("bfs_per_query", l), &l, |b, &l| {
            b.iter(|| {
                let mut total = 0usize;
                for &v in &nodes {
                    total += network.cloudlets_within(black_box(v), l).len();
                }
                total
            })
        });
        let idx = NeighborhoodIndex::build(network.graph(), network.cloudlet_ids(), l);
        group.bench_with_input(BenchmarkId::new("index_lookup", l), &l, |b, _| {
            b.iter(|| {
                let mut total = 0usize;
                for &v in &nodes {
                    total += idx.cloudlets_within(black_box(v)).len();
                }
                total
            })
        });
        group.bench_with_input(BenchmarkId::new("index_build", l), &l, |b, &l| {
            b.iter(|| {
                black_box(NeighborhoodIndex::build(network.graph(), network.cloudlet_ids(), l))
            })
        });
    }
    group.finish();
}

fn config() -> Criterion {
    let quick = std::env::var_os("QUICK").is_some();
    if quick {
        Criterion::default()
            .sample_size(10)
            .warm_up_time(Duration::from_millis(200))
            .measurement_time(Duration::from_millis(500))
    } else {
        Criterion::default()
            .sample_size(50)
            .warm_up_time(Duration::from_millis(500))
            .measurement_time(Duration::from_secs(3))
    }
}

criterion_group! {
    name = benches;
    config = config();
    targets = bench_neighborhood
}
criterion_main!(benches);

//! Capacitated (b-)matching: minimum-cost maximum assignment where each left
//! node may be matched up to `b_left[l]` times (right nodes stay unit).
//!
//! Algorithm 2 of the reproduced paper matches each cloudlet to at most one
//! new instance per round; the b-matching generalization lets a cloudlet
//! absorb as many instances per round as its residual capacity allows, which
//! collapses the round loop — the `ablation_matching` bench quantifies what
//! that changes.

use crate::mcmf::McmfGraph;
use crate::Matching;

/// Minimum-cost maximum b-matching.
///
/// * `b_left[l]` — how many times left node `l` may be matched (0 allowed).
/// * `n_right` — number of right nodes, each matched at most once.
/// * `edges` — `(left, right, cost)` triples; an edge may be *used* only
///   once, but a left node may take several distinct right partners.
///
/// Returns pairs sorted by left index; a left node appears once per matched
/// partner.
pub fn min_cost_max_b_matching(
    b_left: &[usize],
    n_right: usize,
    edges: &[(usize, usize, f64)],
) -> Matching {
    let n_left = b_left.len();
    let s = n_left + n_right;
    let t = s + 1;
    let mut g = McmfGraph::new(n_left + n_right + 2);
    let mut edge_ids = Vec::with_capacity(edges.len());
    for &(l, r, c) in edges {
        assert!(l < n_left, "left endpoint {l} out of range");
        assert!(r < n_right, "right endpoint {r} out of range");
        assert!(c.is_finite(), "non-finite edge cost");
        edge_ids.push(g.add_edge(l, n_left + r, 1, c));
    }
    for (l, &b) in b_left.iter().enumerate() {
        if b > 0 {
            g.add_edge(s, l, b as i64, 0.0);
        }
    }
    for r in 0..n_right {
        g.add_edge(n_left + r, t, 1, 0.0);
    }
    let result = g.min_cost_max_flow(s, t, None);
    let mut pairs = Vec::with_capacity(result.flow as usize);
    let mut cost = 0.0;
    for (i, &(l, r, c)) in edges.iter().enumerate() {
        if g.flow_on(edge_ids[i]) == 1 {
            pairs.push((l, r));
            cost += c;
        }
    }
    pairs.sort_unstable();
    debug_assert_eq!(pairs.len(), result.flow as usize);
    Matching { pairs, cost }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduces_to_unit_matching_when_b_is_one() {
        let edges = [(0, 0, 1.0), (0, 1, 4.0), (1, 0, 2.0), (1, 1, 1.5)];
        let unit = crate::min_cost_max_matching(2, 2, &edges);
        let b = min_cost_max_b_matching(&[1, 1], 2, &edges);
        assert_eq!(unit.cardinality(), b.cardinality());
        assert!((unit.cost - b.cost).abs() < 1e-9);
    }

    #[test]
    fn one_left_node_takes_everything() {
        let edges = [(0, 0, 1.0), (0, 1, 2.0), (0, 2, 3.0)];
        let m = min_cost_max_b_matching(&[3], 3, &edges);
        assert_eq!(m.cardinality(), 3);
        assert!((m.cost - 6.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_limits_selection_to_cheapest() {
        let edges = [(0, 0, 5.0), (0, 1, 1.0), (0, 2, 3.0)];
        let m = min_cost_max_b_matching(&[2], 3, &edges);
        assert_eq!(m.cardinality(), 2);
        assert!((m.cost - 4.0).abs() < 1e-9); // picks costs 1 and 3
    }

    #[test]
    fn zero_capacity_node_unused() {
        let edges = [(0, 0, 1.0), (1, 0, 9.0)];
        let m = min_cost_max_b_matching(&[0, 1], 1, &edges);
        assert_eq!(m.pairs, vec![(1, 0)]);
    }

    #[test]
    fn right_nodes_still_unit() {
        // Two lefts with spare capacity compete for one right.
        let edges = [(0, 0, 2.0), (1, 0, 1.0)];
        let m = min_cost_max_b_matching(&[5, 5], 1, &edges);
        assert_eq!(m.cardinality(), 1);
        assert!((m.cost - 1.0).abs() < 1e-9);
    }
}

//! SFC requests: an ordered chain of network functions plus a reliability
//! expectation `ρ_j`.

use crate::graph::NodeId;
use crate::vnf::{VnfCatalog, VnfTypeId};
use rand::Rng;

/// A user request `j` with service function chain `SFC_j` and reliability
/// expectation `ρ_j` (paper Section 3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct SfcRequest {
    pub id: usize,
    /// Ordered chain `f_1, …, f_{L_j}` (types may repeat across requests but
    /// within one chain the paper assumes distinct functions; the generator
    /// samples without replacement).
    pub sfc: Vec<VnfTypeId>,
    /// Reliability expectation `ρ_j ∈ (0, 1]`.
    pub expectation: f64,
    /// Ingress access point of the request's traffic.
    pub source: NodeId,
    /// Egress access point.
    pub destination: NodeId,
}

impl SfcRequest {
    /// Chain length `L_j`.
    pub fn len(&self) -> usize {
        self.sfc.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sfc.is_empty()
    }

    /// Reliability of the bare primary chain, `Π_i r_i` — the starting point
    /// the augmentation algorithms improve on.
    pub fn base_reliability(&self, catalog: &VnfCatalog) -> f64 {
        self.sfc.iter().map(|&f| catalog.reliability(f)).product()
    }

    /// Whether the primaries alone already meet the expectation (the early
    /// EXIT of Algorithms 1 and 2).
    pub fn met_by_primaries(&self, catalog: &VnfCatalog) -> bool {
        self.base_reliability(catalog) >= self.expectation
    }

    /// Total computing demand of one full copy of the chain.
    pub fn chain_demand(&self, catalog: &VnfCatalog) -> f64 {
        self.sfc.iter().map(|&f| catalog.demand(f)).sum()
    }

    /// Generate a random request: chain length uniform in `len_range`,
    /// functions sampled from the catalog without replacement (falling back
    /// to with-replacement if the chain is longer than the catalog).
    pub fn random<R: Rng + ?Sized>(
        id: usize,
        catalog: &VnfCatalog,
        len_range: (usize, usize),
        expectation: f64,
        num_nodes: usize,
        rng: &mut R,
    ) -> Self {
        assert!(len_range.0 >= 1 && len_range.0 <= len_range.1);
        assert!(expectation > 0.0 && expectation <= 1.0);
        assert!(num_nodes >= 1);
        let len = rng.gen_range(len_range.0..=len_range.1);
        let sfc = if len <= catalog.len() {
            rand::seq::index::sample(rng, catalog.len(), len).into_iter().map(VnfTypeId).collect()
        } else {
            (0..len).map(|_| VnfTypeId(rng.gen_range(0..catalog.len()))).collect()
        };
        SfcRequest {
            id,
            sfc,
            expectation,
            source: NodeId(rng.gen_range(0..num_nodes)),
            destination: NodeId(rng.gen_range(0..num_nodes)),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vnf::VnfType;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_catalog() -> VnfCatalog {
        let mut cat = VnfCatalog::new();
        cat.add(VnfType { name: "a".into(), demand_mhz: 100.0, reliability: 0.9 });
        cat.add(VnfType { name: "b".into(), demand_mhz: 200.0, reliability: 0.8 });
        cat
    }

    #[test]
    fn base_reliability_is_product() {
        let cat = small_catalog();
        let req = SfcRequest {
            id: 0,
            sfc: vec![VnfTypeId(0), VnfTypeId(1)],
            expectation: 0.9,
            source: NodeId(0),
            destination: NodeId(1),
        };
        assert!((req.base_reliability(&cat) - 0.72).abs() < 1e-12);
        assert!(!req.met_by_primaries(&cat));
        assert!((req.chain_demand(&cat) - 300.0).abs() < 1e-12);
        assert_eq!(req.len(), 2);
    }

    #[test]
    fn expectation_met_when_base_high() {
        let cat = small_catalog();
        let req = SfcRequest {
            id: 0,
            sfc: vec![VnfTypeId(0)],
            expectation: 0.85,
            source: NodeId(0),
            destination: NodeId(0),
        };
        assert!(req.met_by_primaries(&cat));
    }

    #[test]
    fn random_request_samples_without_replacement() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut cat = VnfCatalog::new();
        for i in 0..10 {
            cat.add(VnfType { name: format!("f{i}"), demand_mhz: 100.0, reliability: 0.9 });
        }
        for _ in 0..20 {
            let req = SfcRequest::random(0, &cat, (3, 6), 0.99, 50, &mut rng);
            assert!((3..=6).contains(&req.len()));
            let mut seen = req.sfc.clone();
            seen.sort();
            seen.dedup();
            assert_eq!(seen.len(), req.len(), "functions must be distinct");
            assert!(req.source.index() < 50 && req.destination.index() < 50);
        }
    }

    #[test]
    fn random_request_longer_than_catalog_falls_back() {
        let mut rng = StdRng::seed_from_u64(10);
        let cat = small_catalog();
        let req = SfcRequest::random(0, &cat, (5, 5), 0.9, 3, &mut rng);
        assert_eq!(req.len(), 5);
    }
}

//! GraphViz DOT export for MEC networks — cloudlets rendered as boxes with
//! capacities, plain APs as circles; optional highlighting of a primary
//! placement (useful when debugging locality issues in augmentation runs).

use crate::graph::NodeId;
use crate::network::MecNetwork;
use std::fmt::Write as _;

/// Render a network as an undirected GraphViz graph.
pub fn to_dot(net: &MecNetwork) -> String {
    to_dot_with_highlights(net, &[])
}

/// Render with a set of highlighted nodes (e.g. a request's primary
/// placement), drawn filled.
pub fn to_dot_with_highlights(net: &MecNetwork, highlights: &[NodeId]) -> String {
    let mut out = String::from("graph mec {\n  node [fontsize=10];\n");
    for v in net.graph().nodes() {
        let highlight = highlights.contains(&v);
        let style = if highlight { ", style=filled, fillcolor=gold" } else { "" };
        if net.is_cloudlet(v) {
            let _ = writeln!(
                out,
                "  n{} [shape=box, label=\"{}\\n{:.0} MHz\"{}];",
                v.index(),
                v,
                net.capacity(v),
                style
            );
        } else {
            let _ = writeln!(out, "  n{} [shape=circle, label=\"{}\"{}];", v.index(), v, style);
        }
    }
    for u in net.graph().nodes() {
        for v in net.graph().neighbors(u) {
            if v.index() > u.index() {
                let _ = writeln!(out, "  n{} -- n{};", u.index(), v.index());
            }
        }
    }
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Graph;

    fn tiny() -> MecNetwork {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        MecNetwork::new(g, vec![4000.0, 0.0, 0.0])
    }

    #[test]
    fn emits_valid_structure() {
        let dot = to_dot(&tiny());
        assert!(dot.starts_with("graph mec {"));
        assert!(dot.trim_end().ends_with('}'));
        assert!(dot.contains("n0 [shape=box"));
        assert!(dot.contains("4000 MHz"));
        assert!(dot.contains("n1 [shape=circle"));
        assert!(dot.contains("n0 -- n1;"));
        assert!(dot.contains("n1 -- n2;"));
        // Each undirected edge appears exactly once.
        assert_eq!(dot.matches(" -- ").count(), 2);
    }

    #[test]
    fn highlights_are_filled() {
        let dot = to_dot_with_highlights(&tiny(), &[NodeId(1)]);
        assert!(dot.contains("n1 [shape=circle, label=\"v1\", style=filled"));
        assert!(!dot.contains("n0 [shape=box, label=\"v0\\n4000 MHz\", style=filled"));
    }
}

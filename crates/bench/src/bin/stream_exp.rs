//! Multi-request stream experiment (extension beyond the paper's
//! single-request evaluation): push a stream of requests through one shared
//! network per algorithm and report admission rate, mean reliability,
//! expectation-met rate, and the early-vs-late reliability erosion.
//!
//! Usage: `cargo run -p bench-harness --release --bin stream_exp --
//! [--trials N] [--seed S] [--requests R] [--trace PATH] [--workers W]`
//! (trials = independent network/stream pairs).
//!
//! `--workers W` (default 1) runs each stream through the speculative
//! parallel admission pipeline with `W` worker threads. Results and
//! telemetry are byte-identical to `--workers 1` by construction — the
//! flag only changes wall-clock time.
//!
//! `--trace PATH` writes the full telemetry of each algorithm's first stream
//! as JSONL: exactly one `stream.request` event per request processed (with
//! admitted/rejected + reason, solver runtime and a residual snapshot), with
//! the per-request solver events interleaved in arrival order. A telemetry
//! summary table is printed at the end of every run, traced or not.

use bench_harness::HarnessArgs;
use expkit::stats::Accumulator;
use expkit::Table;
use mecnet::request::SfcRequest;
use mecnet::workload::{generate_catalog, generate_network, WorkloadConfig};
use obs::Recorder;
use rand::rngs::StdRng;
use rand::SeedableRng;
use relaug::parallel::{process_stream_parallel, process_stream_parallel_traced, ParallelConfig};
use relaug::stream::{Algorithm, StreamConfig};

fn main() {
    let args = match HarnessArgs::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("stream_exp: {e}");
            std::process::exit(2);
        }
    };
    let trials = args.trials.min(200);
    let requests_per_stream = args.requests.unwrap_or(100);
    println!(
        "## Stream experiment — {requests_per_stream} requests per stream, {trials} streams{}\n",
        if args.workers > 1 {
            format!(", {} pipeline workers", args.workers)
        } else {
            String::new()
        }
    );

    // Telemetry sink: the first stream of each algorithm runs traced — into
    // the JSONL file when `--trace` is given, into memory otherwise — so the
    // end-of-run summary table always has data. Remaining trials run with the
    // no-op recorder (zero overhead).
    let mut rec = match &args.trace {
        Some(path) => Recorder::jsonl_file(std::path::Path::new(path)).unwrap_or_else(|e| {
            eprintln!("stream_exp: cannot open trace file {path}: {e}");
            std::process::exit(2);
        }),
        None => Recorder::memory(),
    };

    let algorithms: Vec<(&str, Algorithm)> = vec![
        ("ILP", Algorithm::Ilp(Default::default())),
        ("Randomized", Algorithm::Randomized(Default::default())),
        ("Heuristic", Algorithm::Heuristic(Default::default())),
        ("Greedy", Algorithm::Greedy(Default::default())),
    ];
    let mut table = Table::new(vec![
        "algorithm",
        "admitted",
        "mean rel.",
        "SLO met",
        "early rel.",
        "late rel.",
    ]);
    let mut effort = Table::new(vec!["algorithm", "events", "admitted", "rejected", "solve time"]);
    for (name, algorithm) in algorithms {
        let mut admitted = Accumulator::new();
        let mut rel = Accumulator::new();
        let mut slo = Accumulator::new();
        let mut early = Accumulator::new();
        let mut late = Accumulator::new();
        let effort_base = rec.summary();
        for t in 0..trials {
            let seed = expkit::fan_out(args.seed, t as u64);
            let mut rng = StdRng::seed_from_u64(seed);
            let wl = WorkloadConfig::default();
            let network = generate_network(&wl, &mut rng);
            let catalog = generate_catalog(&wl, &mut rng);
            let requests: Vec<SfcRequest> = (0..requests_per_stream)
                .map(|i| SfcRequest::random(i, &catalog, (3, 6), 0.99, wl.nodes, &mut rng))
                .collect();
            let cfg = StreamConfig { algorithm: algorithm.clone(), ..Default::default() };
            // Always route through the parallel pipeline: at `--workers 1` it
            // delegates to the seeded sequential path, so the per-request
            // derived RNGs make output independent of the worker count.
            let pcfg = ParallelConfig { stream: cfg, workers: args.workers, seed, max_inflight: 0 };
            let out = if t == 0 {
                process_stream_parallel_traced(&network, &catalog, &requests, &pcfg, &mut rec)
            } else {
                process_stream_parallel(&network, &catalog, &requests, &pcfg)
            };
            admitted.push(out.admitted() as f64);
            if let Some(m) = out.mean_reliability() {
                rel.push(m);
            }
            if let Some(e) = out.expectation_rate() {
                slo.push(e);
            }
            let adm: Vec<f64> =
                out.records.iter().filter(|r| r.admitted).map(|r| r.achieved_reliability).collect();
            if adm.len() >= 4 {
                let third = adm.len() / 3;
                early.push(adm[..third].iter().sum::<f64>() / third as f64);
                late.push(adm[adm.len() - third..].iter().sum::<f64>() / third as f64);
            }
        }
        table.add_row(vec![
            name.to_string(),
            format!("{:.1}/{}", admitted.summary().mean, requests_per_stream),
            format!("{:.4}", rel.summary().mean),
            format!("{:.0}%", 100.0 * slo.summary().mean),
            format!("{:.4}", early.summary().mean),
            format!("{:.4}", late.summary().mean),
        ]);
        // Delta of the cumulative telemetry = this algorithm's traced stream.
        let now = rec.summary();
        effort.add_row(vec![
            name.to_string(),
            format!("{}", now.events_emitted - effort_base.events_emitted),
            format!("{}", now.counter("stream.admitted") - effort_base.counter("stream.admitted")),
            format!("{}", now.counter("stream.rejected") - effort_base.counter("stream.rejected")),
            expkit::table::fmt_duration_s(
                now.timing_s("stream.solve") - effort_base.timing_s("stream.solve"),
            ),
        ]);
    }
    println!("{}", table.to_markdown());
    println!("\n### telemetry (first stream per algorithm)\n");
    println!("{}", effort.to_markdown());
    rec.flush().expect("flush trace");
    if let Some(path) = &args.trace {
        println!("\nwrote {} telemetry events to {path}", rec.events_emitted());
    }
    println!(
        "\nEarly vs late: the reliability requests get degrades over the\n\
         stream as earlier arrivals consume the backup capacity around\n\
         their primaries — the system-level effect the paper's\n\
         single-request experiments hold fixed."
    );
}

//! Scenario generator: a topology zoo and lazy, reproducible request streams.
//!
//! The paper's simulations run on ~100-node GT-ITM topologies with a few
//! thousand requests. This crate scales both axes without changing the
//! solvers: [`zoo`] grows `MecNetwork`s from 100 to 5,000+ cloudlets
//! (hierarchical SAGIN-style tiers, Barabási–Albert preferential attachment,
//! k-ary fat-trees, plus the flat Waxman and transit-stub models re-exported
//! from `mecnet`), and [`stream`] synthesizes 10^6+ [`SfcRequest`]s lazily —
//! Poisson arrivals with diurnal modulation and flash crowds, heavy- or
//! light-tailed TTLs, and popularity-skewed endpoint selection — all behind
//! a serde-able [`ScenarioSpec`] so a whole experiment is one JSON file or
//! one named preset.
//!
//! # Determinism
//!
//! Every random draw derives from `(spec.seed, position, salt)` through the
//! same splitmix64 finalizer the admission pipeline uses for its per-request
//! RNG streams: request `k`'s content, its arrival gap, and its TTL each come
//! from an independently seeded [`StdRng`], so any prefix of the stream is
//! byte-identical across re-instantiations regardless of how much of it a
//! consumer materializes. Topology and catalog construction get their own
//! salted streams, so changing stream parameters never perturbs the network.
//!
//! [`SfcRequest`]: mecnet::request::SfcRequest
//! [`StdRng`]: rand::rngs::StdRng

pub mod spec;
pub mod stream;
pub mod zoo;

pub use spec::{
    BuiltScenario, CatalogSpec, ScenarioSpec, ServiceSpec, StreamSpec, TopologySpec, TtlSpec,
};
pub use stream::{RequestStream, TimedRequest, TimedRequestStream};
pub use zoo::{barabasi_albert, fat_tree, sagin, FatTreeRole, TierSpec};

use rand::rngs::StdRng;
use rand::SeedableRng;

/// Domain-separation salts: one independent stream family per draw kind.
pub(crate) const TOPO_SALT: u64 = 0x0000_544f_504f; // "TOPO"
pub(crate) const CATALOG_SALT: u64 = 0x0043_4154; // "CAT"
pub(crate) const REQ_SALT: u64 = 0x0052_4551; // "REQ"
pub(crate) const ARRIVAL_SALT: u64 = 0x0041_5252; // "ARR"
pub(crate) const TTL_SALT: u64 = 0x0054_544c; // "TTL"
pub(crate) const FLASH_SALT: u64 = 0x0046_4c53; // "FLS"
pub(crate) const SERVICE_SALT: u64 = 0x0053_5643; // "SVC"

/// splitmix64 finalizer — same mixer the core pipeline uses for its
/// per-request admission/solve streams, so neighboring positions get
/// unrelated RNGs with good avalanche.
pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Mix `(seed, k, salt)` into a u64 seed.
pub(crate) fn derive_seed(seed: u64, k: u64, salt: u64) -> u64 {
    splitmix64(splitmix64(seed ^ salt).wrapping_add(k))
}

/// The RNG for position `k` of the stream family identified by `salt`:
/// independent per `(seed, k, salt)`, so draw `k` is a pure function of the
/// spec regardless of how positions `0..k` were consumed.
pub(crate) fn position_rng(seed: u64, k: u64, salt: u64) -> StdRng {
    StdRng::seed_from_u64(derive_seed(seed, k, salt))
}

/// Uniform `[0, 1)` double from a hash of `(seed, k, salt)` without
/// instantiating an RNG — used for cheap per-epoch decisions (flash crowds).
pub(crate) fn unit_hash(seed: u64, k: u64, salt: u64) -> f64 {
    (derive_seed(seed, k, salt) >> 11) as f64 / (1u64 << 53) as f64
}

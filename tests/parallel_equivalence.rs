//! Parallel-vs-sequential equivalence: the speculative worker-pool pipeline
//! must be indistinguishable from the seeded sequential pipeline for every
//! worker count — same admitted set, same per-request secondaries, same
//! final residual capacities, and a byte-identical telemetry JSONL stream
//! after the deterministic merge.

use std::io::Write;
use std::sync::{Arc, Mutex};

use mec_sfc_reliability::mecnet::topology;
use mec_sfc_reliability::mecnet::vnf::{VnfCatalog, VnfType};
use mec_sfc_reliability::mecnet::{MecNetwork, SfcRequest};
use mec_sfc_reliability::obs::Recorder;
use mec_sfc_reliability::relaug::parallel::{process_stream_parallel_traced, ParallelConfig};
use mec_sfc_reliability::relaug::stream::{
    process_stream_seeded_traced, Algorithm, StreamConfig, StreamOutcome,
};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// `Write` sink whose bytes can be read back after the recorder is dropped.
#[derive(Clone, Default)]
struct SharedBuf(Arc<Mutex<Vec<u8>>>);

impl Write for SharedBuf {
    fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
        self.0.lock().unwrap().extend_from_slice(buf);
        Ok(buf.len())
    }

    fn flush(&mut self) -> std::io::Result<()> {
        Ok(())
    }
}

fn setup(net_seed: u64, cloudlets: usize) -> (MecNetwork, VnfCatalog) {
    let g = topology::grid(5, 5);
    let mut rng = StdRng::seed_from_u64(net_seed);
    let net = MecNetwork::with_random_cloudlets(g, cloudlets, (2000.0, 4000.0), &mut rng);
    let mut cat = VnfCatalog::new();
    cat.add(VnfType { name: "fw".into(), demand_mhz: 300.0, reliability: 0.85 });
    cat.add(VnfType { name: "nat".into(), demand_mhz: 400.0, reliability: 0.9 });
    cat.add(VnfType { name: "ids".into(), demand_mhz: 250.0, reliability: 0.8 });
    (net, cat)
}

fn make_requests(n: usize, cat: &VnfCatalog, nodes: usize, seed: u64) -> Vec<SfcRequest> {
    let mut rng = StdRng::seed_from_u64(seed);
    (0..n).map(|i| SfcRequest::random(i, cat, (2, 4), 0.99, nodes, &mut rng)).collect()
}

/// Run a pipeline variant with a JSONL recorder; return the outcome and the
/// exact bytes it streamed.
fn run_jsonl<F>(run: F) -> (StreamOutcome, Vec<u8>)
where
    F: FnOnce(&mut Recorder) -> StreamOutcome,
{
    let buf = SharedBuf::default();
    let mut rec = Recorder::jsonl_writer(Box::new(buf.clone()));
    let out = run(&mut rec);
    rec.flush().unwrap();
    drop(rec);
    let bytes = buf.0.lock().unwrap().clone();
    (out, bytes)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]
    #[test]
    fn parallel_is_byte_identical_to_sequential(
        (net_seed, req_seed, pipeline_seed) in (0u64..10_000, 0u64..10_000, 0u64..10_000),
        n_requests in 8usize..=36,
        capacity_fraction in prop_oneof![Just(0.3), Just(0.6), Just(1.0)],
        share_backups in any::<bool>(),
        algorithm in prop_oneof![
            Just(Algorithm::Heuristic(Default::default())),
            Just(Algorithm::Greedy(Default::default())),
            Just(Algorithm::Randomized(Default::default())),
        ],
    ) {
        let (net, cat) = setup(net_seed, 6);
        let reqs = make_requests(n_requests, &cat, net.num_nodes(), req_seed);
        let stream = StreamConfig {
            algorithm,
            initial_capacity_fraction: capacity_fraction,
            share_backups,
            ..Default::default()
        };
        let (seq, seq_bytes) = run_jsonl(|rec| {
            process_stream_seeded_traced(&net, &cat, &reqs, &stream, pipeline_seed, rec)
        });
        prop_assert_eq!(seq.records.len(), reqs.len());
        for workers in [1usize, 2, 4, 8] {
            let cfg = ParallelConfig {
                stream: stream.clone(),
                workers,
                seed: pipeline_seed,
                max_inflight: 0,
                ..Default::default()
            };
            let (par, par_bytes) = run_jsonl(|rec| {
                process_stream_parallel_traced(&net, &cat, &reqs, &cfg, rec)
            });
            // Admitted set, per-request secondaries, reliabilities.
            prop_assert_eq!(&par.records, &seq.records, "records diverged at workers={}", workers);
            // Final residual capacities, exactly.
            prop_assert_eq!(&par.final_residual, &seq.final_residual,
                "residuals diverged at workers={}", workers);
            // Telemetry JSONL, byte for byte.
            prop_assert_eq!(&par_bytes, &seq_bytes, "JSONL diverged at workers={}", workers);
        }
    }
}

/// The ILP is the most stateful solver (warm starts, branch-and-bound
/// telemetry); one dedicated non-property case keeps the proptest sweep
/// fast while still covering it.
#[test]
fn parallel_matches_sequential_with_ilp() {
    let (net, cat) = setup(3, 5);
    let reqs = make_requests(10, &cat, net.num_nodes(), 4);
    let stream =
        StreamConfig { algorithm: Algorithm::Ilp(Default::default()), ..Default::default() };
    let (seq, seq_bytes) =
        run_jsonl(|rec| process_stream_seeded_traced(&net, &cat, &reqs, &stream, 9, rec));
    for workers in [2usize, 8] {
        let cfg = ParallelConfig { stream: stream.clone(), workers, seed: 9, ..Default::default() };
        let (par, par_bytes) =
            run_jsonl(|rec| process_stream_parallel_traced(&net, &cat, &reqs, &cfg, rec));
        assert_eq!(par, seq);
        assert_eq!(par_bytes, seq_bytes);
    }
}

/// A tiny in-flight window and a large one must both converge to the same
/// sequential result — the window only trades conflicts for idle workers.
#[test]
fn inflight_window_does_not_change_results() {
    let (net, cat) = setup(5, 6);
    let reqs = make_requests(24, &cat, net.num_nodes(), 6);
    let stream = StreamConfig { initial_capacity_fraction: 0.4, ..Default::default() };
    let seq = {
        let mut rec = Recorder::noop();
        process_stream_seeded_traced(&net, &cat, &reqs, &stream, 1, &mut rec)
    };
    for max_inflight in [1usize, 3, 64] {
        let cfg = ParallelConfig {
            stream: stream.clone(),
            workers: 4,
            seed: 1,
            max_inflight,
            ..Default::default()
        };
        let mut rec = Recorder::noop();
        let par = process_stream_parallel_traced(&net, &cat, &reqs, &cfg, &mut rec);
        assert_eq!(par, seq, "max_inflight={max_inflight}");
    }
}

//! Dense rectangular assignment (Hungarian / Jonker–Volgenant shortest
//! augmenting paths with dual potentials).
//!
//! Solves `min Σ cost[i][σ(i)]` over injections `σ` from rows into columns,
//! for matrices with `rows <= cols`. Entries of `f64::INFINITY` mark forbidden
//! pairs; if some row cannot be assigned at all the solver reports
//! infeasibility. The paper invokes "the Hungarian algorithm" for its
//! matchings; the production path uses the sparse flow solver in
//! [`crate::bipartite`], and this module cross-validates it in tests.

/// An optimal assignment of every row to a distinct column.
#[derive(Debug, Clone, PartialEq)]
pub struct Assignment {
    /// `col_of_row[i]` is the column assigned to row `i`.
    pub col_of_row: Vec<usize>,
    /// Total cost of the assignment.
    pub cost: f64,
}

/// Solve the rectangular assignment problem. Returns `None` when no complete
/// assignment of rows exists (due to `INFINITY` entries) or when
/// `rows > cols`.
///
/// `O(rows² · cols)` time, dense.
pub fn solve(cost: &[Vec<f64>]) -> Option<Assignment> {
    let n = cost.len();
    if n == 0 {
        return Some(Assignment { col_of_row: Vec::new(), cost: 0.0 });
    }
    let m = cost[0].len();
    if n > m {
        return None;
    }
    debug_assert!(cost.iter().all(|r| r.len() == m), "ragged cost matrix");

    // 1-indexed duals and matching, e-maxx formulation.
    let mut u = vec![0.0f64; n + 1];
    let mut v = vec![0.0f64; m + 1];
    let mut p = vec![0usize; m + 1]; // row matched to column j (0 = none)
    let mut way = vec![0usize; m + 1];

    for i in 1..=n {
        p[0] = i;
        let mut j0 = 0usize;
        let mut minv = vec![f64::INFINITY; m + 1];
        let mut used = vec![false; m + 1];
        loop {
            used[j0] = true;
            let i0 = p[j0];
            let mut delta = f64::INFINITY;
            let mut j1 = 0usize;
            for j in 1..=m {
                if used[j] {
                    continue;
                }
                let cur = cost[i0 - 1][j - 1] - u[i0] - v[j];
                if cur < minv[j] {
                    minv[j] = cur;
                    way[j] = j0;
                }
                if minv[j] < delta {
                    delta = minv[j];
                    j1 = j;
                }
            }
            if !delta.is_finite() {
                return None; // row i cannot be assigned
            }
            for j in 0..=m {
                if used[j] {
                    u[p[j]] += delta;
                    v[j] -= delta;
                } else {
                    minv[j] -= delta;
                }
            }
            j0 = j1;
            if p[j0] == 0 {
                break;
            }
        }
        // Augment along the alternating path.
        loop {
            let j1 = way[j0];
            p[j0] = p[j1];
            j0 = j1;
            if j0 == 0 {
                break;
            }
        }
    }

    let mut col_of_row = vec![usize::MAX; n];
    let mut total = 0.0;
    for j in 1..=m {
        if p[j] != 0 {
            col_of_row[p[j] - 1] = j - 1;
            total += cost[p[j] - 1][j - 1];
        }
    }
    debug_assert!(col_of_row.iter().all(|&c| c != usize::MAX));
    Some(Assignment { col_of_row, cost: total })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn square_3x3() {
        let cost = vec![vec![4.0, 1.0, 3.0], vec![2.0, 0.0, 5.0], vec![3.0, 2.0, 2.0]];
        let a = solve(&cost).unwrap();
        assert!((a.cost - 5.0).abs() < 1e-9, "cost = {}", a.cost);
        assert_eq!(a.col_of_row, vec![1, 0, 2]);
    }

    #[test]
    fn rectangular_picks_best_columns() {
        let cost = vec![vec![10.0, 2.0, 8.0], vec![7.0, 3.0, 4.0]];
        let a = solve(&cost).unwrap();
        // Row0->col1 (2), Row1->col2 (4) = 6.
        assert!((a.cost - 6.0).abs() < 1e-9);
        assert_eq!(a.col_of_row, vec![1, 2]);
    }

    #[test]
    fn forbidden_entries_force_detour() {
        let inf = f64::INFINITY;
        let cost = vec![vec![1.0, inf], vec![1.0, 5.0]];
        // Row1 must take col1 (5), forcing row0 to col0 (1).
        let a = solve(&cost).unwrap();
        assert!((a.cost - 6.0).abs() < 1e-9);
        assert_eq!(a.col_of_row, vec![0, 1]);
    }

    #[test]
    fn infeasible_when_row_has_no_columns() {
        let inf = f64::INFINITY;
        let cost = vec![vec![inf, inf], vec![1.0, 1.0]];
        assert!(solve(&cost).is_none());
    }

    #[test]
    fn more_rows_than_cols_is_infeasible() {
        let cost = vec![vec![1.0], vec![1.0]];
        assert!(solve(&cost).is_none());
    }

    #[test]
    fn empty_matrix() {
        let a = solve(&[]).unwrap();
        assert_eq!(a.cost, 0.0);
        assert!(a.col_of_row.is_empty());
    }

    #[test]
    fn negative_costs_allowed() {
        let cost = vec![vec![-2.0, 1.0], vec![1.0, -3.0]];
        let a = solve(&cost).unwrap();
        assert!((a.cost + 5.0).abs() < 1e-9);
    }
}

//! Sequential-vs-parallel admission throughput benchmark.
//!
//! Pushes one fixed request stream through `relaug::parallel` at several
//! worker counts, prints the criterion timings, and records the measured
//! throughput into `BENCH_stream.json` at the workspace root (the CI
//! artifact). Worker counts beyond the machine's core count are still run —
//! the JSON records `cores` so a reader can judge which speedups were
//! physically attainable — and every parallel run is checked byte-identical
//! to the sequential baseline before its timing is trusted.
//!
//! Two fixtures:
//!
//! 1. **Toy** — the historical 120-request `WorkloadConfig::default()`
//!    stream, criterion-sampled plus hand-timed (`results` in the JSON; the
//!    CI overhead gate reads these rows).
//! 2. **Scenario** — the `sagin-1k` zoo preset (≥1,000 cloudlets) with a
//!    lazily synthesized million-request stream fed straight into the
//!    engines' sink entry points, hand-timed once per worker count
//!    (`scenario` in the JSON). Nothing is materialized: identity against
//!    the sequential baseline is checked with the order-sensitive FNV record
//!    hash and the final residual vector. `QUICK=1` shrinks the stream for
//!    CI.

use std::time::{Duration, Instant};

use bench_harness::{fold_admitted_set_hash, fold_record_hash, RECORD_HASH_SEED};
use criterion::{black_box, criterion_group, criterion_main, BenchmarkId, Criterion};
use mecnet::request::SfcRequest;
use mecnet::workload::{generate_catalog, generate_network, WorkloadConfig};
use obs::Recorder;
use rand::rngs::StdRng;
use rand::SeedableRng;
use relaug::parallel::{
    process_stream_metered_sink, process_stream_parallel, CommitOrder, ParallelConfig,
};
use relaug::relaxed::process_stream_relaxed_reported;
use relaug::stream::{process_stream_seeded_sink, Algorithm, StreamConfig, StreamOutcome};
use scen::{BuiltScenario, RequestStream, ScenarioSpec};
use serde::Value;

const SEED: u64 = 42;
const REQUESTS: usize = 120;
const WORKER_COUNTS: [usize; 4] = [1, 2, 4, 8];
/// Hand-timed repetitions per worker count for the JSON record (criterion's
/// printed numbers come from its own sampling loop).
const RECORD_REPS: usize = 5;

const SCENARIO: &str = "sagin-1k";
const SCENARIO_REQUESTS: u64 = 1_000_000;
const SCENARIO_REQUESTS_QUICK: u64 = 150_000;
const SCENARIO_WORKERS: [usize; 3] = [1, 2, 4];

struct Fixture {
    network: mecnet::MecNetwork,
    catalog: mecnet::vnf::VnfCatalog,
    requests: Vec<SfcRequest>,
}

fn fixture() -> Fixture {
    let wl = WorkloadConfig::default();
    let mut rng = StdRng::seed_from_u64(SEED);
    let network = generate_network(&wl, &mut rng);
    let catalog = generate_catalog(&wl, &mut rng);
    let requests = (0..REQUESTS)
        .map(|i| SfcRequest::random(i, &catalog, (3, 6), 0.99, wl.nodes, &mut rng))
        .collect();
    Fixture { network, catalog, requests }
}

fn run(fx: &Fixture, workers: usize) -> StreamOutcome {
    let pcfg = ParallelConfig {
        stream: StreamConfig {
            algorithm: Algorithm::Heuristic(Default::default()),
            ..Default::default()
        },
        workers,
        seed: SEED,
        ..Default::default()
    };
    process_stream_parallel(&fx.network, &fx.catalog, &fx.requests, &pcfg)
}

struct WorkerResult {
    workers: usize,
    mean_s: f64,
    min_s: f64,
    throughput_rps: f64,
    speedup_vs_sequential: f64,
    identical_to_sequential: bool,
}

impl WorkerResult {
    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("workers".into(), Value::U64(self.workers as u64)),
            ("mean_s".into(), Value::F64(self.mean_s)),
            ("min_s".into(), Value::F64(self.min_s)),
            ("throughput_rps".into(), Value::F64(self.throughput_rps)),
            ("speedup_vs_sequential".into(), Value::F64(self.speedup_vs_sequential)),
            ("identical_to_sequential".into(), Value::Bool(self.identical_to_sequential)),
        ])
    }
}

/// One hand-timed scenario-scale run: the lazy stream goes straight into
/// the sink engine (workers = 1 resolves to the sequential driver inside),
/// records folded into the hash as they are produced.
struct ScenarioRun {
    hash: u64,
    final_residual: Vec<f64>,
    admitted: u64,
    elapsed_s: f64,
}

fn run_scenario(built: &BuiltScenario, requests: u64, workers: usize) -> ScenarioRun {
    let pcfg = ParallelConfig {
        stream: StreamConfig {
            algorithm: Algorithm::Heuristic(Default::default()),
            ..Default::default()
        },
        workers,
        seed: built.spec.seed,
        ..Default::default()
    };
    let mut hash = RECORD_HASH_SEED;
    let mut admitted = 0u64;
    let started = Instant::now();
    let (final_residual, _) = process_stream_metered_sink(
        &built.network,
        &built.catalog,
        RequestStream::new(built, requests),
        &pcfg,
        0,
        &mut Recorder::noop(),
        &mut |r| {
            hash = fold_record_hash(hash, &r);
            admitted += r.admitted as u64;
        },
    );
    ScenarioRun { hash, final_residual, admitted, elapsed_s: started.elapsed().as_secs_f64() }
}

/// One hand-timed relaxed-commit run. The order-sensitive record hash is
/// undefined here (records arrive in completion order), so the row carries
/// the order-insensitive admitted-set hash instead; correctness is the
/// linearization invariant, checked by `stream_exp --verify-linearization`
/// and the differential-oracle tests rather than re-paid on every timing.
struct RelaxedRun {
    admitted_set_hash: u64,
    admitted: u64,
    elapsed_s: f64,
    num_shards: usize,
    static_local_fraction: f64,
    local_commit_fraction: f64,
}

fn run_scenario_relaxed(built: &BuiltScenario, requests: u64, workers: usize) -> RelaxedRun {
    let pcfg = ParallelConfig {
        stream: StreamConfig {
            algorithm: Algorithm::Heuristic(Default::default()),
            ..Default::default()
        },
        workers,
        seed: built.spec.seed,
        commit_order: CommitOrder::Relaxed,
        ..Default::default()
    };
    let mut set_hash = 0u64;
    let mut admitted = 0u64;
    let started = Instant::now();
    let (_, _, report) = process_stream_relaxed_reported(
        &built.network,
        &built.catalog,
        RequestStream::new(built, requests),
        &pcfg,
        false,
        &mut Recorder::noop(),
        &mut |r| {
            set_hash = fold_admitted_set_hash(set_hash, &r);
            admitted += r.admitted as u64;
        },
    );
    RelaxedRun {
        admitted_set_hash: set_hash,
        admitted,
        elapsed_s: started.elapsed().as_secs_f64(),
        num_shards: report.num_shards,
        static_local_fraction: report.static_local_fraction,
        local_commit_fraction: report.contention.local_commit_fraction(),
    }
}

/// Relaxed rows, speedups quoted against the *deterministic sequential*
/// baseline — the honest "what did giving up ordering buy" number. Part of
/// that gain is algorithmic (locality-first admission scans `N_l^+` instead
/// of every cloudlet) and exists even at one worker on one core; `cores` in
/// the report lets a reader judge how much parallel scaling was physically
/// attainable on the bench machine.
fn relaxed_section(built: &BuiltScenario, requests: u64, det_sequential_s: f64) -> Value {
    let mut rows: Vec<Value> = Vec::new();
    let mut shards = 0u64;
    let mut static_fraction = 0.0f64;
    for &workers in &SCENARIO_WORKERS {
        let r = run_scenario_relaxed(built, requests, workers);
        shards = r.num_shards as u64;
        static_fraction = r.static_local_fraction;
        println!(
            "stream_parallel: scenario {SCENARIO} relaxed workers={workers} — {requests} requests \
             in {:.2}s ({:.0} req/s, {} admitted, set hash {:016x}, local {:.1}%)",
            r.elapsed_s,
            requests as f64 / r.elapsed_s,
            r.admitted,
            r.admitted_set_hash,
            100.0 * r.local_commit_fraction,
        );
        rows.push(Value::Obj(vec![
            ("workers".into(), Value::U64(workers as u64)),
            ("mean_s".into(), Value::F64(r.elapsed_s)),
            ("throughput_rps".into(), Value::F64(requests as f64 / r.elapsed_s)),
            (
                "speedup_vs_deterministic_sequential".into(),
                Value::F64(det_sequential_s / r.elapsed_s),
            ),
            // Order-sensitive hash is undefined for relaxed commit order.
            ("record_hash".into(), Value::Null),
            ("admitted_set_hash".into(), Value::Str(format!("{:016x}", r.admitted_set_hash))),
            ("admitted".into(), Value::U64(r.admitted)),
            ("local_commit_fraction".into(), Value::F64(r.local_commit_fraction)),
        ]));
    }
    Value::Obj(vec![
        ("commit_order".into(), Value::Str("relaxed".into())),
        ("num_shards".into(), Value::U64(shards)),
        ("static_local_fraction".into(), Value::F64(static_fraction)),
        ("results".into(), Value::Arr(rows)),
    ])
}

const PLAN_CACHE_ENTRIES: usize = 4096;

/// One hand-timed sequential run with the admission plan cache armed. Cached
/// admission is oracle-checked rather than byte-identical (hits skip the
/// solver after revalidating against live residuals), so the row carries the
/// cache counters instead of an identity bit; speedup is quoted against the
/// uncached sequential baseline — the tentpole "what did memoization buy on
/// one core" number. Peak RSS (VmHWM, whole process) is recorded as evidence
/// the cache stays O(capacity): the 10^6-request run's footprint must not
/// grow with the stream.
fn plan_cache_section(built: &BuiltScenario, requests: u64, uncached_sequential_s: f64) -> Value {
    let cfg = StreamConfig {
        algorithm: Algorithm::Heuristic(Default::default()),
        plan_cache: PLAN_CACHE_ENTRIES,
        ..Default::default()
    };
    let mut admitted = 0u64;
    let started = Instant::now();
    let (_, ob) = process_stream_seeded_sink(
        &built.network,
        &built.catalog,
        RequestStream::new(built, requests),
        &cfg,
        built.spec.seed,
        &mut Recorder::noop(),
        &mut |r| admitted += r.admitted as u64,
    );
    let elapsed_s = started.elapsed().as_secs_f64();
    let report = ob.plan_cache.expect("cached run attaches a report");
    let peak_rss = expkit::peak_rss_bytes().unwrap_or(0);
    println!(
        "stream_parallel: scenario {SCENARIO} plan-cache={PLAN_CACHE_ENTRIES} sequential — \
         {requests} requests in {elapsed_s:.2}s ({:.0} req/s, {admitted} admitted, \
         hit-rate {:.3}, plan hit-rate {:.3}, {:.1}x vs uncached, peak RSS {})",
        requests as f64 / elapsed_s,
        report.hit_rate(),
        report.plan_hit_rate(),
        uncached_sequential_s / elapsed_s,
        expkit::peak_rss_human(),
    );
    Value::Obj(vec![
        ("entries".into(), Value::U64(PLAN_CACHE_ENTRIES as u64)),
        ("workers".into(), Value::U64(1)),
        ("mean_s".into(), Value::F64(elapsed_s)),
        ("throughput_rps".into(), Value::F64(requests as f64 / elapsed_s)),
        ("speedup_vs_uncached_sequential".into(), Value::F64(uncached_sequential_s / elapsed_s)),
        ("admitted".into(), Value::U64(admitted)),
        ("hit_rate".into(), Value::F64(report.hit_rate())),
        ("plan_hit_rate".into(), Value::F64(report.plan_hit_rate())),
        ("hits".into(), Value::U64(report.hits)),
        ("epoch_skips".into(), Value::U64(report.epoch_skips)),
        ("reject_hits".into(), Value::U64(report.reject_hits)),
        ("misses".into(), Value::U64(report.misses)),
        ("validation_failures".into(), Value::U64(report.validation_failures)),
        ("insertions".into(), Value::U64(report.insertions)),
        ("evictions".into(), Value::U64(report.evictions)),
        ("peak_rss_bytes".into(), Value::U64(peak_rss)),
    ])
}

fn scenario_section(quick: bool) -> Value {
    let built = ScenarioSpec::preset(SCENARIO).expect("known preset").build();
    let requests = if quick { SCENARIO_REQUESTS_QUICK } else { SCENARIO_REQUESTS };
    let mut rows: Vec<Value> = Vec::new();
    let mut baseline: Option<ScenarioRun> = None;
    for &workers in &SCENARIO_WORKERS {
        let r = run_scenario(&built, requests, workers);
        let base = baseline.get_or_insert_with(|| ScenarioRun {
            hash: r.hash,
            final_residual: r.final_residual.clone(),
            admitted: r.admitted,
            elapsed_s: r.elapsed_s,
        });
        let identical = r.hash == base.hash && r.final_residual == base.final_residual;
        println!(
            "stream_parallel: scenario {SCENARIO} workers={workers} — {requests} requests in \
             {:.2}s ({:.0} req/s, {} admitted, hash {:016x}, identical={identical})",
            r.elapsed_s,
            requests as f64 / r.elapsed_s,
            r.admitted,
            r.hash,
        );
        rows.push(Value::Obj(vec![
            ("workers".into(), Value::U64(workers as u64)),
            ("mean_s".into(), Value::F64(r.elapsed_s)),
            ("throughput_rps".into(), Value::F64(requests as f64 / r.elapsed_s)),
            ("speedup_vs_sequential".into(), Value::F64(base.elapsed_s / r.elapsed_s)),
            ("identical_to_sequential".into(), Value::Bool(identical)),
            ("record_hash".into(), Value::Str(format!("{:016x}", r.hash))),
        ]));
    }
    let det_sequential_s = baseline.as_ref().map(|b| b.elapsed_s).unwrap_or(f64::NAN);
    let relaxed = relaxed_section(&built, requests, det_sequential_s);
    let plan_cache = plan_cache_section(&built, requests, det_sequential_s);
    Value::Obj(vec![
        ("name".into(), Value::Str(SCENARIO.into())),
        ("nodes".into(), Value::U64(built.network.num_nodes() as u64)),
        ("cloudlets".into(), Value::U64(built.cloudlets() as u64)),
        ("requests".into(), Value::U64(requests)),
        ("algorithm".into(), Value::Str("heuristic".into())),
        ("quick".into(), Value::Bool(quick)),
        ("results".into(), Value::Arr(rows)),
        ("relaxed".into(), relaxed),
        ("plan_cache".into(), plan_cache),
    ])
}

fn bench_stream_parallel(c: &mut Criterion) {
    let fx = fixture();
    let cores = std::thread::available_parallelism().map(|n| n.get()).unwrap_or(1);
    let baseline = run(&fx, 1);

    let mut group = c.benchmark_group("stream_admission");
    let mut results: Vec<WorkerResult> = Vec::new();
    for &workers in &WORKER_COUNTS {
        group.bench_with_input(BenchmarkId::new("workers", workers), &workers, |b, &w| {
            b.iter(|| black_box(run(&fx, w)))
        });

        let mut total = 0.0f64;
        let mut min_s = f64::INFINITY;
        let mut identical = true;
        for _ in 0..RECORD_REPS {
            let started = Instant::now();
            let out = black_box(run(&fx, workers));
            let elapsed = started.elapsed().as_secs_f64();
            total += elapsed;
            min_s = min_s.min(elapsed);
            identical &=
                out.records == baseline.records && out.final_residual == baseline.final_residual;
        }
        let mean_s = total / RECORD_REPS as f64;
        results.push(WorkerResult {
            workers,
            mean_s,
            min_s,
            throughput_rps: REQUESTS as f64 / mean_s,
            speedup_vs_sequential: f64::NAN, // filled once the baseline mean is known
            identical_to_sequential: identical,
        });
    }
    group.finish();

    let seq_mean = results[0].mean_s;
    for r in &mut results {
        r.speedup_vs_sequential = seq_mean / r.mean_s;
    }

    let quick = std::env::var_os("QUICK").is_some();
    let scenario = scenario_section(quick);

    let json = render_json(cores, &results, scenario);
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_stream.json");
    std::fs::write(path, &json).expect("write BENCH_stream.json");
    println!("wrote {path}");
}

fn render_json(cores: usize, results: &[WorkerResult], scenario: Value) -> String {
    let report = Value::Obj(vec![
        ("benchmark".into(), Value::Str("stream_parallel".into())),
        ("cores".into(), Value::U64(cores as u64)),
        ("requests".into(), Value::U64(REQUESTS as u64)),
        ("seed".into(), Value::U64(SEED)),
        ("algorithm".into(), Value::Str("heuristic".into())),
        ("record_reps".into(), Value::U64(RECORD_REPS as u64)),
        // The toy rows exist for the CI dispatch-overhead gate, not as
        // throughput evidence: 120 requests is far too small to amortize
        // speculation + validation, so workers > 1 *should* read below 1.0x
        // here. Scenario-scale throughput lives in `scenario.results`.
        (
            "results_note".into(),
            Value::Str(
                "overhead fixture: 120 requests cannot amortize parallel dispatch; \
                 sub-1.0x speedups at workers > 1 are expected — see `scenario` \
                 for throughput-scale numbers"
                    .into(),
            ),
        ),
        ("results".into(), Value::Arr(results.iter().map(WorkerResult::to_value).collect())),
        ("scenario".into(), scenario),
    ]);
    let mut json = serde_json::to_string_pretty(&report).expect("report serializes");
    json.push('\n');
    json
}

criterion_group! {
    name = benches;
    config = Criterion::default()
        .sample_size(10)
        .warm_up_time(Duration::from_millis(500))
        .measurement_time(Duration::from_secs(4));
    targets = bench_stream_parallel
}
criterion_main!(benches);

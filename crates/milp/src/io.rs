//! CPLEX-LP-format writer and reader.
//!
//! Models can be dumped to the ubiquitous `.lp` text format (for inspection
//! or feeding to an external solver when cross-checking results) and read
//! back. The reader supports the subset the writer emits — objective,
//! constraints with `<= / >= / =`, `Bounds`, `Generals`/`Binaries` — which is
//! enough for exact round-trips and for hand-written test fixtures.

use crate::problem::{Model, Relation, Sense, VarId};
use std::fmt::Write as _;

/// Serialize a model to CPLEX LP format. Variables are named `x0, x1, …` by
/// index.
pub fn write_lp(model: &Model) -> String {
    let mut out = String::new();
    out.push_str(match model.sense() {
        Sense::Maximize => "Maximize\n",
        Sense::Minimize => "Minimize\n",
    });
    out.push_str(" obj:");
    let mut first = true;
    for i in 0..model.num_vars() {
        let c = model.objective_coeff(VarId(i));
        if c != 0.0 {
            write_term(&mut out, c, i, first);
            first = false;
        }
    }
    if first {
        out.push_str(" 0 x0");
    }
    out.push_str("\nSubject To\n");
    for (ci, con) in model.constraints.iter().enumerate() {
        let _ = write!(out, " c{ci}:");
        let mut first = true;
        for &(v, a) in &con.terms {
            if a != 0.0 {
                write_term(&mut out, a, v.index(), first);
                first = false;
            }
        }
        if first {
            out.push_str(" 0 x0");
        }
        let rel = match con.relation {
            Relation::Le => "<=",
            Relation::Ge => ">=",
            Relation::Eq => "=",
        };
        let _ = writeln!(out, " {rel} {}", fmt_num(con.rhs));
    }
    out.push_str("Bounds\n");
    for i in 0..model.num_vars() {
        let (lo, hi) = model.var_bounds(VarId(i));
        match (lo.is_finite(), hi.is_finite()) {
            (true, true) => {
                let _ = writeln!(out, " {} <= x{i} <= {}", fmt_num(lo), fmt_num(hi));
            }
            (true, false) => {
                let _ = writeln!(out, " x{i} >= {}", fmt_num(lo));
            }
            (false, true) => {
                let _ = writeln!(out, " -inf <= x{i} <= {}", fmt_num(hi));
            }
            (false, false) => {
                let _ = writeln!(out, " x{i} free");
            }
        }
    }
    let generals: Vec<usize> =
        (0..model.num_vars()).filter(|&i| model.is_integer_var(VarId(i))).collect();
    if !generals.is_empty() {
        out.push_str("Generals\n");
        for i in generals {
            let _ = writeln!(out, " x{i}");
        }
    }
    out.push_str("End\n");
    out
}

fn write_term(out: &mut String, coeff: f64, var: usize, first: bool) {
    if first {
        if coeff < 0.0 {
            let _ = write!(out, " - {} x{var}", fmt_num(-coeff));
        } else {
            let _ = write!(out, " {} x{var}", fmt_num(coeff));
        }
    } else if coeff < 0.0 {
        let _ = write!(out, " - {} x{var}", fmt_num(-coeff));
    } else {
        let _ = write!(out, " + {} x{var}", fmt_num(coeff));
    }
}

fn fmt_num(x: f64) -> String {
    if x == x.trunc() && x.abs() < 1e15 {
        format!("{}", x as i64)
    } else {
        format!("{x}")
    }
}

/// A parsed constraint row: terms, relation, right-hand side.
type ParsedRow = (Vec<(usize, f64)>, Relation, f64);

/// Parse the LP subset produced by [`write_lp`]. Returns `None` on any
/// unrecognized syntax.
pub fn read_lp(text: &str) -> Option<Model> {
    #[derive(PartialEq)]
    enum Section {
        Objective,
        Constraints,
        Bounds,
        Generals,
        Done,
    }
    let mut sense = None;
    let mut section = None;
    let mut obj_terms: Vec<(usize, f64)> = Vec::new();
    let mut cons: Vec<ParsedRow> = Vec::new();
    let mut bounds: Vec<(usize, f64, f64)> = Vec::new();
    let mut generals: Vec<usize> = Vec::new();
    let mut max_var = 0usize;

    for raw in text.lines() {
        let line = raw.trim();
        if line.is_empty() {
            continue;
        }
        match line.to_ascii_lowercase().as_str() {
            "maximize" => {
                sense = Some(Sense::Maximize);
                section = Some(Section::Objective);
                continue;
            }
            "minimize" => {
                sense = Some(Sense::Minimize);
                section = Some(Section::Objective);
                continue;
            }
            "subject to" => {
                section = Some(Section::Constraints);
                continue;
            }
            "bounds" => {
                section = Some(Section::Bounds);
                continue;
            }
            "generals" | "binaries" => {
                section = Some(Section::Generals);
                continue;
            }
            "end" => {
                section = Some(Section::Done);
                continue;
            }
            _ => {}
        }
        match section.as_ref()? {
            Section::Objective => {
                let body = line.split_once(':').map_or(line, |(_, b)| b);
                obj_terms.extend(parse_terms(body, &mut max_var)?);
            }
            Section::Constraints => {
                let body = line.split_once(':').map_or(line, |(_, b)| b);
                let (lhs, rel, rhs) = split_relation(body)?;
                let terms = parse_terms(lhs, &mut max_var)?;
                cons.push((terms, rel, rhs.trim().parse().ok()?));
            }
            Section::Bounds => {
                bounds.push(parse_bound(line, &mut max_var)?);
            }
            Section::Generals => {
                let idx = parse_var(line.trim(), &mut max_var)?;
                generals.push(idx);
            }
            Section::Done => {}
        }
    }

    let mut model = Model::new(sense?);
    let n = max_var + 1;
    let mut lo = vec![0.0; n];
    let mut hi = vec![f64::INFINITY; n];
    for &(v, l, h) in &bounds {
        lo[v] = l;
        hi[v] = h;
    }
    let mut obj = vec![0.0; n];
    for &(v, c) in &obj_terms {
        obj[v] += c;
    }
    let is_int: Vec<bool> = (0..n).map(|i| generals.contains(&i)).collect();
    let vars: Vec<VarId> = (0..n)
        .map(|i| {
            if is_int[i] {
                model.add_integer_var(lo[i], hi[i], obj[i])
            } else {
                model.add_var(lo[i], hi[i], obj[i])
            }
        })
        .collect();
    for (terms, rel, rhs) in cons {
        model.add_constraint(terms.into_iter().map(|(v, a)| (vars[v], a)).collect(), rel, rhs);
    }
    Some(model)
}

fn split_relation(body: &str) -> Option<(&str, Relation, &str)> {
    for (pat, rel) in [("<=", Relation::Le), (">=", Relation::Ge), ("=", Relation::Eq)] {
        if let Some(pos) = body.find(pat) {
            return Some((&body[..pos], rel, &body[pos + pat.len()..]));
        }
    }
    None
}

fn parse_var(token: &str, max_var: &mut usize) -> Option<usize> {
    let idx: usize = token.strip_prefix('x')?.parse().ok()?;
    *max_var = (*max_var).max(idx);
    Some(idx)
}

/// Parse `a x0 + b x1 - c x2`-style term lists.
fn parse_terms(body: &str, max_var: &mut usize) -> Option<Vec<(usize, f64)>> {
    let mut out = Vec::new();
    let tokens: Vec<&str> = body.split_whitespace().collect();
    let mut sign = 1.0;
    let mut pending: Option<f64> = None;
    for tok in tokens {
        match tok {
            "+" => sign = 1.0,
            "-" => sign = -1.0,
            _ if tok.starts_with('x') => {
                let idx = parse_var(tok, max_var)?;
                out.push((idx, sign * pending.take().unwrap_or(1.0)));
                sign = 1.0;
            }
            _ => {
                pending = Some(tok.parse().ok()?);
            }
        }
    }
    // A dangling coefficient (no variable) is a syntax error.
    if pending.is_some() {
        return None;
    }
    Some(out)
}

fn parse_bound(line: &str, max_var: &mut usize) -> Option<(usize, f64, f64)> {
    let t: Vec<&str> = line.split_whitespace().collect();
    match t.as_slice() {
        // "lo <= xN <= hi"
        [lo, "<=", var, "<=", hi] => {
            let v = parse_var(var, max_var)?;
            let l = if *lo == "-inf" { f64::NEG_INFINITY } else { lo.parse().ok()? };
            Some((v, l, hi.parse().ok()?))
        }
        // "xN >= lo"
        [var, ">=", lo] => {
            let v = parse_var(var, max_var)?;
            Some((v, lo.parse().ok()?, f64::INFINITY))
        }
        // "xN free"
        [var, "free"] => {
            let v = parse_var(var, max_var)?;
            Some((v, f64::NEG_INFINITY, f64::INFINITY))
        }
        _ => None,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Model, Relation, Sense};
    use crate::{solve_lp, solve_milp};

    fn sample_model() -> Model {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(0.0, 4.0, 3.0);
        let y = m.add_integer_var(0.0, f64::INFINITY, 2.0);
        let z = m.add_var(f64::NEG_INFINITY, f64::INFINITY, -1.5);
        m.add_constraint(vec![(x, 1.0), (y, 2.0)], Relation::Le, 7.0);
        m.add_constraint(vec![(y, 1.0), (z, -1.0)], Relation::Ge, 1.0);
        m.add_constraint(vec![(x, 1.0), (z, 1.0)], Relation::Eq, 2.0);
        m
    }

    #[test]
    fn writer_emits_sections() {
        let text = write_lp(&sample_model());
        assert!(text.starts_with("Maximize"));
        assert!(text.contains("Subject To"));
        assert!(text.contains("Bounds"));
        assert!(text.contains("Generals"));
        assert!(text.trim_end().ends_with("End"));
        assert!(text.contains("3 x0"));
        assert!(text.contains("<= 7"));
    }

    #[test]
    fn round_trip_preserves_optimum() {
        let m = sample_model();
        let text = write_lp(&m);
        let back = read_lp(&text).expect("parse own output");
        assert_eq!(back.num_vars(), m.num_vars());
        assert_eq!(back.num_constraints(), m.num_constraints());
        let a = solve_milp(&m).unwrap();
        let b = solve_milp(&back).unwrap();
        assert!((a.objective - b.objective).abs() < 1e-9, "{} vs {}", a.objective, b.objective);
    }

    #[test]
    fn round_trip_lp_relaxation() {
        let m = sample_model().relax();
        let back = read_lp(&write_lp(&m)).unwrap();
        let a = solve_lp(&m).unwrap();
        let b = solve_lp(&back).unwrap();
        assert!((a.objective - b.objective).abs() < 1e-9);
    }

    #[test]
    fn reader_rejects_garbage() {
        assert!(read_lp("nonsense").is_none());
        assert!(read_lp("Maximize\n obj: 3\nEnd\n").is_none()); // dangling coeff
    }

    #[test]
    fn hand_written_fixture() {
        let text = "\
Minimize
 obj: 2 x0 + 3 x1
Subject To
 c0: x0 + x1 >= 4
Bounds
 0 <= x0 <= 3
 0 <= x1 <= 3
End
";
        let m = read_lp(text).unwrap();
        let sol = solve_lp(&m).unwrap();
        assert!((sol.objective - 9.0).abs() < 1e-6); // x0=3, x1=1
    }

    #[test]
    fn negative_coefficients_round_trip() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, 10.0, -2.5);
        let y = m.add_var(0.0, 10.0, 1.0);
        m.add_constraint(vec![(x, -1.0), (y, 1.5)], Relation::Ge, -3.0);
        let back = read_lp(&write_lp(&m)).unwrap();
        let a = solve_lp(&m).unwrap();
        let b = solve_lp(&back).unwrap();
        assert!((a.objective - b.objective).abs() < 1e-9);
    }
}

//! Deterministic seed derivation: one master seed fans out to independent
//! per-trial seeds, so experiment sweeps are reproducible and each trial is
//! statistically independent of its index.

/// Derive the `index`-th child seed of `master` (splitmix64 over the
/// combination; avalanche guarantees decorrelated streams).
pub fn fan_out(master: u64, index: u64) -> u64 {
    splitmix64(master ^ splitmix64(index.wrapping_add(0x9E3779B97F4A7C15)))
}

fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E3779B97F4A7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic() {
        assert_eq!(fan_out(42, 0), fan_out(42, 0));
        assert_eq!(fan_out(7, 99), fan_out(7, 99));
    }

    #[test]
    fn distinct_across_indices_and_masters() {
        let mut seen = std::collections::HashSet::new();
        for master in 0..8u64 {
            for idx in 0..64u64 {
                assert!(seen.insert(fan_out(master, idx)), "collision at {master}/{idx}");
            }
        }
    }

    #[test]
    fn bits_look_mixed() {
        // Flipping one bit of the index should flip many output bits.
        let a = fan_out(1, 2);
        let b = fan_out(1, 3);
        let flipped = (a ^ b).count_ones();
        assert!(flipped > 10, "only {flipped} bits differ");
    }
}

//! SFC requests: an ordered chain of network functions plus a reliability
//! expectation `ρ_j`.

use crate::graph::NodeId;
use crate::vnf::{VnfCatalog, VnfTypeId};
use rand::Rng;

/// A user request `j` with service function chain `SFC_j` and reliability
/// expectation `ρ_j` (paper Section 3.1).
#[derive(Debug, Clone, PartialEq)]
pub struct SfcRequest {
    pub id: usize,
    /// Ordered chain `f_1, …, f_{L_j}` (types may repeat across requests but
    /// within one chain the paper assumes distinct functions; the generator
    /// samples without replacement).
    pub sfc: Vec<VnfTypeId>,
    /// Reliability expectation `ρ_j ∈ (0, 1]`.
    pub expectation: f64,
    /// Ingress access point of the request's traffic.
    pub source: NodeId,
    /// Egress access point.
    pub destination: NodeId,
    /// Interned [`chain_signature`] of `sfc`, computed once at construction
    /// so cache keys and telemetry labels never re-hash the chain.
    pub chain_sig: u64,
}

/// splitmix64 finalizer — the same mixer the stream engines use for seed
/// derivation, so chain signatures share their avalanche quality.
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Canonical order-sensitive signature of a VNF chain: a splitmix64 fold over
/// the type ids (offset by one so a leading `VnfTypeId(0)` perturbs the
/// state), seeded with the chain length so prefixes don't collide.
pub fn chain_signature(sfc: &[VnfTypeId]) -> u64 {
    let mut h = splitmix64(0x5346_435f ^ (sfc.len() as u64));
    for f in sfc {
        h = splitmix64(h ^ (f.0 as u64).wrapping_add(1));
    }
    h
}

impl SfcRequest {
    /// Construct a request, interning the chain signature.
    pub fn new(
        id: usize,
        sfc: Vec<VnfTypeId>,
        expectation: f64,
        source: NodeId,
        destination: NodeId,
    ) -> Self {
        let chain_sig = chain_signature(&sfc);
        SfcRequest { id, sfc, expectation, source, destination, chain_sig }
    }

    /// Chain length `L_j`.
    pub fn len(&self) -> usize {
        self.sfc.len()
    }

    pub fn is_empty(&self) -> bool {
        self.sfc.is_empty()
    }

    /// Reliability of the bare primary chain, `Π_i r_i` — the starting point
    /// the augmentation algorithms improve on.
    pub fn base_reliability(&self, catalog: &VnfCatalog) -> f64 {
        self.sfc.iter().map(|&f| catalog.reliability(f)).product()
    }

    /// Whether the primaries alone already meet the expectation (the early
    /// EXIT of Algorithms 1 and 2).
    pub fn met_by_primaries(&self, catalog: &VnfCatalog) -> bool {
        self.base_reliability(catalog) >= self.expectation
    }

    /// Total computing demand of one full copy of the chain.
    pub fn chain_demand(&self, catalog: &VnfCatalog) -> f64 {
        self.sfc.iter().map(|&f| catalog.demand(f)).sum()
    }

    /// Generate a random request: chain length uniform in `len_range`,
    /// functions sampled from the catalog without replacement (falling back
    /// to with-replacement if the chain is longer than the catalog).
    pub fn random<R: Rng + ?Sized>(
        id: usize,
        catalog: &VnfCatalog,
        len_range: (usize, usize),
        expectation: f64,
        num_nodes: usize,
        rng: &mut R,
    ) -> Self {
        assert!(len_range.0 >= 1 && len_range.0 <= len_range.1);
        assert!(expectation > 0.0 && expectation <= 1.0);
        assert!(num_nodes >= 1);
        let len = rng.gen_range(len_range.0..=len_range.1);
        let sfc = if len <= catalog.len() {
            rand::seq::index::sample(rng, catalog.len(), len).into_iter().map(VnfTypeId).collect()
        } else {
            (0..len).map(|_| VnfTypeId(rng.gen_range(0..catalog.len()))).collect()
        };
        let source = NodeId(rng.gen_range(0..num_nodes));
        let destination = NodeId(rng.gen_range(0..num_nodes));
        SfcRequest::new(id, sfc, expectation, source, destination)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vnf::VnfType;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn small_catalog() -> VnfCatalog {
        let mut cat = VnfCatalog::new();
        cat.add(VnfType { name: "a".into(), demand_mhz: 100.0, reliability: 0.9 });
        cat.add(VnfType { name: "b".into(), demand_mhz: 200.0, reliability: 0.8 });
        cat
    }

    #[test]
    fn base_reliability_is_product() {
        let cat = small_catalog();
        let req = SfcRequest::new(0, vec![VnfTypeId(0), VnfTypeId(1)], 0.9, NodeId(0), NodeId(1));
        assert!((req.base_reliability(&cat) - 0.72).abs() < 1e-12);
        assert!(!req.met_by_primaries(&cat));
        assert!((req.chain_demand(&cat) - 300.0).abs() < 1e-12);
        assert_eq!(req.len(), 2);
    }

    #[test]
    fn expectation_met_when_base_high() {
        let cat = small_catalog();
        let req = SfcRequest::new(0, vec![VnfTypeId(0)], 0.85, NodeId(0), NodeId(0));
        assert!(req.met_by_primaries(&cat));
    }

    #[test]
    fn chain_signature_is_order_and_length_sensitive() {
        let ab = chain_signature(&[VnfTypeId(0), VnfTypeId(1)]);
        let ba = chain_signature(&[VnfTypeId(1), VnfTypeId(0)]);
        let a = chain_signature(&[VnfTypeId(0)]);
        assert_ne!(ab, ba, "signature must be order-sensitive");
        assert_ne!(ab, a, "signature must be length-sensitive");
        assert_eq!(ab, chain_signature(&[VnfTypeId(0), VnfTypeId(1)]), "deterministic");
    }

    #[test]
    fn constructors_intern_the_signature() {
        let mut rng = StdRng::seed_from_u64(77);
        let cat = small_catalog();
        for i in 0..16 {
            let req = SfcRequest::random(i, &cat, (1, 2), 0.9, 8, &mut rng);
            assert_eq!(req.chain_sig, chain_signature(&req.sfc));
        }
    }

    #[test]
    fn random_request_samples_without_replacement() {
        let mut rng = StdRng::seed_from_u64(9);
        let mut cat = VnfCatalog::new();
        for i in 0..10 {
            cat.add(VnfType { name: format!("f{i}"), demand_mhz: 100.0, reliability: 0.9 });
        }
        for _ in 0..20 {
            let req = SfcRequest::random(0, &cat, (3, 6), 0.99, 50, &mut rng);
            assert!((3..=6).contains(&req.len()));
            let mut seen = req.sfc.clone();
            seen.sort();
            seen.dedup();
            assert_eq!(seen.len(), req.len(), "functions must be distinct");
            assert!(req.source.index() < 50 && req.destination.index() < 50);
        }
    }

    #[test]
    fn random_request_longer_than_catalog_falls_back() {
        let mut rng = StdRng::seed_from_u64(10);
        let cat = small_catalog();
        let req = SfcRequest::random(0, &cat, (5, 5), 0.9, 3, &mut rng);
        assert_eq!(req.len(), 5);
    }
}

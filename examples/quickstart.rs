//! Quickstart: generate a paper-style scenario, run all three algorithms,
//! and compare what they achieve.
//!
//! Run with: `cargo run --release --example quickstart`

use mec_sfc_reliability::mecnet::workload::{generate_scenario, WorkloadConfig};
use mec_sfc_reliability::relaug::instance::AugmentationInstance;
use mec_sfc_reliability::relaug::{heuristic, ilp, randomized};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let mut rng = StdRng::seed_from_u64(2020);

    // The paper's Section 7.1 defaults: 100 APs, 10 cloudlets (4-8 GHz),
    // 30 VNF types (200-400 MHz), SFC length 3-10, 25% residual capacity.
    let config = WorkloadConfig::default();
    let scenario = generate_scenario(&config, &mut rng);

    println!(
        "network : {} APs, {} cloudlets",
        scenario.network.num_nodes(),
        scenario.network.num_cloudlets()
    );
    println!(
        "request : SFC of {} functions, expectation rho = {}",
        scenario.request.len(),
        scenario.request.expectation
    );
    println!(
        "primaries placed on: {:?}",
        scenario.placement.locations.iter().map(|v| v.to_string()).collect::<Vec<_>>()
    );

    // The augmentation instance: secondaries may go at most l = 1 hop from
    // each primary's cloudlet.
    let inst = AugmentationInstance::from_scenario(&scenario, 1);
    println!(
        "\nbase reliability (primaries only): {:.4}  — expectation met: {}",
        inst.base_reliability(),
        inst.expectation_met_by_primaries()
    );
    println!("candidate secondary items N = {}", inst.total_items());

    // 1. Exact ILP (branch & bound on the bundled MILP solver).
    let exact = ilp::solve(&inst, &Default::default()).expect("ILP");
    // 2. Algorithm 1: LP relaxation + randomized rounding (may violate
    //    capacities; that is measured, not hidden).
    let rand_out = randomized::solve(&inst, &Default::default(), &mut rng).expect("LP");
    // 3. Algorithm 2: iterated min-cost maximum matchings (always feasible).
    let heur = heuristic::solve(&inst, &Default::default());

    println!(
        "\n{:<12} {:>12} {:>12} {:>14} {:>12}",
        "algorithm", "reliability", "secondaries", "max bin usage", "runtime"
    );
    for (name, out) in [("ILP", &exact), ("Randomized", &rand_out), ("Heuristic", &heur)] {
        println!(
            "{:<12} {:>12.4} {:>12} {:>14.3} {:>9.2?}",
            name,
            out.metrics.reliability,
            out.metrics.total_secondaries,
            out.metrics.max_usage,
            out.runtime
        );
    }
    println!(
        "\nRandomized violated a cloudlet capacity: {}",
        if rand_out.metrics.max_violation_ratio > 1.0 { "yes (allowed by design)" } else { "no" }
    );
    println!("Heuristic is always feasible: {}", heur.augmentation.is_capacity_feasible(&inst));
}

//! End-to-end byte-identity of the incremental matching engine: a full
//! admission stream over zoo scenarios must produce exactly the same
//! `RequestRecord`s — and the same final residuals, bit for bit — whether the
//! heuristic solves its rounds with the incremental engine (default) or the
//! historical full-rebuild path. This is the stream-level pin behind the
//! record-hash equality the `stream_exp` harness reports.

use mec_sfc_reliability::relaug::heuristic::{HeuristicConfig, MatchEngine};
use mec_sfc_reliability::relaug::stream::{process_stream_seeded, Algorithm, StreamConfig};
use mec_sfc_reliability::scen::{RequestStream, ScenarioSpec};

fn outcome(
    preset: &str,
    requests: u64,
    engine: MatchEngine,
) -> mec_sfc_reliability::relaug::stream::StreamOutcome {
    let built = ScenarioSpec::preset(preset).expect("known preset").build();
    let reqs: Vec<_> = RequestStream::new(&built, requests).collect();
    let cfg = StreamConfig {
        algorithm: Algorithm::Heuristic(HeuristicConfig { engine, ..Default::default() }),
        ..Default::default()
    };
    process_stream_seeded(&built.network, &built.catalog, &reqs, &cfg, built.spec.seed)
}

#[test]
fn incremental_engine_stream_is_byte_identical_on_zoo_scenarios() {
    for preset in ["waxman-100", "fattree-16"] {
        let inc = outcome(preset, 1500, MatchEngine::Incremental);
        let reb = outcome(preset, 1500, MatchEngine::Rebuild);
        assert_eq!(
            inc.records, reb.records,
            "{preset}: request records diverge between incremental and rebuild engines"
        );
        assert_eq!(inc.final_residual.len(), reb.final_residual.len());
        for (v, (a, b)) in inc.final_residual.iter().zip(&reb.final_residual).enumerate() {
            assert_eq!(
                a.to_bits(),
                b.to_bits(),
                "{preset}: node {v} residual bits diverge ({a} vs {b})"
            );
        }
    }
}

#[test]
fn warm_engine_stream_stays_feasible_on_zoo_scenarios() {
    // Warm starts trade the byte-identity guarantee for price reuse; the
    // stream must still be complete (one record per request) and feasible.
    let built = ScenarioSpec::preset("waxman-100").expect("known preset").build();
    let reqs: Vec<_> = RequestStream::new(&built, 1500).collect();
    let cfg = StreamConfig {
        algorithm: Algorithm::Heuristic(HeuristicConfig {
            engine: MatchEngine::IncrementalWarm,
            ..Default::default()
        }),
        ..Default::default()
    };
    let out = process_stream_seeded(&built.network, &built.catalog, &reqs, &cfg, built.spec.seed);
    assert_eq!(out.records.len(), reqs.len());
    let initial = built.network.residual_capacities(1.0);
    for (v, (&res, &init)) in out.final_residual.iter().zip(&initial).enumerate() {
        assert!(
            (-1e-9..=init + 1e-9).contains(&res),
            "node {v} residual {res} outside [0, {init}]"
        );
    }
    assert!(out.admitted() > 0, "warm stream admitted nothing");
}

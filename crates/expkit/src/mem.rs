//! Process-memory introspection for the harness tables: large-scale stream
//! experiments report peak RSS next to throughput so O(window) memory claims
//! are visible (and regress loudly) in the bench output.

/// Peak resident set size of the current process in bytes, read from Linux's
/// `/proc/self/status` `VmHWM` line. Returns `None` on platforms without
/// procfs — callers should print `n/a` rather than fail.
pub fn peak_rss_bytes() -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    for line in status.lines() {
        if let Some(rest) = line.strip_prefix("VmHWM:") {
            let kb: u64 = rest.trim().trim_end_matches("kB").trim().parse().ok()?;
            return Some(kb * 1024);
        }
    }
    None
}

/// Human-readable peak RSS ("312.4 MiB"), or "n/a" where unavailable.
pub fn peak_rss_human() -> String {
    match peak_rss_bytes() {
        Some(bytes) => {
            let mib = bytes as f64 / (1024.0 * 1024.0);
            if mib >= 1024.0 {
                format!("{:.2} GiB", mib / 1024.0)
            } else {
                format!("{mib:.1} MiB")
            }
        }
        None => "n/a".to_string(),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn peak_rss_is_positive_on_linux() {
        if cfg!(target_os = "linux") {
            let rss = peak_rss_bytes().expect("procfs available on linux");
            assert!(rss > 1024 * 1024, "peak RSS {rss} implausibly small");
            assert!(!peak_rss_human().is_empty());
        }
    }
}

//! Atomic counters/gauges for concurrent call sites (the bench harness fans
//! trials across threads) and an expkit-backed histogram for distributions.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic atomic counter, shareable across threads.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins f64 gauge (stored as bits so it stays lock-free).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub fn new() -> Gauge {
        Gauge(AtomicU64::new(0.0f64.to_bits()))
    }

    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Distribution metric backed by the shared mergeable [`expkit::Log2Histogram`]
/// (the same bucket layout the per-worker shards use, so distributions from
/// different sources merge exactly), with a streaming summary alongside so
/// exact mean/min/max survive binning.
#[derive(Debug, Clone, Default)]
pub struct Distribution {
    hist: expkit::Log2Histogram,
    acc: expkit::Accumulator,
}

impl Distribution {
    pub fn new() -> Distribution {
        Distribution::default()
    }

    pub fn record(&mut self, v: u64) {
        self.hist.record(v);
        self.acc.push(v as f64);
    }

    /// Record a duration as nanoseconds.
    pub fn record_duration(&mut self, d: std::time::Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    pub fn count(&self) -> u64 {
        self.hist.count()
    }

    pub fn histogram(&self) -> &expkit::Log2Histogram {
        &self.hist
    }

    /// Quantile estimate from the log2 buckets (within one bucket of exact).
    pub fn quantile(&self, q: f64) -> Option<u64> {
        self.hist.quantile(q)
    }

    /// Fold another distribution into this one. Bucket counts merge exactly;
    /// the streaming summary merges its moments.
    pub fn merge(&mut self, other: &Distribution) {
        self.hist.merge(&other.hist);
        self.acc.merge(&other.acc);
    }

    pub fn summary(&self) -> Option<expkit::Summary> {
        if self.acc.is_empty() {
            None
        } else {
            Some(self.acc.summary())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_across_threads() {
        let c = Counter::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }

    #[test]
    fn gauge_stores_floats() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(-2.5);
        assert_eq!(g.get(), -2.5);
    }

    #[test]
    fn distribution_tracks_summary_and_buckets() {
        let mut d = Distribution::new();
        for v in [1u64, 3, 9] {
            d.record(v);
        }
        assert_eq!(d.count(), 3);
        let s = d.summary().unwrap();
        assert_eq!(s.n, 3);
        assert!((s.mean - 13.0 / 3.0).abs() < 1e-12);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 9.0);
        assert_eq!(d.histogram().count(), 3);
        assert!(d.quantile(1.0).unwrap() >= 9);
        assert!(Distribution::new().summary().is_none());
    }

    #[test]
    fn distribution_merge_matches_combined_stream() {
        let mut a = Distribution::new();
        let mut b = Distribution::new();
        let mut whole = Distribution::new();
        for v in 0..50u64 {
            a.record(v * 7);
            whole.record(v * 7);
        }
        for v in 0..30u64 {
            b.record(v * 1000);
            whole.record(v * 1000);
        }
        a.merge(&b);
        assert_eq!(a.histogram(), whole.histogram());
        let (ma, mw) = (a.summary().unwrap(), whole.summary().unwrap());
        assert_eq!(ma.n, mw.n);
        assert!((ma.mean - mw.mean).abs() < 1e-9);
        assert!((ma.std - mw.std).abs() < 1e-9);
    }
}

//! Experiment toolkit shared by the figure-regeneration harness and the
//! benches: summary statistics with confidence intervals, markdown/CSV table
//! rendering, deterministic per-trial seed derivation, and a tiny timing
//! helper.

pub mod histogram;
pub mod mem;
pub mod seed;
pub mod stats;
pub mod table;
pub mod timer;

pub use histogram::{percentile, Histogram, Log2Histogram, LOG2_BUCKETS};
pub use mem::{peak_rss_bytes, peak_rss_human};
pub use seed::fan_out;
pub use stats::{Accumulator, Summary};
pub use table::Table;
pub use timer::{time_it, Stopwatch};

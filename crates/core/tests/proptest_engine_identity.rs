//! Byte-identity of the incremental matching engine at the solver level:
//! on random instances, Algorithm 2 with `MatchEngine::Incremental` must
//! reproduce the `MatchEngine::Rebuild` (historical) path exactly — same
//! placements, bit-equal reliability, and the same per-round telemetry on
//! every legacy `heuristic.round` field.

use mecnet::graph::NodeId;
use mecnet::vnf::VnfTypeId;
use obs::Recorder;
use proptest::prelude::*;
use relaug::heuristic::{self, HeuristicConfig, MatchEngine, StopRule};
use relaug::instance::{AugmentationInstance, Bin, FunctionSlot};

/// Strategy: random small instances with consistent eligibility and K_i
/// (mirrors `proptest_relaug`'s generator).
fn arb_instance() -> impl Strategy<Value = AugmentationInstance> {
    let bins = proptest::collection::vec(100.0f64..900.0, 1..=4);
    let funcs = proptest::collection::vec((50.0f64..350.0, 0.55f64..0.95), 1..=5);
    (bins, funcs, 0.9f64..0.999999).prop_map(|(residuals, funcs, expectation)| {
        let bins: Vec<Bin> = residuals
            .iter()
            .enumerate()
            .map(|(i, &r)| Bin { node: NodeId(i), residual: r })
            .collect();
        let functions: Vec<FunctionSlot> = funcs
            .iter()
            .enumerate()
            .map(|(i, &(demand, reliability))| {
                let eligible: Vec<usize> = (0..bins.len())
                    .filter(|&b| (i + b) % 3 != 0 || b == i % bins.len())
                    .filter(|&b| bins[b].residual >= demand)
                    .collect();
                let max_secondaries =
                    eligible.iter().map(|&b| (bins[b].residual / demand).floor() as usize).sum();
                FunctionSlot {
                    vnf: VnfTypeId(i),
                    demand,
                    reliability,
                    primary: NodeId(0),
                    eligible_bins: eligible,
                    max_secondaries,
                    existing_backups: 0,
                }
            })
            .collect();
        AugmentationInstance { functions, bins, l: 1, expectation }
    })
}

/// The legacy `heuristic.round` fields both engines must agree on, bit for
/// bit. (The engine-specific fields — `edges_live`, `engine`, `warm` — are
/// telemetry about *how* the round was solved and legitimately differ.)
const LEGACY_ROUND_FIELDS: [&str; 8] = [
    "round",
    "left_bins",
    "right_items",
    "edges",
    "matched",
    "committed",
    "reliability",
    "reliability_gain",
];

fn run(
    inst: &AugmentationInstance,
    cfg: &HeuristicConfig,
) -> (relaug::solution::Outcome, Recorder) {
    let mut rec = Recorder::memory();
    let out = heuristic::solve_traced(inst, cfg, &mut rec);
    (out, rec)
}

fn assert_identical(inst: &AugmentationInstance, stop: StopRule) {
    let incremental =
        HeuristicConfig { stop, engine: MatchEngine::Incremental, ..Default::default() };
    let rebuild = HeuristicConfig { stop, engine: MatchEngine::Rebuild, ..Default::default() };
    let (a, rec_a) = run(inst, &incremental);
    let (b, rec_b) = run(inst, &rebuild);
    assert_eq!(a.augmentation, b.augmentation, "placements diverge under {stop:?}");
    assert_eq!(
        a.metrics.reliability.to_bits(),
        b.metrics.reliability.to_bits(),
        "reliability bits diverge under {stop:?}"
    );
    assert_eq!(a.solver, b.solver, "round counts diverge under {stop:?}");
    let rounds = |rec: &Recorder| -> Vec<obs::Event> {
        rec.events().iter().filter(|e| e.kind == "heuristic.round").cloned().collect()
    };
    let (ra, rb) = (rounds(&rec_a), rounds(&rec_b));
    assert_eq!(ra.len(), rb.len(), "round event counts diverge under {stop:?}");
    for (ea, eb) in ra.iter().zip(&rb) {
        for key in LEGACY_ROUND_FIELDS {
            assert_eq!(ea.field(key), eb.field(key), "round field {key} diverges under {stop:?}");
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Default-config solves (Expectation stop) are byte-identical.
    #[test]
    fn incremental_is_byte_identical_to_rebuild(inst in arb_instance()) {
        assert_identical(&inst, StopRule::Expectation);
    }

    /// Exhaust drives many more rounds through the delta-maintained lists;
    /// identity must survive the full round sequence.
    #[test]
    fn incremental_identity_survives_exhaust_rounds(inst in arb_instance()) {
        assert_identical(&inst, StopRule::Exhaust);
    }

    /// Warm starts promise per-round matching-cost parity, not an identical
    /// trajectory: an equal-cost round matching may distribute placements
    /// differently across functions, so downstream rounds can diverge. What
    /// must hold is feasibility, locality, and that solution quality does not
    /// collapse (same slack the `batch_rounds` ablation test uses).
    #[test]
    fn warm_engine_preserves_feasibility_and_quality(inst in arb_instance()) {
        let warm_cfg = HeuristicConfig { engine: MatchEngine::IncrementalWarm, ..Default::default() };
        let (warm, _) = run(&inst, &warm_cfg);
        let (cold, _) = run(&inst, &HeuristicConfig::default());
        prop_assert!(warm.augmentation.is_capacity_feasible(&inst));
        prop_assert!(warm.augmentation.respects_locality(&inst));
        prop_assert!(
            warm.metrics.reliability >= 0.95 * cold.metrics.reliability,
            "warm reliability {} collapsed vs cold {}",
            warm.metrics.reliability,
            cold.metrics.reliability
        );
    }
}

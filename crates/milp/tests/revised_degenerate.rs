//! Anti-cycling regression tests for the revised simplex.
//!
//! These LPs are heavily degenerate: many bases map to the same vertex, the
//! ratio test ties constantly, and a pure Dantzig rule with naive
//! tie-breaking can cycle forever on some of them (Beale's example is *the*
//! textbook cycling instance). The solver escalates to Bland's rule after a
//! streak of degenerate (zero-step) pivots, which guarantees termination —
//! these tests pin that the escalation engages and the solver still reaches
//! the true optimum in a modest number of iterations.

use milp::{solve_lp, solve_milp, LpStatus, Model, Relation, Sense};

/// Beale's classic cycling LP:
///
/// ```text
/// min  -3/4 x1 + 150 x2 - 1/50 x3 + 6 x4
/// s.t.  1/4 x1 -  60 x2 - 1/25 x3 + 9 x4 <= 0
///       1/2 x1 -  90 x2 - 1/50 x3 + 3 x4 <= 0
///                             x3          <= 1
///       x >= 0
/// ```
///
/// Dantzig pricing with lowest-index tie-breaking cycles through six bases
/// at the origin on the tableau form of this program. Optimum: `x = (1/25,
/// 0, 1, 0)` with objective `-1/20`.
#[test]
fn beale_cycling_example_terminates_at_optimum() {
    let mut m = Model::new(Sense::Minimize);
    let x1 = m.add_var(0.0, f64::INFINITY, -0.75);
    let x2 = m.add_var(0.0, f64::INFINITY, 150.0);
    let x3 = m.add_var(0.0, f64::INFINITY, -0.02);
    let x4 = m.add_var(0.0, f64::INFINITY, 6.0);
    m.add_constraint(vec![(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)], Relation::Le, 0.0);
    m.add_constraint(vec![(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)], Relation::Le, 0.0);
    m.add_constraint(vec![(x3, 1.0)], Relation::Le, 1.0);
    let sol = solve_lp(&m).expect("Beale's example must not hit the iteration limit");
    assert_eq!(sol.status, LpStatus::Optimal);
    assert!((sol.objective - (-0.05)).abs() < 1e-8, "objective {}", sol.objective);
    assert!((sol.x[x1.index()] - 0.04).abs() < 1e-7);
    assert!((sol.x[x3.index()] - 1.0).abs() < 1e-7);
    // Termination must come from anti-cycling, not from luckily hitting the
    // iteration cap: the cap for this size is in the thousands.
    assert!(sol.iterations < 100, "took {} iterations", sol.iterations);
}

/// Kuhn's cycling example (another standard counterexample for Dantzig
/// pricing), boxed to keep it bounded. With `x <= 10` the optimum is `-10`
/// at `x = (10, 0, 10, 0)`: eliminating `x3 = x1 + 3 x2` (row 2 tight)
/// reduces the objective to `-x1`, and `x4 > 0` only ever trades a `-6`
/// relaxation for its `+12` cost.
#[test]
fn kuhn_cycling_example_terminates() {
    // min -2 x1 - 3 x2 + x3 + 12 x4
    // s.t. -2 x1 - 9 x2 + x3 + 9 x4        <= 0
    //       1/3 x1 + x2 - 1/3 x3 - 2 x4    <= 0
    //       x >= 0, x <= 10 (box to keep it bounded)
    let mut m = Model::new(Sense::Minimize);
    let x1 = m.add_var(0.0, 10.0, -2.0);
    let x2 = m.add_var(0.0, 10.0, -3.0);
    let x3 = m.add_var(0.0, 10.0, 1.0);
    let x4 = m.add_var(0.0, 10.0, 12.0);
    m.add_constraint(vec![(x1, -2.0), (x2, -9.0), (x3, 1.0), (x4, 9.0)], Relation::Le, 0.0);
    m.add_constraint(
        vec![(x1, 1.0 / 3.0), (x2, 1.0), (x3, -1.0 / 3.0), (x4, -2.0)],
        Relation::Le,
        0.0,
    );
    let sol = solve_lp(&m).expect("Kuhn's example must terminate");
    assert_eq!(sol.status, LpStatus::Optimal);
    assert!(m.is_feasible(&sol.x, 1e-7));
    assert!((sol.objective - (-10.0)).abs() < 1e-8, "objective {}", sol.objective);
    assert!(sol.iterations < 200, "took {} iterations", sol.iterations);
}

/// A transportation-style LP where every basic feasible solution is
/// degenerate (supply exactly equals demand and the rhs has repeated
/// values), so nearly every pivot is a zero-step pivot.
#[test]
fn fully_degenerate_transportation_lp() {
    // 3 sources x 3 sinks, all supplies/demands = 1, costs chosen so the
    // optimum is the identity assignment with value 3.
    let mut m = Model::new(Sense::Minimize);
    let mut x = Vec::new();
    for i in 0..3 {
        for j in 0..3 {
            let cost = if i == j { 1.0 } else { 10.0 };
            x.push(m.add_var(0.0, f64::INFINITY, cost));
        }
    }
    let v = |i: usize, j: usize| x[3 * i + j];
    for i in 0..3 {
        m.add_constraint(vec![(v(i, 0), 1.0), (v(i, 1), 1.0), (v(i, 2), 1.0)], Relation::Eq, 1.0);
    }
    for j in 0..3 {
        m.add_constraint(vec![(v(0, j), 1.0), (v(1, j), 1.0), (v(2, j), 1.0)], Relation::Eq, 1.0);
    }
    let sol = solve_lp(&m).unwrap();
    assert_eq!(sol.status, LpStatus::Optimal);
    assert!((sol.objective - 3.0).abs() < 1e-8, "objective {}", sol.objective);
}

/// Many duplicated rows all active at the optimum: the ratio test ties on
/// every duplicate, and the basis must shuffle through redundant slacks
/// without cycling.
#[test]
fn duplicated_rows_tie_the_ratio_test() {
    let mut m = Model::new(Sense::Maximize);
    let x = m.add_var(0.0, f64::INFINITY, 1.0);
    let y = m.add_var(0.0, f64::INFINITY, 1.0);
    for _ in 0..6 {
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 1.0);
    }
    m.add_constraint(vec![(x, 1.0)], Relation::Le, 1.0);
    m.add_constraint(vec![(y, 1.0)], Relation::Le, 1.0);
    let sol = solve_lp(&m).unwrap();
    assert_eq!(sol.status, LpStatus::Optimal);
    assert!((sol.objective - 1.0).abs() < 1e-8);
    assert!(sol.iterations < 50, "took {} iterations", sol.iterations);
}

/// Degeneracy inside branch and bound: a set-partitioning MILP whose LP
/// relaxations are degenerate at every node. The warm-started dual re-solves
/// must still terminate and agree with the combinatorial optimum.
#[test]
fn degenerate_set_partitioning_milp() {
    // Pick exactly one of {a, b}, one of {c, d}, one of {e, f}; pairs share
    // a side constraint. Max profit with ties everywhere.
    let mut m = Model::new(Sense::Maximize);
    let vars: Vec<_> = (0..6).map(|_| m.add_binary_var(1.0)).collect();
    for p in 0..3 {
        m.add_constraint(vec![(vars[2 * p], 1.0), (vars[2 * p + 1], 1.0)], Relation::Eq, 1.0);
    }
    // Side constraint that is exactly tight for any feasible selection.
    m.add_constraint(vars.iter().map(|&v| (v, 1.0)).collect(), Relation::Le, 3.0);
    let sol = solve_milp(&m).unwrap();
    assert_eq!(sol.status, LpStatus::Optimal);
    assert!((sol.objective - 3.0).abs() < 1e-8);
}

//! Allocation audit of the plan-cache hot lookup path.
//!
//! Pins the two properties the cache's per-request overhead rests on:
//!
//! 1. **Interned chain signatures** — `SfcRequest` carries its
//!    [`mecnet::chain_signature`] precomputed at construction, so building a
//!    [`relaug::plancache::PlanKey`] is pure integer arithmetic. The bench
//!    verifies every streamed request's interned signature against a fresh
//!    rehash, then times key construction from the interned field.
//! 2. **Allocation-free lookups** — after the cache is populated, a
//!    key-build + probe on the hot path must perform **zero** heap
//!    allocations, hit or miss (a stale-drop frees, but never allocates). A
//!    counting `#[global_allocator]` wrapped around `System` counts every
//!    `alloc`/`realloc`; the binary prints per-lookup cost and exits
//!    non-zero if any allocation slipped into the loop — CI can run it as a
//!    regression gate (`QUICK=1` shrinks the pass count).
//!
//! Not a criterion bench on purpose: a counting global allocator would also
//! count criterion's own bookkeeping, so this is a plain `harness = false`
//! main with hand-rolled measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Instant;

use mecnet::chain_signature;
use mecnet::request::SfcRequest;
use relaug::plancache::{PlanCache, PlanEntry, PlanKey, Probe};
use scen::{RequestStream, ScenarioSpec};

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const CACHE_ENTRIES: usize = 4096;
const L: u32 = 1;

fn main() {
    let quick = std::env::var_os("QUICK").is_some();
    let passes = if quick { 20 } else { 200 };

    // Materialize a request working set once, outside the counted region.
    let built = ScenarioSpec::preset("waxman-100").expect("known preset").build();
    let requests: Vec<SfcRequest> = RequestStream::new(&built, 2_000).collect();

    // Interning correctness: every streamed request's precomputed signature
    // matches a fresh rehash of its chain.
    for req in &requests {
        assert_eq!(
            req.chain_sig,
            chain_signature(&req.sfc),
            "request {} carries a stale interned chain signature",
            req.id
        );
    }

    // Populate the cache with an entry per distinct key (insertion allocates
    // by design — entries own their debit vectors; only lookups must not).
    let cache = PlanCache::new(CACHE_ENTRIES);
    let mut inserted = 0usize;
    for req in &requests {
        let key = PlanKey::for_request(req, L);
        let debits: Vec<_> = req.sfc.iter().map(|_| (req.source, 1.0)).collect();
        let entry = PlanEntry::new(
            key,
            req.sfc.clone(),
            vec![req.source; req.sfc.len()],
            vec![1; req.sfc.len()],
            &debits,
            0.9,
            0.999,
            1.0,
        );
        inserted += 1;
        cache.insert(entry);
    }

    // Hot path: key build + probe, hit or miss, must not allocate. The
    // validate closure mirrors the engine's cheapest accept (returning a
    // Copy summary) without touching capacity.
    let warm = |reqs: &[SfcRequest]| {
        let mut hits = 0u64;
        for req in reqs {
            let key = PlanKey::for_request(req, L);
            if let Probe::Hit(()) = cache.probe(&key, &req.sfc, |_entry| Some(())) {
                hits += 1;
            }
        }
        hits
    };
    warm(&requests); // fault in lazy lock/branch state before counting

    let before = ALLOCS.load(Relaxed);
    let started = Instant::now();
    let mut hits = 0u64;
    for _ in 0..passes {
        hits += warm(&requests);
    }
    let elapsed = started.elapsed();
    let allocs = ALLOCS.load(Relaxed) - before;

    let lookups = (passes * requests.len()) as u64;
    println!(
        "plan_cache: {lookups} lookups ({hits} hits) over {inserted} insertions in {:.3}s — \
         {:.0} ns/lookup, {allocs} allocations in the hot loop",
        elapsed.as_secs_f64(),
        elapsed.as_nanos() as f64 / lookups as f64,
    );

    // Contrast: the same keys built by rehashing the chain every time — what
    // interning at `SfcRequest` construction saves on every probe.
    let started = Instant::now();
    let mut sink = 0u64;
    for _ in 0..passes {
        for req in &requests {
            let key =
                PlanKey { chain_sig: chain_signature(&req.sfc), ..PlanKey::for_request(req, L) };
            sink = sink.wrapping_add(key.chain_sig);
        }
    }
    let rehash = started.elapsed();
    println!(
        "plan_cache: key via interned sig amortizes the {:.0} ns/key chain rehash \
         (checksum {sink:x})",
        rehash.as_nanos() as f64 / lookups as f64,
    );

    if allocs > 0 {
        eprintln!("plan_cache: FAIL — {allocs} allocations on the lookup hot path");
        std::process::exit(1);
    }
    println!("plan_cache: OK — lookup hot path is allocation-free");
}

//! The discrete-event engine: Poisson arrivals, exponential holding times,
//! per-instance failure/repair clocks, policy-driven re-augmentation, and
//! exact capacity accounting over a shared [`MecNetwork`].
//!
//! Determinism contract: given the same network, catalog, [`SimConfig`] and
//! policy, two runs produce identical event sequences, identical `sim.*`
//! telemetry and an identical [`SloReport`]. Three independent RNG streams
//! (fanned out of the master seed with [`expkit::fan_out`]) make the
//! *workload* — arrival times, request content, holding times — identical
//! across repair policies too, so policy comparisons on one seed are paired:
//! - stream 0: workload (arrivals, chains, holding times);
//! - stream 1: placement + solver randomness;
//! - stream 2: master for per-instance failure/repair clocks (instance `k`
//!   gets its own `fan_out(stream2, k)`-seeded generator).

use std::path::PathBuf;
use std::time::Instant;

use mecnet::admission::random_placement_capacity_aware;
use mecnet::graph::NodeId;
use mecnet::network::MecNetwork;
use mecnet::request::SfcRequest;
use mecnet::vnf::VnfCatalog;
use obs::{FlightRecorder, MetricsInterval, Recorder};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relaug::instance::AugmentationInstance;
use relaug::stream::Algorithm;

use crate::event::{EventKind, EventQueue};
use crate::policy::{RepairPolicy, RequestView};
use crate::process::{mtbf_for_availability, sample_exp};
use crate::report::{RequestSlo, RunCounts, SloReport};

/// Simulation knobs.
#[derive(Debug, Clone)]
pub struct SimConfig {
    /// Simulation horizon (events past it are not processed).
    pub duration: f64,
    /// Poisson arrival rate (requests per time unit).
    pub arrival_rate: f64,
    /// Mean exponential holding (service) time of an admitted request.
    pub mean_holding: f64,
    /// Mean time to repair a failed instance; with the catalog's `r_i` this
    /// fixes each instance's MTBF (see [`crate::process`]).
    pub mttr: f64,
    /// Probability that a failure is permanent: the instance never returns
    /// and its capacity is reclaimed. `0.0` keeps every instance's long-run
    /// availability exactly `r_i`.
    pub permanent_failure_prob: f64,
    /// Locality radius `l` for secondaries.
    pub l: u32,
    /// Augmentation algorithm used at admission and for repairs.
    pub algorithm: Algorithm,
    /// Fraction of each cloudlet's capacity available to the simulator.
    pub initial_capacity_fraction: f64,
    /// Chain length range of generated requests.
    pub sfc_len_range: (usize, usize),
    /// Reliability expectation `ρ` of generated requests.
    pub expectation: f64,
    /// Master seed; everything derives from it.
    pub seed: u64,
    /// Windowed telemetry: `None` (default) emits every `sim.*` event (the
    /// byte-identity-checked trace); `Some` suppresses per-event emission and
    /// emits one `sim.window` summary per interval plus the final partial
    /// window. `Seconds` means *simulated* seconds and `Requests` counts
    /// arrivals, so windowed traces stay deterministic.
    pub metrics_interval: Option<MetricsInterval>,
    /// Keep a flight ring of recent raw events, dumped to
    /// `<dir>/flight-sim-<policy>.jsonl` on the first SLO violation observed
    /// at a departure.
    pub flight_dir: Option<PathBuf>,
}

impl Default for SimConfig {
    fn default() -> Self {
        SimConfig {
            duration: 500.0,
            arrival_rate: 0.05,
            mean_holding: 200.0,
            mttr: 1.0,
            permanent_failure_prob: 0.0,
            l: 1,
            algorithm: Algorithm::default(),
            initial_capacity_fraction: 1.0,
            sfc_len_range: (2, 4),
            expectation: 0.99,
            seed: 0xC0FFEE,
            metrics_interval: None,
            flight_dir: None,
        }
    }
}

/// Deterministic per-window event counts; a `sim.window` summary carries the
/// delta of these against the previous window's base.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
struct SimWindowCounts {
    arrivals: u64,
    admitted: u64,
    rejected: u64,
    departures: u64,
    failures: u64,
    repairs: u64,
    reaugmentations: u64,
    audits: u64,
}

impl SimWindowCounts {
    fn diff(&self, base: &SimWindowCounts) -> SimWindowCounts {
        SimWindowCounts {
            arrivals: self.arrivals - base.arrivals,
            admitted: self.admitted - base.admitted,
            rejected: self.rejected - base.rejected,
            departures: self.departures - base.departures,
            failures: self.failures - base.failures,
            repairs: self.repairs - base.repairs,
            reaugmentations: self.reaugmentations - base.reaugmentations,
            audits: self.audits - base.audits,
        }
    }
}

/// Open-window bookkeeping for windowed telemetry.
#[derive(Debug)]
struct SimWindow {
    interval: MetricsInterval,
    index: u64,
    started_t: f64,
    base: SimWindowCounts,
}

/// One deployed VNF instance (primary or secondary) with its own clocks.
#[derive(Debug)]
struct InstanceState {
    request: usize,
    func: usize,
    node: NodeId,
    /// Capacity actually debited for this instance (returned on release; may
    /// be below the demand when the randomized algorithm overcommitted).
    debited: f64,
    /// `None` for `r_i = 1` instances, which never fail.
    mtbf: Option<f64>,
    up: bool,
    /// `false` once permanently lost or its request departed.
    alive: bool,
    /// Bumped on release so stale failure/repair events are ignored.
    epoch: u64,
    down_since: f64,
    rng: StdRng,
}

/// Bookkeeping for one arrived request.
#[derive(Debug)]
struct ActiveRequest {
    req: SfcRequest,
    placement: Vec<NodeId>,
    /// Instance ids owned by this request (for release on departure).
    instances: Vec<usize>,
    /// Per chain position: instances currently up / provisioned-and-alive.
    live: Vec<usize>,
    alive: Vec<usize>,
    reliabilities: Vec<f64>,
    admitted: bool,
    arrived_at: f64,
    departed: bool,
    /// Whether every chain position has a live instance right now.
    up: bool,
    last_change: f64,
    uptime: f64,
    outage_start: f64,
    outages: usize,
    outage_time: f64,
    base_reliability: f64,
    analytic_reliability: f64,
    secondaries: usize,
    reaugmentations: usize,
}

impl ActiveRequest {
    /// Close the availability accounting at `t` (departure or horizon).
    fn close(&mut self, t: f64, outage_durations: &mut Vec<f64>) {
        if self.up {
            self.uptime += t - self.last_change;
        } else {
            let d = t - self.outage_start;
            self.outage_time += d;
            outage_durations.push(d);
        }
        self.last_change = t;
    }

    fn active_time(&self, end: f64) -> f64 {
        (end - self.arrived_at).max(0.0)
    }

    fn availability(&self, end: f64) -> f64 {
        let active = self.active_time(end);
        if active <= 0.0 {
            1.0
        } else {
            (self.uptime / active).clamp(0.0, 1.0)
        }
    }
}

/// Where the workload comes from: the engine asks the source for arrival
/// gaps, request content and holding times, passing its workload RNG so the
/// default source reproduces the historical draw order exactly. Lazy
/// scenario streams (e.g. `scen`'s million-request generators) implement
/// this by pulling from their own per-position RNGs and ignoring `rng`,
/// which keeps the simulator O(active requests) in memory for arbitrarily
/// long workloads.
pub trait RequestSource {
    /// Gap before the first arrival.
    fn first_gap(&mut self, rng: &mut StdRng) -> f64;

    /// Content, holding time, and gap to the *next* arrival for request
    /// `id`, drawn in exactly that order (the fixed workload draw order the
    /// determinism contract pins).
    fn arrival(
        &mut self,
        id: usize,
        catalog: &VnfCatalog,
        num_nodes: usize,
        rng: &mut StdRng,
    ) -> (SfcRequest, f64, f64);
}

/// The engine's historical workload model: Poisson arrivals at a fixed rate,
/// uniform random request content, exponential holding times — all drawn
/// from the engine's workload RNG stream, so [`run`] behaves bit-for-bit as
/// it did before sources existed.
pub struct PoissonSource {
    pub arrival_rate: f64,
    pub mean_holding: f64,
    pub sfc_len_range: (usize, usize),
    pub expectation: f64,
}

impl PoissonSource {
    pub fn from_config(cfg: &SimConfig) -> PoissonSource {
        PoissonSource {
            arrival_rate: cfg.arrival_rate,
            mean_holding: cfg.mean_holding,
            sfc_len_range: cfg.sfc_len_range,
            expectation: cfg.expectation,
        }
    }
}

impl RequestSource for PoissonSource {
    fn first_gap(&mut self, rng: &mut StdRng) -> f64 {
        sample_exp(1.0 / self.arrival_rate, rng)
    }

    fn arrival(
        &mut self,
        id: usize,
        catalog: &VnfCatalog,
        num_nodes: usize,
        rng: &mut StdRng,
    ) -> (SfcRequest, f64, f64) {
        let req =
            SfcRequest::random(id, catalog, self.sfc_len_range, self.expectation, num_nodes, rng);
        let holding = sample_exp(self.mean_holding, rng);
        let gap = sample_exp(1.0 / self.arrival_rate, rng);
        (req, holding, gap)
    }
}

/// Run one simulation without telemetry.
pub fn run(
    network: &MecNetwork,
    catalog: &VnfCatalog,
    cfg: &SimConfig,
    policy: &dyn RepairPolicy,
) -> SloReport {
    run_traced(network, catalog, cfg, policy, &mut Recorder::noop())
}

/// Run one simulation, emitting `sim.*` telemetry through `rec`: one
/// `sim.arrival` per request, `sim.departure`, `sim.failure` / `sim.repair`
/// per instance transition, `sim.reaugment` per policy action, `sim.audit`
/// per tick and a final `sim.report`. Every event field is simulation-time
/// based, so traced runs stay byte-reproducible.
pub fn run_traced(
    network: &MecNetwork,
    catalog: &VnfCatalog,
    cfg: &SimConfig,
    policy: &dyn RepairPolicy,
    rec: &mut Recorder,
) -> SloReport {
    let mut source = PoissonSource::from_config(cfg);
    run_with_source_traced(network, catalog, cfg, policy, &mut source, rec)
}

/// [`run`] with an explicit [`RequestSource`] — the entry point for scenario
/// workloads that arrive lazily instead of from the config's Poisson model.
/// With a [`PoissonSource`] built from `cfg` this is byte-identical to
/// [`run`].
pub fn run_with_source(
    network: &MecNetwork,
    catalog: &VnfCatalog,
    cfg: &SimConfig,
    policy: &dyn RepairPolicy,
    source: &mut dyn RequestSource,
) -> SloReport {
    run_with_source_traced(network, catalog, cfg, policy, source, &mut Recorder::noop())
}

/// [`run_traced`] with an explicit [`RequestSource`].
pub fn run_with_source_traced(
    network: &MecNetwork,
    catalog: &VnfCatalog,
    cfg: &SimConfig,
    policy: &dyn RepairPolicy,
    source: &mut dyn RequestSource,
    rec: &mut Recorder,
) -> SloReport {
    Engine::new(network, catalog, cfg, policy, source).run(rec)
}

struct Engine<'a> {
    network: &'a MecNetwork,
    catalog: &'a VnfCatalog,
    cfg: &'a SimConfig,
    policy: &'a dyn RepairPolicy,
    source: &'a mut dyn RequestSource,
    queue: EventQueue,
    residual: Vec<f64>,
    requests: Vec<ActiveRequest>,
    instances: Vec<InstanceState>,
    counts: RunCounts,
    outage_durations: Vec<f64>,
    repair_latencies: Vec<f64>,
    workload_rng: StdRng,
    place_rng: StdRng,
    clock_master: u64,
    /// `true` (default mode): emit every `sim.*` event through `rec`.
    full_events: bool,
    window: Option<SimWindow>,
    wcounts: SimWindowCounts,
    flight: Option<FlightRecorder>,
    flight_path: Option<PathBuf>,
    flight_dumped: bool,
}

impl<'a> Engine<'a> {
    fn new(
        network: &'a MecNetwork,
        catalog: &'a VnfCatalog,
        cfg: &'a SimConfig,
        policy: &'a dyn RepairPolicy,
        source: &'a mut dyn RequestSource,
    ) -> Engine<'a> {
        assert!(cfg.duration > 0.0 && cfg.duration.is_finite(), "duration must be positive");
        assert!(cfg.arrival_rate > 0.0, "arrival rate must be positive");
        assert!(cfg.mean_holding > 0.0, "holding time must be positive");
        assert!(cfg.mttr > 0.0, "MTTR must be positive");
        assert!(
            (0.0..=1.0).contains(&cfg.permanent_failure_prob),
            "permanent failure probability must be in [0, 1]"
        );
        assert!(
            (0.0..=1.0).contains(&cfg.initial_capacity_fraction),
            "capacity fraction must be in [0, 1]"
        );
        Engine {
            network,
            catalog,
            cfg,
            policy,
            source,
            queue: EventQueue::new(),
            residual: network.residual_capacities(cfg.initial_capacity_fraction),
            requests: Vec::new(),
            instances: Vec::new(),
            counts: RunCounts::default(),
            outage_durations: Vec::new(),
            repair_latencies: Vec::new(),
            workload_rng: StdRng::seed_from_u64(expkit::fan_out(cfg.seed, 0)),
            place_rng: StdRng::seed_from_u64(expkit::fan_out(cfg.seed, 1)),
            clock_master: expkit::fan_out(cfg.seed, 2),
            full_events: cfg.metrics_interval.is_none(),
            window: cfg.metrics_interval.map(|interval| SimWindow {
                interval,
                index: 0,
                started_t: 0.0,
                base: SimWindowCounts::default(),
            }),
            wcounts: SimWindowCounts::default(),
            flight: cfg.flight_dir.as_ref().map(|_| FlightRecorder::new(256)),
            flight_path: cfg
                .flight_dir
                .as_ref()
                .map(|dir| dir.join(format!("flight-sim-{}.jsonl", policy.name()))),
            flight_dumped: false,
        }
    }

    /// Tee one raw `sim.*` event: emitted through `rec` in full-trace mode,
    /// and always pushed into the flight ring when one is configured. The
    /// builder only runs when a consumer exists.
    fn note<F: Fn() -> obs::Event>(&mut self, rec: &mut Recorder, build: F) {
        if self.full_events {
            rec.emit_with(&build);
        }
        if let Some(fl) = self.flight.as_mut() {
            fl.push(build());
        }
    }

    /// Run the augmentation solver. Full mode traces solver events straight
    /// into `rec` (the byte-identity path); windowed mode captures solver
    /// counters only and merges the aggregates, so the trace stays bounded.
    fn solve(&mut self, inst: &AugmentationInstance, rec: &mut Recorder) -> relaug::Outcome {
        if self.full_events {
            self.cfg.algorithm.solve_traced(inst, &mut self.place_rng, rec)
        } else {
            let mut solver_rec = Recorder::counters_only();
            let out = self.cfg.algorithm.solve_traced(inst, &mut self.place_rng, &mut solver_rec);
            rec.absorb(solver_rec);
            out
        }
    }

    /// Dump the flight ring (once per run) to the configured path.
    fn flight_dump(&mut self, reason: &str) {
        if self.flight_dumped {
            return;
        }
        if let (Some(fl), Some(path)) = (&self.flight, &self.flight_path) {
            let _ = fl.dump_to_path(reason, path);
            self.flight_dumped = true;
        }
    }

    /// Close any windows that end at or before `t`. Time windows close before
    /// the event that crosses the boundary is processed; request windows close
    /// right after the arrival that fills them (`after_arrival`). Boundaries
    /// depend only on simulated time and arrival counts, so windowed traces
    /// are as deterministic as full ones.
    fn cut_windows(&mut self, t: f64, after_arrival: bool, rec: &mut Recorder) {
        loop {
            let Some(win) = &self.window else { return };
            match win.interval {
                MetricsInterval::Seconds(s) => {
                    let end = win.started_t + s;
                    if t >= end {
                        self.emit_window(end, false, rec);
                        continue;
                    }
                }
                MetricsInterval::Requests(n) => {
                    if after_arrival && self.wcounts.arrivals - win.base.arrivals >= n {
                        self.emit_window(t, false, rec);
                        continue;
                    }
                }
            }
            return;
        }
    }

    /// Emit one `sim.window` summary covering `[started_t, t_end)` and roll
    /// the window forward. A final partial window is skipped when empty,
    /// unless it would be the run's only window.
    fn emit_window(&mut self, t_end: f64, final_window: bool, rec: &mut Recorder) {
        let Some(win) = &mut self.window else { return };
        let d = self.wcounts.diff(&win.base);
        let skip = final_window && d == SimWindowCounts::default() && win.index > 0;
        if !skip {
            let (index, t_start) = (win.index, win.started_t);
            let active = self.requests.iter().filter(|r| r.admitted && !r.departed).count() as u64;
            rec.emit_with(|| {
                obs::Event::new("sim.window")
                    .with("window", index)
                    .with("final", final_window)
                    .with("t_start", t_start)
                    .with("t_end", t_end)
                    .with("arrivals", d.arrivals)
                    .with("admitted", d.admitted)
                    .with("rejected", d.rejected)
                    .with("departures", d.departures)
                    .with("failures", d.failures)
                    .with("repairs", d.repairs)
                    .with("reaugmentations", d.reaugmentations)
                    .with("audits", d.audits)
                    .with("active", active)
            });
            win.index += 1;
        }
        win.started_t = t_end;
        win.base = self.wcounts;
    }

    fn run(mut self, rec: &mut Recorder) -> SloReport {
        let first = self.source.first_gap(&mut self.workload_rng);
        self.queue.push(first, EventKind::Arrival);
        if let Some(interval) = self.policy.audit_interval() {
            self.queue.push(interval, EventKind::AuditTick);
        }
        while let Some(ev) = self.queue.pop() {
            if ev.time > self.cfg.duration {
                break;
            }
            self.cut_windows(ev.time, false, rec);
            let was_arrival = matches!(ev.kind, EventKind::Arrival);
            match ev.kind {
                EventKind::Arrival => self.on_arrival(ev.time, rec),
                EventKind::Departure { request } => self.on_departure(ev.time, request, rec),
                EventKind::InstanceFailure { instance, epoch } => {
                    self.on_failure(ev.time, instance, epoch, rec)
                }
                EventKind::InstanceRepair { instance, epoch } => {
                    self.on_repair(ev.time, instance, epoch, rec)
                }
                EventKind::AuditTick => self.on_audit(ev.time, rec),
            }
            if was_arrival {
                self.cut_windows(ev.time, true, rec);
            }
            debug_assert!(self.residual.iter().all(|&r| r >= -1e-6), "capacity went negative");
        }
        self.finalize(rec)
    }

    /// Seed the next instance's private clock generator.
    fn instance_rng(&self, instance_id: usize) -> StdRng {
        StdRng::seed_from_u64(expkit::fan_out(self.clock_master, instance_id as u64))
    }

    /// Deploy one up instance and schedule its first failure.
    #[allow(clippy::too_many_arguments)]
    fn spawn_instance(
        &mut self,
        t: f64,
        request: usize,
        func: usize,
        node: NodeId,
        demand: f64,
        reliability: f64,
        debit: bool,
    ) -> usize {
        let id = self.instances.len();
        let debited = if debit {
            let d = demand.min(self.residual[node.index()]);
            self.residual[node.index()] -= d;
            d
        } else {
            // Primary demand was already debited by admission.
            demand
        };
        let mut inst = InstanceState {
            request,
            func,
            node,
            debited,
            mtbf: mtbf_for_availability(reliability, self.cfg.mttr),
            up: true,
            alive: true,
            epoch: 0,
            down_since: t,
            rng: self.instance_rng(id),
        };
        if let Some(mtbf) = inst.mtbf {
            let at = t + sample_exp(mtbf, &mut inst.rng);
            self.queue.push(at, EventKind::InstanceFailure { instance: id, epoch: 0 });
        }
        self.instances.push(inst);
        self.requests[request].instances.push(id);
        self.requests[request].live[func] += 1;
        self.requests[request].alive[func] += 1;
        id
    }

    /// Release an instance's capacity and invalidate its pending clocks.
    fn release_instance(&mut self, id: usize) {
        let inst = &mut self.instances[id];
        if !inst.alive {
            return;
        }
        inst.alive = false;
        inst.epoch += 1;
        let (node, amount) = (inst.node, inst.debited);
        self.network.release_capacity(&mut self.residual, node, amount);
    }

    fn view_of(&self, request: usize) -> RequestView<'_> {
        let r = &self.requests[request];
        RequestView {
            id: r.req.id,
            expectation: r.req.expectation,
            reliabilities: &r.reliabilities,
            live: &r.live,
            alive: &r.alive,
        }
    }

    fn on_arrival(&mut self, t: f64, rec: &mut Recorder) {
        // Fixed draw order from the workload stream: request content, then
        // holding time, then the next interarrival gap — identical across
        // policies by construction.
        let id = self.requests.len();
        let catalog = self.catalog;
        let num_nodes = self.network.num_nodes();
        let (req, holding, gap) =
            self.source.arrival(id, catalog, num_nodes, &mut self.workload_rng);
        if gap.is_finite() {
            self.queue.push(t + gap, EventKind::Arrival);
        }

        let demands: Vec<f64> = req.sfc.iter().map(|&f| self.catalog.demand(f)).collect();
        let reliabilities: Vec<f64> =
            req.sfc.iter().map(|&f| self.catalog.reliability(f)).collect();
        let chain_len = req.len();
        let placement = random_placement_capacity_aware(
            self.network,
            &req,
            &demands,
            &mut self.residual,
            &mut self.place_rng,
        );
        self.wcounts.arrivals += 1;
        let Some(placement) = placement else {
            self.wcounts.rejected += 1;
            rec.count("sim.rejected", 1);
            self.note(rec, || {
                obs::Event::new("sim.arrival")
                    .with("t", t)
                    .with("id", id)
                    .with("admitted", false)
                    .with("reason", "no_primary_placement")
            });
            self.requests.push(ActiveRequest {
                req,
                placement: Vec::new(),
                instances: Vec::new(),
                live: Vec::new(),
                alive: Vec::new(),
                reliabilities,
                admitted: false,
                arrived_at: t,
                departed: false,
                up: false,
                last_change: t,
                uptime: 0.0,
                outage_start: t,
                outages: 0,
                outage_time: 0.0,
                base_reliability: 0.0,
                analytic_reliability: 0.0,
                secondaries: 0,
                reaugmentations: 0,
            });
            return;
        };

        // Augment against the post-admission residual, exactly like the
        // stream pipeline.
        let inst = AugmentationInstance::new(
            self.network,
            self.catalog,
            &req,
            &placement.locations,
            &self.residual,
            self.cfg.l,
        );
        let solve_started = Instant::now();
        let outcome = self.solve(&inst, rec);
        rec.record_time("sim.solve", solve_started.elapsed());

        self.requests.push(ActiveRequest {
            req,
            placement: placement.locations.clone(),
            instances: Vec::new(),
            live: vec![0; chain_len],
            alive: vec![0; chain_len],
            reliabilities: reliabilities.clone(),
            admitted: true,
            arrived_at: t,
            departed: false,
            up: true,
            last_change: t,
            uptime: 0.0,
            outage_start: t,
            outages: 0,
            outage_time: 0.0,
            base_reliability: outcome.metrics.base_reliability,
            analytic_reliability: outcome.metrics.reliability,
            secondaries: outcome.metrics.total_secondaries,
            reaugmentations: 0,
        });

        // Primaries (capacity already debited by admission)…
        for (func, &node) in placement.locations.iter().enumerate() {
            self.spawn_instance(t, id, func, node, demands[func], reliabilities[func], false);
        }
        // …then the augmentation's secondaries (debit now).
        for func in 0..chain_len {
            for &(bin_idx, count) in outcome.augmentation.placements_of(func) {
                let node = inst.bins[bin_idx].node;
                for _ in 0..count {
                    self.spawn_instance(
                        t,
                        id,
                        func,
                        node,
                        demands[func],
                        reliabilities[func],
                        true,
                    );
                }
            }
        }
        self.counts.secondaries_placed += outcome.metrics.total_secondaries;
        self.queue.push(t + holding, EventKind::Departure { request: id });
        self.wcounts.admitted += 1;
        rec.count("sim.admitted", 1);
        self.note(rec, || {
            obs::Event::new("sim.arrival")
                .with("t", t)
                .with("id", id)
                .with("admitted", true)
                .with("chain_len", chain_len)
                .with("base_reliability", outcome.metrics.base_reliability)
                .with("analytic", outcome.metrics.reliability)
                .with("secondaries", outcome.metrics.total_secondaries)
        });
    }

    fn on_departure(&mut self, t: f64, request: usize, rec: &mut Recorder) {
        if self.requests[request].departed {
            return;
        }
        self.requests[request].close(t, &mut self.outage_durations);
        self.requests[request].departed = true;
        let ids = std::mem::take(&mut self.requests[request].instances);
        for id in ids {
            self.release_instance(id);
        }
        self.counts.departures += 1;
        self.wcounts.departures += 1;
        let r = &self.requests[request];
        let (avail, outages, expectation) = (r.availability(t), r.outages, r.req.expectation);
        rec.count("sim.departures", 1);
        self.note(rec, || {
            obs::Event::new("sim.departure")
                .with("t", t)
                .with("id", request)
                .with("availability", avail)
                .with("outages", outages)
        });
        // A departure that missed its reliability expectation is an SLO
        // violation: dump the recent raw events for the postmortem.
        if avail < expectation {
            self.flight_dump("slo_violation");
        }
    }

    fn on_failure(&mut self, t: f64, instance: usize, epoch: u64, rec: &mut Recorder) {
        let inst = &mut self.instances[instance];
        if !inst.alive || inst.epoch != epoch || !inst.up {
            return;
        }
        inst.up = false;
        inst.down_since = t;
        let permanent = self.cfg.permanent_failure_prob > 0.0
            && inst.rng.gen::<f64>() < self.cfg.permanent_failure_prob;
        if !permanent {
            let at = t + sample_exp(self.cfg.mttr, &mut inst.rng);
            self.queue.push(at, EventKind::InstanceRepair { instance, epoch });
        }
        let (request, func, node) = (inst.request, inst.func, inst.node);
        self.counts.failures += 1;
        self.requests[request].live[func] -= 1;
        if permanent {
            self.counts.permanent_failures += 1;
            self.requests[request].alive[func] -= 1;
            self.requests[request].instances.retain(|&i| i != instance);
            self.release_instance(instance);
        }
        // Did this failure take the whole request down?
        if self.requests[request].up && self.requests[request].live[func] == 0 {
            let r = &mut self.requests[request];
            r.uptime += t - r.last_change;
            r.last_change = t;
            r.up = false;
            r.outage_start = t;
            r.outages += 1;
        }
        self.wcounts.failures += 1;
        rec.count("sim.failures", 1);
        self.note(rec, || {
            obs::Event::new("sim.failure")
                .with("t", t)
                .with("instance", instance)
                .with("request", request)
                .with("func", func)
                .with("node", node.index())
                .with("permanent", permanent)
        });
        if !self.requests[request].departed && self.policy.repair_on_failure(&self.view_of(request))
        {
            self.reaugment(t, request, "failure", rec);
        }
    }

    fn on_repair(&mut self, t: f64, instance: usize, epoch: u64, rec: &mut Recorder) {
        let inst = &mut self.instances[instance];
        if !inst.alive || inst.epoch != epoch || inst.up {
            return;
        }
        inst.up = true;
        let latency = t - inst.down_since;
        if let Some(mtbf) = inst.mtbf {
            let at = t + sample_exp(mtbf, &mut inst.rng);
            self.queue.push(at, EventKind::InstanceFailure { instance, epoch });
        }
        let (request, func, node) = (inst.request, inst.func, inst.node);
        self.repair_latencies.push(latency);
        self.counts.instance_repairs += 1;
        self.requests[request].live[func] += 1;
        // Did this repair end the request's outage?
        if !self.requests[request].up && self.requests[request].live.iter().all(|&n| n > 0) {
            let r = &mut self.requests[request];
            let d = t - r.outage_start;
            r.outage_time += d;
            self.outage_durations.push(d);
            r.last_change = t;
            r.up = true;
        }
        self.wcounts.repairs += 1;
        rec.count("sim.repairs", 1);
        self.note(rec, || {
            obs::Event::new("sim.repair")
                .with("t", t)
                .with("instance", instance)
                .with("request", request)
                .with("func", func)
                .with("node", node.index())
                .with("latency", latency)
        });
    }

    fn on_audit(&mut self, t: f64, rec: &mut Recorder) {
        let mut checked = 0usize;
        let mut repaired = 0usize;
        for idx in 0..self.requests.len() {
            if !self.requests[idx].admitted || self.requests[idx].departed {
                continue;
            }
            checked += 1;
            if self.policy.repair_on_audit(&self.view_of(idx)) {
                self.reaugment(t, idx, "audit", rec);
                repaired += 1;
            }
        }
        self.wcounts.audits += 1;
        rec.count("sim.audits", 1);
        self.note(rec, || {
            obs::Event::new("sim.audit")
                .with("t", t)
                .with("active", checked)
                .with("repaired", repaired)
        });
        if let Some(interval) = self.policy.audit_interval() {
            self.queue.push(t + interval, EventKind::AuditTick);
        }
    }

    /// Re-run augmentation for a degraded request on the current residual
    /// capacity. Currently-live instances count as existing backups, so the
    /// solver only pays for the redundancy the failures actually destroyed;
    /// new secondaries come up immediately with fresh clocks.
    fn reaugment(&mut self, t: f64, request: usize, trigger: &'static str, rec: &mut Recorder) {
        let (req, placement, live) = {
            let r = &self.requests[request];
            (r.req.clone(), r.placement.clone(), r.live.clone())
        };
        let mut inst = AugmentationInstance::new(
            self.network,
            self.catalog,
            &req,
            &placement,
            &self.residual,
            self.cfg.l,
        );
        for (slot, &n) in inst.functions.iter_mut().zip(&live) {
            slot.existing_backups = n.saturating_sub(1);
        }
        let solve_started = Instant::now();
        let outcome = self.solve(&inst, rec);
        rec.record_time("sim.repair_solve", solve_started.elapsed());
        let placed = outcome.metrics.total_secondaries;
        let demands: Vec<f64> = req.sfc.iter().map(|&f| self.catalog.demand(f)).collect();
        for (func, &demand) in demands.iter().enumerate() {
            for &(bin_idx, count) in outcome.augmentation.placements_of(func) {
                let node = inst.bins[bin_idx].node;
                for _ in 0..count {
                    self.spawn_instance(
                        t,
                        request,
                        func,
                        node,
                        demand,
                        self.requests[request].reliabilities[func],
                        true,
                    );
                }
            }
        }
        // New live instances may end an ongoing outage instantly.
        if placed > 0 && !self.requests[request].up {
            let r = &mut self.requests[request];
            if r.live.iter().all(|&n| n > 0) {
                let d = t - r.outage_start;
                r.outage_time += d;
                self.outage_durations.push(d);
                r.last_change = t;
                r.up = true;
            }
        }
        self.counts.secondaries_placed += placed;
        self.counts.reaugmentations += 1;
        self.requests[request].secondaries += placed;
        self.requests[request].reaugmentations += 1;
        self.wcounts.reaugmentations += 1;
        rec.count("sim.reaugmentations", 1);
        self.note(rec, || {
            obs::Event::new("sim.reaugment")
                .with("t", t)
                .with("request", request)
                .with("trigger", trigger)
                .with("placed", placed)
        });
    }

    fn finalize(mut self, rec: &mut Recorder) -> SloReport {
        let end = self.cfg.duration;
        // Close the trailing partial window before the summary report.
        if self.window.is_some() {
            self.emit_window(end, true, rec);
        }
        // Close the accounting of everything still in service at the horizon.
        for r in &mut self.requests {
            if r.admitted && !r.departed {
                r.close(end, &mut self.outage_durations);
            }
        }
        let per_request: Vec<RequestSlo> = self
            .requests
            .iter()
            .map(|r| {
                let window_end = if r.departed { r.last_change } else { end };
                RequestSlo {
                    id: r.req.id,
                    arrived_at: r.arrived_at,
                    admitted: r.admitted,
                    departed: r.departed,
                    active_time: if r.admitted { r.active_time(window_end) } else { 0.0 },
                    base_reliability: r.base_reliability,
                    analytic_reliability: r.analytic_reliability,
                    expectation: r.req.expectation,
                    availability: if r.admitted { r.availability(window_end) } else { 0.0 },
                    met_slo: r.admitted && r.availability(window_end) >= r.req.expectation,
                    outages: r.outages,
                    outage_time: r.outage_time,
                    secondaries: r.secondaries,
                    reaugmentations: r.reaugmentations,
                }
            })
            .collect();
        let report = SloReport::assemble(
            self.policy.name().to_string(),
            self.cfg.algorithm.name().to_string(),
            self.cfg.seed,
            self.cfg.duration,
            per_request,
            &self.outage_durations,
            &self.repair_latencies,
            &self.counts,
            5.0 * self.cfg.mttr,
        );
        rec.emit_with(|| {
            obs::Event::new("sim.report")
                .with("policy", report.policy.as_str())
                .with("arrivals", report.arrivals)
                .with("admitted", report.admitted)
                .with("failures", report.failures)
                .with("repairs", report.instance_repairs)
                .with("reaugmentations", report.reaugmentations)
                .with("mean_availability", report.mean_availability)
                .with("mean_analytic", report.mean_analytic)
                .with("slo_attainment", report.slo_attainment)
        });
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::policy::{NoRepair, PeriodicAudit, Reactive};
    use mecnet::topology;
    use mecnet::vnf::VnfType;

    fn setup(seed: u64) -> (MecNetwork, VnfCatalog) {
        let g = topology::grid(4, 4);
        let mut rng = StdRng::seed_from_u64(seed);
        let net = MecNetwork::with_random_cloudlets(g, 5, (6000.0, 9000.0), &mut rng);
        let mut cat = VnfCatalog::new();
        cat.add(VnfType { name: "a".into(), demand_mhz: 250.0, reliability: 0.85 });
        cat.add(VnfType { name: "b".into(), demand_mhz: 300.0, reliability: 0.8 });
        cat.add(VnfType { name: "c".into(), demand_mhz: 200.0, reliability: 0.9 });
        (net, cat)
    }

    fn quick_cfg() -> SimConfig {
        SimConfig {
            duration: 120.0,
            arrival_rate: 0.2,
            mean_holding: 40.0,
            mttr: 1.0,
            sfc_len_range: (2, 3),
            seed: 42,
            ..Default::default()
        }
    }

    #[test]
    fn runs_and_accounts_consistently() {
        let (net, cat) = setup(1);
        let rep = run(&net, &cat, &quick_cfg(), &NoRepair);
        assert!(rep.arrivals > 0, "some arrivals in 120 time units at rate 0.2");
        assert_eq!(rep.arrivals, rep.admitted + rep.rejected);
        assert_eq!(rep.per_request.len(), rep.arrivals);
        assert!(rep.failures > 0, "instances must fail over 120 units at MTTR-scale clocks");
        for r in rep.per_request.iter().filter(|r| r.admitted) {
            assert!((0.0..=1.0).contains(&r.availability), "availability {}", r.availability);
            assert!(r.active_time >= 0.0);
            assert!(r.analytic_reliability > 0.0);
            assert!(r.outage_time <= r.active_time + 1e-9);
        }
        assert!(rep.mean_availability > 0.5, "requests are mostly up");
    }

    #[test]
    fn capacity_is_conserved_and_released() {
        let (net, cat) = setup(2);
        let cfg = quick_cfg();
        let policy = NoRepair;
        // Run the engine manually to inspect the final residual.
        let mut probe_source = PoissonSource::from_config(&cfg);
        let engine = Engine::new(&net, &cat, &cfg, &policy, &mut probe_source);
        let initial = engine.residual.clone();
        drop(engine);
        let mut rec = Recorder::noop();
        let mut source = PoissonSource::from_config(&cfg);
        let mut engine = Engine::new(&net, &cat, &cfg, &policy, &mut source);
        let first = sample_exp(1.0 / cfg.arrival_rate, &mut engine.workload_rng);
        engine.queue.push(first, EventKind::Arrival);
        while let Some(ev) = engine.queue.pop() {
            if ev.time > cfg.duration {
                break;
            }
            match ev.kind {
                EventKind::Arrival => engine.on_arrival(ev.time, &mut rec),
                EventKind::Departure { request } => engine.on_departure(ev.time, request, &mut rec),
                EventKind::InstanceFailure { instance, epoch } => {
                    engine.on_failure(ev.time, instance, epoch, &mut rec)
                }
                EventKind::InstanceRepair { instance, epoch } => {
                    engine.on_repair(ev.time, instance, epoch, &mut rec)
                }
                EventKind::AuditTick => engine.on_audit(ev.time, &mut rec),
            }
            for (&r, &cap) in engine.residual.iter().zip(&initial) {
                assert!(r >= -1e-6, "residual went negative: {r}");
                assert!(r <= cap + 1e-6, "residual exceeded initial: {r} > {cap}");
            }
        }
        // Force-depart everything and verify the exact round trip.
        let active: Vec<usize> = engine
            .requests
            .iter()
            .enumerate()
            .filter(|(_, r)| r.admitted && !r.departed)
            .map(|(i, _)| i)
            .collect();
        for idx in active {
            engine.on_departure(cfg.duration, idx, &mut rec);
        }
        for (&r, &cap) in engine.residual.iter().zip(&initial) {
            assert!((r - cap).abs() < 1e-6, "capacity not restored: {r} vs {cap}");
        }
    }

    #[test]
    fn policies_share_the_same_workload() {
        let (net, cat) = setup(3);
        let cfg = quick_cfg();
        let a = run(&net, &cat, &cfg, &NoRepair);
        let b = run(&net, &cat, &cfg, &Reactive);
        let c = run(&net, &cat, &cfg, &PeriodicAudit::new(5.0));
        assert_eq!(a.arrivals, b.arrivals);
        assert_eq!(a.arrivals, c.arrivals);
        for (x, y) in a.per_request.iter().zip(&b.per_request) {
            assert_eq!(x.arrived_at.to_bits(), y.arrived_at.to_bits(), "arrival times differ");
        }
        assert_eq!(a.reaugmentations, 0, "NoRepair never re-augments");
    }

    #[test]
    fn perfect_instances_never_fail() {
        let g = topology::grid(3, 3);
        let mut rng = StdRng::seed_from_u64(5);
        let net = MecNetwork::with_random_cloudlets(g, 3, (5000.0, 8000.0), &mut rng);
        let mut cat = VnfCatalog::new();
        cat.add(VnfType { name: "p".into(), demand_mhz: 200.0, reliability: 1.0 });
        let rep = run(&net, &cat, &quick_cfg(), &NoRepair);
        assert_eq!(rep.failures, 0);
        assert_eq!(rep.outage_count, 0);
        for r in rep.per_request.iter().filter(|r| r.admitted) {
            assert!((r.availability - 1.0).abs() < 1e-12);
        }
    }

    #[test]
    fn permanent_failures_release_capacity_and_degrade() {
        let (net, cat) = setup(7);
        let mut cfg = quick_cfg();
        cfg.permanent_failure_prob = 1.0; // every failure is fatal
        cfg.duration = 200.0;
        let rep = run(&net, &cat, &cfg, &NoRepair);
        assert!(rep.permanent_failures > 0);
        assert_eq!(rep.permanent_failures, rep.failures);
        assert_eq!(rep.instance_repairs, 0, "nothing ever comes back");
    }

    #[test]
    fn windowed_mode_bounds_events_and_preserves_totals() {
        let (net, cat) = setup(1);
        let full_report = run(&net, &cat, &quick_cfg(), &NoRepair);

        let mut cfg = quick_cfg();
        cfg.metrics_interval = Some(MetricsInterval::Seconds(30.0));
        let mut rec = Recorder::memory();
        let report = run_traced(&net, &cat, &cfg, &NoRepair, &mut rec);

        // Windowing must not perturb the simulation itself.
        assert_eq!(report.arrivals, full_report.arrivals);
        assert_eq!(report.admitted, full_report.admitted);
        assert_eq!(report.failures, full_report.failures);

        // Per-event emission (sim.* AND solver events) is suppressed; the
        // trace holds only windows + the final report.
        let kinds: Vec<&str> = rec.events().iter().map(|e| e.kind).collect();
        assert!(kinds.iter().all(|k| *k == "sim.window" || *k == "sim.report"), "{kinds:?}");
        assert!(kinds.contains(&"sim.report"));
        let windows: Vec<_> = rec.events().iter().filter(|e| e.kind == "sim.window").collect();
        // duration 120 / interval 30 → at most 4 interior + 1 final partial.
        assert!(
            (1..=5).contains(&windows.len()),
            "expected bounded windows, saw {}",
            windows.len()
        );
        // Window deltas add back up to the run totals.
        let summed: u64 = windows
            .iter()
            .map(|e| match e.field("arrivals") {
                Some(serde::Value::U64(n)) => *n,
                other => panic!("bad arrivals field: {other:?}"),
            })
            .sum();
        assert_eq!(summed as usize, report.arrivals);
    }

    #[test]
    fn request_windows_cut_every_n_arrivals() {
        let (net, cat) = setup(3);
        let mut cfg = quick_cfg();
        cfg.metrics_interval = Some(MetricsInterval::Requests(5));
        let mut rec = Recorder::memory();
        let report = run_traced(&net, &cat, &cfg, &NoRepair, &mut rec);
        let windows = rec.events().iter().filter(|e| e.kind == "sim.window").count();
        assert!(windows >= report.arrivals / 5, "saw {windows} windows");
        assert!(windows <= report.arrivals / 5 + 1, "saw {windows} windows");
        assert!(!rec.events().iter().any(|e| e.kind == "sim.arrival"));
    }

    #[test]
    fn slo_violation_dumps_flight_ring() {
        let (net, cat) = setup(2);
        let dir = std::env::temp_dir().join(format!("relaug-flight-{}", std::process::id()));
        let mut cfg = quick_cfg();
        cfg.expectation = 0.999999; // unattainable once instances are lost
        cfg.permanent_failure_prob = 1.0; // every failure is an outage that never heals
        cfg.duration = 200.0;
        cfg.flight_dir = Some(dir.clone());
        let report = run(&net, &cat, &cfg, &NoRepair);
        assert!(report.slo_attainment < 1.0, "violations expected");
        let path = dir.join("flight-sim-none.jsonl");
        let text = std::fs::read_to_string(&path).expect("flight dump written");
        let first = text.lines().next().expect("non-empty dump");
        assert!(first.contains("\"event\":\"flight.dump\""));
        assert!(first.contains("\"reason\":\"slo_violation\""));
        assert!(text.lines().count() >= 2, "dump carries buffered events");
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn audit_policy_emits_audit_events() {
        let (net, cat) = setup(9);
        let mut rec = Recorder::memory();
        let cfg = quick_cfg();
        run_traced(&net, &cat, &cfg, &PeriodicAudit::new(10.0), &mut rec);
        let audits = rec.events().iter().filter(|e| e.kind == "sim.audit").count();
        // duration 120 / interval 10 → 11 ticks fit strictly inside.
        assert!(audits >= 10, "expected ~11 audit ticks, saw {audits}");
        assert!(rec.counter("sim.audits") as usize == audits);
    }
}

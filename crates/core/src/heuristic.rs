//! Algorithm 2: the matching-based heuristic.
//!
//! Builds a series of bipartite graphs `G_1, G_2, …` between cloudlets with
//! remaining residual capacity and still-unplaced candidate secondary items,
//! extracts a minimum-cost maximum matching from each (edge weights are the
//! paper's Eq. 3 costs), commits the matched placements, and repeats. Each
//! round a cloudlet receives at most one new instance, so capacities are never
//! violated (Theorem 6.2's feasibility argument).
//!
//! The loop guard is configurable via [`StopRule`]; see DESIGN.md on why the
//! literal budget guard `c(S) < C` of the pseudocode stops after one round
//! for realistic `ρ_j` and why stopping at the reached expectation is the
//! faithful reading.

use std::time::Instant;

use matching::{min_cost_max_b_matching_into, min_cost_max_matching_into};
use obs::Recorder;

use crate::instance::AugmentationInstance;
use crate::reliability;
use crate::scratch::SolveScratch;
use crate::solution::{Metrics, Outcome, SolverInfo};

/// When the matching loop stops (besides running out of edges).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StopRule {
    /// Stop once the achieved reliability reaches `ρ_j` — the problem's
    /// actual goal and the default.
    #[default]
    Expectation,
    /// The pseudocode's literal guard: stop once the accumulated item cost
    /// `c(S)` reaches the budget `C = -log ρ_j`.
    PaperBudget,
    /// Keep matching until no placeable item remains (upper-bounds what the
    /// heuristic could ever achieve).
    Exhaust,
}

/// Which matching solver runs each round of Algorithm 2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum MatchEngine {
    /// The incremental engine: per-round graphs are fed as pruned ladders
    /// (dominance certificate checked per round, exact rebuild fallback when
    /// it fails) and solved cold. Byte-identical to [`MatchEngine::Rebuild`]
    /// — same pairs, bit-exact cost — and the default.
    #[default]
    Incremental,
    /// The incremental engine with cross-round price carry (warm starts).
    /// Matches [`MatchEngine::Rebuild`] cardinality and cost (up to fp
    /// round-off) but may pick a different equal-cost assignment, so it is
    /// opt-in and excluded from byte-identity guarantees.
    IncrementalWarm,
    /// Rebuild the full edge list and re-solve from scratch every round (the
    /// historical path, kept as the reference).
    Rebuild,
}

/// Configuration of Algorithm 2.
#[derive(Debug, Clone, Default)]
pub struct HeuristicConfig {
    pub stop: StopRule,
    /// Item-enumeration cap (see [`crate::ilp::IlpConfig::gain_floor`]);
    /// `0.0` disables capping (and is the default). Positive floors only
    /// drop items whose reliability contribution is below the floor.
    pub gain_floor: f64,
    /// Ablation: use a capacitated b-matching per round (each cloudlet may
    /// absorb several instances per round instead of one), collapsing the
    /// round loop. Matched placements are still committed cheapest-first with
    /// a capacity check, so feasibility is preserved. `false` is the paper's
    /// Algorithm 2. Forces the rebuild path regardless of `engine`.
    pub batch_rounds: bool,
    /// Per-round matching solver; see [`MatchEngine`].
    pub engine: MatchEngine,
}

impl HeuristicConfig {
    pub fn with_stop(stop: StopRule) -> Self {
        HeuristicConfig {
            stop,
            gain_floor: 1e-12,
            batch_rounds: false,
            engine: MatchEngine::default(),
        }
    }
}

/// Minimum ladder gap (distance between consecutive `k`-step costs of one
/// function) under which the dominance-pruned engine is provably
/// trajectory-exact. Far above `mcmf`'s `1e-12` comparison epsilon, so
/// eps-ties that could flip the pruned trajectory are excluded; rounds
/// failing the certificate fall back to the full rebuild.
const LADDER_CERT_GAP: f64 = 1e-6;

/// Run Algorithm 2. Never violates capacities or locality.
pub fn solve(inst: &AugmentationInstance, cfg: &HeuristicConfig) -> Outcome {
    solve_traced(inst, cfg, &mut Recorder::noop())
}

/// [`solve`] with telemetry: emits one `heuristic.round` event per matching
/// round carrying the bipartite graph dimensions (bins × items, edge count),
/// the matching size, the placements committed and the reliability gain.
pub fn solve_traced(
    inst: &AugmentationInstance,
    cfg: &HeuristicConfig,
    rec: &mut Recorder,
) -> Outcome {
    solve_scratch(inst, cfg, rec, &mut SolveScratch::new())
}

/// [`solve_traced`] on caller-owned scratch buffers. With a warm
/// [`SolveScratch`] the whole solve — matching network included — runs
/// without heap allocation (see `crates/bench/benches/solve_alloc.rs`),
/// except for the returned [`Outcome`] itself.
pub fn solve_scratch(
    inst: &AugmentationInstance,
    cfg: &HeuristicConfig,
    rec: &mut Recorder,
    scratch: &mut SolveScratch,
) -> Outcome {
    let started = Instant::now();
    let rounds = solve_in(inst, cfg, rec, scratch);
    let aug = scratch.sol.materialize();
    debug_assert!(aug.is_capacity_feasible(inst));
    debug_assert!(aug.respects_locality(inst));
    let metrics = Metrics::compute(&aug, inst);
    Outcome {
        augmentation: aug,
        metrics,
        runtime: started.elapsed(),
        solver: SolverInfo::Heuristic { matching_rounds: rounds },
        telemetry: rec.summary(),
    }
}

/// Allocation-free core of Algorithm 2: builds the solution in `scratch.sol`
/// (materialize it for an owned [`crate::solution::Augmentation`]) and
/// returns the number of matching rounds. The result is bit-identical to the
/// historical allocating implementation — same graphs, same matchings, same
/// commit order, same floating-point expressions — for any prior state of
/// `scratch`. Only the `batch_rounds` ablation and enabled-recorder event
/// closures still allocate.
pub fn solve_in(
    inst: &AugmentationInstance,
    cfg: &HeuristicConfig,
    rec: &mut Recorder,
    scratch: &mut SolveScratch,
) -> usize {
    let SolveScratch { sol, heur, matching, matching_out, inc, .. } = scratch;
    let crate::scratch::HeuristicScratch {
        cap,
        next_k,
        residual,
        edges,
        item_of,
        pairs,
        placed_per_func,
        fn_id,
        fn_bins,
        fn_bins_start,
        item_cost,
        round_funcs,
        batch_min_demand,
        batch_b_left,
    } = heur;
    sol.begin(inst.chain_len());
    if inst.expectation_met_by_primaries() {
        rec.emit_with(|| {
            obs::Event::new("heuristic.early_exit")
                .with("base_reliability", inst.base_reliability())
        });
        return 0;
    }

    let gain_floor = if cfg.gain_floor > 0.0 { cfg.gain_floor } else { 0.0 };
    // Per function: slots still to place are next_k[i]..=cap[i].
    cap.clear();
    cap.extend(inst.functions.iter().map(|f| f.capped_slots(gain_floor)));
    next_k.clear();
    next_k.resize(inst.chain_len(), 1);
    residual.clear();
    residual.extend(inst.bins.iter().map(|b| b.residual));
    let budget = inst.budget();
    let mut total_cost = 0.0f64;
    let mut rounds = 0usize;

    // Engine session: resets any price carry left by the previous request.
    let use_engine = !cfg.batch_rounds && cfg.engine != MatchEngine::Rebuild;
    let warm_wanted = cfg.engine == MatchEngine::IncrementalWarm;
    if use_engine {
        inc.begin_request(inst.bins.len(), inst.chain_len());
    }
    let mut lists_built = false;

    loop {
        // Stop-rule check before building the next graph.
        match cfg.stop {
            StopRule::Expectation => {
                if sol.reliability(inst) >= inst.expectation {
                    break;
                }
            }
            StopRule::PaperBudget => {
                if total_cost >= budget {
                    break;
                }
            }
            StopRule::Exhaust => {}
        }

        // Maintain the per-function usable-bin lists. First round: derive
        // them from `eligible_bins`. Later rounds: filter the retained lists
        // in place — residuals only shrink within a solve, so a bin (or a
        // whole function) once dropped can never become usable again, and
        // the delta filter yields exactly what a recompute would.
        if !lists_built {
            lists_built = true;
            fn_id.clear();
            fn_bins.clear();
            fn_bins_start.clear();
            fn_bins_start.push(0);
            for (i, f) in inst.functions.iter().enumerate() {
                let start = fn_bins.len();
                fn_bins
                    .extend(f.eligible_bins.iter().copied().filter(|&b| residual[b] >= f.demand));
                if fn_bins.len() > start {
                    fn_id.push(i);
                    fn_bins_start.push(fn_bins.len());
                }
            }
        } else {
            let n_active = fn_id.len();
            let mut w_fun = 0usize;
            let mut w_bin = 0usize;
            let mut read_start = 0usize;
            for p in 0..n_active {
                let read_end = fn_bins_start[p + 1];
                let i = fn_id[p];
                let demand = inst.functions[i].demand;
                let seg_start = w_bin;
                for idx in read_start..read_end {
                    let b = fn_bins[idx];
                    if residual[b] >= demand {
                        fn_bins[w_bin] = b;
                        w_bin += 1;
                    }
                }
                read_start = read_end;
                if w_bin > seg_start {
                    fn_id[w_fun] = i;
                    w_fun += 1;
                    fn_bins_start[w_fun] = w_bin;
                }
            }
            fn_id.truncate(w_fun);
            fn_bins.truncate(w_bin);
            fn_bins_start.truncate(w_fun + 1);
        }

        // Enumerate this round's items (the cost ladders). A function can
        // gain at most `usable` placements per round (each bin hosts at most
        // one match), so only its next `usable` slots can possibly be
        // matched; enumerating more only inflates the graph. The cost is
        // strictly increasing in `k`; once the marginal underflows to zero
        // (cost = +inf) this slot and every later one add no representable
        // reliability, so they can't be usefully matched.
        item_of.clear();
        item_cost.clear();
        round_funcs.clear();
        let mut edges_full = 0usize;
        for p in 0..fn_id.len() {
            let i = fn_id[p];
            let f = &inst.functions[i];
            let usable = fn_bins_start[p + 1] - fn_bins_start[p];
            let hi = cap[i].min(next_k[i] + usable - 1);
            let first_item = item_of.len();
            for k in next_k[i]..=hi {
                let cost = reliability::paper_cost(f.reliability, f.existing_backups + k);
                if !cost.is_finite() {
                    break;
                }
                item_of.push((i, k));
                item_cost.push(cost);
            }
            let ladder = item_of.len() - first_item;
            if ladder > 0 {
                round_funcs.push((p, first_item));
                edges_full += ladder * usable;
            }
        }
        // Every item carries at least one edge (usable > 0), so "no items"
        // is exactly the historical "no edges" guard.
        if item_of.is_empty() {
            break;
        }
        rounds += 1;
        let rel_before = if rec.enabled() { sol.reliability(inst) } else { 0.0 };

        // Solve the round: incremental engine when the dominance certificate
        // holds, full rebuild otherwise (and always for batch/Rebuild).
        let mut engine_round = false;
        let mut warm_round = false;
        let mut edges_live = edges_full as u64;
        let mut round_passes = 0u64;
        if use_engine {
            inc.begin_round();
            for (j, &(p, first)) in round_funcs.iter().enumerate() {
                let end = round_funcs.get(j + 1).map_or(item_of.len(), |&(_, s)| s);
                inc.start_function(fn_id[p]);
                for &bin in &fn_bins[fn_bins_start[p]..fn_bins_start[p + 1]] {
                    inc.push_bin(bin);
                }
                for &c in &item_cost[first..end] {
                    inc.push_cost(c);
                }
                inc.finish_function();
            }
            if inc.ladders_certified(LADDER_CERT_GAP) {
                engine_round = true;
                let s0 = inc.stats();
                inc.solve_into(warm_wanted, matching_out);
                let s1 = inc.stats();
                warm_round = s1.warm_rounds > s0.warm_rounds;
                edges_live = s1.edges_materialized - s0.edges_materialized;
                round_passes = s1.passes - s0.passes;
                rec.count("matching.relaxations", s1.relaxations - s0.relaxations);
            }
        }
        if !engine_round {
            // Expand the pruned representation to the historical edge list —
            // identical item-major order — and run the reference solver.
            edges.clear();
            for (j, &(p, first)) in round_funcs.iter().enumerate() {
                let end = round_funcs.get(j + 1).map_or(item_of.len(), |&(_, s)| s);
                for (off, &cost) in item_cost[first..end].iter().enumerate() {
                    let right = first + off;
                    for &bin in &fn_bins[fn_bins_start[p]..fn_bins_start[p + 1]] {
                        edges.push((bin, right, cost));
                    }
                }
            }
            if cfg.batch_rounds {
                // Conservative per-bin multiplicity: what certainly fits even
                // if every match demands the largest eligible function.
                batch_min_demand.clear();
                batch_min_demand.extend((0..inst.bins.len()).map(|b| {
                    inst.functions
                        .iter()
                        .filter(|f| f.eligible_bins.contains(&b))
                        .map(|f| f.demand)
                        .fold(f64::INFINITY, f64::min)
                }));
                batch_b_left.clear();
                batch_b_left.extend(residual.iter().zip(batch_min_demand.iter()).map(
                    |(&r, &d)| {
                        if d.is_finite() {
                            (r / d).floor() as usize
                        } else {
                            0
                        }
                    },
                ));
                min_cost_max_b_matching_into(
                    matching,
                    batch_b_left,
                    item_of.len(),
                    edges,
                    matching_out,
                );
            } else {
                min_cost_max_matching_into(
                    matching,
                    inst.bins.len(),
                    item_of.len(),
                    edges,
                    matching_out,
                );
            }
            if use_engine && warm_wanted {
                // The engine skipped this round, so its carried prices no
                // longer describe the post-round duals; drop them rather than
                // warm-start later rounds from a stale certificate.
                inc.begin_request(inst.bins.len(), inst.chain_len());
            }
        }
        if matching_out.is_empty() {
            break;
        }
        // Commit cheapest-first with a capacity check: exact for the unit
        // matching (the graph only had fitting edges), necessary for the
        // batch variant whose multiplicity bound used the *smallest* demand.
        // Keying on (k, original position) makes the unstable sort reproduce
        // the historical stable sort by k exactly.
        pairs.clear();
        pairs.extend(matching_out.pairs.iter().enumerate().map(|(pos, &(b, r))| (b, r, pos)));
        pairs.sort_unstable_by_key(|&(_, r, pos)| (item_of[r].1, pos));
        placed_per_func.clear();
        placed_per_func.resize(inst.chain_len(), 0);
        let mut committed = 0usize;
        for &(b, right, _) in pairs.iter() {
            let (i, k) = item_of[right];
            if residual[b] >= inst.functions[i].demand {
                residual[b] -= inst.functions[i].demand;
                sol.add(i, b);
                total_cost += reliability::paper_cost(
                    inst.functions[i].reliability,
                    inst.functions[i].existing_backups + k,
                );
                placed_per_func[i] += 1;
                committed += 1;
            }
        }
        rec.count("heuristic.rounds", 1);
        rec.count("heuristic.committed", committed as u64);
        // Matching-plane counters (consumed by stream_exp's matching table).
        rec.count("matching.edges.full", edges_full as u64);
        rec.count("matching.edges.materialized", edges_live);
        rec.count("matching.passes", round_passes);
        if engine_round {
            rec.count("matching.rounds.engine", 1);
            if warm_round {
                rec.count("matching.warm_rounds", 1);
            }
        } else if use_engine {
            rec.count("matching.rounds.fallback", 1);
        } else {
            rec.count("matching.rounds.rebuild", 1);
        }
        rec.emit_with(|| {
            let left_bins = {
                // Distinct bins carrying at least one edge: the union of the
                // usable-bin segments of every function that emitted items
                // this round — the same set the historical edge-list scan saw.
                let mut seen = vec![false; inst.bins.len()];
                for &(p, _) in round_funcs.iter() {
                    for &bin in &fn_bins[fn_bins_start[p]..fn_bins_start[p + 1]] {
                        seen[bin] = true;
                    }
                }
                seen.iter().filter(|&&s| s).count()
            };
            obs::Event::new("heuristic.round")
                .with("round", rounds)
                .with("left_bins", left_bins)
                .with("right_items", item_of.len())
                .with("edges", edges_full)
                .with("edges_live", edges_live)
                .with(
                    "engine",
                    if engine_round {
                        "incremental"
                    } else if use_engine {
                        "fallback"
                    } else if cfg.batch_rounds {
                        "batch"
                    } else {
                        "rebuild"
                    },
                )
                .with("warm", warm_round)
                .with("matched", matching_out.pairs.len())
                .with("committed", committed)
                .with("reliability", sol.reliability(inst))
                .with("reliability_gain", sol.reliability(inst) - rel_before)
        });
        if committed == 0 {
            break;
        }
        // Matched items per function are exactly its cheapest remaining slots
        // (min-cost matching always prefers lower k).
        for (i, &p) in placed_per_func.iter().enumerate() {
            next_k[i] += p;
        }
    }

    if cfg.stop == StopRule::Expectation {
        // The final matching round may overshoot the expectation; trim the
        // surplus like the other algorithms do.
        let trimmed = sol.trim_to_expectation(inst);
        rec.count("heuristic.trimmed_secondaries", trimmed as u64);
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{Bin, FunctionSlot};
    use mecnet::graph::NodeId;
    use mecnet::vnf::VnfTypeId;

    fn slot(demand: f64, r: f64, eligible: Vec<usize>, max: usize) -> FunctionSlot {
        FunctionSlot {
            vnf: VnfTypeId(0),
            demand,
            reliability: r,
            primary: NodeId(0),
            eligible_bins: eligible,
            max_secondaries: max,
            existing_backups: 0,
        }
    }

    #[test]
    fn early_exit_when_base_suffices() {
        let inst = AugmentationInstance {
            functions: vec![slot(100.0, 0.95, vec![0], 3)],
            bins: vec![Bin { node: NodeId(0), residual: 400.0 }],
            l: 1,
            expectation: 0.9,
        };
        let out = solve(&inst, &HeuristicConfig::default());
        assert_eq!(out.metrics.total_secondaries, 0);
        assert_eq!(out.solver, SolverInfo::Heuristic { matching_rounds: 0 });
    }

    #[test]
    fn exhausts_capacity_toward_high_expectation() {
        let inst = AugmentationInstance {
            functions: vec![slot(100.0, 0.8, vec![0], 3)],
            bins: vec![Bin { node: NodeId(0), residual: 350.0 }],
            l: 1,
            expectation: 0.9999999,
        };
        let out = solve(&inst, &HeuristicConfig::default());
        // 3 secondaries fit; expectation needs R(0.8, k) >= 0.9999999 -> k = 10,
        // so the heuristic should exhaust all 3.
        assert_eq!(out.augmentation.counts(), vec![3]);
        assert!(out.augmentation.is_capacity_feasible(&inst));
        // One bin: each round places one instance -> 3 rounds (+1 empty-check).
        assert_eq!(out.solver, SolverInfo::Heuristic { matching_rounds: 3 });
    }

    #[test]
    fn stops_at_expectation() {
        let inst = AugmentationInstance {
            functions: vec![slot(100.0, 0.8, vec![0], 5)],
            bins: vec![Bin { node: NodeId(0), residual: 600.0 }],
            l: 1,
            expectation: 0.95, // R(0.8, 1) = 0.96 >= 0.95 -> one secondary
        };
        let out = solve(&inst, &HeuristicConfig::default());
        assert_eq!(out.augmentation.counts(), vec![1]);
        assert!(out.metrics.met_expectation);
    }

    #[test]
    fn paper_budget_rule_stops_after_first_round() {
        // C = -ln(0.95) ≈ 0.051; the first item's cost -ln(0.16) ≈ 1.83
        // already exceeds it, so the literal rule stops after round 1.
        let inst = AugmentationInstance {
            functions: vec![slot(100.0, 0.8, vec![0], 5)],
            bins: vec![Bin { node: NodeId(0), residual: 600.0 }],
            l: 1,
            expectation: 0.95,
        };
        let out = solve(&inst, &HeuristicConfig::with_stop(StopRule::PaperBudget));
        assert_eq!(out.solver, SolverInfo::Heuristic { matching_rounds: 1 });
        assert_eq!(out.augmentation.counts(), vec![1]);
    }

    #[test]
    fn exhaust_rule_fills_everything() {
        let inst = AugmentationInstance {
            functions: vec![slot(100.0, 0.9, vec![0, 1], 7), slot(150.0, 0.85, vec![1], 2)],
            bins: vec![
                Bin { node: NodeId(0), residual: 250.0 },
                Bin { node: NodeId(1), residual: 400.0 },
            ],
            l: 1,
            expectation: 0.5, // trivially met, but Exhaust ignores it...
        };
        // NOTE: early EXIT still applies (paper line 2-4). Use an expectation
        // the base misses.
        let mut inst = inst;
        inst.expectation = 0.9999999999;
        let out = solve(&inst, &HeuristicConfig { stop: StopRule::Exhaust, ..Default::default() });
        // Bin0 fits 2 f0-instances (200 <= 250); bin1: best packing uses all
        // 400 MHz; the matching is greedy per round so verify only feasibility
        // and that nothing more could fit.
        assert!(out.augmentation.is_capacity_feasible(&inst));
        let loads = out.augmentation.bin_loads(&inst);
        // No instance of any function with a usable bin remains placeable.
        for (i, f) in inst.functions.iter().enumerate() {
            let placed: usize = out.augmentation.counts()[i];
            if placed < f.max_secondaries {
                for &b in &f.eligible_bins {
                    assert!(
                        inst.bins[b].residual - loads[b] < f.demand,
                        "function {i} could still fit in bin {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn prefers_low_reliability_functions_under_scarcity() {
        // One slot of capacity; matching must pick the cheaper item, which by
        // Eq. 3 is the *less reliable* function's first backup...
        // cost(r, 1) = -ln(r(1-r)); r=0.6 -> -ln(0.24)=1.43; r=0.9 ->
        // -ln(0.09)=2.41. So f(r=0.6) wins — which also maximizes gain here.
        let inst = AugmentationInstance {
            functions: vec![slot(200.0, 0.6, vec![0], 1), slot(200.0, 0.9, vec![0], 1)],
            bins: vec![Bin { node: NodeId(0), residual: 200.0 }],
            l: 1,
            expectation: 0.999999,
        };
        let out = solve(&inst, &HeuristicConfig::default());
        assert_eq!(out.augmentation.counts(), vec![1, 0]);
    }

    #[test]
    fn respects_multiple_bins_per_round() {
        // One function, three eligible bins: a single round can place three
        // instances (one per bin).
        let inst = AugmentationInstance {
            functions: vec![slot(100.0, 0.8, vec![0, 1, 2], 3)],
            bins: vec![
                Bin { node: NodeId(0), residual: 100.0 },
                Bin { node: NodeId(1), residual: 100.0 },
                Bin { node: NodeId(2), residual: 100.0 },
            ],
            l: 1,
            expectation: 0.9999999,
        };
        let out = solve(&inst, &HeuristicConfig::default());
        assert_eq!(out.augmentation.counts(), vec![3]);
        assert_eq!(out.solver, SolverInfo::Heuristic { matching_rounds: 1 });
    }

    #[test]
    fn batch_rounds_matches_unit_rounds_quality() {
        // Same instance, both variants: feasible, and batch needs no more
        // rounds than unit matching while reaching at least its reliability
        // minus a small slack (commitment order differs).
        let inst = AugmentationInstance {
            functions: vec![
                slot(100.0, 0.8, vec![0, 1], 6),
                slot(150.0, 0.85, vec![1], 3),
                slot(200.0, 0.9, vec![0], 2),
            ],
            bins: vec![
                Bin { node: NodeId(0), residual: 600.0 },
                Bin { node: NodeId(1), residual: 700.0 },
            ],
            l: 1,
            expectation: 0.99999999,
        };
        let unit = solve(&inst, &HeuristicConfig::default());
        let batch = solve(&inst, &HeuristicConfig { batch_rounds: true, ..Default::default() });
        assert!(batch.augmentation.is_capacity_feasible(&inst));
        assert!(batch.augmentation.respects_locality(&inst));
        let (
            SolverInfo::Heuristic { matching_rounds: ru },
            SolverInfo::Heuristic { matching_rounds: rb },
        ) = (&unit.solver, &batch.solver)
        else {
            panic!("wrong solver info")
        };
        assert!(rb <= ru, "batch rounds {rb} should not exceed unit rounds {ru}");
        assert!(batch.metrics.reliability >= 0.95 * unit.metrics.reliability);
    }

    #[test]
    fn traced_solve_records_rounds() {
        let inst = AugmentationInstance {
            functions: vec![slot(100.0, 0.8, vec![0], 3)],
            bins: vec![Bin { node: NodeId(0), residual: 350.0 }],
            l: 1,
            expectation: 0.9999999,
        };
        let mut rec = Recorder::memory();
        let out = solve_traced(&inst, &HeuristicConfig::default(), &mut rec);
        assert_eq!(out.solver, SolverInfo::Heuristic { matching_rounds: 3 });
        assert_eq!(out.telemetry.counter("heuristic.rounds"), 3);
        let rounds: Vec<_> = rec.events().iter().filter(|e| e.kind == "heuristic.round").collect();
        assert_eq!(rounds.len(), 3);
        // One bin -> each round matches and commits exactly one placement,
        // and every round strictly improves the reliability.
        for e in &rounds {
            assert_eq!(e.field("matched").unwrap().as_u64(), Some(1));
            assert_eq!(e.field("committed").unwrap().as_u64(), Some(1));
            assert_eq!(e.field("left_bins").unwrap().as_u64(), Some(1));
            assert!(e.field("reliability_gain").unwrap().as_f64().unwrap() > 0.0);
        }
    }

    #[test]
    fn no_capacity_no_rounds() {
        let inst = AugmentationInstance {
            functions: vec![slot(100.0, 0.8, vec![], 0)],
            bins: vec![Bin { node: NodeId(0), residual: 50.0 }],
            l: 1,
            expectation: 0.99,
        };
        let out = solve(&inst, &HeuristicConfig::default());
        assert_eq!(out.metrics.total_secondaries, 0);
        assert_eq!(out.solver, SolverInfo::Heuristic { matching_rounds: 0 });
    }
}

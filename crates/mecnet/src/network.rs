//! The MEC network: a graph of access points, a subset of which host
//! cloudlets with computing capacity.

use crate::graph::{Graph, NodeId};
use rand::seq::SliceRandom;
use rand::Rng;

/// A mobile edge-cloud network `G = (V, E)` with per-node cloudlet
/// capacities (`C_v > 0` where a cloudlet is co-located, `C_v = 0`
/// otherwise — exactly the paper's Section 3 model).
#[derive(Debug, Clone)]
pub struct MecNetwork {
    graph: Graph,
    /// Capacity in MHz per node; `0.0` for plain access points.
    capacity: Vec<f64>,
}

impl MecNetwork {
    /// Wrap a graph with explicit capacities (`capacity.len()` must equal the
    /// node count; entries must be non-negative).
    pub fn new(graph: Graph, capacity: Vec<f64>) -> Self {
        assert_eq!(capacity.len(), graph.num_nodes(), "capacity vector must cover all nodes");
        assert!(capacity.iter().all(|&c| c >= 0.0 && c.is_finite()), "capacities must be >= 0");
        MecNetwork { graph, capacity }
    }

    /// Place `count` cloudlets on distinct random nodes with capacities drawn
    /// uniformly from `capacity_range` (paper: 10% of nodes, 4 000–8 000 MHz).
    pub fn with_random_cloudlets<R: Rng + ?Sized>(
        graph: Graph,
        count: usize,
        capacity_range: (f64, f64),
        rng: &mut R,
    ) -> Self {
        assert!(count <= graph.num_nodes(), "more cloudlets than nodes");
        assert!(capacity_range.0 > 0.0 && capacity_range.0 <= capacity_range.1);
        let mut ids: Vec<usize> = (0..graph.num_nodes()).collect();
        ids.shuffle(rng);
        let mut capacity = vec![0.0; graph.num_nodes()];
        for &v in ids.iter().take(count) {
            capacity[v] = rng.gen_range(capacity_range.0..=capacity_range.1);
        }
        MecNetwork::new(graph, capacity)
    }

    pub fn graph(&self) -> &Graph {
        &self.graph
    }

    pub fn num_nodes(&self) -> usize {
        self.graph.num_nodes()
    }

    /// `C_v` of node `v`.
    pub fn capacity(&self, v: NodeId) -> f64 {
        self.capacity[v.index()]
    }

    pub fn is_cloudlet(&self, v: NodeId) -> bool {
        self.capacity[v.index()] > 0.0
    }

    /// All cloudlet nodes.
    pub fn cloudlets(&self) -> Vec<NodeId> {
        self.graph.nodes().filter(|&v| self.is_cloudlet(v)).collect()
    }

    pub fn num_cloudlets(&self) -> usize {
        self.capacity.iter().filter(|&&c| c > 0.0).count()
    }

    /// Total capacity across all cloudlets.
    pub fn total_capacity(&self) -> f64 {
        self.capacity.iter().sum()
    }

    /// The residual-capacity vector at a uniform residual fraction (the
    /// paper's experiments fix e.g. 25% of each cloudlet's capacity as
    /// available for secondaries).
    pub fn residual_capacities(&self, fraction: f64) -> Vec<f64> {
        assert!((0.0..=1.0).contains(&fraction), "fraction must be in [0, 1]");
        self.capacity.iter().map(|&c| c * fraction).collect()
    }

    /// Cloudlets within `l` hops of `v`, including `v` itself if it is a
    /// cloudlet: the candidate hosts `N_l^+(v)` restricted to nodes that can
    /// actually run VNFs.
    pub fn cloudlets_within(&self, v: NodeId, l: u32) -> Vec<NodeId> {
        self.graph
            .l_neighborhood_closed(v, l)
            .into_iter()
            .filter(|&u| self.is_cloudlet(u))
            .collect()
    }

    /// Largest cloudlet capacity (`C_max` in the paper's complexity bounds).
    pub fn max_capacity(&self) -> f64 {
        self.capacity.iter().copied().fold(0.0, f64::max)
    }

    /// Return `amount` MHz of previously-debited capacity to node `v`'s
    /// residual — the inverse of an admission/augmentation debit, used when a
    /// request departs or an instance is permanently lost. Only ever hand
    /// back what was actually taken: the release must not lift the residual
    /// above the node's full capacity `C_v`.
    pub fn release_capacity(&self, residual: &mut [f64], v: NodeId, amount: f64) {
        assert_eq!(residual.len(), self.capacity.len(), "residual must cover all nodes");
        assert!(amount >= 0.0 && amount.is_finite(), "release amount must be >= 0");
        let idx = v.index();
        let restored = residual[idx] + amount;
        assert!(
            restored <= self.capacity[idx] + 1e-6,
            "release of {amount} MHz would lift node {idx} above its capacity \
             ({restored} > {})",
            self.capacity[idx]
        );
        residual[idx] = restored.min(self.capacity[idx]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn random_cloudlet_placement() {
        let mut rng = StdRng::seed_from_u64(5);
        let g = topology::grid(5, 5);
        let net = MecNetwork::with_random_cloudlets(g, 6, (4000.0, 8000.0), &mut rng);
        assert_eq!(net.num_cloudlets(), 6);
        assert_eq!(net.cloudlets().len(), 6);
        for v in net.cloudlets() {
            assert!((4000.0..=8000.0).contains(&net.capacity(v)));
        }
        assert!(net.total_capacity() >= 6.0 * 4000.0);
        assert!(net.max_capacity() <= 8000.0);
    }

    #[test]
    fn residuals_scale_capacity() {
        let g = topology::ring(4);
        let net = MecNetwork::new(g, vec![1000.0, 0.0, 2000.0, 0.0]);
        let res = net.residual_capacities(0.25);
        assert_eq!(res, vec![250.0, 0.0, 500.0, 0.0]);
    }

    #[test]
    fn cloudlets_within_respects_hops_and_colocations() {
        // Path 0-1-2-3; cloudlets at 0 and 2.
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(2), NodeId(3));
        let net = MecNetwork::new(g, vec![5000.0, 0.0, 6000.0, 0.0]);
        assert_eq!(net.cloudlets_within(NodeId(0), 1), vec![NodeId(0)]);
        let two_hop = net.cloudlets_within(NodeId(0), 2);
        assert_eq!(two_hop, vec![NodeId(0), NodeId(2)]);
        // From a non-cloudlet node, itself is excluded.
        assert_eq!(net.cloudlets_within(NodeId(1), 1), vec![NodeId(0), NodeId(2)]);
    }

    #[test]
    #[should_panic(expected = "capacity vector")]
    fn mismatched_capacity_length_panics() {
        MecNetwork::new(topology::ring(3), vec![1.0]);
    }

    #[test]
    fn release_restores_debited_capacity_exactly() {
        let g = topology::ring(4);
        let net = MecNetwork::new(g, vec![1000.0, 0.0, 2000.0, 0.0]);
        let mut residual = net.residual_capacities(0.5);
        let before = residual.clone();
        residual[0] -= 300.0;
        residual[2] -= 450.0;
        net.release_capacity(&mut residual, NodeId(0), 300.0);
        net.release_capacity(&mut residual, NodeId(2), 450.0);
        assert_eq!(residual, before, "debit then release must round-trip exactly");
    }

    #[test]
    #[should_panic(expected = "above its capacity")]
    fn release_beyond_capacity_panics() {
        let g = topology::ring(3);
        let net = MecNetwork::new(g, vec![1000.0, 0.0, 0.0]);
        let mut residual = vec![900.0, 0.0, 0.0];
        net.release_capacity(&mut residual, NodeId(0), 200.0);
    }
}

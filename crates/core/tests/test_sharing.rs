//! Tests of the shared-backup extension: `existing_backups > 0` must shift
//! every algorithm onto the correct point of the diminishing-returns ladder.

use mecnet::graph::NodeId;
use mecnet::vnf::VnfTypeId;
use relaug::instance::{AugmentationInstance, Bin, FunctionSlot};
use relaug::reliability;
use relaug::{greedy, heuristic, ilp, randomized};

fn instance_with_existing(existing: usize, expectation: f64) -> AugmentationInstance {
    AugmentationInstance {
        functions: vec![FunctionSlot {
            vnf: VnfTypeId(0),
            demand: 100.0,
            reliability: 0.8,
            primary: NodeId(0),
            eligible_bins: vec![0],
            max_secondaries: 4,
            existing_backups: existing,
        }],
        bins: vec![Bin { node: NodeId(0), residual: 400.0 }],
        l: 1,
        expectation,
    }
}

#[test]
fn base_reliability_includes_existing() {
    let inst = instance_with_existing(2, 0.99);
    // R(0.8, 2) = 0.992.
    assert!((inst.base_reliability() - 0.992).abs() < 1e-12);
    assert!(inst.expectation_met_by_primaries());
}

#[test]
fn items_are_offset_along_the_ladder() {
    let inst = instance_with_existing(2, 0.9999999);
    let items = inst.items(0.0);
    assert_eq!(items.len(), 4);
    // First new item is slot 3 of the ladder.
    assert!((items[0].gain - reliability::log_gain(0.8, 3)).abs() < 1e-15);
    assert!((items[0].cost - reliability::paper_cost(0.8, 3)).abs() < 1e-15);
}

#[test]
fn algorithms_early_exit_when_shared_backups_suffice() {
    let inst = instance_with_existing(2, 0.99);
    let exact = ilp::solve(&inst, &Default::default()).unwrap();
    assert_eq!(exact.metrics.total_secondaries, 0);
    let heur = heuristic::solve(&inst, &Default::default());
    assert_eq!(heur.metrics.total_secondaries, 0);
    assert!(heur.metrics.met_expectation);
}

#[test]
fn fewer_new_secondaries_needed_with_sharing() {
    // Target 0.999: R(0.8, 4) = 0.99968 >= 0.999, so 4 new secondaries are
    // needed without sharing (just fits the 400-MHz bin) but only 2 with two
    // existing shared instances.
    let without = instance_with_existing(0, 0.999);
    let with_two = instance_with_existing(2, 0.999);
    let a = ilp::solve(&without, &Default::default()).unwrap();
    let b = ilp::solve(&with_two, &Default::default()).unwrap();
    assert!(
        b.metrics.total_secondaries < a.metrics.total_secondaries,
        "sharing must reduce new deployments: {} vs {}",
        b.metrics.total_secondaries,
        a.metrics.total_secondaries
    );
    // Both reach the expectation (capacity allows).
    assert!(a.metrics.met_expectation);
    assert!(b.metrics.met_expectation);
}

#[test]
fn reliability_accounts_for_existing_in_all_algorithms() {
    let inst = instance_with_existing(1, 0.9999999999);
    let exact =
        ilp::solve(&inst, &ilp::IlpConfig { stop_at_expectation: false, ..Default::default() })
            .unwrap();
    // All 4 new secondaries placed on top of 1 existing: R(0.8, 5).
    assert_eq!(exact.metrics.total_secondaries, 4);
    let expect = reliability::function_reliability(0.8, 5);
    assert!((exact.metrics.reliability - expect).abs() < 1e-12);

    let heur = heuristic::solve(
        &inst,
        &relaug::heuristic::HeuristicConfig {
            stop: relaug::heuristic::StopRule::Exhaust,
            ..Default::default()
        },
    );
    assert!((heur.metrics.reliability - expect).abs() < 1e-12);

    let greedy_out = greedy::solve(&inst, &Default::default());
    assert!((greedy_out.metrics.reliability - expect).abs() < 1e-12);

    let mut rng = rand::rngs::mock::StepRng::new(0, 0);
    let rand_out = randomized::solve(
        &inst,
        &relaug::randomized::RandomizedConfig { stop_at_expectation: false, ..Default::default() },
        &mut rng,
    )
    .unwrap();
    assert!((rand_out.metrics.reliability - expect).abs() < 1e-9);
}

#[test]
fn trim_respects_existing_backups() {
    // 2 existing + capacity for 4 more; expectation 0.999.
    // R(0.8, 2) = 0.992 < 0.999; R(0.8, 3) = 0.9984 < 0.999;
    // R(0.8, 4) = 0.99968 >= 0.999 -> need exactly 2 new instances.
    let inst = instance_with_existing(2, 0.999);
    let exact = ilp::solve(&inst, &Default::default()).unwrap();
    assert_eq!(exact.metrics.total_secondaries, 2);
    assert!(exact.metrics.met_expectation);
}

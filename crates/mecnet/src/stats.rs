//! Topology statistics: degree distribution, clustering, path lengths, and
//! cloudlet-coverage metrics used to sanity-check generated networks against
//! the GT-ITM-style properties the paper's evaluation assumes.

use crate::graph::{Graph, NodeId};
use crate::network::MecNetwork;

/// Degree/clustering/path-length summary of a graph.
#[derive(Debug, Clone, PartialEq)]
pub struct GraphStats {
    pub nodes: usize,
    pub edges: usize,
    pub min_degree: usize,
    pub max_degree: usize,
    pub avg_degree: f64,
    /// Global clustering coefficient (3 × triangles / connected triples);
    /// 0 for graphs without paths of length 2.
    pub clustering: f64,
    /// Mean shortest-path length over connected pairs (0 if none).
    pub avg_path_length: f64,
    pub diameter: Option<u32>,
}

/// Compute [`GraphStats`]. `O(V·E)` for paths, `O(Σ deg²)` for triangles.
pub fn graph_stats(g: &Graph) -> GraphStats {
    let n = g.num_nodes();
    let degrees: Vec<usize> = (0..n).map(|v| g.degree(NodeId(v))).collect();
    // Triangles and triples.
    let mut triangles = 0usize;
    let mut triples = 0usize;
    for v in 0..n {
        let neigh: Vec<usize> = g.neighbors(NodeId(v)).map(|u| u.index()).collect();
        let d = neigh.len();
        triples += d.saturating_sub(1) * d / 2;
        for (i, &a) in neigh.iter().enumerate() {
            for &b in &neigh[i + 1..] {
                if g.has_edge(NodeId(a), NodeId(b)) {
                    triangles += 1;
                }
            }
        }
    }
    // Each triangle is counted once per corner = 3 times.
    let clustering = if triples > 0 { triangles as f64 / triples as f64 } else { 0.0 };

    let mut total_path = 0u64;
    let mut pairs = 0u64;
    for v in 0..n {
        for (u, &d) in g.hop_distances(NodeId(v)).iter().enumerate() {
            if u > v && d != u32::MAX {
                total_path += d as u64;
                pairs += 1;
            }
        }
    }
    GraphStats {
        nodes: n,
        edges: g.num_edges(),
        min_degree: degrees.iter().copied().min().unwrap_or(0),
        max_degree: degrees.iter().copied().max().unwrap_or(0),
        avg_degree: g.average_degree(),
        clustering,
        avg_path_length: if pairs > 0 { total_path as f64 / pairs as f64 } else { 0.0 },
        diameter: g.diameter(),
    }
}

/// Cloudlet coverage: for each node, the hop distance to its nearest
/// cloudlet. The paper's `l`-hop constraint makes this the key accessibility
/// metric — a node whose nearest cloudlet is farther than `l` hops can never
/// receive backups for a primary placed there.
pub fn cloudlet_distances(net: &MecNetwork) -> Vec<u32> {
    let cloudlets = net.cloudlets();
    let mut best = vec![u32::MAX; net.num_nodes()];
    for c in cloudlets {
        for (v, &d) in net.graph().hop_distances(c).iter().enumerate() {
            if d < best[v] {
                best[v] = d;
            }
        }
    }
    best
}

/// Fraction of cloudlets whose closed `l`-hop neighborhood contains at least
/// one *other* cloudlet — i.e. how often backups can leave the primary's own
/// cloudlet at all.
pub fn cloudlet_adjacency_fraction(net: &MecNetwork, l: u32) -> f64 {
    let cloudlets = net.cloudlets();
    if cloudlets.is_empty() {
        return 0.0;
    }
    let with_neighbor = cloudlets.iter().filter(|&&c| net.cloudlets_within(c, l).len() > 1).count();
    with_neighbor as f64 / cloudlets.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;

    #[test]
    fn stats_of_complete_graph() {
        let g = topology::complete(5);
        let s = graph_stats(&g);
        assert_eq!(s.nodes, 5);
        assert_eq!(s.edges, 10);
        assert_eq!(s.min_degree, 4);
        assert_eq!(s.max_degree, 4);
        assert!((s.clustering - 1.0).abs() < 1e-12);
        assert!((s.avg_path_length - 1.0).abs() < 1e-12);
        assert_eq!(s.diameter, Some(1));
    }

    #[test]
    fn stats_of_path_graph() {
        let mut g = Graph::new(4);
        for i in 0..3 {
            g.add_edge(NodeId(i), NodeId(i + 1));
        }
        let s = graph_stats(&g);
        assert_eq!(s.clustering, 0.0); // trees have no triangles
                                       // paths: 1+2+3 + 1+2 + 1 = 10 over 6 pairs.
        assert!((s.avg_path_length - 10.0 / 6.0).abs() < 1e-12);
        assert_eq!(s.diameter, Some(3));
    }

    #[test]
    fn triangle_counting() {
        // Triangle plus a pendant: clustering = 3*1 / (3 + 3) ... compute:
        // triangle corners have 1 triple each except the one with the pendant
        // (3 triples): total triples = 1 + 1 + 3 = 5; triangles counted 3x.
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(2), NodeId(0));
        g.add_edge(NodeId(0), NodeId(3));
        let s = graph_stats(&g);
        assert!((s.clustering - 3.0 / 5.0).abs() < 1e-12);
    }

    #[test]
    fn cloudlet_distance_field() {
        // Path 0-1-2-3, cloudlet at 3.
        let mut g = Graph::new(4);
        for i in 0..3 {
            g.add_edge(NodeId(i), NodeId(i + 1));
        }
        let net = MecNetwork::new(g, vec![0.0, 0.0, 0.0, 1000.0]);
        assert_eq!(cloudlet_distances(&net), vec![3, 2, 1, 0]);
    }

    #[test]
    fn adjacency_fraction_extremes() {
        // Two adjacent cloudlets: fraction 1 at l = 1.
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        let net = MecNetwork::new(g, vec![1000.0, 1000.0, 0.0]);
        assert!((cloudlet_adjacency_fraction(&net, 1) - 1.0).abs() < 1e-12);
        // Two cloudlets at distance 2: fraction 0 at l = 1, 1 at l = 2.
        let mut g2 = Graph::new(3);
        g2.add_edge(NodeId(0), NodeId(1));
        g2.add_edge(NodeId(1), NodeId(2));
        let net2 = MecNetwork::new(g2, vec![1000.0, 0.0, 1000.0]);
        assert_eq!(cloudlet_adjacency_fraction(&net2, 1), 0.0);
        assert_eq!(cloudlet_adjacency_fraction(&net2, 2), 1.0);
        // No cloudlets.
        let net3 = MecNetwork::new(topology::ring(3), vec![0.0; 3]);
        assert_eq!(cloudlet_adjacency_fraction(&net3, 1), 0.0);
    }
}

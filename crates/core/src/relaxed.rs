//! Relaxed-commit-order parallel engine over sharded capacity.
//!
//! The deterministic engine ([`crate::parallel`]) buys byte-identity by
//! committing every request in sequence through one coordinator — which on a
//! saturated stream caps commit throughput at sequential speed. This engine
//! drops the ordering guarantee instead of the parallelism: residual
//! capacity moves into [`ShardedCapacity`] (per-node atomics, lock-free CAS
//! debits), cloudlets are partitioned into locality shards
//! ([`ShardPartition`]), and requests are routed by their `N_l^+(source)`
//! cloudlet footprint:
//!
//! * **Shard-local** footprint → the shard's owning worker thread admits,
//!   solves and commits entirely on its own, lock-free; its capacity view is
//!   restricted to the shard, so its debits can never leave it.
//! * **Straddling** footprint → the coordinator processes it inline through
//!   the same two-phase reserve/commit path, in arrival order among
//!   straddlers.
//! * **Empty** footprint → rejected (no cloudlet within `l` hops).
//!
//! ## Semantics — how relaxed differs from deterministic
//!
//! 1. **Locality-first admission**: primaries are placed within `l` hops of
//!    the request source (the `N_l^+` footprint), not on arbitrary
//!    network-wide cloudlets, and shard-local requests may only use their
//!    own shard's capacity. This is what makes footprints shard-local at all
//!    — and is closer to the MEC motivation of serving users from nearby
//!    cloudlets — but it means admission decisions differ from the
//!    deterministic mode's global random placement, so the two modes are not
//!    record-comparable.
//! 2. **Any linearization**: records reach the sink in completion order and
//!    two runs may interleave commits differently, so byte-identity across
//!    worker counts is not defined. Correctness is the *linearization
//!    invariant* instead: final residuals equal a sequential replay of the
//!    admitted set's commit log, every reserve in that replay succeeds (up
//!    to floating-point reassociation), and no residual is ever negative —
//!    checked by [`process_stream_relaxed_reported`] with `verify = true`,
//!    which turns on the per-shard commit log and replays it through
//!    [`MecNetwork::try_reserve`].
//! 3. **No per-request telemetry**: solver events, windows and flight rings
//!    are not captured (there is no sequence order to merge them into); the
//!    sharded pipeline metrics, per-shard contention counters and the legacy
//!    end-of-run counter totals still are. `StreamObservation::pipeline` is
//!    the *merged* snapshot here (workers count their own requests), unlike
//!    the deterministic engine where shard 0 alone is authoritative.
//! 4. `share_backups` is unsupported (the deployed-instance ledger is
//!    inherently sequential) — asserted at entry.
//!
//! On a reserve conflict (capacity moved between the view refresh and the
//! reserve) the request is re-admitted and re-solved against a fresh view
//! with attempt-salted RNG streams, up to [`MAX_ATTEMPTS`]; the randomized
//! algorithm's expected overcommit instead takes the same clamp-at-zero
//! fallback as the sequential pipeline immediately.

use std::sync::Arc;
use std::time::{Duration, Instant};

use crossbeam::channel;
use mecnet::admission::random_placement_capacity_aware_within;
use mecnet::graph::NodeId;
use mecnet::neighborhood::NeighborhoodIndex;
use mecnet::network::{MecNetwork, ReserveError};
use mecnet::request::SfcRequest;
use mecnet::shard::{FootprintClass, ShardPartition, ShardedCapacity};
use mecnet::vnf::VnfCatalog;
use obs::contention::counters as cc;
use obs::{Recorder, ShardContention, ShardContentionReport, ShardedMetrics};

use crate::instance::AugmentationInstance;
use crate::parallel::ParallelConfig;
use crate::plancache::{PlanCache, PlanEntry, PlanKey, Probe};
use crate::scratch::SolveScratch;
use crate::solution::Outcome;
use crate::stream::{
    pipeline_metrics, request_rng, Algorithm, RequestRecord, StreamConfig, StreamObservation,
    ADMIT_SALT, SOLVE_SALT,
};

/// Reserve-conflict retries before a request is rejected as contended.
pub const MAX_ATTEMPTS: usize = 8;

/// Tolerance for the linearization replay: commit totals can differ from the
/// atomic state by floating-point reassociation only, which over a
/// million-request stream stays orders of magnitude below this.
const REPLAY_SLACK: f64 = 1e-6;

/// Sequential replay of a relaxed run's commit log — the linearization
/// invariant's verdict.
#[derive(Debug, Clone, PartialEq)]
pub struct LinearizationCheck {
    /// Committed reservations replayed.
    pub entries: usize,
    /// Every replayed reserve succeeded (up to [`REPLAY_SLACK`]), final
    /// residuals matched the atomic state within `max_deviation <= 1e-6`,
    /// and no observed residual was negative.
    pub replay_ok: bool,
    /// Largest per-node `|replayed − observed|` residual difference.
    pub max_deviation: f64,
}

/// What a relaxed run did, beyond the records: partition shape, contention
/// attribution, and (with `verify`) the linearization verdict.
#[derive(Debug, Clone)]
pub struct RelaxedReport {
    /// Shards actually built (requested count clamped to the cloudlet count).
    pub num_shards: usize,
    /// Static fraction of covered nodes whose footprint is single-shard —
    /// the partition-quality ceiling on the lock-free path.
    pub static_local_fraction: f64,
    /// Per-shard commit/conflict/reject attribution.
    pub contention: ShardContentionReport,
    /// `Some` iff the run was verified.
    pub linearization: Option<LinearizationCheck>,
}

/// Everything a processing site (worker or coordinator) needs, borrowed.
struct Ctx<'a> {
    network: &'a MecNetwork,
    catalog: &'a VnfCatalog,
    stream: &'a StreamConfig,
    seed: u64,
    nbhd: &'a NeighborhoodIndex,
    cap: &'a ShardedCapacity,
    contention: &'a ShardContention,
    metrics: &'a ShardedMetrics,
    /// Shared plan cache (`Some` iff `stream.plan_cache > 0`). Relaxed
    /// commits are multi-writer, so entries are never epoch-stamped here:
    /// every hit takes the full sharded `try_reserve` revalidation.
    cache: Option<&'a PlanCache>,
}

/// Epoch-stamped sparse residual view: full-size so the admission and
/// instance builders can index by node, but only the entries `ensure`d this
/// epoch are meaningful — everything else is stale garbage that is never
/// read. `begin` invalidates in O(1).
struct View {
    values: Vec<f64>,
    stamp: Vec<u32>,
    epoch: u32,
}

impl View {
    fn new(n: usize) -> View {
        View { values: vec![0.0; n], stamp: vec![0; n], epoch: 0 }
    }

    fn begin(&mut self) {
        self.epoch = self.epoch.wrapping_add(1);
        if self.epoch == 0 {
            self.stamp.fill(0);
            self.epoch = 1;
        }
    }

    /// Load `idx` from the atomics on first touch this epoch; `allowed =
    /// false` pins it to zero instead (out-of-shard capacity is invisible).
    /// Re-touching an ensured entry keeps its current (possibly admission-
    /// debited) value.
    fn ensure(&mut self, idx: usize, cap: &ShardedCapacity, allowed: bool) {
        if self.stamp[idx] != self.epoch {
            self.stamp[idx] = self.epoch;
            self.values[idx] = if allowed { cap.residual(idx) } else { 0.0 };
        }
    }
}

/// Per-thread reusable buffers.
struct WorkerScratch {
    solve: SolveScratch,
    view: View,
    demands: Vec<f64>,
    debits: Vec<(NodeId, f64)>,
}

impl WorkerScratch {
    fn new(n: usize) -> WorkerScratch {
        WorkerScratch {
            solve: SolveScratch::new(),
            view: View::new(n),
            demands: Vec::new(),
            debits: Vec::new(),
        }
    }
}

fn rejected_record(id: usize) -> RequestRecord {
    RequestRecord {
        id,
        admitted: false,
        base_reliability: 0.0,
        achieved_reliability: 0.0,
        met_expectation: false,
        secondaries: 0,
    }
}

fn admitted_record(id: usize, outcome: &Outcome) -> RequestRecord {
    RequestRecord {
        id,
        admitted: true,
        base_reliability: outcome.metrics.base_reliability,
        achieved_reliability: outcome.metrics.reliability,
        met_expectation: outcome.metrics.met_expectation,
        secondaries: outcome.metrics.total_secondaries,
    }
}

/// Admit → solve → atomically commit one request. `restrict` is the owning
/// shard for the lock-free local path (capacity outside it reads as zero),
/// `None` for coordinator-side straddlers. `metrics_shard` is the pipeline
/// metrics row of the executing thread (0 = coordinator).
fn process_one(
    ctx: &Ctx<'_>,
    k: usize,
    req: &SfcRequest,
    restrict: Option<usize>,
    ws: &mut WorkerScratch,
    metrics_shard: usize,
) -> RequestRecord {
    use pipeline_metrics::{
        C_ADMITTED, C_OVERCOMMIT, C_PC_EVICTIONS, C_PC_HITS, C_PC_INSERTIONS, C_PC_MISSES,
        C_PC_REJECT_HITS, C_PC_VALIDATION_FAILURES, C_REJECTED, C_REQUESTS, C_SOLVES, H_COMMIT_NS,
        H_RESERVE_NS, H_SOLVE_NS,
    };
    let ms = ctx.metrics.shard(metrics_shard);
    ms.incr(C_REQUESTS);
    let footprint = ctx.nbhd.cloudlets_within(req.source);
    debug_assert!(!footprint.is_empty(), "empty footprints are rejected before dispatch");
    // Contention-attribution row: the footprint's first shard.
    let cshard = ctx.cap.partition().shard_of(footprint[0]).unwrap_or(0);
    let commit_counter =
        if restrict.is_some() { cc::C_LOCAL_COMMITS } else { cc::C_STRADDLE_COMMITS };
    ws.demands.clear();
    ws.demands.extend(req.sfc.iter().map(|&f| ctx.catalog.demand(f)));
    // --- Admission plan cache (opt-in) ------------------------------------
    // The gate watermark in this engine is calibrated from a *global*
    // residual scan, but relaxed capacity can transiently dip (a reservation
    // later aborted) — so a gate rejection here can be spuriously
    // pessimistic. That is a quality concession of the same class as this
    // engine's contention rejects, never an overcommit: the gate only ever
    // rejects, and hits still revalidate through the sharded ledger.
    if let Some(cache) = ctx.cache {
        let max_demand = ws.demands.iter().fold(0.0f64, |a, &d| a.max(d));
        if cache.gate_rejects(max_demand) {
            ms.incr(C_PC_REJECT_HITS);
            ms.incr(C_REJECTED);
            ctx.contention.incr(cshard, cc::C_REJECT_NO_PLACEMENT);
            return rejected_record(req.id);
        }
        let pkey = PlanKey::for_request(req, ctx.stream.l);
        let probe = cache.probe(&pkey, &req.sfc, |entry| {
            let achieved = entry.recomputed_reliability(ctx.catalog);
            if achieved < req.expectation {
                return None;
            }
            let reserve_started = Instant::now();
            let reserved = ctx.cap.try_reserve(&entry.debits);
            ms.record_duration(H_RESERVE_NS, reserve_started.elapsed());
            let Ok(mut resv) = reserved else {
                return None;
            };
            let home = resv.home_shard();
            let commit_started = Instant::now();
            ctx.cap.commit(&mut resv, k as u64).expect("fresh reservation commits");
            ms.record_duration(H_COMMIT_NS, commit_started.elapsed());
            Some((entry.base_reliability, achieved, entry.secondaries, home))
        });
        match probe {
            Probe::Hit((base, achieved, secondaries, home)) => {
                ms.incr(C_PC_HITS);
                ctx.contention.incr(home, commit_counter);
                ms.incr(C_ADMITTED);
                return RequestRecord {
                    id: req.id,
                    admitted: true,
                    base_reliability: base,
                    achieved_reliability: achieved,
                    met_expectation: true,
                    secondaries,
                };
            }
            Probe::Stale => {
                ms.incr(C_PC_MISSES);
                ms.incr(C_PC_VALIDATION_FAILURES);
            }
            Probe::Miss => ms.incr(C_PC_MISSES),
        }
    }
    let clamp_overcommit = matches!(ctx.stream.algorithm, Algorithm::Randomized(_));
    for attempt in 0..MAX_ATTEMPTS {
        // Fresh view per attempt: footprint entries live, bin extensions
        // faulted in lazily below. Retries re-draw with attempt-salted RNG
        // streams so a conflicted request does not deterministically re-pick
        // the same contended cloudlets.
        let salt_mix = (attempt as u64) << 40;
        ws.view.begin();
        for &c in footprint {
            ws.view.ensure(c.index(), ctx.cap, true);
        }
        let mut admit_rng = request_rng(ctx.seed, k, ADMIT_SALT ^ salt_mix);
        let Some(placement) = random_placement_capacity_aware_within(
            ctx.network,
            req,
            &ws.demands,
            footprint,
            &mut ws.view.values,
            &mut admit_rng,
        ) else {
            ms.incr(C_REJECTED);
            ctx.contention.incr(cshard, cc::C_REJECT_NO_PLACEMENT);
            if let Some(cache) = ctx.cache {
                // Full-scan rejection: tighten the gate with the live global
                // maximum cloudlet residual (a footprint-only scan would not
                // bound cloudlets this shard cannot see).
                let m = ctx
                    .network
                    .cloudlet_ids()
                    .iter()
                    .map(|&v| ctx.cap.residual(v.index()))
                    .fold(0.0f64, f64::max);
                cache.observe_max_residual(m);
            }
            return rejected_record(req.id);
        };
        // The localized instance's bins are the union of the primaries'
        // `N_l^+` slices — fault those in, zeroing anything outside the
        // owning shard so a shard-local request physically cannot see (or
        // debit) another shard's capacity.
        for &p in &placement.locations {
            for &c in ctx.nbhd.cloudlets_within(p) {
                let allowed = restrict.is_none_or(|s| ctx.cap.partition().shard_of(c) == Some(s));
                ws.view.ensure(c.index(), ctx.cap, allowed);
            }
        }
        let inst = AugmentationInstance::new_localized_with_index(
            ctx.network,
            ctx.catalog,
            req,
            &placement.locations,
            &ws.view.values,
            ctx.nbhd,
        );
        let mut solve_rng = request_rng(ctx.seed, k, SOLVE_SALT ^ salt_mix);
        let solve_started = Instant::now();
        let outcome = ctx.stream.algorithm.solve_scratch(
            &inst,
            &mut solve_rng,
            &mut Recorder::noop(),
            &mut ws.solve,
        );
        ms.incr(C_SOLVES);
        ms.record_duration(H_SOLVE_NS, solve_started.elapsed());
        // One reservation for the whole request: primaries + secondaries.
        ws.debits.clear();
        ws.debits.extend(placement.locations.iter().zip(ws.demands.iter()).map(|(&n, &d)| (n, d)));
        let loads = outcome.augmentation.bin_loads(&inst);
        ws.debits.extend(
            loads
                .iter()
                .enumerate()
                .filter(|&(_, &load)| load > 0.0)
                .map(|(b, &load)| (inst.bins[b].node, load)),
        );
        let reserve_started = Instant::now();
        let reserved = ctx.cap.try_reserve(&ws.debits);
        ms.record_duration(H_RESERVE_NS, reserve_started.elapsed());
        match reserved {
            Ok(mut resv) => {
                let home = resv.home_shard();
                let commit_started = Instant::now();
                ctx.cap.commit(&mut resv, k as u64).expect("fresh reservation commits");
                ms.record_duration(H_COMMIT_NS, commit_started.elapsed());
                ctx.contention.incr(home, commit_counter);
                ms.incr(C_ADMITTED);
                // A threshold-meeting, unclamped plan repopulates the cache.
                // `ws.debits` is the full raw footprint (primaries +
                // secondaries) just committed; entries stay unstamped, so
                // later hits always revalidate.
                if let Some(cache) = ctx.cache {
                    if outcome.metrics.met_expectation {
                        ms.incr(C_PC_INSERTIONS);
                        let entry = PlanEntry::new(
                            PlanKey::for_request(req, ctx.stream.l),
                            req.sfc.clone(),
                            placement.locations.clone(),
                            outcome.augmentation.counts(),
                            &ws.debits,
                            outcome.metrics.base_reliability,
                            outcome.metrics.reliability,
                            outcome.metrics.paper_cost,
                        );
                        if cache.insert(entry) {
                            ms.incr(C_PC_EVICTIONS);
                        }
                    }
                }
                return admitted_record(req.id, &outcome);
            }
            Err(_) => {
                ctx.contention.incr(cshard, cc::C_RESERVE_CONFLICTS);
                if clamp_overcommit {
                    // The randomized rounding is *expected* to overshoot its
                    // bins sometimes; the sequential pipeline clamps the
                    // debit at zero residual, and so do we — retrying would
                    // just overshoot again.
                    ctx.cap.commit_clamped(&ws.debits, k as u64);
                    ctx.contention.incr(cshard, cc::C_OVERCOMMIT_CLAMPED);
                    ms.incr(C_OVERCOMMIT);
                    ctx.contention.incr(cshard, commit_counter);
                    ms.incr(C_ADMITTED);
                    return admitted_record(req.id, &outcome);
                }
                if attempt + 1 < MAX_ATTEMPTS {
                    ctx.contention.incr(cshard, cc::C_RETRY_SOLVES);
                    continue;
                }
                ms.incr(C_REJECTED);
                ctx.contention.incr(cshard, cc::C_REJECT_CONTENTION);
                return rejected_record(req.id);
            }
        }
    }
    unreachable!("attempt loop always returns")
}

/// The relaxed engine's sink entry point — the
/// [`CommitOrder::Relaxed`](crate::parallel::CommitOrder::Relaxed) branch of
/// [`crate::parallel::process_stream_metered_sink`]. Records reach
/// `on_record` in completion order.
pub fn process_stream_relaxed_sink(
    network: &MecNetwork,
    catalog: &VnfCatalog,
    requests: impl IntoIterator<Item = SfcRequest>,
    cfg: &ParallelConfig,
    rec: &mut Recorder,
    on_record: &mut dyn FnMut(RequestRecord),
) -> (Vec<f64>, StreamObservation) {
    let (residual, observation, _) =
        process_stream_relaxed_reported(network, catalog, requests, cfg, false, rec, on_record);
    (residual, observation)
}

/// [`process_stream_relaxed_sink`] with the full [`RelaxedReport`], and —
/// when `verify` is set — the commit log enabled and replayed sequentially
/// afterwards (the linearization invariant; costs one log append per commit
/// plus `O(commits)` memory).
pub fn process_stream_relaxed_reported(
    network: &MecNetwork,
    catalog: &VnfCatalog,
    requests: impl IntoIterator<Item = SfcRequest>,
    cfg: &ParallelConfig,
    verify: bool,
    rec: &mut Recorder,
    on_record: &mut dyn FnMut(RequestRecord),
) -> (Vec<f64>, StreamObservation, RelaxedReport) {
    use pipeline_metrics::{COUNTERS, C_REJECTED, C_REQUESTS, HISTS};
    assert!(cfg.workers >= 1, "need at least one worker");
    assert!(
        !cfg.stream.share_backups,
        "share_backups requires CommitOrder::Deterministic (the deployed-instance \
         ledger is inherently sequential)"
    );
    let workers = cfg.workers;
    let nbhd = network.neighborhood_index(cfg.stream.l);
    let requested_shards = if cfg.shards == 0 { workers } else { cfg.shards };
    let partition = ShardPartition::build(network, &nbhd, requested_shards);
    let static_local_fraction = partition.local_fraction(&nbhd);
    let initial = network.residual_capacities(cfg.stream.initial_capacity_fraction);
    let cap = ShardedCapacity::new(network, &initial, partition, verify);
    let num_shards = cap.partition().num_shards();
    let contention = ShardContention::new(num_shards);
    let metrics = Arc::new(ShardedMetrics::new(COUNTERS, HISTS, workers + 1));
    let plan_cache_store =
        (cfg.stream.plan_cache > 0).then(|| PlanCache::new(cfg.stream.plan_cache));
    let window = if cfg.max_inflight == 0 { 64 * workers } else { cfg.max_inflight };

    let mut job_txs = Vec::with_capacity(workers);
    let mut job_rxs = Vec::with_capacity(workers);
    for _ in 0..workers {
        let (tx, rx) = channel::unbounded::<(usize, SfcRequest, usize)>();
        job_txs.push(tx);
        job_rxs.push(rx);
    }
    let (rec_tx, rec_rx) = channel::unbounded::<RequestRecord>();

    std::thread::scope(|scope| {
        for (w, job_rx) in job_rxs.into_iter().enumerate() {
            let rec_tx = rec_tx.clone();
            let nbhd = Arc::clone(&nbhd);
            let metrics = Arc::clone(&metrics);
            let (cap, contention) = (&cap, &contention);
            let cache = plan_cache_store.as_ref();
            scope.spawn(move || {
                let ctx = Ctx {
                    network,
                    catalog,
                    stream: &cfg.stream,
                    seed: cfg.seed,
                    nbhd: &nbhd,
                    cap,
                    contention,
                    metrics: &metrics,
                    cache,
                };
                let mut ws = WorkerScratch::new(network.num_nodes());
                while let Ok((k, req, shard)) = job_rx.recv() {
                    let record = process_one(&ctx, k, &req, Some(shard), &mut ws, w + 1);
                    if rec_tx.send(record).is_err() {
                        break;
                    }
                }
            });
        }
        drop(rec_tx);

        let ctx = Ctx {
            network,
            catalog,
            stream: &cfg.stream,
            seed: cfg.seed,
            nbhd: &nbhd,
            cap: &cap,
            contention: &contention,
            metrics: &metrics,
            cache: plan_cache_store.as_ref(),
        };
        let mut ws = WorkerScratch::new(network.num_nodes());
        let mut outstanding = 0usize;
        for (k, req) in requests.into_iter().enumerate() {
            // Drain finished records opportunistically, then block if the
            // in-flight window is full (manual backpressure — the vendored
            // channels are unbounded).
            while let Ok(r) = rec_rx.try_recv() {
                outstanding -= 1;
                on_record(r);
            }
            while outstanding >= window {
                let r = rec_rx.recv().expect("workers alive while jobs are outstanding");
                outstanding -= 1;
                on_record(r);
            }
            let footprint = ctx.nbhd.cloudlets_within(req.source);
            match cap.partition().classify(footprint) {
                FootprintClass::Empty => {
                    let ms = metrics.shard(0);
                    ms.incr(C_REQUESTS);
                    ms.incr(C_REJECTED);
                    on_record(rejected_record(req.id));
                }
                FootprintClass::Local(s) => {
                    job_txs[s % workers].send((k, req, s)).expect("worker alive");
                    outstanding += 1;
                }
                FootprintClass::Straddling => {
                    let r = process_one(&ctx, k, &req, None, &mut ws, 0);
                    on_record(r);
                }
            }
        }
        drop(job_txs);
        while outstanding > 0 {
            let r = rec_rx.recv().expect("workers alive while jobs are outstanding");
            outstanding -= 1;
            on_record(r);
        }
    });

    let cloudlets_per_shard: Vec<usize> =
        (0..num_shards).map(|s| cap.partition().members(s).len()).collect();
    let contention_report = contention.report(&cloudlets_per_shard);
    let final_residual = cap.snapshot();
    let linearization = verify.then(|| replay_commit_log(network, &initial, &cap, &final_residual));

    let pipeline = metrics.snapshot();
    let plan_cache = (cfg.stream.plan_cache > 0).then(|| obs::PlanCacheReport {
        capacity: cfg.stream.plan_cache as u64,
        hits: pipeline.counter("plancache.hits"),
        epoch_skips: pipeline.counter("plancache.epoch_skips"),
        reject_hits: pipeline.counter("plancache.reject_hits"),
        misses: pipeline.counter("plancache.misses"),
        validation_failures: pipeline.counter("plancache.validation_failures"),
        insertions: pipeline.counter("plancache.insertions"),
        evictions: pipeline.counter("plancache.evictions"),
    });
    let observation = StreamObservation {
        pipeline,
        per_worker: (1..=workers).map(|i| metrics.shard_snapshot(i)).collect(),
        windows: 0,
        shard_contention: Some(contention_report.clone()),
        plan_cache,
    };
    // Legacy recorder aggregates, mirroring `StreamObs::finish` in windowed
    // mode, so summary tables keep working without per-request events.
    let admitted = observation.pipeline.counter("admitted");
    let rejected = observation.pipeline.counter("rejected.no_primary_placement");
    if admitted > 0 {
        rec.count("stream.admitted", admitted);
    }
    if rejected > 0 {
        rec.count("stream.rejected", rejected);
    }
    if let Some(h) = observation.pipeline.hist("solve_ns") {
        rec.record_time("stream.solve", Duration::from_nanos(h.sum()));
    }

    let report = RelaxedReport {
        num_shards,
        static_local_fraction,
        contention: contention_report,
        linearization,
    };
    (final_residual, observation, report)
}

/// Replay the commit log sequentially (ordered by commit tag) on a fresh
/// residual vector through the ordered two-phase path, and compare against
/// the observed atomic state — the linearization invariant.
fn replay_commit_log(
    network: &MecNetwork,
    initial: &[f64],
    cap: &ShardedCapacity,
    observed: &[f64],
) -> LinearizationCheck {
    let mut entries = cap.drain_logs();
    entries.sort_by_key(|e| e.tag);
    let mut residual = initial.to_vec();
    let mut replay_ok = true;
    let mut debits: Vec<(NodeId, f64)> = Vec::new();
    for entry in &entries {
        debits.clear();
        debits.extend(entry.debits.iter().map(|&(idx, amount)| (NodeId(idx), amount)));
        match network.try_reserve(&mut residual, &debits) {
            Ok(mut resv) => network.commit(&mut resv).expect("fresh reservation commits"),
            Err(ReserveError::Insufficient { requested, available, .. })
                if requested - available <= REPLAY_SLACK =>
            {
                // Clamped entries log *actual* taken amounts, so a replay
                // shortfall can only be floating-point reassociation noise —
                // absorb it.
                for &(idx, amount) in &entry.debits {
                    residual[idx] = (residual[idx] - amount).max(0.0);
                }
            }
            Err(_) => {
                replay_ok = false;
                break;
            }
        }
    }
    let max_deviation =
        residual.iter().zip(observed).map(|(a, b)| (a - b).abs()).fold(0.0, f64::max);
    let negative = observed.iter().any(|&r| r < 0.0);
    LinearizationCheck {
        entries: entries.len(),
        replay_ok: replay_ok && !negative && max_deviation <= REPLAY_SLACK,
        max_deviation,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::parallel::CommitOrder;
    use mecnet::topology;
    use mecnet::vnf::VnfType;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    fn fixture() -> (MecNetwork, VnfCatalog, Vec<SfcRequest>) {
        let g = topology::grid(4, 4);
        let mut rng = StdRng::seed_from_u64(1);
        let net = MecNetwork::with_random_cloudlets(g, 6, (2000.0, 3000.0), &mut rng);
        let mut cat = VnfCatalog::new();
        cat.add(VnfType { name: "a".into(), demand_mhz: 300.0, reliability: 0.85 });
        cat.add(VnfType { name: "b".into(), demand_mhz: 400.0, reliability: 0.9 });
        let mut req_rng = StdRng::seed_from_u64(7);
        let n = net.num_nodes();
        let requests =
            (0..120).map(|i| SfcRequest::random(i, &cat, (2, 2), 0.99, n, &mut req_rng)).collect();
        (net, cat, requests)
    }

    fn relaxed_cfg(workers: usize) -> ParallelConfig {
        ParallelConfig {
            workers,
            commit_order: CommitOrder::Relaxed,
            seed: 11,
            ..Default::default()
        }
    }

    /// Verified run: commit-log replay matches the atomic state, counts add
    /// up, and every request produced exactly one record.
    fn run_verified(workers: usize) -> (Vec<RequestRecord>, Vec<f64>, RelaxedReport) {
        let (network, catalog, requests) = fixture();
        let total = requests.len();
        let mut records = Vec::new();
        let (residual, observation, report) = process_stream_relaxed_reported(
            &network,
            &catalog,
            requests,
            &relaxed_cfg(workers),
            true,
            &mut Recorder::noop(),
            &mut |r| records.push(r),
        );
        assert_eq!(records.len(), total);
        let lin = report.linearization.as_ref().expect("verified run");
        assert!(lin.replay_ok, "linearization failed: {lin:?}");
        let admitted = records.iter().filter(|r| r.admitted).count();
        assert_eq!(observation.pipeline.counter("requests"), total as u64);
        assert_eq!(observation.pipeline.counter("admitted"), admitted as u64);
        let totals = report.contention.totals();
        assert_eq!(totals.local_commits + totals.straddle_commits, admitted as u64);
        (records, residual, report)
    }

    #[test]
    fn relaxed_run_commits_linearizably_one_worker() {
        let (records, residual, _) = run_verified(1);
        assert!(records.iter().any(|r| r.admitted), "fixture should admit something");
        assert!(residual.iter().all(|&r| r >= 0.0));
    }

    #[test]
    fn relaxed_run_commits_linearizably_four_workers() {
        let (records, residual, report) = run_verified(4);
        assert!(records.iter().any(|r| r.admitted));
        assert!(residual.iter().all(|&r| r >= 0.0));
        assert!(report.num_shards >= 1);
    }

    /// Same seed, different worker counts: the *set* of request ids is
    /// always complete even though arrival order at the sink differs.
    #[test]
    fn every_request_gets_exactly_one_record() {
        for workers in [1, 2, 4] {
            let (records, _, _) = run_verified(workers);
            let mut ids: Vec<usize> = records.iter().map(|r| r.id).collect();
            ids.sort_unstable();
            ids.dedup();
            assert_eq!(ids.len(), records.len(), "workers={workers}: duplicate record ids");
        }
    }

    #[test]
    #[should_panic(expected = "share_backups requires CommitOrder::Deterministic")]
    fn share_backups_is_rejected() {
        let (network, catalog, requests) = fixture();
        let mut cfg = relaxed_cfg(2);
        cfg.stream.share_backups = true;
        let _ = process_stream_relaxed_sink(
            &network,
            &catalog,
            requests,
            &cfg,
            &mut Recorder::noop(),
            &mut |_| {},
        );
    }
}

//! Telemetry-overhead gate: windowed observability must be effectively free.
//!
//! Runs one fixed request stream through the sequential seeded driver twice —
//! fully untraced, and with windowed telemetry (`stream.window` summaries to
//! a JSONL sink, sharded metrics always on) — and records both throughputs
//! plus their ratio into `BENCH_obs.json` at the workspace root. CI gates
//! `ratio >= 0.9` (traced throughput at least 90% of untraced) and uploads
//! the JSON, which also carries the final merged [`obs::MetricsReport`]
//! snapshot, as an artifact. `QUICK=1` shrinks the stream for CI.

use std::time::Instant;

use mecnet::request::SfcRequest;
use mecnet::workload::{generate_catalog, generate_network, WorkloadConfig};
use obs::{MetricsInterval, Recorder};
use rand::rngs::StdRng;
use rand::SeedableRng;
use relaug::stream::{
    process_stream_seeded, process_stream_seeded_observed, Algorithm, MetricsMode, StreamConfig,
};
use serde::{Serialize, Value};

const SEED: u64 = 42;

fn main() {
    let quick = std::env::var_os("QUICK").is_some();
    // Keep the window count small relative to the stream, mirroring the real
    // design point (10^5-10^6 requests at --metrics-interval 10000): the
    // per-window summary cost is fixed, so a stream long enough to amortise
    // it is what the gate is meant to measure. Sub-millisecond runs drown in
    // scheduler jitter, so even QUICK uses a stream long enough to time.
    let requests_n = if quick { 2_000 } else { 10_000 };
    let window_every = (requests_n / 10) as u64;
    let reps = if quick { 5 } else { 7 };

    // The default workload saturates after a handful of admissions, leaving a
    // degenerate stream of ~75 ns placement rejections whose timing noise
    // swamps any real overhead. Scale capacity up so admissions — and thus
    // genuine per-request solver work, the thing telemetry rides on — keep
    // flowing for the whole stream.
    let wl = WorkloadConfig {
        cloudlet_fraction: 1.0,
        capacity_range: (400_000.0, 800_000.0),
        residual_fraction: 1.0,
        ..WorkloadConfig::default()
    };
    let mut rng = StdRng::seed_from_u64(SEED);
    let network = generate_network(&wl, &mut rng);
    let catalog = generate_catalog(&wl, &mut rng);
    let requests: Vec<SfcRequest> = (0..requests_n)
        .map(|i| SfcRequest::random(i, &catalog, (3, 6), 0.99, wl.nodes, &mut rng))
        .collect();
    let base_cfg =
        StreamConfig { algorithm: Algorithm::Heuristic(Default::default()), ..Default::default() };

    // Warm caches/allocator before timing either side.
    let _ = process_stream_seeded(&network, &catalog, &requests, &base_cfg, SEED);

    // Windowed telemetry goes to a real JSONL sink (what a bounded
    // million-request run would use). Interleave untraced and windowed reps
    // so clock drift and background load hit both sides equally; best-of
    // then compares like with like.
    let windowed_cfg = StreamConfig {
        metrics: MetricsMode::Windowed(MetricsInterval::Requests(window_every)),
        ..base_cfg.clone()
    };
    let trace_path = std::env::temp_dir()
        .join(format!("relaug-telemetry-overhead-{}.jsonl", std::process::id()));
    let mut untraced_best = f64::INFINITY;
    let mut traced_best = f64::INFINITY;
    let mut observation = None;
    for _ in 0..reps {
        let started = Instant::now();
        let out = process_stream_seeded(&network, &catalog, &requests, &base_cfg, SEED);
        untraced_best = untraced_best.min(started.elapsed().as_secs_f64());
        assert_eq!(out.records.len(), requests_n);

        let mut rec = Recorder::jsonl_file(&trace_path).expect("open trace sink");
        let started = Instant::now();
        let (out, ob) = process_stream_seeded_observed(
            &network,
            &catalog,
            &requests,
            &windowed_cfg,
            SEED,
            &mut rec,
        );
        traced_best = traced_best.min(started.elapsed().as_secs_f64());
        assert_eq!(out.records.len(), requests_n);
        assert!(
            ob.windows <= requests_n as u64 / window_every + 1,
            "windowed run emitted {} summaries for {} requests",
            ob.windows,
            requests_n
        );
        observation = Some(ob);
    }
    let observation = observation.expect("at least one traced rep");
    let _ = std::fs::remove_file(&trace_path);

    let untraced_rps = requests_n as f64 / untraced_best;
    let traced_rps = requests_n as f64 / traced_best;
    let ratio = traced_rps / untraced_rps;
    println!(
        "telemetry overhead: untraced {untraced_rps:.0} req/s, windowed {traced_rps:.0} req/s, \
         ratio {ratio:.3} ({} windows)",
        observation.windows
    );

    let report = Value::Obj(vec![
        ("benchmark".into(), Value::Str("telemetry_overhead".into())),
        ("quick".into(), Value::Bool(quick)),
        ("requests".into(), Value::U64(requests_n as u64)),
        ("seed".into(), Value::U64(SEED)),
        ("window_every".into(), Value::U64(window_every)),
        ("record_reps".into(), Value::U64(reps as u64)),
        ("untraced_rps".into(), Value::F64(untraced_rps)),
        ("traced_rps".into(), Value::F64(traced_rps)),
        ("ratio".into(), Value::F64(ratio)),
        ("windows".into(), Value::U64(observation.windows)),
        ("metrics".into(), observation.pipeline.report().to_value()),
    ]);
    let mut json = serde_json::to_string_pretty(&report).expect("report serializes");
    json.push('\n');
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_obs.json");
    std::fs::write(path, &json).expect("write BENCH_obs.json");
    println!("wrote {path}");
}

//! Offline stand-in for the `serde` facade.
//!
//! Instead of serde's visitor-based zero-copy machinery, this stub uses a
//! simple tree model: `Serialize` maps a value into a [`Value`] tree and
//! `Deserialize` reads one back. The vendored `serde_json` crate renders and
//! parses `Value` as JSON. The derive macros live in the vendored
//! `serde_derive` crate and are re-exported here so `#[derive(Serialize)]`
//! resolves exactly as it does with the real crates.

pub use serde_derive::{Deserialize, Serialize};

use std::collections::{BTreeMap, HashMap};
use std::fmt;

/// A self-describing data tree — the interchange format between the
/// `Serialize`/`Deserialize` traits and concrete formats (JSON).
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    Null,
    Bool(bool),
    U64(u64),
    I64(i64),
    F64(f64),
    Str(String),
    Arr(Vec<Value>),
    Obj(Vec<(String, Value)>),
}

impl Value {
    pub fn as_array(&self) -> Option<&Vec<Value>> {
        match self {
            Value::Arr(a) => Some(a),
            _ => None,
        }
    }

    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    pub fn as_f64(&self) -> Option<f64> {
        match self {
            Value::F64(x) => Some(*x),
            Value::U64(x) => Some(*x as f64),
            Value::I64(x) => Some(*x as f64),
            _ => None,
        }
    }

    pub fn as_u64(&self) -> Option<u64> {
        match self {
            Value::U64(x) => Some(*x),
            Value::I64(x) if *x >= 0 => Some(*x as u64),
            _ => None,
        }
    }

    pub fn as_i64(&self) -> Option<i64> {
        match self {
            Value::I64(x) => Some(*x),
            Value::U64(x) if *x <= i64::MAX as u64 => Some(*x as i64),
            _ => None,
        }
    }

    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(b) => Some(*b),
            _ => None,
        }
    }

    /// Object-key or array-index lookup, mirroring `serde_json::Value::get`.
    pub fn get<I: ValueIndex>(&self, index: I) -> Option<&Value> {
        index.index_into(self)
    }
}

pub trait ValueIndex {
    fn index_into<'a>(&self, v: &'a Value) -> Option<&'a Value>;
}

impl ValueIndex for &str {
    fn index_into<'a>(&self, v: &'a Value) -> Option<&'a Value> {
        match v {
            Value::Obj(entries) => entries.iter().find(|(k, _)| k == self).map(|(_, v)| v),
            _ => None,
        }
    }
}

impl ValueIndex for usize {
    fn index_into<'a>(&self, v: &'a Value) -> Option<&'a Value> {
        match v {
            Value::Arr(items) => items.get(*self),
            _ => None,
        }
    }
}

/// Deserialization error.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Error {
    msg: String,
}

impl Error {
    pub fn custom(msg: impl fmt::Display) -> Self {
        Error { msg: msg.to_string() }
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

pub trait Serialize {
    fn to_value(&self) -> Value;
}

pub trait Deserialize: Sized {
    fn from_value(v: &Value) -> Result<Self, Error>;
}

// -- helpers used by generated code -----------------------------------------

/// Look up a field in an `Obj` value; missing fields resolve to `Null` so
/// `Option<T>` fields absent from the input deserialize to `None`.
pub fn obj_field<'a>(obj: &'a [(String, Value)], name: &str, ty: &str) -> Result<&'a Value, Error> {
    const NULL: &Value = &Value::Null;
    match obj.iter().find(|(k, _)| k == name) {
        Some((_, v)) => Ok(v),
        None => {
            let _ = ty;
            Ok(NULL)
        }
    }
}

pub fn as_obj<'a>(v: &'a Value, ty: &str) -> Result<&'a [(String, Value)], Error> {
    match v {
        Value::Obj(entries) => Ok(entries),
        other => Err(Error::custom(format!("expected object for {ty}, found {other:?}"))),
    }
}

pub fn arr_elem<'a>(v: &'a Value, idx: usize, ty: &str) -> Result<&'a Value, Error> {
    match v {
        Value::Arr(items) => {
            items.get(idx).ok_or_else(|| Error::custom(format!("missing element {idx} for {ty}")))
        }
        other => Err(Error::custom(format!("expected array for {ty}, found {other:?}"))),
    }
}

// -- impls for primitives and std types -------------------------------------

macro_rules! ser_de_uint {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::U64(*self as u64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_u64()
                    .and_then(|x| <$t>::try_from(x).ok())
                    .ok_or_else(|| Error::custom(format!(
                        concat!("expected ", stringify!($t), ", found {:?}"), v)))
            }
        }
    )*};
}

macro_rules! ser_de_int {
    ($($t:ty),*) => {$(
        impl Serialize for $t {
            fn to_value(&self) -> Value { Value::I64(*self as i64) }
        }
        impl Deserialize for $t {
            fn from_value(v: &Value) -> Result<Self, Error> {
                v.as_i64()
                    .and_then(|x| <$t>::try_from(x).ok())
                    .ok_or_else(|| Error::custom(format!(
                        concat!("expected ", stringify!($t), ", found {:?}"), v)))
            }
        }
    )*};
}

ser_de_uint!(u8, u16, u32, u64, usize);
ser_de_int!(i8, i16, i32, i64, isize);

impl Serialize for f64 {
    fn to_value(&self) -> Value {
        Value::F64(*self)
    }
}
impl Deserialize for f64 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().ok_or_else(|| Error::custom(format!("expected f64, found {v:?}")))
    }
}

impl Serialize for f32 {
    fn to_value(&self) -> Value {
        Value::F64(*self as f64)
    }
}
impl Deserialize for f32 {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64().map(|x| x as f32).ok_or_else(|| Error::custom("expected f32"))
    }
}

impl Serialize for bool {
    fn to_value(&self) -> Value {
        Value::Bool(*self)
    }
}
impl Deserialize for bool {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_bool().ok_or_else(|| Error::custom(format!("expected bool, found {v:?}")))
    }
}

impl Serialize for String {
    fn to_value(&self) -> Value {
        Value::Str(self.clone())
    }
}
impl Deserialize for String {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_str()
            .map(str::to_string)
            .ok_or_else(|| Error::custom(format!("expected string, found {v:?}")))
    }
}

impl Serialize for &str {
    fn to_value(&self) -> Value {
        Value::Str((*self).to_string())
    }
}

impl<T: Serialize> Serialize for Option<T> {
    fn to_value(&self) -> Value {
        match self {
            Some(x) => x.to_value(),
            None => Value::Null,
        }
    }
}
impl<T: Deserialize> Deserialize for Option<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Null => Ok(None),
            other => T::from_value(other).map(Some),
        }
    }
}

impl<T: Serialize> Serialize for Vec<T> {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}
impl<T: Deserialize> Deserialize for Vec<T> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Arr(items) => items.iter().map(T::from_value).collect(),
            other => Err(Error::custom(format!("expected array, found {other:?}"))),
        }
    }
}

impl<T: Serialize> Serialize for [T] {
    fn to_value(&self) -> Value {
        Value::Arr(self.iter().map(Serialize::to_value).collect())
    }
}

impl<T: Serialize + ?Sized> Serialize for &T {
    fn to_value(&self) -> Value {
        (**self).to_value()
    }
}

impl Serialize for Value {
    fn to_value(&self) -> Value {
        self.clone()
    }
}
impl Deserialize for Value {
    fn from_value(v: &Value) -> Result<Self, Error> {
        Ok(v.clone())
    }
}

macro_rules! ser_de_tuple {
    ($(($($n:tt $t:ident),+))*) => {$(
        impl<$($t: Serialize),+> Serialize for ($($t,)+) {
            fn to_value(&self) -> Value {
                Value::Arr(vec![$(self.$n.to_value()),+])
            }
        }
        impl<$($t: Deserialize),+> Deserialize for ($($t,)+) {
            fn from_value(v: &Value) -> Result<Self, Error> {
                match v {
                    Value::Arr(items) => Ok(($(
                        $t::from_value(items.get($n).ok_or_else(|| {
                            Error::custom("tuple too short")
                        })?)?,
                    )+)),
                    other => Err(Error::custom(format!("expected tuple array, found {other:?}"))),
                }
            }
        }
    )*};
}

ser_de_tuple! {
    (0 A)
    (0 A, 1 B)
    (0 A, 1 B, 2 C)
    (0 A, 1 B, 2 C, 3 D)
}

impl<V: Serialize> Serialize for BTreeMap<String, V> {
    fn to_value(&self) -> Value {
        Value::Obj(self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect())
    }
}
impl<V: Deserialize> Deserialize for BTreeMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Obj(entries) => {
                entries.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
            }
            other => Err(Error::custom(format!("expected object, found {other:?}"))),
        }
    }
}

impl<V: Serialize> Serialize for HashMap<String, V> {
    fn to_value(&self) -> Value {
        let mut entries: Vec<(String, Value)> =
            self.iter().map(|(k, v)| (k.clone(), v.to_value())).collect();
        entries.sort_by(|a, b| a.0.cmp(&b.0));
        Value::Obj(entries)
    }
}
impl<V: Deserialize> Deserialize for HashMap<String, V> {
    fn from_value(v: &Value) -> Result<Self, Error> {
        match v {
            Value::Obj(entries) => {
                entries.iter().map(|(k, v)| Ok((k.clone(), V::from_value(v)?))).collect()
            }
            other => Err(Error::custom(format!("expected object, found {other:?}"))),
        }
    }
}

impl Serialize for std::time::Duration {
    fn to_value(&self) -> Value {
        Value::F64(self.as_secs_f64())
    }
}
impl Deserialize for std::time::Duration {
    fn from_value(v: &Value) -> Result<Self, Error> {
        v.as_f64()
            .map(std::time::Duration::from_secs_f64)
            .ok_or_else(|| Error::custom("expected duration seconds"))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn primitives_round_trip() {
        assert_eq!(u32::from_value(&42u32.to_value()).unwrap(), 42);
        assert_eq!(i64::from_value(&(-7i64).to_value()).unwrap(), -7);
        assert_eq!(f64::from_value(&1.5f64.to_value()).unwrap(), 1.5);
        assert!(bool::from_value(&true.to_value()).unwrap());
        assert_eq!(String::from_value(&"hi".to_string().to_value()).unwrap(), "hi");
    }

    #[test]
    fn containers_round_trip() {
        let v = vec![1u64, 2, 3];
        assert_eq!(Vec::<u64>::from_value(&v.to_value()).unwrap(), v);
        let t = (1usize, 2.5f64);
        assert_eq!(<(usize, f64)>::from_value(&t.to_value()).unwrap(), t);
        let none: Option<u32> = None;
        assert_eq!(Option::<u32>::from_value(&none.to_value()).unwrap(), None);
        assert_eq!(Option::<u32>::from_value(&Some(9u32).to_value()).unwrap(), Some(9));
    }

    #[test]
    fn missing_field_is_null() {
        let obj = vec![("a".to_string(), Value::U64(1))];
        assert_eq!(obj_field(&obj, "b", "T").unwrap(), &Value::Null);
    }
}

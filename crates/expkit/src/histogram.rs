//! Fixed-bin histograms and exact percentiles for experiment reporting.

/// A histogram over `[lo, hi)` with equal-width bins (values outside the
/// range are clamped into the first/last bin).
#[derive(Debug, Clone)]
pub struct Histogram {
    lo: f64,
    hi: f64,
    counts: Vec<u64>,
    total: u64,
}

impl Histogram {
    /// Create a histogram with `bins >= 1` equal-width bins over `[lo, hi)`.
    pub fn new(lo: f64, hi: f64, bins: usize) -> Histogram {
        assert!(bins >= 1, "need at least one bin");
        assert!(lo < hi, "empty range");
        assert!(lo.is_finite() && hi.is_finite());
        Histogram { lo, hi, counts: vec![0; bins], total: 0 }
    }

    pub fn push(&mut self, x: f64) {
        assert!(x.is_finite(), "non-finite sample");
        let bins = self.counts.len();
        let idx = ((x - self.lo) / (self.hi - self.lo) * bins as f64).floor();
        let idx = (idx.max(0.0) as usize).min(bins - 1);
        self.counts[idx] += 1;
        self.total += 1;
    }

    pub fn count(&self) -> u64 {
        self.total
    }

    pub fn bin_counts(&self) -> &[u64] {
        &self.counts
    }

    /// `(lower edge, upper edge, count)` per bin.
    pub fn bins(&self) -> Vec<(f64, f64, u64)> {
        let w = (self.hi - self.lo) / self.counts.len() as f64;
        self.counts
            .iter()
            .enumerate()
            .map(|(i, &c)| (self.lo + w * i as f64, self.lo + w * (i + 1) as f64, c))
            .collect()
    }

    /// Simple ASCII rendering (one row per bin).
    pub fn render(&self, width: usize) -> String {
        let max = self.counts.iter().copied().max().unwrap_or(0).max(1);
        self.bins()
            .into_iter()
            .map(|(lo, hi, c)| {
                let bar = "#".repeat((c as usize * width).div_ceil(max as usize).min(width));
                format!("[{lo:>10.3}, {hi:>10.3}) |{bar:<width$}| {c}\n")
            })
            .collect()
    }
}

/// Exact percentile of a sample via the nearest-rank method (`p` in `[0,
/// 100]`). Panics on an empty slice.
pub fn percentile(sample: &[f64], p: f64) -> f64 {
    assert!(!sample.is_empty(), "empty sample");
    assert!((0.0..=100.0).contains(&p), "percentile must be in [0, 100]");
    let mut sorted: Vec<f64> = sample.to_vec();
    sorted.sort_by(|a, b| a.total_cmp(b));
    if p == 0.0 {
        return sorted[0];
    }
    let rank = (p / 100.0 * sorted.len() as f64).ceil() as usize;
    sorted[rank.clamp(1, sorted.len()) - 1]
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bins_and_clamping() {
        let mut h = Histogram::new(0.0, 10.0, 5);
        for x in [0.5, 1.5, 2.5, 9.9, -3.0, 42.0] {
            h.push(x);
        }
        assert_eq!(h.count(), 6);
        // -3.0 clamps into bin 0 (with 0.5 and 1.5); 42.0 into the last.
        assert_eq!(h.bin_counts(), &[3, 1, 0, 0, 2]);
        let bins = h.bins();
        assert_eq!(bins[0].0, 0.0);
        assert_eq!(bins[4].1, 10.0);
    }

    #[test]
    fn render_shows_bars() {
        let mut h = Histogram::new(0.0, 2.0, 2);
        h.push(0.5);
        h.push(0.6);
        h.push(1.5);
        let s = h.render(10);
        assert!(s.contains("##"));
        assert!(s.lines().count() == 2);
    }

    #[test]
    fn percentiles_nearest_rank() {
        let v = [15.0, 20.0, 35.0, 40.0, 50.0];
        assert_eq!(percentile(&v, 0.0), 15.0);
        assert_eq!(percentile(&v, 30.0), 20.0);
        assert_eq!(percentile(&v, 40.0), 20.0);
        assert_eq!(percentile(&v, 50.0), 35.0);
        assert_eq!(percentile(&v, 100.0), 50.0);
    }

    #[test]
    fn percentile_single_element() {
        assert_eq!(percentile(&[7.0], 50.0), 7.0);
    }

    #[test]
    #[should_panic(expected = "empty")]
    fn percentile_empty_panics() {
        percentile(&[], 50.0);
    }
}

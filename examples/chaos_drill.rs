//! Domain scenario: a chaos drill — does the provisioned redundancy actually
//! survive injected failures?
//!
//! The operator provisions backups with each algorithm, then runs a
//! failure-injection campaign (every VNF instance goes down independently
//! with probability `1 - r`) and compares the *measured* survival rate with
//! the closed-form reliability the algorithms optimized. This validates the
//! paper's Eq. 1 model end-to-end and shows which chain positions dominate
//! the remaining outages.
//!
//! Run with: `cargo run --release --example chaos_drill`

use mec_sfc_reliability::mecnet::workload::{generate_scenario, WorkloadConfig};
use mec_sfc_reliability::relaug::instance::AugmentationInstance;
use mec_sfc_reliability::relaug::montecarlo::simulate_failures;
use mec_sfc_reliability::relaug::{heuristic, ilp, randomized};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn main() {
    let config = WorkloadConfig { sfc_len_range: (6, 6), ..Default::default() };
    let mut rng = StdRng::seed_from_u64(404);
    let scenario = generate_scenario(&config, &mut rng);
    let inst = AugmentationInstance::from_scenario(&scenario, 1);
    println!(
        "chain of {} functions, base reliability {:.4}, SLO {:.2}\n",
        inst.chain_len(),
        inst.base_reliability(),
        inst.expectation
    );

    const TRIALS: usize = 200_000;
    println!(
        "{:<12} {:>10} {:>12} {:>12} {:>9}",
        "algorithm", "analytic", "measured", "stderr", "backups"
    );
    let solutions = [
        ("ILP", ilp::solve(&inst, &Default::default()).unwrap()),
        ("Randomized", randomized::solve(&inst, &Default::default(), &mut rng).unwrap()),
        ("Heuristic", heuristic::solve(&inst, &Default::default())),
    ];
    for (name, out) in &solutions {
        let report = simulate_failures(&inst, &out.augmentation, TRIALS, &mut rng);
        println!(
            "{:<12} {:>10.4} {:>12.4} {:>12.5} {:>9}",
            name,
            out.metrics.reliability,
            report.survival_rate,
            report.survival_stderr(),
            out.metrics.total_secondaries
        );
    }

    // Outage breakdown for the heuristic's placement.
    let heur = &solutions[2].1;
    let report = simulate_failures(&inst, &heur.augmentation, TRIALS, &mut rng);
    println!("\nper-function outage rates under the heuristic's placement:");
    let counts = heur.augmentation.counts();
    for (i, (&outage, f)) in report.outage_rate.iter().zip(&inst.functions).enumerate() {
        println!(
            "  f{i}: r = {:.3}, {} backup(s) -> outage {:.5} (analytic {:.5})",
            f.reliability,
            counts[i],
            outage,
            (1.0 - f.reliability).powi(counts[i] as i32 + 1)
        );
    }
    println!(
        "\nThe measured survival matches the closed form the algorithms\n\
         optimize — Eq. 1's independence assumption is exactly what the\n\
         injector samples, so residual gaps are purely statistical."
    );
}

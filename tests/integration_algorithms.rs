//! Cross-crate integration tests: the three algorithms run end-to-end on
//! generated MEC scenarios and respect the dominance and feasibility
//! relations the paper's analysis promises.

use mec_sfc_reliability::mecnet::workload::{generate_scenario, WorkloadConfig};
use mec_sfc_reliability::milp::BnbConfig;
use mec_sfc_reliability::relaug::heuristic::{HeuristicConfig, StopRule};
use mec_sfc_reliability::relaug::ilp::IlpConfig;
use mec_sfc_reliability::relaug::instance::AugmentationInstance;
use mec_sfc_reliability::relaug::{greedy, heuristic, ilp, randomized};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn scenario_instance(seed: u64, cfg: &WorkloadConfig) -> AugmentationInstance {
    let mut rng = StdRng::seed_from_u64(seed);
    let s = generate_scenario(cfg, &mut rng);
    AugmentationInstance::from_scenario(&s, 1)
}

fn small_cfg() -> WorkloadConfig {
    WorkloadConfig { nodes: 40, sfc_len_range: (4, 7), ..Default::default() }
}

/// Uncapped exact config (no expectation trim) for dominance checks.
fn uncapped_ilp() -> IlpConfig {
    IlpConfig { stop_at_expectation: false, ..Default::default() }
}

#[test]
fn ilp_dominates_feasible_algorithms() {
    for seed in 0..15 {
        let inst = scenario_instance(seed, &small_cfg());
        let exact = ilp::solve(&inst, &uncapped_ilp()).expect("ilp");
        let heur = heuristic::solve(
            &inst,
            &HeuristicConfig { stop: StopRule::Exhaust, gain_floor: 1e-12, ..Default::default() },
        );
        let greed = greedy::solve(&inst, &Default::default());
        assert!(
            heur.metrics.reliability <= exact.metrics.reliability + 1e-9,
            "seed {seed}: heuristic {} beat exact {}",
            heur.metrics.reliability,
            exact.metrics.reliability
        );
        assert!(
            greed.metrics.reliability <= exact.metrics.reliability + 1e-9,
            "seed {seed}: greedy beat exact"
        );
    }
}

#[test]
fn feasible_algorithms_never_violate_capacity_or_locality() {
    for seed in 20..35 {
        let inst = scenario_instance(seed, &small_cfg());
        let exact = ilp::solve(&inst, &Default::default()).expect("ilp");
        let heur = heuristic::solve(&inst, &Default::default());
        let greed = greedy::solve(&inst, &Default::default());
        for (name, out) in [("ilp", &exact), ("heuristic", &heur), ("greedy", &greed)] {
            assert!(out.augmentation.is_capacity_feasible(&inst), "{name} violated capacity");
            assert!(out.augmentation.respects_locality(&inst), "{name} violated locality");
        }
        let mut rng = StdRng::seed_from_u64(seed);
        let rand_out = randomized::solve(&inst, &Default::default(), &mut rng).expect("lp");
        // Randomized may violate capacity but never locality.
        assert!(rand_out.augmentation.respects_locality(&inst));
    }
}

#[test]
fn augmentation_never_decreases_reliability() {
    for seed in 40..55 {
        let inst = scenario_instance(seed, &small_cfg());
        let base = inst.base_reliability();
        let heur = heuristic::solve(&inst, &Default::default());
        assert!(heur.metrics.reliability >= base - 1e-12);
        let mut rng = StdRng::seed_from_u64(seed);
        let rand_out = randomized::solve(&inst, &Default::default(), &mut rng).expect("lp");
        assert!(rand_out.metrics.reliability >= base - 1e-12);
    }
}

#[test]
fn all_algorithms_stop_at_expectation_when_reachable() {
    // Plenty of capacity: everyone should reach (and barely exceed) rho.
    let cfg = WorkloadConfig {
        nodes: 40,
        sfc_len_range: (3, 4),
        residual_fraction: 1.0,
        expectation: 0.99,
        ..Default::default()
    };
    let mut reached = 0;
    for seed in 0..10 {
        let inst = scenario_instance(seed, &cfg);
        let exact = ilp::solve(&inst, &Default::default()).expect("ilp");
        let heur = heuristic::solve(&inst, &Default::default());
        if exact.metrics.met_expectation {
            reached += 1;
            // With trim semantics, neither algorithm should wildly overshoot:
            // removing any one secondary would drop below rho. We check a
            // loose bound: reliability < 1 - (1 - rho)/50.
            assert!(exact.metrics.reliability < 1.0 - (1.0 - inst.expectation) / 50.0);
        }
        if heur.metrics.met_expectation && exact.metrics.met_expectation {
            // Both met: achieved reliabilities differ by little.
            assert!((heur.metrics.reliability - exact.metrics.reliability).abs() < 0.02);
        }
    }
    assert!(reached >= 8, "abundant capacity should almost always reach rho ({reached}/10)");
}

#[test]
fn exact_solver_matches_exhaustive_search_on_tiny_scenarios() {
    // Tiny networks so exhaustive enumeration over per-function counts works.
    let cfg = WorkloadConfig {
        nodes: 12,
        cloudlet_fraction: 0.25,
        sfc_len_range: (2, 3),
        capacity_range: (500.0, 900.0),
        residual_fraction: 0.5,
        expectation: 0.999999, // effectively "maximize"
        ..Default::default()
    };
    for seed in 0..12 {
        let inst = scenario_instance(seed, &cfg);
        let exact = ilp::solve(&inst, &uncapped_ilp()).expect("ilp");
        let brute = brute_force_best(&inst);
        assert!(
            (exact.metrics.reliability - brute).abs() < 1e-9,
            "seed {seed}: ilp {} vs brute {}",
            exact.metrics.reliability,
            brute
        );
    }
}

/// Exhaustive search over all feasible per-(function, bin) count vectors.
fn brute_force_best(inst: &AugmentationInstance) -> f64 {
    fn recurse(
        inst: &AugmentationInstance,
        func: usize,
        residual: &mut Vec<f64>,
        counts: &mut Vec<usize>,
        best: &mut f64,
    ) {
        if func == inst.functions.len() {
            let rels: Vec<f64> = inst.functions.iter().map(|f| f.reliability).collect();
            let rel = mec_sfc_reliability::relaug::reliability::chain_reliability(&rels, counts);
            if rel > *best {
                *best = rel;
            }
            return;
        }
        // Enumerate allocations of function `func` across its eligible bins.
        fn alloc(
            inst: &AugmentationInstance,
            func: usize,
            bin_pos: usize,
            residual: &mut Vec<f64>,
            counts: &mut Vec<usize>,
            best: &mut f64,
        ) {
            if bin_pos == inst.functions[func].eligible_bins.len() {
                recurse(inst, func + 1, residual, counts, best);
                return;
            }
            let b = inst.functions[func].eligible_bins[bin_pos];
            let demand = inst.functions[func].demand;
            let max_here = (residual[b] / demand).floor() as usize;
            for take in 0..=max_here.min(8) {
                residual[b] -= demand * take as f64;
                counts[func] += take;
                alloc(inst, func, bin_pos + 1, residual, counts, best);
                counts[func] -= take;
                residual[b] += demand * take as f64;
            }
        }
        alloc(inst, func, 0, residual, counts, best);
    }
    let mut residual: Vec<f64> = inst.bins.iter().map(|b| b.residual).collect();
    let mut counts = vec![0usize; inst.functions.len()];
    let mut best = inst.base_reliability();
    recurse(inst, 0, &mut residual, &mut counts, &mut best);
    best
}

#[test]
fn node_limited_solver_still_returns_incumbent() {
    let inst = scenario_instance(99, &WorkloadConfig::default());
    let cfg =
        IlpConfig { bnb: BnbConfig { max_nodes: 3, ..Default::default() }, ..Default::default() };
    // With the greedy warm start an incumbent always exists, so a tiny node
    // budget degrades quality but never errors.
    let out = ilp::solve(&inst, &cfg).expect("incumbent fallback");
    assert!(out.augmentation.is_capacity_feasible(&inst));
}

#[test]
fn deterministic_across_runs() {
    let cfg = small_cfg();
    let run = |seed| {
        let inst = scenario_instance(seed, &cfg);
        let e = ilp::solve(&inst, &Default::default()).unwrap().metrics.reliability;
        let h = heuristic::solve(&inst, &Default::default()).metrics.reliability;
        let mut rng = StdRng::seed_from_u64(seed);
        let r =
            randomized::solve(&inst, &Default::default(), &mut rng).unwrap().metrics.reliability;
        (e, h, r)
    };
    assert_eq!(run(7), run(7));
    assert_eq!(run(8), run(8));
}

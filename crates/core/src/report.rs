//! Human-readable solution reports: where every secondary went, what each
//! function's reliability became, and how loaded each cloudlet ended up.

use std::fmt::Write as _;

use crate::instance::AugmentationInstance;
use crate::reliability;
use crate::solution::{Outcome, SolverInfo};

/// Render a placement report as plain text (fixed-width columns).
pub fn render(inst: &AugmentationInstance, outcome: &Outcome) -> String {
    let mut out = String::new();
    let m = &outcome.metrics;
    let _ = writeln!(
        out,
        "request reliability: {:.6} (base {:.6}, expectation {:.6}, met: {})",
        m.reliability,
        m.base_reliability,
        inst.expectation,
        if m.met_expectation { "yes" } else { "no" }
    );
    let _ = writeln!(
        out,
        "secondaries placed: {}   paper cost c(S): {:.4}   runtime: {:?}",
        m.total_secondaries, m.paper_cost, outcome.runtime
    );
    let _ = writeln!(out, "solver effort: {}", solver_effort(outcome));
    if !outcome.telemetry.is_empty() {
        for (name, secs) in &outcome.telemetry.timings_s {
            let _ = writeln!(out, "  time {name}: {:.3} ms", secs * 1e3);
        }
    }
    render_placements(inst, outcome, &mut out);
    out
}

/// One-line solver-effort summary for an outcome (always available — it is
/// derived from `SolverInfo`, not from the optional telemetry).
pub fn solver_effort(outcome: &Outcome) -> String {
    match outcome.solver {
        SolverInfo::Ilp {
            nodes,
            lp_iterations,
            incumbent_updates,
            pruned_bound,
            pruned_infeasible,
        } => format!(
            "ILP — {nodes} B&B nodes, {lp_iterations} LP iterations, \
             {incumbent_updates} incumbent updates, pruned {pruned_bound} by bound / \
             {pruned_infeasible} infeasible"
        ),
        SolverInfo::Randomized { lp_iterations, rounds, repairs } => format!(
            "Randomized — {rounds} rounding draws, {lp_iterations} LP iterations, \
             {repairs} repair removals"
        ),
        SolverInfo::Heuristic { matching_rounds } => {
            let gain = outcome.metrics.reliability - outcome.metrics.base_reliability;
            format!(
                "Heuristic — {matching_rounds} matching rounds, {:.6} reliability gain/round",
                gain / matching_rounds.max(1) as f64
            )
        }
        SolverInfo::Greedy { steps } => format!("Greedy — {steps} steps"),
    }
}

/// Render the placement body (everything below the headline lines).
fn render_placements(inst: &AugmentationInstance, outcome: &Outcome, out: &mut String) {
    let _ = writeln!(out, "\nper-function placement:");
    let counts = outcome.augmentation.counts();
    for (i, f) in inst.functions.iter().enumerate() {
        let total = f.existing_backups + counts[i];
        let hosts: Vec<String> = outcome
            .augmentation
            .placements_of(i)
            .iter()
            .map(|&(b, c)| format!("{}x{}", inst.bins[b].node, c))
            .collect();
        let _ = writeln!(
            out,
            "  f{i} @ {}: r={:.3} -> R={:.6}  new={} shared={}  hosts=[{}]",
            f.primary,
            f.reliability,
            reliability::function_reliability(f.reliability, total),
            counts[i],
            f.existing_backups,
            hosts.join(", ")
        );
    }

    let _ = writeln!(out, "\ncloudlet load:");
    let loads = outcome.augmentation.bin_loads(inst);
    for (b, bin) in inst.bins.iter().enumerate() {
        if loads[b] > 0.0 {
            let _ = writeln!(
                out,
                "  {}: {:.0} / {:.0} MHz ({:.0}%)",
                bin.node,
                loads[b],
                bin.residual,
                100.0 * loads[b] / bin.residual
            );
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic;
    use crate::instance::{Bin, FunctionSlot};
    use mecnet::graph::NodeId;
    use mecnet::vnf::VnfTypeId;

    #[test]
    fn report_contains_key_fields() {
        let inst = AugmentationInstance {
            functions: vec![FunctionSlot {
                vnf: VnfTypeId(0),
                demand: 100.0,
                reliability: 0.8,
                primary: NodeId(0),
                eligible_bins: vec![0],
                max_secondaries: 3,
                existing_backups: 1,
            }],
            bins: vec![Bin { node: NodeId(0), residual: 400.0 }],
            l: 1,
            expectation: 0.999,
        };
        let out = heuristic::solve(&inst, &Default::default());
        let text = render(&inst, &out);
        assert!(text.contains("request reliability"));
        assert!(text.contains("solver effort: Heuristic"));
        assert!(text.contains("matching rounds"));
        assert!(text.contains("per-function placement"));
        assert!(text.contains("shared=1"));
        assert!(text.contains("cloudlet load"));
        assert!(text.contains("v0"));
    }

    #[test]
    fn traced_report_includes_timing_lines() {
        let inst = AugmentationInstance {
            functions: vec![FunctionSlot {
                vnf: VnfTypeId(0),
                demand: 100.0,
                reliability: 0.8,
                primary: NodeId(0),
                eligible_bins: vec![0],
                max_secondaries: 3,
                existing_backups: 0,
            }],
            bins: vec![Bin { node: NodeId(0), residual: 400.0 }],
            l: 1,
            expectation: 0.999,
        };
        let mut rec = obs::Recorder::memory();
        let out = crate::ilp::solve_traced(&inst, &Default::default(), &mut rec).unwrap();
        let text = render(&inst, &out);
        assert!(text.contains("solver effort: ILP"));
        assert!(text.contains("B&B nodes"));
        assert!(text.contains("time ilp.component_solve"));
    }
}

//! Property tests on the augmentation algorithms over randomly generated
//! small instances: dominance, feasibility, and trim invariants must hold on
//! every input, not just the paper's workload.

use mecnet::graph::NodeId;
use mecnet::vnf::VnfTypeId;
use proptest::prelude::*;
use relaug::heuristic::{HeuristicConfig, StopRule};
use relaug::ilp::IlpConfig;
use relaug::instance::{AugmentationInstance, Bin, FunctionSlot};
use relaug::{greedy, heuristic, ilp, randomized};

/// Strategy: random small instances with consistent eligibility and K_i.
fn arb_instance() -> impl Strategy<Value = AugmentationInstance> {
    let bins = proptest::collection::vec(100.0f64..900.0, 1..=4);
    let funcs = proptest::collection::vec((50.0f64..350.0, 0.55f64..0.95), 1..=5);
    (bins, funcs, 0.9f64..0.999999).prop_map(|(residuals, funcs, expectation)| {
        let bins: Vec<Bin> = residuals
            .iter()
            .enumerate()
            .map(|(i, &r)| Bin { node: NodeId(i), residual: r })
            .collect();
        let functions: Vec<FunctionSlot> = funcs
            .iter()
            .enumerate()
            .map(|(i, &(demand, reliability))| {
                // Eligibility: a deterministic pseudo-random subset.
                let eligible: Vec<usize> = (0..bins.len())
                    .filter(|&b| (i + b) % 3 != 0 || b == i % bins.len())
                    .filter(|&b| bins[b].residual >= demand)
                    .collect();
                let max_secondaries =
                    eligible.iter().map(|&b| (bins[b].residual / demand).floor() as usize).sum();
                FunctionSlot {
                    vnf: VnfTypeId(i),
                    demand,
                    reliability,
                    primary: NodeId(0),
                    eligible_bins: eligible,
                    max_secondaries,
                    existing_backups: 0,
                }
            })
            .collect();
        AugmentationInstance { functions, bins, l: 1, expectation }
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn exact_dominates_heuristic_and_greedy(inst in arb_instance()) {
        // Compare in the regime above solver precision: cap items whose
        // marginal gain is below 1e-6 (the simplex reduced-cost tolerance is
        // 1e-9, so sub-1e-9 gains are legitimately left on the table), and
        // tighten the B&B gap so "exact" really is exact at that scale.
        let mut cfg = IlpConfig {
            stop_at_expectation: false,
            gain_floor: 1e-6,
            ..Default::default()
        };
        cfg.bnb.gap_tol = 1e-9;
        let exact = ilp::solve(&inst, &cfg).unwrap();
        let heur = heuristic::solve(
            &inst,
            &HeuristicConfig { stop: StopRule::Exhaust, gain_floor: 1e-6, ..Default::default() },
        );
        let greed = greedy::solve(&inst, &Default::default());
        prop_assert!(heur.metrics.reliability <= exact.metrics.reliability * (1.0 + 1e-7) + 1e-9,
            "heuristic {} beat exact {}", heur.metrics.reliability, exact.metrics.reliability);
        // Greedy stops at the expectation and applies no gain floor, so it
        // may pack sub-1e-6-gain slots the floored ILP skips; allow that
        // sliver (<= ~50 slots x 1e-6 in log space).
        if !greed.metrics.met_expectation {
            prop_assert!(
                greed.metrics.reliability <= exact.metrics.reliability * (1.0 + 1e-4) + 1e-9
            );
        }
    }

    #[test]
    fn feasibility_invariants(inst in arb_instance()) {
        let exact = ilp::solve(&inst, &Default::default()).unwrap();
        let heur = heuristic::solve(&inst, &Default::default());
        let greed = greedy::solve(&inst, &Default::default());
        for out in [&exact, &heur, &greed] {
            prop_assert!(out.augmentation.is_capacity_feasible(&inst));
            prop_assert!(out.augmentation.respects_locality(&inst));
            prop_assert!(out.metrics.reliability >= inst.base_reliability() - 1e-12);
            prop_assert!(out.metrics.reliability <= 1.0 + 1e-12);
        }
    }

    #[test]
    fn randomized_respects_locality_and_counts(inst in arb_instance(), seed in 0u64..1000) {
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(seed);
        let out = randomized::solve(&inst, &Default::default(), &mut rng).unwrap();
        prop_assert!(out.augmentation.respects_locality(&inst));
        // Counts can never exceed the per-function item cap.
        for (i, &m) in out.augmentation.counts().iter().enumerate() {
            prop_assert!(m <= inst.functions[i].max_secondaries);
        }
    }

    #[test]
    fn trim_preserves_expectation_or_is_noop(inst in arb_instance()) {
        // Build a maximal feasible augmentation greedily, then trim.
        let full = heuristic::solve(
            &inst,
            &HeuristicConfig { stop: StopRule::Exhaust, gain_floor: 1e-12, ..Default::default() },
        );
        let mut aug = full.augmentation.clone();
        let before = aug.reliability(&inst);
        let removed = aug.trim_to_expectation(&inst);
        let after = aug.reliability(&inst);
        if before >= inst.expectation {
            prop_assert!(after >= inst.expectation - 1e-12,
                "trim dropped below expectation: {after} < {}", inst.expectation);
        } else {
            prop_assert_eq!(removed, 0, "nothing to trim below expectation");
            prop_assert!((after - before).abs() < 1e-12);
        }
        prop_assert!(aug.is_capacity_feasible(&inst));
    }

    #[test]
    fn monte_carlo_validates_analytic_reliability(inst in arb_instance(), seed in 0u64..100) {
        use rand::{rngs::StdRng, SeedableRng};
        // Solve with the heuristic, then failure-inject the placement.
        let out = heuristic::solve(&inst, &Default::default());
        let analytic = out.metrics.reliability;
        let mut rng = StdRng::seed_from_u64(seed);
        let report =
            relaug::montecarlo::simulate_failures(&inst, &out.augmentation, 20_000, &mut rng);
        let tol = 5.0 * report.survival_stderr().max(1e-3);
        prop_assert!((report.survival_rate - analytic).abs() < tol,
            "MC {} vs analytic {analytic} (tol {tol})", report.survival_rate);
    }

    #[test]
    fn stopped_algorithms_do_not_wildly_overshoot(inst in arb_instance()) {
        let heur = heuristic::solve(&inst, &Default::default());
        if heur.metrics.met_expectation && heur.metrics.total_secondaries > 0 {
            // Removing the cheapest remaining secondary must drop below rho
            // (minimal-overshoot property of the trim).
            let mut probe = heur.augmentation.clone();
            let more = probe.trim_to_expectation(&inst);
            prop_assert_eq!(more, 0, "trim left removable surplus");
        }
    }
}

//! Sparse revised simplex over the bounded-variable form of
//! [`SparseForm`](crate::standard_form::SparseForm).
//!
//! The solver keeps the basis as an LU factorization (dense, row-pivoted —
//! the instances here have at most a few hundred rows) plus a product-form
//! eta file that absorbs pivots between periodic refactorizations. Variable
//! bounds live in the variable file: a nonbasic column sits at its lower or
//! upper bound (or at zero when free), so binary bounds never become rows
//! and branch-and-bound bound changes leave the matrix untouched.
//!
//! Three entry points:
//!
//! * [`solve_lp`] / [`solve_lp_with_bounds`] — cold two-phase primal solve
//!   (composite phase 1 minimizing the sum of bound infeasibilities, then
//!   Dantzig pricing with Bland's rule after a degenerate streak).
//! * [`solve_lp_warm`] — restart from the basis cached in an
//!   [`LpWorkspace`]. After a bound change the parent basis stays *dual*
//!   feasible, so a handful of dual-simplex pivots reach the child optimum;
//!   any numerical trouble falls back to the cold path. This is what makes
//!   warm-started branch-and-bound node re-solves cheap.
//!
//! All solver state (basis, statuses, LU, eta file, pricing buffers) lives
//! in the caller-owned [`LpWorkspace`], extending the zero-alloc scratch
//! discipline to the LP path.

use std::mem;

use crate::error::SolverError;
use crate::problem::{Model, Relation};
use crate::solution::{LpSolution, LpStatus};
use crate::standard_form::SparseForm;
use crate::{COST_TOL, FEAS_TOL};

/// Degenerate-pivot streak after which Bland's rule is engaged.
const BLAND_TRIGGER: usize = 64;
/// Pivots between basis refactorizations (eta-file length cap).
const REFACTOR_EVERY: usize = 64;
/// Smallest pivot magnitude accepted by the ratio tests.
const PIVOT_TOL: f64 = 1e-8;
/// Dual-feasibility tolerance for accepting a warm-start basis.
const DUAL_FEAS_TOL: f64 = 1e-7;

/// Status of a column relative to the current basis.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum VStat {
    Basic,
    /// Nonbasic at its lower bound.
    Lower,
    /// Nonbasic at its upper bound.
    Upper,
    /// Nonbasic free column, pinned at zero.
    Free,
}

/// An immutable copy of a basis (columns + statuses) that can be restored
/// into an [`LpWorkspace`] later — branch and bound shares one snapshot per
/// parent node between both children via `Rc`.
#[derive(Debug, Clone)]
pub struct BasisSnapshot {
    key: (usize, usize),
    basis: Vec<usize>,
    vstat: Vec<VStat>,
}

/// Reusable revised-simplex state: the cached basis of the last optimal
/// solve plus every buffer the solver needs (LU factors, eta file, pricing
/// vectors). Reusing one workspace across solves avoids per-solve
/// allocation; reusing the *basis* (via [`solve_lp_warm`]) additionally
/// avoids most pivots when consecutive problems differ only in bounds.
#[derive(Debug, Clone, Default)]
pub struct LpWorkspace {
    /// `(nrows, ncols)` of the form the cached basis belongs to; `None`
    /// when the workspace holds no usable basis.
    key: Option<(usize, usize)>,
    basis: Vec<usize>,
    vstat: Vec<VStat>,
    /// Dense LU factors of the basis at the last refactorization, row-major
    /// `m x m`: unit-lower L below the diagonal, U on and above.
    lu: Vec<f64>,
    /// Row permutation of the LU: `perm[i]` is the original row stored at
    /// elimination position `i`.
    perm: Vec<usize>,
    // Product-form eta file: one entry per pivot since the last
    // refactorization (pivot row, pivot value, off-pivot nonzeros in CSR).
    eta_row: Vec<usize>,
    eta_piv: Vec<f64>,
    eta_ptr: Vec<usize>,
    eta_ind: Vec<usize>,
    eta_val: Vec<f64>,
    // Iteration buffers, lent to the solver for the duration of a solve.
    xb: Vec<f64>,
    alpha: Vec<f64>,
    rho: Vec<f64>,
    y: Vec<f64>,
    work: Vec<f64>,
}

impl LpWorkspace {
    pub fn new() -> LpWorkspace {
        LpWorkspace::default()
    }

    /// Whether the workspace holds a basis usable for a warm start.
    pub fn has_basis(&self) -> bool {
        self.key.is_some()
    }

    /// Forget the cached basis (buffer capacity is kept). After `clear`,
    /// [`solve_lp_warm`] behaves exactly like a cold solve — callers that
    /// must stay history-independent clear before the first solve.
    pub fn clear(&mut self) {
        self.key = None;
    }

    /// Copy out the current basis, if one is cached.
    pub fn snapshot(&self) -> Option<BasisSnapshot> {
        self.key.map(|key| BasisSnapshot {
            key,
            basis: self.basis.clone(),
            vstat: self.vstat.clone(),
        })
    }

    /// Load a snapshot back in, making it the warm-start candidate for the
    /// next [`solve_lp_warm`] on a same-shaped problem.
    pub fn restore(&mut self, snap: &BasisSnapshot) {
        self.key = Some(snap.key);
        self.basis.clone_from(&snap.basis);
        self.vstat.clone_from(&snap.vstat);
    }

    fn eta_len(&self) -> usize {
        self.eta_row.len()
    }

    /// Refactorize: dense LU with partial pivoting of the current basis
    /// columns; clears the eta file. `Err(k)` reports the elimination step
    /// at which the basis turned out (numerically) singular — `perm[k..]`
    /// are the rows not yet pivoted on at that point.
    fn lu_factor(&mut self, f: &SparseForm) -> Result<(), usize> {
        let m = self.basis.len();
        self.lu.clear();
        self.lu.resize(m * m, 0.0);
        self.perm.clear();
        self.perm.extend(0..m);
        self.eta_row.clear();
        self.eta_piv.clear();
        self.eta_ptr.clear();
        self.eta_ptr.push(0);
        self.eta_ind.clear();
        self.eta_val.clear();
        for (k, &j) in self.basis.iter().enumerate() {
            let (rows, vals) = f.col(j);
            for (&i, &v) in rows.iter().zip(vals) {
                self.lu[i * m + k] = v;
            }
        }
        for k in 0..m {
            let mut p = k;
            let mut best = self.lu[k * m + k].abs();
            for i in (k + 1)..m {
                let a = self.lu[i * m + k].abs();
                if a > best {
                    best = a;
                    p = i;
                }
            }
            if best < 1e-11 {
                return Err(k);
            }
            if p != k {
                for j in 0..m {
                    self.lu.swap(p * m + j, k * m + j);
                }
                self.perm.swap(p, k);
            }
            let piv = self.lu[k * m + k];
            for i in (k + 1)..m {
                let factor = self.lu[i * m + k] / piv;
                self.lu[i * m + k] = factor;
                if factor != 0.0 {
                    for j in (k + 1)..m {
                        self.lu[i * m + j] -= factor * self.lu[k * m + j];
                    }
                }
            }
        }
        Ok(())
    }

    /// Factorize the current basis, swapping out linearly dependent columns
    /// for slack columns of not-yet-eliminated rows when the LU breaks
    /// down. Returns `None` if the basis could not be repaired, otherwise
    /// `Some(repaired)` — whether any column was replaced. Repair keeps the
    /// basis nonsingular but may lose primal feasibility (the ejected
    /// variable snaps to a bound), so callers must recheck.
    fn factor_with_repair(&mut self, f: &SparseForm) -> Option<bool> {
        let mut repaired = false;
        for _ in 0..=f.nrows {
            match self.lu_factor(f) {
                Ok(()) => return Some(repaired),
                Err(k) => {
                    // `basis[k]` is (numerically) dependent on the columns
                    // already eliminated. Swap in the slack of a row not
                    // yet pivoted on: its unit column is independent of
                    // every already-factored column by construction.
                    let slack = (k..f.nrows)
                        .map(|i| f.nstruct + self.perm[i])
                        .find(|&s| self.vstat[s] != VStat::Basic)?;
                    let old = self.basis[k];
                    self.vstat[old] = initial_status(f.lower[old], f.upper[old]);
                    self.vstat[slack] = VStat::Basic;
                    self.basis[k] = slack;
                    repaired = true;
                }
            }
        }
        None
    }

    /// Record the pivot `(row r, column alpha)` in the eta file; `alpha`
    /// is the FTRANed entering column with respect to the *old* basis.
    fn push_eta(&mut self, r: usize, alpha: &[f64]) {
        self.eta_row.push(r);
        self.eta_piv.push(alpha[r]);
        for (i, &v) in alpha.iter().enumerate() {
            if i != r && v.abs() > 1e-12 {
                self.eta_ind.push(i);
                self.eta_val.push(v);
            }
        }
        self.eta_ptr.push(self.eta_ind.len());
    }

    /// `x <- B^{-1} x`: LU solve, then the eta file oldest-first.
    #[allow(clippy::needless_range_loop)] // triangular solves couple work[k] to lu[i*m+k]
    fn ftran(&self, x: &mut [f64], work: &mut [f64]) {
        let m = x.len();
        for i in 0..m {
            work[i] = x[self.perm[i]];
        }
        for i in 0..m {
            let mut s = work[i];
            for k in 0..i {
                s -= self.lu[i * m + k] * work[k];
            }
            work[i] = s;
        }
        for i in (0..m).rev() {
            let mut s = work[i];
            for k in (i + 1)..m {
                s -= self.lu[i * m + k] * work[k];
            }
            work[i] = s / self.lu[i * m + i];
        }
        x.copy_from_slice(&work[..m]);
        for e in 0..self.eta_len() {
            let r = self.eta_row[e];
            let t = x[r] / self.eta_piv[e];
            for idx in self.eta_ptr[e]..self.eta_ptr[e + 1] {
                x[self.eta_ind[idx]] -= self.eta_val[idx] * t;
            }
            x[r] = t;
        }
    }

    /// `y <- B^{-T} y`: the eta file newest-first, then the LU transpose.
    #[allow(clippy::needless_range_loop)] // triangular solves couple work[k] to lu[k*m+i]
    fn btran(&self, y: &mut [f64], work: &mut [f64]) {
        let m = y.len();
        for e in (0..self.eta_len()).rev() {
            let r = self.eta_row[e];
            let mut s = y[r];
            for idx in self.eta_ptr[e]..self.eta_ptr[e + 1] {
                s -= self.eta_val[idx] * y[self.eta_ind[idx]];
            }
            y[r] = s / self.eta_piv[e];
        }
        for i in 0..m {
            let mut s = y[i];
            for k in 0..i {
                s -= self.lu[k * m + i] * work[k];
            }
            work[i] = s / self.lu[i * m + i];
        }
        for i in (0..m).rev() {
            let mut s = work[i];
            for k in (i + 1)..m {
                s -= self.lu[k * m + i] * work[k];
            }
            work[i] = s;
        }
        for i in 0..m {
            y[self.perm[i]] = work[i];
        }
    }
}

/// Solve the continuous relaxation of `model` (integrality is ignored).
pub fn solve_lp(model: &Model) -> Result<LpSolution, SolverError> {
    model.validate()?;
    solve_lp_with_bounds(model, None)
}

/// Solve the LP relaxation with per-variable bound overrides (used by branch
/// and bound). `overrides[i] = Some((lo, hi))` intersects the model bounds.
pub fn solve_lp_with_bounds(
    model: &Model,
    overrides: Option<&[Option<(f64, f64)>]>,
) -> Result<LpSolution, SolverError> {
    solve_core(model, overrides, &mut LpWorkspace::new(), false)
}

/// Solve, warm-starting from the basis cached in `ws` when its shape matches
/// and it is still dual feasible; otherwise a cold solve. On an optimal
/// finish the workspace caches the new basis for the next call. Does not
/// call `model.validate()` (mirrors [`solve_lp_with_bounds`]).
pub fn solve_lp_warm(
    model: &Model,
    overrides: Option<&[Option<(f64, f64)>]>,
    ws: &mut LpWorkspace,
) -> Result<LpSolution, SolverError> {
    solve_core(model, overrides, ws, true)
}

fn solve_core(
    model: &Model,
    overrides: Option<&[Option<(f64, f64)>]>,
    ws: &mut LpWorkspace,
    warm: bool,
) -> Result<LpSolution, SolverError> {
    let Some(f) = SparseForm::build(model, overrides) else {
        ws.key = None;
        return Ok(LpSolution::infeasible(0));
    };
    if f.nrows == 0 {
        ws.key = None;
        return Ok(no_rows_solve(&f));
    }
    let dims = (f.nrows, f.ncols);
    let try_warm = warm && ws.key == Some(dims);
    let mut s = Rsx::new(&f, ws);
    let mut status = if try_warm { s.warm_solve() } else { None };
    if status.is_none() {
        s.reset_cold();
        status = Some(s.primal()?);
    }
    Ok(s.into_solution(status.unwrap(), dims))
}

/// No constraints at all: every variable sits at its objective-best bound;
/// a variable pushed toward a missing bound makes the problem unbounded.
fn no_rows_solve(f: &SparseForm) -> LpSolution {
    let mut x = vec![0.0; f.nstruct];
    for (j, xj) in x.iter_mut().enumerate() {
        let c = f.cost[j];
        let v = if c > COST_TOL {
            if !f.lower[j].is_finite() {
                return LpSolution::unbounded(0);
            }
            f.lower[j]
        } else if c < -COST_TOL {
            if !f.upper[j].is_finite() {
                return LpSolution::unbounded(0);
            }
            f.upper[j]
        } else if f.lower[j].is_finite() {
            f.lower[j]
        } else if f.upper[j].is_finite() {
            f.upper[j]
        } else {
            0.0
        };
        *xj = v;
    }
    let obj_min: f64 = f.cost[..f.nstruct].iter().zip(&x).map(|(c, v)| c * v).sum();
    LpSolution {
        status: LpStatus::Optimal,
        objective: if f.maximize { -obj_min } else { obj_min },
        x,
        iterations: 0,
        duals: Vec::new(),
    }
}

enum PhaseEnd {
    /// No improving column: optimal for this phase's objective.
    Done,
    /// Improving direction with no blocking bound (phase 2: unbounded).
    NoBlock,
    /// A basis repair during refactorization knocked the phase-2 iterate
    /// out of the feasible box; the caller must re-enter phase 1.
    LostFeasibility,
}

enum DualEnd {
    Optimal,
    PrimalInfeasible,
    /// Pivot cap hit or numerics broke down: fall back to a cold solve.
    Trouble,
}

/// One revised-simplex solve in flight. Borrows the form and workspace;
/// iteration buffers are taken out of the workspace on entry and returned
/// by [`Rsx::into_solution`].
struct Rsx<'a> {
    f: &'a SparseForm,
    ws: &'a mut LpWorkspace,
    xb: Vec<f64>,
    alpha: Vec<f64>,
    rho: Vec<f64>,
    y: Vec<f64>,
    work: Vec<f64>,
    iterations: usize,
    max_iterations: usize,
}

impl<'a> Rsx<'a> {
    fn new(f: &'a SparseForm, ws: &'a mut LpWorkspace) -> Rsx<'a> {
        let m = f.nrows;
        let grab = |v: &mut Vec<f64>| {
            let mut b = mem::take(v);
            b.clear();
            b.resize(m, 0.0);
            b
        };
        let xb = grab(&mut ws.xb);
        let alpha = grab(&mut ws.alpha);
        let rho = grab(&mut ws.rho);
        let y = grab(&mut ws.y);
        let work = grab(&mut ws.work);
        let max_iterations = 20_000 + 200 * (m + f.ncols);
        Rsx { f, ws, xb, alpha, rho, y, work, iterations: 0, max_iterations }
    }

    #[inline]
    fn nonbasic_value(&self, j: usize) -> f64 {
        match self.ws.vstat[j] {
            VStat::Lower => self.f.lower[j],
            VStat::Upper => self.f.upper[j],
            VStat::Free => 0.0,
            VStat::Basic => unreachable!("nonbasic_value on basic column"),
        }
    }

    #[inline]
    fn col_dot(&self, j: usize, v: &[f64]) -> f64 {
        let (rows, vals) = self.f.col(j);
        rows.iter().zip(vals).map(|(&i, &a)| a * v[i]).sum()
    }

    /// All-slack basis, nonbasics at their natural bound.
    fn reset_cold(&mut self) {
        let f = self.f;
        self.ws.key = None;
        self.ws.basis.clear();
        self.ws.basis.extend(f.nstruct..f.ncols);
        self.ws.vstat.clear();
        for j in 0..f.nstruct {
            self.ws.vstat.push(initial_status(f.lower[j], f.upper[j]));
        }
        for _ in 0..f.nrows {
            self.ws.vstat.push(VStat::Basic);
        }
        let ok = self.ws.lu_factor(f).is_ok();
        debug_assert!(ok, "all-slack basis is the identity");
        self.compute_xb();
    }

    /// Recompute `x_B = B^{-1}(rhs - A_N x_N)` from the current
    /// factorization (called right after each refactorization).
    fn compute_xb(&mut self) {
        self.alpha.copy_from_slice(&self.f.rhs);
        for j in 0..self.f.ncols {
            if self.ws.vstat[j] == VStat::Basic {
                continue;
            }
            let v = self.nonbasic_value(j);
            if v != 0.0 {
                let (rows, vals) = self.f.col(j);
                for (&i, &a) in rows.iter().zip(vals) {
                    self.alpha[i] -= a * v;
                }
            }
        }
        self.ws.ftran(&mut self.alpha, &mut self.work);
        self.xb.copy_from_slice(&self.alpha);
    }

    /// Refactorize (with basis repair) and recompute `x_B`. `None` means an
    /// unrecoverably singular basis; `Some(repaired)` reports whether
    /// repair replaced columns — which can silently drop primal
    /// feasibility, so callers that need it must recheck.
    fn refactor(&mut self) -> Option<bool> {
        let repaired = self.ws.factor_with_repair(self.f)?;
        self.compute_xb();
        Some(repaired)
    }

    /// FTRAN column `q` into `alpha`.
    fn load_alpha(&mut self, q: usize) {
        self.alpha.fill(0.0);
        let (rows, vals) = self.f.col(q);
        for (&i, &a) in rows.iter().zip(vals) {
            self.alpha[i] = a;
        }
        self.ws.ftran(&mut self.alpha, &mut self.work);
    }

    /// `y = B^{-T} c_B` for the requested phase's basic costs. Phase 1 uses
    /// the composite infeasibility costs: -1 below the lower bound, +1 above
    /// the upper, 0 when feasible.
    fn btran_costs(&mut self, phase1: bool) {
        for (i, &b) in self.ws.basis.iter().enumerate() {
            self.y[i] = if phase1 {
                let v = self.xb[i];
                if v < self.f.lower[b] - FEAS_TOL {
                    -1.0
                } else if v > self.f.upper[b] + FEAS_TOL {
                    1.0
                } else {
                    0.0
                }
            } else {
                self.f.cost[b]
            };
        }
        self.ws.btran(&mut self.y, &mut self.work);
    }

    /// Total bound violation of the basic variables.
    fn infeasibility(&self) -> f64 {
        let mut total = 0.0;
        for (i, &b) in self.ws.basis.iter().enumerate() {
            let v = self.xb[i];
            total += (self.f.lower[b] - v).max(0.0) + (v - self.f.upper[b]).max(0.0);
        }
        total
    }

    /// Cold two-phase primal solve from the current (reset) basis. A basis
    /// repair during phase 2 can knock the iterate back out of the feasible
    /// box; `LostFeasibility` loops back into phase 1 (the shared iteration
    /// cap bounds the whole loop).
    fn primal(&mut self) -> Result<LpStatus, SolverError> {
        loop {
            if self.infeasibility() > FEAS_TOL {
                match self.phase_loop(true)? {
                    PhaseEnd::Done => {}
                    PhaseEnd::LostFeasibility => continue,
                    PhaseEnd::NoBlock => {
                        // The phase-1 objective is bounded below by zero; an
                        // unblocked direction can only be numerical breakdown.
                        return Err(SolverError::IterationLimit { iterations: self.iterations });
                    }
                }
                if self.infeasibility() > FEAS_TOL.max(1e-7) {
                    return Ok(LpStatus::Infeasible);
                }
            }
            match self.phase_loop(false)? {
                PhaseEnd::Done => return Ok(LpStatus::Optimal),
                PhaseEnd::NoBlock => return Ok(LpStatus::Unbounded),
                PhaseEnd::LostFeasibility => continue,
            }
        }
    }

    /// Primal pivots until no improving column (Done) or an unblocked
    /// improving direction (NoBlock). Dantzig pricing, switching to Bland's
    /// rule after a streak of degenerate steps; the ratio test handles
    /// bound flips (entering column hits its opposite bound first) and, in
    /// phase 1, blocks infeasible basics at the violated bound they are
    /// moving toward.
    fn phase_loop(&mut self, phase1: bool) -> Result<PhaseEnd, SolverError> {
        let m = self.f.nrows;
        let mut degenerate_streak = 0usize;
        loop {
            self.iterations += 1;
            if self.iterations > self.max_iterations {
                return Err(SolverError::IterationLimit { iterations: self.max_iterations });
            }
            self.btran_costs(phase1);
            let bland = degenerate_streak >= BLAND_TRIGGER;
            // Entering column: direction +1 leaves a lower bound, -1 an
            // upper bound.
            let mut enter: Option<(usize, f64)> = None;
            let mut best_mag = COST_TOL;
            for j in 0..self.f.ncols {
                if self.ws.vstat[j] == VStat::Basic || self.f.upper[j] - self.f.lower[j] <= 1e-12 {
                    continue;
                }
                let base = if phase1 { 0.0 } else { self.f.cost[j] };
                let d = base - self.col_dot(j, &self.y);
                let dir = match self.ws.vstat[j] {
                    VStat::Lower if d < -COST_TOL => 1.0,
                    VStat::Upper if d > COST_TOL => -1.0,
                    VStat::Free if d < -COST_TOL => 1.0,
                    VStat::Free if d > COST_TOL => -1.0,
                    _ => continue,
                };
                if bland {
                    enter = Some((j, dir));
                    break;
                }
                if d.abs() > best_mag {
                    best_mag = d.abs();
                    enter = Some((j, dir));
                }
            }
            let Some((q, dir)) = enter else {
                return Ok(PhaseEnd::Done);
            };
            self.load_alpha(q);
            // Ratio test. The entering column's own span seeds the budget
            // (a bound flip needs no pivot at all).
            let span = self.f.upper[q] - self.f.lower[q];
            let mut t_best = if span.is_finite() { span } else { f64::INFINITY };
            let mut leave: Option<(usize, bool)> = None; // (row, leaves at upper)
            let mut best_piv = 0.0f64;
            for i in 0..m {
                let a = dir * self.alpha[i]; // decrease rate of xb[i].. sign flipped below
                if a.abs() <= PIVOT_TOL {
                    continue;
                }
                let bcol = self.ws.basis[i];
                let (lo, hi) = (self.f.lower[bcol], self.f.upper[bcol]);
                let v = self.xb[i];
                // `a > 0` means xb[i] decreases as the entering moves.
                let (t, at_upper) = if phase1 && v < lo - FEAS_TOL {
                    // Infeasible below: blocks only when moving up, at lo.
                    if a < 0.0 {
                        ((lo - v) / -a, false)
                    } else {
                        continue;
                    }
                } else if phase1 && v > hi + FEAS_TOL {
                    // Infeasible above: blocks only when moving down, at hi.
                    if a > 0.0 {
                        ((v - hi) / a, true)
                    } else {
                        continue;
                    }
                } else if a > 0.0 {
                    if lo.is_finite() {
                        ((v - lo).max(0.0) / a, false)
                    } else {
                        continue;
                    }
                } else if hi.is_finite() {
                    ((hi - v).max(0.0) / -a, true)
                } else {
                    continue;
                };
                // Ties go to the largest |pivot| for numerical stability —
                // except under Bland's rule, where the lowest basis column
                // must win to preserve the termination guarantee. A tie
                // with the entering column's own span keeps the bound flip
                // (it costs no pivot).
                let better = match leave {
                    None => t < t_best - 1e-12,
                    Some((l, _)) => {
                        t < t_best - 1e-12
                            || (t < t_best + 1e-12
                                && if bland { bcol < self.ws.basis[l] } else { a.abs() > best_piv })
                    }
                };
                if better {
                    t_best = t;
                    best_piv = a.abs();
                    leave = Some((i, at_upper));
                }
            }
            match leave {
                None if t_best.is_finite() => {
                    // Bound flip: the entering column crosses to its other
                    // bound; basis and factorization are untouched.
                    if t_best > 0.0 {
                        for i in 0..m {
                            self.xb[i] -= dir * t_best * self.alpha[i];
                        }
                    }
                    self.ws.vstat[q] = match self.ws.vstat[q] {
                        VStat::Lower => VStat::Upper,
                        VStat::Upper => VStat::Lower,
                        s => s,
                    };
                }
                None => {
                    // An unblocked direction computed against a stale
                    // (eta-updated) factorization can be an artifact of
                    // accumulated drift in `xb`/`y`. Re-verify against a
                    // fresh factorization before believing it.
                    if self.ws.eta_len() > 0 {
                        match self.refactor() {
                            None => {
                                return Err(SolverError::IterationLimit {
                                    iterations: self.iterations,
                                });
                            }
                            Some(true) if !phase1 && self.infeasibility() > FEAS_TOL => {
                                return Ok(PhaseEnd::LostFeasibility);
                            }
                            _ => {}
                        }
                        continue;
                    }
                    return Ok(PhaseEnd::NoBlock);
                }
                Some((r, at_upper)) => {
                    let t = t_best;
                    let piv_mag = self.alpha[r].abs();
                    for i in 0..m {
                        self.xb[i] -= dir * t * self.alpha[i];
                    }
                    let entering_val = self.nonbasic_value(q) + dir * t;
                    let leaving = self.ws.basis[r];
                    self.ws.vstat[leaving] = if at_upper { VStat::Upper } else { VStat::Lower };
                    self.ws.vstat[q] = VStat::Basic;
                    self.ws.push_eta(r, &self.alpha);
                    self.ws.basis[r] = q;
                    self.xb[r] = entering_val;
                    // A tiny pivot poisons every later eta application, so
                    // it forces an early refactorization; otherwise stay on
                    // the fixed cadence.
                    if piv_mag < 1e-7 || self.ws.eta_len() >= REFACTOR_EVERY {
                        match self.refactor() {
                            None => {
                                return Err(SolverError::IterationLimit {
                                    iterations: self.iterations,
                                });
                            }
                            Some(true) if !phase1 && self.infeasibility() > FEAS_TOL => {
                                return Ok(PhaseEnd::LostFeasibility);
                            }
                            _ => {}
                        }
                    }
                }
            }
            if t_best <= 1e-12 {
                degenerate_streak += 1;
            } else {
                degenerate_streak = 0;
            }
        }
    }

    /// Warm-start pipeline: load the cached basis, verify it is still dual
    /// feasible, run the dual simplex, then a (normally zero-pivot) primal
    /// polish pass. `None` means "fall back to a cold solve".
    fn warm_solve(&mut self) -> Option<LpStatus> {
        if !self.load_warm() || !self.dual_feasible() {
            return None;
        }
        match self.dual() {
            DualEnd::PrimalInfeasible => Some(LpStatus::Infeasible),
            DualEnd::Trouble => None,
            DualEnd::Optimal => match self.phase_loop(false) {
                Ok(PhaseEnd::Done) => Some(LpStatus::Optimal),
                _ => None,
            },
        }
    }

    /// Re-adopt the basis stored in the workspace for the current form:
    /// structural sanity checks, nonbasic statuses snapped to bounds that
    /// still exist, refactorize, recompute `x_B`.
    fn load_warm(&mut self) -> bool {
        let f = self.f;
        if self.ws.basis.len() != f.nrows || self.ws.vstat.len() != f.ncols {
            return false;
        }
        for &b in &self.ws.basis {
            if b >= f.ncols || self.ws.vstat[b] != VStat::Basic {
                return false;
            }
        }
        if self.ws.vstat.iter().filter(|&&s| s == VStat::Basic).count() != f.nrows {
            return false;
        }
        for j in 0..f.ncols {
            if self.ws.vstat[j] == VStat::Basic {
                continue;
            }
            self.ws.vstat[j] = match (f.lower[j].is_finite(), f.upper[j].is_finite()) {
                (true, true) => {
                    if self.ws.vstat[j] == VStat::Upper {
                        VStat::Upper
                    } else {
                        VStat::Lower
                    }
                }
                (true, false) => VStat::Lower,
                (false, true) => VStat::Upper,
                (false, false) => VStat::Free,
            };
        }
        if self.ws.lu_factor(f).is_err() {
            return false;
        }
        self.compute_xb();
        true
    }

    /// Are the phase-2 reduced costs consistent with every nonbasic status?
    fn dual_feasible(&mut self) -> bool {
        self.btran_costs(false);
        for j in 0..self.f.ncols {
            if self.ws.vstat[j] == VStat::Basic || self.f.upper[j] - self.f.lower[j] <= 1e-12 {
                continue;
            }
            let d = self.f.cost[j] - self.col_dot(j, &self.y);
            let bad = match self.ws.vstat[j] {
                VStat::Lower => d < -DUAL_FEAS_TOL,
                VStat::Upper => d > DUAL_FEAS_TOL,
                VStat::Free => d.abs() > DUAL_FEAS_TOL,
                VStat::Basic => false,
            };
            if bad {
                return false;
            }
        }
        true
    }

    /// Bounded-variable dual simplex: repair primal feasibility while
    /// keeping dual feasibility. Leaving row = largest bound violation;
    /// entering column = dual ratio test over the BTRANed pivot row.
    fn dual(&mut self) -> DualEnd {
        let m = self.f.nrows;
        let pivot_cap = 500 + 10 * m;
        let mut pivots = 0usize;
        loop {
            self.iterations += 1;
            pivots += 1;
            if pivots > pivot_cap || self.iterations > self.max_iterations {
                return DualEnd::Trouble;
            }
            let mut leave: Option<(usize, bool)> = None; // (row, below lower)
            let mut best_viol = FEAS_TOL;
            for i in 0..m {
                let bcol = self.ws.basis[i];
                let v = self.xb[i];
                let below = self.f.lower[bcol] - v;
                let above = v - self.f.upper[bcol];
                let (viol, is_below) = if below > above { (below, true) } else { (above, false) };
                let better = viol > best_viol + 1e-12
                    || (viol > best_viol - 1e-12
                        && leave.is_some_and(|(l, _)| bcol < self.ws.basis[l]));
                if better {
                    best_viol = viol;
                    leave = Some((i, is_below));
                }
            }
            let Some((r, below)) = leave else {
                return DualEnd::Optimal;
            };
            // rho = B^{-T} e_r gives the pivot row of B^{-1}A.
            self.rho.fill(0.0);
            self.rho[r] = 1.0;
            self.ws.btran(&mut self.rho, &mut self.work);
            self.btran_costs(false);
            let mut enter: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for j in 0..self.f.ncols {
                if self.ws.vstat[j] == VStat::Basic || self.f.upper[j] - self.f.lower[j] <= 1e-12 {
                    continue;
                }
                let arj = self.col_dot(j, &self.rho);
                if arj.abs() <= PIVOT_TOL {
                    continue;
                }
                // The leaving variable moves toward its violated bound; the
                // entering column must move off its own bound in a direction
                // consistent with that.
                let ok = match (below, self.ws.vstat[j]) {
                    (true, VStat::Lower) => arj < 0.0,
                    (true, VStat::Upper) => arj > 0.0,
                    (false, VStat::Lower) => arj > 0.0,
                    (false, VStat::Upper) => arj < 0.0,
                    (_, VStat::Free) => true,
                    (_, VStat::Basic) => unreachable!(),
                };
                if !ok {
                    continue;
                }
                let d = self.f.cost[j] - self.col_dot(j, &self.y);
                let num = match self.ws.vstat[j] {
                    VStat::Lower => d.max(0.0),
                    VStat::Upper => (-d).max(0.0),
                    VStat::Free => d.abs(),
                    VStat::Basic => unreachable!(),
                };
                let ratio = num / arj.abs();
                if ratio < best_ratio - 1e-12 {
                    best_ratio = ratio;
                    enter = Some(j);
                }
            }
            let Some(q) = enter else {
                // No column can absorb the violation: primal infeasible.
                return DualEnd::PrimalInfeasible;
            };
            self.load_alpha(q);
            let arq = self.alpha[r];
            if arq.abs() <= PIVOT_TOL {
                return DualEnd::Trouble;
            }
            let bcol = self.ws.basis[r];
            let bound = if below { self.f.lower[bcol] } else { self.f.upper[bcol] };
            let step = (self.xb[r] - bound) / arq;
            for i in 0..m {
                self.xb[i] -= step * self.alpha[i];
            }
            let entering_val = self.nonbasic_value(q) + step;
            self.ws.vstat[bcol] = if below { VStat::Lower } else { VStat::Upper };
            self.ws.vstat[q] = VStat::Basic;
            self.ws.push_eta(r, &self.alpha);
            self.ws.basis[r] = q;
            self.xb[r] = entering_val;
            if arq.abs() < 1e-7 || self.ws.eta_len() >= REFACTOR_EVERY {
                match self.refactor() {
                    // A repair invalidates the dual-feasibility certificate
                    // the warm start rests on; so does failure. Both fall
                    // back to a cold solve.
                    Some(false) => {}
                    _ => return DualEnd::Trouble,
                }
            }
        }
    }

    /// Build the [`LpSolution`], cache the basis on optimality, and return
    /// the iteration buffers to the workspace.
    fn into_solution(mut self, status: LpStatus, dims: (usize, usize)) -> LpSolution {
        let out = match status {
            LpStatus::Optimal => {
                // Fresh factorization for the most accurate x_B and duals —
                // strict, no repair: repairing the optimal basis would
                // change the reported solution. On (rare) failure the
                // eta-updated iterate is reported as-is.
                if self.ws.lu_factor(self.f).is_ok() {
                    self.compute_xb();
                }
                let f = self.f;
                let n = f.nstruct;
                let mut x = vec![0.0; n];
                for (j, xj) in x.iter_mut().enumerate() {
                    if self.ws.vstat[j] != VStat::Basic {
                        *xj = self.nonbasic_value(j);
                    }
                }
                for (i, &b) in self.ws.basis.iter().enumerate() {
                    if b < n {
                        x[b] = self.xb[i].clamp(f.lower[b], f.upper[b]);
                    }
                }
                let obj_min: f64 = f.cost[..n].iter().zip(&x).map(|(c, v)| c * v).sum();
                self.btran_costs(false);
                let duals = f
                    .relations
                    .iter()
                    .enumerate()
                    .map(|(i, rel)| {
                        (*rel != Relation::Eq)
                            .then(|| if f.maximize { -self.y[i] } else { self.y[i] })
                    })
                    .collect();
                self.ws.key = Some(dims);
                LpSolution {
                    status: LpStatus::Optimal,
                    objective: if f.maximize { -obj_min } else { obj_min },
                    x,
                    iterations: self.iterations,
                    duals,
                }
            }
            LpStatus::Infeasible => {
                self.ws.key = None;
                LpSolution::infeasible(self.iterations)
            }
            LpStatus::Unbounded => {
                self.ws.key = None;
                LpSolution::unbounded(self.iterations)
            }
        };
        self.ws.xb = mem::take(&mut self.xb);
        self.ws.alpha = mem::take(&mut self.alpha);
        self.ws.rho = mem::take(&mut self.rho);
        self.ws.y = mem::take(&mut self.y);
        self.ws.work = mem::take(&mut self.work);
        out
    }
}

fn initial_status(lo: f64, hi: f64) -> VStat {
    match (lo.is_finite(), hi.is_finite()) {
        (true, _) => VStat::Lower,
        (false, true) => VStat::Upper,
        (false, false) => VStat::Free,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Model, Relation, Sense};

    fn assert_opt(m: &Model, expect_obj: f64, expect_x: Option<&[f64]>) {
        let sol = solve_lp(m).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal, "expected optimal");
        assert!(
            (sol.objective - expect_obj).abs() < 1e-6,
            "objective {} != {expect_obj}",
            sol.objective
        );
        if let Some(ex) = expect_x {
            for (a, b) in sol.x.iter().zip(ex) {
                assert!((a - b).abs() < 1e-6, "x = {:?}, expected {:?}", sol.x, ex);
            }
        }
        assert!(m.is_feasible(&sol.x, 1e-6));
    }

    #[test]
    fn textbook_max() {
        // max 3x + 2y s.t. x+y<=4, x+3y<=6 -> x=4, y=0, obj 12
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(0.0, f64::INFINITY, 3.0);
        let y = m.add_var(0.0, f64::INFINITY, 2.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
        m.add_constraint(vec![(x, 1.0), (y, 3.0)], Relation::Le, 6.0);
        assert_opt(&m, 12.0, Some(&[4.0, 0.0]));
    }

    #[test]
    fn needs_phase_one_ge_rows() {
        // min x + y s.t. x + 2y >= 4, 3x + y >= 6 -> intersection (1.6, 1.2), obj 2.8
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, f64::INFINITY, 1.0);
        let y = m.add_var(0.0, f64::INFINITY, 1.0);
        m.add_constraint(vec![(x, 1.0), (y, 2.0)], Relation::Ge, 4.0);
        m.add_constraint(vec![(x, 3.0), (y, 1.0)], Relation::Ge, 6.0);
        assert_opt(&m, 2.8, Some(&[1.6, 1.2]));
    }

    #[test]
    fn equality_rows() {
        // max x + 4y s.t. x + y = 3, x - y <= 1 -> x in [0..], best y as big as
        // possible: y = 3 - x, obj = x + 12 - 4x = 12 - 3x -> x = 0, y = 3.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(0.0, f64::INFINITY, 1.0);
        let y = m.add_var(0.0, f64::INFINITY, 4.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Eq, 3.0);
        m.add_constraint(vec![(x, 1.0), (y, -1.0)], Relation::Le, 1.0);
        assert_opt(&m, 12.0, Some(&[0.0, 3.0]));
    }

    #[test]
    fn detects_infeasible() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, f64::INFINITY, 1.0);
        m.add_constraint(vec![(x, 1.0)], Relation::Le, 1.0);
        m.add_constraint(vec![(x, 1.0)], Relation::Ge, 2.0);
        let sol = solve_lp(&m).unwrap();
        assert_eq!(sol.status, LpStatus::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(0.0, f64::INFINITY, 1.0);
        let y = m.add_var(0.0, f64::INFINITY, 0.0);
        m.add_constraint(vec![(x, 1.0), (y, -1.0)], Relation::Le, 1.0);
        let sol = solve_lp(&m).unwrap();
        assert_eq!(sol.status, LpStatus::Unbounded);
    }

    #[test]
    fn bounded_vars_no_constraints() {
        let mut m = Model::new(Sense::Maximize);
        let _x = m.add_var(0.0, 2.5, 4.0);
        let _y = m.add_var(1.0, 3.0, -1.0);
        assert_opt(&m, 9.0, Some(&[2.5, 1.0]));
    }

    #[test]
    fn no_rows_unbounded() {
        let mut m = Model::new(Sense::Maximize);
        let _x = m.add_var(0.0, f64::INFINITY, 1.0);
        let sol = solve_lp(&m).unwrap();
        assert_eq!(sol.status, LpStatus::Unbounded);
    }

    #[test]
    fn no_rows_trivial_optimum() {
        let mut m = Model::new(Sense::Minimize);
        let _x = m.add_var(0.0, f64::INFINITY, 3.0);
        let sol = solve_lp(&m).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 0.0).abs() < 1e-9);
    }

    #[test]
    fn free_variable_lp() {
        // min x s.t. x >= -5 (free variable, handled without splitting)
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(f64::NEG_INFINITY, f64::INFINITY, 1.0);
        m.add_constraint(vec![(x, 1.0)], Relation::Ge, -5.0);
        assert_opt(&m, -5.0, Some(&[-5.0]));
    }

    #[test]
    fn negative_rhs_flip() {
        // min x s.t. -x <= -3  (i.e. x >= 3)
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, f64::INFINITY, 1.0);
        m.add_constraint(vec![(x, -1.0)], Relation::Le, -3.0);
        assert_opt(&m, 3.0, Some(&[3.0]));
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degenerate instance (Beale-like structure); just verify
        // termination and optimality, not a specific vertex.
        let mut m = Model::new(Sense::Minimize);
        let x1 = m.add_var(0.0, f64::INFINITY, -0.75);
        let x2 = m.add_var(0.0, f64::INFINITY, 150.0);
        let x3 = m.add_var(0.0, f64::INFINITY, -0.02);
        let x4 = m.add_var(0.0, f64::INFINITY, 6.0);
        m.add_constraint(vec![(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)], Relation::Le, 0.0);
        m.add_constraint(vec![(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)], Relation::Le, 0.0);
        m.add_constraint(vec![(x3, 1.0)], Relation::Le, 1.0);
        let sol = solve_lp(&m).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - (-0.05)).abs() < 1e-6);
    }

    #[test]
    fn redundant_equality_rows() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(0.0, f64::INFINITY, 1.0);
        let y = m.add_var(0.0, f64::INFINITY, 1.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Eq, 2.0);
        m.add_constraint(vec![(x, 2.0), (y, 2.0)], Relation::Eq, 4.0);
        let sol = solve_lp(&m).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn fixed_vars_via_equal_bounds() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(2.0, 2.0, 5.0);
        let y = m.add_var(0.0, f64::INFINITY, 1.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 6.0);
        assert_opt(&m, 14.0, Some(&[2.0, 4.0]));
    }

    // ---- warm-start / dual simplex ----

    fn knapsackish() -> Model {
        // max 5a + 4b + 3c s.t. 2a + 3b + c <= 5, 4a + b + 2c <= 11,
        // 3a + 4b + 2c <= 8, all vars in [0, 10].
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_var(0.0, 10.0, 5.0);
        let b = m.add_var(0.0, 10.0, 4.0);
        let c = m.add_var(0.0, 10.0, 3.0);
        m.add_constraint(vec![(a, 2.0), (b, 3.0), (c, 1.0)], Relation::Le, 5.0);
        m.add_constraint(vec![(a, 4.0), (b, 1.0), (c, 2.0)], Relation::Le, 11.0);
        m.add_constraint(vec![(a, 3.0), (b, 4.0), (c, 2.0)], Relation::Le, 8.0);
        m
    }

    #[test]
    fn warm_restart_matches_cold_after_bound_change() {
        let m = knapsackish();
        let mut ws = LpWorkspace::new();
        let root = solve_lp_warm(&m, None, &mut ws).unwrap();
        assert_eq!(root.status, LpStatus::Optimal);
        assert!(ws.has_basis());
        // Tighten one variable's bounds (a branch-and-bound child) and
        // re-solve warm; must match a cold solve.
        let ovr = vec![Some((0.0, 1.0)), None, None];
        let warm = solve_lp_warm(&m, Some(&ovr), &mut ws).unwrap();
        let cold = solve_lp_with_bounds(&m, Some(&ovr)).unwrap();
        assert_eq!(warm.status, cold.status);
        assert!((warm.objective - cold.objective).abs() < 1e-9);
        for (a, b) in warm.x.iter().zip(&cold.x) {
            assert!((a - b).abs() < 1e-7);
        }
        // Warm re-solve should be cheaper than the cold two-phase run.
        assert!(warm.iterations <= cold.iterations);
    }

    #[test]
    fn warm_restart_detects_infeasible_child() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(0.0, 1.0, 1.0);
        let y = m.add_var(0.0, 1.0, 1.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Ge, 1.5);
        let mut ws = LpWorkspace::new();
        let root = solve_lp_warm(&m, None, &mut ws).unwrap();
        assert_eq!(root.status, LpStatus::Optimal);
        // Forcing both vars to 0 makes the >= row unsatisfiable.
        let ovr = vec![Some((0.0, 0.0)), Some((0.0, 0.0))];
        let warm = solve_lp_warm(&m, Some(&ovr), &mut ws).unwrap();
        assert_eq!(warm.status, LpStatus::Infeasible);
    }

    #[test]
    fn snapshot_restore_roundtrip() {
        let m = knapsackish();
        let mut ws = LpWorkspace::new();
        solve_lp_warm(&m, None, &mut ws).unwrap();
        let snap = ws.snapshot().expect("optimal solve caches a basis");
        ws.clear();
        assert!(!ws.has_basis());
        assert!(ws.snapshot().is_none());
        ws.restore(&snap);
        assert!(ws.has_basis());
        let warm = solve_lp_warm(&m, None, &mut ws).unwrap();
        let cold = solve_lp(&m).unwrap();
        assert!((warm.objective - cold.objective).abs() < 1e-9);
    }

    #[test]
    fn workspace_reuse_across_different_models_is_safe() {
        let mut ws = LpWorkspace::new();
        let m1 = knapsackish();
        let a = solve_lp_warm(&m1, None, &mut ws).unwrap();
        // Different shape: the stale basis must be ignored, not crash.
        let mut m2 = Model::new(Sense::Minimize);
        let x = m2.add_var(0.0, f64::INFINITY, 1.0);
        m2.add_constraint(vec![(x, 1.0)], Relation::Ge, 2.0);
        let b = solve_lp_warm(&m2, None, &mut ws).unwrap();
        assert_eq!(a.status, LpStatus::Optimal);
        assert_eq!(b.status, LpStatus::Optimal);
        assert!((b.objective - 2.0).abs() < 1e-9);
        // And back again.
        let c = solve_lp_warm(&m1, None, &mut ws).unwrap();
        assert!((c.objective - a.objective).abs() < 1e-9);
    }
}

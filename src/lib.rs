//! # mec-sfc-reliability
//!
//! Facade crate for the reproduction of *"Reliability Augmentation of Requests
//! with Service Function Chain Requirements in Mobile Edge-Cloud Networks"*
//! (Liang, Ma, Xu, Jia, Chau — ICPP 2020).
//!
//! This crate re-exports the workspace members so downstream users need a
//! single dependency:
//!
//! * [`relaug`] — the paper's contribution: the service reliability
//!   augmentation problem and its three algorithms (exact ILP, randomized
//!   LP-rounding, matching-based heuristic).
//! * [`mecnet`] — the mobile edge-cloud network substrate: topologies,
//!   cloudlets, VNF catalogs, SFC requests and primary-placement admission.
//! * [`milp`] — the LP/MILP solver the exact algorithm runs on.
//! * [`matching`] — min-cost maximum bipartite matching used by the heuristic.
//! * [`expkit`] — statistics and table utilities used by the experiment
//!   harness.
//! * [`obs`] — structured telemetry: recorders, solver-trace events and
//!   JSONL export consumed by the `*_traced` solver entry points.
//! * [`scen`] — the scenario generator: the topology zoo (SAGIN tiers,
//!   Barabási–Albert, fat-tree) and lazy million-request streams, both
//!   driven by a serde-able [`scen::ScenarioSpec`].
//!
//! See `examples/quickstart.rs` for a five-minute tour.

pub use expkit;
pub use matching;
pub use mecnet;
pub use milp;
pub use obs;
pub use relaug;
pub use scen;

/// Crate version of the facade (mirrors the workspace version).
pub const VERSION: &str = env!("CARGO_PKG_VERSION");

#[cfg(test)]
mod tests {
    #[test]
    fn version_is_nonempty() {
        assert!(!super::VERSION.is_empty());
    }
}

//! Property tests of the incremental ladder engine against the reference
//! solver: cold solves must reproduce [`matching::min_cost_max_matching`] on
//! the expanded edge list exactly (same pairs, bit-equal cost); warm solves
//! must keep cardinality and cost; the dominance certificate must reject
//! tiered/duplicate ladders.

use matching::{min_cost_max_matching, IncrementalMatcher, Matching};
use proptest::prelude::*;

/// One ladder instance. `funcs` is full-length and indexed by a stable
/// function id (like the heuristic's chain positions): emptied functions stay
/// in place as `(vec![], vec![])` and are skipped when feeding/expanding, so
/// the engine's warm carry — keyed by function id — stays correctly keyed as
/// the instance evolves.
#[derive(Debug, Clone)]
struct LadderInstance {
    n_bins: usize,
    /// Per function id: (usable bins in push order, ladder costs ascending).
    funcs: Vec<(Vec<usize>, Vec<f64>)>,
}

impl LadderInstance {
    fn live(&self) -> bool {
        self.funcs.iter().any(|(b, l)| !b.is_empty() && !l.is_empty())
    }

    /// Expand to the edge list the legacy builder would produce: items are
    /// function-major, and each item's edges enumerate its function's usable
    /// bins in order.
    fn expand(&self) -> (usize, Vec<(usize, usize, f64)>) {
        let mut edges = Vec::new();
        let mut right = 0usize;
        for (bins, ladder) in &self.funcs {
            if bins.is_empty() || ladder.is_empty() {
                continue;
            }
            for &c in ladder {
                for &b in bins {
                    edges.push((b, right, c));
                }
                right += 1;
            }
        }
        (right, edges)
    }

    fn feed(&self, inc: &mut IncrementalMatcher) {
        inc.begin_round();
        for (f, (bins, ladder)) in self.funcs.iter().enumerate() {
            if bins.is_empty() || ladder.is_empty() {
                continue;
            }
            inc.start_function(f);
            for &b in bins {
                inc.push_bin(b);
            }
            for &c in ladder {
                inc.push_cost(c);
            }
            inc.finish_function();
        }
    }

    /// Map each expanded right-item index back to its function id.
    fn func_of_items(&self) -> Vec<usize> {
        let mut out = Vec::new();
        for (f, (bins, ladder)) in self.funcs.iter().enumerate() {
            if bins.is_empty() || ladder.is_empty() {
                continue;
            }
            out.extend(std::iter::repeat_n(f, ladder.len()));
        }
        out
    }

    /// Evolve like a heuristic round commit: advance each ladder past its
    /// matched prefix and drop `drop` bins from the front of every list
    /// (keeping at least one bin so shrinkage, not starvation, is tested).
    fn evolve(&mut self, matching: &Matching, drop: usize) {
        let func_of = self.func_of_items();
        let mut matched_of = vec![0usize; self.funcs.len()];
        for &(_, r) in &matching.pairs {
            matched_of[func_of[r]] += 1;
        }
        for (f, (bins, ladder)) in self.funcs.iter_mut().enumerate() {
            if bins.is_empty() || ladder.is_empty() {
                continue;
            }
            ladder.drain(..matched_of[f]);
            bins.drain(..drop.min(bins.len() - 1));
        }
    }
}

fn arb_ladder_instance() -> impl Strategy<Value = LadderInstance> {
    (2usize..=6).prop_flat_map(|n_bins| {
        let func = (
            proptest::collection::vec(0..n_bins, 1..=n_bins),
            proptest::collection::vec(0.01f64..3.0, 1..=4),
            0.0f64..5.0,
        )
            .prop_map(|(mut bins, gaps, base)| {
                bins.sort_unstable();
                bins.dedup();
                let mut c = base;
                let ladder: Vec<f64> = gaps
                    .iter()
                    .map(|&g| {
                        c += g;
                        c
                    })
                    .collect();
                (bins, ladder)
            });
        (Just(n_bins), proptest::collection::vec(func, 1..=4))
            .prop_map(|(n_bins, funcs)| LadderInstance { n_bins, funcs })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(192))]

    /// Cold engine solves are trajectory-exact: identical pairs and bit-equal
    /// cost versus the reference solver on the expanded edge list.
    #[test]
    fn cold_engine_matches_reference_exactly(inst in arb_ladder_instance()) {
        let mut inc = IncrementalMatcher::new();
        inc.begin_request(inst.n_bins, inst.funcs.len());
        inst.feed(&mut inc);
        prop_assert!(inc.ladders_certified(1e-6), "generator must emit certified ladders");
        let mut got = Matching { pairs: Vec::new(), cost: 0.0 };
        inc.solve_into(false, &mut got);
        let (n_items, edges) = inst.expand();
        let want = min_cost_max_matching(inst.n_bins, n_items, &edges);
        prop_assert_eq!(&got.pairs, &want.pairs, "pairs diverge on {:?}", inst);
        prop_assert_eq!(got.cost.to_bits(), want.cost.to_bits(),
            "cost bits diverge: {} vs {} on {:?}", got.cost, want.cost, inst);
    }

    /// A reused engine stays exact across a randomized round sequence that
    /// mimics the heuristic's evolution: drop the matched prefix, shrink the
    /// bin lists, re-solve — every round must equal a fresh reference solve.
    #[test]
    fn cold_engine_round_sequence_matches_reference(
        inst in arb_ladder_instance(),
        drops in proptest::collection::vec(0usize..3, 1..=3),
    ) {
        let mut inc = IncrementalMatcher::new();
        inc.begin_request(inst.n_bins, inst.funcs.len());
        let mut cur = inst;
        let mut got = Matching { pairs: Vec::new(), cost: 0.0 };
        for &drop in &drops {
            if !cur.live() {
                break;
            }
            cur.feed(&mut inc);
            prop_assert!(inc.ladders_certified(1e-6));
            inc.solve_into(false, &mut got);
            let (n_items, edges) = cur.expand();
            let want = min_cost_max_matching(cur.n_bins, n_items, &edges);
            prop_assert_eq!(&got.pairs, &want.pairs, "pairs diverge on {:?}", cur);
            prop_assert_eq!(got.cost.to_bits(), want.cost.to_bits());
            let m = got.clone();
            cur.evolve(&m, drop);
        }
    }

    /// Warm solves on an evolving instance keep the reference cardinality and
    /// cost (the assignment itself may legitimately differ).
    #[test]
    fn warm_engine_keeps_cardinality_and_cost(
        inst in arb_ladder_instance(),
        drops in proptest::collection::vec(0usize..2, 2..=4),
    ) {
        let mut inc = IncrementalMatcher::new();
        inc.begin_request(inst.n_bins, inst.funcs.len());
        let mut cur = inst;
        let mut got = Matching { pairs: Vec::new(), cost: 0.0 };
        for &drop in &drops {
            if !cur.live() {
                break;
            }
            cur.feed(&mut inc);
            prop_assert!(inc.ladders_certified(1e-6));
            inc.solve_into(true, &mut got);
            let (n_items, edges) = cur.expand();
            let want = min_cost_max_matching(cur.n_bins, n_items, &edges);
            prop_assert_eq!(got.pairs.len(), want.pairs.len(),
                "warm cardinality diverges on {:?}", cur);
            prop_assert!((got.cost - want.cost).abs() <= 1e-6 * (1.0 + want.cost.abs()),
                "warm cost {} vs reference {} on {:?}", got.cost, want.cost, cur);
            let m = got.clone();
            cur.evolve(&m, drop);
        }
    }

    /// Duplicate or near-tied ladder steps must fail the certificate — these
    /// are exactly the instances where pruning could flip an eps-tie.
    #[test]
    fn certificate_rejects_tied_ladders(
        n_bins in 2usize..=4,
        c in 0.5f64..5.0,
        tie_gap in 0.0f64..5e-7,
    ) {
        let mut inc = IncrementalMatcher::new();
        inc.begin_request(n_bins, 1);
        inc.begin_round();
        inc.start_function(0);
        for b in 0..n_bins {
            inc.push_bin(b);
        }
        inc.push_cost(c);
        inc.push_cost(c + tie_gap);
        inc.finish_function();
        prop_assert!(!inc.ladders_certified(1e-6));
    }
}

//! Conversion of a [`Model`] into simplex standard form
//! `min c'x  s.t.  Ax = b, x >= 0, b >= 0`.
//!
//! The conversion handles:
//!
//! * maximization (objective negated, flagged so solutions are reported in the
//!   original sense),
//! * fixed variables (`lower == upper`): substituted out entirely,
//! * finite lower bounds: shifted to zero,
//! * `-inf < x <= u`: mirrored (`x = u - x'`),
//! * free variables: split into a difference of two non-negatives,
//! * finite upper bounds: an explicit `x' <= u - l` row,
//! * `<=` rows: slack column (usable as the initial basis when `rhs >= 0`),
//! * `>=` / `=` rows: left for the phase-1 artificials of the simplex.
//!
//! Branch and bound passes per-variable bound overrides so nodes never have to
//! clone and mutate the model itself.

use crate::problem::{Model, Relation, Sense};

/// How an original model variable is expressed in standard-form columns.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum VarMapping {
    /// The variable was fixed by its bounds; it has no column.
    Fixed(f64),
    /// `x = offset + column` (offset is the finite lower bound).
    Shifted { col: usize, offset: f64 },
    /// `x = offset - column` (mirrored around a finite upper bound).
    Mirrored { col: usize, offset: f64 },
    /// Free variable split as `x = pos - neg`.
    Split { pos: usize, neg: usize },
}

/// A program in standard form plus the bookkeeping needed to translate
/// solutions back to the original variable space.
#[derive(Debug, Clone)]
pub struct StandardForm {
    /// Dense row-major constraint matrix, `rows x cols`.
    pub a: Vec<Vec<f64>>,
    /// Right-hand sides, all non-negative.
    pub b: Vec<f64>,
    /// Minimization objective over the standard-form columns.
    pub c: Vec<f64>,
    /// Objective constant accumulated from shifts and fixed variables
    /// (already in minimization sense).
    pub c0: f64,
    /// Column that can serve as the initial basis for each row (`Some` for
    /// slack columns of `<=` rows), `None` where an artificial is needed.
    pub basis_hint: Vec<Option<usize>>,
    /// Per original variable, how to recover its value.
    pub var_map: Vec<VarMapping>,
    /// Whether the original model maximized (solutions must negate the
    /// standard-form objective back).
    pub maximize: bool,
    /// Number of structural columns (before slacks).
    pub structural_cols: usize,
    /// Per row: the slack/surplus column and its coefficient (`+1` for `<=`,
    /// `-1` for `>=` after rhs normalization); `None` for equality rows.
    pub row_slack: Vec<Option<(usize, f64)>>,
    /// Per row: whether rhs normalization multiplied the row by -1.
    pub row_flipped: Vec<bool>,
    /// How many leading rows correspond to model constraints (the remainder
    /// are synthetic upper-bound rows).
    pub num_model_rows: usize,
}

impl StandardForm {
    /// Build the standard form of `model`, optionally overriding variable
    /// bounds (used by branch and bound; `overrides[i] = Some((lo, hi))`).
    ///
    /// Returns `None` if some variable's effective bounds are inverted, which
    /// branch and bound treats as an infeasible node.
    pub fn build(model: &Model, overrides: Option<&[Option<(f64, f64)>]>) -> Option<StandardForm> {
        let n = model.num_vars();
        let mut var_map = Vec::with_capacity(n);
        let mut cols: usize = 0;
        // Effective bounds.
        let mut bounds = Vec::with_capacity(n);
        for i in 0..n {
            let (mut lo, mut hi) = model.vars[i].bounds();
            if let Some(ovr) = overrides {
                if let Some((l, h)) = ovr[i] {
                    lo = lo.max(l);
                    hi = hi.min(h);
                }
            }
            if lo > hi + 1e-12 {
                return None;
            }
            bounds.push((lo, hi.max(lo)));
        }

        // Assign columns.
        let mut upper_rows: Vec<(usize, f64)> = Vec::new(); // (col, ub) rows to add
        for (i, &(lo, hi)) in bounds.iter().enumerate() {
            let _ = i;
            if (hi - lo).abs() <= 1e-12 && lo.is_finite() {
                var_map.push(VarMapping::Fixed(lo));
            } else if lo.is_finite() {
                let col = cols;
                cols += 1;
                if hi.is_finite() {
                    upper_rows.push((col, hi - lo));
                }
                var_map.push(VarMapping::Shifted { col, offset: lo });
            } else if hi.is_finite() {
                let col = cols;
                cols += 1;
                var_map.push(VarMapping::Mirrored { col, offset: hi });
            } else {
                let pos = cols;
                let neg = cols + 1;
                cols += 2;
                var_map.push(VarMapping::Split { pos, neg });
            }
        }
        let structural_cols = cols;

        let maximize = model.sense == Sense::Maximize;
        let sign = if maximize { -1.0 } else { 1.0 };

        // Objective over columns.
        let mut c = vec![0.0; structural_cols];
        let mut c0 = 0.0;
        for (i, vm) in var_map.iter().enumerate() {
            let coeff = sign * model.vars[i].objective;
            match *vm {
                VarMapping::Fixed(v) => c0 += coeff * v,
                VarMapping::Shifted { col, offset } => {
                    c[col] += coeff;
                    c0 += coeff * offset;
                }
                VarMapping::Mirrored { col, offset } => {
                    c[col] -= coeff;
                    c0 += coeff * offset;
                }
                VarMapping::Split { pos, neg } => {
                    c[pos] += coeff;
                    c[neg] -= coeff;
                }
            }
        }

        // Rows: model constraints plus upper-bound rows. We first build them as
        // (coeffs over structural cols, relation, rhs).
        struct RawRow {
            coeffs: Vec<f64>,
            relation: Relation,
            rhs: f64,
            flipped: bool,
        }
        let mut raw: Vec<RawRow> = Vec::with_capacity(model.constraints.len() + upper_rows.len());
        for con in &model.constraints {
            let mut coeffs = vec![0.0; structural_cols];
            let mut rhs = con.rhs;
            for &(v, a) in &con.terms {
                match var_map[v.index()] {
                    VarMapping::Fixed(val) => rhs -= a * val,
                    VarMapping::Shifted { col, offset } => {
                        coeffs[col] += a;
                        rhs -= a * offset;
                    }
                    VarMapping::Mirrored { col, offset } => {
                        coeffs[col] -= a;
                        rhs -= a * offset;
                    }
                    VarMapping::Split { pos, neg } => {
                        coeffs[pos] += a;
                        coeffs[neg] -= a;
                    }
                }
            }
            raw.push(RawRow { coeffs, relation: con.relation, rhs, flipped: false });
        }
        let num_model_rows = raw.len();
        for (col, ub) in upper_rows {
            let mut coeffs = vec![0.0; structural_cols];
            coeffs[col] = 1.0;
            raw.push(RawRow { coeffs, relation: Relation::Le, rhs: ub, flipped: false });
        }

        // Normalize rows to `= rhs` with rhs >= 0, appending slack columns.
        let m = raw.len();
        let mut a = Vec::with_capacity(m);
        let mut b = Vec::with_capacity(m);
        let mut basis_hint = vec![None; m];
        // First pass: flip rows so rhs >= 0 (flipping relation too).
        for row in &mut raw {
            if row.rhs < 0.0 {
                row.rhs = -row.rhs;
                row.flipped = true;
                for x in &mut row.coeffs {
                    *x = -*x;
                }
                row.relation = match row.relation {
                    Relation::Le => Relation::Ge,
                    Relation::Ge => Relation::Le,
                    Relation::Eq => Relation::Eq,
                };
            }
        }
        // Count slacks needed.
        let n_slacks = raw.iter().filter(|r| r.relation != Relation::Eq).count();
        let total_cols = structural_cols + n_slacks;
        let mut next_slack = structural_cols;
        let mut row_slack = Vec::with_capacity(m);
        let mut row_flipped = Vec::with_capacity(m);
        for (i, row) in raw.into_iter().enumerate() {
            let mut coeffs = row.coeffs;
            coeffs.resize(total_cols, 0.0);
            match row.relation {
                Relation::Le => {
                    coeffs[next_slack] = 1.0;
                    basis_hint[i] = Some(next_slack);
                    row_slack.push(Some((next_slack, 1.0)));
                    next_slack += 1;
                }
                Relation::Ge => {
                    coeffs[next_slack] = -1.0;
                    row_slack.push(Some((next_slack, -1.0)));
                    next_slack += 1;
                }
                Relation::Eq => {
                    row_slack.push(None);
                }
            }
            row_flipped.push(row.flipped);
            a.push(coeffs);
            b.push(row.rhs);
        }
        let mut c_full = c;
        c_full.resize(total_cols, 0.0);

        Some(StandardForm {
            a,
            b,
            c: c_full,
            c0,
            basis_hint,
            var_map,
            maximize,
            structural_cols,
            row_slack,
            row_flipped,
            num_model_rows,
        })
    }

    /// Translate a standard-form point back to original variable values.
    pub fn recover(&self, x_std: &[f64]) -> Vec<f64> {
        self.var_map
            .iter()
            .map(|vm| match *vm {
                VarMapping::Fixed(v) => v,
                VarMapping::Shifted { col, offset } => offset + x_std[col],
                VarMapping::Mirrored { col, offset } => offset - x_std[col],
                VarMapping::Split { pos, neg } => x_std[pos] - x_std[neg],
            })
            .collect()
    }

    /// Translate a standard-form (minimization) objective value back to the
    /// original sense, including the constant term.
    pub fn recover_objective(&self, obj_std: f64) -> f64 {
        let total = obj_std + self.c0;
        if self.maximize {
            -total
        } else {
            total
        }
    }
}

impl crate::problem::Variable {
    fn bounds(&self) -> (f64, f64) {
        (self.lower, self.upper)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Model, Relation, Sense};

    #[test]
    fn fixed_vars_are_substituted() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(2.0, 2.0, 3.0);
        let y = m.add_var(0.0, f64::INFINITY, 1.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 5.0);
        let sf = StandardForm::build(&m, None).unwrap();
        assert_eq!(sf.var_map[x.index()], VarMapping::Fixed(2.0));
        assert_eq!(sf.structural_cols, 1);
        // rhs became 5 - 2 = 3
        assert!((sf.b[0] - 3.0).abs() < 1e-12);
        assert!((sf.c0 - 6.0).abs() < 1e-12);
    }

    #[test]
    fn lower_bound_shift_and_upper_row() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(1.0, 4.0, 1.0);
        let _ = x;
        let sf = StandardForm::build(&m, None).unwrap();
        // One structural col, one upper-bound row with slack.
        assert_eq!(sf.structural_cols, 1);
        assert_eq!(sf.a.len(), 1);
        assert!((sf.b[0] - 3.0).abs() < 1e-12);
        assert_eq!(sf.basis_hint[0], Some(1));
        // Recover: x' = 2 -> x = 3.
        assert!((sf.recover(&[2.0, 0.0])[0] - 3.0).abs() < 1e-12);
    }

    #[test]
    fn free_variable_split() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(f64::NEG_INFINITY, f64::INFINITY, 1.0);
        m.add_constraint(vec![(x, 1.0)], Relation::Eq, -7.0);
        let sf = StandardForm::build(&m, None).unwrap();
        assert_eq!(sf.structural_cols, 2);
        // rhs was negative: row flipped, so coefficients are (-1, +1), rhs 7.
        assert!((sf.b[0] - 7.0).abs() < 1e-12);
        let x_rec = sf.recover(&[0.0, 7.0]);
        assert!((x_rec[0] + 7.0).abs() < 1e-12);
    }

    #[test]
    fn mirrored_upper_only_variable() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(f64::NEG_INFINITY, 3.0, 2.0);
        let _ = x;
        let sf = StandardForm::build(&m, None).unwrap();
        assert_eq!(sf.structural_cols, 1);
        // x = 3 - x'; maximize 2x -> minimize -2x = -6 + 2x'.
        assert!((sf.c[0] - 2.0).abs() < 1e-12);
        assert!((sf.c0 + 6.0).abs() < 1e-12);
        assert!((sf.recover(&[1.0])[0] - 2.0).abs() < 1e-12);
        assert!((sf.recover_objective(2.0) - 4.0).abs() < 1e-12);
    }

    #[test]
    fn overrides_tighten_bounds() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_binary_var(1.0);
        let ovr = vec![Some((1.0, 1.0))];
        let sf = StandardForm::build(&m, Some(&ovr)).unwrap();
        assert_eq!(sf.var_map[x.index()], VarMapping::Fixed(1.0));
    }

    #[test]
    fn inverted_override_is_infeasible() {
        let mut m = Model::new(Sense::Minimize);
        let _x = m.add_binary_var(1.0);
        let ovr = vec![Some((2.0, 2.0))];
        // Effective bounds [2,1] -> infeasible node.
        assert!(StandardForm::build(&m, Some(&ovr)).is_none());
    }
}

//! Bipartite matching substrate for the SFC reliability-augmentation
//! heuristic.
//!
//! The paper's Algorithm 2 repeatedly computes a **minimum-cost maximum
//! matching** between cloudlets and candidate secondary VNF instances ("find a
//! minimum-cost maximum matching `M_l` in `G_l`, by the Hungarian algorithm").
//! On the sparse bipartite graphs the algorithm builds, the cleanest exact
//! method is successive-shortest-path min-cost max-flow; this crate provides
//! that as the production API and two independent implementations for
//! cross-validation:
//!
//! * [`bipartite::min_cost_max_matching`] — production API on sparse edge
//!   lists, backed by [`mcmf`].
//! * [`incremental::IncrementalMatcher`] — ladder-aware engine for the
//!   heuristic's round-structured graphs: dominance-pruned lazy right side,
//!   byte-identical to the rebuild path, with opt-in cross-round price reuse.
//! * [`hungarian::solve`] — classical dense-matrix assignment
//!   (Jonker–Volgenant style shortest augmenting paths), used by tests to
//!   confirm the sparse solver on complete instances.
//! * [`hopcroft_karp::max_cardinality`] — cardinality-only matching, used to
//!   verify the "maximum" part of min-cost maximum matching.
//! * [`brute`] — exponential exact search for tiny graphs, the property-test
//!   oracle.

pub mod auction;
pub mod b_matching;
pub mod bipartite;
pub mod brute;
pub mod hopcroft_karp;
pub mod hungarian;
pub mod incremental;
pub mod mcmf;

pub use b_matching::{min_cost_max_b_matching, min_cost_max_b_matching_into};
pub use bipartite::{min_cost_max_matching, min_cost_max_matching_into, Matching, MatchingScratch};
pub use incremental::{IncrementalMatcher, MatchStats};
pub use mcmf::{FlowResult, McmfGraph};

//! Analytical quantities from the paper's Sections 5 and 6: Chernoff bounds
//! (Lemma 5.1), the scaling constant `Λ` (Eq. 18), the approximation ratio
//! and capacity-violation premises of Theorem 5.2, and the item-count bound
//! of Theorem 6.2.
//!
//! These let tests and benches check the *analytical counterparts* the paper
//! compares its empirical results against ("their empirical results are
//! superior to their analytical counterparts").

use crate::instance::AugmentationInstance;
use crate::reliability;

/// Lemma 5.1 (i), upper tail: `Pr[Σx ≥ (1+β)μ] ≤ exp(-β²μ / (2+β))`.
pub fn chernoff_upper_tail(mu: f64, beta: f64) -> f64 {
    assert!(beta > 0.0, "upper tail requires beta > 0");
    assert!(mu >= 0.0);
    (-(beta * beta * mu) / (2.0 + beta)).exp()
}

/// Lemma 5.1 (ii), lower tail: `Pr[Σx ≤ (1-β)μ] ≤ exp(-β²μ / 2)`.
pub fn chernoff_lower_tail(mu: f64, beta: f64) -> f64 {
    assert!(beta > 0.0 && beta < 1.0, "lower tail requires 0 < beta < 1");
    assert!(mu >= 0.0);
    (-(beta * beta * mu) / 2.0).exp()
}

/// The paper's `Λ` (Eq. 18): the max of the largest item cost, the largest
/// residual capacity, the largest demand, and the budget `-log ρ_j`.
pub fn lambda(inst: &AugmentationInstance) -> f64 {
    let max_cost = inst.items(1e-12).iter().map(|it| it.cost).fold(0.0f64, f64::max);
    let max_residual = inst.bins.iter().map(|b| b.residual).fold(0.0f64, f64::max);
    let max_demand = inst.functions.iter().map(|f| f.demand).fold(0.0f64, f64::max);
    max_cost.max(max_residual).max(max_demand).max(inst.budget())
}

/// Theorem 5.2's expected approximation ratio `(1/P*)^{1 - 2/Λ}`, where `P*`
/// is the optimal reliability of the request.
pub fn approximation_ratio(p_star: f64, lambda: f64) -> f64 {
    assert!(p_star > 0.0 && p_star <= 1.0);
    assert!(lambda > 2.0, "the theorem requires Λ > 2");
    (1.0 / p_star).powf(1.0 - 2.0 / lambda)
}

/// Theorem 5.2's success probability `min{1 - 1/N, 1 - 1/|V|²}`.
pub fn success_probability(n_items: usize, num_nodes: usize) -> f64 {
    assert!(n_items >= 1 && num_nodes >= 1);
    let a = 1.0 - 1.0 / n_items as f64;
    let b = 1.0 - 1.0 / (num_nodes as f64 * num_nodes as f64);
    a.min(b)
}

/// Theorem 5.2's reliability premise `P* ≥ 1 / N^(3Λ / log e)`.
pub fn reliability_premise(p_star: f64, n_items: usize, lambda: f64) -> bool {
    assert!(n_items >= 1);
    let threshold = (n_items as f64).powf(-(3.0 * lambda) / std::f64::consts::LOG10_E.recip());
    p_star >= threshold
}

/// Theorem 5.2's capacity premise `min_v C'_v ≥ 6Λ ln|V|`; when it holds, the
/// violation at any cloudlet is at most 2× its capacity w.h.p.
pub fn capacity_premise(inst: &AugmentationInstance, num_nodes: usize) -> bool {
    if inst.bins.is_empty() {
        return false;
    }
    let min_residual = inst.bins.iter().map(|b| b.residual).fold(f64::INFINITY, f64::min);
    min_residual >= 6.0 * lambda(inst) * (num_nodes as f64).ln()
}

/// The per-function optimum `P*` of an instance when capacities are ignored:
/// every function takes all `K_i` secondaries. An upper bound on any
/// algorithm's achievable reliability.
pub fn unconstrained_optimum(inst: &AugmentationInstance) -> f64 {
    inst.functions
        .iter()
        .map(|f| {
            reliability::function_reliability(f.reliability, f.existing_backups + f.max_secondaries)
        })
        .product()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{Bin, FunctionSlot};
    use mecnet::graph::NodeId;
    use mecnet::vnf::VnfTypeId;

    fn tiny() -> AugmentationInstance {
        AugmentationInstance {
            functions: vec![FunctionSlot {
                vnf: VnfTypeId(0),
                demand: 100.0,
                reliability: 0.8,
                primary: NodeId(0),
                eligible_bins: vec![0],
                max_secondaries: 3,
                existing_backups: 0,
            }],
            bins: vec![Bin { node: NodeId(0), residual: 350.0 }],
            l: 1,
            expectation: 0.99,
        }
    }

    #[test]
    fn chernoff_tails_decay_in_beta_and_mu() {
        assert!(chernoff_upper_tail(10.0, 0.5) < chernoff_upper_tail(10.0, 0.1));
        assert!(chernoff_upper_tail(20.0, 0.5) < chernoff_upper_tail(10.0, 0.5));
        assert!(chernoff_lower_tail(10.0, 0.5) < chernoff_lower_tail(10.0, 0.1));
        assert!(chernoff_upper_tail(10.0, 0.5) <= 1.0);
        assert!(chernoff_lower_tail(0.0, 0.5) == 1.0);
    }

    #[test]
    fn lambda_dominates_components() {
        let inst = tiny();
        let l = lambda(&inst);
        assert!(l >= 350.0); // at least the max residual
        assert!(l >= inst.budget());
        for it in inst.items(1e-12) {
            assert!(l >= it.cost);
        }
    }

    #[test]
    fn approximation_ratio_monotone() {
        // Larger Λ -> exponent closer to 1 -> worse (larger) ratio.
        let r1 = approximation_ratio(0.5, 3.0);
        let r2 = approximation_ratio(0.5, 30.0);
        assert!(r2 > r1);
        // P* = 1 gives ratio 1 regardless.
        assert!((approximation_ratio(1.0, 5.0) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn success_probability_min_form() {
        assert!((success_probability(100, 5) - (1.0 - 1.0 / 25.0)).abs() < 1e-12);
        assert!((success_probability(10, 100) - 0.9).abs() < 1e-12);
    }

    #[test]
    fn capacity_premise_detects_scale() {
        let mut inst = tiny();
        // Λ >= 350 (residual); 6Λ ln(100) ≈ 9670 ≫ 350 -> premise fails,
        // exactly the regime where violations above 2x are possible.
        assert!(!capacity_premise(&inst, 100));
        // Blow capacities up so the premise holds: but Λ grows with residual,
        // so it can never hold when residual is the max — a quirk the paper
        // inherits; verify the implementation reflects the formula.
        inst.bins[0].residual = 1e9;
        assert!(!capacity_premise(&inst, 100));
    }

    #[test]
    fn unconstrained_optimum_bounds_everything() {
        let inst = tiny();
        let p_star = unconstrained_optimum(&inst);
        assert!((p_star - crate::reliability::function_reliability(0.8, 3)).abs() < 1e-12);
        let out = crate::ilp::solve(&inst, &Default::default()).unwrap();
        assert!(out.metrics.reliability <= p_star + 1e-12);
    }

    #[test]
    fn reliability_premise_behaviour() {
        // With a huge Λ the threshold is astronomically small: any P* passes.
        assert!(reliability_premise(1e-6, 100, 400.0));
    }
}

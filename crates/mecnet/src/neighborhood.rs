//! CSR-packed `≤ l`-hop closed-neighborhood index over cloudlets.
//!
//! The streaming pipeline asks the same locality question for every request:
//! "which *cloudlets* are within `l` hops of node `v`?" — the paper's
//! `N_l^+(v)` restricted to capacity-bearing nodes. Answering it with
//! [`Graph::l_neighborhood_closed`] costs a full BFS plus two allocations per
//! query, which dominates the ~µs-scale heuristic solve on the hot path.
//!
//! [`NeighborhoodIndex`] inverts the computation: one truncated BFS per
//! *cloudlet* (sources are the few capacity-bearing nodes, not the many query
//! nodes) fills a CSR table mapping every node `v` to the slice of cloudlets
//! within `l` hops. Lookups are then O(1) and allocation-free, returning
//! `&[NodeId]` slices sorted ascending — element-for-element identical to
//! `l_neighborhood_closed(v, l)` filtered to cloudlets (the property test in
//! `tests/proptest_neighborhood.rs` pins this equivalence).

use crate::graph::{Graph, NodeId};
use std::collections::VecDeque;

/// Precomputed per-node "cloudlets within `l` hops" table in CSR layout.
///
/// `cloudlets[offsets[v] .. offsets[v + 1]]` lists, ascending by node id, the
/// cloudlets within `l` hops of node `v` (including `v` itself when it is a
/// cloudlet — the *closed* neighborhood).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NeighborhoodIndex {
    l: u32,
    /// `num_nodes + 1` prefix offsets into `cloudlets`.
    offsets: Vec<u32>,
    /// Concatenated per-node cloudlet lists.
    cloudlets: Vec<NodeId>,
}

impl NeighborhoodIndex {
    /// Build the index for radius `l`. `cloudlets` must list the
    /// capacity-bearing nodes ascending by id (as
    /// [`crate::MecNetwork::cloudlet_ids`] does); hop distances beyond `l`
    /// are never expanded, so the build is `O(Σ_c |B_l(c)|)` — independent
    /// of how many requests later query it.
    pub fn build(graph: &Graph, cloudlets: &[NodeId], l: u32) -> Self {
        let n = graph.num_nodes();
        debug_assert!(cloudlets.windows(2).all(|w| w[0] < w[1]), "cloudlets must be ascending");
        // Pass 1: truncated BFS per cloudlet, counting how many cloudlets
        // reach each node. `mark` doubles as the per-source visited set via
        // an epoch scheme (epoch = source position), avoiding a clear per
        // source.
        let mut counts = vec![0u32; n];
        let mut mark = vec![u32::MAX; n];
        let mut depth = vec![0u32; n];
        let mut queue = VecDeque::new();
        let mut reach: Vec<(u32, u32)> = Vec::new(); // (node, cloudlet position)
        for (epoch, &c) in cloudlets.iter().enumerate() {
            let epoch = epoch as u32;
            queue.clear();
            mark[c.index()] = epoch;
            depth[c.index()] = 0;
            queue.push_back(c.index());
            while let Some(u) = queue.pop_front() {
                counts[u] += 1;
                reach.push((u as u32, epoch));
                let du = depth[u];
                if du == l {
                    continue;
                }
                for w in graph.neighbors(NodeId(u)) {
                    let w = w.index();
                    if mark[w] != epoch {
                        mark[w] = epoch;
                        depth[w] = du + 1;
                        queue.push_back(w);
                    }
                }
            }
        }
        // Pass 2: prefix-sum offsets, then a stable counting-sort fill.
        // `reach` is ordered by cloudlet position (sources were visited
        // ascending), so each node's slice comes out ascending by cloudlet
        // id without any per-slice sort.
        let mut offsets = vec![0u32; n + 1];
        for v in 0..n {
            offsets[v + 1] = offsets[v] + counts[v];
        }
        let mut cursor: Vec<u32> = offsets[..n].to_vec();
        let mut packed = vec![NodeId(0); reach.len()];
        for &(v, pos) in &reach {
            let slot = cursor[v as usize];
            packed[slot as usize] = cloudlets[pos as usize];
            cursor[v as usize] = slot + 1;
        }
        NeighborhoodIndex { l, offsets, cloudlets: packed }
    }

    /// The radius this index was built for.
    pub fn l(&self) -> u32 {
        self.l
    }

    /// Number of nodes covered by the table.
    pub fn num_nodes(&self) -> usize {
        self.offsets.len() - 1
    }

    /// Cloudlets within `l` hops of `v`, ascending by node id, including `v`
    /// itself when it is a cloudlet. Equivalent to
    /// `graph.l_neighborhood_closed(v, l)` filtered to cloudlets, without
    /// the per-query BFS or allocation.
    pub fn cloudlets_within(&self, v: NodeId) -> &[NodeId] {
        let i = v.index();
        &self.cloudlets[self.offsets[i] as usize..self.offsets[i + 1] as usize]
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::topology;

    fn cloudlet_list(capacity: &[f64]) -> Vec<NodeId> {
        (0..capacity.len()).filter(|&v| capacity[v] > 0.0).map(NodeId).collect()
    }

    #[test]
    fn matches_bfs_on_a_path() {
        // Path 0-1-2-3; cloudlets at 0 and 2 (mirrors the network.rs test).
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(2), NodeId(3));
        let cap = [5000.0, 0.0, 6000.0, 0.0];
        let idx = NeighborhoodIndex::build(&g, &cloudlet_list(&cap), 1);
        assert_eq!(idx.cloudlets_within(NodeId(0)), &[NodeId(0)]);
        assert_eq!(idx.cloudlets_within(NodeId(1)), &[NodeId(0), NodeId(2)]);
        assert_eq!(idx.cloudlets_within(NodeId(3)), &[NodeId(2)]);
        let idx2 = NeighborhoodIndex::build(&g, &cloudlet_list(&cap), 2);
        assert_eq!(idx2.cloudlets_within(NodeId(0)), &[NodeId(0), NodeId(2)]);
    }

    #[test]
    fn radius_zero_is_self_only() {
        let g = topology::grid(3, 3);
        let cloudlets: Vec<NodeId> = vec![NodeId(1), NodeId(4)];
        let idx = NeighborhoodIndex::build(&g, &cloudlets, 0);
        for v in g.nodes() {
            let expected: &[NodeId] =
                if cloudlets.contains(&v) { std::slice::from_ref(&v) } else { &[] };
            assert_eq!(idx.cloudlets_within(v), expected);
        }
    }

    #[test]
    fn disconnected_nodes_see_nothing() {
        let g = Graph::new(3); // no edges
        let idx = NeighborhoodIndex::build(&g, &[NodeId(2)], 4);
        assert_eq!(idx.cloudlets_within(NodeId(0)), &[] as &[NodeId]);
        assert_eq!(idx.cloudlets_within(NodeId(2)), &[NodeId(2)]);
    }

    #[test]
    fn slices_are_ascending() {
        let g = topology::grid(4, 4);
        let cloudlets: Vec<NodeId> = [0usize, 3, 5, 10, 15].iter().map(|&v| NodeId(v)).collect();
        let idx = NeighborhoodIndex::build(&g, &cloudlets, 3);
        for v in g.nodes() {
            let s = idx.cloudlets_within(v);
            assert!(s.windows(2).all(|w| w[0] < w[1]), "slice for {v} not ascending: {s:?}");
        }
    }
}

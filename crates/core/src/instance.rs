//! The service reliability augmentation problem instance.
//!
//! Built from an admitted request: for every chain position `i` with primary
//! on cloudlet `v_i`, the candidate hosts are the cloudlets of `N_l^+(v_i)`
//! with enough residual capacity for one instance of `f_i` (the paper's
//! constraints 11–12), and the item set contains `K_i` potential secondaries
//! per function, where `K_i = Σ_{u ∈ N_l^+(v_i)} ⌊C'_u / c(f_i)⌋`
//! (Section 4.2).

use mecnet::graph::NodeId;
use mecnet::neighborhood::NeighborhoodIndex;
use mecnet::network::MecNetwork;
use mecnet::request::SfcRequest;
use mecnet::vnf::{VnfCatalog, VnfTypeId};
use mecnet::workload::Scenario;

use crate::reliability;

/// A cloudlet with residual capacity, the "bin" of the paper's GAP reduction.
#[derive(Debug, Clone, PartialEq)]
pub struct Bin {
    pub node: NodeId,
    /// Residual capacity `C'_u` in MHz available for secondaries.
    pub residual: f64,
}

/// One chain position: a function, its primary's location, and its candidate
/// bins.
#[derive(Debug, Clone, PartialEq)]
pub struct FunctionSlot {
    pub vnf: VnfTypeId,
    /// Per-instance computing demand `c(f_i)` in MHz.
    pub demand: f64,
    /// Instance reliability `r_i`.
    pub reliability: f64,
    /// Cloudlet hosting the primary instance.
    pub primary: NodeId,
    /// Indices into [`AugmentationInstance::bins`] of the cloudlets in
    /// `N_l^+(primary)` with `C'_u >= c(f_i)`.
    pub eligible_bins: Vec<usize>,
    /// `K_i`: maximum number of secondaries that could ever be packed for
    /// this function (capacity-wise, ignoring other functions).
    pub max_secondaries: usize,
    /// Backup instances of this function's type that already exist within
    /// `N_l^+(primary)` and can be *shared* (Qu et al. 2018-style extension;
    /// 0 in the paper's single-request setting). They shift every marginal
    /// gain/cost: the `k`-th new secondary behaves like slot
    /// `existing_backups + k` of the geometric ladder.
    pub existing_backups: usize,
}

/// A single potential secondary instance — item `(i, k)` of the paper's
/// budgeted min-cost GAP reduction.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Item {
    /// Chain position (index into `functions`).
    pub func: usize,
    /// Which secondary this is (1-based: the `k`-th backup of the function).
    pub k: usize,
    /// The paper's cost `c(f_i, k, ·) = -log(r_i (1-r_i)^k)` (Eq. 3).
    pub cost: f64,
    /// Log-reliability gain `ln R(f_i,k) - ln R(f_i,k-1)` — the linearized
    /// objective coefficient (see DESIGN.md on the Eq. 5–7 reinterpretation).
    pub gain: f64,
}

impl FunctionSlot {
    /// Number of enumerable new-secondary slots once marginal gains below
    /// `gain_floor` are truncated (`gain_floor <= 0` disables truncation).
    /// Accounts for already-existing shared backups: their slots are spent.
    pub fn capped_slots(&self, gain_floor: f64) -> usize {
        if gain_floor > 0.0 {
            reliability::slots_above_gain_floor(
                self.reliability,
                self.existing_backups + self.max_secondaries,
                gain_floor,
            )
            .saturating_sub(self.existing_backups)
        } else {
            self.max_secondaries
        }
    }
}

/// The full instance handed to the algorithms.
///
/// `PartialEq` compares every input the solvers read (functions, bins with
/// exact residuals, `l`, expectation): two equal instances are guaranteed to
/// produce bit-identical solver runs given equal RNG state — the conflict
/// check the speculative parallel pipeline relies on.
#[derive(Debug, Clone, PartialEq)]
pub struct AugmentationInstance {
    pub functions: Vec<FunctionSlot>,
    pub bins: Vec<Bin>,
    /// Locality radius `l` (paper default 1).
    pub l: u32,
    /// Reliability expectation `ρ_j`.
    pub expectation: f64,
}

impl AugmentationInstance {
    /// Build an instance from explicit parts.
    ///
    /// `residual[v]` is the residual capacity of node `v` (zero for plain
    /// APs); `placement[i]` hosts the primary of chain position `i`.
    pub fn new(
        network: &MecNetwork,
        catalog: &VnfCatalog,
        request: &SfcRequest,
        placement: &[NodeId],
        residual: &[f64],
        l: u32,
    ) -> Self {
        Self::new_with_index(
            network,
            catalog,
            request,
            placement,
            residual,
            &network.neighborhood_index(l),
        )
    }

    /// [`AugmentationInstance::new`] against an already-resolved
    /// [`NeighborhoodIndex`] (whose radius supplies `l`). The streaming
    /// pipelines resolve the index once and use this per request, so
    /// construction does no BFS and no whole-network scratch allocation.
    pub fn new_with_index(
        network: &MecNetwork,
        catalog: &VnfCatalog,
        request: &SfcRequest,
        placement: &[NodeId],
        residual: &[f64],
        nbhd: &NeighborhoodIndex,
    ) -> Self {
        assert_eq!(placement.len(), request.len(), "placement must cover the chain");
        assert_eq!(residual.len(), network.num_nodes(), "residual must cover all nodes");
        // Bins: every cloudlet with positive residual capacity, ascending.
        let bins: Vec<Bin> = network
            .cloudlet_ids()
            .iter()
            .filter(|&&v| residual[v.index()] > 0.0)
            .map(|&v| Bin { node: v, residual: residual[v.index()] })
            .collect();
        Self::finish(catalog, request, placement, bins, nbhd)
    }

    /// Shared tail of the instance builders: bins are fixed (ascending by
    /// node), eligibility comes from the index slices.
    fn finish(
        catalog: &VnfCatalog,
        request: &SfcRequest,
        placement: &[NodeId],
        bins: Vec<Bin>,
        nbhd: &NeighborhoodIndex,
    ) -> Self {
        let functions = request
            .sfc
            .iter()
            .zip(placement)
            .map(|(&vnf, &primary)| {
                let demand = catalog.demand(vnf);
                // Index slices are ascending by node, and `bins` is ascending
                // by node, so `eligible` comes out sorted without a sort.
                let eligible: Vec<usize> = nbhd
                    .cloudlets_within(primary)
                    .iter()
                    .filter_map(|&u| {
                        bins.binary_search_by_key(&u, |b| b.node)
                            .ok()
                            .filter(|&b| bins[b].residual >= demand)
                    })
                    .collect();
                debug_assert!(eligible.windows(2).all(|w| w[0] < w[1]));
                let max_secondaries: usize =
                    eligible.iter().map(|&b| (bins[b].residual / demand).floor() as usize).sum();
                FunctionSlot {
                    vnf,
                    demand,
                    reliability: catalog.reliability(vnf),
                    primary,
                    eligible_bins: eligible,
                    max_secondaries,
                    existing_backups: 0,
                }
            })
            .collect();
        AugmentationInstance { functions, bins, l: nbhd.l(), expectation: request.expectation }
    }

    /// Like [`AugmentationInstance::new`], but the bin set is restricted to
    /// cloudlets inside the union of the closed `l`-hop neighborhoods of the
    /// primaries — the only nodes whose residual capacity the solvers can
    /// ever read or write for this request.
    ///
    /// Solutions and metrics are identical in value to the full-bin
    /// construction (eligibility is already `l`-local); what changes is that
    /// the instance stops depending on the residual state of *unrelated*
    /// cloudlets. The stream pipelines build instances this way so that two
    /// constructions agree (`==`) exactly when the request-relevant slice of
    /// the network agrees — the conflict test that lets the parallel engine
    /// commit speculative solves untouched.
    pub fn new_localized(
        network: &MecNetwork,
        catalog: &VnfCatalog,
        request: &SfcRequest,
        placement: &[NodeId],
        residual: &[f64],
        l: u32,
    ) -> Self {
        Self::new_localized_with_index(
            network,
            catalog,
            request,
            placement,
            residual,
            &network.neighborhood_index(l),
        )
    }

    /// [`AugmentationInstance::new_localized`] against an already-resolved
    /// [`NeighborhoodIndex`]. The relevant bin set is the union of the
    /// primaries' index slices — no whole-network `relevant` bitmap or masked
    /// residual copy is materialized (the chain touches a handful of
    /// cloudlets; the network has hundreds of nodes).
    pub fn new_localized_with_index(
        network: &MecNetwork,
        catalog: &VnfCatalog,
        request: &SfcRequest,
        placement: &[NodeId],
        residual: &[f64],
        nbhd: &NeighborhoodIndex,
    ) -> Self {
        assert_eq!(placement.len(), request.len(), "placement must cover the chain");
        assert_eq!(residual.len(), network.num_nodes(), "residual must cover all nodes");
        // Union of the primaries' candidate cloudlets, ascending, deduped.
        let mut relevant: Vec<NodeId> =
            placement.iter().flat_map(|&p| nbhd.cloudlets_within(p)).copied().collect();
        relevant.sort_unstable();
        relevant.dedup();
        let bins: Vec<Bin> = relevant
            .into_iter()
            .filter(|&v| residual[v.index()] > 0.0)
            .map(|v| Bin { node: v, residual: residual[v.index()] })
            .collect();
        Self::finish(catalog, request, placement, bins, nbhd)
    }

    /// Build from a generated [`Scenario`] with locality radius `l`.
    pub fn from_scenario(s: &Scenario, l: u32) -> Self {
        AugmentationInstance::new(
            &s.network,
            &s.catalog,
            &s.request,
            &s.placement.locations,
            &s.residual,
            l,
        )
    }

    /// Chain length `L_j`.
    pub fn chain_len(&self) -> usize {
        self.functions.len()
    }

    /// Reliability before any *new* secondaries: `Π_i R(r_i, existing_i)`
    /// (`Π r_i` in the paper's setting, where nothing is shared).
    pub fn base_reliability(&self) -> f64 {
        self.functions
            .iter()
            .map(|f| reliability::function_reliability(f.reliability, f.existing_backups))
            .product()
    }

    /// Whether the primaries alone meet `ρ_j` (the algorithms' early EXIT).
    pub fn expectation_met_by_primaries(&self) -> bool {
        self.base_reliability() >= self.expectation
    }

    /// The paper's budget `C = -log ρ_j`.
    pub fn budget(&self) -> f64 {
        reliability::budget_from_expectation(self.expectation)
    }

    /// Log-gain needed to lift the primaries' reliability to `ρ_j`:
    /// `ln ρ_j - ln Π r_i` (zero when the expectation is already met). This
    /// is the budget `C` re-based onto the augmentation's starting point.
    pub fn needed_gain(&self) -> f64 {
        (self.expectation.ln() - self.base_reliability().ln()).max(0.0)
    }

    /// Total item count `N = Σ K_i` (before any gain-floor capping).
    pub fn total_items(&self) -> usize {
        self.functions.iter().map(|f| f.max_secondaries).sum()
    }

    /// Enumerate items `(i, k)` for `k = 1..=K_i`, with `K_i` additionally
    /// capped where marginal gains drop below `gain_floor` (lossless beyond
    /// that precision; pass `0.0` for the uncapped paper item set).
    pub fn items(&self, gain_floor: f64) -> Vec<Item> {
        let mut out = Vec::new();
        for (i, f) in self.functions.iter().enumerate() {
            let cap = f.capped_slots(gain_floor);
            for k in 1..=cap {
                out.push(Item {
                    func: i,
                    k,
                    cost: reliability::paper_cost(f.reliability, f.existing_backups + k),
                    gain: reliability::log_gain(f.reliability, f.existing_backups + k),
                });
            }
        }
        out
    }

    /// Upper bound on `N` from Theorem 6.2:
    /// `N <= ⌈L_j · C_max · (d_max + 1) / c_min⌉` where `d_max` is the largest
    /// closed `l`-hop cloudlet neighborhood size.
    pub fn item_count_bound(&self) -> usize {
        if self.functions.is_empty() || self.bins.is_empty() {
            return 0;
        }
        let c_max = self.bins.iter().map(|b| b.residual).fold(0.0, f64::max);
        let c_min = self.functions.iter().map(|f| f.demand).fold(f64::INFINITY, f64::min);
        let d_max = self.functions.iter().map(|f| f.eligible_bins.len()).max().unwrap_or(0);
        (self.chain_len() as f64 * c_max * d_max as f64 / c_min).ceil() as usize
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mecnet::graph::Graph;
    use mecnet::vnf::VnfType;

    /// Path 0-1-2-3 with cloudlets at 1, 2, 3.
    fn fixture() -> (MecNetwork, VnfCatalog, SfcRequest) {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(2), NodeId(3));
        let net = MecNetwork::new(g, vec![0.0, 1000.0, 800.0, 600.0]);
        let mut cat = VnfCatalog::new();
        cat.add(VnfType { name: "a".into(), demand_mhz: 300.0, reliability: 0.8 });
        cat.add(VnfType { name: "b".into(), demand_mhz: 500.0, reliability: 0.9 });
        let req = SfcRequest::new(0, vec![VnfTypeId(0), VnfTypeId(1)], 0.99, NodeId(0), NodeId(3));
        (net, cat, req)
    }

    #[test]
    fn eligibility_respects_l_hop_and_capacity() {
        let (net, cat, req) = fixture();
        let placement = [NodeId(1), NodeId(3)];
        let residual = vec![0.0, 1000.0, 800.0, 600.0];
        let inst = AugmentationInstance::new(&net, &cat, &req, &placement, &residual, 1);
        assert_eq!(inst.bins.len(), 3);
        // f0 (demand 300) primary at node 1: N_1^+ = {0,1,2}; bins at 1 and 2
        // both have >= 300 residual.
        let f0 = &inst.functions[0];
        let hosts0: Vec<NodeId> = f0.eligible_bins.iter().map(|&b| inst.bins[b].node).collect();
        assert_eq!(hosts0, vec![NodeId(1), NodeId(2)]);
        // K_0 = floor(1000/300) + floor(800/300) = 3 + 2 = 5.
        assert_eq!(f0.max_secondaries, 5);
        // f1 (demand 500) primary at node 3: N_1^+ = {2,3}; node 2 has 800
        // (>=500), node 3 has 600 (>=500).
        let f1 = &inst.functions[1];
        let hosts1: Vec<NodeId> = f1.eligible_bins.iter().map(|&b| inst.bins[b].node).collect();
        assert_eq!(hosts1, vec![NodeId(2), NodeId(3)]);
        // K_1 = floor(800/500) + floor(600/500) = 1 + 1 = 2.
        assert_eq!(f1.max_secondaries, 2);
        assert_eq!(inst.total_items(), 7);
    }

    #[test]
    fn capacity_below_demand_excludes_bin() {
        let (net, cat, req) = fixture();
        let placement = [NodeId(1), NodeId(1)];
        // Node 3 has only 200 left: ineligible for either function.
        let residual = vec![0.0, 250.0, 800.0, 200.0];
        let inst = AugmentationInstance::new(&net, &cat, &req, &placement, &residual, 2);
        // f1 demand 500: within 2 hops of node 1 -> {1, 2, 3}; only node 2 fits.
        let f1 = &inst.functions[1];
        let hosts: Vec<NodeId> = f1.eligible_bins.iter().map(|&b| inst.bins[b].node).collect();
        assert_eq!(hosts, vec![NodeId(2)]);
        // f0 demand 300: node 1 (250) too small, node 2 fits, node 3 too small.
        let f0 = &inst.functions[0];
        let hosts0: Vec<NodeId> = f0.eligible_bins.iter().map(|&b| inst.bins[b].node).collect();
        assert_eq!(hosts0, vec![NodeId(2)]);
    }

    #[test]
    fn items_have_increasing_cost_decreasing_gain() {
        let (net, cat, req) = fixture();
        let placement = [NodeId(1), NodeId(3)];
        let residual = vec![0.0, 1000.0, 800.0, 600.0];
        let inst = AugmentationInstance::new(&net, &cat, &req, &placement, &residual, 1);
        let items = inst.items(0.0);
        assert_eq!(items.len(), inst.total_items());
        for w in items.windows(2) {
            if w[0].func == w[1].func {
                assert!(w[1].cost > w[0].cost);
                assert!(w[1].gain < w[0].gain);
            }
        }
        // Gain floor capping only removes items.
        let capped = inst.items(1e-3);
        assert!(capped.len() <= items.len());
    }

    #[test]
    fn base_reliability_and_budget() {
        let (net, cat, req) = fixture();
        let placement = [NodeId(1), NodeId(3)];
        let residual = vec![0.0, 1000.0, 800.0, 600.0];
        let inst = AugmentationInstance::new(&net, &cat, &req, &placement, &residual, 1);
        assert!((inst.base_reliability() - 0.72).abs() < 1e-12);
        assert!(!inst.expectation_met_by_primaries());
        assert!((inst.budget() - (-(0.99f64.ln()))).abs() < 1e-12);
        assert_eq!(inst.chain_len(), 2);
    }

    #[test]
    fn item_count_bound_dominates_actual() {
        let (net, cat, req) = fixture();
        let placement = [NodeId(1), NodeId(3)];
        let residual = vec![0.0, 1000.0, 800.0, 600.0];
        let inst = AugmentationInstance::new(&net, &cat, &req, &placement, &residual, 1);
        assert!(inst.item_count_bound() >= inst.total_items());
    }

    #[test]
    fn zero_residual_network_yields_no_bins() {
        let (net, cat, req) = fixture();
        let placement = [NodeId(1), NodeId(3)];
        let residual = vec![0.0; 4];
        let inst = AugmentationInstance::new(&net, &cat, &req, &placement, &residual, 1);
        assert!(inst.bins.is_empty());
        assert_eq!(inst.total_items(), 0);
        assert_eq!(inst.item_count_bound(), 0);
        assert!(inst.items(0.0).is_empty());
    }

    #[test]
    fn localized_instance_keeps_eligibility_and_drops_far_bins() {
        let (net, cat, req) = fixture();
        let placement = [NodeId(1), NodeId(1)];
        let residual = vec![0.0, 1000.0, 800.0, 600.0];
        let full = AugmentationInstance::new(&net, &cat, &req, &placement, &residual, 1);
        let local = AugmentationInstance::new_localized(&net, &cat, &req, &placement, &residual, 1);
        // N_1^+(1) = {0, 1, 2}: the cloudlet at node 3 is irrelevant and gone.
        let local_nodes: Vec<NodeId> = local.bins.iter().map(|b| b.node).collect();
        assert_eq!(local_nodes, vec![NodeId(1), NodeId(2)]);
        assert!(full.bins.len() > local.bins.len());
        // Same eligible hosts and item counts per function.
        for (lf, ff) in local.functions.iter().zip(&full.functions) {
            let lh: Vec<NodeId> = lf.eligible_bins.iter().map(|&b| local.bins[b].node).collect();
            let fh: Vec<NodeId> = ff.eligible_bins.iter().map(|&b| full.bins[b].node).collect();
            assert_eq!(lh, fh);
            assert_eq!(lf.max_secondaries, ff.max_secondaries);
        }
        assert_eq!(local.total_items(), full.total_items());
        // Changing residual outside the neighborhood changes the full
        // construction but not the localized one — the conflict-check
        // property the parallel pipeline needs.
        let mut far = residual.clone();
        far[3] = 100.0;
        let local2 = AugmentationInstance::new_localized(&net, &cat, &req, &placement, &far, 1);
        assert_eq!(local, local2);
        let full2 = AugmentationInstance::new(&net, &cat, &req, &placement, &far, 1);
        assert_ne!(full, full2);
    }

    #[test]
    fn scenario_roundtrip() {
        use mecnet::workload::{generate_scenario, WorkloadConfig};
        use rand::{rngs::StdRng, SeedableRng};
        let mut rng = StdRng::seed_from_u64(3);
        let s = generate_scenario(&WorkloadConfig::default(), &mut rng);
        let inst = AugmentationInstance::from_scenario(&s, 1);
        assert_eq!(inst.chain_len(), s.request.len());
        assert_eq!(inst.expectation, s.request.expectation);
        // All eligible bins must really be within 1 hop of the primary.
        for f in &inst.functions {
            for &b in &f.eligible_bins {
                let d = s.network.graph().hop_distance(f.primary, inst.bins[b].node).unwrap();
                assert!(d <= 1);
            }
        }
    }
}

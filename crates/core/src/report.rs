//! Human-readable solution reports: where every secondary went, what each
//! function's reliability became, and how loaded each cloudlet ended up.

use std::fmt::Write as _;

use crate::instance::AugmentationInstance;
use crate::reliability;
use crate::solution::Outcome;

/// Render a placement report as plain text (fixed-width columns).
pub fn render(inst: &AugmentationInstance, outcome: &Outcome) -> String {
    let mut out = String::new();
    let m = &outcome.metrics;
    let _ = writeln!(
        out,
        "request reliability: {:.6} (base {:.6}, expectation {:.6}, met: {})",
        m.reliability,
        m.base_reliability,
        inst.expectation,
        if m.met_expectation { "yes" } else { "no" }
    );
    let _ = writeln!(
        out,
        "secondaries placed: {}   paper cost c(S): {:.4}   runtime: {:?}",
        m.total_secondaries, m.paper_cost, outcome.runtime
    );

    let _ = writeln!(out, "\nper-function placement:");
    let counts = outcome.augmentation.counts();
    for (i, f) in inst.functions.iter().enumerate() {
        let total = f.existing_backups + counts[i];
        let hosts: Vec<String> = outcome
            .augmentation
            .placements_of(i)
            .iter()
            .map(|&(b, c)| format!("{}x{}", inst.bins[b].node, c))
            .collect();
        let _ = writeln!(
            out,
            "  f{i} @ {}: r={:.3} -> R={:.6}  new={} shared={}  hosts=[{}]",
            f.primary,
            f.reliability,
            reliability::function_reliability(f.reliability, total),
            counts[i],
            f.existing_backups,
            hosts.join(", ")
        );
    }

    let _ = writeln!(out, "\ncloudlet load:");
    let loads = outcome.augmentation.bin_loads(inst);
    for (b, bin) in inst.bins.iter().enumerate() {
        if loads[b] > 0.0 {
            let _ = writeln!(
                out,
                "  {}: {:.0} / {:.0} MHz ({:.0}%)",
                bin.node,
                loads[b],
                bin.residual,
                100.0 * loads[b] / bin.residual
            );
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::heuristic;
    use crate::instance::{Bin, FunctionSlot};
    use mecnet::graph::NodeId;
    use mecnet::vnf::VnfTypeId;

    #[test]
    fn report_contains_key_fields() {
        let inst = AugmentationInstance {
            functions: vec![FunctionSlot {
                vnf: VnfTypeId(0),
                demand: 100.0,
                reliability: 0.8,
                primary: NodeId(0),
                eligible_bins: vec![0],
                max_secondaries: 3,
                existing_backups: 1,
            }],
            bins: vec![Bin { node: NodeId(0), residual: 400.0 }],
            l: 1,
            expectation: 0.999,
        };
        let out = heuristic::solve(&inst, &Default::default());
        let text = render(&inst, &out);
        assert!(text.contains("request reliability"));
        assert!(text.contains("per-function placement"));
        assert!(text.contains("shared=1"));
        assert!(text.contains("cloudlet load"));
        assert!(text.contains("v0"));
    }
}

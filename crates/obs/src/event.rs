//! Structured telemetry events: a kind tag plus ordered key/value fields,
//! rendered to one JSON object per line for JSONL export.

use serde::{Serialize, Value};

/// One telemetry event. Field order is preserved so JSONL output is stable
/// and diffable across runs.
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    pub kind: &'static str,
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    pub fn new(kind: &'static str) -> Event {
        Event { kind, fields: Vec::new() }
    }

    /// Append a field. Accepts anything serializable into the value tree.
    #[must_use]
    pub fn with<T: Serialize>(mut self, key: &'static str, value: T) -> Event {
        self.fields.push((key, value.to_value()));
        self
    }

    pub fn field(&self, key: &str) -> Option<&Value> {
        self.fields.iter().find(|(k, _)| *k == key).map(|(_, v)| v)
    }

    /// Render as a single JSON object with the kind under `"event"`.
    pub fn to_json(&self) -> String {
        let mut obj: Vec<(String, Value)> = Vec::with_capacity(self.fields.len() + 1);
        obj.push(("event".to_string(), Value::Str(self.kind.to_string())));
        for (k, v) in &self.fields {
            obj.push((k.to_string(), v.clone()));
        }
        serde_json::to_string(&Value::Obj(obj)).expect("value tree renders")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_preserves_order_and_types() {
        let e = Event::new("stream.request")
            .with("id", 7usize)
            .with("admitted", true)
            .with("runtime_s", 0.25f64)
            .with("reason", "capacity");
        assert_eq!(e.field("id").unwrap().as_u64(), Some(7));
        assert_eq!(e.field("admitted").unwrap().as_bool(), Some(true));
        let json = e.to_json();
        assert!(json.starts_with(r#"{"event":"stream.request","id":7"#), "got {json}");
        assert!(json.contains(r#""reason":"capacity""#));
    }

    #[test]
    fn json_line_parses_back() {
        let e = Event::new("x").with("v", vec![1u64, 2, 3]);
        let parsed: Value = serde_json::from_str(&e.to_json()).unwrap();
        assert_eq!(parsed.get("event").unwrap().as_str(), Some("x"));
        assert_eq!(parsed.get("v").unwrap().as_array().unwrap().len(), 3);
    }
}

//! Lock-free per-worker metrics shards.
//!
//! The streaming pipeline's hot path must not funnel every counter bump
//! through the shared `&mut Recorder` (which serializes on the coordinator)
//! — instead each worker thread owns a [`MetricsShard`]: a fixed array of
//! relaxed atomic counters plus fixed-bucket log2 histograms, preallocated at
//! pipeline start so the steady state allocates nothing. Shards are merged
//! only at snapshot time ([`ShardedMetrics::snapshot`]), and per-shard
//! snapshots ([`ShardedMetrics::shard_snapshot`]) attribute work and waiting
//! to individual workers.
//!
//! Metric identity is an index into a `&'static` name table fixed at
//! construction, so recording is a bounds-checked array index plus a relaxed
//! `fetch_add` — no map lookups, no locks, no allocation.

use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Duration;

use expkit::{Log2Histogram, LOG2_BUCKETS};
use serde::{Deserialize, Serialize};

/// Concurrently-recordable [`Log2Histogram`]: one relaxed atomic per bucket
/// plus an atomic value sum. Bucket layout is identical to the scalar type,
/// so [`AtomicLog2Histogram::snapshot`] produces a mergeable histogram.
#[derive(Debug)]
pub struct AtomicLog2Histogram {
    counts: [AtomicU64; LOG2_BUCKETS],
    sum: AtomicU64,
}

impl Default for AtomicLog2Histogram {
    fn default() -> Self {
        AtomicLog2Histogram::new()
    }
}

impl AtomicLog2Histogram {
    pub fn new() -> AtomicLog2Histogram {
        AtomicLog2Histogram {
            counts: std::array::from_fn(|_| AtomicU64::new(0)),
            sum: AtomicU64::new(0),
        }
    }

    #[inline]
    pub fn record(&self, v: u64) {
        self.counts[Log2Histogram::bucket_of(v)].fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    /// Record a duration as nanoseconds (saturating at `u64::MAX`).
    #[inline]
    pub fn record_duration(&self, d: Duration) {
        self.record(d.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Materialize the current bucket counts as a scalar histogram. Relaxed
    /// loads: exact once the recording threads have quiesced (joined), a
    /// consistent-enough approximation while they run.
    pub fn snapshot(&self) -> Log2Histogram {
        let counts: [u64; LOG2_BUCKETS] =
            std::array::from_fn(|i| self.counts[i].load(Ordering::Relaxed));
        Log2Histogram::from_parts(counts, self.sum.load(Ordering::Relaxed))
    }
}

/// One thread's private slice of the metrics: atomic counters and histograms
/// addressed by the indices of the name tables the owning
/// [`ShardedMetrics`] was built with.
#[derive(Debug)]
pub struct MetricsShard {
    counters: Box<[AtomicU64]>,
    hists: Box<[AtomicLog2Histogram]>,
}

impl MetricsShard {
    fn new(counters: usize, hists: usize) -> MetricsShard {
        MetricsShard {
            counters: (0..counters).map(|_| AtomicU64::new(0)).collect(),
            hists: (0..hists).map(|_| AtomicLog2Histogram::new()).collect(),
        }
    }

    #[inline]
    pub fn add(&self, counter: usize, delta: u64) {
        self.counters[counter].fetch_add(delta, Ordering::Relaxed);
    }

    #[inline]
    pub fn incr(&self, counter: usize) {
        self.add(counter, 1);
    }

    pub fn counter(&self, counter: usize) -> u64 {
        self.counters[counter].load(Ordering::Relaxed)
    }

    #[inline]
    pub fn record(&self, hist: usize, value: u64) {
        self.hists[hist].record(value);
    }

    #[inline]
    pub fn record_duration(&self, hist: usize, d: Duration) {
        self.hists[hist].record_duration(d);
    }
}

/// A set of named metrics sharded across `n` owners (typically worker
/// threads plus a coordinator). Construction allocates everything up front;
/// recording into any shard is lock-free and allocation-free.
#[derive(Debug)]
pub struct ShardedMetrics {
    counter_names: &'static [&'static str],
    hist_names: &'static [&'static str],
    shards: Box<[MetricsShard]>,
}

impl ShardedMetrics {
    pub fn new(
        counter_names: &'static [&'static str],
        hist_names: &'static [&'static str],
        shards: usize,
    ) -> ShardedMetrics {
        assert!(shards >= 1, "need at least one shard");
        ShardedMetrics {
            counter_names,
            hist_names,
            shards: (0..shards)
                .map(|_| MetricsShard::new(counter_names.len(), hist_names.len()))
                .collect(),
        }
    }

    pub fn shards(&self) -> usize {
        self.shards.len()
    }

    pub fn shard(&self, i: usize) -> &MetricsShard {
        &self.shards[i]
    }

    pub fn counter_names(&self) -> &'static [&'static str] {
        self.counter_names
    }

    pub fn hist_names(&self) -> &'static [&'static str] {
        self.hist_names
    }

    /// Snapshot of one shard.
    pub fn shard_snapshot(&self, i: usize) -> MetricsSnapshot {
        self.snapshot_of(&self.shards[i..=i])
    }

    /// Merged snapshot across every shard.
    pub fn snapshot(&self) -> MetricsSnapshot {
        self.snapshot_of(&self.shards)
    }

    fn snapshot_of(&self, shards: &[MetricsShard]) -> MetricsSnapshot {
        let counters = self
            .counter_names
            .iter()
            .enumerate()
            .map(|(c, &name)| (name, shards.iter().map(|s| s.counter(c)).sum()))
            .collect();
        let hists = self
            .hist_names
            .iter()
            .enumerate()
            .map(|(h, &name)| {
                let mut merged = Log2Histogram::new();
                for s in shards {
                    merged.merge(&s.hists[h].snapshot());
                }
                (name, merged)
            })
            .collect();
        MetricsSnapshot { counters, hists }
    }
}

/// Point-in-time scalar view of a [`ShardedMetrics`] (one shard or the
/// merge): plain counters plus mergeable histograms. Cheap to diff across
/// window boundaries.
#[derive(Debug, Clone, PartialEq)]
pub struct MetricsSnapshot {
    pub counters: Vec<(&'static str, u64)>,
    pub hists: Vec<(&'static str, Log2Histogram)>,
}

impl MetricsSnapshot {
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(n, _)| *n == name).map(|(_, v)| *v).unwrap_or(0)
    }

    pub fn hist(&self, name: &str) -> Option<&Log2Histogram> {
        self.hists.iter().find(|(n, _)| *n == name).map(|(_, h)| h)
    }

    /// Per-metric difference against an `earlier` snapshot of the same
    /// metrics (window deltas over monotone counters/histograms).
    pub fn diff(&self, earlier: &MetricsSnapshot) -> MetricsSnapshot {
        MetricsSnapshot {
            counters: self
                .counters
                .iter()
                .map(|&(n, v)| (n, v.saturating_sub(earlier.counter(n))))
                .collect(),
            hists: self
                .hists
                .iter()
                .map(|(n, h)| (*n, earlier.hist(n).map(|e| h.diff(e)).unwrap_or_else(|| h.clone())))
                .collect(),
        }
    }

    /// Serializable summary (counter values plus per-histogram quantile
    /// rows) for JSON artifacts.
    pub fn report(&self) -> MetricsReport {
        MetricsReport {
            counters: self.counters.iter().map(|&(n, v)| (n.to_string(), v)).collect(),
            histograms: self
                .hists
                .iter()
                .map(|(n, h)| HistogramReport {
                    name: n.to_string(),
                    count: h.count(),
                    sum: h.sum(),
                    mean: h.mean(),
                    p50: h.quantile(0.50).unwrap_or(0),
                    p90: h.quantile(0.90).unwrap_or(0),
                    p99: h.quantile(0.99).unwrap_or(0),
                    max_bound: h.max_bound().unwrap_or(0),
                })
                .collect(),
        }
    }
}

/// JSON-friendly form of a [`MetricsSnapshot`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct MetricsReport {
    pub counters: Vec<(String, u64)>,
    pub histograms: Vec<HistogramReport>,
}

/// One histogram's scalar summary inside a [`MetricsReport`].
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct HistogramReport {
    pub name: String,
    pub count: u64,
    pub sum: u64,
    pub mean: f64,
    pub p50: u64,
    pub p90: u64,
    pub p99: u64,
    pub max_bound: u64,
}

#[cfg(test)]
mod tests {
    use super::*;

    const COUNTERS: &[&str] = &["requests", "admitted"];
    const HISTS: &[&str] = &["solve_ns"];

    #[test]
    fn shards_merge_to_totals() {
        let m = ShardedMetrics::new(COUNTERS, HISTS, 3);
        m.shard(0).add(0, 5);
        m.shard(1).add(0, 7);
        m.shard(2).incr(1);
        m.shard(1).record(0, 100);
        m.shard(2).record(0, 900);
        let merged = m.snapshot();
        assert_eq!(merged.counter("requests"), 12);
        assert_eq!(merged.counter("admitted"), 1);
        assert_eq!(merged.hist("solve_ns").unwrap().count(), 2);
        assert_eq!(merged.hist("solve_ns").unwrap().sum(), 1000);
        let s1 = m.shard_snapshot(1);
        assert_eq!(s1.counter("requests"), 7);
        assert_eq!(s1.hist("solve_ns").unwrap().count(), 1);
    }

    #[test]
    fn concurrent_recording_is_exact_after_join() {
        let m = ShardedMetrics::new(COUNTERS, HISTS, 4);
        std::thread::scope(|scope| {
            for w in 0..4 {
                let m = &m;
                scope.spawn(move || {
                    for i in 0..1000u64 {
                        m.shard(w).incr(0);
                        m.shard(w).record(0, i);
                    }
                });
            }
        });
        let merged = m.snapshot();
        assert_eq!(merged.counter("requests"), 4000);
        assert_eq!(merged.hist("solve_ns").unwrap().count(), 4000);
        assert_eq!(merged.hist("solve_ns").unwrap().sum(), 4 * (999 * 1000 / 2));
    }

    #[test]
    fn snapshot_diff_is_window_delta() {
        let m = ShardedMetrics::new(COUNTERS, HISTS, 1);
        m.shard(0).add(0, 3);
        m.shard(0).record(0, 10);
        let base = m.snapshot();
        m.shard(0).add(0, 4);
        m.shard(0).record(0, 1000);
        let delta = m.snapshot().diff(&base);
        assert_eq!(delta.counter("requests"), 4);
        assert_eq!(delta.hist("solve_ns").unwrap().count(), 1);
        assert_eq!(delta.hist("solve_ns").unwrap().sum(), 1000);
    }

    #[test]
    fn report_round_trips_through_json() {
        let m = ShardedMetrics::new(COUNTERS, HISTS, 1);
        m.shard(0).incr(0);
        m.shard(0).record_duration(0, Duration::from_micros(3));
        let report = m.snapshot().report();
        let json = serde_json::to_string(&report).unwrap();
        let back: MetricsReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
        assert_eq!(back.histograms[0].count, 1);
        assert!(back.histograms[0].p99 >= 3000);
    }
}

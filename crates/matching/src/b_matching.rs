//! Capacitated (b-)matching: minimum-cost maximum assignment where each left
//! node may be matched up to `b_left[l]` times (right nodes stay unit).
//!
//! Algorithm 2 of the reproduced paper matches each cloudlet to at most one
//! new instance per round; the b-matching generalization lets a cloudlet
//! absorb as many instances per round as its residual capacity allows, which
//! collapses the round loop — the `ablation_matching` bench quantifies what
//! that changes.

use crate::mcmf::McmfGraph;
use crate::{Matching, MatchingScratch};

/// Minimum-cost maximum b-matching.
///
/// * `b_left[l]` — how many times left node `l` may be matched (0 allowed).
/// * `n_right` — number of right nodes, each matched at most once.
/// * `edges` — `(left, right, cost)` triples; an edge may be *used* only
///   once, but a left node may take several distinct right partners.
///
/// Returns pairs sorted by left index; a left node appears once per matched
/// partner.
pub fn min_cost_max_b_matching(
    b_left: &[usize],
    n_right: usize,
    edges: &[(usize, usize, f64)],
) -> Matching {
    let mut scratch = MatchingScratch::new();
    let mut out = Matching { pairs: Vec::new(), cost: 0.0 };
    min_cost_max_b_matching_into(&mut scratch, b_left, n_right, edges, &mut out);
    out
}

/// [`min_cost_max_b_matching`] writing into a caller-owned [`Matching`] and
/// reusing `scratch`'s buffers (the same [`MatchingScratch`] the unit
/// matching uses). The network is rebuilt in the same arc order every call,
/// so results are bit-identical to the allocating entry point; with a warm
/// scratch the solve allocates nothing — this is what lets the heuristic's
/// `batch_rounds` ablation run under the counting-allocator gate.
pub fn min_cost_max_b_matching_into(
    scratch: &mut MatchingScratch,
    b_left: &[usize],
    n_right: usize,
    edges: &[(usize, usize, f64)],
    out: &mut Matching,
) {
    let n_left = b_left.len();
    let s = n_left + n_right;
    let t = s + 1;
    let g: &mut McmfGraph = &mut scratch.graph;
    g.reset(n_left + n_right + 2);
    scratch.edge_ids.clear();
    for &(l, r, c) in edges {
        assert!(l < n_left, "left endpoint {l} out of range");
        assert!(r < n_right, "right endpoint {r} out of range");
        assert!(c.is_finite(), "non-finite edge cost");
        scratch.edge_ids.push(g.add_edge(l, n_left + r, 1, c));
    }
    for (l, &b) in b_left.iter().enumerate() {
        if b > 0 {
            g.add_edge(s, l, b as i64, 0.0);
        }
    }
    for r in 0..n_right {
        g.add_edge(n_left + r, t, 1, 0.0);
    }
    let result = g.min_cost_max_flow(s, t, None);
    out.pairs.clear();
    out.cost = 0.0;
    for (i, &(l, r, c)) in edges.iter().enumerate() {
        if g.flow_on(scratch.edge_ids[i]) == 1 {
            out.pairs.push((l, r));
            out.cost += c;
        }
    }
    out.pairs.sort_unstable();
    debug_assert_eq!(out.pairs.len(), result.flow as usize);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reduces_to_unit_matching_when_b_is_one() {
        let edges = [(0, 0, 1.0), (0, 1, 4.0), (1, 0, 2.0), (1, 1, 1.5)];
        let unit = crate::min_cost_max_matching(2, 2, &edges);
        let b = min_cost_max_b_matching(&[1, 1], 2, &edges);
        assert_eq!(unit.cardinality(), b.cardinality());
        assert!((unit.cost - b.cost).abs() < 1e-9);
    }

    #[test]
    fn one_left_node_takes_everything() {
        let edges = [(0, 0, 1.0), (0, 1, 2.0), (0, 2, 3.0)];
        let m = min_cost_max_b_matching(&[3], 3, &edges);
        assert_eq!(m.cardinality(), 3);
        assert!((m.cost - 6.0).abs() < 1e-9);
    }

    #[test]
    fn capacity_limits_selection_to_cheapest() {
        let edges = [(0, 0, 5.0), (0, 1, 1.0), (0, 2, 3.0)];
        let m = min_cost_max_b_matching(&[2], 3, &edges);
        assert_eq!(m.cardinality(), 2);
        assert!((m.cost - 4.0).abs() < 1e-9); // picks costs 1 and 3
    }

    #[test]
    fn zero_capacity_node_unused() {
        let edges = [(0, 0, 1.0), (1, 0, 9.0)];
        let m = min_cost_max_b_matching(&[0, 1], 1, &edges);
        assert_eq!(m.pairs, vec![(1, 0)]);
    }

    #[test]
    fn reused_scratch_matches_fresh_solves() {
        type Case = (Vec<usize>, usize, Vec<(usize, usize, f64)>);
        let cases: Vec<Case> = vec![
            (vec![1, 1], 2, vec![(0, 0, 1.0), (0, 1, 4.0), (1, 0, 2.0), (1, 1, 1.5)]),
            (vec![3], 3, vec![(0, 0, 1.0), (0, 1, 2.0), (0, 2, 3.0)]),
            (vec![0, 1], 1, vec![(0, 0, 1.0), (1, 0, 9.0)]),
            (vec![2], 3, vec![(0, 0, 5.0), (0, 1, 1.0), (0, 2, 3.0)]),
        ];
        let mut scratch = MatchingScratch::new();
        let mut out = Matching { pairs: Vec::new(), cost: 0.0 };
        for (b_left, n_right, edges) in &cases {
            min_cost_max_b_matching_into(&mut scratch, b_left, *n_right, edges, &mut out);
            let fresh = min_cost_max_b_matching(b_left, *n_right, edges);
            assert_eq!(out, fresh);
        }
    }

    #[test]
    fn right_nodes_still_unit() {
        // Two lefts with spare capacity compete for one right.
        let edges = [(0, 0, 2.0), (1, 0, 1.0)];
        let m = min_cost_max_b_matching(&[5, 5], 1, &edges);
        assert_eq!(m.cardinality(), 1);
        assert!((m.cost - 1.0).abs() < 1e-9);
    }
}

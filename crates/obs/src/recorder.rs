//! The `Recorder` threads through solver hot loops, so the disabled path must
//! be as close to free as possible: `enabled()` is a single enum-discriminant
//! check and [`Recorder::emit_with`] never constructs the event when disabled.

use crate::event::Event;
use crate::flight::FlightRecorder;
use std::collections::BTreeMap;
use std::fs::File;
use std::io::{BufWriter, Write};
use std::path::Path;
use std::time::Duration;

/// Where emitted events go.
pub enum Sink {
    /// Discard everything. `enabled()` is false, so callers skip event
    /// construction entirely.
    Noop,
    /// Keep counters/timings/samples but discard events. `enabled()` is
    /// true — instrumented code still bumps counters (solver node counts,
    /// pivot totals) — yet no per-event memory or I/O is paid. This is the
    /// sink behind windowed metrics mode, where aggregates matter but a
    /// per-request event stream would be unbounded.
    Counters,
    /// Keep events in memory for inspection (tests, `Outcome::telemetry`).
    Memory(Vec<Event>),
    /// Stream one JSON object per line to a writer.
    Jsonl(BufWriter<Box<dyn Write + Send>>),
}

/// Collects structured events plus named counters/timings that summarize a
/// solve. Pass `&mut Recorder::noop()` (or use the untraced entry points)
/// when telemetry is not wanted.
pub struct Recorder {
    sink: Sink,
    events_emitted: u64,
    counters: BTreeMap<&'static str, u64>,
    timings: BTreeMap<&'static str, Duration>,
    /// Individual duration samples (seconds) behind each timing aggregate,
    /// for percentile reporting. Deliberately NOT part of [`Telemetry`]:
    /// wall-clock samples must never reach the byte-identity-checked JSONL
    /// stream or `Outcome` equality.
    samples: BTreeMap<&'static str, Vec<f64>>,
    /// Optional crash ring: every emitted event is also teed here (even when
    /// the sink discards it), so a failure can dump recent history without
    /// full tracing being on.
    flight: Option<FlightRecorder>,
}

impl Default for Recorder {
    fn default() -> Self {
        Recorder::noop()
    }
}

impl Recorder {
    fn with_sink(sink: Sink) -> Recorder {
        Recorder {
            sink,
            events_emitted: 0,
            counters: BTreeMap::new(),
            timings: BTreeMap::new(),
            samples: BTreeMap::new(),
            flight: None,
        }
    }

    pub fn noop() -> Recorder {
        Recorder::with_sink(Sink::Noop)
    }

    /// Aggregates-only recorder: counters, timings, and samples accumulate,
    /// but emitted events are discarded (see [`Sink::Counters`]).
    pub fn counters_only() -> Recorder {
        Recorder::with_sink(Sink::Counters)
    }

    pub fn memory() -> Recorder {
        Recorder::with_sink(Sink::Memory(Vec::new()))
    }

    /// Record JSONL to a file at `path` (truncates an existing file).
    pub fn jsonl_file(path: &Path) -> std::io::Result<Recorder> {
        let file = File::create(path)?;
        Ok(Recorder::with_sink(Sink::Jsonl(BufWriter::new(Box::new(file)))))
    }

    /// Record JSONL to an arbitrary writer (tests, stdout).
    pub fn jsonl_writer(writer: Box<dyn Write + Send>) -> Recorder {
        Recorder::with_sink(Sink::Jsonl(BufWriter::new(writer)))
    }

    /// Whether emitted events are observed. Hot loops gate all telemetry
    /// work on this. True when any sink other than no-op is active, or when
    /// a flight ring is attached (events must still be built to feed it).
    #[inline]
    pub fn enabled(&self) -> bool {
        !matches!(self.sink, Sink::Noop) || self.flight.is_some()
    }

    /// Attach a flight ring of `capacity` recent events (see
    /// [`FlightRecorder`]). Replaces any previous ring.
    pub fn attach_flight(&mut self, capacity: usize) {
        self.flight = Some(FlightRecorder::new(capacity));
    }

    pub fn flight(&self) -> Option<&FlightRecorder> {
        self.flight.as_ref()
    }

    pub fn flight_mut(&mut self) -> Option<&mut FlightRecorder> {
        self.flight.as_mut()
    }

    /// Dump the attached flight ring to `path` (no-op without a ring).
    pub fn dump_flight(&self, reason: &str, path: &Path) -> std::io::Result<()> {
        match &self.flight {
            Some(fl) => fl.dump_to_path(reason, path),
            None => Ok(()),
        }
    }

    pub fn emit(&mut self, event: Event) {
        if let Some(fl) = &mut self.flight {
            fl.push(event.clone());
        }
        match &mut self.sink {
            Sink::Noop | Sink::Counters => return,
            Sink::Memory(buf) => buf.push(event),
            Sink::Jsonl(w) => {
                let _ = writeln!(w, "{}", event.to_json());
            }
        }
        self.events_emitted += 1;
    }

    /// Emit an event built lazily: under a no-op recorder the closure is
    /// never invoked, so callers can put formatting and snapshotting work
    /// inside it without paying for it when telemetry is off.
    #[inline]
    pub fn emit_with<F: FnOnce() -> Event>(&mut self, build: F) {
        if self.enabled() {
            self.emit(build());
        }
    }

    /// Bump a named counter (no-op when disabled).
    #[inline]
    pub fn count(&mut self, name: &'static str, delta: u64) {
        if self.enabled() {
            *self.counters.entry(name).or_insert(0) += delta;
        }
    }

    /// Accumulate a named duration (no-op when disabled).
    #[inline]
    pub fn record_time(&mut self, name: &'static str, elapsed: Duration) {
        if self.enabled() {
            *self.timings.entry(name).or_insert(Duration::ZERO) += elapsed;
        }
    }

    /// Record one duration sample under `name` (no-op when disabled).
    /// Callers typically pair this with [`Recorder::record_time`]: the
    /// aggregate feeds [`Telemetry`], the samples feed percentile summaries
    /// via [`Recorder::time_samples`].
    #[inline]
    pub fn time_sample(&mut self, name: &'static str, elapsed: Duration) {
        if self.enabled() {
            self.samples.entry(name).or_default().push(elapsed.as_secs_f64());
        }
    }

    /// The duration samples (seconds) recorded under `name`, in recording
    /// order (empty if none).
    pub fn time_samples(&self, name: &str) -> &[f64] {
        self.samples.get(name).map(Vec::as_slice).unwrap_or(&[])
    }

    /// Events captured by a memory sink (empty for other sinks).
    pub fn events(&self) -> &[Event] {
        match &self.sink {
            Sink::Memory(buf) => buf,
            _ => &[],
        }
    }

    pub fn events_emitted(&self) -> u64 {
        self.events_emitted
    }

    pub fn counter(&self, name: &str) -> u64 {
        self.counters.get(name).copied().unwrap_or(0)
    }

    pub fn flush(&mut self) -> std::io::Result<()> {
        if let Sink::Jsonl(w) = &mut self.sink {
            w.flush()?;
        }
        Ok(())
    }

    /// Fold another recorder into this one: its memory-captured events are
    /// re-emitted here *in their original order*, and its counters and
    /// timings are added onto this recorder's. This is the deterministic
    /// telemetry merge of the parallel pipeline — each worker records into a
    /// private memory recorder, and the coordinator absorbs them strictly in
    /// request-sequence order, so the merged stream is byte-identical to a
    /// sequential run regardless of worker completion order. Events of a
    /// non-memory sink cannot be replayed (they were already written
    /// elsewhere); only its counters/timings are merged.
    pub fn absorb(&mut self, other: Recorder) {
        if let Sink::Memory(events) = other.sink {
            for event in events {
                self.emit(event);
            }
        }
        for (name, delta) in other.counters {
            *self.counters.entry(name).or_insert(0) += delta;
        }
        for (name, elapsed) in other.timings {
            *self.timings.entry(name).or_insert(Duration::ZERO) += elapsed;
        }
        for (name, mut samples) in other.samples {
            self.samples.entry(name).or_default().append(&mut samples);
        }
    }

    /// Snapshot counters and timings into a portable summary.
    pub fn summary(&self) -> Telemetry {
        Telemetry {
            events_emitted: self.events_emitted,
            counters: self.counters.iter().map(|(k, v)| (k.to_string(), *v)).collect(),
            timings_s: self.timings.iter().map(|(k, v)| (k.to_string(), v.as_secs_f64())).collect(),
        }
    }
}

/// Portable summary of a recorder's counters and accumulated timings,
/// attached to `relaug::solution::Outcome` and serialized by `--json` output.
#[derive(Debug, Clone, PartialEq, Default, serde::Serialize, serde::Deserialize)]
pub struct Telemetry {
    pub events_emitted: u64,
    pub counters: Vec<(String, u64)>,
    pub timings_s: Vec<(String, f64)>,
}

impl Telemetry {
    pub fn counter(&self, name: &str) -> u64 {
        self.counters.iter().find(|(k, _)| k == name).map(|(_, v)| *v).unwrap_or(0)
    }

    pub fn timing_s(&self, name: &str) -> f64 {
        self.timings_s.iter().find(|(k, _)| k == name).map(|(_, v)| *v).unwrap_or(0.0)
    }

    pub fn is_empty(&self) -> bool {
        self.events_emitted == 0 && self.counters.is_empty() && self.timings_s.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn noop_never_builds_events() {
        let mut calls = 0u32;
        let mut rec = Recorder::noop();
        for _ in 0..1000 {
            rec.emit_with(|| {
                calls += 1;
                Event::new("expensive")
            });
        }
        assert_eq!(calls, 0, "no-op recorder must not invoke the event builder");
        assert_eq!(rec.events_emitted(), 0);
        assert!(!rec.enabled());
    }

    #[test]
    fn memory_sink_captures_in_order() {
        let mut rec = Recorder::memory();
        rec.emit(Event::new("a").with("i", 1u64));
        rec.emit_with(|| Event::new("b").with("i", 2u64));
        assert_eq!(rec.events_emitted(), 2);
        assert_eq!(rec.events()[0].kind, "a");
        assert_eq!(rec.events()[1].field("i").unwrap().as_u64(), Some(2));
    }

    #[test]
    fn counters_and_timings_summarize() {
        let mut rec = Recorder::memory();
        rec.count("nodes", 3);
        rec.count("nodes", 4);
        rec.record_time("lp", Duration::from_millis(10));
        rec.record_time("lp", Duration::from_millis(5));
        let t = rec.summary();
        assert_eq!(t.counter("nodes"), 7);
        assert!((t.timing_s("lp") - 0.015).abs() < 1e-9);
        assert_eq!(t.counter("missing"), 0);
    }

    #[test]
    fn time_samples_record_and_merge() {
        let mut rec = Recorder::memory();
        rec.time_sample("solve", Duration::from_millis(2));
        rec.time_sample("solve", Duration::from_millis(4));
        assert_eq!(rec.time_samples("solve").len(), 2);
        assert!((rec.time_samples("solve")[1] - 0.004).abs() < 1e-9);
        let mut worker = Recorder::memory();
        worker.time_sample("solve", Duration::from_millis(8));
        rec.absorb(worker);
        assert_eq!(rec.time_samples("solve").len(), 3);
        assert_eq!(rec.time_samples("missing"), &[] as &[f64]);
        // Samples stay out of the portable summary by design.
        assert!(rec.summary().timings_s.iter().all(|(k, _)| k != "solve"));
        let mut off = Recorder::noop();
        off.time_sample("solve", Duration::from_millis(1));
        assert!(off.time_samples("solve").is_empty());
    }

    #[test]
    fn absorb_replays_events_and_merges_counters() {
        let mut main = Recorder::memory();
        main.emit(Event::new("before"));
        main.count("shared", 1);
        let mut worker = Recorder::memory();
        worker.emit(Event::new("w.a").with("i", 1u64));
        worker.emit(Event::new("w.b").with("i", 2u64));
        worker.count("shared", 2);
        worker.count("worker_only", 5);
        worker.record_time("solve", Duration::from_millis(4));
        main.absorb(worker);
        let kinds: Vec<&str> = main.events().iter().map(|e| e.kind).collect();
        assert_eq!(kinds, vec!["before", "w.a", "w.b"], "order preserved");
        assert_eq!(main.events_emitted(), 3);
        assert_eq!(main.counter("shared"), 3);
        assert_eq!(main.counter("worker_only"), 5);
        assert!((main.summary().timing_s("solve") - 0.004).abs() < 1e-9);
    }

    #[test]
    fn jsonl_sink_writes_one_line_per_event() {
        use std::sync::{Arc, Mutex};

        #[derive(Clone)]
        struct Shared(Arc<Mutex<Vec<u8>>>);
        impl Write for Shared {
            fn write(&mut self, buf: &[u8]) -> std::io::Result<usize> {
                self.0.lock().unwrap().extend_from_slice(buf);
                Ok(buf.len())
            }
            fn flush(&mut self) -> std::io::Result<()> {
                Ok(())
            }
        }

        let shared = Shared(Arc::new(Mutex::new(Vec::new())));
        let mut rec = Recorder::jsonl_writer(Box::new(shared.clone()));
        rec.emit(Event::new("x").with("i", 1u64));
        rec.emit(Event::new("y").with("i", 2u64));
        rec.flush().unwrap();
        let text = String::from_utf8(shared.0.lock().unwrap().clone()).unwrap();
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines.len(), 2);
        for line in lines {
            let v: serde_json::Value = serde_json::from_str(line).unwrap();
            assert!(v.get("event").is_some());
        }
    }

    #[test]
    fn counters_only_accumulates_but_discards_events() {
        let mut rec = Recorder::counters_only();
        assert!(rec.enabled(), "instrumentation must still run");
        rec.emit(Event::new("solver.node").with("i", 1u64));
        rec.count("solver.pivots", 9);
        rec.record_time("lp", Duration::from_millis(2));
        assert_eq!(rec.events_emitted(), 0, "events are dropped");
        assert!(rec.events().is_empty());
        assert_eq!(rec.summary().counter("solver.pivots"), 9);
        assert!((rec.summary().timing_s("lp") - 0.002).abs() < 1e-9);
    }

    #[test]
    fn flight_ring_tees_events_even_on_noop_sink() {
        let mut rec = Recorder::noop();
        assert!(!rec.enabled());
        rec.attach_flight(2);
        assert!(rec.enabled(), "flight ring needs events to be built");
        for k in 0..3u64 {
            rec.emit(Event::new("stream.request").with("id", k));
        }
        assert_eq!(rec.events_emitted(), 0, "noop sink still drops events");
        let fl = rec.flight().unwrap();
        assert_eq!(fl.len(), 2);
        assert_eq!(fl.dropped(), 1);
        let mut out = Vec::new();
        fl.dump("test", &mut out).unwrap();
        assert_eq!(String::from_utf8(out).unwrap().lines().count(), 3);
    }

    #[test]
    fn telemetry_round_trips_through_json() {
        let t = Telemetry {
            events_emitted: 3,
            counters: vec![("nodes".to_string(), 12)],
            timings_s: vec![("lp".to_string(), 0.5)],
        };
        let s = serde_json::to_string(&t).unwrap();
        let back: Telemetry = serde_json::from_str(&s).unwrap();
        assert_eq!(back, t);
    }
}

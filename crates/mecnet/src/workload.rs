//! Workload generation mirroring the paper's Section 7.1 experiment settings.
//!
//! Defaults: 100 APs, 10% of them cloudlets with 4 000–8 000 MHz, GT-ITM
//! (Waxman) topology, |F| = 30 function types demanding 200–400 MHz,
//! chain lengths 3–10, function reliabilities 0.8–0.9, residual capacity 25%,
//! `l = 1`.

use crate::admission::{random_placement, PrimaryPlacement};
use crate::network::MecNetwork;
use crate::request::SfcRequest;
use crate::topology::{waxman, WaxmanConfig};
use crate::transit_stub::{transit_stub, TransitStubConfig};
use crate::vnf::VnfCatalog;
use rand::Rng;

/// Which topology model generated networks use.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub enum TopologyKind {
    /// GT-ITM's flat random model (the paper's evaluation setting); the node
    /// count is taken from [`WorkloadConfig::nodes`].
    Waxman(WaxmanConfig),
    /// GT-ITM's hierarchical transit-stub model; the node count is implied
    /// by the hierarchy parameters and overrides [`WorkloadConfig::nodes`].
    TransitStub(TransitStubConfig),
}

/// Every knob of the paper's experiment settings.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct WorkloadConfig {
    /// Number of access points (paper: 100).
    pub nodes: usize,
    /// Fraction of APs co-located with a cloudlet (paper: 10%).
    pub cloudlet_fraction: f64,
    /// Cloudlet capacity range in MHz (paper: 4 000–8 000).
    pub capacity_range: (f64, f64),
    /// Number of VNF types |F| (paper: 30).
    pub catalog_size: usize,
    /// Per-instance demand range in MHz (paper: 200–400).
    pub demand_range: (f64, f64),
    /// VNF instance reliability range (Fig. 1/3: [0.8, 0.9]).
    pub reliability_range: (f64, f64),
    /// SFC length range (paper default: 3–10; Fig. 1 sweeps 2–20).
    pub sfc_len_range: (usize, usize),
    /// Reliability expectation `ρ_j` of generated requests.
    pub expectation: f64,
    /// Fraction of each cloudlet's capacity that is residual, i.e. available
    /// for secondary instances (Fig. 1/2: 25%; Fig. 3 sweeps 1/16–1).
    pub residual_fraction: f64,
    /// Topology model parameters.
    pub waxman: WaxmanConfig,
    /// Optional override of the topology model; `None` uses `waxman` (the
    /// paper's setting).
    pub topology: Option<TopologyKind>,
}

impl Default for WorkloadConfig {
    fn default() -> Self {
        WorkloadConfig {
            nodes: 100,
            cloudlet_fraction: 0.10,
            capacity_range: (4000.0, 8000.0),
            catalog_size: 30,
            demand_range: (200.0, 400.0),
            reliability_range: (0.8, 0.9),
            sfc_len_range: (3, 10),
            expectation: 0.99,
            residual_fraction: 0.25,
            waxman: WaxmanConfig::default(),
            topology: None,
        }
    }
}

impl WorkloadConfig {
    /// Number of cloudlets implied by `nodes` and `cloudlet_fraction`
    /// (at least one).
    pub fn num_cloudlets(&self) -> usize {
        ((self.nodes as f64 * self.cloudlet_fraction).round() as usize).max(1)
    }
}

/// A fully generated single-request scenario: the input to the augmentation
/// algorithms.
#[derive(Debug, Clone)]
pub struct Scenario {
    pub network: MecNetwork,
    pub catalog: VnfCatalog,
    pub request: SfcRequest,
    /// Primary placement of the admitted request.
    pub placement: PrimaryPlacement,
    /// Residual capacity per node available for secondaries.
    pub residual: Vec<f64>,
}

/// Generate a network (topology + cloudlets) from the config.
pub fn generate_network<R: Rng + ?Sized>(cfg: &WorkloadConfig, rng: &mut R) -> MecNetwork {
    let graph = match &cfg.topology {
        None => {
            let mut wax = cfg.waxman.clone();
            wax.nodes = cfg.nodes;
            waxman(&wax, rng).0
        }
        Some(TopologyKind::Waxman(w)) => {
            let mut wax = w.clone();
            wax.nodes = cfg.nodes;
            waxman(&wax, rng).0
        }
        Some(TopologyKind::TransitStub(ts)) => transit_stub(ts, rng).0,
    };
    let cloudlets = ((graph.num_nodes() as f64 * cfg.cloudlet_fraction).round() as usize).max(1);
    MecNetwork::with_random_cloudlets(graph, cloudlets, cfg.capacity_range, rng)
}

/// Generate a VNF catalog from the config.
pub fn generate_catalog<R: Rng + ?Sized>(cfg: &WorkloadConfig, rng: &mut R) -> VnfCatalog {
    VnfCatalog::random(cfg.catalog_size, cfg.demand_range, cfg.reliability_range, rng)
}

/// Generate a complete scenario: network, catalog, one admitted request with
/// randomly placed primaries, and residual capacities.
pub fn generate_scenario<R: Rng + ?Sized>(cfg: &WorkloadConfig, rng: &mut R) -> Scenario {
    let network = generate_network(cfg, rng);
    let catalog = generate_catalog(cfg, rng);
    let request =
        SfcRequest::random(0, &catalog, cfg.sfc_len_range, cfg.expectation, cfg.nodes, rng);
    let placement = random_placement(&network, &request, rng)
        .expect("generated networks always have at least one cloudlet");
    let residual = network.residual_capacities(cfg.residual_fraction);
    Scenario { network, catalog, request, placement, residual }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn default_matches_paper_settings() {
        let cfg = WorkloadConfig::default();
        assert_eq!(cfg.nodes, 100);
        assert_eq!(cfg.num_cloudlets(), 10);
        assert_eq!(cfg.catalog_size, 30);
        assert_eq!(cfg.capacity_range, (4000.0, 8000.0));
        assert_eq!(cfg.demand_range, (200.0, 400.0));
        assert_eq!(cfg.residual_fraction, 0.25);
    }

    #[test]
    fn scenario_is_internally_consistent() {
        let cfg = WorkloadConfig::default();
        let mut rng = StdRng::seed_from_u64(123);
        let s = generate_scenario(&cfg, &mut rng);
        assert_eq!(s.network.num_cloudlets(), 10);
        assert_eq!(s.placement.len(), s.request.len());
        assert!(s.placement.locations.iter().all(|&v| s.network.is_cloudlet(v)));
        assert_eq!(s.residual.len(), s.network.num_nodes());
        for v in s.network.graph().nodes() {
            let expected = s.network.capacity(v) * cfg.residual_fraction;
            assert!((s.residual[v.index()] - expected).abs() < 1e-9);
        }
        assert!(s.request.sfc.iter().all(|f| f.index() < s.catalog.len()));
    }

    #[test]
    fn scenarios_are_deterministic_per_seed() {
        let cfg = WorkloadConfig::default();
        let a = generate_scenario(&cfg, &mut StdRng::seed_from_u64(77));
        let b = generate_scenario(&cfg, &mut StdRng::seed_from_u64(77));
        assert_eq!(a.request, b.request);
        assert_eq!(a.placement, b.placement);
        assert_eq!(a.residual, b.residual);
    }

    #[test]
    fn tiny_network_still_gets_a_cloudlet() {
        let cfg = WorkloadConfig { nodes: 5, cloudlet_fraction: 0.01, ..Default::default() };
        assert_eq!(cfg.num_cloudlets(), 1);
        let mut rng = StdRng::seed_from_u64(5);
        let net = generate_network(&cfg, &mut rng);
        assert_eq!(net.num_cloudlets(), 1);
    }

    #[test]
    fn transit_stub_topology_generates() {
        let cfg = WorkloadConfig {
            topology: Some(TopologyKind::TransitStub(Default::default())),
            ..Default::default()
        };
        let mut rng = StdRng::seed_from_u64(8);
        let net = generate_network(&cfg, &mut rng);
        assert_eq!(net.num_nodes(), 100); // 4 transit + 4*3*8 stub nodes
        assert!(net.graph().is_connected());
        assert_eq!(net.num_cloudlets(), 10);
        // Full scenarios work on it too.
        let s = generate_scenario(&cfg, &mut rng);
        assert_eq!(s.placement.len(), s.request.len());
    }

    #[test]
    fn config_round_trips_through_serde() {
        let cfg = WorkloadConfig::default();
        let json = serde_json::to_string(&cfg).unwrap();
        let back: WorkloadConfig = serde_json::from_str(&json).unwrap();
        assert_eq!(back.nodes, cfg.nodes);
        assert_eq!(back.residual_fraction, cfg.residual_fraction);
    }
}

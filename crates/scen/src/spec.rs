//! Serde-able scenario specifications: one value describes a whole
//! experiment — topology, catalog, and request-stream shape — and
//! [`ScenarioSpec::build`] turns it into a concrete network + catalog.
//!
//! Specs come from two places: the named presets in [`ScenarioSpec::preset`]
//! (`sagin-1k`, `sagin-5k`, `ba-1k`, `fattree-16`, `waxman-100`) or a JSON
//! file, resolved uniformly by [`ScenarioSpec::load`] so harness binaries can
//! accept `--scenario sagin-1k` and `--scenario path/to/spec.json`
//! interchangeably.

use mecnet::network::MecNetwork;
use mecnet::topology::{waxman, WaxmanConfig};
use mecnet::transit_stub::{transit_stub, NodeRole, TransitStubConfig};
use mecnet::vnf::VnfCatalog;
use rand::rngs::StdRng;
use rand::seq::SliceRandom;
use rand::Rng;
use rand::SeedableRng;

use crate::zoo::{fat_tree, sagin, FatTreeRole, TierSpec};
use crate::{derive_seed, CATALOG_SALT, TOPO_SALT};

/// Top-level scenario description. Serializable with the workspace's vendored
/// serde, so a spec round-trips through JSON (`serde_json::to_string_pretty`
/// / `from_str`).
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ScenarioSpec {
    /// Human-readable scenario name (preset name or free-form for files).
    pub name: String,
    /// Master seed; every topology/catalog/stream draw derives from it.
    pub seed: u64,
    pub topology: TopologySpec,
    pub catalog: CatalogSpec,
    pub stream: StreamSpec,
}

/// Which generator builds the substrate graph and how cloudlets are placed.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub enum TopologySpec {
    /// Flat GT-ITM/Waxman graph with uniformly random cloudlet placement.
    Waxman {
        nodes: usize,
        alpha: f64,
        beta: f64,
        cloudlet_fraction: f64,
        capacity_range: (f64, f64),
    },
    /// GT-ITM transit-stub hierarchy; transit (backbone) nodes host the
    /// cloudlets.
    TransitStub {
        transit_domains: usize,
        transit_nodes: usize,
        stubs_per_transit_node: usize,
        stub_nodes: usize,
        intra_alpha: f64,
        capacity_range: (f64, f64),
    },
    /// Layered SAGIN-style hierarchy; see [`TierSpec`]. Top tier first.
    Sagin { tiers: Vec<TierSpec> },
    /// Barabási–Albert preferential attachment with uniformly random
    /// cloudlet placement.
    BarabasiAlbert {
        nodes: usize,
        attach: usize,
        cloudlet_fraction: f64,
        capacity_range: (f64, f64),
    },
    /// k-ary fat-tree fabric; every host is a cloudlet.
    FatTree { k: usize, host_capacity: (f64, f64) },
}

/// VNF catalog shape, mirroring the paper's Section 7.1 parameters.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct CatalogSpec {
    pub types: usize,
    pub demand_range: (f64, f64),
    pub reliability_range: (f64, f64),
}

impl Default for CatalogSpec {
    fn default() -> Self {
        CatalogSpec { types: 30, demand_range: (200.0, 400.0), reliability_range: (0.8, 0.9) }
    }
}

/// TTL (holding-time) distribution of a request.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub enum TtlSpec {
    /// Light-tailed: `Exp(1/mean)`.
    Exponential { mean: f64 },
    /// Heavy-tailed: `Pareto(scale, shape)`; mean is `scale*shape/(shape-1)`
    /// for `shape > 1`.
    Pareto { scale: f64, shape: f64 },
}

/// Popular-service model: requests draw their VNF chain from a bounded,
/// Zipf-skewed catalog of service templates instead of sampling an ad-hoc
/// chain per request. This is what makes million-request streams *resolve the
/// same admission problem* over and over — the premise both the plan cache
/// and the sharing-scheme literature exploit: a real MEC deployment serves a
/// few dozen service types whose popularity is heavily skewed, not 30^6
/// distinct chains.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct ServiceSpec {
    /// Number of distinct service templates (chains) in the scenario.
    pub count: usize,
    /// Zipf exponent on template popularity: template 0 is the hottest.
    pub skew: f64,
}

impl Default for ServiceSpec {
    fn default() -> Self {
        ServiceSpec { count: 24, skew: 1.2 }
    }
}

/// Request-stream shape: arrival process, per-request content, and endpoint
/// popularity. See [`crate::stream::RequestStream`] for the exact sampling.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct StreamSpec {
    /// Base arrival rate (requests per time unit) before modulation.
    pub arrival_rate: f64,
    /// SFC length range, inclusive.
    pub sfc_len_range: (usize, usize),
    /// Per-request reliability expectation.
    pub expectation: f64,
    pub ttl: TtlSpec,
    /// Diurnal sinusoid amplitude on the arrival rate, clamped to
    /// `[0, 0.95]`; `0` disables modulation.
    pub diurnal_amplitude: f64,
    /// Period of the diurnal sinusoid (same time unit as `arrival_rate`).
    pub diurnal_period: f64,
    /// Probability that any given epoch of length `flash_epoch` is a flash
    /// crowd, multiplying the rate by `flash_multiplier`.
    pub flash_probability: f64,
    pub flash_multiplier: f64,
    pub flash_epoch: f64,
    /// Zipf exponent on endpoint popularity: `0` keeps the per-tier weights
    /// as-is; larger values concentrate traffic on a few hot access points.
    pub popularity_skew: f64,
    /// Bounded popular-service catalog; `None` (the value missing from a
    /// JSON spec) falls back to ad-hoc per-request chains, the pre-service
    /// sampling, byte for byte.
    pub services: Option<ServiceSpec>,
}

impl Default for StreamSpec {
    fn default() -> Self {
        StreamSpec {
            arrival_rate: 10.0,
            sfc_len_range: (3, 6),
            expectation: 0.99,
            ttl: TtlSpec::Exponential { mean: 120.0 },
            diurnal_amplitude: 0.4,
            diurnal_period: 86_400.0,
            flash_probability: 0.02,
            flash_multiplier: 4.0,
            flash_epoch: 600.0,
            popularity_skew: 0.8,
            services: Some(ServiceSpec::default()),
        }
    }
}

/// A realized scenario: the network and catalog plus the annotations the
/// request stream needs (tier labels and endpoint weights).
pub struct BuiltScenario {
    pub spec: ScenarioSpec,
    pub network: MecNetwork,
    pub catalog: VnfCatalog,
    /// Tier index per node, 0 = top/core. Flat topologies use a single tier.
    pub tier_of: Vec<usize>,
    pub tier_names: Vec<String>,
    /// Per-node endpoint-sampling weight (before Zipf skew). Nodes with
    /// weight 0 (e.g. fat-tree switches) never source or sink requests.
    pub node_weights: Vec<f64>,
}

impl BuiltScenario {
    /// Number of cloudlet-capable nodes in the built network.
    pub fn cloudlets(&self) -> usize {
        self.network.cloudlet_ids().len()
    }
}

impl ScenarioSpec {
    /// Known preset names, in the order they are documented.
    pub const PRESETS: &'static [&'static str] =
        &["waxman-100", "sagin-1k", "sagin-5k", "ba-1k", "fattree-16"];

    /// Resolve `arg` as a preset name, else as a path to a JSON spec file.
    pub fn load(arg: &str) -> Result<ScenarioSpec, String> {
        if let Some(spec) = Self::preset(arg) {
            return Ok(spec);
        }
        let text = std::fs::read_to_string(arg).map_err(|e| {
            format!(
                "--scenario {arg}: not a preset ({}) and not a readable file: {e}",
                Self::PRESETS.join(", ")
            )
        })?;
        serde_json::from_str(&text).map_err(|e| format!("--scenario {arg}: bad spec JSON: {e:?}"))
    }

    /// Built-in named scenarios. `sagin-1k` is the headline scale point:
    /// ~1,000 cloudlets across three tiers. `sagin-5k` is the stress point.
    pub fn preset(name: &str) -> Option<ScenarioSpec> {
        let spec = |topology| ScenarioSpec {
            name: name.to_string(),
            seed: 20_200_817, // ICPP 2020 flavor; override per experiment
            topology,
            catalog: CatalogSpec::default(),
            stream: StreamSpec::default(),
        };
        match name {
            // The paper's own scale, for apples-to-apples comparisons.
            "waxman-100" => Some(spec(TopologySpec::Waxman {
                nodes: 100,
                alpha: 0.4,
                beta: 0.15,
                cloudlet_fraction: 0.10,
                capacity_range: (4000.0, 8000.0),
            })),
            "sagin-1k" => Some(spec(TopologySpec::Sagin { tiers: sagin_tiers(1) })),
            "sagin-5k" => Some(spec(TopologySpec::Sagin { tiers: sagin_tiers(5) })),
            "ba-1k" => Some(spec(TopologySpec::BarabasiAlbert {
                nodes: 2500,
                attach: 3,
                cloudlet_fraction: 0.40,
                capacity_range: (3000.0, 9000.0),
            })),
            "fattree-16" => {
                Some(spec(TopologySpec::FatTree { k: 16, host_capacity: (4000.0, 8000.0) }))
            }
            _ => None,
        }
    }

    /// Realize the spec: build the graph, place per-tier cloudlet capacities,
    /// and draw the VNF catalog. Topology and catalog use independent salted
    /// RNG streams of `seed`, so stream-parameter changes never perturb the
    /// network.
    pub fn build(&self) -> BuiltScenario {
        let mut rng = StdRng::seed_from_u64(derive_seed(self.seed, 0, TOPO_SALT));
        let (network, tier_of, tier_names, node_weights) = match &self.topology {
            TopologySpec::Waxman { nodes, alpha, beta, cloudlet_fraction, capacity_range } => {
                let cfg = WaxmanConfig {
                    nodes: *nodes,
                    alpha: *alpha,
                    beta: *beta,
                    ensure_connected: true,
                };
                let (g, _) = waxman(&cfg, &mut rng);
                let n = g.num_nodes();
                let count = fraction_count(n, *cloudlet_fraction);
                let net = MecNetwork::with_random_cloudlets(g, count, *capacity_range, &mut rng);
                (net, vec![0; n], vec!["waxman".to_string()], vec![1.0; n])
            }
            TopologySpec::TransitStub {
                transit_domains,
                transit_nodes,
                stubs_per_transit_node,
                stub_nodes,
                intra_alpha,
                capacity_range,
            } => {
                let cfg = TransitStubConfig {
                    transit_domains: *transit_domains,
                    transit_nodes: *transit_nodes,
                    stubs_per_transit_node: *stubs_per_transit_node,
                    stub_nodes: *stub_nodes,
                    intra_alpha: *intra_alpha,
                };
                let (g, roles) = transit_stub(&cfg, &mut rng);
                let n = g.num_nodes();
                let mut capacity = vec![0.0; n];
                let mut tier_of = vec![1; n];
                for (i, role) in roles.iter().enumerate() {
                    if matches!(role, NodeRole::Transit { .. }) {
                        capacity[i] = rng.gen_range(capacity_range.0..=capacity_range.1);
                        tier_of[i] = 0;
                    }
                }
                let net = MecNetwork::new(g, capacity);
                (net, tier_of, vec!["transit".to_string(), "stub".to_string()], vec![1.0; n])
            }
            TopologySpec::Sagin { tiers } => {
                let (g, tier_of) = sagin(tiers, &mut rng);
                let n = g.num_nodes();
                let mut capacity = vec![0.0; n];
                let mut weights = vec![0.0; n];
                for (t, tier) in tiers.iter().enumerate() {
                    let ids: Vec<usize> = (0..n).filter(|&i| tier_of[i] == t).collect();
                    let per_node = tier.popularity_weight / ids.len() as f64;
                    for &i in &ids {
                        weights[i] = per_node;
                    }
                    let mut picks = ids.clone();
                    picks.shuffle(&mut rng);
                    picks.truncate(fraction_count(ids.len(), tier.cloudlet_fraction));
                    for i in picks {
                        capacity[i] = rng.gen_range(tier.capacity_range.0..=tier.capacity_range.1);
                    }
                }
                let net = MecNetwork::new(g, capacity);
                let names = tiers.iter().map(|t| t.name.clone()).collect();
                (net, tier_of, names, weights)
            }
            TopologySpec::BarabasiAlbert { nodes, attach, cloudlet_fraction, capacity_range } => {
                let g = crate::zoo::barabasi_albert(*nodes, *attach, &mut rng);
                let n = g.num_nodes();
                let count = fraction_count(n, *cloudlet_fraction);
                let net = MecNetwork::with_random_cloudlets(g, count, *capacity_range, &mut rng);
                (net, vec![0; n], vec!["ba".to_string()], vec![1.0; n])
            }
            TopologySpec::FatTree { k, host_capacity } => {
                let (g, roles) = fat_tree(*k);
                let n = g.num_nodes();
                let mut capacity = vec![0.0; n];
                let mut tier_of = vec![0; n];
                let mut weights = vec![0.0; n];
                for (i, role) in roles.iter().enumerate() {
                    match role {
                        FatTreeRole::Core => tier_of[i] = 0,
                        FatTreeRole::Aggregation { .. } => tier_of[i] = 1,
                        FatTreeRole::Edge { .. } => tier_of[i] = 2,
                        FatTreeRole::Host { .. } => {
                            tier_of[i] = 3;
                            capacity[i] = rng.gen_range(host_capacity.0..=host_capacity.1);
                            weights[i] = 1.0;
                        }
                    }
                }
                let net = MecNetwork::new(g, capacity);
                let names = ["core", "agg", "edge", "host"].iter().map(|s| s.to_string()).collect();
                (net, tier_of, names, weights)
            }
        };
        let mut cat_rng = StdRng::seed_from_u64(derive_seed(self.seed, 0, CATALOG_SALT));
        let catalog = VnfCatalog::random(
            self.catalog.types,
            self.catalog.demand_range,
            self.catalog.reliability_range,
            &mut cat_rng,
        );
        debug_assert!(network.graph().is_connected());
        BuiltScenario { spec: self.clone(), network, catalog, tier_of, tier_names, node_weights }
    }
}

/// Three-tier SAGIN preset scaled by `x` (x=1 → ~1,000 cloudlets).
fn sagin_tiers(x: usize) -> Vec<TierSpec> {
    vec![
        TierSpec {
            name: "space-core".into(),
            nodes: 24 * x,
            cloudlet_fraction: 1.0,
            capacity_range: (24_000.0, 48_000.0),
            alpha: 0.8,
            beta: 0.6,
            uplinks: 0,
            popularity_weight: 0.5,
        },
        TierSpec {
            name: "aerial-agg".into(),
            nodes: 240 * x,
            cloudlet_fraction: 0.5,
            capacity_range: (8_000.0, 16_000.0),
            alpha: 0.5,
            beta: 0.3,
            uplinks: 2,
            popularity_weight: 1.5,
        },
        TierSpec {
            name: "ground-edge".into(),
            nodes: 2400 * x,
            cloudlet_fraction: 0.36,
            capacity_range: (2_000.0, 6_000.0),
            alpha: 0.4,
            beta: 0.12,
            uplinks: 1,
            popularity_weight: 8.0,
        },
    ]
}

/// `floor(fraction * n)` clamped to `[1, n]` — every scenario keeps at least
/// one cloudlet so admission is well-defined.
fn fraction_count(n: usize, fraction: f64) -> usize {
    ((n as f64 * fraction.clamp(0.0, 1.0)) as usize).clamp(1, n)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_build_connected_networks() {
        for name in ["waxman-100", "fattree-16"] {
            let spec = ScenarioSpec::preset(name).unwrap();
            let built = spec.build();
            assert!(built.network.graph().is_connected(), "{name} disconnected");
            assert!(built.cloudlets() > 0);
            assert_eq!(built.node_weights.len(), built.network.num_nodes());
        }
    }

    #[test]
    fn sagin_1k_hits_the_cloudlet_scale_point() {
        let built = ScenarioSpec::preset("sagin-1k").unwrap().build();
        let c = built.cloudlets();
        assert!(c >= 1000, "sagin-1k must provide >= 1000 cloudlets, got {c}");
        assert_eq!(built.tier_names.len(), 3);
        // Capacity classes: core cloudlets are strictly fatter than edge ones.
        let cap = |tier: usize| -> (f64, f64) {
            let caps: Vec<f64> = built
                .network
                .cloudlet_ids()
                .iter()
                .filter(|&&i| built.tier_of[i.index()] == tier)
                .map(|&i| built.network.capacity(i))
                .collect();
            let min = caps.iter().cloned().fold(f64::INFINITY, f64::min);
            let max = caps.iter().cloned().fold(0.0f64, f64::max);
            (min, max)
        };
        let (core_min, _) = cap(0);
        let (_, edge_max) = cap(2);
        assert!(core_min > edge_max, "core class {core_min} must exceed edge class {edge_max}");
    }

    #[test]
    fn build_is_deterministic_per_seed() {
        let spec = ScenarioSpec::preset("waxman-100").unwrap();
        let a = spec.build();
        let b = spec.build();
        assert_eq!(a.network.num_nodes(), b.network.num_nodes());
        assert_eq!(a.network.cloudlet_ids(), b.network.cloudlet_ids());
        let mut c = spec.clone();
        c.seed ^= 1;
        let c = c.build();
        assert_ne!(a.network.cloudlet_ids(), c.network.cloudlet_ids());
    }

    #[test]
    fn spec_round_trips_through_json() {
        let spec = ScenarioSpec::preset("sagin-1k").unwrap();
        let text = serde_json::to_string_pretty(&spec).unwrap();
        let back: ScenarioSpec = serde_json::from_str(&text).unwrap();
        assert_eq!(back.name, spec.name);
        assert_eq!(back.seed, spec.seed);
        match (&back.topology, &spec.topology) {
            (TopologySpec::Sagin { tiers: a }, TopologySpec::Sagin { tiers: b }) => {
                assert_eq!(a.len(), b.len());
                assert_eq!(a[2].nodes, b[2].nodes);
                assert_eq!(a[0].capacity_range, b[0].capacity_range);
            }
            _ => panic!("topology variant lost in round-trip"),
        }
    }

    #[test]
    fn load_rejects_unknown_names_with_preset_list() {
        let err = ScenarioSpec::load("no-such-preset").unwrap_err();
        assert!(err.contains("sagin-1k"), "error should list presets: {err}");
    }
}

//! Offline stand-in for `crossbeam`. Only the `channel` module is provided:
//! an unbounded multi-producer **multi-consumer** queue (mutex-protected
//! `VecDeque` plus a condvar), matching the subset of the real
//! `crossbeam-channel` API this workspace uses — clone senders *and*
//! receivers into scoped threads, `recv`/`try_recv`, drain by iteration.
//! Disconnection follows the real crate's semantics: `recv` on an empty
//! channel whose senders are all dropped returns `Err(RecvError)`.

pub mod channel {
    use std::collections::VecDeque;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Shared<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        senders: AtomicUsize,
        receivers: AtomicUsize,
    }

    pub struct Sender<T>(Arc<Shared<T>>);

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::SeqCst);
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender gone: wake all blocked receivers so they can
                // observe the disconnection.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Sender<T> {
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            if self.0.receivers.load(Ordering::SeqCst) == 0 {
                return Err(SendError(value));
            }
            self.0.queue.lock().unwrap().push_back(value);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    pub struct Receiver<T>(Arc<Shared<T>>);

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            self.0.receivers.fetch_add(1, Ordering::SeqCst);
            Receiver(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Receiver<T> {
        fn drop(&mut self) {
            self.0.receivers.fetch_sub(1, Ordering::SeqCst);
        }
    }

    impl<T> Receiver<T> {
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.0.queue.lock().unwrap();
            loop {
                if let Some(v) = queue.pop_front() {
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self.0.ready.wait(queue).unwrap();
            }
        }

        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.0.queue.lock().unwrap();
            match queue.pop_front() {
                Some(v) => Ok(v),
                None if self.0.senders.load(Ordering::SeqCst) == 0 => {
                    Err(TryRecvError::Disconnected)
                }
                None => Err(TryRecvError::Empty),
            }
        }

        pub fn iter(&self) -> Iter<'_, T> {
            Iter(self)
        }
    }

    impl<T> IntoIterator for Receiver<T> {
        type Item = T;
        type IntoIter = IntoIter<T>;
        fn into_iter(self) -> IntoIter<T> {
            IntoIter(self)
        }
    }

    impl<'a, T> IntoIterator for &'a Receiver<T> {
        type Item = T;
        type IntoIter = Iter<'a, T>;
        fn into_iter(self) -> Iter<'a, T> {
            self.iter()
        }
    }

    pub struct Iter<'a, T>(&'a Receiver<T>);

    impl<T> Iterator for Iter<'_, T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.0.recv().ok()
        }
    }

    pub struct IntoIter<T>(Receiver<T>);

    impl<T> Iterator for IntoIter<T> {
        type Item = T;
        fn next(&mut self) -> Option<T> {
            self.0.recv().ok()
        }
    }

    pub struct SendError<T>(pub T);

    // Like the real crate (and std's mpsc), Debug does not require T: Debug.
    impl<T> std::fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> std::fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    #[derive(Debug, PartialEq, Eq)]
    pub struct RecvError;

    #[derive(Debug, PartialEq, Eq)]
    pub enum TryRecvError {
        Empty,
        Disconnected,
    }

    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        let shared = Arc::new(Shared {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            senders: AtomicUsize::new(1),
            receivers: AtomicUsize::new(1),
        });
        (Sender(Arc::clone(&shared)), Receiver(shared))
    }

    #[cfg(test)]
    mod tests {
        use super::*;

        #[test]
        fn fan_in_preserves_all_messages() {
            let (tx, rx) = unbounded::<(usize, usize)>();
            std::thread::scope(|scope| {
                for w in 0..4 {
                    let tx = tx.clone();
                    scope.spawn(move || {
                        for i in (w..20).step_by(4) {
                            tx.send((i, i * i)).unwrap();
                        }
                    });
                }
                drop(tx);
                let mut got = vec![None; 20];
                for (i, sq) in rx {
                    got[i] = Some(sq);
                }
                for (i, sq) in got.iter().enumerate() {
                    assert_eq!(*sq, Some(i * i));
                }
            });
        }

        #[test]
        fn fan_out_to_cloned_receivers_covers_all_jobs() {
            let (tx, rx) = unbounded::<usize>();
            let (done_tx, done_rx) = unbounded::<usize>();
            std::thread::scope(|scope| {
                for _ in 0..4 {
                    let rx = rx.clone();
                    let done_tx = done_tx.clone();
                    scope.spawn(move || {
                        for job in rx.iter() {
                            done_tx.send(job * 10).unwrap();
                        }
                    });
                }
                drop(rx);
                drop(done_tx);
                for i in 0..100 {
                    tx.send(i).unwrap();
                }
                drop(tx);
                let mut results: Vec<usize> = done_rx.iter().collect();
                results.sort_unstable();
                assert_eq!(results, (0..100).map(|i| i * 10).collect::<Vec<_>>());
            });
        }

        #[test]
        fn recv_reports_disconnection_only_when_drained() {
            let (tx, rx) = unbounded::<u32>();
            tx.send(1).unwrap();
            tx.send(2).unwrap();
            drop(tx);
            assert_eq!(rx.recv(), Ok(1));
            assert_eq!(rx.try_recv(), Ok(2));
            assert_eq!(rx.recv(), Err(RecvError));
            assert_eq!(rx.try_recv(), Err(TryRecvError::Disconnected));
        }

        #[test]
        fn send_to_dropped_receiver_errors() {
            let (tx, rx) = unbounded::<u32>();
            drop(rx);
            assert!(tx.send(7).is_err());
        }
    }
}

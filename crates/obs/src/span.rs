//! Spans: named monotonic timers whose elapsed time lands in the recorder's
//! timing map (and optionally as an event) when finished.

use crate::recorder::Recorder;
use std::time::{Duration, Instant};

/// A started timer. Create with [`Span::start`], close with
/// [`Span::finish`] to record the elapsed time under the span's name.
#[derive(Debug, Clone, Copy)]
pub struct Span {
    name: &'static str,
    start: Instant,
}

impl Span {
    pub fn start(name: &'static str) -> Span {
        Span { name, start: Instant::now() }
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Accumulate the elapsed time into `rec`'s timing for this span's name
    /// and return it.
    pub fn finish(self, rec: &mut Recorder) -> Duration {
        let elapsed = self.elapsed();
        rec.record_time(self.name, elapsed);
        elapsed
    }
}

/// Time a closure and record it under `name`. Returns the closure's output.
pub fn timed<T>(rec: &mut Recorder, name: &'static str, f: impl FnOnce() -> T) -> T {
    let span = Span::start(name);
    let out = f();
    span.finish(rec);
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn finish_accumulates_under_name() {
        let mut rec = Recorder::memory();
        let s = Span::start("phase");
        std::thread::sleep(Duration::from_millis(2));
        let d = s.finish(&mut rec);
        assert!(d >= Duration::from_millis(2));
        assert!(rec.summary().timing_s("phase") > 0.0);
    }

    #[test]
    fn timed_returns_output() {
        let mut rec = Recorder::memory();
        let out = timed(&mut rec, "work", || 40 + 2);
        assert_eq!(out, 42);
        assert!(rec.summary().timings_s.iter().any(|(k, _)| k == "work"));
    }

    #[test]
    fn noop_recorder_drops_timing() {
        let mut rec = Recorder::noop();
        timed(&mut rec, "work", || ());
        assert!(rec.summary().timings_s.is_empty());
    }
}

//! Structured telemetry for the solver crates: spans, counters, histograms,
//! lock-free per-worker metrics shards, a windowed-aggregation interval spec,
//! a flight-recorder ring for postmortems, and a `Recorder` that sinks events
//! to memory or a JSONL writer.

pub mod contention;
pub mod event;
pub mod flight;
pub mod metrics;
pub mod plancache;
pub mod recorder;
pub mod shard;
pub mod span;
pub mod window;

pub use contention::{ShardContention, ShardContentionReport, ShardContentionRow};
pub use event::Event;
pub use flight::FlightRecorder;
pub use metrics::{Counter, Distribution, Gauge};
pub use plancache::PlanCacheReport;
pub use recorder::{Recorder, Sink, Telemetry};
pub use shard::{
    AtomicLog2Histogram, HistogramReport, MetricsReport, MetricsShard, MetricsSnapshot,
    ShardedMetrics,
};
pub use span::{timed, Span};
pub use window::MetricsInterval;

// The shared mergeable histogram (satellite: one log2-bucket type re-exported
// by both `expkit` and `obs`).
pub use expkit::{Log2Histogram, LOG2_BUCKETS};

//! Discrete-event failure/recovery simulator for SFC requests in a mobile
//! edge-cloud network.
//!
//! The analytic model of the paper gives each augmented request a
//! reliability `u_j = Π_i (1 − (1 − r_i)^{k_i+1})` — a *steady-state*
//! probability. This crate closes the loop: it simulates the stochastic
//! processes behind that formula (Poisson arrivals, exponential holding
//! times, per-instance failure/repair cycles whose steady-state availability
//! is exactly `r_i`) and measures the *empirical* time-weighted availability
//! of every admitted request, so analytic predictions and simulated reality
//! can be compared directly — and so repair policies that re-run
//! augmentation at run time can be evaluated against the static baseline.
//!
//! The building blocks:
//! - [`event`]: deterministic future-event list (binary heap keyed by time,
//!   monotone sequence tie-break);
//! - [`process`]: exponential sampling and the MTBF/MTTR ↔ `r_i` derivation;
//! - [`policy`]: pluggable [`RepairPolicy`] implementations
//!   ([`NoRepair`], [`Reactive`], [`PeriodicAudit`]);
//! - [`engine`]: the simulation loop with exact capacity accounting;
//! - [`report`]: the per-run [`SloReport`] (empirical vs analytic
//!   availability, outage/repair-latency distributions).
//!
//! Runs are fully deterministic given a seed: same config → byte-identical
//! telemetry and report JSON. See `crates/bench/src/bin/sim_exp.rs` for the
//! CLI harness.

pub mod engine;
pub mod event;
pub mod policy;
pub mod process;
pub mod report;

pub use engine::{
    run, run_traced, run_with_source, run_with_source_traced, PoissonSource, RequestSource,
    SimConfig,
};
pub use event::{EventKind, EventQueue, SimEvent};
pub use policy::{from_name, NoRepair, PeriodicAudit, Reactive, RepairPolicy, RequestView};
pub use process::{mtbf_for_availability, sample_exp};
pub use report::{RequestSlo, RunCounts, SloReport};

//! Ablation benches for the design choices DESIGN.md calls out:
//!
//! * `lhop` — the locality radius `l` (1, 2, 3, and effectively-unbounded,
//!   which recovers the unrestricted placement of Lin et al. 2020) vs
//!   reliability and runtime of the heuristic.
//! * `rounding` — Algorithm 1 with 1 vs 8 independent rounding draws.
//! * `matching_vs_greedy` — what the min-cost-maximum-matching structure of
//!   Algorithm 2 buys over a plain greedy (the matching spreads instances
//!   across cloudlets per round; greedy commits one at a time).
//!
//! Reliability deltas are printed once per config at bench start (Criterion
//! measures only time; quality is what the ablation is about, so we log it).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mecnet::workload::{generate_scenario, WorkloadConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use relaug::instance::AugmentationInstance;
use relaug::randomized::RandomizedConfig;
use relaug::{greedy, heuristic, randomized};

fn scenarios(n: usize) -> Vec<mecnet::workload::Scenario> {
    let cfg = WorkloadConfig { sfc_len_range: (8, 8), ..Default::default() };
    (0..n)
        .map(|seed| {
            let mut rng = StdRng::seed_from_u64(seed as u64);
            generate_scenario(&cfg, &mut rng)
        })
        .collect()
}

fn bench_lhop(c: &mut Criterion) {
    let scens = scenarios(6);
    let mut group = c.benchmark_group("ablation_lhop");
    for &l in &[1u32, 2, 3, 99] {
        let insts: Vec<AugmentationInstance> =
            scens.iter().map(|s| AugmentationInstance::from_scenario(s, l)).collect();
        let mean_rel: f64 = insts
            .iter()
            .map(|i| heuristic::solve(i, &Default::default()).metrics.reliability)
            .sum::<f64>()
            / insts.len() as f64;
        let mean_items: f64 =
            insts.iter().map(|i| i.total_items() as f64).sum::<f64>() / insts.len() as f64;
        eprintln!("l={l}: heuristic mean reliability {mean_rel:.4}, mean N {mean_items:.0}");
        group.bench_with_input(BenchmarkId::from_parameter(l), &insts, |b, insts| {
            let mut i = 0;
            b.iter(|| {
                let out = heuristic::solve(&insts[i % insts.len()], &Default::default());
                i += 1;
                out.metrics.reliability
            })
        });
    }
    group.finish();
}

fn bench_rounding(c: &mut Criterion) {
    let scens = scenarios(6);
    let insts: Vec<AugmentationInstance> =
        scens.iter().map(|s| AugmentationInstance::from_scenario(s, 1)).collect();
    let mut group = c.benchmark_group("ablation_rounding");
    for &rounds in &[1usize, 8] {
        let cfg = RandomizedConfig { rounds, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(11);
        let mean_rel: f64 = insts
            .iter()
            .map(|i| randomized::solve(i, &cfg, &mut rng).unwrap().metrics.reliability)
            .sum::<f64>()
            / insts.len() as f64;
        eprintln!("rounds={rounds}: randomized mean reliability {mean_rel:.4}");
        group.bench_with_input(BenchmarkId::from_parameter(rounds), &cfg, |b, cfg| {
            let mut rng = StdRng::seed_from_u64(12);
            let mut i = 0;
            b.iter(|| {
                let out = randomized::solve(&insts[i % insts.len()], cfg, &mut rng).unwrap();
                i += 1;
                out.metrics.reliability
            })
        });
    }
    group.finish();
}

fn bench_matching_vs_greedy(c: &mut Criterion) {
    let scens = scenarios(6);
    let insts: Vec<AugmentationInstance> =
        scens.iter().map(|s| AugmentationInstance::from_scenario(s, 1)).collect();
    let heur_rel: f64 = insts
        .iter()
        .map(|i| heuristic::solve(i, &Default::default()).metrics.reliability)
        .sum::<f64>()
        / insts.len() as f64;
    let greedy_rel: f64 = insts
        .iter()
        .map(|i| greedy::solve(i, &Default::default()).metrics.reliability)
        .sum::<f64>()
        / insts.len() as f64;
    eprintln!("matching heuristic mean reliability {heur_rel:.4} vs greedy {greedy_rel:.4}");
    let mut group = c.benchmark_group("ablation_matching");
    group.bench_function("matching_heuristic", |b| {
        let mut i = 0;
        b.iter(|| {
            let out = heuristic::solve(&insts[i % insts.len()], &Default::default());
            i += 1;
            out.metrics.reliability
        })
    });
    group.bench_function("greedy_baseline", |b| {
        let mut i = 0;
        b.iter(|| {
            let out = greedy::solve(&insts[i % insts.len()], &Default::default());
            i += 1;
            out.metrics.reliability
        })
    });
    let batch_cfg = relaug::heuristic::HeuristicConfig { batch_rounds: true, ..Default::default() };
    let batch_rel: f64 =
        insts.iter().map(|i| heuristic::solve(i, &batch_cfg).metrics.reliability).sum::<f64>()
            / insts.len() as f64;
    eprintln!("batch (b-matching) heuristic mean reliability {batch_rel:.4}");
    group.bench_function("batch_heuristic", |b| {
        let mut i = 0;
        b.iter(|| {
            let out = heuristic::solve(&insts[i % insts.len()], &batch_cfg);
            i += 1;
            out.metrics.reliability
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(5));
    targets = bench_lhop, bench_rounding, bench_matching_vs_greedy
}
criterion_main!(benches);

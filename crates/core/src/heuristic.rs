//! Algorithm 2: the matching-based heuristic.
//!
//! Builds a series of bipartite graphs `G_1, G_2, …` between cloudlets with
//! remaining residual capacity and still-unplaced candidate secondary items,
//! extracts a minimum-cost maximum matching from each (edge weights are the
//! paper's Eq. 3 costs), commits the matched placements, and repeats. Each
//! round a cloudlet receives at most one new instance, so capacities are never
//! violated (Theorem 6.2's feasibility argument).
//!
//! The loop guard is configurable via [`StopRule`]; see DESIGN.md on why the
//! literal budget guard `c(S) < C` of the pseudocode stops after one round
//! for realistic `ρ_j` and why stopping at the reached expectation is the
//! faithful reading.

use std::time::Instant;

use matching::{min_cost_max_b_matching, min_cost_max_matching_into};
use obs::Recorder;

use crate::instance::AugmentationInstance;
use crate::reliability;
use crate::scratch::SolveScratch;
use crate::solution::{Metrics, Outcome, SolverInfo};

/// When the matching loop stops (besides running out of edges).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum StopRule {
    /// Stop once the achieved reliability reaches `ρ_j` — the problem's
    /// actual goal and the default.
    #[default]
    Expectation,
    /// The pseudocode's literal guard: stop once the accumulated item cost
    /// `c(S)` reaches the budget `C = -log ρ_j`.
    PaperBudget,
    /// Keep matching until no placeable item remains (upper-bounds what the
    /// heuristic could ever achieve).
    Exhaust,
}

/// Configuration of Algorithm 2.
#[derive(Debug, Clone, Default)]
pub struct HeuristicConfig {
    pub stop: StopRule,
    /// Item-enumeration cap (see [`crate::ilp::IlpConfig::gain_floor`]);
    /// `0.0` disables capping. The default `1e-12` only drops items whose
    /// reliability contribution is below double precision.
    pub gain_floor: f64,
    /// Ablation: use a capacitated b-matching per round (each cloudlet may
    /// absorb several instances per round instead of one), collapsing the
    /// round loop. Matched placements are still committed cheapest-first with
    /// a capacity check, so feasibility is preserved. `false` is the paper's
    /// Algorithm 2.
    pub batch_rounds: bool,
}

impl HeuristicConfig {
    pub fn with_stop(stop: StopRule) -> Self {
        HeuristicConfig { stop, gain_floor: 1e-12, batch_rounds: false }
    }
}

/// Run Algorithm 2. Never violates capacities or locality.
pub fn solve(inst: &AugmentationInstance, cfg: &HeuristicConfig) -> Outcome {
    solve_traced(inst, cfg, &mut Recorder::noop())
}

/// [`solve`] with telemetry: emits one `heuristic.round` event per matching
/// round carrying the bipartite graph dimensions (bins × items, edge count),
/// the matching size, the placements committed and the reliability gain.
pub fn solve_traced(
    inst: &AugmentationInstance,
    cfg: &HeuristicConfig,
    rec: &mut Recorder,
) -> Outcome {
    solve_scratch(inst, cfg, rec, &mut SolveScratch::new())
}

/// [`solve_traced`] on caller-owned scratch buffers. With a warm
/// [`SolveScratch`] the whole solve — matching network included — runs
/// without heap allocation (see `crates/bench/benches/solve_alloc.rs`),
/// except for the returned [`Outcome`] itself.
pub fn solve_scratch(
    inst: &AugmentationInstance,
    cfg: &HeuristicConfig,
    rec: &mut Recorder,
    scratch: &mut SolveScratch,
) -> Outcome {
    let started = Instant::now();
    let rounds = solve_in(inst, cfg, rec, scratch);
    let aug = scratch.sol.materialize();
    debug_assert!(aug.is_capacity_feasible(inst));
    debug_assert!(aug.respects_locality(inst));
    let metrics = Metrics::compute(&aug, inst);
    Outcome {
        augmentation: aug,
        metrics,
        runtime: started.elapsed(),
        solver: SolverInfo::Heuristic { matching_rounds: rounds },
        telemetry: rec.summary(),
    }
}

/// Allocation-free core of Algorithm 2: builds the solution in `scratch.sol`
/// (materialize it for an owned [`crate::solution::Augmentation`]) and
/// returns the number of matching rounds. The result is bit-identical to the
/// historical allocating implementation — same graphs, same matchings, same
/// commit order, same floating-point expressions — for any prior state of
/// `scratch`. Only the `batch_rounds` ablation and enabled-recorder event
/// closures still allocate.
pub fn solve_in(
    inst: &AugmentationInstance,
    cfg: &HeuristicConfig,
    rec: &mut Recorder,
    scratch: &mut SolveScratch,
) -> usize {
    let SolveScratch { sol, heur, matching, matching_out, .. } = scratch;
    let crate::scratch::HeuristicScratch {
        cap,
        next_k,
        residual,
        edges,
        item_of,
        pairs,
        placed_per_func,
    } = heur;
    sol.begin(inst.chain_len());
    if inst.expectation_met_by_primaries() {
        rec.emit_with(|| {
            obs::Event::new("heuristic.early_exit")
                .with("base_reliability", inst.base_reliability())
        });
        return 0;
    }

    let gain_floor = if cfg.gain_floor > 0.0 { cfg.gain_floor } else { 0.0 };
    // Per function: slots still to place are next_k[i]..=cap[i].
    cap.clear();
    cap.extend(inst.functions.iter().map(|f| f.capped_slots(gain_floor)));
    next_k.clear();
    next_k.resize(inst.chain_len(), 1);
    residual.clear();
    residual.extend(inst.bins.iter().map(|b| b.residual));
    let budget = inst.budget();
    let mut total_cost = 0.0f64;
    let mut rounds = 0usize;

    loop {
        // Stop-rule check before building the next graph.
        match cfg.stop {
            StopRule::Expectation => {
                if sol.reliability(inst) >= inst.expectation {
                    break;
                }
            }
            StopRule::PaperBudget => {
                if total_cost >= budget {
                    break;
                }
            }
            StopRule::Exhaust => {}
        }

        // Build G_l: left = bins with residual capacity, right = remaining
        // items; edge iff the bin is eligible for the item's function and can
        // fit one instance.
        edges.clear();
        item_of.clear();
        for (i, f) in inst.functions.iter().enumerate() {
            let usable = f.eligible_bins.iter().filter(|&&b| residual[b] >= f.demand).count();
            if usable == 0 {
                continue;
            }
            // A function can gain at most `usable` placements per round (each
            // bin hosts at most one match), so only its next `usable` slots
            // can possibly be matched; enumerating more only inflates the
            // graph.
            let hi = cap[i].min(next_k[i] + usable - 1);
            for k in next_k[i]..=hi {
                let cost = reliability::paper_cost(f.reliability, f.existing_backups + k);
                // The cost is strictly increasing in `k`; once the marginal
                // underflows to zero (cost = +inf) this slot and every later
                // one add no representable reliability, so they can't be
                // usefully matched. Reachable on substrates with ~hundreds of
                // eligible bins, where one round enumerates past the
                // underflow point.
                if !cost.is_finite() {
                    break;
                }
                let right = item_of.len();
                item_of.push((i, k));
                for &b in &f.eligible_bins {
                    if residual[b] >= f.demand {
                        edges.push((b, right, cost));
                    }
                }
            }
        }
        if edges.is_empty() {
            break;
        }
        rounds += 1;
        let rel_before = if rec.enabled() { sol.reliability(inst) } else { 0.0 };
        if cfg.batch_rounds {
            // Conservative per-bin multiplicity: what certainly fits even if
            // every match demands the largest eligible function. (Ablation
            // path — allocates; the production unit matching below does not.)
            let min_demand: Vec<f64> = (0..inst.bins.len())
                .map(|b| {
                    inst.functions
                        .iter()
                        .filter(|f| f.eligible_bins.contains(&b))
                        .map(|f| f.demand)
                        .fold(f64::INFINITY, f64::min)
                })
                .collect();
            let b_left: Vec<usize> = residual
                .iter()
                .zip(&min_demand)
                .map(|(&r, &d)| if d.is_finite() { (r / d).floor() as usize } else { 0 })
                .collect();
            *matching_out = min_cost_max_b_matching(&b_left, item_of.len(), edges);
        } else {
            min_cost_max_matching_into(
                matching,
                inst.bins.len(),
                item_of.len(),
                edges,
                matching_out,
            );
        }
        if matching_out.is_empty() {
            break;
        }
        // Commit cheapest-first with a capacity check: exact for the unit
        // matching (the graph only had fitting edges), necessary for the
        // batch variant whose multiplicity bound used the *smallest* demand.
        // Keying on (k, original position) makes the unstable sort reproduce
        // the historical stable sort by k exactly.
        pairs.clear();
        pairs.extend(matching_out.pairs.iter().enumerate().map(|(pos, &(b, r))| (b, r, pos)));
        pairs.sort_unstable_by_key(|&(_, r, pos)| (item_of[r].1, pos));
        placed_per_func.clear();
        placed_per_func.resize(inst.chain_len(), 0);
        let mut committed = 0usize;
        for &(b, right, _) in pairs.iter() {
            let (i, k) = item_of[right];
            if residual[b] >= inst.functions[i].demand {
                residual[b] -= inst.functions[i].demand;
                sol.add(i, b);
                total_cost += reliability::paper_cost(
                    inst.functions[i].reliability,
                    inst.functions[i].existing_backups + k,
                );
                placed_per_func[i] += 1;
                committed += 1;
            }
        }
        rec.count("heuristic.rounds", 1);
        rec.count("heuristic.committed", committed as u64);
        rec.emit_with(|| {
            let left_bins = {
                let mut seen = vec![false; inst.bins.len()];
                for &(b, _, _) in edges.iter() {
                    seen[b] = true;
                }
                seen.iter().filter(|&&s| s).count()
            };
            obs::Event::new("heuristic.round")
                .with("round", rounds)
                .with("left_bins", left_bins)
                .with("right_items", item_of.len())
                .with("edges", edges.len())
                .with("matched", matching_out.pairs.len())
                .with("committed", committed)
                .with("reliability", sol.reliability(inst))
                .with("reliability_gain", sol.reliability(inst) - rel_before)
        });
        if committed == 0 {
            break;
        }
        // Matched items per function are exactly its cheapest remaining slots
        // (min-cost matching always prefers lower k).
        for (i, &p) in placed_per_func.iter().enumerate() {
            next_k[i] += p;
        }
    }

    if cfg.stop == StopRule::Expectation {
        // The final matching round may overshoot the expectation; trim the
        // surplus like the other algorithms do.
        let trimmed = sol.trim_to_expectation(inst);
        rec.count("heuristic.trimmed_secondaries", trimmed as u64);
    }
    rounds
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{Bin, FunctionSlot};
    use mecnet::graph::NodeId;
    use mecnet::vnf::VnfTypeId;

    fn slot(demand: f64, r: f64, eligible: Vec<usize>, max: usize) -> FunctionSlot {
        FunctionSlot {
            vnf: VnfTypeId(0),
            demand,
            reliability: r,
            primary: NodeId(0),
            eligible_bins: eligible,
            max_secondaries: max,
            existing_backups: 0,
        }
    }

    #[test]
    fn early_exit_when_base_suffices() {
        let inst = AugmentationInstance {
            functions: vec![slot(100.0, 0.95, vec![0], 3)],
            bins: vec![Bin { node: NodeId(0), residual: 400.0 }],
            l: 1,
            expectation: 0.9,
        };
        let out = solve(&inst, &HeuristicConfig::default());
        assert_eq!(out.metrics.total_secondaries, 0);
        assert_eq!(out.solver, SolverInfo::Heuristic { matching_rounds: 0 });
    }

    #[test]
    fn exhausts_capacity_toward_high_expectation() {
        let inst = AugmentationInstance {
            functions: vec![slot(100.0, 0.8, vec![0], 3)],
            bins: vec![Bin { node: NodeId(0), residual: 350.0 }],
            l: 1,
            expectation: 0.9999999,
        };
        let out = solve(&inst, &HeuristicConfig::default());
        // 3 secondaries fit; expectation needs R(0.8, k) >= 0.9999999 -> k = 10,
        // so the heuristic should exhaust all 3.
        assert_eq!(out.augmentation.counts(), vec![3]);
        assert!(out.augmentation.is_capacity_feasible(&inst));
        // One bin: each round places one instance -> 3 rounds (+1 empty-check).
        assert_eq!(out.solver, SolverInfo::Heuristic { matching_rounds: 3 });
    }

    #[test]
    fn stops_at_expectation() {
        let inst = AugmentationInstance {
            functions: vec![slot(100.0, 0.8, vec![0], 5)],
            bins: vec![Bin { node: NodeId(0), residual: 600.0 }],
            l: 1,
            expectation: 0.95, // R(0.8, 1) = 0.96 >= 0.95 -> one secondary
        };
        let out = solve(&inst, &HeuristicConfig::default());
        assert_eq!(out.augmentation.counts(), vec![1]);
        assert!(out.metrics.met_expectation);
    }

    #[test]
    fn paper_budget_rule_stops_after_first_round() {
        // C = -ln(0.95) ≈ 0.051; the first item's cost -ln(0.16) ≈ 1.83
        // already exceeds it, so the literal rule stops after round 1.
        let inst = AugmentationInstance {
            functions: vec![slot(100.0, 0.8, vec![0], 5)],
            bins: vec![Bin { node: NodeId(0), residual: 600.0 }],
            l: 1,
            expectation: 0.95,
        };
        let out = solve(&inst, &HeuristicConfig::with_stop(StopRule::PaperBudget));
        assert_eq!(out.solver, SolverInfo::Heuristic { matching_rounds: 1 });
        assert_eq!(out.augmentation.counts(), vec![1]);
    }

    #[test]
    fn exhaust_rule_fills_everything() {
        let inst = AugmentationInstance {
            functions: vec![slot(100.0, 0.9, vec![0, 1], 7), slot(150.0, 0.85, vec![1], 2)],
            bins: vec![
                Bin { node: NodeId(0), residual: 250.0 },
                Bin { node: NodeId(1), residual: 400.0 },
            ],
            l: 1,
            expectation: 0.5, // trivially met, but Exhaust ignores it...
        };
        // NOTE: early EXIT still applies (paper line 2-4). Use an expectation
        // the base misses.
        let mut inst = inst;
        inst.expectation = 0.9999999999;
        let out = solve(
            &inst,
            &HeuristicConfig { stop: StopRule::Exhaust, gain_floor: 0.0, batch_rounds: false },
        );
        // Bin0 fits 2 f0-instances (200 <= 250); bin1: best packing uses all
        // 400 MHz; the matching is greedy per round so verify only feasibility
        // and that nothing more could fit.
        assert!(out.augmentation.is_capacity_feasible(&inst));
        let loads = out.augmentation.bin_loads(&inst);
        // No instance of any function with a usable bin remains placeable.
        for (i, f) in inst.functions.iter().enumerate() {
            let placed: usize = out.augmentation.counts()[i];
            if placed < f.max_secondaries {
                for &b in &f.eligible_bins {
                    assert!(
                        inst.bins[b].residual - loads[b] < f.demand,
                        "function {i} could still fit in bin {b}"
                    );
                }
            }
        }
    }

    #[test]
    fn prefers_low_reliability_functions_under_scarcity() {
        // One slot of capacity; matching must pick the cheaper item, which by
        // Eq. 3 is the *less reliable* function's first backup...
        // cost(r, 1) = -ln(r(1-r)); r=0.6 -> -ln(0.24)=1.43; r=0.9 ->
        // -ln(0.09)=2.41. So f(r=0.6) wins — which also maximizes gain here.
        let inst = AugmentationInstance {
            functions: vec![slot(200.0, 0.6, vec![0], 1), slot(200.0, 0.9, vec![0], 1)],
            bins: vec![Bin { node: NodeId(0), residual: 200.0 }],
            l: 1,
            expectation: 0.999999,
        };
        let out = solve(&inst, &HeuristicConfig::default());
        assert_eq!(out.augmentation.counts(), vec![1, 0]);
    }

    #[test]
    fn respects_multiple_bins_per_round() {
        // One function, three eligible bins: a single round can place three
        // instances (one per bin).
        let inst = AugmentationInstance {
            functions: vec![slot(100.0, 0.8, vec![0, 1, 2], 3)],
            bins: vec![
                Bin { node: NodeId(0), residual: 100.0 },
                Bin { node: NodeId(1), residual: 100.0 },
                Bin { node: NodeId(2), residual: 100.0 },
            ],
            l: 1,
            expectation: 0.9999999,
        };
        let out = solve(&inst, &HeuristicConfig::default());
        assert_eq!(out.augmentation.counts(), vec![3]);
        assert_eq!(out.solver, SolverInfo::Heuristic { matching_rounds: 1 });
    }

    #[test]
    fn batch_rounds_matches_unit_rounds_quality() {
        // Same instance, both variants: feasible, and batch needs no more
        // rounds than unit matching while reaching at least its reliability
        // minus a small slack (commitment order differs).
        let inst = AugmentationInstance {
            functions: vec![
                slot(100.0, 0.8, vec![0, 1], 6),
                slot(150.0, 0.85, vec![1], 3),
                slot(200.0, 0.9, vec![0], 2),
            ],
            bins: vec![
                Bin { node: NodeId(0), residual: 600.0 },
                Bin { node: NodeId(1), residual: 700.0 },
            ],
            l: 1,
            expectation: 0.99999999,
        };
        let unit = solve(&inst, &HeuristicConfig::default());
        let batch = solve(&inst, &HeuristicConfig { batch_rounds: true, ..Default::default() });
        assert!(batch.augmentation.is_capacity_feasible(&inst));
        assert!(batch.augmentation.respects_locality(&inst));
        let (
            SolverInfo::Heuristic { matching_rounds: ru },
            SolverInfo::Heuristic { matching_rounds: rb },
        ) = (&unit.solver, &batch.solver)
        else {
            panic!("wrong solver info")
        };
        assert!(rb <= ru, "batch rounds {rb} should not exceed unit rounds {ru}");
        assert!(batch.metrics.reliability >= 0.95 * unit.metrics.reliability);
    }

    #[test]
    fn traced_solve_records_rounds() {
        let inst = AugmentationInstance {
            functions: vec![slot(100.0, 0.8, vec![0], 3)],
            bins: vec![Bin { node: NodeId(0), residual: 350.0 }],
            l: 1,
            expectation: 0.9999999,
        };
        let mut rec = Recorder::memory();
        let out = solve_traced(&inst, &HeuristicConfig::default(), &mut rec);
        assert_eq!(out.solver, SolverInfo::Heuristic { matching_rounds: 3 });
        assert_eq!(out.telemetry.counter("heuristic.rounds"), 3);
        let rounds: Vec<_> = rec.events().iter().filter(|e| e.kind == "heuristic.round").collect();
        assert_eq!(rounds.len(), 3);
        // One bin -> each round matches and commits exactly one placement,
        // and every round strictly improves the reliability.
        for e in &rounds {
            assert_eq!(e.field("matched").unwrap().as_u64(), Some(1));
            assert_eq!(e.field("committed").unwrap().as_u64(), Some(1));
            assert_eq!(e.field("left_bins").unwrap().as_u64(), Some(1));
            assert!(e.field("reliability_gain").unwrap().as_f64().unwrap() > 0.0);
        }
    }

    #[test]
    fn no_capacity_no_rounds() {
        let inst = AugmentationInstance {
            functions: vec![slot(100.0, 0.8, vec![], 0)],
            bins: vec![Bin { node: NodeId(0), residual: 50.0 }],
            l: 1,
            expectation: 0.99,
        };
        let out = solve(&inst, &HeuristicConfig::default());
        assert_eq!(out.metrics.total_secondaries, 0);
        assert_eq!(out.solver, SolverInfo::Heuristic { matching_rounds: 0 });
    }
}

//! Domain scenario: how network topology shapes attainable reliability.
//!
//! The `l`-hop locality constraint means a cloudlet's *neighborhood* decides
//! how many backups a function can get. This example runs the heuristic over
//! four topologies with identical total capacity — Waxman (the paper's
//! GT-ITM-style random graph), ring, grid, and complete — and reports the
//! reliability distribution, making the topology sensitivity explicit
//! (something the paper holds fixed).
//!
//! A second sweep runs the scenario zoo (`crates/scen`): each preset —
//! Waxman, layered SAGIN, Barabási–Albert, fat-tree — is built from its
//! spec and a prefix of its lazy request stream is pushed through the
//! heuristic admission engine, contrasting how the zoo's *structural*
//! differences (tiering, hubs, DC symmetry) shape stream-level admission,
//! not just single-request reliability.
//!
//! Run with: `cargo run --release --example topology_study`

use mec_sfc_reliability::expkit::stats::Summary;
use mec_sfc_reliability::mecnet::admission::random_placement;
use mec_sfc_reliability::mecnet::request::SfcRequest;
use mec_sfc_reliability::mecnet::topology::{self, WaxmanConfig};
use mec_sfc_reliability::mecnet::vnf::VnfCatalog;
use mec_sfc_reliability::mecnet::{Graph, MecNetwork};
use mec_sfc_reliability::obs::Recorder;
use mec_sfc_reliability::relaug::heuristic;
use mec_sfc_reliability::relaug::instance::AugmentationInstance;
use mec_sfc_reliability::relaug::stream::{process_stream_seeded_sink, StreamConfig};
use mec_sfc_reliability::scen::{RequestStream, ScenarioSpec};
use rand::rngs::StdRng;
use rand::SeedableRng;

fn build(name: &str, rng: &mut StdRng) -> (String, Graph) {
    let g = match name {
        "waxman" => topology::waxman(&WaxmanConfig { nodes: 64, ..Default::default() }, rng).0,
        "ring" => topology::ring(64),
        "grid" => topology::grid(8, 8),
        "complete" => topology::complete(64),
        _ => unreachable!(),
    };
    (name.to_string(), g)
}

fn main() {
    let trials = 25;
    println!(
        "{:<10} {:>10} {:>8} {:>8} {:>14} {:>12}",
        "topology", "mean rel.", "min", "max", "mean backups", "avg degree"
    );
    for name in ["waxman", "ring", "grid", "complete"] {
        let mut rels = Vec::with_capacity(trials);
        let mut backups = Vec::with_capacity(trials);
        let mut avg_deg = 0.0;
        for t in 0..trials {
            let mut rng = StdRng::seed_from_u64(t as u64);
            let (_, graph) = build(name, &mut rng);
            avg_deg += graph.average_degree() / trials as f64;
            let network = MecNetwork::with_random_cloudlets(graph, 8, (4000.0, 8000.0), &mut rng);
            let catalog = VnfCatalog::random(30, (200.0, 400.0), (0.8, 0.9), &mut rng);
            let request = SfcRequest::random(t, &catalog, (6, 6), 0.9999, 64, &mut rng);
            let placement = random_placement(&network, &request, &mut rng).unwrap();
            let residual = network.residual_capacities(0.15);
            let inst = AugmentationInstance::new(
                &network,
                &catalog,
                &request,
                &placement.locations,
                &residual,
                1,
            );
            let out = heuristic::solve(&inst, &Default::default());
            rels.push(out.metrics.reliability);
            backups.push(out.metrics.total_secondaries as f64);
        }
        let s = Summary::of(&rels);
        let b = Summary::of(&backups);
        println!(
            "{:<10} {:>10.4} {:>8.4} {:>8.4} {:>14.1} {:>12.1}",
            name, s.mean, s.min, s.max, b.mean, avg_deg
        );
    }
    println!(
        "\nDenser topologies put more cloudlets inside each 1-hop neighborhood,\n\
         so the same capacity budget yields more usable backup slots — the\n\
         complete graph is the paper's 'no locality constraint' upper bound."
    );

    // Second sweep: the scenario zoo at stream scale. Each preset's spec
    // deterministically yields both the substrate and a lazy request stream;
    // the heuristic admits a 2,000-request prefix and the aggregates are
    // folded as records are produced (nothing materialized).
    let stream_requests = 2_000u64;
    println!(
        "\n{:<12} {:>7} {:>10} {:>11} {:>9} {:>10} {:>10}",
        "scenario", "nodes", "cloudlets", "avg degree", "admitted", "mean rel.", "SLO met"
    );
    for preset in ["waxman-100", "sagin-1k", "ba-1k", "fattree-16"] {
        let built = ScenarioSpec::preset(preset).expect("known preset").build();
        let mut admitted = 0u64;
        let mut slo_met = 0u64;
        let mut rel_sum = 0.0f64;
        process_stream_seeded_sink(
            &built.network,
            &built.catalog,
            RequestStream::new(&built, stream_requests),
            &StreamConfig::default(),
            built.spec.seed,
            &mut Recorder::noop(),
            &mut |r| {
                if r.admitted {
                    admitted += 1;
                    slo_met += r.met_expectation as u64;
                    rel_sum += r.achieved_reliability;
                }
            },
        );
        println!(
            "{:<12} {:>7} {:>10} {:>11.1} {:>9} {:>10.4} {:>9.0}%",
            preset,
            built.network.num_nodes(),
            built.cloudlets(),
            built.network.graph().average_degree(),
            format!("{admitted}/{stream_requests}"),
            if admitted > 0 { rel_sum / admitted as f64 } else { f64::NAN },
            if admitted > 0 { 100.0 * slo_met as f64 / admitted as f64 } else { f64::NAN },
        );
    }
    println!(
        "\nThe zoo makes the structural contrast explicit: SAGIN's tiered\n\
         uplinks concentrate load on the small high-capacity core, the\n\
         Barabási–Albert hubs give most requests a well-provisioned\n\
         neighborhood, and the fat-tree's symmetric redundancy keeps\n\
         admission uniform across pods."
    );
}

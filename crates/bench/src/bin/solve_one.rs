//! Solve a single generated scenario end-to-end and print a detailed
//! placement report — the "try the system in 10 seconds" entry point.
//!
//! Usage: `cargo run -p bench-harness --release --bin solve_one --
//! [--seed S] [--len L] [--residual F] [--l HOPS] [--algo ilp|rand|heur|greedy]
//! [--dot PATH] [--trace PATH] [--json]`
//!
//! `--trace PATH` streams one JSONL telemetry event per solver step to PATH;
//! `--json` replaces the human-readable report with a single JSON document
//! (metrics + solver effort + telemetry summary) on stdout.

use mecnet::workload::{generate_scenario, WorkloadConfig};
use obs::Recorder;
use rand::rngs::StdRng;
use rand::SeedableRng;
use relaug::instance::AugmentationInstance;
use relaug::solution::{Metrics, SolverInfo};
use relaug::{greedy, heuristic, ilp, randomized, report};

struct Args {
    seed: u64,
    len: usize,
    residual: f64,
    l: u32,
    algo: String,
    dot: Option<String>,
    trace: Option<String>,
    json: bool,
}

fn parse_args() -> Result<Args, String> {
    let mut args = Args {
        seed: 2020,
        len: 6,
        residual: 0.25,
        l: 1,
        algo: "ilp".into(),
        dot: None,
        trace: None,
        json: false,
    };
    let mut it = std::env::args().skip(1);
    while let Some(flag) = it.next() {
        let mut val = |name: &str| it.next().ok_or_else(|| format!("missing value for {name}"));
        match flag.as_str() {
            "--seed" => args.seed = val("--seed")?.parse().map_err(|e| format!("{e}"))?,
            "--len" => args.len = val("--len")?.parse().map_err(|e| format!("{e}"))?,
            "--residual" => {
                args.residual = val("--residual")?.parse().map_err(|e| format!("{e}"))?
            }
            "--l" => args.l = val("--l")?.parse().map_err(|e| format!("{e}"))?,
            "--algo" => args.algo = val("--algo")?,
            "--dot" => args.dot = Some(val("--dot")?),
            "--trace" => args.trace = Some(val("--trace")?),
            "--json" => args.json = true,
            other => return Err(format!("unknown flag {other}")),
        }
    }
    if !["ilp", "rand", "heur", "greedy"].contains(&args.algo.as_str()) {
        return Err(format!("unknown algorithm '{}'", args.algo));
    }
    Ok(args)
}

/// The `--json` document: everything a script needs from one solve.
#[derive(serde::Serialize)]
struct JsonReport {
    algo: String,
    seed: u64,
    chain_len: usize,
    l: u32,
    runtime_s: f64,
    solver_effort: String,
    metrics: Metrics,
    solver: SolverInfo,
    telemetry: obs::Telemetry,
}

fn main() {
    let args = match parse_args() {
        Ok(a) => a,
        Err(e) => {
            eprintln!("solve_one: {e}");
            std::process::exit(2);
        }
    };
    let config = WorkloadConfig {
        sfc_len_range: (args.len, args.len),
        residual_fraction: args.residual,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(args.seed);
    let scenario = generate_scenario(&config, &mut rng);
    let inst = AugmentationInstance::from_scenario(&scenario, args.l);
    if !args.json {
        println!(
            "scenario: {} APs, {} cloudlets, chain length {}, l = {}, N = {} items\n",
            scenario.network.num_nodes(),
            scenario.network.num_cloudlets(),
            inst.chain_len(),
            args.l,
            inst.total_items()
        );
    }
    // Trace to JSONL when asked; otherwise keep events in memory so the
    // telemetry summary is populated for `--json` and the report's timing
    // lines. The plain path costs nothing extra: `solve` == noop-traced.
    let mut rec = match &args.trace {
        Some(path) => Recorder::jsonl_file(std::path::Path::new(path)).unwrap_or_else(|e| {
            eprintln!("solve_one: cannot open trace file {path}: {e}");
            std::process::exit(2);
        }),
        None => Recorder::memory(),
    };
    let outcome = match args.algo.as_str() {
        "ilp" => ilp::solve_traced(&inst, &Default::default(), &mut rec).expect("ILP"),
        "rand" => {
            randomized::solve_traced(&inst, &Default::default(), &mut rng, &mut rec).expect("LP")
        }
        "heur" => heuristic::solve_traced(&inst, &Default::default(), &mut rec),
        _ => greedy::solve_traced(&inst, &Default::default(), &mut rec),
    };
    rec.flush().expect("flush trace");
    if args.json {
        let doc = JsonReport {
            algo: args.algo.clone(),
            seed: args.seed,
            chain_len: inst.chain_len(),
            l: args.l,
            runtime_s: outcome.runtime.as_secs_f64(),
            solver_effort: report::solver_effort(&outcome),
            metrics: outcome.metrics.clone(),
            solver: outcome.solver.clone(),
            telemetry: outcome.telemetry.clone(),
        };
        println!("{}", serde_json::to_string_pretty(&doc).expect("serialize report"));
    } else {
        print!("{}", report::render(&inst, &outcome));
        if let Some(path) = &args.trace {
            println!("\nwrote {} telemetry events to {path}", rec.events_emitted());
        }
    }
    if let Some(path) = args.dot {
        let dot =
            mecnet::dot::to_dot_with_highlights(&scenario.network, &scenario.placement.locations);
        std::fs::write(&path, dot).expect("write DOT file");
        if !args.json {
            println!("\nwrote {path} (render with `dot -Tsvg`)");
        }
    }
}

//! Model builder: variables, bounds, integrality, linear constraints.

use crate::error::SolverError;

/// Optimization direction.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Sense {
    Minimize,
    Maximize,
}

/// Relation of a linear constraint to its right-hand side.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Relation {
    Le,
    Ge,
    Eq,
}

/// Opaque handle to a model variable.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct VarId(pub(crate) usize);

impl VarId {
    /// Index of the variable inside the model (also its index in solution
    /// vectors).
    pub fn index(self) -> usize {
        self.0
    }
}

/// Opaque handle to a model constraint.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct ConstraintId(pub(crate) usize);

impl ConstraintId {
    pub fn index(self) -> usize {
        self.0
    }
}

#[derive(Debug, Clone)]
pub(crate) struct Variable {
    pub lower: f64,
    pub upper: f64,
    pub objective: f64,
    pub integer: bool,
}

#[derive(Debug, Clone)]
pub(crate) struct LinearConstraint {
    pub terms: Vec<(VarId, f64)>,
    pub relation: Relation,
    pub rhs: f64,
}

/// A linear or mixed-integer linear program.
///
/// Variables are continuous by default; mark them integral with
/// [`Model::add_integer_var`] / [`Model::add_binary_var`]. All bounds may be
/// infinite except where integrality requires branching (branch and bound
/// rejects integer variables with two infinite bounds).
#[derive(Debug, Clone)]
pub struct Model {
    pub(crate) sense: Sense,
    pub(crate) vars: Vec<Variable>,
    pub(crate) constraints: Vec<LinearConstraint>,
}

impl Model {
    pub fn new(sense: Sense) -> Self {
        Model { sense, vars: Vec::new(), constraints: Vec::new() }
    }

    pub fn sense(&self) -> Sense {
        self.sense
    }

    /// Add a continuous variable with bounds `[lower, upper]` and the given
    /// objective coefficient.
    pub fn add_var(&mut self, lower: f64, upper: f64, objective: f64) -> VarId {
        self.push_var(lower, upper, objective, false)
    }

    /// Add an integer variable with bounds `[lower, upper]`.
    pub fn add_integer_var(&mut self, lower: f64, upper: f64, objective: f64) -> VarId {
        self.push_var(lower, upper, objective, true)
    }

    /// Add a binary (0/1) variable.
    pub fn add_binary_var(&mut self, objective: f64) -> VarId {
        self.push_var(0.0, 1.0, objective, true)
    }

    fn push_var(&mut self, lower: f64, upper: f64, objective: f64, integer: bool) -> VarId {
        let id = VarId(self.vars.len());
        self.vars.push(Variable { lower, upper, objective, integer });
        id
    }

    /// Add the constraint `Σ coeff·var  <relation>  rhs`.
    ///
    /// Duplicate variable entries in `terms` are allowed and summed.
    pub fn add_constraint(
        &mut self,
        terms: Vec<(VarId, f64)>,
        relation: Relation,
        rhs: f64,
    ) -> ConstraintId {
        let id = ConstraintId(self.constraints.len());
        self.constraints.push(LinearConstraint { terms, relation, rhs });
        id
    }

    pub fn num_vars(&self) -> usize {
        self.vars.len()
    }

    pub fn num_constraints(&self) -> usize {
        self.constraints.len()
    }

    /// Ids of all integer variables.
    pub fn integer_vars(&self) -> Vec<VarId> {
        self.vars.iter().enumerate().filter(|(_, v)| v.integer).map(|(i, _)| VarId(i)).collect()
    }

    pub fn is_integer_var(&self, v: VarId) -> bool {
        self.vars[v.0].integer
    }

    pub fn var_bounds(&self, v: VarId) -> (f64, f64) {
        (self.vars[v.0].lower, self.vars[v.0].upper)
    }

    pub fn objective_coeff(&self, v: VarId) -> f64 {
        self.vars[v.0].objective
    }

    /// Continuous relaxation: same model with all integrality dropped.
    pub fn relax(&self) -> Model {
        let mut m = self.clone();
        for v in &mut m.vars {
            v.integer = false;
        }
        m
    }

    /// Evaluate the objective at a point (no feasibility check).
    pub fn eval_objective(&self, x: &[f64]) -> f64 {
        self.vars.iter().zip(x).map(|(v, xi)| v.objective * xi).sum()
    }

    /// Maximum constraint/bound violation of a point.
    pub fn max_violation(&self, x: &[f64]) -> f64 {
        let mut worst: f64 = 0.0;
        for (i, v) in self.vars.iter().enumerate() {
            worst = worst.max(v.lower - x[i]).max(x[i] - v.upper);
        }
        for c in &self.constraints {
            let lhs: f64 = c.terms.iter().map(|&(v, a)| a * x[v.0]).sum();
            let viol = match c.relation {
                Relation::Le => lhs - c.rhs,
                Relation::Ge => c.rhs - lhs,
                Relation::Eq => (lhs - c.rhs).abs(),
            };
            worst = worst.max(viol);
        }
        worst
    }

    /// Check a point against constraints and bounds with tolerance `tol`.
    pub fn is_feasible(&self, x: &[f64], tol: f64) -> bool {
        x.len() == self.vars.len() && self.max_violation(x) <= tol
    }

    /// Size/scale statistics: `(rows, cols, nonzeros, |coeff| range)`.
    /// Useful when debugging solver behaviour on generated models.
    pub fn stats(&self) -> ModelStats {
        let nonzeros: usize = self
            .constraints
            .iter()
            .map(|c| c.terms.iter().filter(|&&(_, a)| a != 0.0).count())
            .sum();
        let mut min_abs = f64::INFINITY;
        let mut max_abs = 0.0f64;
        for c in &self.constraints {
            for &(_, a) in &c.terms {
                if a != 0.0 {
                    min_abs = min_abs.min(a.abs());
                    max_abs = max_abs.max(a.abs());
                }
            }
        }
        ModelStats {
            rows: self.constraints.len(),
            cols: self.vars.len(),
            integers: self.vars.iter().filter(|v| v.integer).count(),
            nonzeros,
            min_abs_coeff: if min_abs.is_finite() { min_abs } else { 0.0 },
            max_abs_coeff: max_abs,
        }
    }

    /// Validate the model's internal consistency (finite coefficients, sane
    /// bounds, valid variable references).
    pub fn validate(&self) -> Result<(), SolverError> {
        for (i, v) in self.vars.iter().enumerate() {
            if v.lower > v.upper {
                return Err(SolverError::InvertedBounds { var: i, lower: v.lower, upper: v.upper });
            }
            if v.objective.is_nan() || v.objective.is_infinite() {
                return Err(SolverError::NonFiniteInput { what: "objective coefficient" });
            }
            if v.lower.is_nan() || v.upper.is_nan() {
                return Err(SolverError::NonFiniteInput { what: "variable bound" });
            }
        }
        for c in &self.constraints {
            if !c.rhs.is_finite() {
                return Err(SolverError::NonFiniteInput { what: "constraint rhs" });
            }
            for &(v, a) in &c.terms {
                if v.0 >= self.vars.len() {
                    return Err(SolverError::UnknownVariable {
                        var: v.0,
                        num_vars: self.vars.len(),
                    });
                }
                if !a.is_finite() {
                    return Err(SolverError::NonFiniteInput { what: "constraint coefficient" });
                }
            }
        }
        Ok(())
    }
}

/// Size and numerical-scale summary of a model (see [`Model::stats`]).
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ModelStats {
    pub rows: usize,
    pub cols: usize,
    pub integers: usize,
    pub nonzeros: usize,
    pub min_abs_coeff: f64,
    pub max_abs_coeff: f64,
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn stats_counts_sizes() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(0.0, 1.0, 1.0);
        let y = m.add_binary_var(2.0);
        m.add_constraint(vec![(x, 2.0), (y, 0.0)], Relation::Le, 3.0);
        m.add_constraint(vec![(y, -0.5)], Relation::Ge, -1.0);
        let s = m.stats();
        assert_eq!(s.rows, 2);
        assert_eq!(s.cols, 2);
        assert_eq!(s.integers, 1);
        assert_eq!(s.nonzeros, 2); // the 0.0 coefficient is not counted
        assert_eq!(s.min_abs_coeff, 0.5);
        assert_eq!(s.max_abs_coeff, 2.0);
    }

    #[test]
    fn build_and_validate() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(0.0, 10.0, 1.0);
        let y = m.add_binary_var(2.0);
        m.add_constraint(vec![(x, 1.0), (y, 3.0)], Relation::Le, 7.0);
        assert_eq!(m.num_vars(), 2);
        assert_eq!(m.num_constraints(), 1);
        assert_eq!(m.integer_vars(), vec![y]);
        assert!(m.validate().is_ok());
    }

    #[test]
    fn relax_drops_integrality() {
        let mut m = Model::new(Sense::Minimize);
        m.add_binary_var(1.0);
        let r = m.relax();
        assert!(r.integer_vars().is_empty());
        assert_eq!(r.var_bounds(VarId(0)), (0.0, 1.0));
    }

    #[test]
    fn validate_rejects_bad_bounds() {
        let mut m = Model::new(Sense::Minimize);
        m.add_var(3.0, 1.0, 0.0);
        assert!(matches!(m.validate(), Err(SolverError::InvertedBounds { .. })));
    }

    #[test]
    fn validate_rejects_unknown_var() {
        let mut m1 = Model::new(Sense::Minimize);
        let mut m2 = Model::new(Sense::Minimize);
        let x2 = m2.add_var(0.0, 1.0, 0.0);
        let _ = m2.add_var(0.0, 1.0, 0.0);
        // Use a var id from the larger model in the smaller one.
        m1.add_var(0.0, 1.0, 0.0);
        m1.add_constraint(vec![(VarId(5), 1.0)], Relation::Le, 1.0);
        assert!(matches!(m1.validate(), Err(SolverError::UnknownVariable { .. })));
        let _ = x2;
    }

    #[test]
    fn feasibility_and_violation() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(0.0, 5.0, 1.0);
        m.add_constraint(vec![(x, 2.0)], Relation::Le, 6.0);
        assert!(m.is_feasible(&[3.0], 1e-9));
        assert!(!m.is_feasible(&[3.1], 1e-9));
        assert!((m.max_violation(&[4.0]) - 2.0).abs() < 1e-12);
        assert!(!m.is_feasible(&[-0.5], 1e-9));
    }

    #[test]
    fn eval_objective_sums_terms() {
        let mut m = Model::new(Sense::Maximize);
        let _x = m.add_var(0.0, 1.0, 2.0);
        let _y = m.add_var(0.0, 1.0, -1.0);
        assert!((m.eval_objective(&[0.5, 1.0]) - 0.0).abs() < 1e-12);
    }
}

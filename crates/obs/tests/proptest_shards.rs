//! Property tests for the sharded metrics plane.
//!
//! The per-worker shards exist so the hot path never contends on a lock;
//! correctness rests on merge-at-snapshot being indistinguishable from
//! having recorded the same stream single-threaded. These tests drive both
//! planes with random op streams and require exact agreement, plus the
//! documented quantile guarantee: the log2-bucket estimate stays within one
//! bucket of the exact nearest-rank order statistic.

use obs::{Log2Histogram, ShardedMetrics};
use proptest::prelude::*;

const COUNTERS: &[&str] = &["reqs", "admitted", "conflicts"];
const HISTS: &[&str] = &["solve_ns", "wait_ns"];
const WORKERS: usize = 4;

#[derive(Debug, Clone)]
enum Op {
    Count { worker: usize, counter: usize, delta: u64 },
    Record { worker: usize, hist: usize, value: u64 },
}

fn arb_op() -> impl Strategy<Value = Op> {
    prop_oneof![
        (0..WORKERS, 0..COUNTERS.len(), 0u64..1_000)
            .prop_map(|(worker, counter, delta)| Op::Count { worker, counter, delta }),
        // Values up to 2^40 cover every realistic duration-in-ns bucket
        // while staying far from the saturating-sum edge cases.
        (0..WORKERS, 0..HISTS.len(), 0u64..(1 << 40))
            .prop_map(|(worker, hist, value)| Op::Record { worker, hist, value }),
    ]
}

fn apply(metrics: &ShardedMetrics, shard: impl Fn(usize) -> usize, ops: &[Op]) {
    for op in ops {
        match *op {
            Op::Count { worker, counter, delta } => {
                metrics.shard(shard(worker)).add(counter, delta)
            }
            Op::Record { worker, hist, value } => metrics.shard(shard(worker)).record(hist, value),
        }
    }
}

fn assert_snapshots_equal(sharded: &ShardedMetrics, single: &ShardedMetrics) {
    let merged = sharded.snapshot();
    let solo = single.snapshot();
    for name in COUNTERS {
        assert_eq!(merged.counter(name), solo.counter(name), "counter {name} diverged");
    }
    for name in HISTS {
        let (m, s) = (merged.hist(name).unwrap(), solo.hist(name).unwrap());
        assert_eq!(m.bucket_counts(), s.bucket_counts(), "hist {name} buckets diverged");
        assert_eq!(m.count(), s.count(), "hist {name} count diverged");
        assert_eq!(m.sum(), s.sum(), "hist {name} sum diverged");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Routing a stream across per-worker shards and merging at snapshot
    /// time equals recording the whole stream into one shard.
    #[test]
    fn sharded_merge_matches_single_threaded(ops in proptest::collection::vec(arb_op(), 0..200)) {
        let sharded = ShardedMetrics::new(COUNTERS, HISTS, WORKERS);
        let single = ShardedMetrics::new(COUNTERS, HISTS, 1);
        apply(&sharded, |w| w, &ops);
        apply(&single, |_| 0, &ops);
        assert_snapshots_equal(&sharded, &single);
    }

    /// The histogram quantile estimate (inclusive upper bound of the bucket
    /// holding the nearest-rank order statistic) lands in the same log2
    /// bucket as the exact quantile of the raw sample.
    #[test]
    fn quantile_within_one_bucket_of_exact(
        values in proptest::collection::vec(0u64..(1 << 40), 1..300),
        q in 0.0f64..1.0,
    ) {
        let mut hist = Log2Histogram::new();
        for &v in &values {
            hist.record(v);
        }
        let mut sorted = values.clone();
        sorted.sort_unstable();
        let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
        let exact = sorted[rank - 1];
        let estimate = hist.quantile(q).unwrap();
        prop_assert!(estimate >= exact, "estimate {estimate} below exact {exact}");
        prop_assert_eq!(
            Log2Histogram::bucket_of(estimate),
            Log2Histogram::bucket_of(exact),
            "estimate {} not in the exact value {}'s bucket (q={})", estimate, exact, q
        );
    }
}

/// Shards really are safe to hammer concurrently: four threads record
/// deterministic streams — each into its own shard, all bumping one shared
/// shard-0 counter — and the merged snapshot equals the same stream applied
/// sequentially to a single shard.
#[test]
fn concurrent_recording_merges_exactly() {
    let streams: Vec<Vec<(usize, u64)>> = (0..WORKERS)
        .map(|w| {
            let mut s = 0x9E37_79B9_7F4A_7C15u64 ^ (w as u64 + 1);
            (0..10_000)
                .map(|_| {
                    s ^= s << 13;
                    s ^= s >> 7;
                    s ^= s << 17;
                    ((s >> 32) as usize % HISTS.len(), s % (1 << 40))
                })
                .collect()
        })
        .collect();

    let expected = ShardedMetrics::new(COUNTERS, HISTS, 1);
    for stream in &streams {
        for &(h, v) in stream {
            expected.shard(0).record(h, v);
            expected.shard(0).add(v as usize % COUNTERS.len(), v % 17);
            expected.shard(0).incr(0);
        }
    }

    let sharded = ShardedMetrics::new(COUNTERS, HISTS, WORKERS);
    std::thread::scope(|scope| {
        for (w, stream) in streams.iter().enumerate() {
            let sharded = &sharded;
            scope.spawn(move || {
                for &(h, v) in stream {
                    sharded.shard(w).record(h, v);
                    sharded.shard(w).add(v as usize % COUNTERS.len(), v % 17);
                    // Cross-shard contention: every worker also bumps the
                    // coordinator shard's first counter.
                    sharded.shard(0).incr(0);
                }
            });
        }
    });
    assert_snapshots_equal(&sharded, &expected);
}

//! Operator-facing availability arithmetic: translating the paper's
//! dimensionless reliabilities into downtime budgets, "nines", and the
//! redundancy needed for an SLA class.

use crate::reliability;

/// Minutes in a (365-day) year.
const MINUTES_PER_YEAR: f64 = 365.0 * 24.0 * 60.0;
/// Minutes in a 30-day month.
const MINUTES_PER_MONTH: f64 = 30.0 * 24.0 * 60.0;

/// Expected downtime per year implied by a reliability/availability level.
pub fn downtime_minutes_per_year(reliability: f64) -> f64 {
    assert!((0.0..=1.0).contains(&reliability));
    (1.0 - reliability) * MINUTES_PER_YEAR
}

/// Expected downtime per 30-day month.
pub fn downtime_minutes_per_month(reliability: f64) -> f64 {
    assert!((0.0..=1.0).contains(&reliability));
    (1.0 - reliability) * MINUTES_PER_MONTH
}

/// The "number of nines" of an availability level (`0.999 -> 3.0`,
/// `0.9995 -> ~3.3`); infinite for 1.0.
pub fn nines(reliability: f64) -> f64 {
    assert!((0.0..=1.0).contains(&reliability));
    if reliability >= 1.0 {
        f64::INFINITY
    } else {
        -(1.0 - reliability).log10()
    }
}

/// Availability with the given number of nines (`3.0 -> 0.999`).
pub fn from_nines(n: f64) -> f64 {
    assert!(n >= 0.0);
    1.0 - 10f64.powf(-n)
}

/// Total backups a whole chain needs (per function, via
/// [`reliability::secondaries_needed`]) so the *chain* reaches `target`,
/// splitting the target evenly in log space across functions. Returns `None`
/// when `target` is 1.0 (unreachable with finite redundancy).
pub fn chain_backups_for_target(function_reliabilities: &[f64], target: f64) -> Option<Vec<usize>> {
    assert!(!function_reliabilities.is_empty());
    assert!(target > 0.0 && target <= 1.0);
    if target >= 1.0 {
        return None;
    }
    // Even split: each function must reach target^(1/L).
    let per_function = target.powf(1.0 / function_reliabilities.len() as f64);
    function_reliabilities
        .iter()
        .map(|&r| reliability::secondaries_needed(r, per_function))
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn downtime_conversions() {
        // Three nines: ~525.6 minutes per year, ~43.2 per month.
        let d = downtime_minutes_per_year(0.999);
        assert!((d - 525.6).abs() < 0.1);
        let m = downtime_minutes_per_month(0.999);
        assert!((m - 43.2).abs() < 0.1);
        assert_eq!(downtime_minutes_per_year(1.0), 0.0);
    }

    #[test]
    fn nines_round_trip() {
        for &n in &[1.0, 2.0, 3.0, 4.5] {
            let a = from_nines(n);
            assert!((nines(a) - n).abs() < 1e-9);
        }
        assert!(nines(1.0).is_infinite());
        assert!((nines(0.99) - 2.0).abs() < 1e-12);
    }

    #[test]
    fn chain_backup_budget() {
        // Four functions at r = 0.9, chain target 0.999:
        // per-function target 0.999^(1/4) ≈ 0.99975 -> (0.1)^(k+1) <= 2.5e-4
        // -> k + 1 >= 3.6 -> k = 3 each.
        let backups = chain_backups_for_target(&[0.9; 4], 0.999).unwrap();
        assert_eq!(backups, vec![3, 3, 3, 3]);
        // Verify sufficiency.
        let chain: f64 =
            backups.iter().map(|&k| crate::reliability::function_reliability(0.9, k)).product();
        assert!(chain >= 0.999);
        // Unreachable target.
        assert!(chain_backups_for_target(&[0.9], 1.0).is_none());
    }

    #[test]
    fn weaker_functions_need_more_backups() {
        let backups = chain_backups_for_target(&[0.6, 0.95], 0.999).unwrap();
        assert!(backups[0] > backups[1]);
    }
}

//! Structured telemetry for the solver crates: spans, counters, histograms,
//! and a `Recorder` that sinks events to memory or a JSONL writer.

pub mod event;
pub mod metrics;
pub mod recorder;
pub mod span;

pub use event::Event;
pub use metrics::{Counter, Distribution, Gauge};
pub use recorder::{Recorder, Sink, Telemetry};
pub use span::{timed, Span};

//! Presolve: problem reductions applied before the simplex/branch-and-bound
//! machinery.
//!
//! Implemented reductions (all exact — they never cut off an optimal
//! solution):
//!
//! 1. **Empty rows** — `0 <= rhs`-style constraints are dropped (or proven
//!    infeasible immediately).
//! 2. **Singleton rows** — a constraint with one variable becomes a bound.
//! 3. **Empty columns** — variables in no constraint are fixed at their best
//!    bound.
//! 4. **Bound-implied redundant rows** — a `<=` row whose maximum activity
//!    (from variable bounds) is below its rhs can never bind.
//!
//! The output is a smaller [`Model`] over the *same* variable ids (bounds may
//! be tightened; rows removed), so solutions map back without translation.

use crate::problem::{Model, Relation};

/// Summary of what presolve did.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct PresolveStats {
    pub rows_removed: usize,
    pub bounds_tightened: usize,
    pub vars_fixed: usize,
    /// Presolve proved infeasibility outright.
    pub proven_infeasible: bool,
}

/// Result of presolving.
#[derive(Debug, Clone)]
pub struct Presolved {
    pub model: Model,
    pub stats: PresolveStats,
}

/// Apply the reductions until a fixed point (or infeasibility proof).
pub fn presolve(model: &Model) -> Presolved {
    let mut m = model.clone();
    let mut stats = PresolveStats::default();
    loop {
        let before = (m.constraints.len(), stats.bounds_tightened, stats.vars_fixed);

        // Pass 0: round fractional integer bounds inward *before* the row
        // passes, so singleton elimination sees the tightest bounds and
        // integer variables fixed by rounding (e.g. a binary with bounds
        // [0.3, 0.9] is infeasible; [0.3, 1] means the var is 1) are
        // substituted out of the LP branch and bound actually solves.
        for var in &mut m.vars {
            if !var.integer {
                continue;
            }
            if var.lower.is_finite() {
                let rounded = (var.lower - 1e-9).ceil();
                if rounded > var.lower {
                    var.lower = rounded;
                    stats.bounds_tightened += 1;
                }
            }
            if var.upper.is_finite() {
                let rounded = (var.upper + 1e-9).floor();
                if rounded < var.upper {
                    var.upper = rounded;
                    stats.bounds_tightened += 1;
                }
            }
            if var.lower > var.upper + 1e-9 {
                stats.proven_infeasible = true;
                return Presolved { model: m, stats };
            }
        }

        // Pass 1: singleton and empty rows -> bounds / drops.
        let mut keep = Vec::with_capacity(m.constraints.len());
        for con in std::mem::take(&mut m.constraints) {
            // Merge duplicate terms and drop zero coefficients.
            let mut terms: Vec<(usize, f64)> = Vec::new();
            for &(v, a) in &con.terms {
                if a == 0.0 {
                    continue;
                }
                match terms.iter_mut().find(|(u, _)| *u == v.index()) {
                    Some((_, acc)) => *acc += a,
                    None => terms.push((v.index(), a)),
                }
            }
            terms.retain(|&(_, a)| a != 0.0);
            match terms.len() {
                0 => {
                    let violated = match con.relation {
                        Relation::Le => 0.0 > con.rhs + 1e-9,
                        Relation::Ge => 0.0 < con.rhs - 1e-9,
                        Relation::Eq => con.rhs.abs() > 1e-9,
                    };
                    if violated {
                        stats.proven_infeasible = true;
                        return Presolved { model: m, stats };
                    }
                    stats.rows_removed += 1;
                }
                1 => {
                    // a·x <rel> rhs  =>  bound on x (rounded inward for
                    // integer variables).
                    let (vi, a) = terms[0];
                    let bound = con.rhs / a;
                    let var = &mut m.vars[vi];
                    let (as_upper, as_lower) = match (con.relation, a > 0.0) {
                        (Relation::Le, true) | (Relation::Ge, false) => (true, false),
                        (Relation::Le, false) | (Relation::Ge, true) => (false, true),
                        (Relation::Eq, _) => (true, true),
                    };
                    let upper_bound = if var.integer { (bound + 1e-9).floor() } else { bound };
                    let lower_bound = if var.integer { (bound - 1e-9).ceil() } else { bound };
                    if as_upper && upper_bound < var.upper {
                        var.upper = upper_bound;
                        stats.bounds_tightened += 1;
                    }
                    if as_lower && lower_bound > var.lower {
                        var.lower = lower_bound;
                        stats.bounds_tightened += 1;
                    }
                    if var.lower > var.upper + 1e-9 {
                        stats.proven_infeasible = true;
                        return Presolved { model: m, stats };
                    }
                    stats.rows_removed += 1;
                }
                _ => {
                    // Pass 4 check: row redundant under bounds?
                    let extreme = |maximize: bool| -> f64 {
                        terms
                            .iter()
                            .map(|&(vi, a)| {
                                let (lo, hi) = (m.vars[vi].lower, m.vars[vi].upper);
                                let pick_hi = (a > 0.0) == maximize;
                                a * if pick_hi { hi } else { lo }
                            })
                            .sum()
                    };
                    let redundant = match con.relation {
                        Relation::Le => {
                            let max_act = extreme(true);
                            max_act.is_finite() && max_act <= con.rhs + 1e-9
                        }
                        Relation::Ge => {
                            let min_act = extreme(false);
                            min_act.is_finite() && min_act >= con.rhs - 1e-9
                        }
                        Relation::Eq => false,
                    };
                    if redundant {
                        stats.rows_removed += 1;
                    } else {
                        keep.push(con);
                    }
                }
            }
        }
        m.constraints = keep;

        // Pass 3: empty columns -> fix at the objective-best bound.
        let mut used = vec![false; m.vars.len()];
        for con in &m.constraints {
            for &(v, a) in &con.terms {
                if a != 0.0 {
                    used[v.index()] = true;
                }
            }
        }
        let maximize = m.sense == crate::problem::Sense::Maximize;
        for (vi, var) in m.vars.iter_mut().enumerate() {
            if used[vi] || (var.lower == var.upper) {
                continue;
            }
            let wants_high = (var.objective > 0.0) == maximize && var.objective != 0.0;
            let target = if var.objective == 0.0 {
                // Indifferent: fix at a finite bound if one exists.
                if var.lower.is_finite() {
                    var.lower
                } else if var.upper.is_finite() {
                    var.upper
                } else {
                    0.0
                }
            } else if wants_high {
                var.upper
            } else {
                var.lower
            };
            if target.is_finite() {
                let target = if var.integer {
                    // Fix at an integral point inside the bounds.
                    let t = if target >= var.upper {
                        (target + 1e-9).floor()
                    } else {
                        (target - 1e-9).ceil()
                    };
                    if t < var.lower - 1e-9 || t > var.upper + 1e-9 {
                        stats.proven_infeasible = true;
                        return Presolved { model: m, stats };
                    }
                    t
                } else {
                    target
                };
                var.lower = target;
                var.upper = target;
                stats.vars_fixed += 1;
            }
            // Unbounded-objective columns are left to the solver, which will
            // report unboundedness.
        }

        if (m.constraints.len(), stats.bounds_tightened, stats.vars_fixed) == before {
            break;
        }
    }
    Presolved { model: m, stats }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Model, Relation, Sense};
    use crate::solve_lp;

    #[test]
    fn singleton_rows_become_bounds() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(0.0, f64::INFINITY, 1.0);
        m.add_constraint(vec![(x, 2.0)], Relation::Le, 10.0); // x <= 5
        let p = presolve(&m);
        assert_eq!(p.stats.rows_removed, 1);
        assert_eq!(p.model.num_constraints(), 0);
        // The empty-column pass then fixes x at its objective-best bound.
        assert_eq!(p.model.var_bounds(x), (5.0, 5.0));
        // Optima agree.
        let a = solve_lp(&m).unwrap().objective;
        let b = solve_lp(&p.model).unwrap().objective;
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn negative_coefficient_singleton() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, 100.0, 1.0);
        m.add_constraint(vec![(x, -1.0)], Relation::Le, -3.0); // x >= 3
        let p = presolve(&m);
        // Bound tightened to x >= 3, then fixed at 3 (min sense, empty col).
        assert_eq!(p.model.var_bounds(x), (3.0, 3.0));
    }

    #[test]
    fn detects_empty_row_infeasibility() {
        let mut m = Model::new(Sense::Minimize);
        let _x = m.add_var(0.0, 1.0, 1.0);
        m.add_constraint(vec![], Relation::Ge, 2.0); // 0 >= 2
        let p = presolve(&m);
        assert!(p.stats.proven_infeasible);
    }

    #[test]
    fn detects_bound_clash() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, 10.0, 1.0);
        m.add_constraint(vec![(x, 1.0)], Relation::Ge, 7.0);
        m.add_constraint(vec![(x, 1.0)], Relation::Le, 3.0);
        let p = presolve(&m);
        assert!(p.stats.proven_infeasible);
    }

    #[test]
    fn empty_column_fixed_at_best_bound() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(0.0, 4.0, 2.0); // not in any row: wants upper
        let y = m.add_var(0.0, 9.0, -1.0); // wants lower
        let p = presolve(&m);
        assert_eq!(p.stats.vars_fixed, 2);
        assert_eq!(p.model.var_bounds(x), (4.0, 4.0));
        assert_eq!(p.model.var_bounds(y), (0.0, 0.0));
    }

    #[test]
    fn redundant_row_dropped() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(0.0, 1.0, 1.0);
        let y = m.add_var(0.0, 1.0, 1.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 5.0); // max activity 2
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 1.5); // binding
        let p = presolve(&m);
        assert_eq!(p.model.num_constraints(), 1);
        let a = solve_lp(&m).unwrap().objective;
        let b = solve_lp(&p.model).unwrap().objective;
        assert!((a - b).abs() < 1e-9);
    }

    #[test]
    fn duplicate_terms_merged() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(0.0, f64::INFINITY, 1.0);
        // 1x + 1x <= 6 is really a singleton 2x <= 6.
        m.add_constraint(vec![(x, 1.0), (x, 1.0)], Relation::Le, 6.0);
        let p = presolve(&m);
        assert_eq!(p.model.num_constraints(), 0);
        assert_eq!(p.model.var_bounds(x), (3.0, 3.0));
    }

    #[test]
    fn integer_bounds_round_before_row_elimination() {
        // The fractional bounds on an integer variable round inward first,
        // fixing it at 1; the singleton row then sees the fixed value and
        // the redundancy pass can drop the two-term row it participates in.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_integer_var(0.4, 1.7, 1.0); // rounds to [1, 1]
        let y = m.add_var(0.0, 1.0, 1.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 3.0);
        let p = presolve(&m);
        assert!(!p.stats.proven_infeasible);
        assert_eq!(p.model.var_bounds(x), (1.0, 1.0));
        // With x fixed at 1 the row's max activity is 2 <= 3: redundant.
        assert_eq!(p.model.num_constraints(), 0);
    }

    #[test]
    fn integer_bound_rounding_proves_infeasible() {
        let mut m = Model::new(Sense::Minimize);
        // No integer in [0.3, 0.9].
        let _x = m.add_integer_var(0.3, 0.9, 1.0);
        let p = presolve(&m);
        assert!(p.stats.proven_infeasible);
    }

    #[test]
    fn equality_singleton_fixes_var() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, 10.0, 1.0);
        m.add_constraint(vec![(x, 2.0)], Relation::Eq, 8.0);
        let p = presolve(&m);
        assert_eq!(p.model.var_bounds(x), (4.0, 4.0));
    }
}

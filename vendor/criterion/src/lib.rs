//! Offline stand-in for `criterion`.
//!
//! Implements the macro and builder surface the workspace benches use
//! (`criterion_group!` with `name`/`config`/`targets`, `criterion_main!`,
//! `benchmark_group`, `bench_function`, `bench_with_input`, `BenchmarkId`,
//! `black_box`, `Bencher::iter`) with a simple wall-clock runner: each
//! benchmark is warmed up briefly, then timed for `sample_size` samples whose
//! total duration is bounded by `measurement_time`. Mean and min per-iteration
//! times are printed — no statistics, plots, or baselines.

use std::fmt;
use std::hint;
use std::time::{Duration, Instant};

pub fn black_box<T>(x: T) -> T {
    hint::black_box(x)
}

#[derive(Clone)]
pub struct Criterion {
    sample_size: usize,
    measurement_time: Duration,
    warm_up_time: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        Criterion {
            sample_size: 10,
            measurement_time: Duration::from_secs(5),
            warm_up_time: Duration::from_millis(300),
        }
    }
}

impl Criterion {
    pub fn sample_size(mut self, n: usize) -> Self {
        self.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(mut self, t: Duration) -> Self {
        self.measurement_time = t;
        self
    }

    pub fn warm_up_time(mut self, t: Duration) -> Self {
        self.warm_up_time = t;
        self
    }

    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.into() }
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        let cfg = self.clone();
        run_benchmark(&cfg, &id.to_string(), f);
    }
}

pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.sample_size = n.max(1);
        self
    }

    pub fn measurement_time(&mut self, t: Duration) -> &mut Self {
        self.criterion.measurement_time = t;
        self
    }

    pub fn bench_function<F: FnMut(&mut Bencher)>(&mut self, id: impl fmt::Display, f: F) {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(self.criterion, &label, f);
    }

    pub fn bench_with_input<I: ?Sized, F: FnMut(&mut Bencher, &I)>(
        &mut self,
        id: BenchmarkId,
        input: &I,
        mut f: F,
    ) {
        let label = format!("{}/{}", self.name, id);
        run_benchmark(self.criterion, &label, |b| f(b, input));
    }

    pub fn finish(self) {}
}

pub struct BenchmarkId {
    text: String,
}

impl BenchmarkId {
    pub fn new(function_name: impl fmt::Display, parameter: impl fmt::Display) -> Self {
        BenchmarkId { text: format!("{function_name}/{parameter}") }
    }

    pub fn from_parameter(parameter: impl fmt::Display) -> Self {
        BenchmarkId { text: parameter.to_string() }
    }
}

impl fmt::Display for BenchmarkId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.text)
    }
}

pub struct Bencher {
    /// Per-iteration durations for the current sample, appended by `iter`.
    samples: Vec<Duration>,
    iters_per_sample: u64,
}

impl Bencher {
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut routine: F) {
        let start = Instant::now();
        for _ in 0..self.iters_per_sample {
            hint::black_box(routine());
        }
        let total = start.elapsed();
        self.samples.push(total / self.iters_per_sample.max(1) as u32);
    }
}

fn run_benchmark<F: FnMut(&mut Bencher)>(cfg: &Criterion, label: &str, mut f: F) {
    // Warm-up: run once to estimate the per-call cost, then pick an iteration
    // count so each sample is long enough to time but all samples fit in the
    // measurement budget.
    let warm_start = Instant::now();
    let mut probe = Bencher { samples: Vec::new(), iters_per_sample: 1 };
    let mut calls = 0u64;
    while warm_start.elapsed() < cfg.warm_up_time && calls < 1000 {
        f(&mut probe);
        calls += 1;
    }
    let per_iter = probe
        .samples
        .iter()
        .copied()
        .min()
        .unwrap_or(Duration::from_micros(1))
        .max(Duration::from_nanos(1));

    let budget_per_sample = cfg.measurement_time / cfg.sample_size as u32;
    let iters_per_sample =
        (budget_per_sample.as_nanos() / per_iter.as_nanos().max(1)).clamp(1, 1_000_000) as u64;

    let mut bencher = Bencher { samples: Vec::new(), iters_per_sample };
    let deadline = Instant::now() + cfg.measurement_time;
    for _ in 0..cfg.sample_size {
        f(&mut bencher);
        if Instant::now() > deadline {
            break;
        }
    }

    let samples = &bencher.samples;
    if samples.is_empty() {
        println!("{label}: no samples collected");
        return;
    }
    let total: Duration = samples.iter().sum();
    let mean = total / samples.len() as u32;
    let min = samples.iter().copied().min().unwrap();
    println!(
        "{label}: mean {} / min {} over {} samples x {} iters",
        fmt_time(mean),
        fmt_time(min),
        samples.len(),
        iters_per_sample
    );
}

fn fmt_time(d: Duration) -> String {
    let ns = d.as_nanos();
    if ns < 1_000 {
        format!("{ns} ns")
    } else if ns < 1_000_000 {
        format!("{:.2} us", ns as f64 / 1e3)
    } else if ns < 1_000_000_000 {
        format!("{:.2} ms", ns as f64 / 1e6)
    } else {
        format!("{:.2} s", ns as f64 / 1e9)
    }
}

#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion: $crate::Criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn runner_collects_samples() {
        let mut c = Criterion::default()
            .sample_size(3)
            .measurement_time(Duration::from_millis(30))
            .warm_up_time(Duration::from_millis(5));
        let mut group = c.benchmark_group("demo");
        group.bench_function("noop", |b| b.iter(|| black_box(1 + 1)));
        group.bench_with_input(BenchmarkId::new("sum", 8), &8u64, |b, &n| {
            b.iter(|| (0..n).sum::<u64>())
        });
        group.finish();
    }
}

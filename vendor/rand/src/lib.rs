//! Offline stand-in for the `rand` crate.
//!
//! The build environment for this repository has no access to crates.io, so
//! the workspace vendors the small API subset it actually uses: the
//! [`Rng`]/[`RngCore`]/[`SeedableRng`] traits, [`rngs::StdRng`], uniform
//! `gen`/`gen_range`/`gen_bool` sampling, and [`seq::SliceRandom`]. The
//! generator behind `StdRng` is xoshiro256++ seeded through splitmix64 —
//! not the upstream ChaCha12 stream, so sequences differ from crates.io
//! `rand`, but every determinism contract in the workspace (same seed ⇒ same
//! stream) holds.

/// Low-level entropy source: everything derives from `next_u64`.
pub trait RngCore {
    fn next_u64(&mut self) -> u64;

    fn next_u32(&mut self) -> u32 {
        (self.next_u64() >> 32) as u32
    }

    fn fill_bytes(&mut self, dest: &mut [u8]) {
        for chunk in dest.chunks_mut(8) {
            let bytes = self.next_u64().to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
    }
}

impl<R: RngCore + ?Sized> RngCore for &mut R {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Values that [`Rng::gen`] can produce uniformly.
pub trait Standard: Sized {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl Standard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f64 {
        // 53 random mantissa bits scaled into [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard for f32 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> f32 {
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl Standard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! impl_standard_int {
    ($($t:ty),*) => {$(
        impl Standard for $t {
            fn sample<R: RngCore + ?Sized>(rng: &mut R) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Ranges that [`Rng::gen_range`] accepts.
pub trait SampleRange<T> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

/// Draw a uniform integer in `[0, n)` by rejection from the top 64-bit range
/// (bias-free; the rejection zone is < 1 draw on average for any `n`).
fn uniform_u64_below<R: RngCore + ?Sized>(rng: &mut R, n: u64) -> u64 {
    debug_assert!(n > 0);
    let zone = u64::MAX - u64::MAX % n;
    loop {
        let v = rng.next_u64();
        if v < zone {
            return v % n;
        }
    }
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + uniform_u64_below(rng, span) as i128) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (lo, hi) = (*self.start(), *self.end());
                assert!(lo <= hi, "cannot sample empty range");
                let span = (hi as i128 - lo as i128 + 1) as u64;
                if span == 0 {
                    // Full-width range: every bit pattern is fair.
                    return rng.next_u64() as $t;
                }
                (lo as i128 + uniform_u64_below(rng, span) as i128) as $t
            }
        }
    )*};
}
impl_sample_range_int!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

impl SampleRange<f64> for core::ops::Range<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f64::sample(rng) * (self.end - self.start)
    }
}

impl SampleRange<f64> for core::ops::RangeInclusive<f64> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f64 {
        let (lo, hi) = (*self.start(), *self.end());
        assert!(lo <= hi, "cannot sample empty range");
        lo + f64::sample(rng) * (hi - lo)
    }
}

impl SampleRange<f32> for core::ops::Range<f32> {
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> f32 {
        assert!(self.start < self.end, "cannot sample empty range");
        self.start + f32::sample(rng) * (self.end - self.start)
    }
}

/// High-level sampling methods, blanket-implemented for every [`RngCore`].
pub trait Rng: RngCore {
    fn gen<T: Standard>(&mut self) -> T {
        T::sample(self)
    }

    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample_from(self)
    }

    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "probability out of [0, 1]");
        f64::sample(self) < p
    }

    fn gen_ratio(&mut self, numerator: u32, denominator: u32) -> bool {
        assert!(denominator > 0 && numerator <= denominator);
        uniform_u64_below(self, denominator as u64) < numerator as u64
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Deterministic construction from seeds.
pub trait SeedableRng: Sized {
    type Seed: AsMut<[u8]> + Default;

    fn from_seed(seed: Self::Seed) -> Self;

    fn seed_from_u64(state: u64) -> Self {
        let mut seed = Self::Seed::default();
        let mut sm = state;
        for chunk in seed.as_mut().chunks_mut(8) {
            sm = splitmix64(sm);
            let bytes = sm.to_le_bytes();
            chunk.copy_from_slice(&bytes[..chunk.len()]);
        }
        Self::from_seed(seed)
    }
}

pub(crate) fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9E37_79B9_7F4A_7C15);
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
    z ^ (z >> 31)
}

pub mod rngs {
    use super::{splitmix64, RngCore, SeedableRng};

    /// Deterministic test-only generators, mirroring `rand::rngs::mock`.
    pub mod mock {
        use super::RngCore;

        /// Arithmetic-progression generator: `next_u64` returns the current
        /// value and then advances it by `increment` (wrapping). With
        /// `StepRng::new(0, 0)` every draw is 0, so `gen::<f64>()` is always
        /// 0.0 — handy for forcing deterministic branches in tests.
        #[derive(Debug, Clone, PartialEq, Eq)]
        pub struct StepRng {
            v: u64,
            increment: u64,
        }

        impl StepRng {
            pub fn new(initial: u64, increment: u64) -> StepRng {
                StepRng { v: initial, increment }
            }
        }

        impl RngCore for StepRng {
            fn next_u64(&mut self) -> u64 {
                let out = self.v;
                self.v = self.v.wrapping_add(self.increment);
                out
            }
        }
    }

    /// The workspace's standard generator: xoshiro256++ (Blackman & Vigna).
    /// Passes BigCrush; plenty for Monte-Carlo validation workloads.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl StdRng {
        fn from_state(mut sm: u64) -> StdRng {
            let mut s = [0u64; 4];
            for w in &mut s {
                sm = splitmix64(sm);
                *w = sm;
            }
            // xoshiro must not start from the all-zero state.
            if s == [0, 0, 0, 0] {
                s[0] = 0x9E37_79B9_7F4A_7C15;
            }
            StdRng { s }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let s = &mut self.s;
            let result = s[0].wrapping_add(s[3]).rotate_left(23).wrapping_add(s[0]);
            let t = s[1] << 17;
            s[2] ^= s[0];
            s[3] ^= s[1];
            s[1] ^= s[2];
            s[0] ^= s[3];
            s[2] ^= t;
            s[3] = s[3].rotate_left(45);
            result
        }
    }

    impl SeedableRng for StdRng {
        type Seed = [u8; 32];

        fn from_seed(seed: [u8; 32]) -> StdRng {
            let mut s = [0u64; 4];
            for (w, chunk) in s.iter_mut().zip(seed.chunks(8)) {
                *w = u64::from_le_bytes(chunk.try_into().unwrap());
            }
            if s == [0, 0, 0, 0] {
                return StdRng::from_state(0);
            }
            StdRng { s }
        }

        fn seed_from_u64(state: u64) -> StdRng {
            StdRng::from_state(state)
        }
    }

    /// Alias: the workspace never relies on `SmallRng`'s specific stream.
    pub type SmallRng = StdRng;
}

/// A generator seeded from the system clock — for exploratory binaries only;
/// every experiment path seeds explicitly.
pub fn thread_rng() -> rngs::StdRng {
    let nanos = std::time::SystemTime::now()
        .duration_since(std::time::UNIX_EPOCH)
        .map(|d| d.as_nanos() as u64)
        .unwrap_or(0x5EED);
    rngs::StdRng::seed_from_u64(nanos)
}

pub mod seq {
    use super::{uniform_u64_below, RngCore};

    /// Slice shuffling and choosing.
    pub trait SliceRandom {
        type Item;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R);
        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn shuffle<R: RngCore + ?Sized>(&mut self, rng: &mut R) {
            // Fisher–Yates.
            for i in (1..self.len()).rev() {
                let j = uniform_u64_below(rng, (i + 1) as u64) as usize;
                self.swap(i, j);
            }
        }

        fn choose<R: RngCore + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[uniform_u64_below(rng, self.len() as u64) as usize])
            }
        }
    }

    pub mod index {
        use super::super::{uniform_u64_below, RngCore};

        /// Distinct indices sampled from `0..length`.
        #[derive(Debug, Clone)]
        pub struct IndexVec(Vec<usize>);

        impl IndexVec {
            pub fn len(&self) -> usize {
                self.0.len()
            }

            pub fn is_empty(&self) -> bool {
                self.0.is_empty()
            }

            pub fn iter(&self) -> std::slice::Iter<'_, usize> {
                self.0.iter()
            }

            pub fn into_vec(self) -> Vec<usize> {
                self.0
            }
        }

        impl IntoIterator for IndexVec {
            type Item = usize;
            type IntoIter = std::vec::IntoIter<usize>;
            fn into_iter(self) -> Self::IntoIter {
                self.0.into_iter()
            }
        }

        /// Sample `amount` distinct indices from `0..length`, in random
        /// order, via a partial Fisher–Yates shuffle.
        pub fn sample<R: RngCore + ?Sized>(rng: &mut R, length: usize, amount: usize) -> IndexVec {
            assert!(amount <= length, "cannot sample {amount} of {length}");
            let mut pool: Vec<usize> = (0..length).collect();
            for i in 0..amount {
                let j = i + uniform_u64_below(rng, (length - i) as u64) as usize;
                pool.swap(i, j);
            }
            pool.truncate(amount);
            IndexVec(pool)
        }
    }
}

pub mod prelude {
    pub use super::rngs::{SmallRng, StdRng};
    pub use super::seq::SliceRandom;
    pub use super::{thread_rng, Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::seq::SliceRandom;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(a.next_u64(), c.next_u64());
    }

    use super::RngCore;

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..10_000 {
            let x = rng.gen_range(3..17usize);
            assert!((3..17).contains(&x));
            let y = rng.gen_range(-5i64..=5);
            assert!((-5..=5).contains(&y));
            let f = rng.gen_range(0.25f64..0.75);
            assert!((0.25..0.75).contains(&f));
        }
    }

    #[test]
    fn unit_floats_in_range_and_roughly_uniform() {
        let mut rng = StdRng::seed_from_u64(11);
        let n = 100_000;
        let mean: f64 = (0..n).map(|_| rng.gen::<f64>()).sum::<f64>() / n as f64;
        assert!((mean - 0.5).abs() < 0.01, "mean {mean}");
    }

    #[test]
    fn gen_bool_frequency() {
        let mut rng = StdRng::seed_from_u64(13);
        let hits = (0..100_000).filter(|_| rng.gen_bool(0.3)).count();
        assert!((hits as f64 / 100_000.0 - 0.3).abs() < 0.01);
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = StdRng::seed_from_u64(5);
        let mut v: Vec<usize> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
        assert_ne!(v, (0..50).collect::<Vec<_>>(), "50 elements should move");
    }

    #[test]
    fn choose_covers_all_elements() {
        let mut rng = StdRng::seed_from_u64(3);
        let v = [1, 2, 3, 4];
        let mut seen = std::collections::HashSet::new();
        for _ in 0..200 {
            seen.insert(*v.choose(&mut rng).unwrap());
        }
        assert_eq!(seen.len(), 4);
        let empty: [i32; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
    }

    #[test]
    fn works_through_mut_references() {
        fn takes_rng<R: Rng + ?Sized>(rng: &mut R) -> f64 {
            rng.gen_range(0.0..1.0)
        }
        let mut rng = StdRng::seed_from_u64(1);
        let x = takes_rng(&mut rng);
        assert!((0.0..1.0).contains(&x));
    }
}

//! Golden-file regression tests for the human-readable placement report
//! (`relaug::report::render`) and the simulator's `SloReport` JSON.
//!
//! Each test renders a deterministic artifact and compares it byte-for-byte
//! against a checked-in fixture under `tests/golden/`. To refresh after an
//! intentional format change:
//!
//! ```text
//! UPDATE_GOLDEN=1 cargo test --test golden_reports
//! ```
//!
//! Wall-clock state is scrubbed before rendering (`Outcome::runtime` zeroed,
//! telemetry timings zeroed); everything else in these artifacts is a pure
//! function of the seed.

use std::path::PathBuf;
use std::time::Duration;

use mec_sfc_reliability::mecnet::workload::{generate_scenario, WorkloadConfig};
use mec_sfc_reliability::obs::Recorder;
use mec_sfc_reliability::relaug::instance::AugmentationInstance;
use mec_sfc_reliability::relaug::solution::Outcome;
use mec_sfc_reliability::relaug::stream::Algorithm;
use mec_sfc_reliability::relaug::{heuristic, ilp, report};
use rand::rngs::StdRng;
use rand::SeedableRng;
use sim::{from_name, run, SimConfig};

fn golden_path(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR")).join("tests/golden").join(name)
}

/// Compare `actual` against the named fixture; rewrite the fixture instead
/// when `UPDATE_GOLDEN=1`.
fn assert_golden(name: &str, actual: &str) {
    let path = golden_path(name);
    if std::env::var_os("UPDATE_GOLDEN").is_some() {
        std::fs::create_dir_all(path.parent().unwrap()).unwrap();
        std::fs::write(&path, actual).unwrap();
        return;
    }
    let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
        panic!("missing golden fixture {path:?} ({e}); run with UPDATE_GOLDEN=1 to create it")
    });
    assert_eq!(
        actual, expected,
        "rendered output diverged from {path:?}; \
         if the change is intentional refresh with UPDATE_GOLDEN=1"
    );
}

/// Zero every wall-clock field so the artifact depends only on the seed.
fn scrub(outcome: &mut Outcome) {
    outcome.runtime = Duration::ZERO;
    for (_, secs) in &mut outcome.telemetry.timings_s {
        *secs = 0.0;
    }
}

fn fixture_instance(seed: u64) -> AugmentationInstance {
    let cfg = WorkloadConfig { nodes: 30, sfc_len_range: (3, 5), ..Default::default() };
    let mut rng = StdRng::seed_from_u64(seed);
    let scenario = generate_scenario(&cfg, &mut rng);
    AugmentationInstance::from_scenario(&scenario, 1)
}

#[test]
fn golden_render_heuristic() {
    let inst = fixture_instance(42);
    let mut out = heuristic::solve(&inst, &Default::default());
    scrub(&mut out);
    assert_golden("render_heuristic.txt", &report::render(&inst, &out));
}

#[test]
fn golden_render_ilp_traced() {
    // Traced so the report includes the telemetry timing lines (zeroed) and
    // the solver-effort counters.
    let inst = fixture_instance(7);
    let mut rec = Recorder::memory();
    let mut out = ilp::solve_traced(&inst, &Default::default(), &mut rec).expect("ilp");
    scrub(&mut out);
    assert_golden("render_ilp_traced.txt", &report::render(&inst, &out));
}

#[test]
fn golden_slo_report_json() {
    // Small but non-trivial run: failures, repairs and at least one
    // reactive re-augmentation. Simulation time only — no scrubbing needed.
    let cfg = SimConfig {
        duration: 120.0,
        arrival_rate: 0.1,
        mean_holding: 60.0,
        mttr: 2.0,
        algorithm: Algorithm::Greedy(Default::default()),
        seed: 99,
        ..Default::default()
    };
    let workload = WorkloadConfig { nodes: 25, ..Default::default() };
    let mut rng = StdRng::seed_from_u64(cfg.seed);
    let scenario = generate_scenario(&workload, &mut rng);
    let policy = from_name("reactive", 10.0).expect("policy");
    let report = run(&scenario.network, &scenario.catalog, &cfg, policy.as_ref());
    assert!(report.arrivals > 0, "fixture run must see arrivals");
    let mut json = report.to_json();
    json.push('\n');
    assert_golden("slo_report.json", &json);
}

//! Allocation audit of the heuristic steady-state solve path.
//!
//! Pins the zero-alloc contract of [`relaug::scratch::SolveScratch`]: after a
//! warm-up pass grows every scratch buffer to its high-water mark, running
//! [`relaug::heuristic::solve_in`] over the same instances again must perform
//! **zero** heap allocations. A counting `#[global_allocator]` wrapped around
//! `System` counts every `alloc`/`realloc`; the binary prints the per-request
//! allocation count and exits non-zero if any allocation slipped back into
//! the hot loop — CI runs it as a regression gate (`QUICK=1` shrinks the
//! instance set and pass count).
//!
//! Not a criterion bench on purpose: a counting global allocator would also
//! count criterion's own bookkeeping, so this is a plain `harness = false`
//! main with hand-rolled measurement.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering::Relaxed};
use std::time::Instant;

use mecnet::workload::{generate_scenario, WorkloadConfig};
use obs::Recorder;
use rand::rngs::StdRng;
use rand::SeedableRng;
use relaug::heuristic::{self, HeuristicConfig};
use relaug::instance::AugmentationInstance;
use relaug::SolveScratch;

struct CountingAlloc;

static ALLOCS: AtomicU64 = AtomicU64::new(0);

unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.fetch_add(1, Relaxed);
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static GLOBAL: CountingAlloc = CountingAlloc;

const SEED: u64 = 42;

fn main() {
    // `cargo bench` passes harness flags like `--bench`; ignore them.
    let quick = std::env::var_os("QUICK").is_some();
    let instances_n = if quick { 8 } else { 32 };
    let passes = if quick { 5 } else { 50 };

    let wl = WorkloadConfig::default();
    let mut rng = StdRng::seed_from_u64(SEED);
    let instances: Vec<AugmentationInstance> = (0..instances_n)
        .map(|_| {
            let scenario = generate_scenario(&wl, &mut rng);
            AugmentationInstance::from_scenario(&scenario, 1)
        })
        .collect();

    // Every solver configuration shares the zero-alloc contract: the
    // incremental engine (default), the historical rebuild path, and the
    // batch_rounds b-matching ablation.
    let configs: [(&str, HeuristicConfig); 3] = [
        ("incremental", HeuristicConfig::default()),
        (
            "rebuild",
            HeuristicConfig { engine: heuristic::MatchEngine::Rebuild, ..Default::default() },
        ),
        ("batch", HeuristicConfig { batch_rounds: true, ..Default::default() }),
    ];

    let mut rec = Recorder::noop();
    let mut scratch = SolveScratch::new();
    let mut failed = false;
    for (label, cfg) in &configs {
        let mut rounds = 0usize;
        // Warm-up: two full passes grow every buffer to its high-water mark.
        for _ in 0..2 {
            for inst in &instances {
                rounds += heuristic::solve_in(inst, cfg, &mut rec, &mut scratch);
            }
        }

        let before = ALLOCS.load(Relaxed);
        let started = Instant::now();
        for _ in 0..passes {
            for inst in &instances {
                rounds += heuristic::solve_in(inst, cfg, &mut rec, &mut scratch);
            }
        }
        let elapsed = started.elapsed();
        let allocs = ALLOCS.load(Relaxed) - before;

        let solves = (passes * instances.len()) as u64;
        println!(
            "solve_alloc[{label}]: {instances_n} instances x {passes} passes = {solves} solves"
        );
        println!(
            "solve_alloc[{label}]: {allocs} heap allocations after warm-up \
             ({:.4} allocs/request)",
            allocs as f64 / solves as f64
        );
        println!(
            "solve_alloc[{label}]: {:.2} us/solve, {} matching rounds total",
            elapsed.as_secs_f64() * 1e6 / solves as f64,
            rounds
        );
        if allocs > 0 {
            eprintln!(
                "solve_alloc[{label}]: FAIL — the heuristic steady-state path must not allocate"
            );
            failed = true;
        }
    }
    if failed {
        std::process::exit(1);
    }
    println!("solve_alloc: OK — zero allocations per request on the steady-state path");
}

//! Cross-validation of the three matching implementations:
//!
//! * flow-based min-cost maximum matching vs. the brute-force oracle,
//! * its cardinality vs. Hopcroft–Karp,
//! * its cost vs. the dense Hungarian solver on complete instances.

use matching::brute::min_cost_max_matching_exact;
use matching::hopcroft_karp::max_cardinality_edges;
use matching::hungarian;
use matching::min_cost_max_matching;
use proptest::prelude::*;

fn arb_sparse_graph() -> impl Strategy<Value = (usize, usize, Vec<(usize, usize, f64)>)> {
    (1usize..=6, 1usize..=6).prop_flat_map(|(nl, nr)| {
        let edges = proptest::collection::vec((0..nl, 0..nr, 0.0f64..20.0), 0..=(nl * nr).min(14));
        edges.prop_map(move |e| (nl, nr, e))
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(128))]

    #[test]
    fn flow_matches_brute_force((nl, nr, edges) in arb_sparse_graph()) {
        let m = min_cost_max_matching(nl, nr, &edges);
        let (card, cost) = min_cost_max_matching_exact(nl, nr, &edges);
        prop_assert_eq!(m.cardinality(), card,
            "cardinality mismatch on {:?}", edges);
        prop_assert!((m.cost - cost).abs() < 1e-6,
            "cost {} vs oracle {} on {:?}", m.cost, cost, edges);
        // The matching must be a matching: no repeated endpoints.
        let mut ls: Vec<_> = m.pairs.iter().map(|&(l, _)| l).collect();
        let mut rs: Vec<_> = m.pairs.iter().map(|&(_, r)| r).collect();
        ls.sort_unstable(); ls.dedup();
        rs.sort_unstable(); rs.dedup();
        prop_assert_eq!(ls.len(), m.pairs.len());
        prop_assert_eq!(rs.len(), m.pairs.len());
    }

    #[test]
    fn flow_cardinality_matches_hopcroft_karp((nl, nr, edges) in arb_sparse_graph()) {
        let m = min_cost_max_matching(nl, nr, &edges);
        let plain: Vec<(usize, usize)> = edges.iter().map(|&(l, r, _)| (l, r)).collect();
        prop_assert_eq!(m.cardinality(), max_cardinality_edges(nl, nr, &plain));
    }

    #[test]
    fn flow_matches_hungarian_on_complete_matrices(
        n in 1usize..=5,
        seed in proptest::collection::vec(0.0f64..50.0, 25),
    ) {
        let cost: Vec<Vec<f64>> =
            (0..n).map(|i| (0..n).map(|j| seed[i * 5 + j]).collect()).collect();
        let mut edges = Vec::new();
        for (i, row) in cost.iter().enumerate() {
            for (j, &c) in row.iter().enumerate() {
                edges.push((i, j, c));
            }
        }
        let flow = min_cost_max_matching(n, n, &edges);
        let dense = hungarian::solve(&cost).expect("complete matrix is feasible");
        prop_assert_eq!(flow.cardinality(), n);
        prop_assert!((flow.cost - dense.cost).abs() < 1e-6,
            "flow {} vs hungarian {}", flow.cost, dense.cost);
    }
}

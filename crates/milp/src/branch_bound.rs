//! Best-first branch and bound for mixed-integer linear programs.
//!
//! Each node solves the LP relaxation with tightened variable bounds (the
//! model itself is never cloned). Nodes are explored best-bound-first, the
//! branching variable is the most fractional one, and an incumbent is seeded
//! by rounding node relaxations whenever the rounded point happens to be
//! feasible — cheap, and on the near-integral GAP-style LPs produced by the
//! reliability-augmentation problem it prunes most of the tree immediately.
//!
//! Node LPs are *warm-started*: when a node is expanded, its optimal basis is
//! snapshotted once and shared (via `Rc`) by both children, which differ from
//! the parent by a single variable-bound change. The child re-solve then runs
//! the dual simplex from the parent basis — typically a handful of pivots —
//! instead of a cold two-phase solve. The warm and cold paths reach the same
//! optimal objectives, so node evaluation order, branching decisions and
//! answers are unchanged; only the pivot count drops.

use std::collections::BinaryHeap;
use std::rc::Rc;
use std::time::Instant;

use crate::error::SolverError;
use crate::problem::{Model, Sense, VarId};
use crate::simplex::{solve_lp_warm, BasisSnapshot, LpWorkspace};
use crate::solution::{LpStatus, MilpSolution};
use crate::INT_TOL;

/// Knobs for the branch-and-bound search.
#[derive(Debug, Clone)]
pub struct BnbConfig {
    /// Stop searching after this many nodes. If an incumbent exists by then it
    /// is returned with [`MilpSolution::proven`]` = false`; otherwise the
    /// solve fails with [`SolverError::NodeLimit`].
    pub max_nodes: usize,
    /// Optional wall-clock limit in seconds, same semantics as `max_nodes`.
    pub time_limit: Option<f64>,
    /// Absolute optimality gap at which a node is pruned against the
    /// incumbent.
    pub gap_tol: f64,
    /// Optional feasible starting point (in model-variable space) used to
    /// seed the incumbent; silently ignored if infeasible. A good warm start
    /// — e.g. from a problem-specific heuristic — can prune most of the tree.
    pub warm_start: Option<Vec<f64>>,
    /// Optional per-variable branching priorities (higher = branch first
    /// among fractional variables; ties broken by fractionality). Callers
    /// that know a variable's impact — e.g. its resource demand in a packing
    /// model — can cut the tree substantially.
    pub branch_priority: Option<Vec<f64>>,
    /// Warm-start each child node's LP from its parent's optimal basis via
    /// the dual simplex (default). Disable to force a cold two-phase solve
    /// at every node — only useful for benchmarking the warm-start gain.
    pub warm_lp_nodes: bool,
}

impl Default for BnbConfig {
    fn default() -> Self {
        BnbConfig {
            max_nodes: 200_000,
            time_limit: None,
            gap_tol: 1e-7,
            warm_start: None,
            branch_priority: None,
            warm_lp_nodes: true,
        }
    }
}

/// Search statistics, exposed for the paper's running-time figures and the
/// telemetry layer's solver-effort reports.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct BnbStats {
    /// Branch-and-bound nodes expanded (LP relaxations solved).
    pub nodes: usize,
    /// Total simplex iterations across all node LPs.
    pub lp_iterations: usize,
    /// How many times a better incumbent was found (warm start included).
    pub incumbent_updates: usize,
    /// Nodes discarded because their bound could not beat the incumbent.
    pub pruned_bound: usize,
    /// Nodes discarded because their LP relaxation was infeasible.
    pub pruned_infeasible: usize,
}

/// Solve `model` to proven optimality with default configuration.
pub fn solve_milp(model: &Model) -> Result<MilpSolution, SolverError> {
    solve_milp_with(model, &BnbConfig::default())
}

struct Node {
    /// Bound on the achievable objective in *minimization* sense.
    bound: f64,
    overrides: Vec<Option<(f64, f64)>>,
    /// Optimal basis of the parent's LP relaxation, shared by both children.
    basis: Option<Rc<BasisSnapshot>>,
}

impl PartialEq for Node {
    fn eq(&self, other: &Self) -> bool {
        self.bound == other.bound
    }
}
impl Eq for Node {}
impl PartialOrd for Node {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Node {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        // BinaryHeap is a max-heap; we want the smallest minimization bound
        // first.
        other.bound.partial_cmp(&self.bound).unwrap_or(std::cmp::Ordering::Equal)
    }
}

/// Solve `model` to proven optimality.
pub fn solve_milp_with(model: &Model, config: &BnbConfig) -> Result<MilpSolution, SolverError> {
    solve_milp_with_ws(model, config, &mut LpWorkspace::new())
}

/// Solve `model` to proven optimality, reusing `ws` for every node LP.
///
/// The workspace is cleared on entry, so the result is a pure function of
/// `(model, config)` — passing a workspace only reuses its *allocations*
/// (basis vectors, LU factors, eta file, pricing buffers) across calls.
/// Within the solve, node LPs warm-start from their parent's basis when
/// [`BnbConfig::warm_lp_nodes`] is set.
pub fn solve_milp_with_ws(
    model: &Model,
    config: &BnbConfig,
    ws: &mut LpWorkspace,
) -> Result<MilpSolution, SolverError> {
    ws.clear();
    model.validate()?;
    let int_vars = model.integer_vars();
    for &v in &int_vars {
        let (lo, hi) = model.var_bounds(v);
        if !lo.is_finite() && !hi.is_finite() {
            return Err(SolverError::NonFiniteInput {
                what: "integer variable with two infinite bounds",
            });
        }
    }
    let to_min = |obj: f64| if model.sense() == Sense::Maximize { -obj } else { obj };
    let started = Instant::now();

    let mut stats = BnbStats::default();
    let mut incumbent: Option<(f64, Vec<f64>)> = None; // (min-sense obj, x)
    if let Some(point) = &config.warm_start {
        if point.len() == model.num_vars()
            && model.is_feasible(point, 1e-6)
            && int_vars.iter().all(|&v| {
                let x = point[v.index()];
                (x - x.round()).abs() <= INT_TOL
            })
        {
            let x = snap(point, &int_vars);
            incumbent = Some((to_min(model.eval_objective(&x)), x));
            stats.incumbent_updates += 1;
        }
    }

    let root =
        Node { bound: f64::NEG_INFINITY, overrides: vec![None; model.num_vars()], basis: None };
    let mut heap = BinaryHeap::new();
    heap.push(root);
    let mut saw_unbounded_root = false;
    let mut proven = true;

    while let Some(node) = heap.pop() {
        if let Some((best, _)) = &incumbent {
            if node.bound >= best - config.gap_tol {
                stats.pruned_bound += 1;
                continue;
            }
        }
        stats.nodes += 1;
        if stats.nodes > config.max_nodes {
            if incumbent.is_some() {
                proven = false;
                break;
            }
            return Err(SolverError::NodeLimit { nodes: config.max_nodes });
        }
        if let Some(limit) = config.time_limit {
            if started.elapsed().as_secs_f64() > limit {
                if incumbent.is_some() {
                    proven = false;
                    break;
                }
                return Err(SolverError::TimeLimit { seconds: limit });
            }
        }

        // Warm-start from the parent's basis when available (one bound
        // changed, so it is still dual feasible); otherwise a cold solve.
        match (config.warm_lp_nodes, &node.basis) {
            (true, Some(snap)) => ws.restore(snap),
            _ => ws.clear(),
        }
        let lp = solve_lp_warm(model, Some(&node.overrides), ws)?;
        stats.lp_iterations += lp.iterations;
        match lp.status {
            LpStatus::Infeasible => {
                stats.pruned_infeasible += 1;
                continue;
            }
            LpStatus::Unbounded => {
                // An unbounded relaxation at the root means the MILP is
                // unbounded or infeasible; we report unbounded (standard
                // convention when the relaxation is unbounded).
                if stats.nodes == 1 {
                    saw_unbounded_root = true;
                    break;
                }
                continue;
            }
            LpStatus::Optimal => {}
        }
        let node_bound = to_min(lp.objective);
        if let Some((best, _)) = &incumbent {
            if node_bound >= best - config.gap_tol {
                stats.pruned_bound += 1;
                continue;
            }
        }

        // Branch variable: highest priority among fractional integer
        // variables; ties (and the default) fall back to most-fractional.
        let mut branch: Option<(VarId, f64, (f64, f64))> = None; // (var, value, (neg prio, frac dist))
        for &v in &int_vars {
            let val = lp.x[v.index()];
            let frac = (val - val.round()).abs();
            if frac > INT_TOL {
                let prio = config
                    .branch_priority
                    .as_ref()
                    .and_then(|p| p.get(v.index()).copied())
                    .unwrap_or(0.0);
                let key = (-prio, (frac - 0.5).abs());
                if branch.is_none_or(|(_, _, k)| key < k) {
                    branch = Some((v, val, key));
                }
            }
        }

        match branch {
            None => {
                // Integral relaxation: candidate incumbent.
                let x = snap(&lp.x, &int_vars);
                let obj = to_min(model.eval_objective(&x));
                if incumbent.as_ref().is_none_or(|(best, _)| obj < best - config.gap_tol) {
                    incumbent = Some((obj, x));
                    stats.incumbent_updates += 1;
                }
            }
            Some((v, val, _)) => {
                // Opportunistic incumbent from rounding before branching.
                let rounded = snap(&lp.x, &int_vars);
                if model.is_feasible(&rounded, 1e-7) {
                    let obj = to_min(model.eval_objective(&rounded));
                    if incumbent.as_ref().is_none_or(|(best, _)| obj < best - config.gap_tol) {
                        incumbent = Some((obj, rounded));
                        stats.incumbent_updates += 1;
                    }
                }
                let parent_basis =
                    if config.warm_lp_nodes { ws.snapshot().map(Rc::new) } else { None };
                let (lo, hi) = effective_bounds(model, &node.overrides, v);
                let floor = val.floor();
                if floor >= lo - 1e-12 {
                    let mut ovr = node.overrides.clone();
                    ovr[v.index()] = Some((lo, floor));
                    heap.push(Node {
                        bound: node_bound,
                        overrides: ovr,
                        basis: parent_basis.clone(),
                    });
                }
                let ceil = val.ceil();
                if ceil <= hi + 1e-12 {
                    let mut ovr = node.overrides.clone();
                    ovr[v.index()] = Some((ceil, hi));
                    heap.push(Node { bound: node_bound, overrides: ovr, basis: parent_basis });
                }
            }
        }
    }

    if saw_unbounded_root {
        return Ok(MilpSolution {
            status: LpStatus::Unbounded,
            objective: f64::NAN,
            x: Vec::new(),
            stats,
            proven: true,
        });
    }
    match incumbent {
        Some((obj_min, x)) => {
            let objective = if model.sense() == Sense::Maximize { -obj_min } else { obj_min };
            Ok(MilpSolution { status: LpStatus::Optimal, objective, x, stats, proven })
        }
        None => Ok(MilpSolution {
            status: LpStatus::Infeasible,
            objective: f64::NAN,
            x: Vec::new(),
            stats,
            proven: true,
        }),
    }
}

/// Round the integer entries of a relaxation point to the nearest integer.
fn snap(x: &[f64], int_vars: &[VarId]) -> Vec<f64> {
    let mut out = x.to_vec();
    for &v in int_vars {
        out[v.index()] = out[v.index()].round();
    }
    out
}

fn effective_bounds(model: &Model, overrides: &[Option<(f64, f64)>], v: VarId) -> (f64, f64) {
    let (mut lo, mut hi) = model.var_bounds(v);
    if let Some((l, h)) = overrides[v.index()] {
        lo = lo.max(l);
        hi = hi.min(h);
    }
    (lo, hi)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Model, Relation, Sense};

    #[test]
    fn knapsack_exact() {
        // max 10a + 13b + 7c s.t. 3a + 4b + 2c <= 6, binary.
        // Best: a + c (w 5, v 17)? b + c (w 6, v 20) -> 20.
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary_var(10.0);
        let b = m.add_binary_var(13.0);
        let c = m.add_binary_var(7.0);
        m.add_constraint(vec![(a, 3.0), (b, 4.0), (c, 2.0)], Relation::Le, 6.0);
        let sol = solve_milp(&m).unwrap();
        assert!(sol.is_optimal());
        assert!((sol.objective - 20.0).abs() < 1e-6);
        assert!((sol.x[b.index()] - 1.0).abs() < 1e-9);
        assert!((sol.x[c.index()] - 1.0).abs() < 1e-9);
    }

    #[test]
    fn integer_rounding_matters() {
        // max x + y s.t. 2x + 2y <= 5, integers: LP opt 2.5, ILP opt 2.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_integer_var(0.0, 10.0, 1.0);
        let y = m.add_integer_var(0.0, 10.0, 1.0);
        m.add_constraint(vec![(x, 2.0), (y, 2.0)], Relation::Le, 5.0);
        let sol = solve_milp(&m).unwrap();
        assert!((sol.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn mixed_integer_continuous() {
        // max 2x + y, x integer, 0<=x, 0<=y<=1.5, x + y <= 3.2
        // x=3 (int), y=0.2 -> 6.2. x=2,y=1.2->5.2. So 6.2.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_integer_var(0.0, 10.0, 2.0);
        let y = m.add_var(0.0, 1.5, 1.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 3.2);
        let sol = solve_milp(&m).unwrap();
        assert!((sol.objective - 6.2).abs() < 1e-6, "obj = {}", sol.objective);
        assert!((sol.x[x.index()] - 3.0).abs() < 1e-9);
    }

    #[test]
    fn infeasible_milp() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_binary_var(1.0);
        m.add_constraint(vec![(x, 1.0)], Relation::Ge, 2.0);
        let sol = solve_milp(&m).unwrap();
        assert_eq!(sol.status, LpStatus::Infeasible);
    }

    #[test]
    fn equality_forces_combination() {
        // min a + b + c s.t. 2a + 3b + 5c = 10, integers in [0, 10].
        // Solutions: (5,0,0)=5, (0,0,2)=2, (1,1,1)=3... best 2.
        let mut m = Model::new(Sense::Minimize);
        let a = m.add_integer_var(0.0, 10.0, 1.0);
        let b = m.add_integer_var(0.0, 10.0, 1.0);
        let c = m.add_integer_var(0.0, 10.0, 1.0);
        m.add_constraint(vec![(a, 2.0), (b, 3.0), (c, 5.0)], Relation::Eq, 10.0);
        let sol = solve_milp(&m).unwrap();
        assert!((sol.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn gap_style_assignment() {
        // Two items, two bins, sizes/costs chosen so LP is fractional.
        // max 5*x11 + 4*x12 + 3*x21 + 6*x22
        // item rows: x11 + x12 <= 1; x21 + x22 <= 1
        // bin capacities: 2*x11 + 3*x21 <= 3 ; 2*x12 + 3*x22 <= 3
        let mut m = Model::new(Sense::Maximize);
        let x11 = m.add_binary_var(5.0);
        let x12 = m.add_binary_var(4.0);
        let x21 = m.add_binary_var(3.0);
        let x22 = m.add_binary_var(6.0);
        m.add_constraint(vec![(x11, 1.0), (x12, 1.0)], Relation::Le, 1.0);
        m.add_constraint(vec![(x21, 1.0), (x22, 1.0)], Relation::Le, 1.0);
        m.add_constraint(vec![(x11, 2.0), (x21, 3.0)], Relation::Le, 3.0);
        m.add_constraint(vec![(x12, 2.0), (x22, 3.0)], Relation::Le, 3.0);
        let sol = solve_milp(&m).unwrap();
        // x11 = 1 (bin1), x22 = 1 (bin2): obj 11, feasible. Best possible.
        assert!((sol.objective - 11.0).abs() < 1e-6);
    }

    #[test]
    fn respects_node_limit() {
        let mut m = Model::new(Sense::Maximize);
        // A knapsack with enough structure to need > 1 node.
        let vars: Vec<_> = (0..12).map(|i| m.add_binary_var(7.0 + (i as f64) * 0.3)).collect();
        m.add_constraint(vars.iter().map(|&v| (v, 3.0)).collect(), Relation::Le, 17.0);
        let cfg = BnbConfig { max_nodes: 1, ..Default::default() };
        // With 1 node we may or may not finish; accept either Ok or NodeLimit,
        // but with max_nodes=0 we must hit the limit.
        let cfg0 = BnbConfig { max_nodes: 0, ..Default::default() };
        assert!(matches!(solve_milp_with(&m, &cfg0), Err(SolverError::NodeLimit { .. })));
        let _ = solve_milp_with(&m, &cfg);
    }

    #[test]
    fn rejects_doubly_unbounded_integer() {
        let mut m = Model::new(Sense::Minimize);
        m.add_integer_var(f64::NEG_INFINITY, f64::INFINITY, 1.0);
        assert!(matches!(solve_milp(&m), Err(SolverError::NonFiniteInput { .. })));
    }

    #[test]
    fn warm_and_cold_node_solves_agree() {
        // Same answers; the trees may differ slightly (alternate LP optima
        // resolve differently under dual vs primal pivots) but the warm run
        // must not spend more total simplex work.
        let mut m = Model::new(Sense::Maximize);
        let vars: Vec<_> = (0..10).map(|i| m.add_binary_var(4.0 + (i as f64) * 0.7)).collect();
        m.add_constraint(vars.iter().map(|&v| (v, 2.0 + 0.1)).collect(), Relation::Le, 9.0);
        m.add_constraint(
            vars.iter().enumerate().map(|(i, &v)| (v, 1.0 + (i % 3) as f64)).collect(),
            Relation::Le,
            7.0,
        );
        let warm = solve_milp_with(&m, &BnbConfig::default()).unwrap();
        let cold =
            solve_milp_with(&m, &BnbConfig { warm_lp_nodes: false, ..Default::default() }).unwrap();
        assert_eq!(warm.status, cold.status);
        assert!((warm.objective - cold.objective).abs() < 1e-9);
        assert!(warm.stats.lp_iterations <= cold.stats.lp_iterations);
    }

    #[test]
    fn workspace_entry_point_matches_plain_solve() {
        let mut m = Model::new(Sense::Maximize);
        let a = m.add_binary_var(10.0);
        let b = m.add_binary_var(13.0);
        let c = m.add_binary_var(7.0);
        m.add_constraint(vec![(a, 3.0), (b, 4.0), (c, 2.0)], Relation::Le, 6.0);
        let mut ws = crate::simplex::LpWorkspace::new();
        let one = solve_milp_with_ws(&m, &BnbConfig::default(), &mut ws).unwrap();
        // Second solve through the same workspace must be identical (the
        // workspace is cleared on entry; only allocations are reused).
        let two = solve_milp_with_ws(&m, &BnbConfig::default(), &mut ws).unwrap();
        let plain = solve_milp(&m).unwrap();
        assert_eq!(one.stats, two.stats);
        assert_eq!(one.stats, plain.stats);
        assert!((one.objective - plain.objective).abs() < 1e-12);
        assert_eq!(one.x, two.x);
    }

    #[test]
    fn maximize_and_minimize_agree() {
        // min -obj == -(max obj)
        let build = |sense| {
            let mut m = Model::new(sense);
            let s = if sense == Sense::Maximize { 1.0 } else { -1.0 };
            let a = m.add_binary_var(s * 4.0);
            let b = m.add_binary_var(s * 5.0);
            m.add_constraint(vec![(a, 2.0), (b, 3.0)], Relation::Le, 4.0);
            m
        };
        let mx = solve_milp(&build(Sense::Maximize)).unwrap();
        let mn = solve_milp(&build(Sense::Minimize)).unwrap();
        assert!((mx.objective + mn.objective).abs() < 1e-9);
        assert!((mx.objective - 5.0).abs() < 1e-6);
    }
}

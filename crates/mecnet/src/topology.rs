//! Network topology generators.
//!
//! The paper generates topologies "using the widely adopted approach due to
//! GT-ITM". GT-ITM's flat random model is the Waxman model: nodes are placed
//! uniformly in a unit square and each pair `(u, v)` is connected with
//! probability `α · exp(-d(u,v) / (β·L))` where `L` is the maximum possible
//! distance. [`waxman`] implements exactly that, plus a connectivity repair
//! pass (experiments need connected networks so every hop distance is
//! defined). Regular topologies (grid, ring, complete) and Erdős–Rényi graphs
//! are provided for tests and ablations.

use crate::graph::{Graph, NodeId};
use rand::Rng;

/// Parameters of the Waxman/GT-ITM random topology.
#[derive(Debug, Clone, serde::Serialize, serde::Deserialize)]
pub struct WaxmanConfig {
    pub nodes: usize,
    /// Overall edge density, `0 < alpha <= 1`.
    pub alpha: f64,
    /// Locality: small `beta` favours short links, `0 < beta <= 1`.
    pub beta: f64,
    /// Add a minimum-distance spanning structure if the sample is
    /// disconnected (the paper's simulations assume connectivity).
    pub ensure_connected: bool,
}

impl Default for WaxmanConfig {
    fn default() -> Self {
        // alpha/beta tuned to give the sparse metro-network degrees (~3-4)
        // typical of GT-ITM configurations used in MEC papers.
        WaxmanConfig { nodes: 100, alpha: 0.4, beta: 0.15, ensure_connected: true }
    }
}

/// Generate a Waxman random graph; returns the graph and node positions in
/// the unit square (positions are kept so callers can draw or re-weight).
pub fn waxman<R: Rng + ?Sized>(config: &WaxmanConfig, rng: &mut R) -> (Graph, Vec<(f64, f64)>) {
    assert!(config.alpha > 0.0 && config.alpha <= 1.0, "alpha must be in (0,1]");
    assert!(config.beta > 0.0 && config.beta <= 1.0, "beta must be in (0,1]");
    let n = config.nodes;
    let positions: Vec<(f64, f64)> = (0..n).map(|_| (rng.gen::<f64>(), rng.gen::<f64>())).collect();
    let scale = std::f64::consts::SQRT_2; // max distance in the unit square
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            let d = dist(positions[u], positions[v]);
            let p = config.alpha * (-d / (config.beta * scale)).exp();
            if rng.gen::<f64>() < p {
                g.add_edge(NodeId(u), NodeId(v));
            }
        }
    }
    if config.ensure_connected {
        repair_connectivity(&mut g, &positions);
    }
    (g, positions)
}

/// Generate a Waxman subgraph over an explicit id set and splice its edges
/// into `g`, repairing intra-domain connectivity. This is the shared
/// sampling primitive behind every hierarchical generator in the workspace
/// ([`crate::transit_stub`] and the `scen` topology zoo) — domains are
/// internally-connected Waxman graphs differing only in which node ids they
/// cover and how dense/local their links are.
pub fn embed_waxman<R: Rng + ?Sized>(
    g: &mut Graph,
    ids: &[usize],
    alpha: f64,
    beta: f64,
    rng: &mut R,
) {
    if ids.len() <= 1 {
        return;
    }
    let cfg = WaxmanConfig {
        nodes: ids.len(),
        alpha: alpha.clamp(0.05, 1.0),
        beta: beta.clamp(0.05, 1.0),
        ensure_connected: false,
    };
    let (mut sub, pos) = waxman(&cfg, rng);
    repair_connectivity(&mut sub, &pos);
    for u in sub.nodes() {
        for v in sub.neighbors(u) {
            if v.index() > u.index() {
                g.add_edge(NodeId(ids[u.index()]), NodeId(ids[v.index()]));
            }
        }
    }
}

/// Connect a disconnected graph by repeatedly adding the geometrically
/// shortest edge between the first component and any other component.
pub fn repair_connectivity(g: &mut Graph, positions: &[(f64, f64)]) {
    loop {
        let comps = g.connected_components();
        if comps.len() <= 1 {
            return;
        }
        let base = &comps[0];
        let mut best: Option<(f64, NodeId, NodeId)> = None;
        for other in &comps[1..] {
            for &u in base {
                for &v in other {
                    let d = dist(positions[u.index()], positions[v.index()]);
                    if best.is_none_or(|(bd, _, _)| d < bd) {
                        best = Some((d, u, v));
                    }
                }
            }
        }
        let (_, u, v) = best.expect("multiple components imply a candidate pair");
        g.add_edge(u, v);
    }
}

/// `rows x cols` grid graph.
pub fn grid(rows: usize, cols: usize) -> Graph {
    let mut g = Graph::new(rows * cols);
    let id = |r: usize, c: usize| NodeId(r * cols + c);
    for r in 0..rows {
        for c in 0..cols {
            if c + 1 < cols {
                g.add_edge(id(r, c), id(r, c + 1));
            }
            if r + 1 < rows {
                g.add_edge(id(r, c), id(r + 1, c));
            }
        }
    }
    g
}

/// Cycle on `n` nodes (`n >= 3`).
pub fn ring(n: usize) -> Graph {
    assert!(n >= 3, "a ring needs at least 3 nodes");
    let mut g = Graph::new(n);
    for i in 0..n {
        g.add_edge(NodeId(i), NodeId((i + 1) % n));
    }
    g
}

/// Complete graph on `n` nodes.
pub fn complete(n: usize) -> Graph {
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            g.add_edge(NodeId(u), NodeId(v));
        }
    }
    g
}

/// Erdős–Rényi `G(n, p)` graph.
pub fn erdos_renyi<R: Rng + ?Sized>(n: usize, p: f64, rng: &mut R) -> Graph {
    assert!((0.0..=1.0).contains(&p), "p must be a probability");
    let mut g = Graph::new(n);
    for u in 0..n {
        for v in (u + 1)..n {
            if rng.gen::<f64>() < p {
                g.add_edge(NodeId(u), NodeId(v));
            }
        }
    }
    g
}

fn dist(a: (f64, f64), b: (f64, f64)) -> f64 {
    ((a.0 - b.0).powi(2) + (a.1 - b.1).powi(2)).sqrt()
}

#[cfg(test)]
mod tests {
    use super::*;
    use rand::rngs::StdRng;
    use rand::SeedableRng;

    #[test]
    fn waxman_is_connected_when_repaired() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..5 {
            let (g, pos) = waxman(&WaxmanConfig::default(), &mut rng);
            assert_eq!(g.num_nodes(), 100);
            assert_eq!(pos.len(), 100);
            assert!(g.is_connected());
        }
    }

    #[test]
    fn waxman_density_tracks_alpha() {
        let mut rng = StdRng::seed_from_u64(11);
        let sparse = WaxmanConfig { alpha: 0.1, ensure_connected: false, ..Default::default() };
        let dense = WaxmanConfig { alpha: 0.9, ensure_connected: false, ..Default::default() };
        let e_sparse: usize = (0..5).map(|_| waxman(&sparse, &mut rng).0.num_edges()).sum();
        let e_dense: usize = (0..5).map(|_| waxman(&dense, &mut rng).0.num_edges()).sum();
        assert!(e_dense > 3 * e_sparse, "dense {e_dense} vs sparse {e_sparse}");
    }

    #[test]
    fn waxman_prefers_short_links() {
        // With tiny beta, edges should connect geometrically close pairs.
        let mut rng = StdRng::seed_from_u64(3);
        let cfg = WaxmanConfig { alpha: 1.0, beta: 0.05, ensure_connected: false, nodes: 150 };
        let (g, pos) = waxman(&cfg, &mut rng);
        let mut total = 0.0;
        let mut count = 0usize;
        for u in g.nodes() {
            for v in g.neighbors(u) {
                if v.index() > u.index() {
                    total += dist(pos[u.index()], pos[v.index()]);
                    count += 1;
                }
            }
        }
        assert!(count > 0);
        let mean_len = total / count as f64;
        assert!(mean_len < 0.3, "mean edge length {mean_len} too long for beta=0.05");
    }

    #[test]
    fn grid_shape() {
        let g = grid(3, 4);
        assert_eq!(g.num_nodes(), 12);
        // edges: 3*3 horizontal + 2*4 vertical = 17
        assert_eq!(g.num_edges(), 17);
        assert!(g.is_connected());
        assert_eq!(g.diameter(), Some(5));
    }

    #[test]
    fn ring_and_complete() {
        let r = ring(6);
        assert_eq!(r.num_edges(), 6);
        assert_eq!(r.diameter(), Some(3));
        let k = complete(5);
        assert_eq!(k.num_edges(), 10);
        assert_eq!(k.diameter(), Some(1));
    }

    #[test]
    fn erdos_renyi_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert_eq!(erdos_renyi(10, 0.0, &mut rng).num_edges(), 0);
        assert_eq!(erdos_renyi(10, 1.0, &mut rng).num_edges(), 45);
    }

    #[test]
    fn repair_connects_components() {
        let mut g = Graph::new(4);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(2), NodeId(3));
        let pos = vec![(0.0, 0.0), (0.1, 0.0), (0.9, 0.0), (1.0, 0.0)];
        repair_connectivity(&mut g, &pos);
        assert!(g.is_connected());
        // The geometrically closest inter-component pair is (1, 2).
        assert!(g.has_edge(NodeId(1), NodeId(2)));
    }
}

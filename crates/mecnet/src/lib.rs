//! Mobile edge-cloud (MEC) network substrate.
//!
//! Models the environment of the ICPP 2020 reliability-augmentation paper:
//! an undirected network `G = (V, E)` of access points, a subset of which are
//! co-located with cloudlets carrying computing capacity; a catalog of
//! network-function types with per-instance computing demands and
//! reliabilities; SFC requests with reliability expectations; and the
//! admission step that places the *primary* VNF instances which the
//! augmentation algorithms then protect with secondaries.
//!
//! Layout:
//!
//! * [`graph`] — undirected graph, BFS hop distances, `l`-hop neighborhoods
//!   (`N_l(v)` / `N_l^+(v)` of the paper's Section 3).
//! * [`topology`] — generators: Waxman (the model behind GT-ITM's flat random
//!   graphs used in the paper's evaluation), grid, ring, Erdős–Rényi,
//!   complete; plus connectivity repair.
//! * [`network`] — cloudlet placement and capacities over a graph.
//! * [`vnf`] — network-function catalog (`c(f_i)`, `r_i`).
//! * [`request`] — SFC requests with reliability expectations `ρ_j`.
//! * [`admission`] — primary-placement strategies: the random placement used
//!   in the paper's evaluation and a max-reliability DAG placement following
//!   Ma et al. (TPDS 2020), the framework the paper cites for admission.
//! * [`workload`] — parameterized generators mirroring the paper's Section
//!   7.1 experiment settings.

pub mod admission;
pub mod dot;
pub mod graph;
pub mod neighborhood;
pub mod network;
pub mod request;
pub mod shard;
pub mod stats;
pub mod topology;
pub mod transit_stub;
pub mod vnf;
pub mod workload;

pub use graph::{Graph, NodeId};
pub use neighborhood::NeighborhoodIndex;
pub use network::{MecNetwork, NodeEpochs, Reservation, ReservationState, ReserveError};
pub use request::{chain_signature, SfcRequest};
pub use shard::{FootprintClass, ShardPartition, ShardedCapacity};
pub use vnf::{VnfCatalog, VnfType, VnfTypeId};

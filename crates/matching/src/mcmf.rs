//! Min-cost max-flow via successive shortest paths with Johnson potentials.
//!
//! Costs are `f64` (the reliability-augmentation costs are `-log` marginals,
//! i.e. non-negative reals); capacities are `i64`. Dijkstra runs on reduced
//! costs, which stay non-negative once potentials are initialized — by zeros
//! when all arc costs are non-negative, otherwise by one Bellman–Ford pass.

use std::cmp::Ordering;
use std::collections::BinaryHeap;

/// Tolerance under which a reduced cost is clamped to zero (guards Dijkstra
/// against `-1e-17`-style round-off). Shared with the incremental engine,
/// whose relaxations must take the exact same eps-strict branches.
pub(crate) const COST_EPS: f64 = 1e-12;

#[derive(Debug, Clone)]
struct Arc {
    to: usize,
    cap: i64,
    cost: f64,
}

/// Handle to an arc added with [`McmfGraph::add_edge`].
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct EdgeId(usize);

/// Result of a max-flow computation.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct FlowResult {
    /// Total units pushed from source to sink.
    pub flow: i64,
    /// Total cost of the flow (Σ flow·cost over arcs).
    pub cost: f64,
}

/// A directed flow network with real-valued arc costs.
///
/// The graph owns its shortest-path working arrays, so a long-lived instance
/// can be [`McmfGraph::reset`] and rebuilt every solve without allocating —
/// the streaming heuristic runs one matching per round per request, and this
/// reuse is what keeps that path allocation-free.
#[derive(Debug, Clone)]
pub struct McmfGraph {
    arcs: Vec<Arc>,       // forward arc at even index, residual at odd
    adj: Vec<Vec<usize>>, // node -> arc indices; first `n_active` in use
    n_active: usize,
    has_negative_cost: bool,
    // Reusable workspace for `min_cost_max_flow`.
    potential: Vec<f64>,
    dist: Vec<f64>,
    prev_arc: Vec<Option<usize>>,
    heap: BinaryHeap<HeapItem>,
}

impl McmfGraph {
    /// Create a network with `n` nodes (0-based ids).
    pub fn new(n: usize) -> Self {
        McmfGraph {
            arcs: Vec::new(),
            adj: vec![Vec::new(); n],
            n_active: n,
            has_negative_cost: false,
            potential: Vec::new(),
            dist: Vec::new(),
            prev_arc: Vec::new(),
            heap: BinaryHeap::new(),
        }
    }

    /// Clear all arcs and re-dimension to `n` nodes, keeping every buffer's
    /// capacity. Equivalent to `*self = McmfGraph::new(n)` without the
    /// allocations.
    pub fn reset(&mut self, n: usize) {
        self.arcs.clear();
        for inner in self.adj.iter_mut().take(self.n_active) {
            inner.clear();
        }
        if self.adj.len() < n {
            self.adj.resize_with(n, Vec::new);
        }
        self.n_active = n;
        self.has_negative_cost = false;
    }

    pub fn num_nodes(&self) -> usize {
        self.n_active
    }

    /// Add a directed arc `u -> v` with capacity `cap` and per-unit cost
    /// `cost`. Panics on negative capacity or non-finite cost.
    pub fn add_edge(&mut self, u: usize, v: usize, cap: i64, cost: f64) -> EdgeId {
        assert!(cap >= 0, "negative capacity");
        assert!(cost.is_finite(), "non-finite arc cost");
        assert!(u < self.n_active && v < self.n_active, "node out of range");
        if cost < 0.0 {
            self.has_negative_cost = true;
        }
        let id = self.arcs.len();
        self.arcs.push(Arc { to: v, cap, cost });
        self.arcs.push(Arc { to: u, cap: 0, cost: -cost });
        self.adj[u].push(id);
        self.adj[v].push(id + 1);
        EdgeId(id)
    }

    /// Flow currently on a forward arc (capacity consumed).
    pub fn flow_on(&self, e: EdgeId) -> i64 {
        self.arcs[e.0 ^ 1].cap
    }

    /// Push min-cost flow from `s` to `t` until no augmenting path remains (or
    /// `limit` units have been sent, if given). Augmentations are by path
    /// bottleneck. Returns total flow and cost of *this* call.
    pub fn min_cost_max_flow(&mut self, s: usize, t: usize, limit: Option<i64>) -> FlowResult {
        let n = self.n_active;
        assert!(s < n && t < n, "terminal out of range");
        // Take the workspace out of `self` so the shortest-path loop can
        // borrow `arcs`/`adj` immutably alongside it; restored before return.
        let mut potential = std::mem::take(&mut self.potential);
        let mut dist = std::mem::take(&mut self.dist);
        let mut prev_arc = std::mem::take(&mut self.prev_arc);
        let mut heap = std::mem::take(&mut self.heap);
        potential.clear();
        potential.resize(n, 0.0);
        if self.has_negative_cost {
            self.bellman_ford_potentials(s, &mut potential);
        }
        let mut total_flow = 0i64;
        let mut total_cost = 0.0f64;
        let remaining = |f: i64| limit.map_or(i64::MAX, |l| l - f);

        while remaining(total_flow) > 0 {
            // Dijkstra on reduced costs.
            dist.clear();
            dist.resize(n, f64::INFINITY);
            prev_arc.clear();
            prev_arc.resize(n, None);
            heap.clear();
            dist[s] = 0.0;
            heap.push(HeapItem { dist: 0.0, node: s });
            while let Some(HeapItem { dist: d, node: u }) = heap.pop() {
                if d > dist[u] + COST_EPS {
                    continue;
                }
                for &aid in &self.adj[u] {
                    let arc = &self.arcs[aid];
                    if arc.cap <= 0 {
                        continue;
                    }
                    let rc = (arc.cost + potential[u] - potential[arc.to]).max(0.0);
                    let nd = d + rc;
                    if nd + COST_EPS < dist[arc.to] {
                        dist[arc.to] = nd;
                        prev_arc[arc.to] = Some(aid);
                        heap.push(HeapItem { dist: nd, node: arc.to });
                    }
                }
            }
            if dist[t].is_infinite() {
                break;
            }
            for v in 0..n {
                if dist[v].is_finite() {
                    potential[v] += dist[v];
                }
            }
            // Bottleneck along the path.
            let mut bottleneck = remaining(total_flow);
            let mut v = t;
            while v != s {
                let aid = prev_arc[v].expect("path arc");
                bottleneck = bottleneck.min(self.arcs[aid].cap);
                v = self.arcs[aid ^ 1].to;
            }
            debug_assert!(bottleneck > 0);
            // Apply.
            let mut v = t;
            while v != s {
                let aid = prev_arc[v].expect("path arc");
                self.arcs[aid].cap -= bottleneck;
                self.arcs[aid ^ 1].cap += bottleneck;
                total_cost += bottleneck as f64 * self.arcs[aid].cost;
                v = self.arcs[aid ^ 1].to;
            }
            total_flow += bottleneck;
        }
        self.potential = potential;
        self.dist = dist;
        self.prev_arc = prev_arc;
        self.heap = heap;
        FlowResult { flow: total_flow, cost: total_cost }
    }

    /// One Bellman–Ford sweep over residual arcs to initialize potentials when
    /// negative-cost arcs are present. Panics on a negative cycle (cannot
    /// happen for the matching networks built by this workspace).
    fn bellman_ford_potentials(&self, s: usize, potential: &mut [f64]) {
        let n = self.n_active;
        for p in potential.iter_mut() {
            *p = f64::INFINITY;
        }
        potential[s] = 0.0;
        for round in 0..=n {
            let mut changed = false;
            for (aid, arc) in self.arcs.iter().enumerate() {
                if arc.cap <= 0 {
                    continue;
                }
                let from = self.arcs[aid ^ 1].to;
                if potential[from].is_finite()
                    && potential[from] + arc.cost + COST_EPS < potential[arc.to]
                {
                    potential[arc.to] = potential[from] + arc.cost;
                    changed = true;
                }
            }
            if !changed {
                break;
            }
            assert!(round < n, "negative cycle in flow network");
        }
        // Unreached nodes get potential 0; they are unreachable from s so
        // their reduced costs never matter.
        for p in potential.iter_mut() {
            if !p.is_finite() {
                *p = 0.0;
            }
        }
    }
}

#[derive(Debug, Clone, PartialEq)]
struct HeapItem {
    dist: f64,
    node: usize,
}

impl Eq for HeapItem {}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> Ordering {
        // Min-heap by distance.
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn single_path() {
        let mut g = McmfGraph::new(3);
        g.add_edge(0, 1, 5, 1.0);
        g.add_edge(1, 2, 3, 2.0);
        let r = g.min_cost_max_flow(0, 2, None);
        assert_eq!(r.flow, 3);
        assert!((r.cost - 9.0).abs() < 1e-9);
    }

    #[test]
    fn chooses_cheaper_path_first() {
        // Two disjoint paths 0->1->3 (cost 1+1) and 0->2->3 (cost 3+3), caps 1.
        let mut g = McmfGraph::new(4);
        let cheap = g.add_edge(0, 1, 1, 1.0);
        g.add_edge(1, 3, 1, 1.0);
        g.add_edge(0, 2, 1, 3.0);
        g.add_edge(2, 3, 1, 3.0);
        let r = g.min_cost_max_flow(0, 3, Some(1));
        assert_eq!(r.flow, 1);
        assert!((r.cost - 2.0).abs() < 1e-9);
        assert_eq!(g.flow_on(cheap), 1);
    }

    #[test]
    fn rerouting_through_residual_arcs() {
        // Classic diamond where optimal max flow must cancel a greedy choice.
        //   0 -> 1 (cap 1, cost 1), 0 -> 2 (cap 1, cost 10)
        //   1 -> 2 (cap 1, cost 1),  1 -> 3 (cap 1, cost 10)
        //   2 -> 3 (cap 1, cost 1)
        // Max flow 2: units 0-1-3 and 0-2-3 (cost 11 + 11 = 22); SSP will
        // first send 0-1-2-3 (cost 3) then 0-2 (res) ... final min cost is 22.
        let mut g = McmfGraph::new(4);
        g.add_edge(0, 1, 1, 1.0);
        g.add_edge(0, 2, 1, 10.0);
        g.add_edge(1, 2, 1, 1.0);
        g.add_edge(1, 3, 1, 10.0);
        g.add_edge(2, 3, 1, 1.0);
        let r = g.min_cost_max_flow(0, 3, None);
        assert_eq!(r.flow, 2);
        assert!((r.cost - 22.0).abs() < 1e-9, "cost = {}", r.cost);
    }

    #[test]
    fn respects_flow_limit() {
        let mut g = McmfGraph::new(2);
        g.add_edge(0, 1, 10, 1.0);
        let r = g.min_cost_max_flow(0, 1, Some(4));
        assert_eq!(r.flow, 4);
        assert!((r.cost - 4.0).abs() < 1e-9);
    }

    #[test]
    fn disconnected_sink() {
        let mut g = McmfGraph::new(3);
        g.add_edge(0, 1, 1, 1.0);
        let r = g.min_cost_max_flow(0, 2, None);
        assert_eq!(r.flow, 0);
        assert_eq!(r.cost, 0.0);
    }

    #[test]
    fn negative_costs_via_bellman_ford() {
        // A negative-cost arc on one branch; SSP must still be optimal.
        let mut g = McmfGraph::new(4);
        g.add_edge(0, 1, 1, 2.0);
        g.add_edge(1, 3, 1, -1.5);
        g.add_edge(0, 2, 1, 1.0);
        g.add_edge(2, 3, 1, 1.0);
        let r = g.min_cost_max_flow(0, 3, Some(1));
        assert_eq!(r.flow, 1);
        assert!((r.cost - 0.5).abs() < 1e-9, "cost = {}", r.cost);
    }

    #[test]
    fn zero_capacity_edges_ignored() {
        let mut g = McmfGraph::new(2);
        g.add_edge(0, 1, 0, 1.0);
        let r = g.min_cost_max_flow(0, 1, None);
        assert_eq!(r.flow, 0);
    }

    #[test]
    fn reset_behaves_like_fresh_graph() {
        let mut g = McmfGraph::new(4);
        g.add_edge(0, 1, 1, -2.0); // leaves has_negative_cost set
        g.add_edge(1, 3, 1, 1.0);
        g.min_cost_max_flow(0, 3, None);
        // Shrink: old node 3 and its arcs must be gone.
        g.reset(3);
        assert_eq!(g.num_nodes(), 3);
        g.add_edge(0, 1, 5, 1.0);
        g.add_edge(1, 2, 3, 2.0);
        let r = g.min_cost_max_flow(0, 2, None);
        assert_eq!(r.flow, 3);
        assert!((r.cost - 9.0).abs() < 1e-9);
        // Grow past the original size.
        g.reset(6);
        g.add_edge(0, 5, 2, 1.0);
        let r = g.min_cost_max_flow(0, 5, None);
        assert_eq!(r.flow, 2);
    }

    #[test]
    #[should_panic(expected = "node out of range")]
    fn reset_shrinks_addressable_nodes() {
        let mut g = McmfGraph::new(4);
        g.reset(2);
        g.add_edge(0, 3, 1, 1.0);
    }
}

//! Lazy, reproducible request streams.
//!
//! [`RequestStream`] synthesizes [`SfcRequest`]s one at a time — it never
//! materializes the stream, so 10^6+ request experiments run in O(1) memory
//! on the generator side. Every draw for position `k` comes from its own
//! `(seed, k, salt)`-derived RNG ([`crate::position_rng`]):
//!
//! * **content** (`REQ` salt): chain, expectation and endpoints; endpoints
//!   are re-sampled from the scenario's popularity distribution (per-tier
//!   weights × Zipf skew) instead of uniformly. When the spec carries a
//!   [`crate::spec::ServiceSpec`], the chain itself comes from a bounded,
//!   Zipf-popular catalog of service templates (drawn once per scenario from
//!   the `SVC` salt) instead of an ad-hoc per-request sample — so popular
//!   admission problems genuinely recur across the stream.
//! * **arrival** (`ARR` salt): the exponential gap to the previous arrival,
//!   with the instantaneous rate modulated by a diurnal sinusoid and
//!   per-epoch flash crowds (`FLS` salt decides which epochs flash).
//! * **TTL** (`TTL` salt): exponential or Pareto holding time.
//!
//! Because position `k`'s draws never depend on how much randomness earlier
//! positions consumed, any prefix is byte-identical across re-instantiations
//! and consumption patterns; arrival times are the prefix sums of the
//! per-position gaps and therefore equally reproducible.

use mecnet::graph::NodeId;
use mecnet::request::SfcRequest;
use mecnet::vnf::VnfCatalog;
use rand::Rng;

use mecnet::vnf::VnfTypeId;
use rand::rngs::StdRng;
use rand::SeedableRng;

use crate::spec::{BuiltScenario, StreamSpec, TtlSpec};
use crate::{
    derive_seed, position_rng, unit_hash, ARRIVAL_SALT, FLASH_SALT, REQ_SALT, SERVICE_SALT,
    TTL_SALT,
};

/// A request with its arrival time and holding time (TTL) attached — what a
/// discrete-event simulator consumes.
#[derive(Debug, Clone, PartialEq)]
pub struct TimedRequest {
    pub arrival: f64,
    pub ttl: f64,
    pub request: SfcRequest,
}

/// Lazy `Iterator<Item = SfcRequest>` over a built scenario. Construct with
/// [`RequestStream::new`]; wrap with [`RequestStream::timed`] when arrival
/// times and TTLs matter.
pub struct RequestStream {
    catalog: VnfCatalog,
    num_nodes: usize,
    sfc_len_range: (usize, usize),
    expectation: f64,
    /// Node ids eligible as endpoints (popularity weight > 0), id order.
    endpoints: Vec<usize>,
    /// Cumulative Zipf-skewed weights over `endpoints`.
    cum: Vec<f64>,
    /// Service templates (chains), popularity order: index 0 is the hottest.
    /// Empty when the spec has no [`crate::spec::ServiceSpec`].
    services: Vec<Vec<VnfTypeId>>,
    /// Cumulative Zipf-skewed weights over `services`.
    svc_cum: Vec<f64>,
    spec: StreamSpec,
    seed: u64,
    k: u64,
    limit: u64,
    /// Arrival time of the previously yielded request.
    t: f64,
}

impl RequestStream {
    /// Stream over `built`, yielding at most `limit` requests.
    pub fn new(built: &BuiltScenario, limit: u64) -> RequestStream {
        let endpoints: Vec<usize> =
            (0..built.network.num_nodes()).filter(|&i| built.node_weights[i] > 0.0).collect();
        assert!(!endpoints.is_empty(), "scenario has no endpoint-eligible nodes");
        let skew = built.spec.stream.popularity_skew.max(0.0);
        let mut cum = Vec::with_capacity(endpoints.len());
        let mut total = 0.0;
        for (rank, &i) in endpoints.iter().enumerate() {
            // Zipf skew over the deterministic id-order ranking: rank 0 is
            // the hottest access point.
            total += built.node_weights[i] / ((rank + 1) as f64).powf(skew);
            cum.push(total);
        }
        // Service templates: one salted draw per scenario, so the catalog of
        // popular chains is a pure function of (seed, spec), independent of
        // how many requests any consumer materializes.
        let mut services = Vec::new();
        let mut svc_cum = Vec::new();
        if let Some(svc) = &built.spec.stream.services {
            let mut rng = StdRng::seed_from_u64(derive_seed(built.spec.seed, 0, SERVICE_SALT));
            let (lo, hi) = built.spec.stream.sfc_len_range;
            let mut total = 0.0;
            for rank in 0..svc.count {
                let len = rng.gen_range(lo..=hi.max(lo));
                let chain: Vec<VnfTypeId> = if len <= built.catalog.len() {
                    rand::seq::index::sample(&mut rng, built.catalog.len(), len)
                        .into_iter()
                        .map(VnfTypeId)
                        .collect()
                } else {
                    (0..len).map(|_| VnfTypeId(rng.gen_range(0..built.catalog.len()))).collect()
                };
                services.push(chain);
                total += 1.0 / ((rank + 1) as f64).powf(svc.skew.max(0.0));
                svc_cum.push(total);
            }
        }
        RequestStream {
            catalog: built.catalog.clone(),
            num_nodes: built.network.num_nodes(),
            sfc_len_range: built.spec.stream.sfc_len_range,
            expectation: built.spec.stream.expectation,
            endpoints,
            cum,
            services,
            svc_cum,
            spec: built.spec.stream.clone(),
            seed: built.spec.seed,
            k: 0,
            limit,
            t: 0.0,
        }
    }

    /// The same stream annotated with arrival times and TTLs.
    pub fn timed(self) -> TimedRequestStream {
        TimedRequestStream(self)
    }

    /// Instantaneous arrival rate at time `t`: base rate × diurnal sinusoid
    /// × flash-crowd multiplier for `t`'s epoch.
    pub fn rate_at(&self, t: f64) -> f64 {
        let s = &self.spec;
        let mut rate = s.arrival_rate;
        if s.diurnal_period > 0.0 {
            let amp = s.diurnal_amplitude.clamp(0.0, 0.95);
            rate *= 1.0 + amp * (2.0 * std::f64::consts::PI * t / s.diurnal_period).sin();
        }
        if s.flash_epoch > 0.0 && s.flash_probability > 0.0 {
            let epoch = (t / s.flash_epoch).floor() as u64;
            if unit_hash(self.seed, epoch, FLASH_SALT) < s.flash_probability {
                rate *= s.flash_multiplier.max(1.0);
            }
        }
        rate.max(1e-9)
    }

    /// Weighted endpoint draw: inverse-CDF over the cumulative weights.
    fn sample_endpoint<R: Rng + ?Sized>(&self, rng: &mut R) -> NodeId {
        let total = *self.cum.last().expect("non-empty endpoint set");
        let u = rng.gen::<f64>() * total;
        let idx = self.cum.partition_point(|&c| c <= u).min(self.endpoints.len() - 1);
        NodeId(self.endpoints[idx])
    }

    fn next_timed(&mut self) -> Option<TimedRequest> {
        if self.k >= self.limit {
            return None;
        }
        let k = self.k;
        self.k += 1;
        // Arrival: exponential gap at the rate in force when the previous
        // request arrived (a piecewise-constant thinning approximation that
        // keeps gap `k` a function of (seed, k) alone).
        let u: f64 = position_rng(self.seed, k, ARRIVAL_SALT).gen();
        let gap = -(1.0 - u).ln() / self.rate_at(self.t);
        self.t += gap;
        // Content: draw the chain from the popular-service catalog when the
        // spec has one (inverse-CDF over the Zipf weights), falling back to
        // the ad-hoc catalog sampler; then re-draw the endpoints from the
        // popularity distribution either way.
        let mut rng = position_rng(self.seed, k, REQ_SALT);
        let mut request = if self.services.is_empty() {
            SfcRequest::random(
                k as usize,
                &self.catalog,
                self.sfc_len_range,
                self.expectation,
                self.num_nodes,
                &mut rng,
            )
        } else {
            let total = *self.svc_cum.last().expect("non-empty service catalog");
            let u = rng.gen::<f64>() * total;
            let idx = self.svc_cum.partition_point(|&c| c <= u).min(self.services.len() - 1);
            SfcRequest::new(
                k as usize,
                self.services[idx].clone(),
                self.expectation,
                NodeId(0),
                NodeId(0),
            )
        };
        request.source = self.sample_endpoint(&mut rng);
        request.destination = self.sample_endpoint(&mut rng);
        // TTL from its own stream so swapping distributions never shifts
        // content or arrivals.
        let v: f64 = position_rng(self.seed, k, TTL_SALT).gen();
        let ttl = match self.spec.ttl {
            TtlSpec::Exponential { mean } => -mean.max(1e-9) * (1.0 - v).ln(),
            TtlSpec::Pareto { scale, shape } => {
                scale.max(1e-9) * (1.0 - v).powf(-1.0 / shape.max(1e-3))
            }
        };
        Some(TimedRequest { arrival: self.t, ttl, request })
    }
}

impl Iterator for RequestStream {
    type Item = SfcRequest;

    fn next(&mut self) -> Option<SfcRequest> {
        self.next_timed().map(|t| t.request)
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        let left = (self.limit - self.k) as usize;
        (left, Some(left))
    }
}

/// [`RequestStream`] yielding [`TimedRequest`]s.
pub struct TimedRequestStream(RequestStream);

impl Iterator for TimedRequestStream {
    type Item = TimedRequest;

    fn next(&mut self) -> Option<TimedRequest> {
        self.0.next_timed()
    }

    fn size_hint(&self) -> (usize, Option<usize>) {
        self.0.size_hint()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::spec::ScenarioSpec;

    fn toy() -> BuiltScenario {
        ScenarioSpec::preset("waxman-100").unwrap().build()
    }

    #[test]
    fn prefix_is_reproducible_across_instantiations() {
        let built = toy();
        let a: Vec<TimedRequest> = RequestStream::new(&built, 200).timed().collect();
        let b: Vec<TimedRequest> =
            RequestStream::new(&built, 1_000_000).timed().take(200).collect();
        assert_eq!(a, b, "prefix must not depend on the stream's limit or consumption");
    }

    #[test]
    fn arrivals_are_increasing_and_ttls_positive() {
        let built = toy();
        let mut last = 0.0;
        for tr in RequestStream::new(&built, 500).timed() {
            assert!(tr.arrival > last);
            assert!(tr.ttl > 0.0);
            assert!(!tr.request.is_empty());
            last = tr.arrival;
        }
    }

    #[test]
    fn streamed_requests_carry_valid_interned_chain_signatures() {
        // `next_timed` rewrites only the endpoints after construction, so the
        // chain signature interned by `SfcRequest::random` must stay valid —
        // the plan cache keys on it without rehashing the chain.
        let built = toy();
        for req in RequestStream::new(&built, 500) {
            assert_eq!(
                req.chain_sig,
                mecnet::chain_signature(&req.sfc),
                "request {} carries a stale interned signature",
                req.id
            );
        }
    }

    #[test]
    fn popularity_skew_concentrates_endpoints() {
        let built = toy();
        let mut hits = vec![0usize; built.network.num_nodes()];
        for req in RequestStream::new(&built, 4000) {
            hits[req.source.index()] += 1;
            hits[req.destination.index()] += 1;
        }
        let mut sorted = hits.clone();
        sorted.sort_unstable_by(|a, b| b.cmp(a));
        let top_decile: usize = sorted.iter().take(10).sum();
        let total: usize = sorted.iter().sum();
        assert!(
            top_decile as f64 > 0.3 * total as f64,
            "skew 0.8 should concentrate >30% of endpoints on the top 10 APs ({top_decile}/{total})"
        );
    }

    #[test]
    fn service_catalog_bounds_and_skews_the_chain_population() {
        let built = toy();
        let svc = built.spec.stream.services.clone().expect("presets carry a service catalog");
        let mut seen: std::collections::HashMap<u64, usize> = std::collections::HashMap::new();
        for req in RequestStream::new(&built, 4000) {
            *seen.entry(req.chain_sig).or_insert(0) += 1;
        }
        assert!(
            seen.len() <= svc.count,
            "{} distinct chains exceed the {}-template service catalog",
            seen.len(),
            svc.count
        );
        // Zipf popularity: the hottest template should dominate a uniform
        // share by a wide margin.
        let top = seen.values().copied().max().unwrap();
        assert!(
            top * svc.count > 2 * 4000,
            "top template drew {top}/4000 — no popularity concentration"
        );
        // Disabling the catalog restores ad-hoc chains: far more distinct
        // signatures than any bounded template set.
        let mut adhoc = built.spec.clone();
        adhoc.stream.services = None;
        let adhoc = adhoc.build();
        let distinct: std::collections::HashSet<u64> =
            RequestStream::new(&adhoc, 4000).map(|r| r.chain_sig).collect();
        assert!(distinct.len() > 2 * svc.count, "ad-hoc mode yielded {} chains", distinct.len());
    }

    #[test]
    fn flash_crowds_modulate_the_rate() {
        let built = toy();
        let stream = RequestStream::new(&built, 1);
        // Scan epochs: some must flash, most must not (p = 0.02).
        let flashed = (0..2000)
            .filter(|&e| {
                let t = (e as f64 + 0.5) * built.spec.stream.flash_epoch;
                stream.rate_at(t) > built.spec.stream.arrival_rate * 2.0
            })
            .count();
        assert!(flashed > 0, "no epoch flashed out of 2000");
        assert!(flashed < 400, "flash epochs should be rare, got {flashed}/2000");
    }

    #[test]
    fn ttl_distributions_differ_in_tail() {
        let built = toy();
        let mut pareto_spec = built.spec.clone();
        pareto_spec.stream.ttl = TtlSpec::Pareto { scale: 40.0, shape: 1.5 };
        let pareto = pareto_spec.build();
        let exp_max =
            RequestStream::new(&built, 3000).timed().map(|t| t.ttl).fold(0.0f64, f64::max);
        let par_max =
            RequestStream::new(&pareto, 3000).timed().map(|t| t.ttl).fold(0.0f64, f64::max);
        assert!(par_max > exp_max, "Pareto tail {par_max} should exceed Exp tail {exp_max}");
    }
}

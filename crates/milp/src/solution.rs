//! Solution containers for the LP and MILP solvers.

/// Outcome class of an LP solve.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LpStatus {
    Optimal,
    Infeasible,
    Unbounded,
}

/// Result of solving a (relaxed) linear program.
#[derive(Debug, Clone)]
pub struct LpSolution {
    pub status: LpStatus,
    /// Objective in the *original* sense; meaningful only when `Optimal`.
    pub objective: f64,
    /// Values of the original model variables; empty unless `Optimal`.
    pub x: Vec<f64>,
    /// Simplex iterations spent (both phases).
    pub iterations: usize,
    /// Dual value (shadow price) per model constraint, in the original
    /// sense: the rate of change of the optimal objective per unit increase
    /// of that constraint's rhs. `None` for equality rows (their slack is
    /// fixed at zero, so no sign convention prices them) and whenever the
    /// solve is not optimal.
    pub duals: Vec<Option<f64>>,
}

impl LpSolution {
    pub fn infeasible(iterations: usize) -> Self {
        LpSolution {
            status: LpStatus::Infeasible,
            objective: f64::NAN,
            x: Vec::new(),
            iterations,
            duals: Vec::new(),
        }
    }

    pub fn unbounded(iterations: usize) -> Self {
        LpSolution {
            status: LpStatus::Unbounded,
            objective: f64::NAN,
            x: Vec::new(),
            iterations,
            duals: Vec::new(),
        }
    }

    pub fn is_optimal(&self) -> bool {
        self.status == LpStatus::Optimal
    }
}

/// Result of a branch-and-bound MILP solve.
#[derive(Debug, Clone)]
pub struct MilpSolution {
    pub status: LpStatus,
    /// Objective in the original sense; meaningful only when `Optimal`.
    pub objective: f64,
    /// Values of the original model variables (integral entries snapped).
    pub x: Vec<f64>,
    /// Full search statistics: nodes, LP iterations, incumbent updates and
    /// prune counts by reason.
    pub stats: crate::branch_bound::BnbStats,
    /// `true` when the search closed (the solution is a proven optimum);
    /// `false` when a node or time limit stopped the search and the solution
    /// is the best incumbent found so far.
    pub proven: bool,
}

impl MilpSolution {
    pub fn is_optimal(&self) -> bool {
        self.status == LpStatus::Optimal
    }

    /// Branch-and-bound nodes explored.
    pub fn nodes(&self) -> usize {
        self.stats.nodes
    }

    /// Total simplex iterations across all node LPs.
    pub fn lp_iterations(&self) -> usize {
        self.stats.lp_iterations
    }
}

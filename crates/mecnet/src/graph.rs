//! Undirected graph with the hop-distance queries the paper's locality
//! constraint needs (`N_l(v)`: nodes within `l` hops of `v`).

use std::collections::VecDeque;

/// Index of a node (access point) in a [`Graph`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub usize);

impl NodeId {
    pub fn index(self) -> usize {
        self.0
    }
}

impl std::fmt::Display for NodeId {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "v{}", self.0)
    }
}

/// A simple undirected graph stored as adjacency lists.
///
/// Self-loops and parallel edges are rejected; node ids are dense `0..n`.
#[derive(Debug, Clone, Default)]
pub struct Graph {
    adj: Vec<Vec<usize>>,
    num_edges: usize,
}

impl Graph {
    /// An edgeless graph on `n` nodes.
    pub fn new(n: usize) -> Self {
        Graph { adj: vec![Vec::new(); n], num_edges: 0 }
    }

    pub fn num_nodes(&self) -> usize {
        self.adj.len()
    }

    pub fn num_edges(&self) -> usize {
        self.num_edges
    }

    pub fn nodes(&self) -> impl Iterator<Item = NodeId> + '_ {
        (0..self.adj.len()).map(NodeId)
    }

    /// Add the undirected edge `{u, v}`. Returns `false` (and does nothing)
    /// if the edge already exists or is a self-loop.
    pub fn add_edge(&mut self, u: NodeId, v: NodeId) -> bool {
        assert!(u.0 < self.adj.len() && v.0 < self.adj.len(), "node out of range");
        if u == v || self.adj[u.0].contains(&v.0) {
            return false;
        }
        self.adj[u.0].push(v.0);
        self.adj[v.0].push(u.0);
        self.num_edges += 1;
        true
    }

    pub fn has_edge(&self, u: NodeId, v: NodeId) -> bool {
        self.adj[u.0].contains(&v.0)
    }

    pub fn degree(&self, v: NodeId) -> usize {
        self.adj[v.0].len()
    }

    pub fn neighbors(&self, v: NodeId) -> impl Iterator<Item = NodeId> + '_ {
        self.adj[v.0].iter().map(|&u| NodeId(u))
    }

    /// BFS hop distance from `src` to every node (`u32::MAX` if unreachable).
    pub fn hop_distances(&self, src: NodeId) -> Vec<u32> {
        let mut dist = vec![u32::MAX; self.adj.len()];
        let mut q = VecDeque::new();
        dist[src.0] = 0;
        q.push_back(src.0);
        while let Some(u) = q.pop_front() {
            let du = dist[u];
            for &w in &self.adj[u] {
                if dist[w] == u32::MAX {
                    dist[w] = du + 1;
                    q.push_back(w);
                }
            }
        }
        dist
    }

    /// Hop distance between two nodes (`None` if disconnected).
    pub fn hop_distance(&self, u: NodeId, v: NodeId) -> Option<u32> {
        let d = self.hop_distances(u)[v.0];
        (d != u32::MAX).then_some(d)
    }

    /// The paper's `N_l(v)`: all nodes within `l` hops of `v`, *excluding* `v`
    /// itself.
    pub fn l_neighborhood(&self, v: NodeId, l: u32) -> Vec<NodeId> {
        let dist = self.hop_distances(v);
        (0..self.adj.len()).filter(|&u| u != v.0 && dist[u] <= l).map(NodeId).collect()
    }

    /// The paper's `N_l^+(v) = N_l(v) ∪ {v}`.
    pub fn l_neighborhood_closed(&self, v: NodeId, l: u32) -> Vec<NodeId> {
        let dist = self.hop_distances(v);
        (0..self.adj.len()).filter(|&u| dist[u] <= l).map(NodeId).collect()
    }

    /// Connected components as lists of node ids.
    pub fn connected_components(&self) -> Vec<Vec<NodeId>> {
        let mut seen = vec![false; self.adj.len()];
        let mut comps = Vec::new();
        for s in 0..self.adj.len() {
            if seen[s] {
                continue;
            }
            let mut comp = Vec::new();
            let mut q = VecDeque::from([s]);
            seen[s] = true;
            while let Some(u) = q.pop_front() {
                comp.push(NodeId(u));
                for &w in &self.adj[u] {
                    if !seen[w] {
                        seen[w] = true;
                        q.push_back(w);
                    }
                }
            }
            comps.push(comp);
        }
        comps
    }

    pub fn is_connected(&self) -> bool {
        self.adj.is_empty() || self.connected_components().len() == 1
    }

    /// Graph diameter in hops (`None` for empty or disconnected graphs).
    pub fn diameter(&self) -> Option<u32> {
        if self.adj.is_empty() || !self.is_connected() {
            return None;
        }
        let mut best = 0;
        for s in 0..self.adj.len() {
            let d = self.hop_distances(NodeId(s));
            best = best.max(*d.iter().max().unwrap());
        }
        Some(best)
    }

    /// Mean node degree.
    pub fn average_degree(&self) -> f64 {
        if self.adj.is_empty() {
            return 0.0;
        }
        2.0 * self.num_edges as f64 / self.adj.len() as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn path(n: usize) -> Graph {
        let mut g = Graph::new(n);
        for i in 0..n.saturating_sub(1) {
            g.add_edge(NodeId(i), NodeId(i + 1));
        }
        g
    }

    #[test]
    fn add_edge_rejects_duplicates_and_loops() {
        let mut g = Graph::new(3);
        assert!(g.add_edge(NodeId(0), NodeId(1)));
        assert!(!g.add_edge(NodeId(1), NodeId(0)));
        assert!(!g.add_edge(NodeId(2), NodeId(2)));
        assert_eq!(g.num_edges(), 1);
    }

    #[test]
    fn hop_distances_on_path() {
        let g = path(5);
        let d = g.hop_distances(NodeId(0));
        assert_eq!(d, vec![0, 1, 2, 3, 4]);
        assert_eq!(g.hop_distance(NodeId(1), NodeId(4)), Some(3));
    }

    #[test]
    fn unreachable_distance() {
        let mut g = Graph::new(3);
        g.add_edge(NodeId(0), NodeId(1));
        assert_eq!(g.hop_distance(NodeId(0), NodeId(2)), None);
    }

    #[test]
    fn l_neighborhoods_match_paper_definitions() {
        let g = path(6);
        // N_2(2) on a path: {0, 1, 3, 4}.
        let mut n2 = g.l_neighborhood(NodeId(2), 2);
        n2.sort();
        assert_eq!(n2, vec![NodeId(0), NodeId(1), NodeId(3), NodeId(4)]);
        // N_2^+(2) additionally contains 2 itself.
        let n2p = g.l_neighborhood_closed(NodeId(2), 2);
        assert_eq!(n2p.len(), 5);
        assert!(n2p.contains(&NodeId(2)));
    }

    #[test]
    fn l_zero_closed_neighborhood_is_self() {
        let g = path(4);
        assert_eq!(g.l_neighborhood_closed(NodeId(1), 0), vec![NodeId(1)]);
        assert!(g.l_neighborhood(NodeId(1), 0).is_empty());
    }

    #[test]
    fn components_and_connectivity() {
        let mut g = Graph::new(5);
        g.add_edge(NodeId(0), NodeId(1));
        g.add_edge(NodeId(2), NodeId(3));
        let comps = g.connected_components();
        assert_eq!(comps.len(), 3);
        assert!(!g.is_connected());
        g.add_edge(NodeId(1), NodeId(2));
        g.add_edge(NodeId(3), NodeId(4));
        assert!(g.is_connected());
    }

    #[test]
    fn diameter_of_path() {
        assert_eq!(path(5).diameter(), Some(4));
        let mut g = Graph::new(2);
        assert_eq!(g.diameter(), None); // disconnected
        g.add_edge(NodeId(0), NodeId(1));
        assert_eq!(g.diameter(), Some(1));
    }

    #[test]
    fn average_degree() {
        let g = path(4); // 3 edges, 4 nodes -> 1.5
        assert!((g.average_degree() - 1.5).abs() < 1e-12);
    }
}

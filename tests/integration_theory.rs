//! Empirical checks of the paper's analytical results (Section 5): the
//! randomized algorithm's expected objective matches the LP optimum, and
//! realized capacity violations stay within the 2x band of Theorem 5.2 on
//! essentially all trials.

use mec_sfc_reliability::mecnet::workload::{generate_scenario, WorkloadConfig};
use mec_sfc_reliability::relaug::instance::AugmentationInstance;
use mec_sfc_reliability::relaug::randomized::RandomizedConfig;
use mec_sfc_reliability::relaug::{ilp, randomized, theory};
use rand::rngs::StdRng;
use rand::SeedableRng;

/// The rounded solution's expected gain equals the LP's; empirically the
/// mean randomized reliability over many draws must come close to the LP
/// optimum (here we compare against the ILP, a lower bound on the LP).
#[test]
fn randomized_mean_tracks_lp_optimum() {
    let cfg = WorkloadConfig { sfc_len_range: (6, 6), nodes: 50, ..Default::default() };
    let mut rng = StdRng::seed_from_u64(42);
    let s = generate_scenario(&cfg, &mut rng);
    let inst = AugmentationInstance::from_scenario(&s, 1);
    // Compare in uncapped mode so no trimming noise enters.
    let exact =
        ilp::solve(&inst, &ilp::IlpConfig { stop_at_expectation: false, ..Default::default() })
            .unwrap();
    let rcfg = RandomizedConfig { stop_at_expectation: false, ..Default::default() };
    let n = 60;
    let mean: f64 = (0..n)
        .map(|i| {
            let mut r = StdRng::seed_from_u64(1_000 + i);
            randomized::solve(&inst, &rcfg, &mut r).unwrap().metrics.reliability
        })
        .sum::<f64>()
        / n as f64;
    // Within a few percent of the exact optimum (the paper observes >= 97.8%).
    assert!(
        mean >= 0.92 * exact.metrics.reliability,
        "mean randomized {} too far below exact {}",
        mean,
        exact.metrics.reliability
    );
}

/// Theorem 5.2's violation band: the randomized algorithm should essentially
/// never place more than 2x a cloudlet's residual capacity.
#[test]
fn violations_stay_within_twice_capacity() {
    let cfg =
        WorkloadConfig { residual_fraction: 0.25, sfc_len_range: (6, 10), ..Default::default() };
    let rcfg = RandomizedConfig { stop_at_expectation: false, ..Default::default() };
    let mut worst: f64 = 0.0;
    let mut over_2x = 0usize;
    let trials = 60;
    for seed in 0..trials {
        let mut rng = StdRng::seed_from_u64(seed);
        let s = generate_scenario(&cfg, &mut rng);
        let inst = AugmentationInstance::from_scenario(&s, 1);
        let out = randomized::solve(&inst, &rcfg, &mut rng).unwrap();
        worst = worst.max(out.metrics.max_violation_ratio);
        if out.metrics.max_violation_ratio > 2.0 {
            over_2x += 1;
        }
    }
    // "With high probability": allow a stray tail event but not a pattern.
    assert!(
        over_2x <= trials as usize / 20,
        "violations above 2x in {over_2x}/{trials} trials (worst {worst:.2})"
    );
}

/// The analytical quantities are computable and consistent on generated
/// instances.
#[test]
fn theorem_quantities_are_consistent() {
    let cfg = WorkloadConfig::default();
    let mut rng = StdRng::seed_from_u64(5);
    let s = generate_scenario(&cfg, &mut rng);
    let inst = AugmentationInstance::from_scenario(&s, 1);

    let lambda = theory::lambda(&inst);
    assert!(lambda > 2.0, "paper premise Λ > 2 holds on realistic instances");
    // N and its Theorem 6.2 bound.
    let n = inst.total_items();
    assert!(n <= inst.item_count_bound().max(1));
    if n > 0 {
        let p = theory::success_probability(n, s.network.num_nodes());
        assert!(p > 0.0 && p < 1.0);
        // The approximation ratio is >= 1 and finite.
        let p_star = theory::unconstrained_optimum(&inst).max(1e-9);
        let ratio = theory::approximation_ratio(p_star, lambda);
        assert!(ratio >= 1.0 - 1e-12 && ratio.is_finite());
    }
    // Chernoff bounds are proper probabilities and decay.
    assert!(theory::chernoff_upper_tail(10.0, 0.5) < 1.0);
    assert!(theory::chernoff_upper_tail(10.0, 1.0) < theory::chernoff_upper_tail(10.0, 0.2));
}

/// The empirical result the paper highlights: measured behaviour beats the
/// analytical counterpart — the realized approximation gap is far smaller
/// than `(1/P*)^{1-2/Λ}`.
#[test]
fn empirical_beats_analytical_ratio() {
    let cfg = WorkloadConfig { sfc_len_range: (5, 8), nodes: 60, ..Default::default() };
    for seed in 0..5 {
        let mut rng = StdRng::seed_from_u64(300 + seed);
        let s = generate_scenario(&cfg, &mut rng);
        let inst = AugmentationInstance::from_scenario(&s, 1);
        if inst.total_items() == 0 {
            continue;
        }
        let exact =
            ilp::solve(&inst, &ilp::IlpConfig { stop_at_expectation: false, ..Default::default() })
                .unwrap();
        let rcfg = RandomizedConfig { stop_at_expectation: false, ..Default::default() };
        let rand_out = randomized::solve(&inst, &rcfg, &mut rng).unwrap();
        let p_star = exact.metrics.reliability.max(1e-9);
        let lambda = theory::lambda(&inst);
        let analytical = theory::approximation_ratio(p_star, lambda);
        // Empirical multiplicative gap in reliability.
        let empirical = p_star / rand_out.metrics.reliability.max(1e-12);
        assert!(
            empirical <= analytical + 1e-9,
            "seed {seed}: empirical gap {empirical:.4} exceeds analytical {analytical:.4}"
        );
    }
}

//! Admission plan cache: memoized augmentation plans with residual-epoch
//! invalidation.
//!
//! The scenario streams are popularity-skewed (Zipf endpoints, a small VNF
//! catalog, a handful of reliability thresholds), so a million-request run
//! resolves the *same* admission problem — same source, same chain, same
//! threshold, same radius — thousands of times. This module caches the solved
//! plan (primary placement, per-function secondary counts, and the merged
//! per-node capacity debits the plan implies) keyed by the canonical request
//! signature `(source, chain-signature hash, threshold bucket, l)`.
//!
//! ## Hits are re-validated, never trusted
//!
//! Residual state moves between occurrences, so a cache hit replays the
//! plan's capacity footprint through the same two-phase feasibility discipline
//! a fresh solve would use, and re-checks the achieved reliability against the
//! catalog. A validation failure removes the entry and falls through to a
//! fresh solve whose result repopulates it. The cache therefore never changes
//! *what* is admitted being feasible — only how much work admission costs.
//!
//! ## Epoch fast path
//!
//! Every permanent residual decrease bumps a per-node epoch counter
//! ([`mecnet::network::NodeEpochs`]). An entry is stamped with the epochs of
//! the nodes its debits touch, together with the residual each node held
//! immediately *after* the entry's own commit, plus a precomputed `refit`
//! flag: "would the plan fit again on top of its own footprint". A later hit
//! whose stamps are all unchanged knows those residuals are bit-identical to
//! the recorded ones, so when `refit` is set it applies the debits with no
//! feasibility walk at all. Engines that cannot maintain single-writer epochs
//! (the relaxed pool) leave stamps empty and always take the full
//! `try_reserve` revalidation path.
//!
//! ## Reject gate
//!
//! On saturated streams most requests are *rejected*, and each rejection pays
//! a full candidate scan per chain position. Stream residuals never increase,
//! so the cache also maintains a monotone watermark: the maximum cloudlet
//! residual observed at the most recent full-scan rejection. Once a chain's
//! largest per-function demand exceeds the watermark, no cloudlet anywhere
//! can host that function and admission must fail — the gate short-circuits
//! the scan with a sound, permanently-valid rejection.
//!
//! The cache is bounded and sharded: a direct-mapped slot array per shard,
//! `O(capacity)` memory, eviction by slot replacement.

use mecnet::graph::NodeId;
use mecnet::network::NodeEpochs;
use mecnet::vnf::{VnfCatalog, VnfTypeId};
use mecnet::SfcRequest;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Mutex;

use crate::reliability::function_reliability;

/// splitmix64 finalizer (same mixer as the stream engines' seed derivation).
fn splitmix64(mut z: u64) -> u64 {
    z = z.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Canonical request signature: two requests with equal keys pose the same
/// admission problem up to capacity state (and sub-micro differences in
/// threshold, which validation re-checks against the live expectation).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PlanKey {
    /// Ingress access point of the request.
    pub source: NodeId,
    /// Interned [`mecnet::chain_signature`] of the VNF chain.
    pub chain_sig: u64,
    /// Reliability expectation quantized to 1e-6 — requests in the same
    /// bucket differ by less than one part per million, and validation uses
    /// the incoming request's *exact* expectation, so bucketing is safe.
    pub threshold_bucket: u64,
    /// Neighborhood radius the plan was solved under.
    pub l: u32,
}

impl PlanKey {
    pub fn for_request(req: &SfcRequest, l: u32) -> PlanKey {
        PlanKey {
            source: req.source,
            chain_sig: req.chain_sig,
            threshold_bucket: (req.expectation * 1e6).round() as u64,
            l,
        }
    }

    fn hash(&self) -> u64 {
        let mut h = splitmix64(self.chain_sig ^ (self.source.index() as u64));
        h = splitmix64(h ^ self.threshold_bucket);
        splitmix64(h ^ (self.l as u64))
    }
}

/// A cached, previously-committed admission plan: where the primaries went,
/// how many secondaries each function received, and the merged per-node
/// capacity debits the whole plan (primaries + secondaries) implies.
#[derive(Debug, Clone)]
pub struct PlanEntry {
    pub key: PlanKey,
    /// Full chain — collision guard; a candidate only validates if the
    /// incoming chain is equal element-for-element.
    pub chain: Vec<VnfTypeId>,
    /// Primary cloudlet per chain position.
    pub primaries: Vec<NodeId>,
    /// Secondary count per chain position.
    pub counts: Vec<usize>,
    /// Merged `(node, amount)` debits, sorted ascending by node — the shape
    /// `MecNetwork::try_reserve`/`ShardedCapacity::try_reserve` take, so a
    /// hit revalidates without converting.
    pub debits: Vec<(NodeId, f64)>,
    pub base_reliability: f64,
    pub achieved_reliability: f64,
    pub secondaries: usize,
    /// Paper cost of the secondaries — a function of `counts` only, so it
    /// transfers between occurrences unchanged.
    pub cost: f64,
    /// Epoch stamps aligned with `debits` (empty ⇒ no fast path; always
    /// revalidate through `try_reserve`).
    pub stamps: Vec<u64>,
    /// Residual at each touched node immediately after the last validated
    /// apply, aligned with `debits`.
    pub post_residual: Vec<f64>,
    /// Precomputed at stamping: `post_residual[i] >= debits[i].1` for all i —
    /// the plan fits again on top of its own footprint.
    pub refit: bool,
}

impl PlanEntry {
    /// Build an entry from a freshly committed plan. `raw_debits` may repeat
    /// nodes (primaries and secondaries on the same cloudlet); they are
    /// merged and sorted here.
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        key: PlanKey,
        chain: Vec<VnfTypeId>,
        primaries: Vec<NodeId>,
        counts: Vec<usize>,
        raw_debits: &[(NodeId, f64)],
        base_reliability: f64,
        achieved_reliability: f64,
        cost: f64,
    ) -> Self {
        let mut debits: Vec<(NodeId, f64)> = Vec::with_capacity(raw_debits.len());
        for &(node, amount) in raw_debits {
            if amount == 0.0 {
                continue;
            }
            match debits.iter_mut().find(|(n, _)| *n == node) {
                Some((_, a)) => *a += amount,
                None => debits.push((node, amount)),
            }
        }
        debits.sort_unstable_by_key(|&(node, _)| node.index());
        let secondaries = counts.iter().sum();
        PlanEntry {
            key,
            chain,
            primaries,
            counts,
            debits,
            base_reliability,
            achieved_reliability,
            secondaries,
            cost,
            stamps: Vec::new(),
            post_residual: Vec::new(),
            refit: false,
        }
    }

    /// Recompute the plan's achieved reliability from the catalog — the live
    /// recheck a hit performs instead of trusting the stored value. Plans are
    /// only cached from streams where backups are unshared, so no
    /// `existing_backups` term appears.
    pub fn recomputed_reliability(&self, catalog: &VnfCatalog) -> f64 {
        self.chain
            .iter()
            .zip(&self.counts)
            .map(|(&f, &m)| function_reliability(catalog.reliability(f), m))
            .product()
    }

    /// Recomputed reliability against the *incoming* request's expectation.
    pub fn meets_expectation(&self, catalog: &VnfCatalog, expectation: f64) -> bool {
        self.recomputed_reliability(catalog) >= expectation
    }

    /// True when every stamped epoch is unchanged — the touched residuals are
    /// bit-identical to `post_residual`.
    pub fn epochs_unchanged(&self, epochs: &NodeEpochs) -> bool {
        !self.stamps.is_empty()
            && self
                .debits
                .iter()
                .zip(&self.stamps)
                .all(|(&(node, _), &stamp)| epochs.get(node.index()) == stamp)
    }

    /// Re-stamp after a validated apply: record the epochs and post-apply
    /// residuals of every touched node and precompute the refit flag.
    pub fn stamp(&mut self, epochs: &NodeEpochs, residual_of: impl Fn(usize) -> f64) {
        self.stamps.clear();
        self.post_residual.clear();
        let mut refit = true;
        for &(node, amount) in &self.debits {
            self.stamps.push(epochs.get(node.index()));
            let r = residual_of(node.index());
            self.post_residual.push(r);
            refit &= r >= amount;
        }
        self.refit = refit;
    }
}

/// Result of a cache probe.
#[derive(Debug, PartialEq)]
pub enum Probe<R> {
    /// No entry under this key (or a hash-collided entry with a different
    /// chain, which is left in place).
    Miss,
    /// A candidate validated and applied; carries the validator's result.
    Hit(R),
    /// A candidate was found but failed validation; it has been removed and
    /// the caller should fall through to a fresh solve.
    Stale,
}

/// Bounded, sharded, direct-mapped plan cache plus the monotone reject-gate
/// watermark. Memory is `O(capacity)`: one optional slot per cache line, no
/// chaining, eviction by replacement.
#[derive(Debug)]
pub struct PlanCache {
    shards: Vec<Mutex<Vec<Option<PlanEntry>>>>,
    slots_per_shard: usize,
    capacity: usize,
    /// f64 bit pattern of the monotone max-residual upper bound (starts at
    /// +∞ — nothing can be gate-rejected until a real rejection calibrates
    /// it).
    watermark_bits: AtomicU64,
}

impl PlanCache {
    pub fn new(capacity: usize) -> Self {
        assert!(capacity > 0, "plan cache capacity must be >= 1");
        let shards = capacity.min(8);
        let slots_per_shard = capacity.div_ceil(shards);
        PlanCache {
            shards: (0..shards).map(|_| Mutex::new(vec![None; slots_per_shard])).collect(),
            slots_per_shard,
            capacity,
            watermark_bits: AtomicU64::new(f64::INFINITY.to_bits()),
        }
    }

    /// Configured bound (the number of slots; live entries never exceed it).
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Live entry count (test/diagnostic; locks every shard).
    pub fn len(&self) -> usize {
        self.shards
            .iter()
            .map(|s| s.lock().expect("plan cache poisoned").iter().flatten().count())
            .sum()
    }

    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    fn slot_for(&self, key: &PlanKey) -> (usize, usize) {
        let h = key.hash();
        let shard = ((h >> 32) as usize) % self.shards.len();
        let slot = (h as usize) % self.slots_per_shard;
        (shard, slot)
    }

    /// Probe for a plan under `key` whose chain equals `chain`, and let
    /// `validate` re-check it against live state under the shard lock. The
    /// validator returns `Some(r)` to accept (it has applied the plan;
    /// it may mutate the entry to re-stamp it) or `None` to reject, which
    /// removes the entry.
    pub fn probe<R>(
        &self,
        key: &PlanKey,
        chain: &[VnfTypeId],
        validate: impl FnOnce(&mut PlanEntry) -> Option<R>,
    ) -> Probe<R> {
        let (shard, slot) = self.slot_for(key);
        let mut slots = self.shards[shard].lock().expect("plan cache poisoned");
        match &mut slots[slot] {
            Some(entry) if entry.key == *key && entry.chain == chain => match validate(entry) {
                Some(r) => Probe::Hit(r),
                None => {
                    slots[slot] = None;
                    Probe::Stale
                }
            },
            _ => Probe::Miss,
        }
    }

    /// Insert (or repopulate) an entry. Returns `true` when a live entry with
    /// a *different* key was displaced — an eviction, as opposed to a refresh.
    pub fn insert(&self, entry: PlanEntry) -> bool {
        let (shard, slot) = self.slot_for(&entry.key);
        let mut slots = self.shards[shard].lock().expect("plan cache poisoned");
        let evicted = matches!(&slots[slot], Some(prev) if prev.key != entry.key);
        slots[slot] = Some(entry);
        evicted
    }

    /// Current upper bound on the maximum cloudlet residual ( +∞ until the
    /// first full-scan rejection calibrates it).
    pub fn max_residual_watermark(&self) -> f64 {
        f64::from_bits(self.watermark_bits.load(Ordering::Acquire))
    }

    /// A request whose largest per-function demand exceeds the watermark
    /// cannot place that function on any cloudlet; admission must fail.
    pub fn gate_rejects(&self, max_demand: f64) -> bool {
        max_demand > self.max_residual_watermark()
    }

    /// Tighten the watermark after a full-scan rejection measured the current
    /// maximum cloudlet residual. Monotone: only ever lowers the bound, which
    /// is what keeps gate rejections permanently sound on streams whose
    /// residuals never increase.
    pub fn observe_max_residual(&self, max_residual: f64) {
        let mut cur = self.watermark_bits.load(Ordering::Acquire);
        loop {
            if f64::from_bits(cur) <= max_residual {
                return;
            }
            match self.watermark_bits.compare_exchange_weak(
                cur,
                max_residual.to_bits(),
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return,
                Err(seen) => cur = seen,
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use mecnet::vnf::VnfType;

    fn key(src: usize, sig: u64) -> PlanKey {
        PlanKey { source: NodeId(src), chain_sig: sig, threshold_bucket: 990_000, l: 2 }
    }

    fn entry(k: PlanKey, chain: Vec<VnfTypeId>) -> PlanEntry {
        PlanEntry::new(
            k,
            chain,
            vec![NodeId(1)],
            vec![2],
            &[(NodeId(1), 300.0), (NodeId(1), 200.0), (NodeId(3), 100.0)],
            0.9,
            0.999,
            1.25,
        )
    }

    #[test]
    fn entry_merges_and_sorts_debits() {
        let e = entry(key(0, 7), vec![VnfTypeId(0)]);
        assert_eq!(e.debits, vec![(NodeId(1), 500.0), (NodeId(3), 100.0)]);
        assert_eq!(e.secondaries, 2);
    }

    #[test]
    fn probe_roundtrip_hit_miss_and_stale() {
        let cache = PlanCache::new(16);
        let k = key(0, 7);
        let chain = vec![VnfTypeId(0)];
        assert_eq!(cache.probe(&k, &chain, |_| Some(1u32)), Probe::<u32>::Miss);
        assert!(!cache.insert(entry(k, chain.clone())));
        assert_eq!(cache.len(), 1);
        // Validator accepts: hit.
        assert_eq!(cache.probe(&k, &chain, |e| Some(e.secondaries)), Probe::Hit(2));
        // A different chain under the same key (signature collision) is a miss
        // and leaves the entry alone.
        assert_eq!(cache.probe(&k, &[VnfTypeId(5)], |_| Some(0usize)), Probe::Miss);
        assert_eq!(cache.len(), 1);
        // Validator rejects: entry removed.
        assert_eq!(cache.probe(&k, &chain, |_| Option::<u32>::None), Probe::Stale);
        assert_eq!(cache.len(), 0);
        assert_eq!(cache.probe(&k, &chain, |_| Some(1u32)), Probe::Miss);
    }

    #[test]
    fn cache_is_bounded_and_evicts_by_replacement() {
        let cache = PlanCache::new(4);
        let mut evictions = 0;
        for sig in 0..256u64 {
            if cache.insert(entry(key(0, sig), vec![VnfTypeId(0)])) {
                evictions += 1;
            }
        }
        assert!(cache.len() <= 4, "live entries exceed capacity");
        assert!(evictions >= 252 - 4, "most inserts must displace a live entry");
        // Refreshing an existing key is not an eviction.
        let cache = PlanCache::new(4);
        assert!(!cache.insert(entry(key(0, 1), vec![VnfTypeId(0)])));
        assert!(!cache.insert(entry(key(0, 1), vec![VnfTypeId(0)])));
    }

    #[test]
    fn epoch_stamps_detect_concurrent_commits() {
        let epochs = NodeEpochs::new(8);
        let mut e = entry(key(0, 7), vec![VnfTypeId(0)]);
        assert!(!e.epochs_unchanged(&epochs), "unstamped entries never take the fast path");
        e.stamp(&epochs, |idx| if idx == 1 { 600.0 } else { 100.0 });
        assert!(e.epochs_unchanged(&epochs));
        assert!(e.refit, "600 >= 500 and 100 >= 100");
        // A concurrent commit on a touched node invalidates the fast path.
        epochs.bump(1);
        assert!(!e.epochs_unchanged(&epochs));
        // Re-stamping with less headroom clears refit.
        e.stamp(&epochs, |idx| if idx == 1 { 499.0 } else { 100.0 });
        assert!(e.epochs_unchanged(&epochs));
        assert!(!e.refit, "499 < 500 must force the feasibility walk next time");
    }

    #[test]
    fn reliability_recheck_uses_live_expectation() {
        let mut cat = VnfCatalog::new();
        cat.add(VnfType { name: "a".into(), demand_mhz: 100.0, reliability: 0.9 });
        let e = entry(key(0, 7), vec![VnfTypeId(0)]);
        // counts = [2] => 1 - 0.1^3 = 0.999.
        assert!(e.meets_expectation(&cat, 0.999));
        assert!(!e.meets_expectation(&cat, 0.9995));
    }

    #[test]
    fn watermark_is_monotone_and_gates_rejections() {
        let cache = PlanCache::new(1);
        assert!(!cache.gate_rejects(1e12), "uncalibrated watermark rejects nothing");
        cache.observe_max_residual(700.0);
        cache.observe_max_residual(900.0); // stale higher observation: ignored
        assert_eq!(cache.max_residual_watermark(), 700.0);
        assert!(cache.gate_rejects(700.1));
        assert!(!cache.gate_rejects(700.0), "equal demand might still fit");
        cache.observe_max_residual(200.0);
        assert!(cache.gate_rejects(250.0));
    }

    #[test]
    fn key_is_derived_from_request_fields() {
        let mut cat = VnfCatalog::new();
        cat.add(VnfType { name: "a".into(), demand_mhz: 100.0, reliability: 0.9 });
        cat.add(VnfType { name: "b".into(), demand_mhz: 100.0, reliability: 0.9 });
        let req = SfcRequest::new(3, vec![VnfTypeId(0), VnfTypeId(1)], 0.99, NodeId(4), NodeId(5));
        let k = PlanKey::for_request(&req, 2);
        assert_eq!(k.source, NodeId(4));
        assert_eq!(k.chain_sig, req.chain_sig);
        assert_eq!(k.threshold_bucket, 990_000);
        let k2 = PlanKey::for_request(&req, 3);
        assert_ne!(k.hash(), k2.hash(), "radius is part of the signature");
    }
}

//! Atomic counters/gauges for concurrent call sites (the bench harness fans
//! trials across threads) and an expkit-backed histogram for distributions.

use std::sync::atomic::{AtomicU64, Ordering};

/// Monotonic atomic counter, shareable across threads.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Counter {
        Counter(AtomicU64::new(0))
    }

    #[inline]
    pub fn add(&self, delta: u64) {
        self.0.fetch_add(delta, Ordering::Relaxed);
    }

    #[inline]
    pub fn incr(&self) {
        self.add(1);
    }

    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }
}

/// Last-write-wins f64 gauge (stored as bits so it stays lock-free).
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub fn new() -> Gauge {
        Gauge(AtomicU64::new(0.0f64.to_bits()))
    }

    #[inline]
    pub fn set(&self, value: f64) {
        self.0.store(value.to_bits(), Ordering::Relaxed);
    }

    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

/// Distribution metric over a fixed range, backed by `expkit::Histogram`,
/// with a streaming summary alongside so mean/min/max survive binning.
#[derive(Debug, Clone)]
pub struct Distribution {
    hist: expkit::Histogram,
    acc: expkit::Accumulator,
}

impl Distribution {
    pub fn new(lo: f64, hi: f64, bins: usize) -> Distribution {
        Distribution { hist: expkit::Histogram::new(lo, hi, bins), acc: expkit::Accumulator::new() }
    }

    pub fn push(&mut self, x: f64) {
        self.hist.push(x);
        self.acc.push(x);
    }

    pub fn count(&self) -> u64 {
        self.hist.count()
    }

    pub fn histogram(&self) -> &expkit::Histogram {
        &self.hist
    }

    pub fn summary(&self) -> Option<expkit::Summary> {
        if self.acc.is_empty() {
            None
        } else {
            Some(self.acc.summary())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_accumulates_across_threads() {
        let c = Counter::new();
        std::thread::scope(|scope| {
            for _ in 0..4 {
                scope.spawn(|| {
                    for _ in 0..1000 {
                        c.incr();
                    }
                });
            }
        });
        assert_eq!(c.get(), 4000);
    }

    #[test]
    fn gauge_stores_floats() {
        let g = Gauge::new();
        assert_eq!(g.get(), 0.0);
        g.set(-2.5);
        assert_eq!(g.get(), -2.5);
    }

    #[test]
    fn distribution_tracks_summary_and_bins() {
        let mut d = Distribution::new(0.0, 10.0, 5);
        for x in [1.0, 3.0, 9.0] {
            d.push(x);
        }
        assert_eq!(d.count(), 3);
        let s = d.summary().unwrap();
        assert_eq!(s.n, 3);
        assert!((s.mean - 13.0 / 3.0).abs() < 1e-12);
        assert_eq!(d.histogram().bin_counts().iter().sum::<u64>(), 3);
    }
}

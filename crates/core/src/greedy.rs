//! Greedy baseline for ablations.
//!
//! The paper compares its three algorithms against each other only; this
//! module adds the natural straw-man — repeatedly commit the single best next
//! placement — to quantify what the matching structure of Algorithm 2 buys
//! (see the `ablation_matching` bench).

use std::time::Instant;

use obs::Recorder;

use crate::instance::AugmentationInstance;
use crate::reliability;
use crate::scratch::SolveScratch;
use crate::solution::{Metrics, Outcome, SolverInfo};

/// How the next placement is scored.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum GreedyRule {
    /// Largest marginal log-gain per MHz consumed — resource-aware.
    #[default]
    GainPerResource,
    /// Largest marginal log-gain outright.
    GainOnly,
}

/// Configuration of the greedy baseline.
#[derive(Debug, Clone, Default)]
pub struct GreedyConfig {
    pub rule: GreedyRule,
}

/// Run the greedy baseline: in each step, across all functions with a bin
/// that still fits one instance, commit the placement maximizing the rule's
/// score; stop when the expectation is met or nothing fits.
pub fn solve(inst: &AugmentationInstance, cfg: &GreedyConfig) -> Outcome {
    solve_traced(inst, cfg, &mut Recorder::noop())
}

/// [`solve`] with telemetry: emits one `greedy.step` event per committed
/// placement (function, bin, score under the configured rule).
pub fn solve_traced(
    inst: &AugmentationInstance,
    cfg: &GreedyConfig,
    rec: &mut Recorder,
) -> Outcome {
    solve_scratch(inst, cfg, rec, &mut SolveScratch::new())
}

/// [`solve_traced`] on caller-owned scratch buffers; allocation-free with a
/// warm scratch, except for the returned [`Outcome`].
pub fn solve_scratch(
    inst: &AugmentationInstance,
    cfg: &GreedyConfig,
    rec: &mut Recorder,
    scratch: &mut SolveScratch,
) -> Outcome {
    let started = Instant::now();
    let steps = solve_in(inst, cfg, rec, scratch);
    let aug = scratch.sol.materialize();
    debug_assert!(aug.is_capacity_feasible(inst));
    debug_assert!(aug.respects_locality(inst));
    let metrics = Metrics::compute(&aug, inst);
    Outcome {
        augmentation: aug,
        metrics,
        runtime: started.elapsed(),
        solver: SolverInfo::Greedy { steps },
        telemetry: rec.summary(),
    }
}

/// Allocation-free core of the greedy baseline: builds the solution in
/// `scratch.sol` and returns the number of committed steps. Bit-identical to
/// the historical allocating implementation for any prior scratch state.
pub fn solve_in(
    inst: &AugmentationInstance,
    cfg: &GreedyConfig,
    rec: &mut Recorder,
    scratch: &mut SolveScratch,
) -> usize {
    let SolveScratch { sol, heur, .. } = scratch;
    sol.begin(inst.chain_len());
    let mut steps = 0usize;
    if !inst.expectation_met_by_primaries() {
        let residual = &mut heur.residual;
        residual.clear();
        residual.extend(inst.bins.iter().map(|b| b.residual));
        loop {
            if sol.reliability(inst) >= inst.expectation {
                break;
            }
            let counts = sol.counts();
            let mut best: Option<(f64, usize, usize)> = None; // (score, func, bin)
            for (i, f) in inst.functions.iter().enumerate() {
                if counts[i] >= f.max_secondaries {
                    continue;
                }
                let gain = reliability::log_gain(f.reliability, f.existing_backups + counts[i] + 1);
                let score = match cfg.rule {
                    GreedyRule::GainPerResource => gain / f.demand,
                    GreedyRule::GainOnly => gain,
                };
                // Cheapest eligible bin that fits; all bins cost the same for
                // a given function, so pick the one with most residual to
                // leave flexibility elsewhere.
                let bin = f
                    .eligible_bins
                    .iter()
                    .copied()
                    .filter(|&b| residual[b] >= f.demand)
                    .max_by(|&a, &b| residual[a].total_cmp(&residual[b]));
                if let Some(b) = bin {
                    if best.is_none_or(|(s, _, _)| score > s) {
                        best = Some((score, i, b));
                    }
                }
            }
            let Some((score, i, b)) = best else { break };
            residual[b] -= inst.functions[i].demand;
            sol.add(i, b);
            steps += 1;
            rec.count("greedy.steps", 1);
            rec.emit_with(|| {
                obs::Event::new("greedy.step")
                    .with("step", steps)
                    .with("function", i)
                    .with("bin", b)
                    .with("score", score)
            });
        }
    }
    steps
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::instance::{Bin, FunctionSlot};
    use mecnet::graph::NodeId;
    use mecnet::vnf::VnfTypeId;

    fn slot(demand: f64, r: f64, eligible: Vec<usize>, max: usize) -> FunctionSlot {
        FunctionSlot {
            vnf: VnfTypeId(0),
            demand,
            reliability: r,
            primary: NodeId(0),
            eligible_bins: eligible,
            max_secondaries: max,
            existing_backups: 0,
        }
    }

    #[test]
    fn stops_at_expectation() {
        let inst = AugmentationInstance {
            functions: vec![slot(100.0, 0.8, vec![0], 5)],
            bins: vec![Bin { node: NodeId(0), residual: 600.0 }],
            l: 1,
            expectation: 0.95,
        };
        let out = solve(&inst, &GreedyConfig::default());
        assert_eq!(out.augmentation.counts(), vec![1]);
        assert!(out.metrics.met_expectation);
        assert_eq!(out.solver, SolverInfo::Greedy { steps: 1 });
    }

    #[test]
    fn prefers_weak_functions_first() {
        let inst = AugmentationInstance {
            functions: vec![slot(200.0, 0.9, vec![0], 1), slot(200.0, 0.6, vec![0], 1)],
            bins: vec![Bin { node: NodeId(0), residual: 200.0 }],
            l: 1,
            expectation: 0.99999,
        };
        let out = solve(&inst, &GreedyConfig::default());
        assert_eq!(out.augmentation.counts(), vec![0, 1]);
    }

    #[test]
    fn gain_per_resource_accounts_for_demand() {
        // f0: small gain, tiny demand; f1: bigger gain, huge demand. With one
        // 400-MHz bin, gain-per-resource picks four f0 instances (4 × 0.0953
        // = 0.38 > 0.336), gain-only picks one f1 instance first.
        let inst = AugmentationInstance {
            functions: vec![slot(100.0, 0.9, vec![0], 10), slot(400.0, 0.6, vec![0], 1)],
            bins: vec![Bin { node: NodeId(0), residual: 400.0 }],
            l: 1,
            expectation: 0.9999999999,
        };
        let per_res = solve(&inst, &GreedyConfig { rule: GreedyRule::GainPerResource });
        assert_eq!(per_res.augmentation.counts(), vec![4, 0]);
        let gain_only = solve(&inst, &GreedyConfig { rule: GreedyRule::GainOnly });
        assert_eq!(gain_only.augmentation.counts(), vec![0, 1]);
    }

    #[test]
    fn feasible_under_scarcity() {
        let inst = AugmentationInstance {
            functions: vec![slot(300.0, 0.7, vec![0, 1], 4)],
            bins: vec![
                Bin { node: NodeId(0), residual: 350.0 },
                Bin { node: NodeId(1), residual: 650.0 },
            ],
            l: 1,
            expectation: 0.999999999,
        };
        let out = solve(&inst, &GreedyConfig::default());
        assert!(out.augmentation.is_capacity_feasible(&inst));
        // 350 fits 1, 650 fits 2 -> 3 total.
        assert_eq!(out.augmentation.counts(), vec![3]);
    }
}

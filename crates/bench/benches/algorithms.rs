//! Criterion microbenchmarks of the three algorithms on the paper's default
//! workload — the per-request running-time panels (Fig. 1(c)/2(c)/3(c)) in
//! benchmark form.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use mecnet::workload::{generate_scenario, WorkloadConfig};
use rand::rngs::StdRng;
use rand::SeedableRng;
use relaug::instance::AugmentationInstance;
use relaug::{heuristic, ilp, randomized};

fn instances(len: usize, n: usize) -> Vec<AugmentationInstance> {
    let cfg = WorkloadConfig { sfc_len_range: (len, len), ..Default::default() };
    (0..n)
        .map(|seed| {
            let mut rng = StdRng::seed_from_u64(seed as u64);
            let s = generate_scenario(&cfg, &mut rng);
            AugmentationInstance::from_scenario(&s, 1)
        })
        .collect()
}

fn bench_algorithms(c: &mut Criterion) {
    let mut group = c.benchmark_group("per_request");
    for &len in &[4usize, 8, 12] {
        let insts = instances(len, 4);
        group.bench_with_input(BenchmarkId::new("ilp", len), &insts, |b, insts| {
            let mut i = 0;
            b.iter(|| {
                let out = ilp::solve(&insts[i % insts.len()], &Default::default()).unwrap();
                i += 1;
                out.metrics.reliability
            })
        });
        group.bench_with_input(BenchmarkId::new("randomized", len), &insts, |b, insts| {
            let mut rng = StdRng::seed_from_u64(1);
            let mut i = 0;
            b.iter(|| {
                let out = randomized::solve(&insts[i % insts.len()], &Default::default(), &mut rng)
                    .unwrap();
                i += 1;
                out.metrics.reliability
            })
        });
        group.bench_with_input(BenchmarkId::new("heuristic", len), &insts, |b, insts| {
            let mut i = 0;
            b.iter(|| {
                let out = heuristic::solve(&insts[i % insts.len()], &Default::default());
                i += 1;
                out.metrics.reliability
            })
        });
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(8));
    targets = bench_algorithms
}
criterion_main!(benches);

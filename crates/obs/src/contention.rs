//! Per-shard contention counters for the sharded-capacity commit path.
//!
//! The relaxed commit order (`relaug::relaxed`) partitions residual capacity
//! into cloudlet shards; this module gives each *capacity shard* a row in
//! the existing lock-free metrics plane ([`ShardedMetrics`]) so the engine
//! can attribute commits, retries and rejections to the shard that absorbed
//! them — the observability needed to judge whether a partition actually
//! de-contends the workload. Counter writes are a relaxed atomic increment,
//! cheap enough for every request on the hot path.

use crate::shard::ShardedMetrics;
use serde::{Deserialize, Serialize};

/// Counter registry: index constants into [`ShardContention`]'s rows.
pub mod counters {
    pub const COUNTERS: &[&str] = &[
        "commits.local",
        "commits.straddle",
        "rejects.no_placement",
        "rejects.contention",
        "reserve.conflicts",
        "solves.retried",
        "overcommit.clamped",
    ];
    /// Shard-local request committed lock-free on this shard.
    pub const C_LOCAL_COMMITS: usize = 0;
    /// Straddling request committed with this shard as its home (lowest
    /// touched) shard.
    pub const C_STRADDLE_COMMITS: usize = 1;
    /// Request rejected because no primary placement fit its footprint.
    pub const C_REJECT_NO_PLACEMENT: usize = 2;
    /// Request rejected after exhausting its reserve retries — capacity
    /// moved under it faster than it could re-solve.
    pub const C_REJECT_CONTENTION: usize = 3;
    /// A multi-node reserve lost a race (insufficient at reserve time after
    /// a successful solve) and was rolled back.
    pub const C_RESERVE_CONFLICTS: usize = 4;
    /// Solves re-run because their reserve conflicted.
    pub const C_RETRY_SOLVES: usize = 5;
    /// Commits that fell back to the clamp-at-zero overcommit path.
    pub const C_OVERCOMMIT_CLAMPED: usize = 6;
}

/// Lock-free per-capacity-shard contention counters. Thin wrapper over
/// [`ShardedMetrics`] with shard index = capacity-shard index (not worker
/// index, as in the pipeline metrics).
#[derive(Debug)]
pub struct ShardContention {
    metrics: ShardedMetrics,
}

impl ShardContention {
    pub fn new(num_shards: usize) -> ShardContention {
        ShardContention { metrics: ShardedMetrics::new(counters::COUNTERS, &[], num_shards) }
    }

    pub fn num_shards(&self) -> usize {
        self.metrics.shards()
    }

    /// Increment `counter` (a `counters::C_*` index) on `shard`.
    pub fn incr(&self, shard: usize, counter: usize) {
        self.metrics.shard(shard).incr(counter);
    }

    /// Snapshot into a serializable report. `cloudlets_per_shard` (one entry
    /// per shard, or empty if unknown) annotates each row with its size.
    pub fn report(&self, cloudlets_per_shard: &[usize]) -> ShardContentionReport {
        let rows = (0..self.metrics.shards())
            .map(|s| {
                let snap = self.metrics.shard_snapshot(s);
                ShardContentionRow {
                    shard: s,
                    cloudlets: cloudlets_per_shard.get(s).copied().unwrap_or(0) as u64,
                    local_commits: snap.counter("commits.local"),
                    straddle_commits: snap.counter("commits.straddle"),
                    rejects_no_placement: snap.counter("rejects.no_placement"),
                    rejects_contention: snap.counter("rejects.contention"),
                    reserve_conflicts: snap.counter("reserve.conflicts"),
                    retry_solves: snap.counter("solves.retried"),
                    overcommit_clamped: snap.counter("overcommit.clamped"),
                }
            })
            .collect();
        ShardContentionReport { shards: rows }
    }
}

/// One shard's row of the contention report.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardContentionRow {
    pub shard: usize,
    pub cloudlets: u64,
    pub local_commits: u64,
    pub straddle_commits: u64,
    pub rejects_no_placement: u64,
    pub rejects_contention: u64,
    pub reserve_conflicts: u64,
    pub retry_solves: u64,
    pub overcommit_clamped: u64,
}

/// Serializable per-shard contention summary of a relaxed-mode run.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardContentionReport {
    pub shards: Vec<ShardContentionRow>,
}

impl ShardContentionReport {
    /// Column sums across shards (the `shard` field is meaningless here).
    pub fn totals(&self) -> ShardContentionRow {
        let mut t = ShardContentionRow::default();
        for r in &self.shards {
            t.cloudlets += r.cloudlets;
            t.local_commits += r.local_commits;
            t.straddle_commits += r.straddle_commits;
            t.rejects_no_placement += r.rejects_no_placement;
            t.rejects_contention += r.rejects_contention;
            t.reserve_conflicts += r.reserve_conflicts;
            t.retry_solves += r.retry_solves;
            t.overcommit_clamped += r.overcommit_clamped;
        }
        t
    }

    /// Fraction of commits that took the lock-free shard-local path.
    pub fn local_commit_fraction(&self) -> f64 {
        let t = self.totals();
        let commits = t.local_commits + t.straddle_commits;
        if commits == 0 {
            1.0
        } else {
            t.local_commits as f64 / commits as f64
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counters_land_on_their_shard_and_total_up() {
        let c = ShardContention::new(3);
        c.incr(0, counters::C_LOCAL_COMMITS);
        c.incr(0, counters::C_LOCAL_COMMITS);
        c.incr(2, counters::C_STRADDLE_COMMITS);
        c.incr(1, counters::C_RESERVE_CONFLICTS);
        let report = c.report(&[4, 5, 6]);
        assert_eq!(report.shards.len(), 3);
        assert_eq!(report.shards[0].local_commits, 2);
        assert_eq!(report.shards[0].cloudlets, 4);
        assert_eq!(report.shards[2].straddle_commits, 1);
        let t = report.totals();
        assert_eq!(t.local_commits, 2);
        assert_eq!(t.straddle_commits, 1);
        assert_eq!(t.reserve_conflicts, 1);
        assert_eq!(t.cloudlets, 15);
        assert!((report.local_commit_fraction() - 2.0 / 3.0).abs() < 1e-12);
    }

    #[test]
    fn report_round_trips_through_serde() {
        let c = ShardContention::new(2);
        c.incr(1, counters::C_OVERCOMMIT_CLAMPED);
        let report = c.report(&[1, 2]);
        let json = serde_json::to_string(&report).unwrap();
        let back: ShardContentionReport = serde_json::from_str(&json).unwrap();
        assert_eq!(back, report);
    }
}

//! Regenerates Fig. 1 of the paper: performance of ILP / Randomized /
//! Heuristic while the SFC length of a request varies from 2 to 20
//! (residual capacity fixed at 25%, function reliabilities in [0.8, 0.9],
//! `l = 1`).
//!
//! Usage: `cargo run -p bench-harness --release --bin fig1 -- [--trials N]
//! [--seed S] [--threads T] [--json PATH] [--greedy] [--no-ilp]`

use bench_harness::{render_figure, run_point, sweeps, to_json, HarnessArgs};

fn main() {
    let args = match HarnessArgs::parse(std::env::args().skip(1)) {
        Ok(a) => a,
        Err(e) => {
            eprintln!("fig1: {e}");
            std::process::exit(2);
        }
    };
    println!("## Fig. 1 — varying the SFC length of a request from 2 to 20");
    println!("({} trials/point, seed {}, {} threads)\n", args.trials, args.seed, args.threads);
    let mut points = Vec::new();
    for len in sweeps::fig1_lengths() {
        let cfg = args.apply(sweeps::fig1_point(len, args.trials, args.seed));
        let started = std::time::Instant::now();
        let res = run_point(&cfg);
        eprintln!("  point L={len} done in {:.1} s", started.elapsed().as_secs_f64());
        points.push(res);
    }
    println!("{}", render_figure(&points));
    if let Some(path) = &args.json {
        std::fs::write(path, to_json(&points)).expect("write JSON");
        eprintln!("wrote {path}");
    }
}

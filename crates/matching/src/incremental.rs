//! Incremental min-cost maximum-matching engine for the heuristic's
//! round-structured bipartite graphs.
//!
//! The heuristic's auxiliary graph `G_l` has a very particular shape: the
//! right side is partitioned into per-function *ladders* — for function `i`
//! the candidate items `(i, k), (i, k+1), …` all connect to the **same** set
//! of usable bins and their costs `c_{i,k}` are strictly increasing in `k`
//! (Eq. 3's marginal log-gains shrink with every extra backup). The legacy
//! path materializes every ladder step as a right node and every
//! `bin × item` pair as an edge, then cold-solves successive-shortest-path
//! (SSP) min-cost max-flow over `O(bins × items)` arcs per round.
//!
//! This engine exploits a dominance rule instead:
//!
//! > **Ladder dominance.** Within a function, item `(i, k)` dominates
//! > `(i, k')` for `k < k'`: identical bin adjacency, strictly lower cost.
//! > In every SSP pass, a *non-frontier* unmatched sibling (an item above
//! > the function's cheapest unmatched step) can never lie on the chosen
//! > augmenting path, and — as long as the ladder gap exceeds the solver's
//! > `COST_EPS` tie-tolerance — can never displace a `prev` pointer set by
//! > its frontier sibling. Matched items per function therefore always form
//! > a contiguous `k`-prefix.
//!
//! So only `matched + 1` items per function are ever *materialized*: the
//! matched prefix plus one frontier. Everything else — node numbering, heap
//! tie-breaks, eps-strict relaxations, clamped reduced costs, potential
//! updates, path application, extraction order — replicates
//! [`crate::mcmf::McmfGraph::min_cost_max_flow`] on the virtual full graph
//! operation for operation, which is what keeps the default engine
//! byte-identical to the rebuild path (the property tests in
//! `tests/proptest_incremental.rs` pin `pairs` and bit-exact `cost` against
//! the allocating reference).
//!
//! The one knowingly-inexact ingredient: when a frontier is matched
//! mid-solve, its successor's dual potential is materialized by the ladder
//! shortcut `pot[k+1] = pot[k] + (c_{k+1} − c_k)` instead of replaying the
//! sibling's own per-pass distance roundings. The two agree to ~1 ulp per
//! pass (≈1e-15 accumulated), which only matters if some eps-strict
//! comparison sits within that drift of its decision boundary; the
//! certificate ([`IncrementalMatcher::ladders_certified`]) requires ladder
//! gaps ≥ `1e-6` ≫ `COST_EPS` precisely so no such boundary exists, and the
//! caller falls back to the rebuild path when it fails.
//!
//! Warm mode additionally carries bin/sink potentials and per-function
//! frontier potentials across *rounds* (Bertsekas-style price reuse). Reused
//! prices change Dijkstra tie-breaking, so warm rounds promise the same
//! matching cardinality and cost (up to fp round-off) but not the same
//! assignment — callers opt in explicitly and the default stays cold.

use std::collections::BinaryHeap;

use crate::bipartite::Matching;
use crate::mcmf::COST_EPS;

const UNMATCHED: u32 = u32::MAX;
const NO_PREV: u32 = u32::MAX;

/// Cumulative engine counters; snapshot with [`IncrementalMatcher::stats`]
/// and diff around a solve for per-round numbers.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct MatchStats {
    /// Solves run by this engine.
    pub rounds: u64,
    /// Solves that started from carried (warm) potentials.
    pub warm_rounds: u64,
    /// Dijkstra passes (one per augmentation, plus the final failed pass).
    pub passes: u64,
    /// Arc relaxations attempted across all passes.
    pub relaxations: u64,
    /// Edges the legacy rebuild would have materialized (`Σ usable × ladder`).
    pub edges_full: u64,
    /// Edges actually materialized under ladder dominance
    /// (`Σ usable × (matched + 1)` at end of solve).
    pub edges_materialized: u64,
    /// Right items the legacy rebuild would have created.
    pub items_full: u64,
    /// Right items materialized (matched prefix + frontier per function).
    pub items_materialized: u64,
}

/// Min-heap item replicating `mcmf::HeapItem` ordering exactly: pop smallest
/// distance first, ties broken toward the smaller node id.
#[derive(Debug, Clone, PartialEq)]
struct HeapItem {
    dist: f64,
    node: usize,
}

impl Eq for HeapItem {}

impl PartialOrd for HeapItem {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}

impl Ord for HeapItem {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        other
            .dist
            .partial_cmp(&self.dist)
            .unwrap_or(std::cmp::Ordering::Equal)
            .then_with(|| other.node.cmp(&self.node))
    }
}

/// Reusable incremental matcher. One per stream/worker, like the rest of the
/// solve scratch; every buffer grows to its high-water mark and stays there,
/// so steady-state solves allocate nothing.
#[derive(Debug, Clone, Default)]
pub struct IncrementalMatcher {
    n_bins: usize,
    // ---- per-round ladder description (rebuilt each round; the *delta*
    // maintenance of usable-bin lists across rounds lives in the caller,
    // which filters retained lists in place instead of re-deriving them) ----
    func_id: Vec<u32>,
    bins: Vec<u32>,
    bin_start: Vec<u32>,
    cost: Vec<f64>,
    item_start: Vec<u32>,
    item_func: Vec<u32>,
    // ---- bin -> adjacent functions CSR, rebuilt per solve ----
    bf_off: Vec<u32>,
    bf_fun: Vec<u32>,
    bf_pos: Vec<u32>,
    active_bins: Vec<u32>,
    // ---- solve state over virtual node ids (bins, items, s, t) ----
    pot: Vec<f64>,
    dist: Vec<f64>,
    prev: Vec<u32>,
    touched: Vec<u32>,
    heap: BinaryHeap<HeapItem>,
    item_partner: Vec<u32>,
    bin_partner: Vec<u32>,
    matched: Vec<u32>,
    // ---- warm (cross-round) price carry, keyed by caller function id ----
    carry_pot: Vec<f64>,
    carry_cost: Vec<f64>,
    carry_valid: Vec<bool>,
    carry_pot_t: f64,
    warm_ready: bool,
    stats: MatchStats,
}

impl IncrementalMatcher {
    pub fn new() -> Self {
        Self::default()
    }

    /// Start a new request: fixes the bin universe, forgets carried prices.
    pub fn begin_request(&mut self, n_bins: usize, chain_len: usize) {
        self.n_bins = n_bins;
        self.warm_ready = false;
        self.carry_pot.clear();
        self.carry_pot.resize(chain_len, 0.0);
        self.carry_cost.clear();
        self.carry_cost.resize(chain_len, 0.0);
        self.carry_valid.clear();
        self.carry_valid.resize(chain_len, false);
        self.carry_pot_t = 0.0;
    }

    /// Start describing one round's bipartite graph.
    pub fn begin_round(&mut self) {
        self.func_id.clear();
        self.bins.clear();
        self.bin_start.clear();
        self.bin_start.push(0);
        self.cost.clear();
        self.item_start.clear();
        self.item_start.push(0);
        self.item_func.clear();
    }

    /// Open a function block; follow with [`Self::push_bin`] /
    /// [`Self::push_cost`] and seal with [`Self::finish_function`]. Skip
    /// functions with no usable bin or an empty ladder entirely — exactly as
    /// the legacy builder skips them — so item numbering matches the edge
    /// list the rebuild path would have produced.
    pub fn start_function(&mut self, func_id: usize) {
        self.func_id.push(func_id as u32);
    }

    /// Add a usable bin for the currently open function (insertion order is
    /// the relaxation order, so push in the same order the legacy edge
    /// builder iterates eligible bins).
    pub fn push_bin(&mut self, b: usize) {
        debug_assert!(b < self.n_bins, "bin {b} out of range");
        self.bins.push(b as u32);
    }

    /// Add the next ladder step's cost for the currently open function.
    pub fn push_cost(&mut self, c: f64) {
        assert!(c.is_finite(), "non-finite ladder cost");
        let f = self.func_id.len() - 1;
        self.cost.push(c);
        self.item_func.push(f as u32);
    }

    pub fn finish_function(&mut self) {
        let prev_b = *self.bin_start.last().unwrap();
        let prev_i = *self.item_start.last().unwrap();
        debug_assert!(self.bins.len() as u32 > prev_b, "function without usable bins");
        debug_assert!(self.cost.len() as u32 > prev_i, "function without ladder items");
        self.bin_start.push(self.bins.len() as u32);
        self.item_start.push(self.cost.len() as u32);
    }

    /// Items described for the current round.
    pub fn n_items(&self) -> usize {
        self.cost.len()
    }

    /// The dominance certificate: every ladder strictly increasing with gaps
    /// of at least `min_gap` (callers use `1e-6` ≫ `COST_EPS`), starting
    /// non-negative. When this fails the dead-sibling argument no longer
    /// bounds eps-tie flips and the caller must use the rebuild path.
    pub fn ladders_certified(&self, min_gap: f64) -> bool {
        for f in 0..self.func_id.len() {
            let lo = self.item_start[f] as usize;
            let hi = self.item_start[f + 1] as usize;
            let ladder = &self.cost[lo..hi];
            // NaN anywhere must fail the certificate, so the comparisons are
            // written with explicit NaN arms rather than negated `>=`.
            if ladder[0] < 0.0 || ladder[0].is_nan() {
                return false;
            }
            for w in ladder.windows(2) {
                let gap = w[1] - w[0];
                if gap < min_gap || gap.is_nan() {
                    return false;
                }
            }
        }
        true
    }

    pub fn stats(&self) -> MatchStats {
        self.stats
    }

    pub fn reset_stats(&mut self) {
        self.stats = MatchStats::default();
    }

    /// Solve the described round. Cold (`warm = false`) replicates the
    /// legacy SSP trajectory on the virtual full graph: `out` (pairs, order
    /// and bit-exact cost) equals what [`crate::min_cost_max_matching`]
    /// returns for the expanded edge list. Warm reuses carried prices: same
    /// cardinality and cost (up to fp round-off), assignment may differ.
    pub fn solve_into(&mut self, warm: bool, out: &mut Matching) {
        let b = self.n_bins;
        let nf = self.func_id.len();
        let n_items = self.cost.len();
        let s = b + n_items;
        let t = s + 1;
        let n = t + 1;

        // Bin -> adjacent-functions CSR + active bin list (id order).
        self.bf_off.clear();
        self.bf_off.resize(b + 1, 0);
        for &bin in &self.bins {
            self.bf_off[bin as usize + 1] += 1;
        }
        for l in 0..b {
            self.bf_off[l + 1] += self.bf_off[l];
        }
        self.bf_fun.clear();
        self.bf_fun.resize(self.bins.len(), 0);
        self.bf_pos.clear();
        self.bf_pos.extend_from_slice(&self.bf_off[..b]);
        for f in 0..nf {
            let lo = self.bin_start[f] as usize;
            let hi = self.bin_start[f + 1] as usize;
            for &bin in &self.bins[lo..hi] {
                let slot = self.bf_pos[bin as usize];
                self.bf_fun[slot as usize] = f as u32;
                self.bf_pos[bin as usize] += 1;
            }
        }
        self.active_bins.clear();
        for l in 0..b {
            if self.bf_off[l + 1] > self.bf_off[l] {
                self.active_bins.push(l as u32);
            }
        }

        // Matching state.
        self.item_partner.clear();
        self.item_partner.resize(n_items, UNMATCHED);
        self.bin_partner.clear();
        self.bin_partner.resize(b, UNMATCHED);
        self.matched.clear();
        self.matched.resize(nf, 0);

        // Potentials: zeros replicate `min_cost_max_flow`'s per-call reset
        // (ladder costs are certified non-negative, so no Bellman–Ford).
        // Warm start keeps bin/sink prices and re-derives item prices from
        // the carried per-function frontier via the ladder shortcut; the
        // source price is lifted to the max active-bin price so `s -> bin`
        // reduced costs stay non-negative.
        let warm_run = warm
            && self.warm_ready
            && self.func_id.iter().all(|&fid| self.carry_valid[fid as usize]);
        let pot_s_eff;
        if warm_run {
            let old_len = self.pot.len();
            if old_len < n {
                self.pot.resize(n, 0.0);
            }
            for f in 0..nf {
                let fid = self.func_id[f] as usize;
                let lo = self.item_start[f] as usize;
                let hi = self.item_start[f + 1] as usize;
                for j in lo..hi {
                    self.pot[b + j] = self.carry_pot[fid] + (self.cost[j] - self.carry_cost[fid]);
                }
            }
            self.pot[t] = self.carry_pot_t;
            pot_s_eff =
                self.active_bins.iter().map(|&l| self.pot[l as usize]).fold(0.0f64, f64::max);
            self.stats.warm_rounds += 1;
        } else {
            self.pot.clear();
            self.pot.resize(n, 0.0);
            pot_s_eff = 0.0;
        }

        self.dist.clear();
        self.dist.resize(n, f64::INFINITY);
        self.prev.clear();
        self.prev.resize(n, NO_PREV);
        self.touched.clear();

        // Split borrows for the pass loop.
        let pot = &mut self.pot;
        let dist = &mut self.dist;
        let prev = &mut self.prev;
        let touched = &mut self.touched;
        let heap = &mut self.heap;
        let item_partner = &mut self.item_partner;
        let bin_partner = &mut self.bin_partner;
        let matched = &mut self.matched;
        let cost = &self.cost;
        let item_start = &self.item_start;
        let item_func = &self.item_func;
        let bf_off = &self.bf_off;
        let bf_fun = &self.bf_fun;
        let active_bins = &self.active_bins;

        let mut passes = 0u64;
        let mut relaxations = 0u64;

        #[inline(always)]
        fn relax(
            dist: &mut [f64],
            prev: &mut [u32],
            touched: &mut Vec<u32>,
            heap: &mut BinaryHeap<HeapItem>,
            v: usize,
            nd: f64,
            from: usize,
        ) {
            if nd + COST_EPS < dist[v] {
                if dist[v].is_infinite() {
                    touched.push(v as u32);
                }
                dist[v] = nd;
                prev[v] = from as u32;
                heap.push(HeapItem { dist: nd, node: v });
            }
        }

        loop {
            passes += 1;
            for &v in touched.iter() {
                dist[v as usize] = f64::INFINITY;
                prev[v as usize] = NO_PREV;
            }
            touched.clear();
            heap.clear();
            dist[s] = 0.0;
            touched.push(s as u32);
            heap.push(HeapItem { dist: 0.0, node: s });

            while let Some(HeapItem { dist: d, node: u }) = heap.pop() {
                if d > dist[u] + COST_EPS {
                    continue;
                }
                if u == s {
                    // s -> unmatched bins, id order (cold: rc = 0 exactly,
                    // matching the legacy zero-cost source arcs).
                    for &l in active_bins {
                        let l = l as usize;
                        if bin_partner[l] != UNMATCHED {
                            continue;
                        }
                        relaxations += 1;
                        let rc = (0.0f64 + pot_s_eff - pot[l]).max(0.0);
                        relax(dist, prev, touched, heap, l, d + rc, s);
                    }
                } else if u < b {
                    // Bin -> materialized items of adjacent functions, item
                    // id order (functions ascending = legacy adjacency
                    // order). The saturated arc to the bin's partner is
                    // skipped; the residual back to `s` can never improve
                    // dist[s] = 0 and is elided.
                    let pl = pot[u];
                    let lo = bf_off[u] as usize;
                    let hi = bf_off[u + 1] as usize;
                    for &f in &bf_fun[lo..hi] {
                        let f = f as usize;
                        let base = item_start[f] as usize;
                        let len = item_start[f + 1] as usize - base;
                        let top = (matched[f] as usize).min(len - 1);
                        for x in base..=base + top {
                            if item_partner[x] == u as u32 {
                                continue;
                            }
                            relaxations += 1;
                            let rc = (cost[x] + pl - pot[b + x]).max(0.0);
                            relax(dist, prev, touched, heap, b + x, d + rc, u);
                        }
                    }
                } else if u < s {
                    // Item: matched -> residual to its partner bin only;
                    // frontier -> the zero-cost arc to t only.
                    let x = u - b;
                    let p = item_partner[x];
                    if p != UNMATCHED {
                        relaxations += 1;
                        let l = p as usize;
                        let rc = (-cost[x] + pot[u] - pot[l]).max(0.0);
                        relax(dist, prev, touched, heap, l, d + rc, u);
                    } else {
                        relaxations += 1;
                        let rc = (0.0f64 + pot[u] - pot[t]).max(0.0);
                        relax(dist, prev, touched, heap, t, d + rc, u);
                    }
                } else if u == t {
                    // t -> matched items (residuals of saturated item->t
                    // arcs), item id order.
                    for f in 0..nf {
                        let base = item_start[f] as usize;
                        for x in base..base + matched[f] as usize {
                            relaxations += 1;
                            let rc = (-0.0f64 + pot[t] - pot[b + x]).max(0.0);
                            relax(dist, prev, touched, heap, b + x, d + rc, t);
                        }
                    }
                }
            }

            if dist[t].is_infinite() {
                break;
            }
            for &v in touched.iter() {
                let v = v as usize;
                if dist[v].is_finite() {
                    pot[v] += dist[v];
                }
            }

            // Trace the augmenting path back from t and flip the matching
            // along it. Every item on the path is entered through a forward
            // bin arc, which is its (possibly new) partner.
            let mut v = t;
            let mut last_item = usize::MAX;
            while v != s {
                let pv = prev[v] as usize;
                debug_assert_ne!(prev[v], NO_PREV, "broken augmenting path");
                if (b..s).contains(&v) {
                    let x = v - b;
                    debug_assert!(pv < b, "item entered by non-bin arc on final path");
                    item_partner[x] = pv as u32;
                    bin_partner[pv] = x as u32;
                } else if v == t {
                    last_item = pv - b;
                }
                v = pv;
            }
            debug_assert!(last_item < n_items);
            let f = item_func[last_item] as usize;
            debug_assert_eq!(last_item, item_start[f] as usize + matched[f] as usize);
            matched[f] += 1;
            // Materialize the next frontier's potential by the ladder
            // shortcut, after this pass's potential update — the one place
            // the engine substitutes an algebraic identity for the sibling's
            // own (dead-weight) distance history.
            let base = item_start[f] as usize;
            let len = item_start[f + 1] as usize - base;
            let m = matched[f] as usize;
            if m < len {
                let nj = base + m;
                pot[b + nj] = pot[b + nj - 1] + (cost[nj] - cost[nj - 1]);
            }
        }

        // Leave no stale finite distances behind (next solve resizes anyway,
        // but warm carries read `pot`, not `dist`).
        for &v in touched.iter() {
            dist[v as usize] = f64::INFINITY;
            prev[v as usize] = NO_PREV;
        }
        touched.clear();

        // Extraction: identical to the legacy saturated-edge scan — one
        // saturated edge per matched item, visited in item-major order, so
        // the cost sum associates identically; pairs sort the same way.
        out.pairs.clear();
        out.cost = 0.0;
        for x in 0..n_items {
            if self.item_partner[x] != UNMATCHED {
                out.pairs.push((self.item_partner[x] as usize, x));
                out.cost += self.cost[x];
            }
        }
        out.pairs.sort_unstable();

        // Stats.
        self.stats.rounds += 1;
        self.stats.passes += passes;
        self.stats.relaxations += relaxations;
        self.stats.items_full += n_items as u64;
        for f in 0..nf {
            let usable = (self.bin_start[f + 1] - self.bin_start[f]) as u64;
            let len = (self.item_start[f + 1] - self.item_start[f]) as u64;
            let live = (self.matched[f] as u64 + 1).min(len);
            self.stats.edges_full += usable * len;
            self.stats.edges_materialized += usable * live;
            self.stats.items_materialized += live;
        }

        // Warm carry: remember the last *materialized* item's price per
        // function (frontier if one survives, else the last matched step)
        // plus the sink price. Reduced-cost feasibility of the re-derived
        // prices follows from SSP's ending invariant on those same arcs.
        for f in 0..nf {
            let fid = self.func_id[f] as usize;
            let base = self.item_start[f] as usize;
            let len = self.item_start[f + 1] as usize - base;
            let last = base + (self.matched[f] as usize).min(len - 1);
            self.carry_pot[fid] = self.pot[b + last];
            self.carry_cost[fid] = self.cost[last];
            self.carry_valid[fid] = true;
        }
        self.carry_pot_t = self.pot[t];
        self.warm_ready = true;
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::min_cost_max_matching;

    /// Expand ladders into the edge list the legacy path would build.
    fn expand(
        n_bins: usize,
        funcs: &[(Vec<usize>, Vec<f64>)],
    ) -> (Vec<(usize, usize, f64)>, usize) {
        let mut edges = Vec::new();
        let mut items = 0;
        for (bins, ladder) in funcs {
            for &c in ladder {
                for &b in bins {
                    edges.push((b, items, c));
                }
                items += 1;
            }
        }
        let _ = n_bins;
        (edges, items)
    }

    fn engine_solve(
        n_bins: usize,
        chain_len: usize,
        funcs: &[(Vec<usize>, Vec<f64>)],
        warm: bool,
    ) -> (IncrementalMatcher, Matching) {
        let mut m = IncrementalMatcher::new();
        m.begin_request(n_bins, chain_len);
        m.begin_round();
        for (fid, (bins, ladder)) in funcs.iter().enumerate() {
            m.start_function(fid);
            for &b in bins {
                m.push_bin(b);
            }
            for &c in ladder {
                m.push_cost(c);
            }
            m.finish_function();
        }
        let mut out = Matching { pairs: Vec::new(), cost: 0.0 };
        m.solve_into(warm, &mut out);
        (m, out)
    }

    fn assert_exact(n_bins: usize, funcs: &[(Vec<usize>, Vec<f64>)]) {
        let (edges, items) = expand(n_bins, funcs);
        let reference = min_cost_max_matching(n_bins, items, &edges);
        let (_, got) = engine_solve(n_bins, funcs.len(), funcs, false);
        assert_eq!(got.pairs, reference.pairs);
        assert_eq!(got.cost.to_bits(), reference.cost.to_bits());
    }

    #[test]
    fn single_function_single_bin() {
        assert_exact(1, &[(vec![0], vec![1.0, 2.0, 3.0])]);
    }

    #[test]
    fn two_functions_compete_for_scarce_bins() {
        assert_exact(2, &[(vec![0, 1], vec![0.5, 1.7]), (vec![1], vec![0.9, 2.2])]);
    }

    #[test]
    fn wider_than_tall_and_tall_than_wide() {
        assert_exact(5, &[(vec![0, 2, 4], vec![0.3]), (vec![1, 2, 3], vec![0.2, 0.9, 1.6])]);
        assert_exact(2, &[(vec![0, 1], vec![0.1, 0.2, 0.4, 0.8])]);
    }

    #[test]
    fn identical_tier_costs_across_functions_tie_break_like_legacy() {
        // Two functions with bitwise-equal ladders (tiered reliabilities):
        // legacy breaks all ties by node id; the engine must agree exactly.
        let ladder = vec![0.25f64, 1.25, 2.75];
        assert_exact(
            4,
            &[
                (vec![0, 1, 2], ladder.clone()),
                (vec![1, 2, 3], ladder.clone()),
                (vec![0, 3], ladder),
            ],
        );
    }

    #[test]
    fn skips_unusable_bins_entirely() {
        // Bin 1 unused by anyone: never relaxed, never matched.
        let (m, got) = engine_solve(3, 2, &[(vec![0], vec![0.4]), (vec![2], vec![0.6])], false);
        assert_eq!(got.pairs, vec![(0, 0), (2, 1)]);
        assert!(m.stats().relaxations > 0);
    }

    #[test]
    fn stats_report_pruning() {
        // 1 bin, 5-step ladder: legacy would build 5 edges; dominance keeps
        // the matched prefix (1) + one frontier.
        let (m, got) = engine_solve(1, 1, &[(vec![0], vec![0.1, 0.9, 1.8, 2.7, 3.6])], false);
        assert_eq!(got.cardinality(), 1);
        let st = m.stats();
        assert_eq!(st.items_full, 5);
        assert_eq!(st.edges_full, 5);
        assert_eq!(st.items_materialized, 2);
        assert_eq!(st.edges_materialized, 2);
        assert_eq!(st.rounds, 1);
        assert_eq!(st.warm_rounds, 0);
    }

    #[test]
    fn certificate_rejects_flat_or_negative_ladders() {
        let (m, _) = engine_solve(1, 1, &[(vec![0], vec![0.5, 0.5 + 1e-9])], false);
        assert!(!m.ladders_certified(1e-6));
        let (m, _) = engine_solve(1, 1, &[(vec![0], vec![-0.5, 1.0])], false);
        assert!(!m.ladders_certified(1e-6));
        let (m, _) = engine_solve(1, 1, &[(vec![0], vec![0.5, 0.7])], false);
        assert!(m.ladders_certified(1e-6));
    }

    #[test]
    fn warm_round_preserves_cardinality_and_cost() {
        // Round 1 cold, then a second round with advanced ladders and a
        // shrunk bin set, solved warm and checked against a cold reference.
        let funcs1: Vec<(Vec<usize>, Vec<f64>)> =
            vec![(vec![0, 1, 2], vec![0.2, 1.0]), (vec![1, 2], vec![0.4, 1.3])];
        let mut m = IncrementalMatcher::new();
        m.begin_request(3, 2);
        let mut out = Matching { pairs: Vec::new(), cost: 0.0 };
        m.begin_round();
        for (fid, (bins, ladder)) in funcs1.iter().enumerate() {
            m.start_function(fid);
            for &b in bins {
                m.push_bin(b);
            }
            for &c in ladder {
                m.push_cost(c);
            }
            m.finish_function();
        }
        m.solve_into(true, &mut out);
        assert_eq!(m.stats().warm_rounds, 0, "first round has nothing to reuse");

        // Round 2: next ladder steps, bin 1 exhausted.
        let funcs2: Vec<(Vec<usize>, Vec<f64>)> =
            vec![(vec![0, 2], vec![1.9, 2.9]), (vec![2], vec![2.1, 3.0])];
        m.begin_round();
        for (fid, (bins, ladder)) in funcs2.iter().enumerate() {
            m.start_function(fid);
            for &b in bins {
                m.push_bin(b);
            }
            for &c in ladder {
                m.push_cost(c);
            }
            m.finish_function();
        }
        m.solve_into(true, &mut out);
        assert_eq!(m.stats().warm_rounds, 1);
        let (edges, items) = expand(3, &funcs2);
        let reference = min_cost_max_matching(3, items, &edges);
        assert_eq!(out.cardinality(), reference.cardinality());
        assert!(
            (out.cost - reference.cost).abs() <= 1e-9 * (1.0 + reference.cost.abs()),
            "warm cost {} vs reference {}",
            out.cost,
            reference.cost
        );
    }

    #[test]
    fn begin_request_drops_carried_prices() {
        let funcs: Vec<(Vec<usize>, Vec<f64>)> = vec![(vec![0], vec![0.3, 1.1])];
        let mut m = IncrementalMatcher::new();
        let mut out = Matching { pairs: Vec::new(), cost: 0.0 };
        for _ in 0..2 {
            m.begin_request(1, 1);
            m.begin_round();
            m.start_function(0);
            m.push_bin(0);
            for &c in &funcs[0].1 {
                m.push_cost(c);
            }
            m.finish_function();
            m.solve_into(true, &mut out);
        }
        // Second request's first round must not count as warm.
        assert_eq!(m.stats().warm_rounds, 0);
        assert_eq!(m.stats().rounds, 2);
    }

    #[test]
    fn reused_engine_matches_fresh_engine() {
        let cases: Vec<Vec<(Vec<usize>, Vec<f64>)>> = vec![
            vec![(vec![0, 1], vec![0.2, 0.8])],
            vec![(vec![0], vec![0.5]), (vec![0, 1, 2], vec![0.1, 0.6, 1.4])],
            vec![(vec![2], vec![0.9, 1.9]), (vec![0, 1], vec![0.3])],
        ];
        let mut m = IncrementalMatcher::new();
        let mut out = Matching { pairs: Vec::new(), cost: 0.0 };
        for funcs in &cases {
            m.begin_request(3, funcs.len());
            m.begin_round();
            for (fid, (bins, ladder)) in funcs.iter().enumerate() {
                m.start_function(fid);
                for &b in bins {
                    m.push_bin(b);
                }
                for &c in ladder {
                    m.push_cost(c);
                }
                m.finish_function();
            }
            m.solve_into(false, &mut out);
            let (_, fresh) = engine_solve(3, funcs.len(), funcs, false);
            assert_eq!(out, fresh);
        }
    }
}

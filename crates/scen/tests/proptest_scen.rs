//! Property tests for the scenario generator.
//!
//! Two families: (1) **stream determinism** — any prefix of a
//! [`RequestStream`] is byte-identical across re-instantiations, stream
//! limits, and consumption patterns (collect-all vs. interleaved pulls);
//! (2) **topology invariants** — SAGIN hierarchies, Barabási–Albert graphs
//! and fat-trees stay connected with degree/tier distributions inside the
//! bounds their specs promise.

use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;
use scen::{
    barabasi_albert, fat_tree, sagin, FatTreeRole, RequestStream, ScenarioSpec, TierSpec,
    TimedRequest, TopologySpec,
};

fn small_tiers(core: usize, agg: usize, edge: usize) -> Vec<TierSpec> {
    vec![
        TierSpec {
            name: "core".into(),
            nodes: core,
            cloudlet_fraction: 1.0,
            capacity_range: (16000.0, 32000.0),
            alpha: 0.8,
            beta: 0.6,
            uplinks: 0,
            popularity_weight: 1.0,
        },
        TierSpec {
            name: "agg".into(),
            nodes: agg,
            cloudlet_fraction: 0.5,
            capacity_range: (6000.0, 12000.0),
            alpha: 0.5,
            beta: 0.3,
            uplinks: 2,
            popularity_weight: 2.0,
        },
        TierSpec {
            name: "edge".into(),
            nodes: edge,
            cloudlet_fraction: 0.3,
            capacity_range: (2000.0, 5000.0),
            alpha: 0.4,
            beta: 0.15,
            uplinks: 1,
            popularity_weight: 6.0,
        },
    ]
}

fn spec_with_seed(seed: u64) -> ScenarioSpec {
    let mut spec = ScenarioSpec::preset("waxman-100").unwrap();
    spec.seed = seed;
    spec
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// The first `prefix` requests are identical whether the stream is
    /// instantiated with a tight limit, a huge limit, or consumed in
    /// interleaved chunks — per-position RNG derivation means no draw
    /// depends on consumption history.
    #[test]
    fn stream_prefix_independent_of_limit_and_consumption(
        seed in 0u64..1_000,
        prefix in 1usize..120,
    ) {
        let built = spec_with_seed(seed).build();
        let tight: Vec<TimedRequest> =
            RequestStream::new(&built, prefix as u64).timed().collect();
        let huge: Vec<TimedRequest> =
            RequestStream::new(&built, u64::MAX).timed().take(prefix).collect();
        prop_assert_eq!(&tight, &huge);
        // Interleaved: pull one, then the rest, from a fresh instance.
        let mut chunked = RequestStream::new(&built, 1_000_000).timed();
        let mut interleaved = Vec::with_capacity(prefix);
        interleaved.push(chunked.next().unwrap());
        interleaved.extend(chunked.take(prefix - 1));
        prop_assert_eq!(&tight, &interleaved);
    }

    /// Re-building the same spec yields the same stream; different seeds
    /// yield different streams (avalanche sanity).
    #[test]
    fn stream_is_a_pure_function_of_the_spec(seed in 0u64..1_000) {
        let a: Vec<TimedRequest> =
            RequestStream::new(&spec_with_seed(seed).build(), 50).timed().collect();
        let b: Vec<TimedRequest> =
            RequestStream::new(&spec_with_seed(seed).build(), 50).timed().collect();
        prop_assert_eq!(&a, &b);
        let c: Vec<TimedRequest> =
            RequestStream::new(&spec_with_seed(seed ^ 0xDEAD).build(), 50).timed().collect();
        prop_assert_ne!(&a, &c);
    }

    /// SAGIN hierarchies are connected with exact per-tier node counts, and
    /// every non-top node keeps at least one uplink into the tier above.
    #[test]
    fn sagin_connected_with_tier_distribution(
        seed in 0u64..10_000,
        core in 2usize..6,
        agg in 4usize..16,
        edge in 8usize..48,
    ) {
        let tiers = small_tiers(core, agg, edge);
        let mut rng = StdRng::seed_from_u64(seed);
        let (g, tier_of) = sagin(&tiers, &mut rng);
        prop_assert!(g.is_connected());
        prop_assert_eq!(g.num_nodes(), core + agg + edge);
        for (t, tier) in tiers.iter().enumerate() {
            prop_assert_eq!(tier_of.iter().filter(|&&x| x == t).count(), tier.nodes);
        }
        for v in g.nodes() {
            let t = tier_of[v.index()];
            if t > 0 {
                prop_assert!(
                    g.neighbors(v).any(|u| tier_of[u.index()] == t - 1),
                    "node {} in tier {} lost its uplink", v.index(), t
                );
            }
        }
    }

    /// Barabási–Albert: connected, exact edge count, minimum degree `attach`,
    /// and a hub exceeding the mean degree (heavy tail).
    #[test]
    fn barabasi_albert_degree_bounds(
        seed in 0u64..10_000,
        nodes in 30usize..200,
        attach in 1usize..5,
    ) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = barabasi_albert(nodes, attach, &mut rng);
        prop_assert!(g.is_connected());
        let clique = attach * (attach + 1) / 2;
        prop_assert_eq!(g.num_edges(), clique + (nodes - attach - 1) * attach);
        for v in g.nodes() {
            prop_assert!(g.degree(v) >= attach, "degree floor violated at {}", v.index());
        }
        let max_deg = g.nodes().map(|v| g.degree(v)).max().unwrap();
        prop_assert!(max_deg as f64 >= g.average_degree());
    }

    /// Fat-trees have the closed-form node/edge counts and exact per-role
    /// degrees for any even arity.
    #[test]
    fn fat_tree_structure(half in 1usize..5) {
        let k = 2 * half;
        let (g, roles) = fat_tree(k);
        prop_assert!(g.is_connected());
        prop_assert_eq!(g.num_nodes(), half * half + k * k + k * half * half);
        let hosts = roles.iter().filter(|r| matches!(r, FatTreeRole::Host { .. })).count();
        prop_assert_eq!(hosts, k * k * k / 4);
        for (i, role) in roles.iter().enumerate() {
            let d = g.degree(mecnet::graph::NodeId(i));
            match role {
                FatTreeRole::Host { .. } => prop_assert_eq!(d, 1),
                _ => prop_assert_eq!(d, k),
            }
        }
    }

    /// Built SAGIN scenarios keep cloudlet counts inside the per-tier
    /// fractions' bounds and capacity draws inside the tier's class range.
    #[test]
    fn built_sagin_respects_capacity_classes(seed in 0u64..500) {
        let tiers = small_tiers(3, 8, 24);
        let spec = ScenarioSpec {
            name: "prop-sagin".into(),
            seed,
            topology: TopologySpec::Sagin { tiers: tiers.clone() },
            catalog: Default::default(),
            stream: Default::default(),
        };
        let built = spec.build();
        for (t, tier) in tiers.iter().enumerate() {
            let caps: Vec<f64> = built
                .network
                .cloudlet_ids()
                .iter()
                .filter(|&&v| built.tier_of[v.index()] == t)
                .map(|&v| built.network.capacity(v))
                .collect();
            let expect = ((tier.nodes as f64 * tier.cloudlet_fraction) as usize).max(1);
            prop_assert_eq!(caps.len(), expect, "tier {} cloudlet count", t);
            for c in caps {
                prop_assert!(
                    c >= tier.capacity_range.0 && c <= tier.capacity_range.1,
                    "tier {} capacity {} outside class {:?}", t, c, tier.capacity_range
                );
            }
        }
    }
}

//! Cold-vs-warm LP benchmark for the exact ILP path.
//!
//! Measures what the dual-simplex warm start buys branch and bound: every
//! B&B node differs from its parent by a single bound change, so a
//! warm-started re-solve needs a handful of dual pivots where a cold
//! two-phase solve pays the full pivot bill again.
//!
//! Two parts:
//!
//! 1. **Node solves** — deterministic random BMCGAP placement MILPs (the
//!    shape of the paper's augmentation ILP) solved with `warm_lp_nodes`
//!    off and on. Objectives are asserted equal; total pivots, nodes and
//!    pivots/node are recorded. No incumbent seeding, so the trees are deep
//!    enough to measure child re-solves rather than a pre-pruned stump.
//! 2. **Stream throughput** — an ILP-mode request stream (production
//!    default config) timed cold vs warm.
//! 3. **Scenario stream** — the same cold-vs-warm ILP stream on the
//!    `ba-1k` zoo preset (1,000 cloudlets; the neighborhood index keeps
//!    per-request instances small enough for exact solves), lazily
//!    synthesized and fed through the sink driver.
//!
//! Results go to `BENCH_ilp.json` at the workspace root (the CI artifact;
//! CI gates `warm.total_pivots <= cold.total_pivots`). `QUICK=1` shrinks
//! the fixture for CI. Plain `harness = false` main: the numbers of
//! interest (pivot counts) are deterministic, so criterion sampling would
//! add noise, not signal.

use std::time::Instant;

use mecnet::request::SfcRequest;
use mecnet::workload::{generate_catalog, generate_network, WorkloadConfig};
use milp::{BnbConfig, Model, Relation, Sense};
use obs::Recorder;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use relaug::stream::{process_stream_seeded, process_stream_seeded_sink, Algorithm, StreamConfig};
use scen::{BuiltScenario, RequestStream, ScenarioSpec};
use serde::Value;

const SEED: u64 = 42;

/// Deterministic BMCGAP placement MILP: binary `x_{i,b}`, at most one bin
/// per item, knapsack capacity per bin, maximize profit. Sized so the LP
/// relaxation is fractional and branch and bound has a real tree to search.
fn bmcgap_model(rng: &mut StdRng, items: usize, bins: usize) -> Model {
    let mut m = Model::new(Sense::Maximize);
    let demands: Vec<f64> = (0..items).map(|_| rng.gen_range(1.0..5.0)).collect();
    let mut vars = Vec::new();
    for (i, &demand) in demands.iter().enumerate() {
        for b in 0..bins {
            // ~80% of pairs eligible; profit correlates weakly with demand
            // so the knapsack decisions are non-trivial.
            if rng.gen::<f64>() < 0.8 {
                let profit = rng.gen_range(0.5..4.0) + 0.5 * demand;
                vars.push((i, b, m.add_binary_var(profit)));
            }
        }
    }
    for i in 0..items {
        let row: Vec<_> =
            vars.iter().filter(|(vi, _, _)| *vi == i).map(|&(_, _, v)| (v, 1.0)).collect();
        if !row.is_empty() {
            m.add_constraint(row, Relation::Le, 1.0);
        }
    }
    for b in 0..bins {
        let row: Vec<_> =
            vars.iter().filter(|(_, vb, _)| *vb == b).map(|&(vi, _, v)| (v, demands[vi])).collect();
        if !row.is_empty() {
            // Tight capacity: roughly a third of total eligible demand.
            let total: f64 = row.iter().map(|&(_, d)| d).sum();
            m.add_constraint(row, Relation::Le, (total / 3.0).max(2.0));
        }
    }
    m
}

fn bnb_cfg(warm_lp_nodes: bool) -> BnbConfig {
    BnbConfig { warm_lp_nodes, ..Default::default() }
}

#[derive(Default)]
struct Totals {
    nodes: u64,
    pivots: u64,
    solves: u64,
    wall_s: f64,
}

impl Totals {
    fn pivots_per_node(&self) -> f64 {
        self.pivots as f64 / (self.nodes as f64).max(1.0)
    }

    fn to_value(&self) -> Value {
        Value::Obj(vec![
            ("solves".into(), Value::U64(self.solves)),
            ("total_nodes".into(), Value::U64(self.nodes)),
            ("total_pivots".into(), Value::U64(self.pivots)),
            ("pivots_per_node".into(), Value::F64(self.pivots_per_node())),
            ("wall_s".into(), Value::F64(self.wall_s)),
        ])
    }
}

fn run_nodes(models: &[Model], warm: bool) -> Totals {
    let cfg = bnb_cfg(warm);
    let mut t = Totals::default();
    let started = Instant::now();
    for model in models {
        let sol = milp::solve_milp_with(model, &cfg).expect("BMCGAP solve");
        t.nodes += sol.stats.nodes as u64;
        t.pivots += sol.stats.lp_iterations as u64;
        t.solves += 1;
    }
    t.wall_s = started.elapsed().as_secs_f64();
    t
}

fn run_stream(requests: usize, warm: bool) -> (f64, usize, f64) {
    let wl = WorkloadConfig::default();
    let mut rng = StdRng::seed_from_u64(SEED);
    let network = generate_network(&wl, &mut rng);
    let catalog = generate_catalog(&wl, &mut rng);
    let reqs: Vec<SfcRequest> = (0..requests)
        .map(|i| SfcRequest::random(i, &catalog, (3, 6), 0.99, wl.nodes, &mut rng))
        .collect();
    let mut ilp_cfg = relaug::ilp::IlpConfig::default();
    ilp_cfg.bnb.warm_lp_nodes = warm;
    let cfg = StreamConfig { algorithm: Algorithm::Ilp(ilp_cfg), ..Default::default() };
    let started = Instant::now();
    let out = process_stream_seeded(&network, &catalog, &reqs, &cfg, SEED);
    let wall = started.elapsed().as_secs_f64();
    let admitted = out.records.iter().filter(|r| r.admitted).count();
    (requests as f64 / wall, admitted, out.records[0].achieved_reliability)
}

/// Cold-vs-warm ILP stream on a zoo scenario: requests come lazily from the
/// spec-derived generator and records are folded into running statistics as
/// they are produced. Returns (req/s, admitted, first-request reliability).
fn run_scenario_stream(built: &BuiltScenario, requests: u64, warm: bool) -> (f64, usize, f64) {
    let mut ilp_cfg = relaug::ilp::IlpConfig::default();
    ilp_cfg.bnb.warm_lp_nodes = warm;
    let cfg = StreamConfig { algorithm: Algorithm::Ilp(ilp_cfg), ..Default::default() };
    let mut admitted = 0usize;
    let mut first_rel = f64::NAN;
    let started = Instant::now();
    process_stream_seeded_sink(
        &built.network,
        &built.catalog,
        RequestStream::new(built, requests),
        &cfg,
        built.spec.seed,
        &mut Recorder::noop(),
        &mut |r| {
            if r.id == 0 {
                first_rel = r.achieved_reliability;
            }
            admitted += r.admitted as usize;
        },
    );
    let wall = started.elapsed().as_secs_f64();
    (requests as f64 / wall, admitted, first_rel)
}

const SCENARIO: &str = "ba-1k";

fn main() {
    let quick = std::env::var_os("QUICK").is_some();
    let models_n = if quick { 4 } else { 16 };
    let (items, bins) = if quick { (10, 4) } else { (14, 5) };
    let stream_requests = if quick { 15 } else { 60 };
    let scenario_requests: u64 = if quick { 1_000 } else { 10_000 };

    let mut rng = StdRng::seed_from_u64(SEED);
    let models: Vec<Model> = (0..models_n).map(|_| bmcgap_model(&mut rng, items, bins)).collect();

    // Sanity: warm and cold solves must agree on the optimum (the trees may
    // differ — dual and primal re-solves can land on different
    // alternate-optimal vertices and branch differently — but the objective
    // is pinned).
    for model in &models {
        let cold = milp::solve_milp_with(model, &bnb_cfg(false)).unwrap();
        let warm = milp::solve_milp_with(model, &bnb_cfg(true)).unwrap();
        assert!(
            (cold.objective - warm.objective).abs() < 1e-9,
            "warm/cold MILP optima diverged: {} vs {}",
            cold.objective,
            warm.objective,
        );
    }

    let cold = run_nodes(&models, false);
    let warm = run_nodes(&models, true);
    let pivot_ratio = cold.pivots_per_node() / warm.pivots_per_node().max(1e-12);

    println!(
        "lp_warmstart: cold  {} nodes, {} pivots ({:.2} pivots/node) in {:.3}s",
        cold.nodes,
        cold.pivots,
        cold.pivots_per_node(),
        cold.wall_s
    );
    println!(
        "lp_warmstart: warm  {} nodes, {} pivots ({:.2} pivots/node) in {:.3}s",
        warm.nodes,
        warm.pivots,
        warm.pivots_per_node(),
        warm.wall_s
    );
    println!("lp_warmstart: {pivot_ratio:.2}x fewer pivots per node with warm starts");

    let (cold_rps, cold_admitted, cold_rel0) = run_stream(stream_requests, false);
    let (warm_rps, warm_admitted, warm_rel0) = run_stream(stream_requests, true);
    // Admission counts may drift late in the stream — alternate-optimal
    // placements consume different node capacity — but the first request
    // sees identical state, so its achieved reliability is pinned.
    assert!(
        (cold_rel0 - warm_rel0).abs() < 1e-9,
        "warm/cold first-request reliability diverged: {cold_rel0} vs {warm_rel0}",
    );
    println!(
        "lp_warmstart: ILP stream {stream_requests} requests — {cold_rps:.1} req/s cold \
         ({cold_admitted} admitted), {warm_rps:.1} req/s warm ({warm_admitted} admitted)"
    );

    let built = ScenarioSpec::preset(SCENARIO).expect("known preset").build();
    let (sc_cold_rps, sc_cold_admitted, sc_cold_rel0) =
        run_scenario_stream(&built, scenario_requests, false);
    let (sc_warm_rps, sc_warm_admitted, sc_warm_rel0) =
        run_scenario_stream(&built, scenario_requests, true);
    assert!(
        (sc_cold_rel0 - sc_warm_rel0).abs() < 1e-9,
        "warm/cold first-request reliability diverged on {SCENARIO}: \
         {sc_cold_rel0} vs {sc_warm_rel0}",
    );
    println!(
        "lp_warmstart: ILP scenario stream {SCENARIO} ({} nodes / {} cloudlets), \
         {scenario_requests} requests — {sc_cold_rps:.1} req/s cold ({sc_cold_admitted} \
         admitted), {sc_warm_rps:.1} req/s warm ({sc_warm_admitted} admitted)",
        built.network.num_nodes(),
        built.cloudlets(),
    );

    let report = Value::Obj(vec![
        ("benchmark".into(), Value::Str("lp_warmstart".into())),
        ("quick".into(), Value::Bool(quick)),
        ("seed".into(), Value::U64(SEED)),
        ("models".into(), Value::U64(models_n as u64)),
        ("items".into(), Value::U64(items as u64)),
        ("bins".into(), Value::U64(bins as u64)),
        ("cold".into(), cold.to_value()),
        ("warm".into(), warm.to_value()),
        ("pivots_per_node_ratio".into(), Value::F64(pivot_ratio)),
        (
            "stream".into(),
            Value::Obj(vec![
                ("requests".into(), Value::U64(stream_requests as u64)),
                ("cold_admitted".into(), Value::U64(cold_admitted as u64)),
                ("warm_admitted".into(), Value::U64(warm_admitted as u64)),
                ("cold_rps".into(), Value::F64(cold_rps)),
                ("warm_rps".into(), Value::F64(warm_rps)),
                ("speedup".into(), Value::F64(warm_rps / cold_rps)),
            ]),
        ),
        (
            "scenario_stream".into(),
            Value::Obj(vec![
                ("name".into(), Value::Str(SCENARIO.into())),
                ("nodes".into(), Value::U64(built.network.num_nodes() as u64)),
                ("cloudlets".into(), Value::U64(built.cloudlets() as u64)),
                ("requests".into(), Value::U64(scenario_requests)),
                ("cold_admitted".into(), Value::U64(sc_cold_admitted as u64)),
                ("warm_admitted".into(), Value::U64(sc_warm_admitted as u64)),
                ("cold_rps".into(), Value::F64(sc_cold_rps)),
                ("warm_rps".into(), Value::F64(sc_warm_rps)),
                ("speedup".into(), Value::F64(sc_warm_rps / sc_cold_rps)),
            ]),
        ),
    ]);
    let mut json = serde_json::to_string_pretty(&report).expect("report serializes");
    json.push('\n');
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_ilp.json");
    std::fs::write(path, &json).expect("write BENCH_ilp.json");
    println!("wrote {path}");

    // Self-gate the robust invariant (CI re-checks it from the JSON): warm
    // node re-solves must not pivot more than cold solves in aggregate.
    if warm.pivots > cold.pivots {
        eprintln!(
            "lp_warmstart: FAIL — warm-started B&B used more pivots ({}) than cold ({})",
            warm.pivots, cold.pivots
        );
        std::process::exit(1);
    }
    println!("lp_warmstart: OK — warm total pivots <= cold total pivots");
}

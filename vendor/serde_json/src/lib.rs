//! Offline stand-in for `serde_json` over the vendored `serde::Value` tree.
//!
//! Provides `to_string` / `to_string_pretty` / `to_writer`, `from_str`, and a
//! re-export of the `Value` type with the same accessors this workspace uses
//! (`as_array`, `as_str`, `get`, ...). Numbers are emitted as JSON numbers;
//! non-finite floats render as `null`, matching serde_json's behaviour.

pub use serde::Value;

use serde::{Deserialize, Serialize};
use std::fmt;
use std::io::Write;

#[derive(Debug)]
pub struct Error {
    msg: String,
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.msg)
    }
}

impl std::error::Error for Error {}

impl From<serde::Error> for Error {
    fn from(e: serde::Error) -> Self {
        Error { msg: e.to_string() }
    }
}

pub type Result<T> = std::result::Result<T, Error>;

pub fn to_value<T: Serialize>(value: &T) -> Value {
    value.to_value()
}

pub fn to_string<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, None, 0);
    Ok(out)
}

pub fn to_string_pretty<T: Serialize + ?Sized>(value: &T) -> Result<String> {
    let mut out = String::new();
    render(&value.to_value(), &mut out, Some(2), 0);
    Ok(out)
}

pub fn to_writer<W: Write, T: Serialize + ?Sized>(mut writer: W, value: &T) -> Result<()> {
    let s = to_string(value)?;
    writer.write_all(s.as_bytes()).map_err(|e| Error { msg: e.to_string() })
}

pub fn from_str<T: Deserialize>(s: &str) -> Result<T> {
    let v = parse_value(s)?;
    Ok(T::from_value(&v)?)
}

// ---------------------------------------------------------------------------
// Rendering
// ---------------------------------------------------------------------------

fn render(v: &Value, out: &mut String, indent: Option<usize>, depth: usize) {
    match v {
        Value::Null => out.push_str("null"),
        Value::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
        Value::U64(x) => out.push_str(&x.to_string()),
        Value::I64(x) => out.push_str(&x.to_string()),
        Value::F64(x) => {
            if x.is_finite() {
                if *x == x.trunc() && x.abs() < 1e15 {
                    // Integral floats print with a trailing `.0` like serde_json.
                    out.push_str(&format!("{x:.1}"));
                } else {
                    out.push_str(&format!("{x}"));
                }
            } else {
                out.push_str("null");
            }
        }
        Value::Str(s) => render_string(s, out),
        Value::Arr(items) => {
            if items.is_empty() {
                out.push_str("[]");
                return;
            }
            out.push('[');
            for (i, item) in items.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                render(item, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push(']');
        }
        Value::Obj(entries) => {
            if entries.is_empty() {
                out.push_str("{}");
                return;
            }
            out.push('{');
            for (i, (k, val)) in entries.iter().enumerate() {
                if i > 0 {
                    out.push(',');
                }
                newline_indent(out, indent, depth + 1);
                render_string(k, out);
                out.push(':');
                if indent.is_some() {
                    out.push(' ');
                }
                render(val, out, indent, depth + 1);
            }
            newline_indent(out, indent, depth);
            out.push('}');
        }
    }
}

fn newline_indent(out: &mut String, indent: Option<usize>, depth: usize) {
    if let Some(width) = indent {
        out.push('\n');
        for _ in 0..width * depth {
            out.push(' ');
        }
    }
}

fn render_string(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
}

// ---------------------------------------------------------------------------
// Parsing (recursive descent)
// ---------------------------------------------------------------------------

struct Parser<'a> {
    bytes: &'a [u8],
    pos: usize,
}

fn parse_value(s: &str) -> Result<Value> {
    let mut p = Parser { bytes: s.as_bytes(), pos: 0 };
    let v = p.value()?;
    p.skip_ws();
    if p.pos != p.bytes.len() {
        return Err(Error { msg: format!("trailing characters at byte {}", p.pos) });
    }
    Ok(v)
}

impl<'a> Parser<'a> {
    fn err<T>(&self, msg: &str) -> Result<T> {
        Err(Error { msg: format!("{msg} at byte {}", self.pos) })
    }

    fn skip_ws(&mut self) {
        while let Some(b) = self.bytes.get(self.pos) {
            if matches!(b, b' ' | b'\t' | b'\n' | b'\r') {
                self.pos += 1;
            } else {
                break;
            }
        }
    }

    fn peek(&mut self) -> Option<u8> {
        self.skip_ws();
        self.bytes.get(self.pos).copied()
    }

    fn expect(&mut self, b: u8) -> Result<()> {
        if self.peek() == Some(b) {
            self.pos += 1;
            Ok(())
        } else {
            self.err(&format!("expected `{}`", b as char))
        }
    }

    fn literal(&mut self, word: &str, v: Value) -> Result<Value> {
        if self.bytes[self.pos..].starts_with(word.as_bytes()) {
            self.pos += word.len();
            Ok(v)
        } else {
            self.err(&format!("invalid literal, expected `{word}`"))
        }
    }

    fn value(&mut self) -> Result<Value> {
        match self.peek() {
            Some(b'n') => self.literal("null", Value::Null),
            Some(b't') => self.literal("true", Value::Bool(true)),
            Some(b'f') => self.literal("false", Value::Bool(false)),
            Some(b'"') => self.string().map(Value::Str),
            Some(b'[') => self.array(),
            Some(b'{') => self.object(),
            Some(b) if b == b'-' || b.is_ascii_digit() => self.number(),
            _ => self.err("expected a JSON value"),
        }
    }

    fn array(&mut self) -> Result<Value> {
        self.expect(b'[')?;
        let mut items = Vec::new();
        if self.peek() == Some(b']') {
            self.pos += 1;
            return Ok(Value::Arr(items));
        }
        loop {
            items.push(self.value()?);
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b']') => {
                    self.pos += 1;
                    return Ok(Value::Arr(items));
                }
                _ => return self.err("expected `,` or `]`"),
            }
        }
    }

    fn object(&mut self) -> Result<Value> {
        self.expect(b'{')?;
        let mut entries = Vec::new();
        if self.peek() == Some(b'}') {
            self.pos += 1;
            return Ok(Value::Obj(entries));
        }
        loop {
            self.skip_ws();
            let key = self.string()?;
            self.expect(b':')?;
            let val = self.value()?;
            entries.push((key, val));
            match self.peek() {
                Some(b',') => self.pos += 1,
                Some(b'}') => {
                    self.pos += 1;
                    return Ok(Value::Obj(entries));
                }
                _ => return self.err("expected `,` or `}`"),
            }
        }
    }

    fn string(&mut self) -> Result<String> {
        self.expect(b'"')?;
        let mut out = String::new();
        loop {
            match self.bytes.get(self.pos) {
                None => return self.err("unterminated string"),
                Some(b'"') => {
                    self.pos += 1;
                    return Ok(out);
                }
                Some(b'\\') => {
                    self.pos += 1;
                    match self.bytes.get(self.pos) {
                        Some(b'"') => out.push('"'),
                        Some(b'\\') => out.push('\\'),
                        Some(b'/') => out.push('/'),
                        Some(b'n') => out.push('\n'),
                        Some(b'r') => out.push('\r'),
                        Some(b't') => out.push('\t'),
                        Some(b'b') => out.push('\u{0008}'),
                        Some(b'f') => out.push('\u{000C}'),
                        Some(b'u') => {
                            let hex = self
                                .bytes
                                .get(self.pos + 1..self.pos + 5)
                                .ok_or(Error { msg: "truncated \\u escape".into() })?;
                            let code = u32::from_str_radix(
                                std::str::from_utf8(hex)
                                    .map_err(|_| Error { msg: "bad \\u escape".into() })?,
                                16,
                            )
                            .map_err(|_| Error { msg: "bad \\u escape".into() })?;
                            out.push(char::from_u32(code).unwrap_or('\u{FFFD}'));
                            self.pos += 4;
                        }
                        _ => return self.err("bad escape"),
                    }
                    self.pos += 1;
                }
                Some(_) => {
                    // Consume one UTF-8 scalar (input is a &str, so boundaries are valid).
                    let start = self.pos;
                    self.pos += 1;
                    while self.pos < self.bytes.len() && (self.bytes[self.pos] & 0xC0) == 0x80 {
                        self.pos += 1;
                    }
                    out.push_str(std::str::from_utf8(&self.bytes[start..self.pos]).unwrap());
                }
            }
        }
    }

    fn number(&mut self) -> Result<Value> {
        let start = self.pos;
        if self.bytes.get(self.pos) == Some(&b'-') {
            self.pos += 1;
        }
        let mut is_float = false;
        while let Some(b) = self.bytes.get(self.pos) {
            match b {
                b'0'..=b'9' => self.pos += 1,
                b'.' | b'e' | b'E' | b'+' | b'-' => {
                    is_float = true;
                    self.pos += 1;
                }
                _ => break,
            }
        }
        let text = std::str::from_utf8(&self.bytes[start..self.pos]).unwrap();
        if !is_float {
            if let Ok(u) = text.parse::<u64>() {
                return Ok(Value::U64(u));
            }
            if let Ok(i) = text.parse::<i64>() {
                return Ok(Value::I64(i));
            }
        }
        text.parse::<f64>()
            .map(Value::F64)
            .map_err(|_| Error { msg: format!("invalid number `{text}`") })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trip_nested() {
        let src = r#"{"a": [1, 2.5, -3], "b": {"c": "hi\n", "d": null}, "e": true}"#;
        let v: Value = from_str(src).unwrap();
        let rendered = to_string(&v).unwrap();
        let v2: Value = from_str(&rendered).unwrap();
        assert_eq!(v, v2);
        assert_eq!(v.get("a").unwrap().as_array().unwrap().len(), 3);
        assert_eq!(v.get("b").unwrap().get("c").unwrap().as_str().unwrap(), "hi\n");
    }

    #[test]
    fn pretty_output_indents() {
        let v: Value = from_str(r#"{"x": [1]}"#).unwrap();
        let pretty = to_string_pretty(&v).unwrap();
        assert!(pretty.contains("\n  \"x\""));
    }

    #[test]
    fn typed_round_trip() {
        let xs = vec![(1usize, 0.5f64), (2, 1.5)];
        let s = to_string(&xs).unwrap();
        let back: Vec<(usize, f64)> = from_str(&s).unwrap();
        assert_eq!(back, xs);
    }

    #[test]
    fn rejects_garbage() {
        assert!(from_str::<Value>("{oops}").is_err());
        assert!(from_str::<Value>("[1, 2,]").is_err());
        assert!(from_str::<Value>("1 2").is_err());
    }
}

//! Differential-oracle property suite for the admission plan cache
//! (`relaug::plancache`).
//!
//! Cached mode is deliberately *not* byte-identical to the uncached seeded
//! pipeline — a hit admits a memoized plan without re-running the solver, so
//! the admitted set can differ (only ever conservatively: every hit is
//! re-validated against live residuals and the live reliability catalog).
//! The contract is therefore checked as invariants, with the solver itself
//! as the oracle:
//!
//! * **size 0 is inert** — `plan_cache: 0` (the default) produces a
//!   [`StreamOutcome`] byte-identical to the plain sequential pipeline, and
//!   no plan-cache report is attached to the observation;
//! * **feasibility** — with any cache size, final residuals stay within
//!   `[0, initial]` on every node: revalidated hits can never overcommit;
//! * **threshold** — every admitted record that claims `met_expectation`
//!   achieves at least the stream's reliability expectation;
//! * **ledger == admissions** — the pipeline's `admitted` counter equals the
//!   number of admitted records, and every request yields exactly one record
//!   in id order;
//! * **counter coherence** — every request is exactly one of: watermark
//!   gate-rejected (`reject_hits`), cache-admitted (`hits`), or probed and
//!   missed (`misses`; a failed validation counts as a miss too);
//! * **cost oracle** — the sweep runs with the `plan_cache_oracle` hook
//!   enabled, so inside the engine every single hit re-runs the fresh solve
//!   on the cached primaries against the *same* residual state and asserts
//!   the cached plan's paper-cost is never better than what the solver
//!   would produce now (an assertion failure there fails the test).
//!
//! A final targeted test drives the *relaxed* multi-writer engine with the
//! cache on: concurrent commits bump shard residuals under the probes'
//! feet, so every hit must survive the full sharded `try_reserve`
//! revalidation — the commit-log replay then proves no stale plan ever
//! overcommitted a node.
//!
//! The vendored proptest stub is deterministic (per-test-name seed, no
//! shrinking), so every run exercises the same instances.

use mec_sfc_reliability::mecnet::SfcRequest;
use mec_sfc_reliability::obs::Recorder;
use mec_sfc_reliability::relaug::greedy::GreedyConfig;
use mec_sfc_reliability::relaug::heuristic::HeuristicConfig;
use mec_sfc_reliability::relaug::parallel::{CommitOrder, ParallelConfig};
use mec_sfc_reliability::relaug::relaxed::process_stream_relaxed_reported;
use mec_sfc_reliability::relaug::stream::{
    process_stream_seeded, process_stream_seeded_observed, Algorithm, RequestRecord, StreamConfig,
    StreamObservation, StreamOutcome,
};
use mec_sfc_reliability::scen::{BuiltScenario, RequestStream, ScenarioSpec};
use proptest::prelude::*;

const PRESETS: [&str; 2] = ["waxman-100", "fattree-16"];

fn scenario(preset: &str) -> BuiltScenario {
    ScenarioSpec::preset(preset).expect("known preset").build()
}

fn requests(built: &BuiltScenario, n: u64) -> Vec<SfcRequest> {
    RequestStream::new(built, n).collect()
}

fn algorithm(greedy: bool) -> Algorithm {
    if greedy {
        Algorithm::Greedy(GreedyConfig::default())
    } else {
        Algorithm::Heuristic(HeuristicConfig::default())
    }
}

/// The invariants every cached run must satisfy, regardless of hit pattern.
fn check_cached_invariants(
    built: &BuiltScenario,
    reqs: &[SfcRequest],
    out: &StreamOutcome,
    ob: &StreamObservation,
    cache_size: usize,
) {
    let label = format!("{} cache={cache_size}", built.spec.name);

    // Feasibility: residuals never leave [0, initial] on any node.
    let initial = built.network.residual_capacities(1.0);
    assert_eq!(out.final_residual.len(), initial.len());
    for (v, (&res, &init)) in out.final_residual.iter().zip(&initial).enumerate() {
        assert!(
            (-1e-9..=init + 1e-9).contains(&res),
            "{label}: node {v} residual {res} outside [0, {init}] — overcommit"
        );
    }

    // Ledger == admissions: one record per request, in id order, and the
    // pipeline's admitted counter matches the records.
    assert_eq!(out.records.len(), reqs.len(), "{label}: exactly one record per request");
    for (k, rec) in out.records.iter().enumerate() {
        assert_eq!(rec.id, reqs[k].id, "{label}: record {k} out of order");
    }
    assert_eq!(
        ob.pipeline.counter("admitted"),
        out.admitted() as u64,
        "{label}: admitted counter disagrees with the records"
    );

    // Threshold: an admitted record claiming `met_expectation` really
    // achieves the request's reliability expectation.
    for (rec, req) in out.records.iter().zip(reqs) {
        if rec.admitted && rec.met_expectation {
            assert!(
                rec.achieved_reliability >= req.expectation - 1e-9,
                "{label}: request {} admitted at {} < expectation {}",
                rec.id,
                rec.achieved_reliability,
                req.expectation
            );
        }
    }

    // Counter coherence: gate-reject | hit | miss partitions the stream.
    let report = ob.plan_cache.expect("cached run attaches a plan-cache report");
    assert_eq!(report.capacity, cache_size as u64, "{label}: reported capacity");
    assert_eq!(
        report.hits + report.reject_hits + report.misses,
        reqs.len() as u64,
        "{label}: every request must be gate-rejected, hit, or missed"
    );
    assert!(
        report.validation_failures <= report.misses,
        "{label}: validation failures are a subset of misses"
    );
    assert!(
        report.epoch_skips <= report.hits,
        "{label}: epoch fast-path skips are a subset of hits"
    );
    assert!(
        report.evictions <= report.insertions,
        "{label}: cannot evict more entries than were ever inserted"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(6))]
    #[test]
    fn cached_runs_are_feasible_reliable_and_accounted(
        preset_idx in 0usize..PRESETS.len(),
        greedy in any::<bool>(),
        seed in 0u64..1_000_000,
    ) {
        let built = scenario(PRESETS[preset_idx]);
        let reqs = requests(&built, 300);
        let base_cfg = StreamConfig { algorithm: algorithm(greedy), ..Default::default() };
        let baseline =
            process_stream_seeded(&built.network, &built.catalog, &reqs, &base_cfg, seed);

        for cache_size in [0usize, 16, 4096] {
            let cfg = StreamConfig {
                plan_cache: cache_size,
                // Cost oracle: every hit re-solves fresh on the same residual
                // state inside the engine and asserts cached cost >= fresh.
                plan_cache_oracle: true,
                ..base_cfg.clone()
            };
            let (out, ob) = process_stream_seeded_observed(
                &built.network,
                &built.catalog,
                &reqs,
                &cfg,
                seed,
                &mut Recorder::noop(),
            );
            if cache_size == 0 {
                // Size 0 keeps the byte-identity contract: same records, same
                // final residuals, no cache plumbing visible in the output.
                prop_assert_eq!(&out, &baseline, "plan_cache: 0 must be inert");
                prop_assert!(ob.plan_cache.is_none(), "size 0 must not attach a report");
            } else {
                check_cached_invariants(&built, &reqs, &out, &ob, cache_size);
            }
        }
    }
}

/// Guarantees the sweep above is not vacuous: with single-function chains
/// and a hard Zipf endpoint skew, `(source, chain)` pairs repeat while the
/// network still has room, so the sequential cached engine must actually
/// hit — and the in-engine cost oracle genuinely re-solves and compares on
/// this run. (The preset defaults — 3–6-function chains on a network that
/// saturates after a few dozen admissions — push almost every request
/// through the watermark gate before any key can repeat, which is why the
/// spec is narrowed here: `ba-1k` has the capacity to keep probing.)
#[test]
fn sequential_cache_engages_and_survives_the_cost_oracle() {
    let mut spec = ScenarioSpec::preset("ba-1k").expect("known preset");
    spec.stream.sfc_len_range = (1, 1);
    spec.stream.popularity_skew = 2.0;
    let built = spec.build();
    let reqs = requests(&built, 1_000);
    let cfg = StreamConfig { plan_cache: 4096, plan_cache_oracle: true, ..Default::default() };
    let (out, ob) = process_stream_seeded_observed(
        &built.network,
        &built.catalog,
        &reqs,
        &cfg,
        11,
        &mut Recorder::noop(),
    );
    check_cached_invariants(&built, &reqs, &out, &ob, 4096);
    let pc = ob.plan_cache.expect("cached run attaches a report");
    assert!(
        pc.hits > 0,
        "Zipf-skewed stream of 1000 requests produced no cache hits — the \
         oracle sweep is not exercising the hit path"
    );
    assert!(pc.insertions > 0, "admitted fresh solves must populate the cache");
}

/// Concurrent-commit staleness: the relaxed engine shares one cache across
/// workers whose commits race. Entries there are never epoch-stamped, so
/// every hit must pass the full sharded `try_reserve` revalidation — and the
/// verified commit-log replay plus the residual bounds prove that no stale
/// plan was ever applied on top of capacity another worker had taken.
#[test]
fn relaxed_cached_commits_never_apply_stale_plans() {
    let built = scenario("waxman-100");
    let reqs = requests(&built, 2_000);
    for workers in [2usize, 4] {
        let cfg = ParallelConfig {
            stream: StreamConfig { plan_cache: 512, ..Default::default() },
            workers,
            seed: 7,
            max_inflight: 0,
            commit_order: CommitOrder::Relaxed,
            shards: 0,
        };
        let mut records: Vec<RequestRecord> = Vec::new();
        let (final_residual, ob, report) = process_stream_relaxed_reported(
            &built.network,
            &built.catalog,
            reqs.iter().cloned(),
            &cfg,
            true,
            &mut Recorder::noop(),
            &mut |r| records.push(r),
        );

        // Replay of the commit log against the observed atomic state: the
        // linearization invariant holds even with cache-admitted commits.
        let lin = report.linearization.expect("verified run");
        assert!(
            lin.replay_ok,
            "workers={workers}: commit-log replay deviates by {} — a stale \
             cached plan overcommitted",
            lin.max_deviation
        );

        // Residual bounds on every node.
        let initial = built.network.residual_capacities(1.0);
        for (v, (&res, &init)) in final_residual.iter().zip(&initial).enumerate() {
            assert!(
                (-1e-9..=init + 1e-9).contains(&res),
                "workers={workers}: node {v} residual {res} outside [0, {init}]"
            );
        }

        // One record per request; admitted counter matches.
        assert_eq!(records.len(), reqs.len());
        let admitted = records.iter().filter(|r| r.admitted).count() as u64;
        assert_eq!(ob.pipeline.counter("admitted"), admitted);

        // Cache accounting: the probe partition covers every request that
        // reaches a processing site (the coordinator rejects empty-footprint
        // sources before any probe), and the cache actually engaged (hits or
        // gate rejects — 2000 requests over a 100-node scenario saturate it).
        let nbhd = built.network.neighborhood_index(cfg.stream.l);
        let probed = reqs.iter().filter(|r| !nbhd.cloudlets_within(r.source).is_empty()).count();
        let pc = ob.plan_cache.expect("cached run attaches a report");
        assert_eq!(
            pc.hits + pc.reject_hits + pc.misses,
            probed as u64,
            "workers={workers}: probe partition must cover processed requests"
        );
        assert!(
            pc.hits + pc.reject_hits > 0,
            "workers={workers}: cache never engaged on a saturating stream"
        );
        assert_eq!(
            pc.epoch_skips, 0,
            "workers={workers}: relaxed entries are unstamped — the epoch \
             fast path must never fire under concurrent commits"
        );
    }
}

//! Wall-clock timing helpers: a one-shot closure timer and a [`Stopwatch`]
//! for timing interior phases of a loop (laps) with named accumulated splits.

use std::time::{Duration, Instant};

/// Run `f`, returning its result and elapsed wall-clock time. Thin wrapper
/// over [`Stopwatch`] for the single-phase case.
pub fn time_it<T>(f: impl FnOnce() -> T) -> (T, Duration) {
    let sw = Stopwatch::start();
    let out = f();
    (out, sw.elapsed())
}

/// A monotonic stopwatch supporting laps (time since the previous lap) and
/// named accumulated splits (total time attributed to each phase across
/// laps). Unlike [`time_it`], it can time interior phases without
/// restructuring the code into closures.
#[derive(Debug, Clone)]
pub struct Stopwatch {
    start: Instant,
    last_lap: Instant,
    laps: Vec<Duration>,
    splits: Vec<(&'static str, Duration)>,
}

impl Stopwatch {
    pub fn start() -> Stopwatch {
        let now = Instant::now();
        Stopwatch { start: now, last_lap: now, laps: Vec::new(), splits: Vec::new() }
    }

    /// Total time since the stopwatch started.
    pub fn elapsed(&self) -> Duration {
        self.start.elapsed()
    }

    /// Close the current lap: record and return the time since the previous
    /// lap (or since start for the first lap).
    pub fn lap(&mut self) -> Duration {
        let now = Instant::now();
        let lap = now - self.last_lap;
        self.last_lap = now;
        self.laps.push(lap);
        lap
    }

    /// Like [`lap`](Self::lap), but also accumulate the lap's duration into
    /// the named split, so repeated phases sum across iterations.
    pub fn lap_as(&mut self, name: &'static str) -> Duration {
        let lap = self.lap();
        match self.splits.iter_mut().find(|(n, _)| *n == name) {
            Some((_, total)) => *total += lap,
            None => self.splits.push((name, lap)),
        }
        lap
    }

    /// All closed laps, in order.
    pub fn laps(&self) -> &[Duration] {
        &self.laps
    }

    /// Accumulated time per named split, in first-seen order.
    pub fn splits(&self) -> &[(&'static str, Duration)] {
        &self.splits
    }

    /// Accumulated total for one named split (zero if never recorded).
    pub fn split(&self, name: &str) -> Duration {
        self.splits.iter().find(|(n, _)| *n == name).map(|(_, d)| *d).unwrap_or(Duration::ZERO)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn measures_something() {
        let ((), d) = time_it(|| std::thread::sleep(Duration::from_millis(5)));
        assert!(d >= Duration::from_millis(4));
    }

    #[test]
    fn passes_value_through() {
        let (v, _) = time_it(|| 41 + 1);
        assert_eq!(v, 42);
    }

    #[test]
    fn laps_partition_elapsed_time() {
        let mut sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(3));
        let l1 = sw.lap();
        std::thread::sleep(Duration::from_millis(3));
        let l2 = sw.lap();
        assert!(l1 >= Duration::from_millis(2));
        assert!(l2 >= Duration::from_millis(2));
        assert_eq!(sw.laps().len(), 2);
        // Laps cover disjoint intervals, so their sum cannot exceed elapsed.
        assert!(l1 + l2 <= sw.elapsed());
    }

    #[test]
    fn named_splits_accumulate_across_laps() {
        let mut sw = Stopwatch::start();
        std::thread::sleep(Duration::from_millis(2));
        sw.lap_as("solve");
        std::thread::sleep(Duration::from_millis(1));
        sw.lap_as("commit");
        std::thread::sleep(Duration::from_millis(2));
        sw.lap_as("solve");
        assert_eq!(sw.splits().len(), 2);
        assert_eq!(sw.laps().len(), 3);
        assert!(sw.split("solve") >= Duration::from_millis(3));
        assert!(sw.split("solve") > sw.split("commit"));
        assert_eq!(sw.split("absent"), Duration::ZERO);
    }
}

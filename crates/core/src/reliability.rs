//! Reliability arithmetic of the paper's Section 3 and the cost/gain
//! functions of Section 4.
//!
//! All logarithms are natural; the paper leaves the base unspecified and every
//! quantity it derives (budgets, costs, gains) only requires consistency.

/// `R(f, k)`: reliability of a function with instance reliability `r` when a
/// primary plus `k` secondaries are deployed — `1 - (1 - r)^{k+1}` (Eq. 1
/// under the identical-reliability assumption).
pub fn function_reliability(r: f64, k: usize) -> f64 {
    debug_assert!((0.0..=1.0).contains(&r));
    1.0 - (1.0 - r).powi(k as i32 + 1)
}

/// Eq. 1 in full generality: accumulative reliability of instances with
/// possibly different reliabilities, `1 - Π (1 - r_l)`.
pub fn accumulative_reliability(instance_reliabilities: &[f64]) -> f64 {
    1.0 - instance_reliabilities.iter().map(|&r| 1.0 - r).product::<f64>()
}

/// Marginal reliability contributed by the `k`-th secondary:
/// `R(f, k) - R(f, k-1) = r·(1-r)^k` (for `k >= 1`); for `k = 0` this is the
/// primary's own `r`.
pub fn marginal_reliability(r: f64, k: usize) -> f64 {
    debug_assert!((0.0..=1.0).contains(&r));
    r * (1.0 - r).powi(k as i32)
}

/// The paper's item cost, Eq. 3/4:
/// `c(f, k, ·) = -log(R(f,k) - R(f,k-1)) = -log(r (1-r)^k)` for `k >= 1`,
/// and `c(f, 0, ·) = -log r` for the primary item.
///
/// Strictly positive and strictly increasing in `k` (Lemma 4.1) whenever
/// `0 < r < 1`; returns `+inf` when the marginal underflows to zero.
pub fn paper_cost(r: f64, k: usize) -> f64 {
    -marginal_reliability(r, k).ln()
}

/// Log-reliability gain of adding the `k`-th secondary (`k >= 1`):
/// `g(r, k) = ln R(f, k) - ln R(f, k-1) > 0`.
///
/// This is the linearization the exact/randomized algorithms optimize; by the
/// prefix property (the paper's Lemma 4.2) summing gains of slots `1..=m`
/// telescopes to the true log-reliability improvement of `m` secondaries.
pub fn log_gain(r: f64, k: usize) -> f64 {
    debug_assert!(k >= 1, "gains are defined for secondaries (k >= 1)");
    function_reliability(r, k).ln() - function_reliability(r, k - 1).ln()
}

/// Reliability of a whole chain given per-function secondary counts:
/// `u_j = Π_i R(f_i, m_i)` (Section 3.1).
pub fn chain_reliability(reliabilities: &[f64], secondary_counts: &[usize]) -> f64 {
    debug_assert_eq!(reliabilities.len(), secondary_counts.len());
    reliabilities.iter().zip(secondary_counts).map(|(&r, &m)| function_reliability(r, m)).product()
}

/// The paper's budget `C = -log ρ_j` (Section 4.2).
pub fn budget_from_expectation(rho: f64) -> f64 {
    debug_assert!(rho > 0.0 && rho <= 1.0);
    -rho.ln()
}

/// Number of secondaries needed for one function to push `R(f, k)` to at
/// least `target` (`None` if `target` is 1.0 and `r < 1`, which is
/// unreachable with finitely many instances).
pub fn secondaries_needed(r: f64, target: f64) -> Option<usize> {
    debug_assert!((0.0..=1.0).contains(&r) && (0.0..=1.0).contains(&target));
    if function_reliability(r, 0) >= target {
        return Some(0);
    }
    if r >= 1.0 {
        return Some(0);
    }
    if target >= 1.0 {
        return None;
    }
    // (1-r)^{k+1} <= 1 - target  =>  k >= ln(1-target)/ln(1-r) - 1
    let k = ((1.0 - target).ln() / (1.0 - r).ln() - 1.0).ceil();
    let mut k = k.max(0.0) as usize;
    // Guard against floating-point edge cases.
    while function_reliability(r, k) < target {
        k += 1;
    }
    Some(k)
}

/// Smallest `k` beyond which marginal gains fall below `floor` — used to cap
/// item enumeration without changing optima beyond `floor` precision.
pub fn slots_above_gain_floor(r: f64, max_k: usize, floor: f64) -> usize {
    if r >= 1.0 {
        return 0;
    }
    let mut k = 0;
    while k < max_k && log_gain(r, k + 1) > floor {
        k += 1;
    }
    k
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliability_grows_with_backups() {
        let r = 0.8;
        assert!((function_reliability(r, 0) - 0.8).abs() < 1e-12);
        assert!((function_reliability(r, 1) - 0.96).abs() < 1e-12);
        assert!((function_reliability(r, 2) - 0.992).abs() < 1e-12);
        for k in 0..10 {
            assert!(function_reliability(r, k + 1) > function_reliability(r, k));
        }
    }

    #[test]
    fn accumulative_matches_identical_case() {
        let r = 0.7;
        let acc = accumulative_reliability(&[r, r, r]);
        assert!((acc - function_reliability(r, 2)).abs() < 1e-12);
        // Mixed reliabilities.
        let acc2 = accumulative_reliability(&[0.5, 0.9]);
        assert!((acc2 - (1.0 - 0.5 * 0.1)).abs() < 1e-12);
    }

    #[test]
    fn marginals_telescope_to_reliability() {
        let r = 0.85;
        for m in 0..8 {
            let sum: f64 = (0..=m).map(|k| marginal_reliability(r, k)).sum();
            assert!((sum - function_reliability(r, m)).abs() < 1e-12);
        }
    }

    #[test]
    fn lemma_4_1_costs_positive_and_increasing() {
        for &r in &[0.55, 0.7, 0.8, 0.95] {
            let mut prev = paper_cost(r, 0);
            assert!(prev > 0.0);
            for k in 1..12 {
                let c = paper_cost(r, k);
                assert!(c > prev, "cost must increase in k (r={r}, k={k})");
                // Eq. 16: consecutive difference is exactly ln(1/(1-r)).
                let diff = c - prev;
                assert!((diff - (1.0 / (1.0 - r)).ln()).abs() < 1e-9);
                prev = c;
            }
        }
    }

    #[test]
    fn gains_positive_and_decreasing() {
        for &r in &[0.6, 0.8, 0.9] {
            let mut prev = f64::INFINITY;
            for k in 1..15 {
                let g = log_gain(r, k);
                assert!(g > 0.0);
                assert!(g < prev, "diminishing returns violated at k={k}");
                prev = g;
            }
        }
    }

    #[test]
    fn gains_telescope_to_log_reliability() {
        let r = 0.75;
        for m in 1..10 {
            let sum: f64 = (1..=m).map(|k| log_gain(r, k)).sum();
            let expect = function_reliability(r, m).ln() - function_reliability(r, 0).ln();
            assert!((sum - expect).abs() < 1e-12);
        }
    }

    #[test]
    fn chain_reliability_products() {
        let rels = [0.8, 0.9];
        let u = chain_reliability(&rels, &[1, 0]);
        assert!((u - 0.96 * 0.9).abs() < 1e-12);
        assert!((chain_reliability(&[], &[]) - 1.0).abs() < 1e-12);
    }

    #[test]
    fn budget_matches_expectation() {
        let c = budget_from_expectation(0.99);
        assert!((c - (-(0.99f64.ln()))).abs() < 1e-15);
        assert_eq!(budget_from_expectation(1.0), 0.0);
    }

    #[test]
    fn secondaries_needed_exact() {
        // r = 0.8, target 0.99: R(1) = 0.96 < 0.99, R(2) = 0.992 >= 0.99.
        assert_eq!(secondaries_needed(0.8, 0.99), Some(2));
        assert_eq!(secondaries_needed(0.8, 0.5), Some(0));
        assert_eq!(secondaries_needed(0.8, 1.0), None);
        assert_eq!(secondaries_needed(1.0, 1.0), Some(0));
        // Verify minimality on a sweep.
        for &r in &[0.6, 0.85] {
            for &t in &[0.9, 0.99, 0.9999] {
                let k = secondaries_needed(r, t).unwrap();
                assert!(function_reliability(r, k) >= t);
                if k > 0 {
                    assert!(function_reliability(r, k - 1) < t);
                }
            }
        }
    }

    #[test]
    fn slot_capping_is_lossless_at_floor() {
        let r = 0.8;
        let cap = slots_above_gain_floor(r, 100, 1e-12);
        assert!(cap < 100);
        assert!(log_gain(r, cap + 1) <= 1e-12);
        if cap > 0 {
            assert!(log_gain(r, cap) > 1e-12);
        }
        // Perfectly reliable functions need no slots.
        assert_eq!(slots_above_gain_floor(1.0, 100, 1e-12), 0);
    }
}

//! Property tests on the MEC network substrate: neighborhood and distance
//! invariants on random topologies, and workload-generator contracts.

use mecnet::graph::NodeId;
use mecnet::topology::{erdos_renyi, repair_connectivity, waxman, WaxmanConfig};
use mecnet::workload::{generate_scenario, WorkloadConfig};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

proptest! {
    #![proptest_config(ProptestConfig::with_cases(32))]

    #[test]
    fn hop_distance_is_a_metric(seed in 0u64..5000, n in 5usize..25, p in 0.15f64..0.7) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi(n, p, &mut rng);
        // Symmetry and triangle inequality over a sample of triples.
        for a in 0..n.min(6) {
            for b in 0..n.min(6) {
                let dab = g.hop_distance(NodeId(a), NodeId(b));
                let dba = g.hop_distance(NodeId(b), NodeId(a));
                prop_assert_eq!(dab, dba, "symmetry violated");
                if a == b {
                    prop_assert_eq!(dab, Some(0));
                }
                for c in 0..n.min(6) {
                    if let (Some(x), Some(y), Some(z)) = (
                        g.hop_distance(NodeId(a), NodeId(c)),
                        g.hop_distance(NodeId(a), NodeId(b)),
                        g.hop_distance(NodeId(b), NodeId(c)),
                    ) {
                        prop_assert!(x <= y + z, "triangle inequality violated");
                    }
                }
            }
        }
    }

    #[test]
    fn neighborhoods_grow_monotonically_in_l(seed in 0u64..5000, n in 4usize..20) {
        let mut rng = StdRng::seed_from_u64(seed);
        let g = erdos_renyi(n, 0.3, &mut rng);
        let v = NodeId(0);
        let mut prev = 0;
        for l in 0..(n as u32) {
            let cur = g.l_neighborhood_closed(v, l).len();
            prop_assert!(cur >= prev, "N_{l}^+ shrank");
            prev = cur;
        }
        // l = n-1 closed neighborhood covers the whole component of v.
        let comp_size = g
            .connected_components()
            .into_iter()
            .find(|c| c.contains(&v))
            .unwrap()
            .len();
        prop_assert_eq!(g.l_neighborhood_closed(v, n as u32).len(), comp_size);
    }

    #[test]
    fn repair_always_connects(seed in 0u64..5000) {
        let mut rng = StdRng::seed_from_u64(seed);
        let cfg = WaxmanConfig { nodes: 30, alpha: 0.05, beta: 0.1, ensure_connected: false };
        let (mut g, pos) = waxman(&cfg, &mut rng);
        repair_connectivity(&mut g, &pos);
        prop_assert!(g.is_connected());
    }

    #[test]
    fn scenario_generator_contracts(seed in 0u64..10_000) {
        let cfg = WorkloadConfig { nodes: 40, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(seed);
        let s = generate_scenario(&cfg, &mut rng);
        prop_assert_eq!(s.network.num_cloudlets(), cfg.num_cloudlets());
        prop_assert!(s.network.graph().is_connected());
        prop_assert_eq!(s.placement.len(), s.request.len());
        prop_assert!((cfg.sfc_len_range.0..=cfg.sfc_len_range.1).contains(&s.request.len()));
        for &loc in &s.placement.locations {
            prop_assert!(s.network.is_cloudlet(loc));
        }
        for (i, &r) in s.residual.iter().enumerate() {
            let expected = s.network.capacity(NodeId(i)) * cfg.residual_fraction;
            prop_assert!((r - expected).abs() < 1e-9);
        }
        // Every chain entry resolves in the catalog with paper-range values.
        for &f in &s.request.sfc {
            let t = s.catalog.get(f);
            prop_assert!((cfg.demand_range.0..=cfg.demand_range.1).contains(&t.demand_mhz));
            prop_assert!(
                (cfg.reliability_range.0..=cfg.reliability_range.1).contains(&t.reliability)
            );
        }
    }
}

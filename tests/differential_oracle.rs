//! Cross-algorithm differential test oracle.
//!
//! Property-based sweep over ~200 randomly generated small instances that
//! pins the algebraic relations between the paper's algorithms instead of
//! any single algorithm's absolute output:
//!
//! * exact ILP reliability ≥ heuristic reliability ≥ greedy reliability
//!   (under uncapped/maximizing configurations, so trim semantics cannot
//!   reorder the hierarchy);
//! * the feasible algorithms (ILP, heuristic, greedy) never violate
//!   capacity or locality;
//! * randomized rounding respects the stated violation bound: whenever
//!   Theorem 5.2's capacity premise holds, no cloudlet is loaded beyond 2×
//!   its residual — and locality is respected unconditionally;
//! * every reported reliability `u_j` is reproducible from the placements
//!   alone (recompute-from-solution matches solver-reported within 1e-9).
//!
//! The vendored proptest stub is deterministic (per-test-name seed, no
//! shrinking), so this suite exercises the same 200 instances on every run.
//!
//! A second sweep covers the `CommitOrder::Relaxed` streaming engine: its
//! guarantees are deliberately order-*independent* (any linearization of the
//! admitted set is legal), so the oracle checks invariants rather than
//! byte-identity — commit-log replay matches the final residuals, every
//! request yields exactly one record, admitted reliabilities are well-formed
//! and never below the bare-primaries base, and residuals stay within
//! `[0, capacity]` on every node.

use mec_sfc_reliability::mecnet::graph::NodeId;
use mec_sfc_reliability::mecnet::vnf::{VnfCatalog, VnfType};
use mec_sfc_reliability::mecnet::workload::{generate_network, generate_scenario, WorkloadConfig};
use mec_sfc_reliability::mecnet::SfcRequest;
use mec_sfc_reliability::milp::BnbConfig;
use mec_sfc_reliability::obs::Recorder;
use mec_sfc_reliability::relaug::heuristic::{HeuristicConfig, StopRule};
use mec_sfc_reliability::relaug::ilp::IlpConfig;
use mec_sfc_reliability::relaug::instance::AugmentationInstance;
use mec_sfc_reliability::relaug::parallel::{CommitOrder, ParallelConfig};
use mec_sfc_reliability::relaug::relaxed::process_stream_relaxed_reported;
use mec_sfc_reliability::relaug::solution::{Outcome, SolverInfo};
use mec_sfc_reliability::relaug::stream::Algorithm;
use mec_sfc_reliability::relaug::{greedy, heuristic, ilp, randomized, theory};
use proptest::prelude::*;
use rand::rngs::StdRng;
use rand::SeedableRng;

/// A generated small instance plus the node count of its network (the
/// premise of Theorem 5.2 references `|V|`).
fn small_instance(
    nodes: usize,
    sfc_len: usize,
    residual_fraction: f64,
    expectation: f64,
    seed: u64,
) -> (AugmentationInstance, usize) {
    let cfg = WorkloadConfig {
        nodes,
        sfc_len_range: (2, sfc_len.max(2)),
        residual_fraction,
        expectation,
        ..Default::default()
    };
    let mut rng = StdRng::seed_from_u64(seed);
    let scenario = generate_scenario(&cfg, &mut rng);
    (AugmentationInstance::from_scenario(&scenario, 1), nodes)
}

/// The reported `u_j` must be a pure function of the placements: recompute
/// it from the augmentation and compare.
fn assert_metrics_reproducible(name: &str, inst: &AugmentationInstance, out: &Outcome) {
    let recomputed = out.augmentation.reliability(inst);
    assert!(
        (recomputed - out.metrics.reliability).abs() <= 1e-9,
        "{name}: reported u_j {} != recomputed {}",
        out.metrics.reliability,
        recomputed,
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]
    #[test]
    fn differential_oracle(
        (nodes, sfc_len) in (12usize..=32, 2usize..=5),
        residual_fraction in prop_oneof![Just(0.25), Just(0.5), Just(1.0)],
        expectation in prop_oneof![Just(0.95), Just(0.99), Just(0.999)],
        seed in 0u64..1_000_000,
    ) {
        let (inst, num_nodes) = small_instance(nodes, sfc_len, residual_fraction, expectation, seed);

        // Maximizing configurations: no expectation trim, so the dominance
        // chain is a statement about achievable reliability mass, not about
        // where each algorithm chose to stop. No wall-clock limit (results
        // must not depend on machine speed); the node budget stays, and the
        // hierarchy is only asserted when the search completed within it.
        const MAX_NODES: usize = 50_000;
        let exact = ilp::solve(
            &inst,
            &IlpConfig {
                stop_at_expectation: false,
                bnb: BnbConfig { max_nodes: MAX_NODES, time_limit: None, ..Default::default() },
                ..Default::default()
            },
        )
        .expect("ilp");
        let search_completed = matches!(exact.solver, SolverInfo::Ilp { nodes, .. } if nodes < MAX_NODES);
        let heur = heuristic::solve(&inst, &HeuristicConfig::with_stop(StopRule::Exhaust));
        let greed = greedy::solve(&inst, &Default::default());

        // --- Hierarchy: the exact optimum dominates both feasible
        // polynomial algorithms. (heuristic >= greedy is NOT a per-instance
        // theorem — the matching can commit capacity to placements greedy
        // avoids — so that leg is checked in aggregate below.)
        //
        // Tolerance: the branch and bound proves optimality only up to its
        // relative gap (default 1e-7) and compares bounds in log-gain space
        // with floating-point slack, so on near-tie instances the heuristic
        // can edge out the "exact" optimum by a sliver (observed: 1.4e-9).
        // 5e-7 sits above that slack and far below any genuine regression.
        const HIERARCHY_TOL: f64 = 5e-7;
        if search_completed {
            prop_assert!(
                heur.metrics.reliability <= exact.metrics.reliability + HIERARCHY_TOL,
                "heuristic {} beat exact {}", heur.metrics.reliability, exact.metrics.reliability,
            );
            prop_assert!(
                greed.metrics.reliability <= exact.metrics.reliability + HIERARCHY_TOL,
                "greedy {} beat exact {}",
                greed.metrics.reliability, exact.metrics.reliability,
            );
        }

        // --- Feasible algorithms never violate capacity or locality. ---
        for (name, out) in [("ilp", &exact), ("heuristic", &heur), ("greedy", &greed)] {
            prop_assert!(out.augmentation.is_capacity_feasible(&inst), "{name} violated capacity");
            prop_assert!(out.augmentation.respects_locality(&inst), "{name} violated locality");
            prop_assert!(out.metrics.max_violation_ratio <= 1.0 + 1e-9);
        }

        // --- Randomized rounding: locality always; the 2x capacity bound
        // whenever Theorem 5.2's premise holds. ---
        let mut rng = StdRng::seed_from_u64(seed ^ 0x5eed);
        let rand_out = randomized::solve(&inst, &Default::default(), &mut rng).expect("lp");
        prop_assert!(rand_out.augmentation.respects_locality(&inst));
        if theory::capacity_premise(&inst, num_nodes) {
            prop_assert!(
                rand_out.metrics.max_violation_ratio <= 2.0 + 1e-9,
                "premise holds but violation ratio is {}",
                rand_out.metrics.max_violation_ratio,
            );
        }

        // --- Reported reliability is reproducible from placements. ---
        assert_metrics_reproducible("ilp", &inst, &exact);
        assert_metrics_reproducible("heuristic", &inst, &heur);
        assert_metrics_reproducible("greedy", &inst, &greed);
        assert_metrics_reproducible("randomized", &inst, &rand_out);

        // Augmentation never loses reliability relative to bare primaries.
        let base = inst.base_reliability();
        for out in [&exact, &heur, &greed, &rand_out] {
            prop_assert!(out.metrics.reliability >= base - 1e-12);
        }
    }
}

/// heuristic >= greedy holds in aggregate, not per instance: Algorithm 2's
/// per-round matching can occasionally commit capacity to placements the
/// greedy avoids (observed worst case: greedy ahead by ~6e-6 on ~1 in 100
/// instances). The differential claim worth pinning is that the heuristic
/// wins or ties almost always and never loses badly. The vendored proptest
/// RNG is deterministic, so these 200 instances — and hence the exact
/// counts — are stable across runs.
#[test]
fn heuristic_dominates_greedy_in_aggregate() {
    use proptest::test_runner::TestRng;
    let mut rng = TestRng::deterministic("differential_oracle::heuristic_vs_greedy");
    let strat = ((12usize..=32, 2usize..=5), 0.25f64..=1.0, 0u64..1_000_000);
    let mut greedy_wins = 0usize;
    let mut worst_gap = 0.0f64;
    const CASES: usize = 200;
    for _ in 0..CASES {
        let ((nodes, sfc_len), residual_fraction, seed) = Strategy::generate(&strat, &mut rng);
        let (inst, _) = small_instance(nodes, sfc_len, residual_fraction, 0.99, seed);
        let heur = heuristic::solve(&inst, &HeuristicConfig::with_stop(StopRule::Exhaust));
        let greed = greedy::solve(&inst, &Default::default());
        let gap = greed.metrics.reliability - heur.metrics.reliability;
        if gap > 1e-9 {
            greedy_wins += 1;
            worst_gap = worst_gap.max(gap);
        }
    }
    assert!(
        greedy_wins <= CASES / 20,
        "greedy beat the heuristic on {greedy_wins}/{CASES} instances (tolerated: 5%)"
    );
    assert!(
        worst_gap <= 1e-3,
        "greedy beat the heuristic by {worst_gap} — aggregate dominance broken"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]
    /// Relaxed-commit oracle: on random topologies and worker counts, the
    /// lock-free shard-local engine must admit a *linearizable* set — the
    /// drained commit log, replayed sequentially in tag order, reproduces
    /// the engine's final residuals — while every order-independent
    /// per-record and per-node invariant holds.
    #[test]
    fn relaxed_commit_is_a_linearization_of_the_admitted_set(
        nodes in 16usize..=40,
        workers in prop_oneof![Just(2usize), Just(4), Just(8)],
        l in 1u32..=2,
        seed in 0u64..1_000_000,
    ) {
        let net_cfg = WorkloadConfig { nodes, ..Default::default() };
        let mut rng = StdRng::seed_from_u64(seed);
        let network = generate_network(&net_cfg, &mut rng);
        let mut catalog = VnfCatalog::new();
        catalog.add(VnfType { name: "fw".into(), demand_mhz: 300.0, reliability: 0.85 });
        catalog.add(VnfType { name: "nat".into(), demand_mhz: 450.0, reliability: 0.9 });
        catalog.add(VnfType { name: "ids".into(), demand_mhz: 600.0, reliability: 0.8 });
        let n = network.num_nodes();
        let requests: Vec<SfcRequest> = (0..96)
            .map(|i| SfcRequest::random(i, &catalog, (2, 3), 0.99, n, &mut rng))
            .collect();
        let total = requests.len();

        let mut cfg = ParallelConfig {
            workers,
            seed,
            commit_order: CommitOrder::Relaxed,
            ..Default::default()
        };
        cfg.stream.l = l;
        cfg.stream.algorithm = Algorithm::Heuristic(HeuristicConfig::default());

        let mut records = Vec::new();
        let (residual, observation, report) = process_stream_relaxed_reported(
            &network,
            &catalog,
            requests,
            &cfg,
            true,
            &mut Recorder::noop(),
            &mut |r| records.push(r),
        );

        // The commit log is a witness: replaying it sequentially must land
        // on the engine's own final residuals.
        let lin = report.linearization.as_ref().expect("verified run");
        prop_assert!(
            lin.replay_ok,
            "workers={workers} l={l}: replay diverged (max deviation {:.3e} over {} entries)",
            lin.max_deviation, lin.entries,
        );

        // Exactly one record per request, regardless of completion order.
        let mut ids: Vec<usize> = records.iter().map(|r| r.id).collect();
        ids.sort_unstable();
        prop_assert_eq!(ids, (0..total).collect::<Vec<_>>(), "record ids must be complete");

        // Order-independent record invariants.
        let admitted = records.iter().filter(|r| r.admitted).count();
        for r in records.iter().filter(|r| r.admitted) {
            prop_assert!(
                r.base_reliability >= 0.0 && r.base_reliability <= r.achieved_reliability + 1e-12,
                "request {}: base {} above achieved {}",
                r.id, r.base_reliability, r.achieved_reliability,
            );
            prop_assert!(r.achieved_reliability <= 1.0 + 1e-12);
        }
        prop_assert_eq!(observation.pipeline.counter("admitted"), admitted as u64);
        prop_assert_eq!(observation.pipeline.counter("requests"), total as u64);

        // One ledger entry per admitted request; commits split across the
        // local and straddle paths without loss.
        prop_assert_eq!(lin.entries, admitted, "ledger entries must match admissions");
        let totals = report.contention.totals();
        prop_assert_eq!(totals.local_commits + totals.straddle_commits, admitted as u64);

        // Capacity conservation on every node: never negative, never above
        // the initial residual.
        for (v, &res) in residual.iter().enumerate() {
            let cap = network.capacity(NodeId(v));
            prop_assert!(
                res >= 0.0 && res <= cap + 1e-9,
                "node {v}: residual {res} outside [0, {cap}]",
            );
        }
    }
}

//! The end-of-run SLO report: time-weighted availability per request, outage
//! and repair-latency distributions, and the empirical-vs-analytic
//! availability comparison the paper's closed form predicts.
//!
//! Everything in the report derives from *simulation* time only — never the
//! wall clock — so two runs with the same seed and config serialize to
//! byte-identical JSON.

use expkit::histogram::{percentile, Histogram};
use serde::Serialize;

/// One histogram bin (lower edge, upper edge, count) — a serializable
/// snapshot of [`expkit::Histogram`].
pub type HistBin = (f64, f64, u64);

/// Per-request SLO record.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct RequestSlo {
    pub id: usize,
    pub arrived_at: f64,
    pub admitted: bool,
    /// Whether the request departed before the horizon (otherwise it was
    /// still in service when the run ended and its window is truncated).
    pub departed: bool,
    /// Length of the observed service window.
    pub active_time: f64,
    /// `Π r_i` of the bare primaries at admission.
    pub base_reliability: f64,
    /// Analytic `u_j` right after the initial augmentation.
    pub analytic_reliability: f64,
    /// Reliability expectation `ρ_j`.
    pub expectation: f64,
    /// Time-weighted fraction of the service window with every chain
    /// position live.
    pub availability: f64,
    /// Whether `availability >= ρ_j`.
    pub met_slo: bool,
    pub outages: usize,
    pub outage_time: f64,
    /// Secondaries placed over the request's lifetime (initial + repairs).
    pub secondaries: usize,
    /// Re-augmentations the repair policy triggered for this request.
    pub reaugmentations: usize,
}

/// Aggregate SLO report of one simulation run.
#[derive(Debug, Clone, PartialEq, Serialize)]
pub struct SloReport {
    pub policy: String,
    pub algorithm: String,
    pub seed: u64,
    pub duration: f64,
    pub arrivals: usize,
    pub admitted: usize,
    pub rejected: usize,
    pub departures: usize,
    /// Instance failures (transient + permanent).
    pub failures: usize,
    pub permanent_failures: usize,
    /// Instance repairs completed.
    pub instance_repairs: usize,
    /// Policy-triggered re-augmentations.
    pub reaugmentations: usize,
    /// Secondaries placed across all requests (initial + repair).
    pub secondaries_placed: usize,
    /// Time-weighted mean availability over admitted requests
    /// (`Σ uptime / Σ active_time`).
    pub mean_availability: f64,
    /// Active-time-weighted mean of the analytic `u_j` at admission.
    pub mean_analytic: f64,
    /// Active-time-weighted mean `|availability − u_j|`.
    pub mean_abs_gap: f64,
    /// Fraction of admitted requests whose availability met `ρ_j`.
    pub slo_attainment: f64,
    pub outage_count: usize,
    pub total_outage_time: f64,
    pub outage_p50: f64,
    pub outage_p95: f64,
    /// Request-level outage duration histogram.
    pub outage_histogram: Vec<HistBin>,
    pub repair_latency_mean: f64,
    pub repair_latency_p95: f64,
    /// Instance-level down-time (repair latency) histogram.
    pub repair_latency_histogram: Vec<HistBin>,
    pub per_request: Vec<RequestSlo>,
}

impl SloReport {
    /// Assemble the aggregate view from per-request records plus the raw
    /// outage / repair-latency samples. `hist_hi` bounds both histograms
    /// (pass e.g. `5 × MTTR`).
    #[allow(clippy::too_many_arguments)]
    pub fn assemble(
        policy: String,
        algorithm: String,
        seed: u64,
        duration: f64,
        per_request: Vec<RequestSlo>,
        outage_durations: &[f64],
        repair_latencies: &[f64],
        counts: &RunCounts,
        hist_hi: f64,
    ) -> SloReport {
        let admitted: Vec<&RequestSlo> = per_request.iter().filter(|r| r.admitted).collect();
        let total_active: f64 = admitted.iter().map(|r| r.active_time).sum();
        let weighted = |f: &dyn Fn(&RequestSlo) -> f64| -> f64 {
            if total_active <= 0.0 {
                return 0.0;
            }
            admitted.iter().map(|r| f(r) * r.active_time).sum::<f64>() / total_active
        };
        let mean_availability = weighted(&|r| r.availability);
        let mean_analytic = weighted(&|r| r.analytic_reliability);
        let mean_abs_gap = weighted(&|r| (r.availability - r.analytic_reliability).abs());
        let slo_attainment = if admitted.is_empty() {
            0.0
        } else {
            admitted.iter().filter(|r| r.met_slo).count() as f64 / admitted.len() as f64
        };
        let hist = |sample: &[f64]| -> Vec<HistBin> {
            let mut h = Histogram::new(0.0, hist_hi.max(1e-9), 10);
            for &x in sample {
                h.push(x);
            }
            h.bins()
        };
        let pct = |sample: &[f64], p: f64| -> f64 {
            if sample.is_empty() {
                0.0
            } else {
                percentile(sample, p)
            }
        };
        SloReport {
            policy,
            algorithm,
            seed,
            duration,
            arrivals: per_request.len(),
            admitted: admitted.len(),
            rejected: per_request.len() - admitted.len(),
            departures: counts.departures,
            failures: counts.failures,
            permanent_failures: counts.permanent_failures,
            instance_repairs: counts.instance_repairs,
            reaugmentations: counts.reaugmentations,
            secondaries_placed: counts.secondaries_placed,
            mean_availability,
            mean_analytic,
            mean_abs_gap,
            slo_attainment,
            outage_count: outage_durations.len(),
            // An empty f64 sum is -0.0 (the IEEE additive identity), which
            // would serialize as "-0.0"; normalize to +0.0.
            total_outage_time: if outage_durations.is_empty() {
                0.0
            } else {
                outage_durations.iter().sum()
            },
            outage_p50: pct(outage_durations, 50.0),
            outage_p95: pct(outage_durations, 95.0),
            outage_histogram: hist(outage_durations),
            repair_latency_mean: if repair_latencies.is_empty() {
                0.0
            } else {
                repair_latencies.iter().sum::<f64>() / repair_latencies.len() as f64
            },
            repair_latency_p95: pct(repair_latencies, 95.0),
            repair_latency_histogram: hist(repair_latencies),
            per_request,
        }
    }

    /// Serialize to pretty JSON (deterministic for a deterministic run).
    pub fn to_json(&self) -> String {
        serde_json::to_string_pretty(self).expect("SloReport serializes")
    }
}

/// Raw event tallies the engine hands to [`SloReport::assemble`].
#[derive(Debug, Clone, Copy, Default)]
pub struct RunCounts {
    pub departures: usize,
    pub failures: usize,
    pub permanent_failures: usize,
    pub instance_repairs: usize,
    pub reaugmentations: usize,
    pub secondaries_placed: usize,
}

#[cfg(test)]
mod tests {
    use super::*;

    fn record(id: usize, admitted: bool, avail: f64, analytic: f64, active: f64) -> RequestSlo {
        RequestSlo {
            id,
            arrived_at: id as f64,
            admitted,
            departed: true,
            active_time: active,
            base_reliability: 0.7,
            analytic_reliability: analytic,
            expectation: 0.99,
            availability: avail,
            met_slo: avail >= 0.99,
            outages: 1,
            outage_time: (1.0 - avail) * active,
            secondaries: 3,
            reaugmentations: 0,
        }
    }

    #[test]
    fn aggregates_are_time_weighted() {
        let per = vec![
            record(0, true, 1.0, 0.99, 10.0),
            record(1, true, 0.9, 0.99, 30.0),
            record(2, false, 0.0, 0.0, 0.0),
        ];
        let rep = SloReport::assemble(
            "none".into(),
            "Heuristic".into(),
            1,
            100.0,
            per,
            &[1.0, 3.0],
            &[0.5, 1.5],
            &RunCounts { departures: 2, failures: 4, ..Default::default() },
            5.0,
        );
        assert_eq!(rep.arrivals, 3);
        assert_eq!(rep.admitted, 2);
        assert_eq!(rep.rejected, 1);
        // (1.0*10 + 0.9*30) / 40 = 0.925.
        assert!((rep.mean_availability - 0.925).abs() < 1e-12);
        assert!((rep.mean_analytic - 0.99).abs() < 1e-12);
        assert!((rep.slo_attainment - 0.5).abs() < 1e-12);
        assert_eq!(rep.outage_count, 2);
        assert!((rep.total_outage_time - 4.0).abs() < 1e-12);
        assert_eq!(rep.outage_histogram.len(), 10);
        assert!((rep.repair_latency_mean - 1.0).abs() < 1e-12);
    }

    #[test]
    fn empty_run_produces_zeroed_report() {
        let rep = SloReport::assemble(
            "none".into(),
            "Heuristic".into(),
            0,
            10.0,
            Vec::new(),
            &[],
            &[],
            &RunCounts::default(),
            5.0,
        );
        assert_eq!(rep.arrivals, 0);
        assert_eq!(rep.mean_availability, 0.0);
        assert_eq!(rep.outage_p95, 0.0);
        assert_eq!(rep.slo_attainment, 0.0);
        // Positive zero, not the -0.0 an empty f64 sum yields.
        assert_eq!(rep.total_outage_time.to_bits(), 0);
    }

    #[test]
    fn json_round_trip_is_stable() {
        let per = vec![record(0, true, 0.95, 0.97, 20.0)];
        let rep = SloReport::assemble(
            "reactive".into(),
            "Greedy".into(),
            7,
            50.0,
            per,
            &[2.0],
            &[1.0],
            &RunCounts::default(),
            5.0,
        );
        assert_eq!(rep.to_json(), rep.to_json());
        assert!(rep.to_json().contains("\"policy\""));
    }
}

//! Metrics-window interval specification shared by the streaming pipeline
//! and the discrete-event simulator.
//!
//! A window boundary is either every `N` requests (deterministic — the
//! resulting `stream.window` stream is a pure function of the workload) or
//! every `X` seconds. For the stream pipeline, seconds means wall-clock time
//! (nondeterministic event cadence, documented); for the simulator it means
//! simulated time, which keeps the trace byte-identical across runs.

use std::fmt;

/// How often to cut a metrics window.
#[derive(Debug, Clone, Copy, PartialEq)]
pub enum MetricsInterval {
    /// Cut a window every `n` requests (or arrivals, for the simulator).
    Requests(u64),
    /// Cut a window every `s` seconds (wall-clock for streams, sim-time for
    /// the simulator).
    Seconds(f64),
}

impl MetricsInterval {
    /// Parse a CLI spelling: a bare integer means requests (`"10000"`), a
    /// number with an `s` suffix means seconds (`"2.5s"`).
    pub fn parse(s: &str) -> Result<MetricsInterval, String> {
        let s = s.trim();
        if let Some(num) = s.strip_suffix('s') {
            let secs: f64 = num.parse().map_err(|_| format!("invalid seconds interval {s:?}"))?;
            // NaN fails the finiteness check, so `<=` is safe here.
            if !secs.is_finite() || secs <= 0.0 {
                return Err(format!("seconds interval must be positive and finite, got {s:?}"));
            }
            Ok(MetricsInterval::Seconds(secs))
        } else {
            let n: u64 = s.parse().map_err(|_| format!("invalid request-count interval {s:?}"))?;
            if n == 0 {
                return Err("request-count interval must be at least 1".to_string());
            }
            Ok(MetricsInterval::Requests(n))
        }
    }
}

impl fmt::Display for MetricsInterval {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            MetricsInterval::Requests(n) => write!(f, "{n}"),
            MetricsInterval::Seconds(s) => write!(f, "{s}s"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_request_counts_and_seconds() {
        assert_eq!(MetricsInterval::parse("10000"), Ok(MetricsInterval::Requests(10000)));
        assert_eq!(MetricsInterval::parse("2.5s"), Ok(MetricsInterval::Seconds(2.5)));
        assert_eq!(MetricsInterval::parse(" 7 "), Ok(MetricsInterval::Requests(7)));
        assert!(MetricsInterval::parse("0").is_err());
        assert!(MetricsInterval::parse("-1s").is_err());
        assert!(MetricsInterval::parse("0s").is_err());
        assert!(MetricsInterval::parse("nope").is_err());
        assert!(MetricsInterval::parse("infs").is_err());
    }

    #[test]
    fn display_round_trips() {
        for spec in ["123", "1.5s"] {
            let parsed = MetricsInterval::parse(spec).unwrap();
            assert_eq!(MetricsInterval::parse(&parsed.to_string()), Ok(parsed));
        }
    }
}

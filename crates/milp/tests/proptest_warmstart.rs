//! Property test for the dual-simplex warm start: after a single bound
//! change (exactly what branch and bound does when it fixes a binary
//! variable), re-solving from the parent basis must reach the *same*
//! optimal objective as a cold two-phase solve — to 1e-9 — and must agree
//! on infeasibility.
//!
//! Instances are random BMCGAP placements (bounded multi-choice generalized
//! assignment, the shape of the paper's augmentation ILP): binary variables
//! `x_{i,b}` assigning item `i` to bin `b`, at most one bin per item, and
//! knapsack capacity per bin.

use milp::{solve_lp_warm, LpStatus, LpWorkspace, Model, Relation, Sense, VarId};
use proptest::prelude::*;

#[derive(Debug, Clone)]
struct Bmcgap {
    /// `profit[i][b]`, `0.0` = item `i` not eligible on bin `b`.
    profit: Vec<Vec<f64>>,
    demand: Vec<f64>,
    capacity: Vec<f64>,
}

impl Bmcgap {
    /// Relaxed placement LP: maximize profit, one-bin-per-item rows, bin
    /// capacity rows. Variables come back in `vars[i][b]` order (eligible
    /// pairs only).
    fn to_lp(&self) -> (Model, Vec<(usize, usize, VarId)>) {
        let (n, m) = (self.profit.len(), self.capacity.len());
        let mut model = Model::new(Sense::Maximize);
        let mut vars = Vec::new();
        for i in 0..n {
            for b in 0..m {
                if self.profit[i][b] > 0.0 {
                    vars.push((i, b, model.add_var(0.0, 1.0, self.profit[i][b])));
                }
            }
        }
        for i in 0..n {
            let row: Vec<_> =
                vars.iter().filter(|(vi, _, _)| *vi == i).map(|&(_, _, v)| (v, 1.0)).collect();
            if !row.is_empty() {
                model.add_constraint(row, Relation::Le, 1.0);
            }
        }
        for b in 0..m {
            let row: Vec<_> = vars
                .iter()
                .filter(|(_, vb, _)| *vb == b)
                .map(|&(vi, _, v)| (v, self.demand[vi]))
                .collect();
            if !row.is_empty() {
                model.add_constraint(row, Relation::Le, self.capacity[b]);
            }
        }
        (model, vars)
    }
}

fn arb_bmcgap() -> impl Strategy<Value = Bmcgap> {
    (2usize..=6, 2usize..=4).prop_flat_map(|(n, m)| {
        // ~75% of (item, bin) pairs eligible; profit 0 encodes ineligible.
        let profit = proptest::collection::vec(
            proptest::collection::vec(
                prop_oneof![Just(0.0), 0.5f64..10.0, 0.5f64..10.0, 0.5f64..10.0],
                m,
            ),
            n,
        );
        let demand = proptest::collection::vec(0.5f64..4.0, n);
        let capacity = proptest::collection::vec(1.0f64..8.0, m);
        (profit, demand, capacity).prop_map(|(profit, demand, capacity)| Bmcgap {
            profit,
            demand,
            capacity,
        })
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// For every variable of the root LP, branch both ways (fix to 0 and to
    /// 1) and compare the warm-started child solve against a cold solve of
    /// the identical child.
    #[test]
    fn warm_child_objectives_match_cold(prog in arb_bmcgap()) {
        let (model, vars) = prog.to_lp();
        if vars.is_empty() {
            return Ok(());
        }
        let nvars = model.num_vars();

        // Root solve leaves a basis in `ws` (exactly like the B&B root).
        let mut ws = LpWorkspace::new();
        let root = solve_lp_warm(&model, None, &mut ws).unwrap();
        prop_assert_eq!(root.status, LpStatus::Optimal);
        let snap = ws.snapshot().expect("optimal root must leave a basis");

        for j in 0..nvars {
            for fixed in [0.0, 1.0] {
                let mut ovr: Vec<Option<(f64, f64)>> = vec![None; nvars];
                ovr[j] = Some((fixed, fixed));

                ws.restore(&snap);
                let warm = solve_lp_warm(&model, Some(&ovr), &mut ws).unwrap();

                let mut cold_ws = LpWorkspace::new();
                let cold = solve_lp_warm(&model, Some(&ovr), &mut cold_ws).unwrap();

                prop_assert_eq!(warm.status, cold.status,
                    "branch x{}={}: warm {:?} vs cold {:?}", j, fixed, warm.status, cold.status);
                if warm.status == LpStatus::Optimal {
                    prop_assert!((warm.objective - cold.objective).abs() < 1e-9,
                        "branch x{}={}: warm {} vs cold {}",
                        j, fixed, warm.objective, cold.objective);
                    prop_assert!(model.is_feasible(&warm.x, 1e-6));
                }
            }
        }
    }

    /// Two consecutive bound changes (a depth-2 B&B path) re-using the basis
    /// the previous child left behind — the incremental warm chain must stay
    /// exact, not just the single-step one.
    #[test]
    fn warm_chain_stays_exact(prog in arb_bmcgap()) {
        let (model, vars) = prog.to_lp();
        if vars.len() < 2 {
            return Ok(());
        }
        let nvars = model.num_vars();
        let mut ws = LpWorkspace::new();
        let root = solve_lp_warm(&model, None, &mut ws).unwrap();
        prop_assert_eq!(root.status, LpStatus::Optimal);

        let mut depth1: Vec<Option<(f64, f64)>> = vec![None; nvars];
        depth1[0] = Some((1.0, 1.0));
        let mut depth2 = depth1.clone();
        depth2[1] = Some((0.0, 0.0));

        let d1 = solve_lp_warm(&model, Some(&depth1), &mut ws).unwrap();
        let d2 = solve_lp_warm(&model, Some(&depth2), &mut ws).unwrap();

        let mut cold_ws = LpWorkspace::new();
        let cold1 = solve_lp_warm(&model, Some(&depth1), &mut cold_ws).unwrap();
        let mut cold_ws2 = LpWorkspace::new();
        let cold2 = solve_lp_warm(&model, Some(&depth2), &mut cold_ws2).unwrap();

        prop_assert_eq!(d1.status, cold1.status);
        if d1.status == LpStatus::Optimal {
            prop_assert!((d1.objective - cold1.objective).abs() < 1e-9);
        }
        prop_assert_eq!(d2.status, cold2.status);
        if d2.status == LpStatus::Optimal {
            prop_assert!((d2.objective - cold2.objective).abs() < 1e-9);
        }
    }
}

//! Minimal table rendering for harness output: GitHub markdown and CSV.

/// A rectangular table of strings with a header row.
#[derive(Debug, Clone)]
pub struct Table {
    headers: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new<S: Into<String>>(headers: Vec<S>) -> Table {
        Table { headers: headers.into_iter().map(Into::into).collect(), rows: Vec::new() }
    }

    /// Append a row; must match the header width.
    pub fn add_row<S: Into<String>>(&mut self, row: Vec<S>) {
        let row: Vec<String> = row.into_iter().map(Into::into).collect();
        assert_eq!(row.len(), self.headers.len(), "row width must match headers");
        self.rows.push(row);
    }

    pub fn num_rows(&self) -> usize {
        self.rows.len()
    }

    /// Render as a GitHub-flavoured markdown table with aligned columns.
    pub fn to_markdown(&self) -> String {
        let widths: Vec<usize> = self
            .headers
            .iter()
            .enumerate()
            .map(|(i, h)| self.rows.iter().map(|r| r[i].len()).chain([h.len()]).max().unwrap_or(0))
            .collect();
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize]| -> String {
            let body: Vec<String> =
                cells.iter().zip(widths).map(|(c, &w)| format!("{c:<w$}")).collect();
            format!("| {} |\n", body.join(" | "))
        };
        out.push_str(&fmt_row(&self.headers, &widths));
        let sep: Vec<String> = widths.iter().map(|&w| "-".repeat(w)).collect();
        out.push_str(&format!("| {} |\n", sep.join(" | ")));
        for row in &self.rows {
            out.push_str(&fmt_row(row, &widths));
        }
        out
    }

    /// Render as CSV (naive quoting: fields containing commas or quotes are
    /// double-quoted).
    pub fn to_csv(&self) -> String {
        let quote = |s: &String| -> String {
            if s.contains(',') || s.contains('"') || s.contains('\n') {
                format!("\"{}\"", s.replace('"', "\"\""))
            } else {
                s.clone()
            }
        };
        let mut out = String::new();
        out.push_str(&self.headers.iter().map(quote).collect::<Vec<_>>().join(","));
        out.push('\n');
        for row in &self.rows {
            out.push_str(&row.iter().map(quote).collect::<Vec<_>>().join(","));
            out.push('\n');
        }
        out
    }
}

/// Format seconds adaptively (`1.23 s`, `45.6 ms`, `789 µs`).
pub fn fmt_duration_s(seconds: f64) -> String {
    if seconds >= 1.0 {
        format!("{seconds:.2} s")
    } else if seconds >= 1e-3 {
        format!("{:.2} ms", seconds * 1e3)
    } else {
        format!("{:.1} µs", seconds * 1e6)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn markdown_layout() {
        let mut t = Table::new(vec!["a", "long-header"]);
        t.add_row(vec!["1", "2"]);
        let md = t.to_markdown();
        assert!(md.starts_with("| a | long-header |\n"));
        assert!(md.contains("| - | ----------- |"));
        assert!(md.contains("| 1 | 2           |"));
        assert_eq!(t.num_rows(), 1);
    }

    #[test]
    fn csv_quoting() {
        let mut t = Table::new(vec!["x", "y"]);
        t.add_row(vec!["plain", "with,comma"]);
        t.add_row(vec!["has\"quote", "b"]);
        let csv = t.to_csv();
        assert!(csv.contains("plain,\"with,comma\""));
        assert!(csv.contains("\"has\"\"quote\",b"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_panics() {
        let mut t = Table::new(vec!["only-one"]);
        t.add_row(vec!["a", "b"]);
    }

    #[test]
    fn duration_formatting() {
        assert_eq!(fmt_duration_s(2.5), "2.50 s");
        assert_eq!(fmt_duration_s(0.0456), "45.60 ms");
        assert_eq!(fmt_duration_s(0.000789), "789.0 µs");
    }
}

//! Matching-plane microbenchmark: incremental engine vs. historical rebuild.
//!
//! Times [`relaug::heuristic::solve_in`] over fixed instance sets under the
//! three `MatchEngine` configurations — `Rebuild` (cold full rebuild every
//! round), `Incremental` (dominance-pruned ladders, trajectory-exact) and
//! `IncrementalWarm` (cross-round price carry) — after byte-verifying the
//! incremental engine against the rebuild reference on every instance. Writes
//! `BENCH_matching.json` at the workspace root (the CI artifact) and exits
//! non-zero if the incremental engine's speedup over the rebuild path falls
//! below the gate on any family — CI runs this in `QUICK=1` mode as the
//! `matching-smoke` regression gate.
//!
//! Like `solve_alloc`, this is a plain `harness = false` main: the loop being
//! measured is µs-scale and hand-timing over a fixed pass count is both
//! simpler and less noisy than criterion's adaptive sampling here.

use std::time::Instant;

use mecnet::workload::{generate_scenario, WorkloadConfig};
use obs::Recorder;
use rand::rngs::StdRng;
use rand::SeedableRng;
use relaug::heuristic::{self, HeuristicConfig, MatchEngine};
use relaug::instance::AugmentationInstance;
use relaug::SolveScratch;
use serde::Value;

const SEED: u64 = 42;
/// Minimum incremental-vs-rebuild speedup the smoke gate accepts.
const GATE_SPEEDUP: f64 = 1.3;

struct Family {
    name: &'static str,
    instances: Vec<AugmentationInstance>,
    passes: usize,
}

struct ModeResult {
    mode: &'static str,
    total_s: f64,
    us_per_solve: f64,
    rounds: usize,
}

fn build_families(quick: bool) -> Vec<Family> {
    let toy_n = if quick { 8 } else { 32 };
    let toy_passes = if quick { 20 } else { 60 };
    let mut rng = StdRng::seed_from_u64(SEED);
    let toy_wl = WorkloadConfig::default();
    let toy: Vec<AugmentationInstance> = (0..toy_n)
        .map(|_| AugmentationInstance::from_scenario(&generate_scenario(&toy_wl, &mut rng), 1))
        .collect();
    let mut families = vec![Family { name: "toy", instances: toy, passes: toy_passes }];
    if !quick {
        // Wider substrate: more cloudlets per round and a stricter target, so
        // the bipartite graphs are larger and rounds more numerous — the
        // regime the incremental engine exists for.
        let wide_wl =
            WorkloadConfig { nodes: 400, expectation: 0.99999, ..WorkloadConfig::default() };
        let mut rng = StdRng::seed_from_u64(SEED ^ 0x9E3779B9);
        let wide: Vec<AugmentationInstance> = (0..8)
            .map(|_| AugmentationInstance::from_scenario(&generate_scenario(&wide_wl, &mut rng), 1))
            .collect();
        families.push(Family { name: "wide", instances: wide, passes: 20 });
    }
    families
}

fn config_for(mode: &str) -> HeuristicConfig {
    let engine = match mode {
        "rebuild" => MatchEngine::Rebuild,
        "incremental" => MatchEngine::Incremental,
        "warm" => MatchEngine::IncrementalWarm,
        other => unreachable!("unknown mode {other}"),
    };
    HeuristicConfig { engine, ..Default::default() }
}

fn time_mode(family: &Family, mode: &'static str) -> ModeResult {
    let cfg = config_for(mode);
    let mut rec = Recorder::noop();
    let mut scratch = SolveScratch::new();
    // Warm-up pass: grow scratch buffers to their high-water mark.
    for inst in &family.instances {
        heuristic::solve_in(inst, &cfg, &mut rec, &mut scratch);
    }
    let mut rounds = 0usize;
    let started = Instant::now();
    for _ in 0..family.passes {
        for inst in &family.instances {
            rounds += heuristic::solve_in(inst, &cfg, &mut rec, &mut scratch);
        }
    }
    let total_s = started.elapsed().as_secs_f64();
    let solves = (family.passes * family.instances.len()) as f64;
    ModeResult { mode, total_s, us_per_solve: total_s * 1e6 / solves, rounds }
}

/// Byte-verify: the incremental engine must reproduce the rebuild reference
/// exactly on every instance of the family.
fn verify_identity(family: &Family) -> bool {
    let mut rec = Recorder::noop();
    let mut s_inc = SolveScratch::new();
    let mut s_reb = SolveScratch::new();
    for (i, inst) in family.instances.iter().enumerate() {
        let r_inc = heuristic::solve_in(inst, &config_for("incremental"), &mut rec, &mut s_inc);
        let a_inc = s_inc.sol.materialize();
        let r_reb = heuristic::solve_in(inst, &config_for("rebuild"), &mut rec, &mut s_reb);
        let a_reb = s_reb.sol.materialize();
        if r_inc != r_reb || a_inc != a_reb {
            eprintln!(
                "matching_warm[{}]: instance {i} diverges (rounds {r_inc} vs {r_reb})",
                family.name
            );
            return false;
        }
    }
    true
}

/// Untimed telemetry pass: pruning and fallback rates of the incremental
/// engine over the family (reported, never silent).
fn matching_stats(family: &Family) -> (u64, u64, u64, u64, f64) {
    let mut rec = Recorder::memory();
    let mut scratch = SolveScratch::new();
    let cfg = config_for("incremental");
    for inst in &family.instances {
        heuristic::solve_in(inst, &cfg, &mut rec, &mut scratch);
    }
    let s = rec.summary();
    let engine = s.counter("matching.rounds.engine");
    let fallback = s.counter("matching.rounds.fallback");
    let full = s.counter("matching.edges.full");
    let live = s.counter("matching.edges.materialized");
    let pruned_pct = if full > 0 { 100.0 * (1.0 - live as f64 / full as f64) } else { 0.0 };
    (engine, fallback, full, live, pruned_pct)
}

fn main() {
    let quick = std::env::var_os("QUICK").is_some();
    let families = build_families(quick);
    let mut family_values: Vec<Value> = Vec::new();
    let mut gate_failed = false;

    for family in &families {
        let identical = verify_identity(family);
        if !identical {
            gate_failed = true;
        }
        let (engine_rounds, fallback_rounds, edges_full, edges_live, pruned_pct) =
            matching_stats(family);
        let modes: Vec<ModeResult> =
            ["rebuild", "incremental", "warm"].into_iter().map(|m| time_mode(family, m)).collect();
        let rebuild_s = modes[0].total_s;
        let speedup_inc = rebuild_s / modes[1].total_s;
        let speedup_warm = rebuild_s / modes[2].total_s;

        println!(
            "matching_warm[{}]: {} instances x {} passes",
            family.name,
            family.instances.len(),
            family.passes
        );
        for m in &modes {
            println!(
                "matching_warm[{}]: {:<11} {:>8.2} us/solve ({} rounds/pass-set)",
                family.name, m.mode, m.us_per_solve, m.rounds
            );
        }
        println!(
            "matching_warm[{}]: engine rounds {engine_rounds}, fallback {fallback_rounds}, \
             edges {edges_full} -> {edges_live} ({pruned_pct:.1}% pruned)",
            family.name
        );
        let gate_ok = speedup_inc >= GATE_SPEEDUP;
        println!(
            "matching_warm[{}]: incremental {speedup_inc:.2}x vs rebuild \
             (warm {speedup_warm:.2}x); identity {}; gate >= {GATE_SPEEDUP:.2}x: {}",
            family.name,
            if identical { "OK" } else { "FAILED" },
            if gate_ok { "OK" } else { "FAILED" },
        );
        if !gate_ok {
            gate_failed = true;
        }

        let mode_values: Vec<Value> = modes
            .iter()
            .map(|m| {
                Value::Obj(vec![
                    ("mode".into(), Value::Str(m.mode.into())),
                    ("total_s".into(), Value::F64(m.total_s)),
                    ("us_per_solve".into(), Value::F64(m.us_per_solve)),
                    ("rounds".into(), Value::U64(m.rounds as u64)),
                ])
            })
            .collect();
        family_values.push(Value::Obj(vec![
            ("name".into(), Value::Str(family.name.into())),
            ("instances".into(), Value::U64(family.instances.len() as u64)),
            ("passes".into(), Value::U64(family.passes as u64)),
            ("modes".into(), Value::Arr(mode_values)),
            ("speedup_incremental_vs_rebuild".into(), Value::F64(speedup_inc)),
            ("speedup_warm_vs_rebuild".into(), Value::F64(speedup_warm)),
            ("identical_incremental_vs_rebuild".into(), Value::Bool(identical)),
            ("engine_rounds".into(), Value::U64(engine_rounds)),
            ("fallback_rounds".into(), Value::U64(fallback_rounds)),
            ("edges_full".into(), Value::U64(edges_full)),
            ("edges_materialized".into(), Value::U64(edges_live)),
            ("pruned_pct".into(), Value::F64(pruned_pct)),
        ]));
    }

    let report = Value::Obj(vec![
        ("benchmark".into(), Value::Str("matching_warm".into())),
        ("quick".into(), Value::Bool(quick)),
        ("seed".into(), Value::U64(SEED)),
        ("gate_speedup".into(), Value::F64(GATE_SPEEDUP)),
        ("families".into(), Value::Arr(family_values)),
    ]);
    let mut json = serde_json::to_string_pretty(&report).expect("report serializes");
    json.push('\n');
    let path = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_matching.json");
    std::fs::write(path, &json).expect("write BENCH_matching.json");
    println!("matching_warm: wrote {path}");

    if gate_failed {
        eprintln!("matching_warm: FAIL — identity or speedup gate violated");
        std::process::exit(1);
    }
    println!("matching_warm: OK");
}

//! Dense two-phase primal simplex on the full tableau.
//!
//! The implementation is deliberately textbook: at the instance sizes produced
//! by the SFC reliability-augmentation problem (a few hundred rows/columns)
//! a dense tableau is both fast enough and easy to make *correct*, which is
//! what matters for an exact reference solver. Anti-cycling is handled by
//! switching from Dantzig's rule to Bland's rule after a streak of degenerate
//! pivots.

use crate::error::SolverError;
use crate::problem::Model;
use crate::solution::{LpSolution, LpStatus};
use crate::standard_form::StandardForm;
use crate::{COST_TOL, FEAS_TOL};

/// Degenerate-pivot streak after which Bland's rule is engaged.
const BLAND_TRIGGER: usize = 64;

/// Solve the continuous relaxation of `model` (integrality is ignored).
pub fn solve_lp(model: &Model) -> Result<LpSolution, SolverError> {
    model.validate()?;
    solve_lp_with_bounds(model, None)
}

/// Solve the LP relaxation with per-variable bound overrides (used by branch
/// and bound). `overrides[i] = Some((lo, hi))` intersects the model bounds.
pub fn solve_lp_with_bounds(
    model: &Model,
    overrides: Option<&[Option<(f64, f64)>]>,
) -> Result<LpSolution, SolverError> {
    let Some(sf) = StandardForm::build(model, overrides) else {
        return Ok(LpSolution::infeasible(0));
    };
    if sf.a.is_empty() {
        // No rows at all: every column is free to sit at zero; pick the bound
        // minimizing the objective. Columns are non-negative and unconstrained
        // above, so any negative cost means unbounded.
        if sf.c.iter().any(|&cj| cj < -COST_TOL) {
            return Ok(LpSolution::unbounded(0));
        }
        let x = sf.recover(&vec![0.0; sf.c.len()]);
        let objective = sf.recover_objective(0.0);
        return Ok(LpSolution {
            status: LpStatus::Optimal,
            objective,
            x,
            iterations: 0,
            duals: vec![None; model.num_constraints()],
        });
    }
    let mut tab = Tableau::new(&sf);
    let status = tab.solve()?;
    match status {
        TabStatus::Optimal => {
            let x_std = tab.extract_solution();
            let obj_std: f64 = sf.c.iter().zip(&x_std).map(|(c, x)| c * x).sum();
            Ok(LpSolution {
                status: LpStatus::Optimal,
                objective: sf.recover_objective(obj_std),
                x: sf.recover(&x_std),
                iterations: tab.iterations,
                duals: recover_duals(&sf, &tab),
            })
        }
        TabStatus::Infeasible => Ok(LpSolution::infeasible(tab.iterations)),
        TabStatus::Unbounded => Ok(LpSolution::unbounded(tab.iterations)),
    }
}

/// Shadow prices of the model constraints from the final reduced costs.
///
/// For a slack column `s` of row `i` with coefficient `σ` (±1) and zero cost,
/// the reduced cost is `d_s = -σ·y_i`, so `y_i = -σ·d_s` in the standard
/// (minimization) orientation. Mapping back flips the sign for rows the rhs
/// normalization negated and again for maximization models.
fn recover_duals(sf: &StandardForm, tab: &Tableau) -> Vec<Option<f64>> {
    let Some(reduced) = &tab.final_reduced else {
        return vec![None; sf.num_model_rows];
    };
    (0..sf.num_model_rows)
        .map(|i| {
            sf.row_slack[i].map(|(col, sigma)| {
                let mut y = -sigma * reduced[col];
                if sf.row_flipped[i] {
                    y = -y;
                }
                if sf.maximize {
                    y = -y;
                }
                y
            })
        })
        .collect()
}

enum TabStatus {
    Optimal,
    Infeasible,
    Unbounded,
}

/// Full-tableau simplex state. Columns: structural+slack columns of the
/// standard form, then one artificial per row that lacked a basis hint.
struct Tableau {
    /// `rows x cols` coefficient matrix (mutated by pivots).
    a: Vec<Vec<f64>>,
    /// Current right-hand side (basic variable values).
    b: Vec<f64>,
    /// Phase-2 costs (standard-form costs, zero on artificials).
    cost: Vec<f64>,
    /// Basic column per row.
    basis: Vec<usize>,
    /// Number of non-artificial columns.
    real_cols: usize,
    /// Total columns including artificials.
    cols: usize,
    iterations: usize,
    max_iterations: usize,
    /// Reduced costs at phase-2 optimality (for dual extraction).
    final_reduced: Option<Vec<f64>>,
}

impl Tableau {
    fn new(sf: &StandardForm) -> Tableau {
        let m = sf.a.len();
        let real_cols = sf.c.len();
        let n_art = sf.basis_hint.iter().filter(|h| h.is_none()).count();
        let cols = real_cols + n_art;
        let mut a = Vec::with_capacity(m);
        let mut basis = Vec::with_capacity(m);
        let mut next_art = real_cols;
        for (i, row) in sf.a.iter().enumerate() {
            let mut r = row.clone();
            r.resize(cols, 0.0);
            match sf.basis_hint[i] {
                Some(col) => basis.push(col),
                None => {
                    r[next_art] = 1.0;
                    basis.push(next_art);
                    next_art += 1;
                }
            }
            a.push(r);
        }
        let mut cost = sf.c.clone();
        cost.resize(cols, 0.0);
        let max_iterations = 20_000 + 200 * (m + cols);
        Tableau {
            a,
            b: sf.b.clone(),
            cost,
            basis,
            real_cols,
            cols,
            iterations: 0,
            max_iterations,
            final_reduced: None,
        }
    }

    fn solve(&mut self) -> Result<TabStatus, SolverError> {
        // ---- Phase 1: minimize the sum of artificial variables. ----
        if self.basis.iter().any(|&bcol| bcol >= self.real_cols) {
            let mut phase1_cost = vec![0.0; self.cols];
            for c in &mut phase1_cost[self.real_cols..] {
                *c = 1.0;
            }
            let mut reduced = self.price_out(&phase1_cost);
            match self.run_phase(&mut reduced, true)? {
                TabStatus::Unbounded => unreachable!("phase 1 objective is bounded below by 0"),
                TabStatus::Infeasible => return Ok(TabStatus::Infeasible),
                TabStatus::Optimal => {}
            }
            let artificial_sum: f64 = self
                .basis
                .iter()
                .zip(&self.b)
                .filter(|(&bcol, _)| bcol >= self.real_cols)
                .map(|(_, &v)| v)
                .sum();
            if artificial_sum > FEAS_TOL.max(1e-7) {
                return Ok(TabStatus::Infeasible);
            }
            self.evict_artificials();
        }

        // ---- Phase 2: minimize the real objective. ----
        let cost = self.cost.clone();
        let mut reduced = self.price_out(&cost);
        let status = self.run_phase(&mut reduced, false)?;
        if matches!(status, TabStatus::Optimal) {
            self.final_reduced = Some(reduced);
        }
        Ok(status)
    }

    /// Reduced costs of `cost` with respect to the current basis.
    fn price_out(&self, cost: &[f64]) -> Vec<f64> {
        let mut reduced = cost.to_vec();
        for (i, &bcol) in self.basis.iter().enumerate() {
            let cb = cost[bcol];
            if cb != 0.0 {
                let row = &self.a[i];
                for j in 0..self.cols {
                    reduced[j] -= cb * row[j];
                }
            }
        }
        // Basic columns have exactly zero reduced cost by construction; snap
        // them to kill accumulated round-off.
        for &bcol in &self.basis {
            reduced[bcol] = 0.0;
        }
        reduced
    }

    /// Run pivots until optimal/unbounded. In phase 1 (`block_artificials ==
    /// false` there), artificial columns may leave but not re-enter in phase 2.
    fn run_phase(&mut self, reduced: &mut [f64], phase1: bool) -> Result<TabStatus, SolverError> {
        let enter_limit = if phase1 { self.cols } else { self.real_cols };
        let mut degenerate_streak = 0usize;
        loop {
            self.iterations += 1;
            if self.iterations > self.max_iterations {
                return Err(SolverError::IterationLimit { iterations: self.max_iterations });
            }
            let bland = degenerate_streak >= BLAND_TRIGGER;
            // Entering column.
            let mut enter: Option<usize> = None;
            if bland {
                for (j, &r) in reduced.iter().enumerate().take(enter_limit) {
                    if r < -COST_TOL {
                        enter = Some(j);
                        break;
                    }
                }
            } else {
                let mut best = -COST_TOL;
                for (j, &r) in reduced.iter().enumerate().take(enter_limit) {
                    if r < best {
                        best = r;
                        enter = Some(j);
                    }
                }
            }
            let Some(q) = enter else {
                return Ok(TabStatus::Optimal);
            };
            // Ratio test.
            let mut leave: Option<usize> = None;
            let mut best_ratio = f64::INFINITY;
            for i in 0..self.a.len() {
                let aiq = self.a[i][q];
                if aiq > FEAS_TOL {
                    let ratio = self.b[i] / aiq;
                    let better = ratio < best_ratio - 1e-12
                        || (ratio < best_ratio + 1e-12
                            && leave.is_some_and(|l| self.basis[i] < self.basis[l]));
                    if better {
                        best_ratio = ratio;
                        leave = Some(i);
                    }
                }
            }
            let Some(p) = leave else {
                return Ok(TabStatus::Unbounded);
            };
            if best_ratio <= 1e-12 {
                degenerate_streak += 1;
            } else {
                degenerate_streak = 0;
            }
            self.pivot(p, q, reduced);
        }
    }

    /// Pivot on `(row p, col q)`, updating the tableau and the reduced costs.
    fn pivot(&mut self, p: usize, q: usize, reduced: &mut [f64]) {
        let piv = self.a[p][q];
        debug_assert!(piv.abs() > 1e-12, "pivot element too small: {piv}");
        let inv = 1.0 / piv;
        for j in 0..self.cols {
            self.a[p][j] *= inv;
        }
        self.b[p] *= inv;
        self.a[p][q] = 1.0; // exact
        let (pivot_row, pivot_b) = (self.a[p].clone(), self.b[p]);
        for i in 0..self.a.len() {
            if i == p {
                continue;
            }
            let factor = self.a[i][q];
            if factor != 0.0 {
                let row = &mut self.a[i];
                for j in 0..self.cols {
                    row[j] -= factor * pivot_row[j];
                }
                row[q] = 0.0; // exact
                self.b[i] -= factor * pivot_b;
                if self.b[i] < 0.0 && self.b[i] > -FEAS_TOL {
                    self.b[i] = 0.0;
                }
            }
        }
        let rfactor = reduced[q];
        if rfactor != 0.0 {
            for j in 0..self.cols {
                reduced[j] -= rfactor * pivot_row[j];
            }
            reduced[q] = 0.0;
        }
        self.basis[p] = q;
    }

    /// After phase 1: pivot basic artificials out on any non-artificial column
    /// with a nonzero entry; rows that admit none are redundant and are
    /// dropped.
    fn evict_artificials(&mut self) {
        let mut i = 0;
        while i < self.a.len() {
            if self.basis[i] >= self.real_cols {
                let mut pivot_col = None;
                for j in 0..self.real_cols {
                    if self.a[i][j].abs() > 1e-9 {
                        pivot_col = Some(j);
                        break;
                    }
                }
                match pivot_col {
                    Some(q) => {
                        // Degenerate pivot: the artificial is at value ~0.
                        let mut dummy = vec![0.0; self.cols];
                        self.pivot(i, q, &mut dummy);
                    }
                    None => {
                        // Redundant row.
                        self.a.swap_remove(i);
                        self.b.swap_remove(i);
                        self.basis.swap_remove(i);
                        continue;
                    }
                }
            }
            i += 1;
        }
        // Zero out artificial columns so they can never participate again.
        let real_cols = self.real_cols;
        for row in &mut self.a {
            for v in &mut row[real_cols..] {
                *v = 0.0;
            }
        }
    }

    fn extract_solution(&self) -> Vec<f64> {
        let mut x = vec![0.0; self.real_cols];
        for (i, &bcol) in self.basis.iter().enumerate() {
            if bcol < self.real_cols {
                x[bcol] = self.b[i].max(0.0);
            }
        }
        x
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::problem::{Model, Relation, Sense};

    fn assert_opt(m: &Model, expect_obj: f64, expect_x: Option<&[f64]>) {
        let sol = solve_lp(m).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal, "expected optimal");
        assert!(
            (sol.objective - expect_obj).abs() < 1e-6,
            "objective {} != {expect_obj}",
            sol.objective
        );
        if let Some(ex) = expect_x {
            for (a, b) in sol.x.iter().zip(ex) {
                assert!((a - b).abs() < 1e-6, "x = {:?}, expected {:?}", sol.x, ex);
            }
        }
        assert!(m.is_feasible(&sol.x, 1e-6));
    }

    #[test]
    fn textbook_max() {
        // max 3x + 2y s.t. x+y<=4, x+3y<=6 -> x=4, y=0, obj 12
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(0.0, f64::INFINITY, 3.0);
        let y = m.add_var(0.0, f64::INFINITY, 2.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 4.0);
        m.add_constraint(vec![(x, 1.0), (y, 3.0)], Relation::Le, 6.0);
        assert_opt(&m, 12.0, Some(&[4.0, 0.0]));
    }

    #[test]
    fn needs_phase_one_ge_rows() {
        // min x + y s.t. x + 2y >= 4, 3x + y >= 6 -> intersection (1.6, 1.2), obj 2.8
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, f64::INFINITY, 1.0);
        let y = m.add_var(0.0, f64::INFINITY, 1.0);
        m.add_constraint(vec![(x, 1.0), (y, 2.0)], Relation::Ge, 4.0);
        m.add_constraint(vec![(x, 3.0), (y, 1.0)], Relation::Ge, 6.0);
        assert_opt(&m, 2.8, Some(&[1.6, 1.2]));
    }

    #[test]
    fn equality_rows() {
        // max x + 4y s.t. x + y = 3, x - y <= 1 -> x in [0..], best y as big as
        // possible: y = 3 - x, obj = x + 12 - 4x = 12 - 3x -> x = 0, y = 3.
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(0.0, f64::INFINITY, 1.0);
        let y = m.add_var(0.0, f64::INFINITY, 4.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Eq, 3.0);
        m.add_constraint(vec![(x, 1.0), (y, -1.0)], Relation::Le, 1.0);
        assert_opt(&m, 12.0, Some(&[0.0, 3.0]));
    }

    #[test]
    fn detects_infeasible() {
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, f64::INFINITY, 1.0);
        m.add_constraint(vec![(x, 1.0)], Relation::Le, 1.0);
        m.add_constraint(vec![(x, 1.0)], Relation::Ge, 2.0);
        let sol = solve_lp(&m).unwrap();
        assert_eq!(sol.status, LpStatus::Infeasible);
    }

    #[test]
    fn detects_unbounded() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(0.0, f64::INFINITY, 1.0);
        let y = m.add_var(0.0, f64::INFINITY, 0.0);
        m.add_constraint(vec![(x, 1.0), (y, -1.0)], Relation::Le, 1.0);
        let sol = solve_lp(&m).unwrap();
        assert_eq!(sol.status, LpStatus::Unbounded);
    }

    #[test]
    fn bounded_vars_no_constraints() {
        let mut m = Model::new(Sense::Maximize);
        let _x = m.add_var(0.0, 2.5, 4.0);
        let _y = m.add_var(1.0, 3.0, -1.0);
        assert_opt(&m, 9.0, Some(&[2.5, 1.0]));
    }

    #[test]
    fn no_rows_unbounded() {
        let mut m = Model::new(Sense::Maximize);
        let _x = m.add_var(0.0, f64::INFINITY, 1.0);
        let sol = solve_lp(&m).unwrap();
        assert_eq!(sol.status, LpStatus::Unbounded);
    }

    #[test]
    fn no_rows_trivial_optimum() {
        let mut m = Model::new(Sense::Minimize);
        let _x = m.add_var(0.0, f64::INFINITY, 3.0);
        let sol = solve_lp(&m).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 0.0).abs() < 1e-9);
    }

    #[test]
    fn free_variable_lp() {
        // min |...|-style: min x s.t. x >= -5 (free var via split)
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(f64::NEG_INFINITY, f64::INFINITY, 1.0);
        m.add_constraint(vec![(x, 1.0)], Relation::Ge, -5.0);
        assert_opt(&m, -5.0, Some(&[-5.0]));
    }

    #[test]
    fn negative_rhs_flip() {
        // min x s.t. -x <= -3  (i.e. x >= 3)
        let mut m = Model::new(Sense::Minimize);
        let x = m.add_var(0.0, f64::INFINITY, 1.0);
        m.add_constraint(vec![(x, -1.0)], Relation::Le, -3.0);
        assert_opt(&m, 3.0, Some(&[3.0]));
    }

    #[test]
    fn degenerate_lp_terminates() {
        // Classic degenerate instance (Beale-like structure); just verify
        // termination and optimality, not a specific vertex.
        let mut m = Model::new(Sense::Minimize);
        let x1 = m.add_var(0.0, f64::INFINITY, -0.75);
        let x2 = m.add_var(0.0, f64::INFINITY, 150.0);
        let x3 = m.add_var(0.0, f64::INFINITY, -0.02);
        let x4 = m.add_var(0.0, f64::INFINITY, 6.0);
        m.add_constraint(vec![(x1, 0.25), (x2, -60.0), (x3, -0.04), (x4, 9.0)], Relation::Le, 0.0);
        m.add_constraint(vec![(x1, 0.5), (x2, -90.0), (x3, -0.02), (x4, 3.0)], Relation::Le, 0.0);
        m.add_constraint(vec![(x3, 1.0)], Relation::Le, 1.0);
        let sol = solve_lp(&m).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - (-0.05)).abs() < 1e-6);
    }

    #[test]
    fn redundant_equality_rows() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(0.0, f64::INFINITY, 1.0);
        let y = m.add_var(0.0, f64::INFINITY, 1.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Eq, 2.0);
        m.add_constraint(vec![(x, 2.0), (y, 2.0)], Relation::Eq, 4.0);
        let sol = solve_lp(&m).unwrap();
        assert_eq!(sol.status, LpStatus::Optimal);
        assert!((sol.objective - 2.0).abs() < 1e-6);
    }

    #[test]
    fn fixed_vars_via_equal_bounds() {
        let mut m = Model::new(Sense::Maximize);
        let x = m.add_var(2.0, 2.0, 5.0);
        let y = m.add_var(0.0, f64::INFINITY, 1.0);
        m.add_constraint(vec![(x, 1.0), (y, 1.0)], Relation::Le, 6.0);
        assert_opt(&m, 14.0, Some(&[2.0, 4.0]));
    }
}

//! Error type shared by the LP and MILP solvers.

use std::fmt;

/// Failure modes of the solvers.
///
/// Infeasibility and unboundedness of a *model* are not errors — they are
/// reported through [`crate::LpStatus`]. `SolverError` covers misuse of the API
/// and numerical breakdown.
#[derive(Debug, Clone, PartialEq)]
pub enum SolverError {
    /// A constraint references a variable id that does not belong to the model.
    UnknownVariable { var: usize, num_vars: usize },
    /// A variable was declared with `lower > upper`.
    InvertedBounds { var: usize, lower: f64, upper: f64 },
    /// A coefficient, bound, or right-hand side is NaN or infinite where a
    /// finite value is required.
    NonFiniteInput { what: &'static str },
    /// The simplex iteration limit was exceeded (cycling or a pathological
    /// instance).
    IterationLimit { iterations: usize },
    /// Branch and bound exhausted its node budget before proving optimality.
    NodeLimit { nodes: usize },
    /// Branch and bound exceeded its wall-clock budget.
    TimeLimit { seconds: f64 },
}

impl fmt::Display for SolverError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SolverError::UnknownVariable { var, num_vars } => {
                write!(f, "constraint references variable {var} but model has {num_vars}")
            }
            SolverError::InvertedBounds { var, lower, upper } => {
                write!(f, "variable {var} has lower bound {lower} > upper bound {upper}")
            }
            SolverError::NonFiniteInput { what } => {
                write!(f, "non-finite value supplied for {what}")
            }
            SolverError::IterationLimit { iterations } => {
                write!(f, "simplex exceeded {iterations} iterations")
            }
            SolverError::NodeLimit { nodes } => {
                write!(f, "branch and bound exceeded {nodes} nodes")
            }
            SolverError::TimeLimit { seconds } => {
                write!(f, "branch and bound exceeded {seconds} s time limit")
            }
        }
    }
}

impl std::error::Error for SolverError {}

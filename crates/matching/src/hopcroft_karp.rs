//! Hopcroft–Karp maximum-cardinality bipartite matching.
//!
//! Used as an independent oracle for the cardinality of
//! [`crate::min_cost_max_matching`] results: a min-cost *maximum* matching
//! must have exactly the Hopcroft–Karp cardinality.

const NIL: usize = usize::MAX;

/// Size of a maximum-cardinality matching of the bipartite graph given as an
/// adjacency list from left nodes to right nodes.
pub fn max_cardinality(n_left: usize, n_right: usize, adj: &[Vec<usize>]) -> usize {
    assert_eq!(adj.len(), n_left, "adjacency list must cover all left nodes");
    let mut match_l = vec![NIL; n_left];
    let mut match_r = vec![NIL; n_right];
    let mut dist = vec![0usize; n_left];
    let mut matching = 0;
    loop {
        if !bfs(adj, &match_l, &match_r, &mut dist) {
            break;
        }
        for l in 0..n_left {
            if match_l[l] == NIL && dfs(l, adj, &mut match_l, &mut match_r, &mut dist) {
                matching += 1;
            }
        }
    }
    matching
}

/// Convenience wrapper taking an edge list.
pub fn max_cardinality_edges(n_left: usize, n_right: usize, edges: &[(usize, usize)]) -> usize {
    let mut adj = vec![Vec::new(); n_left];
    for &(l, r) in edges {
        assert!(l < n_left && r < n_right, "edge endpoint out of range");
        adj[l].push(r);
    }
    max_cardinality(n_left, n_right, &adj)
}

fn bfs(adj: &[Vec<usize>], match_l: &[usize], match_r: &[usize], dist: &mut [usize]) -> bool {
    let mut queue = std::collections::VecDeque::new();
    let mut found = false;
    for l in 0..adj.len() {
        if match_l[l] == NIL {
            dist[l] = 0;
            queue.push_back(l);
        } else {
            dist[l] = usize::MAX;
        }
    }
    while let Some(l) = queue.pop_front() {
        for &r in &adj[l] {
            match match_r[r] {
                NIL => found = true,
                l2 => {
                    if dist[l2] == usize::MAX {
                        dist[l2] = dist[l] + 1;
                        queue.push_back(l2);
                    }
                }
            }
        }
    }
    found
}

fn dfs(
    l: usize,
    adj: &[Vec<usize>],
    match_l: &mut [usize],
    match_r: &mut [usize],
    dist: &mut [usize],
) -> bool {
    for i in 0..adj[l].len() {
        let r = adj[l][i];
        let advance = match match_r[r] {
            NIL => true,
            l2 => dist[l2] == dist[l].wrapping_add(1) && dfs(l2, adj, match_l, match_r, dist),
        };
        if advance {
            match_l[l] = r;
            match_r[r] = l;
            return true;
        }
    }
    dist[l] = usize::MAX;
    false
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn perfect_on_complete() {
        let adj: Vec<Vec<usize>> = (0..4).map(|_| (0..4).collect()).collect();
        assert_eq!(max_cardinality(4, 4, &adj), 4);
    }

    #[test]
    fn path_graph() {
        // L0-R0, L1-R0, L1-R1: maximum is 2 (L0-R0, L1-R1).
        assert_eq!(max_cardinality_edges(2, 2, &[(0, 0), (1, 0), (1, 1)]), 2);
    }

    #[test]
    fn bottleneck_right_node() {
        // All left nodes share one right node.
        assert_eq!(max_cardinality_edges(3, 1, &[(0, 0), (1, 0), (2, 0)]), 1);
    }

    #[test]
    fn empty() {
        assert_eq!(max_cardinality_edges(3, 3, &[]), 0);
    }

    #[test]
    fn augmenting_chain() {
        // Requires an augmenting path of length 3:
        // L0: {R0}, L1: {R0, R1}. Greedy L1->R0 would block L0.
        assert_eq!(max_cardinality_edges(2, 2, &[(1, 0), (1, 1), (0, 0)]), 2);
    }
}
